// The mechanisms compose with any queue-ordering policy ("our mechanisms
// manipulate the running jobs; a scheduling policy determines the order of
// waiting jobs", §I). This example registers a *custom* policy in the
// PolicyRegistry and sweeps CUA&SPAA across it plus the built-ins — every
// cell addressed by a SimSpec string.
//
//   ./custom_policy [--weeks=2] [--seed=3]
#include <cstdio>
#include <exception>

#include "exp/runner.h"
#include "metrics/report.h"
#include "util/cli.h"

using namespace hs;

namespace {

/// A bounded-slowdown policy: jobs whose wait already dwarfs their demand
/// go first. Registering it is the only step — after that it is usable
/// from any spec string, CLI flag, or EngineConfig::policy value.
class BoundedSlowdown final : public OrderingPolicy {
 public:
  const char* name() const override { return "BoundedSlowdown"; }
  double Key(const WaitingJob& job, SimTime now) const override {
    const double wait = static_cast<double>(now - job.enqueue_time);
    const double demand =
        std::max<double>(10 * kMinute, static_cast<double>(job.estimate_remaining));
    return -(wait + demand) / demand;  // larger slowdown first
  }
};

}  // namespace

int main(int argc, char** argv) try {
  const CliArgs args(argc, argv);
  const int weeks = static_cast<int>(args.GetInt("weeks", 2));
  const auto seed = static_cast<std::uint64_t>(args.GetInt("seed", 3));
  args.RejectUnknown();

  RegisterPolicy("BoundedSlowdown", [] { return std::make_unique<BoundedSlowdown>(); },
                 {"bsld"});

  ThreadPool pool;
  ExperimentRunner runner(pool);
  const std::vector<std::string> policies = {"FCFS", "SJF", "LJF", "SmallestFirst",
                                             "WFP3", "bsld"};
  std::vector<SimSpec> specs;
  for (const std::string& policy : policies) {
    SimSpec spec = SimSpec::Parse("CUA&SPAA/" + policy + "/W5/preset=midsize");
    spec.weeks = weeks;
    spec.seed = seed;
    specs.push_back(spec);
  }
  const auto rows = runner.Run(specs);

  std::printf("CUA&SPAA under different queue policies (%d weeks, seed %llu)\n\n",
              weeks, static_cast<unsigned long long>(seed));
  std::vector<LabeledResult> table;
  for (const SpecResult& row : rows) {
    table.push_back({row.spec.policy, row.result});
  }
  std::printf("%s\n", RenderComparisonTable(table).c_str());
  std::printf("Instant-start stays high under every ordering policy — including\n"
              "the custom BoundedSlowdown registered by this example: the\n"
              "mechanisms act on running jobs, orthogonally to queue order.\n");
  return 0;
} catch (const std::exception& e) {
  std::fprintf(stderr, "error: %s\n", e.what());
  return 2;
}
