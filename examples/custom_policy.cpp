// The mechanisms compose with any queue-ordering policy ("our mechanisms
// manipulate the running jobs; a scheduling policy determines the order of
// waiting jobs", §I). This example runs CUA&SPAA under several policies.
//
//   ./custom_policy [--weeks=2] [--seed=3]
#include <cstdio>

#include "exp/experiment.h"
#include "metrics/report.h"
#include "util/cli.h"

using namespace hs;

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const int weeks = static_cast<int>(args.GetInt("weeks", 2));
  const auto seed = static_cast<std::uint64_t>(args.GetInt("seed", 3));

  ScenarioConfig scenario = MakePaperScenario(weeks, "W5");
  scenario.theta.num_nodes = 2048;
  scenario.theta.projects.max_job_size = 2048;
  const Trace trace = BuildScenarioTrace(scenario, seed);
  std::printf("CUA&SPAA under different queue policies (%zu jobs, %d weeks)\n\n",
              trace.jobs.size(), weeks);

  std::vector<LabeledResult> rows;
  for (const PolicyKind policy :
       {PolicyKind::kFcfs, PolicyKind::kSjf, PolicyKind::kLjf,
        PolicyKind::kSmallestFirst, PolicyKind::kWfp3}) {
    HybridConfig config = MakePaperConfig({NoticePolicy::kCua, ArrivalPolicy::kSpaa});
    config.engine.policy = policy;
    rows.push_back({ToString(policy), RunSimulation(trace, config)});
  }
  std::printf("%s\n", RenderComparisonTable(rows).c_str());
  std::printf("Instant-start stays high under every ordering policy: the\n"
              "mechanisms act on running jobs, orthogonally to queue order.\n");
  return 0;
}
