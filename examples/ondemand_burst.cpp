// Scenario: an experimental facility (e.g. a light source) fires a burst of
// on-demand analysis jobs at a busy HPC system — the motivating workload of
// the paper's introduction. Compares how each mechanism absorbs the burst.
//
//   ./ondemand_burst [--weeks=2] [--burst=12] [--seed=1]
#include <cstdio>
#include <exception>

#include "exp/session.h"
#include "metrics/report.h"
#include "util/cli.h"

using namespace hs;

int main(int argc, char** argv) try {
  const CliArgs args(argc, argv);
  const int weeks = static_cast<int>(args.GetInt("weeks", 2));
  const int burst = static_cast<int>(args.GetInt("burst", 8));
  const std::uint64_t seed = static_cast<std::uint64_t>(args.GetInt("seed", 1));
  args.RejectUnknown();

  // Background batch load: no on-demand projects at all (spec-described),
  // then surgically inject the burst into the materialized trace.
  SimSpec background =
      SimSpec::Parse("baseline/FCFS/W5/preset=midsize/od_share=0.0/rigid_share=0.65");
  background.weeks = weeks;
  background.seed = seed;
  Trace trace = background.BuildTrace();

  // Inject the burst: `burst` on-demand jobs within 15 minutes, mid-trace,
  // each with a 20-minute advance notice.
  const SimTime burst_start = static_cast<SimTime>(weeks) * kWeek / 2;
  Rng rng(seed ^ 0xB00C);
  for (int i = 0; i < burst; ++i) {
    JobRecord od;
    od.id = static_cast<JobId>(trace.jobs.size());
    od.project = 9999;
    od.klass = JobClass::kOnDemand;
    od.notice = NoticeClass::kAccurate;
    od.submit_time = burst_start + rng.UniformInt(0, 15 * kMinute);
    od.predicted_arrival = od.submit_time;
    od.notice_time = od.submit_time - 20 * kMinute;
    // Small requests, as real on-demand analyses are (§IV-A); the default
    // burst of 8 x 128-256 nodes fits the machine if batch work yields.
    od.size = static_cast<int>(rng.UniformInt(1, 2)) * 128;
    od.min_size = od.size;
    od.compute_time = rng.UniformInt(10 * kMinute, kHour);
    od.setup_time = od.compute_time / 20;
    od.estimate = RoundUp((od.setup_time + od.compute_time) * 3 / 2, 15 * kMinute);
    trace.jobs.push_back(od);
  }
  trace.Canonicalize();

  std::printf("on-demand burst: %d jobs within 15 min at t=%s, on %zu-job "
              "background (%d nodes)\n\n",
              burst, FormatTimestamp(burst_start).c_str(), trace.jobs.size(),
              trace.num_nodes);

  // Same doctored trace under every mechanism, each in its own session.
  std::vector<LabeledResult> rows;
  rows.push_back({"FCFS/EASY",
                  SimulationSession(trace, MakePaperConfig(BaselineMechanism())).Run()});
  for (const Mechanism& mechanism : PaperMechanisms()) {
    rows.push_back({ToString(mechanism),
                    SimulationSession(trace, MakePaperConfig(mechanism)).Run()});
  }
  std::printf("%s\n", RenderComparisonTable(rows).c_str());
  std::printf("InstantStart counts every on-demand start within 5 minutes of "
              "arrival; the burst is served by shrinking/preempting batch work.\n");
  return 0;
} catch (const std::exception& e) {
  std::fprintf(stderr, "error: %s\n", e.what());
  return 2;
}
