// How often should rigid jobs checkpoint when preemption — not failure — is
// the dominant interruption? Sweeps the checkpoint interval around the Daly
// optimum (the Fig. 7 question) for one mechanism on one workload.
//
//   ./checkpoint_tuning [--weeks=2] [--mechanism=CUP&PAA]
#include <cstdio>

#include "exp/experiment.h"
#include "util/cli.h"
#include "util/table.h"

using namespace hs;

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const int weeks = static_cast<int>(args.GetInt("weeks", 2));
  const Mechanism mechanism =
      ParseMechanism(args.GetString("mechanism", "CUP&PAA"));

  ScenarioConfig scenario = MakePaperScenario(weeks, "W5");
  scenario.theta.num_nodes = 2048;
  scenario.theta.projects.max_job_size = 2048;
  const Trace trace = BuildScenarioTrace(scenario, 42);

  std::printf("checkpoint interval sweep, %s, %d weeks, %zu jobs\n\n",
              ToString(mechanism).c_str(), weeks, trace.jobs.size());
  TextTable table({"Interval (x Daly)", "Rigid turnaround (h)", "Utilization",
                   "Lost node-h", "Checkpoint node-h"});
  for (const double scale : {0.25, 0.5, 1.0, 2.0}) {
    HybridConfig config = MakePaperConfig(mechanism);
    config.engine.checkpoint.interval_scale = scale;
    const SimResult r = RunSimulation(trace, config);
    table.AddRow({Fmt(scale, 2), Fmt(r.rigid_turnaround_h, 2),
                  FmtPct(r.utilization, 1), Fmt(r.lost_node_hours, 0),
                  Fmt(r.checkpoint_node_hours, 0)});
  }
  std::printf("%s\n", table.Render().c_str());
  std::printf("Fig. 7's finding: checkpointing *more* often than the Daly "
              "optimum (scale < 1) trades dump overhead for less lost work "
              "under preemption.\n");
  return 0;
}
