// How often should rigid jobs checkpoint when preemption — not failure — is
// the dominant interruption? Sweeps the checkpoint interval around the Daly
// optimum (the Fig. 7 question) for one mechanism on one workload.
//
//   ./checkpoint_tuning [--weeks=2] [--mechanism=CUP&PAA]
#include <cstdio>
#include <exception>

#include "exp/runner.h"
#include "util/cli.h"
#include "util/table.h"

using namespace hs;

int main(int argc, char** argv) try {
  const CliArgs args(argc, argv);
  SimSpec base = SimSpec::FromCli(args);
  // This example's defaults apply only when neither the dedicated flag nor
  // a --spec string set the field.
  const bool has_spec = args.Has("spec");
  if (!args.Has("mechanism") && !has_spec) base.mechanism = "CUP&PAA";
  if (!args.Has("weeks") && !has_spec) base.weeks = 2;
  if (!args.Has("preset") && !has_spec) base.preset = "midsize";
  if (!args.Has("seed") && !has_spec) base.seed = 42;
  args.RejectUnknown();

  ThreadPool pool;
  ExperimentRunner runner(pool);
  const std::vector<double> scales = {0.25, 0.5, 1.0, 2.0};
  std::vector<SimSpec> specs;
  for (const double scale : scales) {
    SimSpec spec = base;
    spec.SetOverride("ckpt_scale", Fmt(scale, 2));
    specs.push_back(spec);
  }
  const auto rows = runner.Run(specs);

  std::printf("checkpoint interval sweep, %s, %d weeks (trace %s)\n\n",
              base.mechanism.c_str(), base.weeks, rows[0].trace_name.c_str());
  TextTable table({"Interval (x Daly)", "Rigid turnaround (h)", "Utilization",
                   "Lost node-h", "Checkpoint node-h"});
  for (std::size_t i = 0; i < scales.size(); ++i) {
    const SimResult& r = rows[i].result;
    table.AddRow({Fmt(scales[i], 2), Fmt(r.rigid_turnaround_h, 2),
                  FmtPct(r.utilization, 1), Fmt(r.lost_node_hours, 0),
                  Fmt(r.checkpoint_node_hours, 0)});
  }
  std::printf("%s\n", table.Render().c_str());
  std::printf("Fig. 7's finding: checkpointing *more* often than the Daly "
              "optimum (scale < 1) trades dump overhead for less lost work "
              "under preemption.\n");
  return 0;
} catch (const std::exception& e) {
  std::fprintf(stderr, "error: %s\n", e.what());
  return 2;
}
