// Mechanisms are behavioral plugins: a mechanism couples a NoticeStrategy
// (advance-notice handling) with an ArrivalStrategy (deficit resolution at
// the actual arrival), both acting through the narrow MechanismContext
// facade. This example registers a *custom* mechanism in the
// MechanismRegistry — "CUA&PATIENT", CUA collection plus an arrival
// strategy that drains malleable jobs (warned, progress-preserving) but
// never kills a rigid job — and sweeps it against the paper's mechanisms
// plus the built-in CUP-DEFER plugin, every cell addressed by a SimSpec
// string. Registering the strategy pair is the only step: no scheduler,
// bench or CLI edits.
//
//   ./custom_mechanism [--weeks=2] [--seed=3]
#include <algorithm>
#include <cstdio>
#include <exception>

#include "core/advance_notice.h"
#include "core/arrival.h"
#include "core/mechanism_context.h"
#include "exp/runner.h"
#include "metrics/report.h"
#include "util/cli.h"

using namespace hs;

namespace {

/// Drains malleable jobs toward the deficit (2-minute warning, progress
/// kept) and otherwise waits for releases: rigid work is never killed at an
/// arrival. The (NoticePolicy, ArrivalPolicy) enum pair cannot express
/// this; a strategy object can.
class PatientArrival final : public ArrivalStrategy {
 public:
  const char* name() const override { return "PATIENT"; }

  void OnArrival(MechanismContext& ctx, JobId od, SimTime now) override {
    DecisionTimer timer(ctx.collector());
    int deficit = ctx.ReservationDeficit(od) - ctx.PendingDrainNodes(od);
    if (deficit <= 0) return;
    // Warn the malleable jobs with the most headroom first; their nodes
    // arrive when the warning expires. Whatever they cannot cover waits at
    // the head of the queue for natural releases.
    std::vector<std::pair<JobId, int>> shrinkable = ListShrinkable(ctx);
    std::sort(shrinkable.begin(), shrinkable.end(),
              [](const auto& a, const auto& b) { return a.second > b.second; });
    for (const auto& [id, cap] : shrinkable) {
      if (deficit <= 0) break;
      ctx.BeginDrain(id, od, now);
      deficit -= ctx.Running(id)->alloc;
    }
  }
};

}  // namespace

int main(int argc, char** argv) try {
  const CliArgs args(argc, argv);
  const int weeks = static_cast<int>(args.GetInt("weeks", 2));
  const auto seed = static_cast<std::uint64_t>(args.GetInt("seed", 3));
  args.RejectUnknown();

  // Step 1 (and the only step): register the strategy pair. The handle's
  // enum fields describe the closest built-in behavior; the factories
  // define the real one. make_notice is omitted, so the CUA collection
  // strategy is derived from the handle.
  MechanismDef def;
  def.handle = Mechanism{NoticePolicy::kCua, ArrivalPolicy::kPaa};
  def.uses_notices = true;
  def.summary = "CUA collection; arrivals drain malleable jobs, never kill rigid";
  def.make_arrival = [] { return std::make_unique<PatientArrival>(); };
  RegisterMechanism("CUA&PATIENT", def, {"patient"});

  // Step 2: it is now addressable from any spec string, like any built-in.
  ThreadPool pool;
  ExperimentRunner runner(pool);
  const std::vector<std::string> mechanisms = {"baseline", "CUA&PAA", "CUA&SPAA",
                                               "CUP-DEFER", "CUA&PATIENT"};
  std::vector<SimSpec> specs;
  for (const std::string& mechanism : mechanisms) {
    SimSpec spec = SimSpec::Parse(mechanism + "/FCFS/W5/preset=midsize");
    spec.weeks = weeks;
    spec.seed = seed;
    specs.push_back(spec);
  }
  const auto rows = runner.Run(specs);

  std::printf("custom CUA&PATIENT vs built-ins (%d weeks, seed %llu)\n\n", weeks,
              static_cast<unsigned long long>(seed));
  std::vector<LabeledResult> table;
  for (const SpecResult& row : rows) {
    table.push_back({row.spec.mechanism, row.result});
  }
  std::printf("%s\n", RenderComparisonTable(table).c_str());
  std::printf(
      "PATIENT never kills rigid work (rigid preemption ratio 0) and pays for\n"
      "it with a lower on-demand instant-start rate — the trade-off the\n"
      "paper's PAA/SPAA mechanisms resolve the other way.\n");
  return 0;
} catch (const std::exception& e) {
  std::fprintf(stderr, "error: %s\n", e.what());
  return 2;
}
