// Quickstart: the two front doors of the simulator.
//
//   1. Declarative: a SimSpec string names mechanism / policy / notice mix /
//      preset and runs in one line.
//   2. Programmatic: build a tiny hybrid workload by hand and run it inside
//      a SimulationSession, which owns the whole stack (trace, collector,
//      simulator, scheduler).
//
//   ./quickstart
#include <cstdio>

#include "exp/session.h"
#include "metrics/report.h"

using namespace hs;

namespace {

Trace BuildTinyWorkload() {
  Trace trace;
  trace.name = "quickstart";
  trace.num_nodes = 128;

  auto add = [&trace](JobClass klass, SimTime submit, int size, int min_size,
                      SimTime compute, SimTime setup, SimTime estimate,
                      NoticeClass notice = NoticeClass::kNone,
                      SimTime notice_time = kNever, SimTime predicted = kNever) {
    JobRecord job;
    job.id = static_cast<JobId>(trace.jobs.size());
    job.project = 0;
    job.klass = klass;
    job.notice = notice;
    job.submit_time = submit;
    job.notice_time = notice_time;
    job.predicted_arrival = predicted;
    job.size = size;
    job.min_size = min_size;
    job.compute_time = compute;
    job.setup_time = setup;
    job.estimate = estimate;
    trace.jobs.push_back(job);
  };

  // A long rigid simulation occupying most of the machine.
  add(JobClass::kRigid, 0, 96, 96, 6 * kHour, 10 * kMinute, 8 * kHour);
  // A malleable hyperparameter sweep that adapts to leftover nodes.
  add(JobClass::kMalleable, 5 * kMinute, 64, 16, 2 * kHour, 2 * kMinute, 3 * kHour);
  // An urgent on-demand analysis with a 20-minute advance notice.
  add(JobClass::kOnDemand, 2 * kHour, 48, 48, 30 * kMinute, 1 * kMinute, 1 * kHour,
      NoticeClass::kAccurate, 2 * kHour - 20 * kMinute, 2 * kHour);
  // More batch work arriving behind it.
  add(JobClass::kRigid, 2 * kHour + 10 * kMinute, 32, 32, kHour, 5 * kMinute,
      2 * kHour);
  return trace;
}

void Report(const char* label, const SimResult& r) {
  std::printf("%-12s turnaround %.2f h | utilization %.1f%% | instant-start %.0f%% | "
              "preempted rigid %.0f%% malleable %.0f%% | shrinks %zu\n",
              label, r.avg_turnaround_h, 100.0 * r.utilization,
              100.0 * r.od_instant_rate, 100.0 * r.rigid_preempt_ratio,
              100.0 * r.malleable_preempt_ratio, r.shrinks);
}

}  // namespace

int main() {
  // 1. The one-liner: a spec string is a full experiment description.
  //    (mechanism / ordering policy / notice mix / key=value refinements)
  const SimResult spec_run = RunSpec("CUA&SPAA/FCFS/W5/preset=tiny/weeks=1/seed=7");
  std::printf("spec run \"CUA&SPAA/FCFS/W5/preset=tiny/weeks=1/seed=7\":\n");
  Report("  CUA&SPAA", spec_run);
  std::printf("\n");

  // 2. The programmatic path: hand-built trace, session-owned stack.
  const Trace trace = BuildTinyWorkload();
  std::printf("hand-built workload: %zu jobs on %d nodes\n\n", trace.jobs.size(),
              trace.num_nodes);

  SimulationSession baseline_session(trace, MakePaperConfig(BaselineMechanism()));
  const SimResult baseline = baseline_session.Run();
  SimulationSession hybrid_session(
      trace, MakePaperConfig(ParseMechanism("CUA&SPAA")));
  const SimResult hybrid = hybrid_session.Run();

  Report("FCFS/EASY", baseline);
  Report("CUA&SPAA", hybrid);

  std::printf(
      "\nThe on-demand job starts %s under CUA&SPAA (it waited %.0f s under the "
      "baseline).\n",
      hybrid.od_instant_rate_strict == 1.0 ? "instantly" : "late",
      baseline.od_avg_delay_s);
  return 0;
}
