// Quickstart: build a tiny hybrid workload by hand, run it under the
// FCFS/EASY baseline and under CUA&SPAA, and compare the paper's metrics.
//
//   ./quickstart
//
// This is the 5-minute tour of the public API:
//   Trace + JobRecord        (workload/)
//   HybridConfig + Mechanism (core/)
//   RunSimulation -> SimResult (core/hybrid_scheduler.h)
#include <cstdio>

#include "core/hybrid_scheduler.h"
#include "metrics/report.h"

using namespace hs;

namespace {

Trace BuildTinyWorkload() {
  Trace trace;
  trace.name = "quickstart";
  trace.num_nodes = 128;

  auto add = [&trace](JobClass klass, SimTime submit, int size, int min_size,
                      SimTime compute, SimTime setup, SimTime estimate,
                      NoticeClass notice = NoticeClass::kNone,
                      SimTime notice_time = kNever, SimTime predicted = kNever) {
    JobRecord job;
    job.id = static_cast<JobId>(trace.jobs.size());
    job.project = 0;
    job.klass = klass;
    job.notice = notice;
    job.submit_time = submit;
    job.notice_time = notice_time;
    job.predicted_arrival = predicted;
    job.size = size;
    job.min_size = min_size;
    job.compute_time = compute;
    job.setup_time = setup;
    job.estimate = estimate;
    trace.jobs.push_back(job);
  };

  // A long rigid simulation occupying most of the machine.
  add(JobClass::kRigid, 0, 96, 96, 6 * kHour, 10 * kMinute, 8 * kHour);
  // A malleable hyperparameter sweep that adapts to leftover nodes.
  add(JobClass::kMalleable, 5 * kMinute, 64, 16, 2 * kHour, 2 * kMinute, 3 * kHour);
  // An urgent on-demand analysis with a 20-minute advance notice.
  add(JobClass::kOnDemand, 2 * kHour, 48, 48, 30 * kMinute, 1 * kMinute, 1 * kHour,
      NoticeClass::kAccurate, 2 * kHour - 20 * kMinute, 2 * kHour);
  // More batch work arriving behind it.
  add(JobClass::kRigid, 2 * kHour + 10 * kMinute, 32, 32, kHour, 5 * kMinute,
      2 * kHour);
  return trace;
}

void Report(const char* label, const SimResult& r) {
  std::printf("%-12s turnaround %.2f h | utilization %.1f%% | instant-start %.0f%% | "
              "preempted rigid %.0f%% malleable %.0f%% | shrinks %zu\n",
              label, r.avg_turnaround_h, 100.0 * r.utilization,
              100.0 * r.od_instant_rate, 100.0 * r.rigid_preempt_ratio,
              100.0 * r.malleable_preempt_ratio, r.shrinks);
}

}  // namespace

int main() {
  const Trace trace = BuildTinyWorkload();
  std::printf("quickstart: %zu jobs on %d nodes\n\n", trace.jobs.size(),
              trace.num_nodes);

  const SimResult baseline =
      RunSimulation(trace, MakePaperConfig(BaselineMechanism()));
  const SimResult hybrid = RunSimulation(
      trace, MakePaperConfig({NoticePolicy::kCua, ArrivalPolicy::kSpaa}));

  Report("FCFS/EASY", baseline);
  Report("CUA&SPAA", hybrid);

  std::printf(
      "\nThe on-demand job starts %s under CUA&SPAA (it waited %.0f s under the "
      "baseline).\n",
      hybrid.od_instant_rate_strict == 1.0 ? "instantly" : "late",
      baseline.od_avg_delay_s);
  return 0;
}
