// Trace utility: generate Theta-like synthetic traces to HSWF, or inspect /
// characterize an existing HSWF (or standard SWF) trace.
//
//   ./trace_tools generate --out=trace.hswf [--weeks=4] [--seed=1] [--mix=W5]
//                          [--preset=paper] [--spec=...]
//   ./trace_tools inspect trace.hswf
//   ./trace_tools import-swf theta.swf --out=theta.hswf
#include <cstdio>
#include <fstream>

#include "exp/sim_spec.h"
#include "util/cli.h"
#include "util/table.h"
#include "workload/characterize.h"
#include "workload/swf.h"

using namespace hs;

namespace {

int Generate(const CliArgs& args) {
  // The full scenario vocabulary of SimSpec is available: preset, mix,
  // weeks, seed and scenario overrides (nodes=..., od_share=..., ...).
  SimSpec spec = SimSpec::FromCli(args);
  if (!args.Has("weeks") && !args.Has("spec")) spec.weeks = 4;
  const std::string out = args.GetString("out", "trace.hswf");
  args.RejectUnknown();
  const Trace trace = spec.BuildTrace();
  WriteHswfFile(trace, out);
  std::printf("wrote %zu jobs to %s (offered load %.2f)\n", trace.jobs.size(),
              out.c_str(), trace.OfferedLoad());
  return 0;
}

int Inspect(const Trace& trace) {
  const TraceSummary s = Summarize(trace);
  TextTable info({"Field", "Value"});
  info.AddRow({"Name", s.name.empty() ? "(unnamed)" : s.name});
  info.AddRow({"Compute nodes", std::to_string(s.num_nodes)});
  info.AddRow({"Jobs", std::to_string(s.num_jobs)});
  info.AddRow({"Projects", std::to_string(s.num_projects)});
  info.AddRow({"Span", FormatDuration(s.span)});
  info.AddRow({"Max job length", FormatDuration(s.max_wall)});
  info.AddRow({"Min/Max size", std::to_string(s.min_size) + " / " +
                                   std::to_string(s.max_size)});
  info.AddRow({"Offered load", Fmt(s.offered_load, 2)});
  info.AddRow({"Rigid / on-demand / malleable",
               std::to_string(s.rigid_jobs) + " / " + std::to_string(s.on_demand_jobs) +
                   " / " + std::to_string(s.malleable_jobs)});
  std::printf("%s\n", info.Render().c_str());

  const RangeHistogram hist = SizeHistogram(trace);
  TextTable sizes({"Size range", "Jobs", "Jobs %", "Node-hours %"});
  for (std::size_t i = 0; i < hist.bins().size(); ++i) {
    sizes.AddRow({hist.bins()[i].label, std::to_string(hist.bins()[i].count),
                  FmtPct(hist.CountShare(i), 1), FmtPct(hist.WeightShare(i), 1)});
  }
  std::printf("%s\n", sizes.Render().c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  if (args.positional().empty()) {
    std::fprintf(stderr,
                 "usage: %s generate --out=F | inspect F | import-swf F --out=G\n",
                 args.program().c_str());
    return 2;
  }
  const std::string& command = args.positional()[0];
  try {
    if (command == "generate") return Generate(args);
    if (command == "inspect") {
      if (args.positional().size() < 2) throw std::runtime_error("missing trace path");
      args.RejectUnknown();
      return Inspect(ReadHswfFile(args.positional()[1]));
    }
    if (command == "import-swf") {
      if (args.positional().size() < 2) throw std::runtime_error("missing swf path");
      std::ifstream in(args.positional()[1]);
      if (!in) throw std::runtime_error("cannot open " + args.positional()[1]);
      const Trace trace = ImportSwf(in);
      const std::string out = args.GetString("out", "imported.hswf");
      args.RejectUnknown();
      WriteHswfFile(trace, out);
      std::printf("imported %zu jobs (all rigid; run type assignment in your "
                  "own pipeline)\n",
                  trace.jobs.size());
      return 0;
    }
    std::fprintf(stderr, "unknown command: %s\n", command.c_str());
    return 2;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
