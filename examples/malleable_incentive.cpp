// The incentive experiment behind Observation 6: does declaring a job
// malleable pay off? We label the same set of projects either malleable or
// rigid, run CUA&SPAA, and compare the two classes' turnaround.
//
//   ./malleable_incentive [--weeks=2] [--seeds=3]
#include <cstdio>

#include "exp/experiment.h"
#include "util/cli.h"

using namespace hs;

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const int weeks = static_cast<int>(args.GetInt("weeks", 2));
  const int seeds = static_cast<int>(args.GetInt("seeds", 3));

  ScenarioConfig honest = MakePaperScenario(weeks, "W5");
  honest.theta.num_nodes = 2048;
  honest.theta.projects.max_job_size = 2048;

  // "Liars": the malleable projects declare their jobs rigid instead
  // (rigid share absorbs the malleable share).
  ScenarioConfig liars = honest;
  liars.types.rigid_project_share =
      honest.types.rigid_project_share + (1.0 - honest.types.rigid_project_share -
                                          honest.types.on_demand_project_share);

  ThreadPool pool;
  const HybridConfig config =
      MakePaperConfig({NoticePolicy::kCua, ArrivalPolicy::kSpaa});

  const auto honest_traces = BuildTraces(honest, seeds, 500, pool);
  const auto liar_traces = BuildTraces(liars, seeds, 500, pool);
  const SimResult honest_mean = MeanResult(RunGrid(honest_traces, {config}, pool)[0]);
  const SimResult liar_mean = MeanResult(RunGrid(liar_traces, {config}, pool)[0]);

  std::printf("CUA&SPAA on %d weeks x %d seeds (2048 nodes)\n\n", weeks, seeds);
  std::printf("Declared honestly (malleable projects stay malleable):\n");
  std::printf("  malleable turnaround : %6.2f h\n", honest_mean.malleable_turnaround_h);
  std::printf("  rigid turnaround     : %6.2f h\n", honest_mean.rigid_turnaround_h);
  std::printf("  system utilization   : %6.2f %%\n\n", 100 * honest_mean.utilization);
  std::printf("Declared rigid (the same projects lie):\n");
  std::printf("  rigid turnaround     : %6.2f h\n", liar_mean.rigid_turnaround_h);
  std::printf("  system utilization   : %6.2f %%\n\n", 100 * liar_mean.utilization);

  const bool incentive =
      honest_mean.malleable_turnaround_h < honest_mean.rigid_turnaround_h;
  std::printf("Observation 6 %s: malleable jobs %s rigid jobs in turnaround "
              "(malleability lets the scheduler start them shrunk instead of "
              "queueing them).\n",
              incentive ? "reproduced" : "NOT reproduced",
              incentive ? "beat" : "did not beat");
  return 0;
}
