// The incentive experiment behind Observation 6: does declaring a job
// malleable pay off? We label the same set of projects either malleable or
// rigid, run CUA&SPAA, and compare the two classes' turnaround.
//
//   ./malleable_incentive [--weeks=2] [--seeds=3]
#include <cstdio>
#include <exception>

#include "exp/runner.h"
#include "util/cli.h"

using namespace hs;

int main(int argc, char** argv) try {
  const CliArgs args(argc, argv);
  const int weeks = static_cast<int>(args.GetInt("weeks", 2));
  const int seeds = static_cast<int>(args.GetInt("seeds", 3));
  args.RejectUnknown();

  SimSpec honest = SimSpec::Parse("CUA&SPAA/FCFS/W5/preset=midsize");
  honest.weeks = weeks;

  // "Liars": the malleable projects declare their jobs rigid instead
  // (rigid share absorbs the malleable share; on-demand keeps its 10%).
  SimSpec liars = honest;
  liars.SetOverride("rigid_share", "0.9");

  ThreadPool pool;
  ExperimentRunner runner(pool);
  std::vector<SimSpec> specs;
  for (const SimSpec& seeded : SeedSweep(honest, seeds, 500)) specs.push_back(seeded);
  for (const SimSpec& seeded : SeedSweep(liars, seeds, 500)) specs.push_back(seeded);
  const auto means = GroupMeans(runner.Run(specs), static_cast<std::size_t>(seeds));
  const SimResult& honest_mean = means[0];
  const SimResult& liar_mean = means[1];

  std::printf("CUA&SPAA on %d weeks x %d seeds (2048 nodes)\n\n", weeks, seeds);
  std::printf("Declared honestly (malleable projects stay malleable):\n");
  std::printf("  malleable turnaround : %6.2f h\n", honest_mean.malleable_turnaround_h);
  std::printf("  rigid turnaround     : %6.2f h\n", honest_mean.rigid_turnaround_h);
  std::printf("  system utilization   : %6.2f %%\n\n", 100 * honest_mean.utilization);
  std::printf("Declared rigid (the same projects lie):\n");
  std::printf("  rigid turnaround     : %6.2f h\n", liar_mean.rigid_turnaround_h);
  std::printf("  system utilization   : %6.2f %%\n\n", 100 * liar_mean.utilization);

  const bool incentive =
      honest_mean.malleable_turnaround_h < honest_mean.rigid_turnaround_h;
  std::printf("Observation 6 %s: malleable jobs %s rigid jobs in turnaround "
              "(malleability lets the scheduler start them shrunk instead of "
              "queueing them).\n",
              incentive ? "reproduced" : "NOT reproduced",
              incentive ? "beat" : "did not beat");
  return 0;
} catch (const std::exception& e) {
  std::fprintf(stderr, "error: %s\n", e.what());
  return 2;
}
