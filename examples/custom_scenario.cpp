// Scenario presets are registry plugins: a preset is a function from
// (weeks, notice mix) to a ScenarioConfig, and the workload-generator layer
// (workload/generators.h) makes new workload families a matter of setting
// knobs instead of writing a generator. This example registers a *custom*
// generator-based preset in the ScenarioRegistry — "flashcrowd", a midsize
// machine whose arrivals carry violent lunchtime storms, a deep diurnal
// cycle, and a 20% AI-swarm demand share — and sweeps the paper's headline
// mechanisms over it, every cell addressed by a SimSpec string.
// Registering the preset is the only step: no scheduler, bench or CLI
// edits, and every generator knob stays re-tunable from spec strings
// (e.g. preset=flashcrowd/burst_mult=12).
//
// The mirror walkthrough for behavioral mechanism plugins is
// examples/custom_mechanism.cpp; the preset catalog is docs/SCENARIOS.md.
//
//   ./custom_scenario [--weeks=2] [--seed=3]
#include <cstdio>
#include <exception>

#include "exp/quantile_sink.h"
#include "exp/runner.h"
#include "exp/scenario.h"
#include "metrics/report.h"
#include "util/cli.h"

using namespace hs;

int main(int argc, char** argv) try {
  const CliArgs args(argc, argv);
  const int weeks = static_cast<int>(args.GetInt("weeks", 2));
  const auto seed = static_cast<std::uint64_t>(args.GetInt("seed", 3));
  args.RejectUnknown();

  // Step 1 (and the only step): register the preset. Start from an existing
  // scale, then turn the generator knobs — the modulators compose with the
  // Theta synthesis, so sizes/runtimes/projects keep their Table I shape
  // while the arrival process and job mix change character.
  RegisterScenarioPreset(
      "flashcrowd",
      [](int horizon_weeks, const std::string& mix) {
        ScenarioConfig config = MakeScenario("midsize", horizon_weeks, mix);
        config.gen.burst.mult = 10.0;            // violent spikes...
        config.gen.burst.period = 6 * kHour;     // ...several times a day...
        config.gen.burst.duration = 30 * kMinute;  // ...half an hour long
        config.gen.diurnal.amplitude = 0.8;      // deep day/night swing
        config.gen.diurnal.weekend_factor = 0.5; // quieter weekends
        config.gen.ai.frac = 0.20;               // 20% AI-swarm demand
        // No load compensation needed: the AI share carves out of the
        // configured total (BuildScenarioTrace scales the base by 1-frac).
        return config;
      },
      {"flash"});

  // Step 2: it is now addressable from any spec string, like any built-in.
  ThreadPool pool;
  ExperimentRunner runner(pool);
  std::vector<SimSpec> specs;
  for (const char* mechanism : {"baseline", "N&SPAA", "CUA&SPAA", "CUP&SPAA"}) {
    SimSpec spec = SimSpec::Parse(std::string(mechanism) + "/FCFS/W5/preset=flashcrowd");
    spec.weeks = weeks;
    spec.seed = seed;
    specs.push_back(spec);
  }

  // Stream the cells through the ROADMAP's streaming percentile sink: the
  // digest costs O(1) memory however large the grid grows.
  QuantileResultSink digest;
  const auto rows = runner.Run(specs, &digest);

  std::printf("custom 'flashcrowd' preset (%d weeks, seed %llu): %s\n\n", weeks,
              static_cast<unsigned long long>(seed), rows.front().trace_name.c_str());
  std::vector<LabeledResult> table;
  for (const SpecResult& row : rows) {
    table.push_back({row.spec.mechanism, row.result});
  }
  std::printf("%s\n", RenderComparisonTable(table).c_str());
  std::printf("%s\n", digest.Summary().c_str());
  std::printf(
      "shape check: under flash crowds the notice-driven mechanisms hold the\n"
      "on-demand instant-start rate far above the baseline — storms make the\n"
      "preparation window, not the queue order, the binding resource.\n");
  return 0;
} catch (const std::exception& e) {
  std::fprintf(stderr, "error: %s\n", e.what());
  return 2;
}
