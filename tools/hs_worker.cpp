// hs_worker: executes one shard of a sharded experiment grid.
//
//   hs_worker --shard=FILE --out=FILE [--threads=N]
//
// Reads the shard spec file written by ShardedRunner (shard_io.h), runs
// every cell through the ordinary in-process ExperimentRunner (so trace
// sharing, validation, and failure semantics are identical to a local
// run), and streams one JSONL result row per completed cell to --out,
// flushed per row: if this process dies mid-shard, every completed row is
// still on disk and the orchestrator reports exactly which spec indices
// were dropped.
//
// Exit status: 0 on success; 1 on any error (bad flags, unreadable shard
// file, failing spec) with the reason on stderr.
#include <cstdio>
#include <fstream>
#include <vector>

#include "exp/runner.h"
#include "exp/shard_io.h"
#include "util/cli.h"
#include "util/thread_pool.h"

namespace {

/// Translates the runner's local spec indices back to the global indices
/// of the shard file and streams each row, durably, as it completes.
class ShardOutputSink final : public hs::ResultSink {
 public:
  ShardOutputSink(std::ostream& out, std::vector<std::size_t> global_indices)
      : out_(out), global_indices_(std::move(global_indices)) {}

  void OnResult(std::size_t spec_index, const hs::SpecResult& row) override {
    hs::WriteWorkerRow(out_, global_indices_.at(spec_index), row);
    out_.flush();
  }

 private:
  std::ostream& out_;
  std::vector<std::size_t> global_indices_;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace hs;
  try {
    const CliArgs args(argc, argv);
    const std::string shard_path = args.GetString("shard", "");
    const std::string out_path = args.GetString("out", "");
    const int threads = static_cast<int>(args.GetInt("threads", 0));
    args.RejectUnknown();
    if (shard_path.empty() || out_path.empty()) {
      std::fprintf(stderr, "usage: %s --shard=FILE --out=FILE [--threads=N]\n",
                   args.program().c_str());
      return 1;
    }

    const std::vector<IndexedSpec> cells = ReadShardFileAt(shard_path);
    std::vector<SimSpec> specs;
    std::vector<std::size_t> global_indices;
    specs.reserve(cells.size());
    global_indices.reserve(cells.size());
    for (const IndexedSpec& cell : cells) {
      global_indices.push_back(cell.index);
      specs.push_back(cell.spec);
    }

    std::ofstream out(out_path, std::ios::binary | std::ios::trunc);
    if (!out) {
      std::fprintf(stderr, "hs_worker: cannot open --out=%s\n", out_path.c_str());
      return 1;
    }
    ShardOutputSink sink(out, std::move(global_indices));

    ThreadPool pool(threads > 0 ? static_cast<std::size_t>(threads) : 0);
    ExperimentRunner runner(pool);
    runner.Run(specs, &sink);
    std::printf("hs_worker: ran %zu cells from %s\n", specs.size(),
                shard_path.c_str());
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "hs_worker: %s\n", e.what());
    return 1;
  }
}
