// hs_worker: executes one shard of a sharded experiment grid.
//
//   hs_worker --shard=FILE --out=FILE [--threads=N] [--attempt=N]
//
// Reads the shard spec file written by ShardedRunner (shard_io.h), runs
// every cell through the ordinary in-process ExperimentRunner (so trace
// sharing, validation, and failure semantics are identical to a local
// run), and streams one JSONL result row per completed cell to --out,
// flushed per row: if this process dies mid-shard, every completed row is
// still on disk and the orchestrator reports exactly which spec indices
// were dropped.
//
// Liveness: every completed cell also emits a heartbeat line
// `# hs-progress cell=<global spec index>` on stderr (plus one
// `# hs-progress start cells=<n>` after the shard file is read), flushed
// immediately — the orchestrator watches the redirected stderr/out files
// for growth, so a wedged worker is detected by inactivity and killed.
//
// Fault injection: the HS_FAULT environment variable carries a
// deterministic FaultPlan (exp/fault_plan.h) — crash-before-cell, hang,
// row drops, torn final lines — gated on --attempt (default 1), which the
// orchestrator increments per respawn so injected chaos can heal on
// retry. Production runs simply leave HS_FAULT unset.
//
// Exit status: 0 on success; 1 on any error (bad flags, unreadable shard
// file, failing spec) with the reason on stderr.
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <thread>
#include <vector>

#include "exp/fault_plan.h"
#include "exp/runner.h"
#include "exp/shard_io.h"
#include "util/cli.h"
#include "util/thread_pool.h"

namespace {

/// Emits one flushed heartbeat line on stderr (the orchestrator's
/// inactivity monitor watches the redirected file for growth).
void Heartbeat(const char* what, long long value) {
  std::fprintf(stderr, "# hs-progress %s=%lld\n", what, value);
  std::fflush(stderr);
}

/// Translates the runner's local spec indices back to the global indices
/// of the shard file and streams each row, durably, as it completes —
/// injecting the HS_FAULT plan (when armed for this attempt) at exactly
/// the point a real crash/hang/drop would bite: between computing a cell
/// and persisting its row.
class ShardOutputSink final : public hs::ResultSink {
 public:
  ShardOutputSink(std::ostream& out, std::vector<std::size_t> global_indices,
                  hs::FaultPlan fault)
      : out_(out), global_indices_(std::move(global_indices)), fault_(fault) {}

  void OnResult(std::size_t spec_index, const hs::SpecResult& row) override {
    const long long global =
        static_cast<long long>(global_indices_.at(spec_index));
    if (fault_.hang_at_cell == global) {
      // Wedge silently: no row, no heartbeat — only the orchestrator's
      // inactivity timeout ends this process.
      while (true) std::this_thread::sleep_for(std::chrono::seconds(3600));
    }
    if (fault_.crash_before_cell == global) {
      if (fault_.torn_final_line) {
        // A killed-mid-write tear: the first half of the row, no newline.
        std::ostringstream full;
        hs::WriteWorkerRow(full, static_cast<std::size_t>(global), row);
        const std::string text = full.str();
        out_ << text.substr(0, text.size() / 2);
        out_.flush();
      }
      if (fault_.signal != 0) std::raise(fault_.signal);
      std::_Exit(fault_.exit_code);
    }
    ++completed_;
    if (fault_.drop_every > 0 && completed_ % fault_.drop_every == 0) {
      Heartbeat("cell", global);  // computed, heartbeat sent — row "lost"
      return;
    }
    hs::WriteWorkerRow(out_, static_cast<std::size_t>(global), row);
    out_.flush();
    Heartbeat("cell", global);
  }

 private:
  std::ostream& out_;
  std::vector<std::size_t> global_indices_;
  hs::FaultPlan fault_;
  int completed_ = 0;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace hs;
  try {
    const CliArgs args(argc, argv);
    const std::string shard_path = args.GetString("shard", "");
    const std::string out_path = args.GetString("out", "");
    const int threads = static_cast<int>(args.GetInt("threads", 0));
    const int attempt = static_cast<int>(args.GetInt("attempt", 1));
    args.RejectUnknown();
    if (shard_path.empty() || out_path.empty()) {
      std::fprintf(stderr,
                   "usage: %s --shard=FILE --out=FILE [--threads=N] [--attempt=N]\n",
                   args.program().c_str());
      return 1;
    }
    if (attempt < 1) {
      std::fprintf(stderr, "hs_worker: --attempt must be >= 1\n");
      return 1;
    }

    FaultPlan fault = FaultPlanFromEnv();
    if (!fault.ActiveOn(attempt)) fault = FaultPlan{};  // healed on retry

    const std::vector<IndexedSpec> cells = ReadShardFileAt(shard_path);
    std::vector<SimSpec> specs;
    std::vector<std::size_t> global_indices;
    specs.reserve(cells.size());
    global_indices.reserve(cells.size());
    for (const IndexedSpec& cell : cells) {
      global_indices.push_back(cell.index);
      specs.push_back(cell.spec);
    }

    std::ofstream out(out_path, std::ios::binary | std::ios::trunc);
    if (!out) {
      std::fprintf(stderr, "hs_worker: cannot open --out=%s\n", out_path.c_str());
      return 1;
    }
    Heartbeat("start cells", static_cast<long long>(specs.size()));
    ShardOutputSink sink(out, std::move(global_indices), fault);

    ThreadPool pool(threads > 0 ? static_cast<std::size_t>(threads) : 0);
    ExperimentRunner runner(pool);
    runner.Run(specs, &sink);
    std::printf("hs_worker: ran %zu cells from %s\n", specs.size(),
                shard_path.c_str());
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "hs_worker: %s\n", e.what());
    return 1;
  }
}
