// hs_agent: the remote end of the `# hs-fabric v1` TCP transport.
//
//   hs_agent [--port=N] [--port-file=FILE] [--worker-bin=PATH]
//            [--work-dir=DIR] [--threads=N] [--bind-any]
//
// One daemon per host. It accepts one orchestrator connection at a time
// (the orchestrator opens one connection per work unit), receives the
// unit's cells, execs the local hs_worker against a scratch shard file,
// and streams the worker's output back live:
//
//   agent:        # hs-fabric v1                      greeting on accept
//   orchestrator: unit origin=K attempt=N cells=M [threads=T]
//                 <global index>\t<canonical spec>    x M
//                 end
//   agent:        row <worker JSONL row>              per completed cell
//                 # hs-progress ...                   heartbeats, verbatim
//                 log <worker stderr line>            diagnostics
//                 done exit=C | done signal=S         terminal status
//                 err msg=<reason>                    agent-side failure
//
// The agent closes the connection after `done`/`err` and goes back to
// accept. If the orchestrator hangs up mid-unit, the agent kills its
// worker and goes back to accept — a unit has no meaning without its
// orchestrator.
//
// Port discovery: --port=0 (default) binds an ephemeral port;
// --port-file=FILE atomically publishes the bound port (written to a temp
// file and renamed), so test harnesses and CI can start agents and learn
// their ports without a race.
//
// Fault injection: HS_FAULT's network tokens (drop-conn-at-cell,
// kill-agent-at-cell, torn-frame-at-cell, stall-at-cell — see
// exp/fault_plan.h) fire here, gated on the unit's attempt number, when
// the agent is about to forward the named cell's row. Worker-level tokens
// ride through untouched: the spawned hs_worker reads HS_FAULT itself.
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "exp/fault_plan.h"
#include "exp/transport.h"
#include "util/cli.h"
#include "util/file_util.h"
#include "util/socket.h"
#include "util/subprocess.h"

namespace {

using namespace hs;

/// Incrementally tails a growing file: Drain() returns every newly
/// completed line since the last call; the trailing unterminated fragment
/// stays pending (readable via partial() once the writer is done).
class FileTail {
 public:
  explicit FileTail(std::string path) : path_(std::move(path)) {}

  std::vector<std::string> Drain() {
    std::ifstream in(path_, std::ios::binary);
    std::vector<std::string> lines;
    if (!in) return lines;
    in.seekg(0, std::ios::end);
    const std::streamoff size = in.tellg();
    if (size <= offset_) return lines;
    in.seekg(offset_);
    std::string chunk(static_cast<std::size_t>(size - offset_), '\0');
    in.read(chunk.data(), static_cast<std::streamsize>(chunk.size()));
    chunk.resize(static_cast<std::size_t>(in.gcount()));
    offset_ += static_cast<std::streamoff>(chunk.size());
    pending_ += chunk;
    std::size_t start = 0;
    for (;;) {
      const std::size_t nl = pending_.find('\n', start);
      if (nl == std::string::npos) break;
      lines.push_back(pending_.substr(start, nl - start));
      start = nl + 1;
    }
    pending_.erase(0, start);
    return lines;
  }

  const std::string& partial() const { return pending_; }

 private:
  std::string path_;
  std::streamoff offset_ = 0;
  std::string pending_;
};

/// Kills + reaps the worker on every exit path — a thrown SendAll (the
/// orchestrator reset the connection) must not trip the Subprocess
/// zombie assert.
class Reaper {
 public:
  explicit Reaper(Subprocess& proc) : proc_(proc) {}
  ~Reaper() {
    if (proc_.running()) {
      proc_.Kill();
      proc_.Wait();
    }
  }

 private:
  Subprocess& proc_;
};

/// Global spec index of a worker JSONL row (`{"index":N,...`), or -1 when
/// the line is not a row (the agent forwards it anyway; the orchestrator
/// classifies it).
long long CellIndexOf(const std::string& line) {
  constexpr const char* kPrefix = "{\"index\":";
  if (line.rfind(kPrefix, 0) != 0) return -1;
  errno = 0;
  char* end = nullptr;
  const long long value = std::strtoll(line.c_str() + 9, &end, 10);
  if (end == line.c_str() + 9 || errno == ERANGE || value < 0) return -1;
  return value;
}

struct UnitHeader {
  std::size_t origin = 0;
  int attempt = 1;
  std::size_t cells = 0;
  int threads = 0;
};

UnitHeader ParseUnitHeader(const std::string& line) {
  // "unit origin=K attempt=N cells=M [threads=T]"
  UnitHeader header;
  bool saw_cells = false;
  std::size_t pos = 5;  // past "unit "
  while (pos < line.size()) {
    std::size_t space = line.find(' ', pos);
    if (space == std::string::npos) space = line.size();
    const std::string token = line.substr(pos, space - pos);
    pos = space + 1;
    if (token.empty()) continue;
    const std::size_t eq = token.find('=');
    if (eq == std::string::npos) {
      throw std::runtime_error("bad unit header token '" + token + "'");
    }
    const std::string key = token.substr(0, eq);
    const long long value = std::stoll(token.substr(eq + 1));
    if (value < 0) throw std::runtime_error("negative value in '" + token + "'");
    if (key == "origin") {
      header.origin = static_cast<std::size_t>(value);
    } else if (key == "attempt") {
      header.attempt = static_cast<int>(value);
    } else if (key == "cells") {
      header.cells = static_cast<std::size_t>(value);
      saw_cells = true;
    } else if (key == "threads") {
      header.threads = static_cast<int>(value);
    } else {
      throw std::runtime_error("unknown unit header key '" + key + "'");
    }
  }
  if (!saw_cells) throw std::runtime_error("unit header missing cells=");
  return header;
}

struct AgentConfig {
  std::string worker_bin;
  std::string work_dir;
  int threads = 0;
};

/// Serves one unit on `conn`. Throws on protocol violations and send
/// failures; the caller answers with `err msg=` when the connection still
/// works and drops it otherwise.
void ServeUnit(Socket& conn, const AgentConfig& config, std::size_t unit_seq) {
  SendLine(conn, kFabricGreeting);

  std::string header_line;
  const RecvLineStatus header_status = conn.RecvLineWithTimeout(30.0, &header_line);
  if (header_status != RecvLineStatus::kLine) return;  // silent/idle probe: drop
  if (header_line.rfind("unit ", 0) != 0) {
    throw std::runtime_error("expected 'unit ...' header, got '" + header_line + "'");
  }
  const UnitHeader header = ParseUnitHeader(header_line);

  std::string shard_body = "# hs-shard v1\n";
  for (std::size_t i = 0; i < header.cells; ++i) {
    std::string cell_line;
    if (conn.RecvLineWithTimeout(10.0, &cell_line) != RecvLineStatus::kLine) {
      throw std::runtime_error("connection ended mid-unit (cell " +
                               std::to_string(i) + " of " +
                               std::to_string(header.cells) + ")");
    }
    if (cell_line.find('\t') == std::string::npos) {
      throw std::runtime_error("bad cell line (want '<index>\\t<spec>'): '" +
                               cell_line + "'");
    }
    shard_body += cell_line;
    shard_body += '\n';
  }
  std::string end_line;
  if (conn.RecvLineWithTimeout(10.0, &end_line) != RecvLineStatus::kLine ||
      end_line != "end") {
    throw std::runtime_error("expected 'end' after " +
                             std::to_string(header.cells) + " cells");
  }

  FaultPlan fault = FaultPlanFromEnv();
  if (!fault.ActiveOn(header.attempt)) fault = FaultPlan{};  // healed on retry

  const std::string unit_dir = config.work_dir + "/unit_" + std::to_string(unit_seq);
  std::filesystem::create_directories(unit_dir);
  const std::string stem = unit_dir + "/shard";
  WriteTextFile(stem + ".specs", shard_body);

  std::vector<std::string> argv = {config.worker_bin, "--shard=" + stem + ".specs",
                                   "--out=" + stem + ".jsonl",
                                   "--attempt=" + std::to_string(header.attempt)};
  const int threads = header.threads > 0 ? header.threads : config.threads;
  if (threads > 0) argv.push_back("--threads=" + std::to_string(threads));
  Subprocess proc = Subprocess::Spawn(argv, stem + ".stdout", stem + ".stderr");
  Reaper reaper(proc);

  FileTail out_tail(stem + ".jsonl");
  FileTail err_tail(stem + ".stderr");
  bool worker_done = false;
  for (;;) {
    bool forwarded = false;
    for (const std::string& line : out_tail.Drain()) {
      const long long global = CellIndexOf(line);
      if (global >= 0 && fault.kill_agent_at_cell == global) {
        // A dead host: the whole agent vanishes, taking its worker along
        // (the worker dies with the process group is not guaranteed, so
        // kill it first for hygiene).
        proc.Kill();
        proc.Wait();
        std::raise(SIGKILL);
      }
      if (global >= 0 && fault.drop_conn_at_cell == global) {
        return;  // Reaper kills the worker; the orchestrator sees EOF
      }
      if (global >= 0 && fault.torn_frame_at_cell == global) {
        const std::string framed = "row " + line + "\n";
        conn.SendAll(std::string_view(framed).substr(0, framed.size() / 2));
        return;  // torn frame on the wire, then EOF
      }
      if (global >= 0 && fault.stall_at_cell == global) {
        // Keep the connection open but go silent: only the orchestrator's
        // inactivity monitor can end this unit. Its hangup releases us.
        proc.Kill();
        proc.Wait();
        while (!conn.PeerClosed()) {
          std::this_thread::sleep_for(std::chrono::milliseconds(50));
        }
        return;
      }
      SendLine(conn, "row " + line);
      forwarded = true;
    }
    for (const std::string& line : err_tail.Drain()) {
      if (line.rfind("# hs-progress", 0) == 0) {
        SendLine(conn, line);  // heartbeats travel verbatim
      } else {
        SendLine(conn, "log " + line);
      }
      forwarded = true;
    }
    if (worker_done) break;
    if (proc.Poll()) {
      worker_done = true;  // one more drain pass for the final rows
      continue;
    }
    if (!forwarded) {
      if (conn.PeerClosed()) return;  // orchestrator gave up on this unit
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  }

  // A trailing unterminated fragment is a torn write: forward it as-is —
  // the orchestrator's malformed-final-row rule classifies it.
  if (!out_tail.partial().empty()) SendLine(conn, "row " + out_tail.partial());

  const ProcessStatus status = proc.Wait();
  if (!status.spawned) {
    SendLine(conn, "err msg=worker spawn failed: " + status.error);
    return;
  }
  if (status.signaled) {
    SendLine(conn, "done signal=" + std::to_string(status.term_signal));
  } else {
    SendLine(conn, "done exit=" + std::to_string(status.exit_code));
  }
  if (status.ok()) RemoveTreeBestEffort(unit_dir);
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const CliArgs args(argc, argv);
    const std::uint16_t port =
        static_cast<std::uint16_t>(args.GetInt("port", 0));
    const std::string port_file = args.GetString("port-file", "");
    AgentConfig config;
    config.worker_bin = args.GetString("worker-bin", "");
    config.work_dir = args.GetString("work-dir", "");
    config.threads = static_cast<int>(args.GetInt("threads", 0));
    const bool bind_any = args.GetBool("bind-any", false);
    args.RejectUnknown();

    if (config.worker_bin.empty()) {
      const std::string dir = SelfExeDir();
      config.worker_bin = dir.empty() ? std::string("hs_worker") : dir + "/hs_worker";
    }
    if (config.work_dir.empty()) {
      config.work_dir = MakeTempDir("hs-agent-");
    } else {
      std::filesystem::create_directories(config.work_dir);
    }

    TcpListener listener(port, bind_any);
    if (!port_file.empty()) {
      // Atomic publish: harnesses poll for the file, then read the port.
      const std::string tmp = port_file + ".tmp";
      WriteTextFile(tmp, std::to_string(listener.port()) + "\n");
      if (std::rename(tmp.c_str(), port_file.c_str()) != 0) {
        std::fprintf(stderr, "hs_agent: cannot publish port file %s\n",
                     port_file.c_str());
        return 1;
      }
    }
    std::fprintf(stderr, "hs_agent: listening on %s:%u, worker %s\n",
                 bind_any ? "0.0.0.0" : "127.0.0.1", listener.port(),
                 config.worker_bin.c_str());

    for (std::size_t unit_seq = 0;; ++unit_seq) {
      Socket conn = listener.Accept();
      try {
        ServeUnit(conn, config, unit_seq);
      } catch (const std::exception& e) {
        std::fprintf(stderr, "hs_agent: unit %zu failed: %s\n", unit_seq, e.what());
        try {
          SendLine(conn, std::string("err msg=") + e.what());
        } catch (const std::exception&) {
          // The connection is gone; the orchestrator sees EOF instead.
        }
      }
    }
  } catch (const std::invalid_argument& e) {
    std::fprintf(stderr, "hs_agent: %s\n", e.what());
    return 2;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "hs_agent: %s\n", e.what());
    return 1;
  }
}
