// hs_server: the persistent scheduler service.
//
//   hs_server --spec=STRING [--port=N] [--port-file=FILE] [--headroom=N]
//
// Loads the spec (trace + config), opens an online SimulationSession with
// --headroom live-submission slots, binds 127.0.0.1:--port (0, the
// default, picks an ephemeral port) and serves hs-session v1 verbs to any
// number of concurrent clients (thread per connection; mutations
// serialized through the op log, what-ifs forked off-thread) until a
// `shutdown` verb arrives on any connection. --port-file writes the bound
// port as one line — the rendezvous for scripts that start the server with
// --port=0 (the CI smoke does).
//
// Exit status: 0 on clean shutdown; 1 on any error with the reason on
// stderr.
#include <cstdio>
#include <string>

#include "exp/sim_spec.h"
#include "service/server.h"
#include "service/service_session.h"
#include "util/cli.h"
#include "util/file_util.h"

int main(int argc, char** argv) {
  using namespace hs;
  try {
    const CliArgs args(argc, argv);
    const std::string spec_text = args.GetString("spec", "");
    const int port = static_cast<int>(args.GetInt("port", 0));
    const std::string port_file = args.GetString("port-file", "");
    const std::int64_t headroom =
        args.GetInt("headroom", static_cast<std::int64_t>(ServiceSession::kDefaultHeadroom));
    args.RejectUnknown();
    if (spec_text.empty() || port < 0 || port > 65535 || headroom < 1) {
      std::fprintf(stderr,
                   "usage: %s --spec=STRING [--port=N] [--port-file=FILE] "
                   "[--headroom=N]\n",
                   args.program().c_str());
      return 1;
    }

    const SimSpec spec = SimSpec::Parse(spec_text);
    ServiceSession session(spec, static_cast<std::size_t>(headroom));
    ScheduleServer server(session, static_cast<std::uint16_t>(port));
    if (!port_file.empty()) {
      WriteTextFile(port_file, std::to_string(server.port()) + "\n");
    }
    std::printf("hs_server: %s on 127.0.0.1:%u (%zu jobs, %d nodes)\n",
                spec.ToString().c_str(), server.port(),
                session.live().trace().jobs.size(),
                session.live().trace().num_nodes);
    std::fflush(stdout);
    server.Serve();
    std::printf("hs_server: shutdown at t=%lld after %zu ops\n",
                static_cast<long long>(session.now()), session.ops_logged());
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "hs_server: %s\n", e.what());
    return 1;
  }
}
