// bench_check: CI gate comparing a fresh bench_hotpath JSON report against
// the committed baseline. Fails (exit 1) when any family present in BOTH
// files regressed by more than the allowed fraction (default 30% — wide
// enough to ride out shared-runner noise, tight enough to catch a real
// hot-path regression).
//
// Usage: bench_check <current.json> <baseline.json> [--max-regression=0.30]
//
// The reports are the flat JSON bench_hotpath emits; families are matched
// by name, so adding or removing a family never breaks the gate — only a
// family in both reports is compared.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>

namespace {

/// Reads a whole file; empty string on failure.
std::string Slurp(const std::string& path) {
  std::ifstream in(path);
  if (!in) return "";
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

/// Extracts every `"name": {"unit": ..., "median": <v>, ...}` family from a
/// bench_hotpath report. Deliberately the same crude scan the benchmark
/// itself uses for its baseline column — no JSON dependency.
std::map<std::string, double> Families(const std::string& text) {
  std::map<std::string, double> out;
  std::size_t pos = 0;
  while ((pos = text.find("{\"unit\"", pos)) != std::string::npos) {
    // Backtrack over `: ` to the closing quote of the family name.
    const std::size_t q2 = text.rfind('"', pos);
    if (q2 == std::string::npos || q2 == 0) break;
    const std::size_t q1 = text.rfind('"', q2 - 1);
    if (q1 == std::string::npos) break;
    const std::string name = text.substr(q1 + 1, q2 - q1 - 1);
    const std::size_t med = text.find("\"median\":", pos);
    if (med == std::string::npos) break;
    const double value = std::strtod(text.c_str() + med + 9, nullptr);
    if (!name.empty() && value > 0.0) out[name] = value;
    pos = med;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::string current_path, baseline_path;
  double max_regression = 0.30;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--max-regression=", 17) == 0) {
      max_regression = std::strtod(arg + 17, nullptr);
    } else if (current_path.empty()) {
      current_path = arg;
    } else if (baseline_path.empty()) {
      baseline_path = arg;
    } else {
      std::fprintf(stderr, "bench_check: unexpected argument '%s'\n", arg);
      return 2;
    }
  }
  if (baseline_path.empty() || max_regression <= 0.0 || max_regression >= 1.0) {
    std::fprintf(stderr,
                 "usage: bench_check <current.json> <baseline.json> "
                 "[--max-regression=0.30]\n");
    return 2;
  }

  const std::string current_text = Slurp(current_path);
  const std::string baseline_text = Slurp(baseline_path);
  if (current_text.empty() || baseline_text.empty()) {
    std::fprintf(stderr, "bench_check: cannot read %s\n",
                 current_text.empty() ? current_path.c_str() : baseline_path.c_str());
    return 2;
  }

  const auto current = Families(current_text);
  const auto baseline = Families(baseline_text);
  int compared = 0;
  int failed = 0;
  const double floor = 1.0 - max_regression;
  for (const auto& [name, base_median] : baseline) {
    const auto it = current.find(name);
    if (it == current.end()) continue;
    ++compared;
    const double ratio = it->second / base_median;
    const bool bad = ratio < floor;
    failed += bad ? 1 : 0;
    std::printf("  %-22s %10.3g vs %10.3g   (%.2fx)%s\n", name.c_str(), it->second,
                base_median, ratio, bad ? "  REGRESSION" : "");
  }
  if (compared == 0) {
    std::fprintf(stderr, "bench_check: no common families between reports\n");
    return 2;
  }
  if (failed > 0) {
    std::printf("bench_check: FAIL — %d/%d families regressed beyond %.0f%%\n", failed,
                compared, max_regression * 100.0);
    return 1;
  }
  std::printf("bench_check: OK — %d families within %.0f%% of baseline\n", compared,
              max_regression * 100.0);
  return 0;
}
