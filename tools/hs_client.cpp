// hs_client: one-shot client for a running hs_server.
//
//   hs_client --port=N VERB [key=value]...
//   hs_client --oracle-snapshot=FILE VERB [key=value]...
//
// Joins the positional arguments into one hs-session v1 request line
// (values escaped), sends it, and prints every response line to stdout as
// it arrives (so `watch` streams live ticks; `ok n=0` marks an unbounded
// stream that ends when the server closes it).
// Exit status: 0 when the response starts with `ok`, 1 otherwise.
//
// --oracle-snapshot bypasses the network entirely: it restores a
// ServiceSession from a snapshot file (event-sourced op-log replay) and
// dispatches the same verb locally with the what-if fork fast path
// disabled. Diffing its `whatif` output against the live server's answers
// is the CI smoke's fork-vs-replay determinism check.
#include <cstdio>
#include <string>
#include <vector>

#include "service/protocol.h"
#include "service/server.h"
#include "service/service_session.h"
#include "util/cli.h"
#include "util/socket.h"

namespace {

/// Re-assembles `VERB key=value...` argv tokens into a wire request line,
/// escaping each value (argv values arrive unescaped from the shell).
std::string BuildRequestLine(const std::vector<std::string>& positional) {
  std::vector<std::pair<std::string, std::string>> args;
  for (std::size_t i = 1; i < positional.size(); ++i) {
    const std::string& token = positional[i];
    const std::size_t eq = token.find('=');
    if (eq == std::string::npos || eq == 0) {
      throw std::invalid_argument("argument '" + token + "' is not key=value");
    }
    args.emplace_back(token.substr(0, eq), token.substr(eq + 1));
  }
  return hs::FormatRequest(positional[0], args);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace hs;
  try {
    const CliArgs args(argc, argv);
    const int port = static_cast<int>(args.GetInt("port", 0));
    const std::string oracle = args.GetString("oracle-snapshot", "");
    args.RejectUnknown();
    if (args.positional().empty() || (oracle.empty() && port <= 0)) {
      std::fprintf(stderr,
                   "usage: %s --port=N VERB [key=value]...\n"
                   "       %s --oracle-snapshot=FILE VERB [key=value]...\n",
                   args.program().c_str(), args.program().c_str());
      return 1;
    }
    const std::string request = BuildRequestLine(args.positional());

    if (!oracle.empty()) {
      const auto session = ServiceSession::RestoreFrom(oracle);
      DispatchOptions options;
      options.force_replay = true;  // the oracle answers via op-log replay
      const std::vector<std::string> lines =
          HandleRequestLine(*session, request, options).lines;
      for (const std::string& line : lines) std::printf("%s\n", line.c_str());
      return !lines.empty() && lines.front().rfind("ok", 0) == 0 ? 0 : 1;
    }

    Socket sock = ConnectLoopback(static_cast<std::uint16_t>(port));
    const std::optional<std::string> greeting = sock.RecvLine();
    if (!greeting.has_value() || *greeting != kWireGreeting) {
      std::fprintf(stderr, "hs_client: bad greeting from server\n");
      return 1;
    }
    SendLine(sock, request);
    const std::optional<std::string> first = sock.RecvLine();
    if (!first.has_value()) {
      std::fprintf(stderr, "hs_client: server closed the connection\n");
      return 1;
    }
    std::printf("%s\n", first->c_str());
    std::fflush(stdout);
    const bool ok = first->rfind("ok", 0) == 0;
    // Multi-line responses are framed `ok n=K ... end`; lines stream to
    // stdout as they arrive (a `watch` tick shows up when it happens, not
    // when the stream ends). `ok n=0` is an unbounded stream: the server
    // closing it is the normal end, not a truncation.
    if (first->rfind("ok n=", 0) == 0) {
      const bool unbounded = first->rfind("ok n=0 ", 0) == 0 || *first == "ok n=0";
      for (;;) {
        const std::optional<std::string> line = sock.RecvLine();
        if (!line.has_value()) {
          if (unbounded) break;
          std::fprintf(stderr, "hs_client: truncated response\n");
          return 1;
        }
        std::printf("%s\n", line->c_str());
        std::fflush(stdout);
        if (*line == "end") break;
      }
    }
    return ok ? 0 : 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "hs_client: %s\n", e.what());
    return 1;
  }
}
