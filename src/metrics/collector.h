// Metrics collection (§IV-D).
//
// The collector observes every lifecycle transition the scheduler makes and
// produces the paper's user- and system-level metrics:
//   1. job turnaround time (overall and per class),
//   2. on-demand instant-start rate,
//   3. preemption ratio (rigid / malleable),
//   4. system utilization (useful node-hours over elapsed node-hours,
//      excluding computation wasted by preemption, setup and checkpoints).
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>

#include "util/stats.h"
#include "util/time.h"
#include "workload/job.h"

namespace hs {

enum class PreemptKind : std::uint8_t {
  kArrivalKill = 0,     // PAA: killed at on-demand arrival
  kDrained = 1,         // malleable warned and handed its nodes over
  kPlanned = 2,         // CUP: preempted ahead of the predicted arrival
  kBackfillKill = 3,    // tenant killed when the reservation owner arrived
  kFailure = 4,         // hardware failure (failure-injection extension);
                        // counted separately from scheduler preemptions
};

struct SimResult {
  // User-level (hours).
  double avg_turnaround_h = 0.0;
  double rigid_turnaround_h = 0.0;
  double malleable_turnaround_h = 0.0;
  double od_turnaround_h = 0.0;
  double avg_wait_h = 0.0;

  // On-demand responsiveness.
  double od_instant_rate = 0.0;         // delay <= instant threshold
  double od_instant_rate_strict = 0.0;  // delay == 0
  double od_avg_delay_s = 0.0;

  // Preemption ratios (distinct jobs preempted / jobs of that class).
  double rigid_preempt_ratio = 0.0;
  double malleable_preempt_ratio = 0.0;
  double malleable_shrink_ratio = 0.0;

  // System-level. `utilization` follows the paper's definition: node-hours
  // used for job execution minus computation wasted by preemption, over
  // elapsed node-hours. `useful_utilization` is stricter (also excludes
  // setup and checkpoint overhead); `allocated_utilization` counts every
  // allocated node-hour.
  double utilization = 0.0;
  double useful_utilization = 0.0;
  double allocated_utilization = 0.0;
  /// Mean busy fraction over the submission window only (first..last
  /// submit), excluding the drain tail; set by RunSimulation.
  double window_utilization = 0.0;
  double lost_node_hours = 0.0;        // discarded computation
  double setup_node_hours = 0.0;
  double checkpoint_node_hours = 0.0;

  // Volume counters.
  std::size_t jobs_completed = 0;
  std::size_t jobs_killed = 0;
  std::size_t od_jobs = 0;
  std::size_t preemptions = 0;  // scheduler-induced (excludes failures)
  std::size_t failures = 0;     // hardware-failure interruptions
  std::size_t shrinks = 0;
  std::size_t expands = 0;

  // Scheduling-decision wall-clock cost (Observation 10).
  double decision_avg_us = 0.0;
  double decision_max_us = 0.0;
  std::size_t decisions = 0;

  SimTime makespan = 0;  // first submit .. last completion
};

class Collector {
 public:
  /// `instant_threshold`: an on-demand start within this delay counts as
  /// "instant" (default tolerates the 2-minute drain warning; see DESIGN.md).
  explicit Collector(SimTime instant_threshold = 5 * kMinute)
      : instant_threshold_(instant_threshold) {}

  void OnSubmit(const JobRecord& job, SimTime now);
  void OnStart(const JobRecord& job, SimTime now, int alloc, bool is_restart);
  void OnFinish(const JobRecord& job, SimTime now);
  /// `lost_node_seconds`: computation discarded because the job hit its
  /// runtime-estimate limit.
  void OnKill(const JobRecord& job, SimTime now, double lost_node_seconds = 0.0);
  void OnPreempt(const JobRecord& job, SimTime now, double lost_node_seconds,
                 PreemptKind kind);
  void OnShrink(const JobRecord& job, SimTime now, int from_alloc, int to_alloc);
  void OnExpand(const JobRecord& job, SimTime now, int from_alloc, int to_alloc);
  /// Setup node-seconds actually consumed by an execution (charged when the
  /// execution stops, so mid-setup preemptions are charged pro-rata).
  void OnSetupPaid(const JobRecord& job, double node_seconds);
  void OnCheckpointOverhead(const JobRecord& job, double node_seconds);
  /// Wall-clock cost of one mechanism decision, in microseconds.
  void OnDecision(double micros);

  /// Finalizes against the machine: `busy_node_seconds` is the allocation
  /// integral from the cluster, `num_nodes` the machine size.
  SimResult Finalize(int num_nodes, double busy_node_seconds) const;

  /// Per-job lifecycle timestamps as observed so far (kNever = not yet).
  struct JobTimes {
    SimTime first_submit = kNever;
    SimTime first_start = kNever;
    SimTime completion = kNever;
    bool preempted = false;
    bool killed = false;
  };

  /// Lifecycle view of one job; nullopt before its first submit event.
  /// The query-job / what-if probe-start detection hook.
  std::optional<JobTimes> Times(JobId id) const {
    const auto it = jobs_.find(id);
    if (it == jobs_.end()) return std::nullopt;
    return JobTimes{it->second.first_submit, it->second.first_start,
                    it->second.completion, it->second.preempted,
                    it->second.killed};
  }

  SimTime instant_threshold() const { return instant_threshold_; }

 private:
  struct PerJob {
    SimTime first_submit = kNever;
    SimTime first_start = kNever;
    SimTime completion = kNever;
    bool preempted = false;
    bool shrunk = false;
    bool killed = false;
    JobClass klass = JobClass::kRigid;
  };

  SimTime instant_threshold_;
  std::unordered_map<JobId, PerJob> jobs_;
  double lost_node_seconds_ = 0.0;
  double setup_node_seconds_ = 0.0;
  double checkpoint_node_seconds_ = 0.0;
  double useful_node_seconds_ = 0.0;
  std::size_t preemptions_ = 0;
  std::size_t failures_ = 0;
  std::size_t shrinks_ = 0;
  std::size_t expands_ = 0;
  RunningStats decision_us_;
  SimTime first_submit_ = kNever;
  SimTime last_completion_ = 0;
};

}  // namespace hs
