#include "metrics/report.h"

#include <stdexcept>

namespace hs {

std::string RenderBaselineTable(const SimResult& r) {
  TextTable table({"Avg. Turnaround", "System Util.", "On-demand Instant Start Rate"});
  table.AddRow({Fmt(r.avg_turnaround_h, 1) + " hours", FmtPct(r.utilization),
                FmtPct(r.od_instant_rate)});
  return table.Render();
}

std::string RenderComparisonTable(const std::vector<LabeledResult>& rows) {
  TextTable table({"Mechanism", "Turnaround(h)", "Rigid(h)", "Malleable(h)", "OD(h)",
                   "Util", "InstantStart", "RigidPre", "MallPre", "Shrunk",
                   "Lost(node-h)"});
  for (const auto& row : rows) {
    const SimResult& r = row.result;
    table.AddRow({row.label, Fmt(r.avg_turnaround_h, 1), Fmt(r.rigid_turnaround_h, 1),
                  Fmt(r.malleable_turnaround_h, 1), Fmt(r.od_turnaround_h, 1),
                  FmtPct(r.utilization, 1), FmtPct(r.od_instant_rate, 1),
                  FmtPct(r.rigid_preempt_ratio, 1), FmtPct(r.malleable_preempt_ratio, 1),
                  FmtPct(r.malleable_shrink_ratio, 1), Fmt(r.lost_node_hours, 0)});
  }
  return table.Render();
}

std::string RenderMetricGrid(const std::string& metric_name,
                             const std::vector<std::string>& mechanisms,
                             const std::vector<std::string>& workloads,
                             const std::vector<std::vector<double>>& cells,
                             int digits, bool percent) {
  if (cells.size() != mechanisms.size()) {
    throw std::invalid_argument("RenderMetricGrid: row count mismatch");
  }
  std::vector<std::string> header = {metric_name};
  header.insert(header.end(), workloads.begin(), workloads.end());
  TextTable table(header);
  for (std::size_t m = 0; m < mechanisms.size(); ++m) {
    if (cells[m].size() != workloads.size()) {
      throw std::invalid_argument("RenderMetricGrid: column count mismatch");
    }
    std::vector<std::string> row = {mechanisms[m]};
    for (const double v : cells[m]) {
      row.push_back(percent ? FmtPct(v, digits) : Fmt(v, digits));
    }
    table.AddRow(std::move(row));
  }
  return table.Render();
}

}  // namespace hs
