// Generic (time, value) series with fixed-width bucket aggregation; used by
// benches for weekly on-demand counts (Fig. 5) and utilization profiles.
#pragma once

#include <vector>

#include "util/time.h"

namespace hs {

class TimeSeries {
 public:
  void Add(SimTime t, double value);

  /// Sums values per bucket of width `bucket` covering [0, horizon).
  std::vector<double> BucketSums(SimTime bucket, SimTime horizon) const;

  /// Bucket means (0 for empty buckets).
  std::vector<double> BucketMeans(SimTime bucket, SimTime horizon) const;

  std::size_t size() const { return points_.size(); }

 private:
  struct Point {
    SimTime t;
    double v;
  };
  std::vector<Point> points_;
};

/// Renders a one-line ASCII sparkline of the series (for bench output).
std::string Sparkline(const std::vector<double>& values);

}  // namespace hs
