// Report rendering: turns SimResults into the paper-style tables printed by
// the bench binaries (Table II single row; Fig. 6-style mechanism x workload
// grids; Fig. 7-style checkpoint sweeps).
#pragma once

#include <string>
#include <vector>

#include "metrics/collector.h"
#include "util/table.h"

namespace hs {

/// One labelled result (e.g. "CUA&SPAA on W2").
struct LabeledResult {
  std::string label;
  SimResult result;
};

/// Table II: a single-row baseline summary.
std::string RenderBaselineTable(const SimResult& result);

/// A full metric grid: one row per labelled result, the paper's columns.
std::string RenderComparisonTable(const std::vector<LabeledResult>& rows);

/// Fig. 6-style series: one table per metric, mechanisms as rows and
/// workloads as columns. `cell(i_mech, i_workload)` supplies the value.
std::string RenderMetricGrid(const std::string& metric_name,
                             const std::vector<std::string>& mechanisms,
                             const std::vector<std::string>& workloads,
                             const std::vector<std::vector<double>>& cells,
                             int digits = 2, bool percent = false);

}  // namespace hs
