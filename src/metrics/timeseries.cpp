#include "metrics/timeseries.h"

#include <algorithm>
#include <cassert>
#include <string>

namespace hs {

void TimeSeries::Add(SimTime t, double value) { points_.push_back({t, value}); }

std::vector<double> TimeSeries::BucketSums(SimTime bucket, SimTime horizon) const {
  assert(bucket > 0 && horizon > 0);
  std::vector<double> sums(static_cast<std::size_t>((horizon + bucket - 1) / bucket), 0.0);
  for (const auto& p : points_) {
    if (p.t < 0 || p.t >= horizon) continue;
    sums[static_cast<std::size_t>(p.t / bucket)] += p.v;
  }
  return sums;
}

std::vector<double> TimeSeries::BucketMeans(SimTime bucket, SimTime horizon) const {
  assert(bucket > 0 && horizon > 0);
  const auto n = static_cast<std::size_t>((horizon + bucket - 1) / bucket);
  std::vector<double> sums(n, 0.0);
  std::vector<std::size_t> counts(n, 0);
  for (const auto& p : points_) {
    if (p.t < 0 || p.t >= horizon) continue;
    const auto i = static_cast<std::size_t>(p.t / bucket);
    sums[i] += p.v;
    counts[i] += 1;
  }
  for (std::size_t i = 0; i < n; ++i) {
    if (counts[i] > 0) sums[i] /= static_cast<double>(counts[i]);
  }
  return sums;
}

std::string Sparkline(const std::vector<double>& values) {
  static const char* const kLevels[] = {" ", ".", ":", "-", "=", "+", "*", "#"};
  if (values.empty()) return {};
  double lo = values[0], hi = values[0];
  for (const double v : values) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  std::string out;
  for (const double v : values) {
    const double norm = (hi > lo) ? (v - lo) / (hi - lo) : 0.0;
    const int idx = std::min(7, static_cast<int>(norm * 8.0));
    out += kLevels[idx];
  }
  return out;
}

}  // namespace hs
