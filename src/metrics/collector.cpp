#include "metrics/collector.h"

#include <algorithm>

namespace hs {

void Collector::OnSubmit(const JobRecord& job, SimTime now) {
  auto& pj = jobs_[job.id];
  if (pj.first_submit == kNever) {
    pj.first_submit = now;
    pj.klass = job.klass;
  }
  if (first_submit_ == kNever || now < first_submit_) first_submit_ = now;
}

void Collector::OnStart(const JobRecord& job, SimTime now, int alloc, bool is_restart) {
  (void)alloc;
  (void)is_restart;
  auto& pj = jobs_[job.id];
  if (pj.first_start == kNever) pj.first_start = now;
}

void Collector::OnFinish(const JobRecord& job, SimTime now) {
  auto& pj = jobs_[job.id];
  pj.completion = now;
  useful_node_seconds_ += static_cast<double>(job.total_work());
  last_completion_ = std::max(last_completion_, now);
}

void Collector::OnKill(const JobRecord& job, SimTime now, double lost_node_seconds) {
  auto& pj = jobs_[job.id];
  pj.completion = now;
  pj.killed = true;
  lost_node_seconds_ += lost_node_seconds;
  last_completion_ = std::max(last_completion_, now);
}

void Collector::OnPreempt(const JobRecord& job, SimTime now, double lost_node_seconds,
                          PreemptKind kind) {
  (void)now;
  lost_node_seconds_ += lost_node_seconds;
  if (kind == PreemptKind::kFailure) {
    // Hardware failures are not the scheduler's doing: they count toward
    // lost work but not toward the preemption ratios of §IV-D.
    ++failures_;
    return;
  }
  jobs_[job.id].preempted = true;
  ++preemptions_;
}

void Collector::OnShrink(const JobRecord& job, SimTime now, int from_alloc, int to_alloc) {
  (void)now;
  (void)from_alloc;
  (void)to_alloc;
  jobs_[job.id].shrunk = true;
  ++shrinks_;
}

void Collector::OnExpand(const JobRecord& job, SimTime now, int from_alloc, int to_alloc) {
  (void)job;
  (void)now;
  (void)from_alloc;
  (void)to_alloc;
  ++expands_;
}

void Collector::OnSetupPaid(const JobRecord& job, double node_seconds) {
  (void)job;
  setup_node_seconds_ += node_seconds;
}

void Collector::OnCheckpointOverhead(const JobRecord& job, double node_seconds) {
  (void)job;
  checkpoint_node_seconds_ += node_seconds;
}

void Collector::OnDecision(double micros) { decision_us_.Add(micros); }

SimResult Collector::Finalize(int num_nodes, double busy_node_seconds) const {
  SimResult r;
  RunningStats turnaround_all, turnaround_rigid, turnaround_malleable, turnaround_od;
  RunningStats wait_all;
  std::size_t rigid_total = 0, rigid_preempted = 0;
  std::size_t malleable_total = 0, malleable_preempted = 0, malleable_shrunk = 0;
  std::size_t od_total = 0, od_instant = 0, od_instant_strict = 0;
  RunningStats od_delay;

  for (const auto& [id, pj] : jobs_) {
    if (pj.killed) {
      ++r.jobs_killed;
      continue;
    }
    if (pj.completion == kNever) continue;  // never finished (should not happen)
    ++r.jobs_completed;
    const double turnaround = static_cast<double>(pj.completion - pj.first_submit);
    turnaround_all.Add(turnaround);
    if (pj.first_start != kNever) {
      wait_all.Add(static_cast<double>(pj.first_start - pj.first_submit));
    }
    switch (pj.klass) {
      case JobClass::kRigid:
        ++rigid_total;
        rigid_preempted += pj.preempted ? 1 : 0;
        turnaround_rigid.Add(turnaround);
        break;
      case JobClass::kMalleable:
        ++malleable_total;
        malleable_preempted += pj.preempted ? 1 : 0;
        malleable_shrunk += pj.shrunk ? 1 : 0;
        turnaround_malleable.Add(turnaround);
        break;
      case JobClass::kOnDemand: {
        ++od_total;
        turnaround_od.Add(turnaround);
        const SimTime delay = pj.first_start - pj.first_submit;
        od_delay.Add(static_cast<double>(delay));
        od_instant += (delay <= instant_threshold_) ? 1 : 0;
        od_instant_strict += (delay == 0) ? 1 : 0;
        break;
      }
    }
  }

  r.avg_turnaround_h = turnaround_all.mean() / kHour;
  r.rigid_turnaround_h = turnaround_rigid.mean() / kHour;
  r.malleable_turnaround_h = turnaround_malleable.mean() / kHour;
  r.od_turnaround_h = turnaround_od.mean() / kHour;
  r.avg_wait_h = wait_all.mean() / kHour;

  r.od_jobs = od_total;
  if (od_total > 0) {
    r.od_instant_rate = static_cast<double>(od_instant) / od_total;
    r.od_instant_rate_strict = static_cast<double>(od_instant_strict) / od_total;
    r.od_avg_delay_s = od_delay.mean();
  }
  if (rigid_total > 0) {
    r.rigid_preempt_ratio = static_cast<double>(rigid_preempted) / rigid_total;
  }
  if (malleable_total > 0) {
    r.malleable_preempt_ratio = static_cast<double>(malleable_preempted) / malleable_total;
    r.malleable_shrink_ratio = static_cast<double>(malleable_shrunk) / malleable_total;
  }

  r.makespan = (first_submit_ == kNever) ? 0 : last_completion_ - first_submit_;
  const double capacity = static_cast<double>(num_nodes) *
                          static_cast<double>(std::max<SimTime>(1, r.makespan));
  r.utilization = (busy_node_seconds - lost_node_seconds_) / capacity;
  r.useful_utilization = useful_node_seconds_ / capacity;
  r.allocated_utilization = busy_node_seconds / capacity;
  r.lost_node_hours = lost_node_seconds_ / kHour;
  r.setup_node_hours = setup_node_seconds_ / kHour;
  r.checkpoint_node_hours = checkpoint_node_seconds_ / kHour;

  r.preemptions = preemptions_;
  r.failures = failures_;
  r.shrinks = shrinks_;
  r.expands = expands_;
  r.decision_avg_us = decision_us_.mean();
  r.decision_max_us = decision_us_.max();
  r.decisions = decision_us_.count();
  return r;
}

}  // namespace hs
