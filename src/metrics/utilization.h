// Time-resolved utilization tracking.
//
// The Collector produces one scalar utilization per run; this tracker
// additionally records the machine's busy-node profile over time so benches
// can show warm-up effects and verify measurement-window choices.
#pragma once

#include <vector>

#include "util/time.h"

namespace hs {

class UtilizationTracker {
 public:
  explicit UtilizationTracker(int num_nodes) : num_nodes_(num_nodes) {}

  /// Records that the busy-node count changed to `busy` at time `now`.
  /// Times must be non-decreasing.
  void Record(SimTime now, int busy);

  /// Mean busy fraction over [from, to); 0 when the window is empty.
  double MeanBusyFraction(SimTime from, SimTime to) const;

  /// Busy fraction per fixed-size bucket covering [0, horizon).
  std::vector<double> Profile(SimTime bucket, SimTime horizon) const;

  int num_nodes() const { return num_nodes_; }

 private:
  struct Sample {
    SimTime time;
    int busy;
  };
  int num_nodes_;
  std::vector<Sample> samples_;  // step function: value holds until next sample
};

}  // namespace hs
