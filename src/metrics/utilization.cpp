#include "metrics/utilization.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace hs {

void UtilizationTracker::Record(SimTime now, int busy) {
  if (!samples_.empty() && now < samples_.back().time) {
    throw std::runtime_error("UtilizationTracker: time went backwards");
  }
  if (!samples_.empty() && samples_.back().time == now) {
    samples_.back().busy = busy;
    return;
  }
  samples_.push_back({now, busy});
}

double UtilizationTracker::MeanBusyFraction(SimTime from, SimTime to) const {
  if (to <= from || samples_.empty() || num_nodes_ <= 0) return 0.0;
  double busy_integral = 0.0;
  for (std::size_t i = 0; i < samples_.size(); ++i) {
    const SimTime seg_start = std::max(from, samples_[i].time);
    const SimTime seg_end =
        std::min(to, (i + 1 < samples_.size()) ? samples_[i + 1].time : to);
    if (seg_end > seg_start) {
      busy_integral += static_cast<double>(seg_end - seg_start) * samples_[i].busy;
    }
  }
  return busy_integral /
         (static_cast<double>(to - from) * static_cast<double>(num_nodes_));
}

std::vector<double> UtilizationTracker::Profile(SimTime bucket, SimTime horizon) const {
  assert(bucket > 0);
  std::vector<double> out;
  for (SimTime t = 0; t < horizon; t += bucket) {
    out.push_back(MeanBusyFraction(t, std::min(horizon, t + bucket)));
  }
  return out;
}

}  // namespace hs
