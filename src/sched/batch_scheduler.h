// ExecutionEngine: job lifecycle management over the cluster.
//
// The engine owns the waiting queue and the running-job table and knows how
// to start, finish, kill, preempt, drain, shrink and expand executions,
// maintaining rigid checkpoint timelines and the malleable work-conserving
// progress model. It schedules its own finish/kill events through the
// Simulator but never *handles* events — the owning scheduler (baseline or
// hybrid) drives it and routes released nodes to reservations.
//
// Released-node protocol: every mutating call that frees nodes returns the
// node ids that landed in the *free pool* (nodes that snapped back to a
// reservation are already routed by the Cluster). The owner forwards them
// to its ReservationManager.
#pragma once

#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "checkpoint/checkpoint_model.h"
#include "metrics/collector.h"
#include "platform/cluster.h"
#include "sched/availability.h"
#include "sched/backfill.h"
#include "sched/policy.h"
#include "sched/queue_manager.h"
#include "sim/simulator.h"
#include "util/rng.h"
#include "workload/trace.h"

namespace hs {

struct EngineConfig {
  /// Ordering-policy name, resolved through PolicyRegistry() at engine
  /// construction (custom policies registered there are usable here).
  std::string policy = "FCFS";
  CheckpointConfig checkpoint;
  /// When false, malleable jobs are treated as rigid at their maximum size
  /// (the Table II baseline behaviour).
  bool malleable_flexible = true;
  /// Amazon-style warning granted to a malleable job before its nodes are
  /// taken (§III-A; progress is preserved).
  SimTime drain_warning = 2 * kMinute;

  /// Failure-injection extension (off by default): every execution draws an
  /// exponential failure time with mean failure_node_mtbf / alloc. A failure
  /// interrupts the job like an unplanned preemption — rigid executions
  /// restart from their last completed checkpoint, malleable ones keep the
  /// progress of finished tasks. This is the fault model the Daly interval
  /// assumes; benches use it to study checkpoint frequency under failures
  /// plus preemptions.
  bool inject_failures = false;
  SimTime failure_node_mtbf = 2LL * 365 * kDay;
  std::uint64_t failure_seed = 0xFA11;
};

/// A live execution.
struct RunningJob {
  JobId id = kNoJob;
  const JobRecord* rec = nullptr;
  int alloc = 0;
  int restarts = 0;
  SimTime first_submit = 0;
  SimTime start = 0;
  SimTime setup_end = 0;

  bool malleable_mode = false;  // work-conserving flexible sizing active

  // Rigid/on-demand execution (fixed size, checkpoint timeline).
  RigidTimeline timeline{0, 0, 0, 0};
  SimTime compute_remaining = 0;   // at execution start
  SimTime estimate_remaining = 0;  // user estimate of remaining setup+compute

  // Malleable execution (node-second budget).
  std::int64_t work_remaining = 0;      // at execution start
  std::int64_t est_work_remaining = 0;  // estimate-based budget
  std::int64_t work_done = 0;           // node-seconds accrued this execution
  SimTime last_advance = 0;

  // Scheduled events.
  EventId finish_event = kNoEvent;
  EventId kill_event = kNoEvent;
  EventId failure_event = kNoEvent;  // pending hardware failure (if injected)
  SimTime kill_time_abs = kNever;  // estimate-based completion bound

  // Drain (2-minute warning) state.
  bool draining = false;
  JobId drain_for = kNoJob;
  EventId drain_event = kNoEvent;
  SimTime drain_deadline = kNever;

  bool is_tenant = false;  // backfilled onto someone's reserved nodes
};

class ExecutionEngine {
 public:
  ExecutionEngine(const Trace& trace, const EngineConfig& config,
                  Collector& collector, Simulator& sim);

  /// Clone constructor (the session-fork path): value-copies cluster, queue,
  /// running table, checkpoint model and failure RNG mid-stream, rebinds the
  /// trace/collector/simulator references, recreates the (stateless) policy
  /// instance, and — when `trace` is a different object than the source's —
  /// repoints every per-job record pointer into it by id.
  ExecutionEngine(const ExecutionEngine& other, const Trace& trace,
                  Collector& collector, Simulator& sim);

  const JobRecord& record(JobId id) const { return trace_->jobs[static_cast<std::size_t>(id)]; }
  Cluster& cluster() { return cluster_; }
  const Cluster& cluster() const { return cluster_; }
  QueueManager& queue() { return queue_; }
  /// The engine's ordering-policy instance (shared so owners reuse the
  /// queue's cached ordered view instead of instantiating policy copies).
  const OrderingPolicy& policy() const { return *policy_; }
  const EngineConfig& config() const { return config_; }
  const CheckpointModel& checkpoint_model() const { return ckpt_; }

  // --- queue side ----------------------------------------------------------

  /// Fresh submission (the JobSubmit event).
  void EnqueueFresh(JobId id, SimTime now, bool boosted = false);

  /// Re-queues a previously preempted execution.
  void EnqueueResubmission(WaitingJob waiting, SimTime now);

  // --- starting ------------------------------------------------------------

  /// Starts a waiting job using its own reserved-idle nodes plus the free
  /// pool, with `alloc` total nodes. Returns false (leaving the queue
  /// untouched) if the nodes are not there.
  bool StartWaiting(JobId id, int alloc, SimTime now);

  /// Starts a waiting job as a *tenant* on the given reserved-idle nodes
  /// (reservation marks retained); used by backfill-on-reserved.
  void StartTenant(JobId id, const std::vector<int>& nodes, SimTime now);

  // --- stopping ------------------------------------------------------------

  /// Normal completion (the JobFinish event). Returns freed nodes.
  std::vector<int> FinishRunning(JobId id, SimTime now);

  /// Runtime-estimate kill (the JobKill event): the job is terminated and
  /// NOT resubmitted. Returns freed nodes.
  std::vector<int> KillAtEstimate(JobId id, SimTime now);

  /// Immediate preemption: rigid jobs lose work since their last completed
  /// checkpoint; malleable jobs keep their progress (loosely-coupled tasks).
  /// The job is resubmitted with its original submit time. Returns freed
  /// nodes.
  std::vector<int> PreemptNow(JobId id, SimTime now, PreemptKind kind);

  /// True when `event` is the pending failure event of `id`'s current
  /// execution (failure events are validated at fire time because restarts
  /// redraw them).
  bool IsCurrentFailureEvent(JobId id, EventId event) const;

  /// Starts the 2-minute warning on a running malleable job; its nodes hand
  /// over when the WarningExpire event fires. `od` is the on-demand job the
  /// nodes are destined for (validation at expiry).
  void BeginDrain(JobId id, JobId od, SimTime now);

  /// Completes a drain (WarningExpire): preserves progress, resubmits, and
  /// returns freed nodes.
  std::vector<int> CompleteDrain(JobId id, SimTime now);

  /// Aborts a pending drain (the on-demand job got its nodes elsewhere).
  void CancelDrain(JobId id);

  // --- malleable resizing --------------------------------------------------

  /// Shrinks a running malleable job by `nodes` (>= 1); runtime stretches
  /// work-conservingly. Returns the released nodes.
  std::vector<int> ShrinkBy(JobId id, int nodes, SimTime now);

  /// Expands a running malleable job onto free nodes.
  void ExpandByFromFree(JobId id, int nodes, SimTime now);

  // --- queries -------------------------------------------------------------

  bool IsRunning(JobId id) const { return running_.count(id) > 0; }
  bool IsWaiting(JobId id) const { return queue_.Contains(id); }
  const RunningJob* Running(JobId id) const;
  std::vector<JobId> RunningIds() const;  // ascending id order
  /// Unordered iteration over live executions (for order-independent
  /// aggregation; use RunningIds() when the visit order is behavior).
  const std::unordered_map<JobId, RunningJob>& running_jobs() const { return running_; }

  /// Estimate-based completion bound of a running job.
  SimTime EstimatedEnd(JobId id, SimTime now) const;

  /// Node-seconds wasted if the job were preempted right now: lost
  /// computation plus the setup it must re-pay (§III-B2's ordering key).
  double PreemptionCostNodeSec(JobId id, SimTime now) const;

  /// Absolute time at which the job's next checkpoint dump completes
  /// (kNever for non-checkpointing jobs or none left).
  SimTime NextCheckpointCompletion(JobId id, SimTime now) const;

  /// Nodes a running malleable job could give up (alloc - min); 0 if not
  /// malleable, draining, or a tenant.
  int ShrinkableNodes(JobId id) const;

  /// True when the job may be preempted (running, not on-demand, not
  /// already draining).
  bool IsPreemptable(JobId id) const;

  // --- the scheduling pass -------------------------------------------------

  /// One EASY pass over the free pool: starts whatever fits, reserves for
  /// the head job. Returns the number of jobs started.
  ///
  /// The pass plans against the incrementally-maintained availability
  /// profile (no per-pass RunningView snapshot or sort), and skips itself
  /// entirely when it is provably idempotent: the previous pass planned
  /// zero starts, the policy order cannot drift with the clock, none of
  /// the pass's inputs (cluster, queue, profile — each epoch-tracked) has
  /// changed, and the clock has not crossed a profile step. Decisions are
  /// byte-identical to the legacy recompute-from-scratch pass.
  int RunSchedulingPass(SimTime now);

  /// The maintained free-node availability timeline (one step per running
  /// job at its drift-free completion bound).
  const AvailabilityProfile& availability() const { return avail_; }

  /// Wall-estimate of a waiting job started now with `alloc` nodes.
  SimTime WallEstimate(const WaitingJob& w, int alloc) const;

  std::size_t jobs_finished() const { return jobs_finished_; }
  std::size_t jobs_killed() const { return jobs_killed_; }
  std::size_t running_count() const { return running_.size(); }

 private:
  RunningJob& MustRun(JobId id);
  const RunningJob& MustRun(JobId id) const;

  /// EstimatedEnd without the by-id lookup (hot-path form): the job's
  /// drift-free profile bound clamped to now.
  SimTime EstimatedEndOf(const RunningJob& r, SimTime now) const;

  /// The job's drift-free completion bound E: constant between engine
  /// mutations, with EstimatedEndOf(r, now) == max(E, now) (see
  /// availability.h for the derivation). This is the value the
  /// availability profile stores.
  static SimTime ProfileEndOf(const RunningJob& r);

  /// Re-syncs `id`'s availability-profile step with its RunningJob state
  /// (erases the step when the job is no longer running). Called by every
  /// mutation that changes an execution's allocation or completion bound.
  void SyncAvailability(JobId id);

  /// Creates the execution record, pays setup, schedules finish/kill.
  void BeginExecution(WaitingJob waiting, const std::vector<int>& nodes,
                      SimTime now, bool tenant);

  /// Brings a malleable job's work_done up to `now`.
  static void AdvanceProgress(RunningJob& r, SimTime now);
  /// Projected work_done at `now` without mutating.
  static std::int64_t ProjectedWork(const RunningJob& r, SimTime now);

  void ScheduleCompletionEvents(RunningJob& r, SimTime now);
  void CancelCompletionEvents(RunningJob& r);

  /// Turns a running job back into a WaitingJob with remaining demands;
  /// `saved_progress` is the rigid compute the resumed execution skips.
  WaitingJob MakeResubmission(const RunningJob& r, SimTime now, SimTime saved_progress,
                              std::int64_t malleable_done) const;

  /// Charges the overheads an execution actually consumed up to `now`:
  /// setup (pro-rata for mid-setup stops) and, for rigid jobs, wall time
  /// spent writing checkpoint dumps (including a partial dump at stop time).
  void AccountExecutionOverheads(const RunningJob& r, SimTime now);

  const Trace* trace_;
  EngineConfig config_;
  Collector* collector_;
  Simulator* sim_;
  Cluster cluster_;
  QueueManager queue_;
  std::unique_ptr<OrderingPolicy> policy_;
  CheckpointModel ckpt_;
  Rng failure_rng_;
  std::unordered_map<JobId, RunningJob> running_;
  std::size_t jobs_finished_ = 0;
  std::size_t jobs_killed_ = 0;

  /// Free-node step function over future time, kept in lockstep with
  /// running_ (SyncAvailability at every mutation).
  AvailabilityProfile avail_;

  /// Incremental schedule repair: a pass that planned zero starts records
  /// the epochs of everything it consulted plus the next profile step; a
  /// later pass with identical epochs, a time-invariant policy, and a
  /// clock still short of that step is provably a no-op and is skipped.
  /// Any start invalidates the cache (and bumps the epochs anyway).
  bool pass_cache_valid_ = false;
  std::uint64_t pass_cluster_epoch_ = 0;
  std::uint64_t pass_queue_epoch_ = 0;
  std::uint64_t pass_avail_epoch_ = 0;
  SimTime pass_next_step_ = kNever;
};

}  // namespace hs
