#include "sched/backfill.h"

#include <algorithm>
#include <cassert>

namespace hs {

namespace {

/// Earliest time (by estimates) at which `needed` nodes beyond `free_now`
/// plus the head job's requirement are available; also the spare nodes at
/// that moment. `running` must already be sorted by (est_end, id) — the
/// caller sorts once per pass instead of per call, since the sort dominated
/// this path. Returns {kNever, 0} if the requirement is unreachable.
std::pair<SimTime, int> ShadowFor(int free_now, int need_min,
                                  const std::vector<RunningView>& running) {
  int avail = free_now;
  for (const auto& r : running) {
    avail += r.alloc;
    if (avail >= need_min) return {r.est_end, avail - need_min};
  }
  return {kNever, 0};
}

}  // namespace

BackfillResult EasyBackfill(const BackfillInput& input) {
  assert(input.wall_estimate);
  BackfillResult result;
  int free = input.free_nodes;

  // One (est_end, id) sort shared by every shadow computation in this pass,
  // built lazily so passes where nothing blocks never pay it. The total
  // order makes the result independent of input.running's order.
  std::vector<RunningView> by_end;
  const auto sorted_running = [&]() -> const std::vector<RunningView>& {
    if (by_end.empty() && !input.running.empty()) {
      by_end = input.running;
      std::sort(by_end.begin(), by_end.end(),
                [](const RunningView& a, const RunningView& b) {
                  if (a.est_end != b.est_end) return a.est_end < b.est_end;
                  return a.id < b.id;
                });
    }
    return by_end;
  };

  for (const WaitingJob* w : input.queue) {
    const int held = input.held_nodes ? input.held_nodes(*w) : 0;
    const int need_min = std::max(0, w->min_size() - held);

    if (result.blocked_head == kNoJob) {
      if (need_min <= free) {
        const int from_free = std::min(w->size() - held, free);
        result.starts.push_back({w->id, held + from_free});
        free -= from_free;
      } else {
        result.blocked_head = w->id;
        const auto [shadow, extra] = ShadowFor(free, need_min, sorted_running());
        if (shadow == kNever) {
          // The head job cannot be satisfied even when everything running
          // ends (its nodes are held elsewhere, e.g. by reservations).
          // Be conservative: permit no backfill past it.
          result.shadow_time = input.now;
          result.extra_nodes = 0;
        } else {
          result.shadow_time = shadow;
          result.extra_nodes = extra;
        }
      }
      continue;
    }

    // Backfill phase: never delay the blocked head.
    if (need_min > free || w->min_size() <= 0) continue;
    // Path (a): largest allocation from the free pool; must end by the
    // shadow time.
    const int alloc_a = std::min(w->size() - held, free);
    if (alloc_a + held >= w->min_size() &&
        input.now + input.wall_estimate(*w, held + alloc_a) <= result.shadow_time) {
      result.starts.push_back({w->id, held + alloc_a});
      free -= alloc_a;
      continue;
    }
    // Path (b): restrict the free-pool draw to the head job's spare nodes;
    // such a start may run past the shadow time without delaying the head.
    const int alloc_b = std::min({w->size() - held, free, result.extra_nodes});
    if (alloc_b + held >= w->min_size() && alloc_b >= 0 && (alloc_b + held) > 0) {
      result.starts.push_back({w->id, held + alloc_b});
      free -= alloc_b;
      result.extra_nodes -= alloc_b;
    }
  }
  return result;
}

}  // namespace hs
