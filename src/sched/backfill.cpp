#include "sched/backfill.h"

#include <algorithm>
#include <cassert>

#include "sched/availability.h"

namespace hs {

namespace {

/// The queue walk shared by both entry points. `env` provides
/// WallEstimate/HeldNodes; `shadow_for(free, need_min)` answers the shadow
/// computation for the first blocked head ({kNever, 0} when unreachable).
template <typename Env, typename ShadowFn>
BackfillResult WalkQueue(int free_nodes, SimTime now,
                         const std::vector<const WaitingJob*>& queue,
                         const Env& env, ShadowFn&& shadow_for) {
  BackfillResult result;
  int free = free_nodes;

  for (const WaitingJob* w : queue) {
    const int held = env.HeldNodes(*w);
    const int need_min = std::max(0, w->min_size() - held);

    if (result.blocked_head == kNoJob) {
      if (need_min <= free) {
        const int from_free = std::min(w->size() - held, free);
        result.starts.push_back({w->id, held + from_free});
        free -= from_free;
      } else {
        result.blocked_head = w->id;
        const auto [shadow, extra] = shadow_for(free, need_min);
        if (shadow == kNever) {
          // The head job cannot be satisfied even when everything running
          // ends (its nodes are held elsewhere, e.g. by reservations).
          // Be conservative: permit no backfill past it.
          result.shadow_time = now;
          result.extra_nodes = 0;
        } else {
          result.shadow_time = shadow;
          result.extra_nodes = extra;
        }
      }
      continue;
    }

    // Backfill phase: never delay the blocked head.
    if (need_min > free || w->min_size() <= 0) continue;
    // Path (a): largest allocation from the free pool; must end by the
    // shadow time.
    const int alloc_a = std::min(w->size() - held, free);
    if (alloc_a + held >= w->min_size() &&
        now + env.WallEstimate(*w, held + alloc_a) <= result.shadow_time) {
      result.starts.push_back({w->id, held + alloc_a});
      free -= alloc_a;
      continue;
    }
    // Path (b): restrict the free-pool draw to the head job's spare nodes;
    // such a start may run past the shadow time without delaying the head.
    const int alloc_b = std::min({w->size() - held, free, result.extra_nodes});
    if (alloc_b + held >= w->min_size() && alloc_b >= 0 && (alloc_b + held) > 0) {
      result.starts.push_back({w->id, held + alloc_b});
      free -= alloc_b;
      result.extra_nodes -= alloc_b;
    }
  }
  return result;
}

/// Adapts the legacy std::function-based input to the walk's env shape.
struct FunctionEnv {
  const BackfillInput* input;
  SimTime WallEstimate(const WaitingJob& w, int alloc) const {
    return input->wall_estimate(w, alloc);
  }
  int HeldNodes(const WaitingJob& w) const {
    return input->held_nodes ? input->held_nodes(w) : 0;
  }
};

/// Earliest time (by estimates) at which `needed` nodes beyond `free_now`
/// plus the head job's requirement are available; also the spare nodes at
/// that moment. `running` must already be sorted by (est_end, id) — the
/// caller sorts once per pass instead of per call, since the sort dominated
/// this path. Returns {kNever, 0} if the requirement is unreachable.
std::pair<SimTime, int> ShadowFor(int free_now, int need_min,
                                  const std::vector<RunningView>& running) {
  int avail = free_now;
  for (const auto& r : running) {
    avail += r.alloc;
    if (avail >= need_min) return {r.est_end, avail - need_min};
  }
  return {kNever, 0};
}

}  // namespace

BackfillResult EasyBackfill(const BackfillInput& input) {
  assert(input.wall_estimate);
  // One (est_end, id) sort shared by every shadow computation in this pass,
  // built lazily so passes where nothing blocks never pay it. The total
  // order makes the result independent of input.running's order.
  std::vector<RunningView> by_end;
  const auto sorted_running = [&]() -> const std::vector<RunningView>& {
    if (by_end.empty() && !input.running.empty()) {
      by_end = input.running;
      std::sort(by_end.begin(), by_end.end(),
                [](const RunningView& a, const RunningView& b) {
                  if (a.est_end != b.est_end) return a.est_end < b.est_end;
                  return a.id < b.id;
                });
    }
    return by_end;
  };
  return WalkQueue(input.free_nodes, input.now, input.queue,
                   FunctionEnv{&input}, [&](int free, int need_min) {
                     return ShadowFor(free, need_min, sorted_running());
                   });
}

BackfillResult PlanBackfill(int free_nodes, SimTime now,
                            const AvailabilityProfile& avail,
                            const std::vector<const WaitingJob*>& queue,
                            const BackfillEnv& env) {
  return WalkQueue(free_nodes, now, queue, env, [&](int free, int need_min) {
    return avail.EarliestFit(free, need_min, now);
  });
}

}  // namespace hs
