// Waiting-queue container: insertion, removal, and policy-ordered views.
//
// Ordered() is the scheduler's per-pass hot path, so the sorted view is
// cached instead of rebuilt every call: every mutation that can change
// ordering inputs (Add, Remove, FindMutable — callers flip `boosted` /
// `partition_only` through it) bumps an epoch, and Ordered() re-sorts only
// when the epoch, the policy, or (for wait-aware policies) the clock has
// moved since the cached view was built. The comparator is a total order
// (ties end at the unique job id), so a cached view is bit-identical to a
// fresh sort.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "sched/policy.h"

namespace hs {

class QueueManager {
 public:
  QueueManager() = default;

  // Copying is part of the session-fork contract: the entries and the epoch
  // transfer, the ordered-view cache does not (its pointers target the
  // source's map nodes), so the copy rebuilds it on first Ordered() call —
  // bit-identical to the source's view, the comparator being a total order.
  QueueManager(const QueueManager& other) : jobs_(other.jobs_), epoch_(other.epoch_) {}
  QueueManager& operator=(const QueueManager& other) {
    jobs_ = other.jobs_;
    epoch_ = other.epoch_;
    cache_.clear();
    cache_valid_ = false;
    eligible_cache_.clear();
    eligible_valid_ = false;
    return *this;
  }

  /// Points every entry's `record` at the matching JobRecord in `jobs`
  /// (indexed by id). Used after a fork deep-copies the trace the records
  /// lived in; ordering inputs are unchanged, so the epoch stays put.
  void RebindRecords(const std::vector<JobRecord>& jobs);

  void Add(WaitingJob job);
  /// Removes and returns the entry; throws if absent.
  WaitingJob Remove(JobId id);
  bool Contains(JobId id) const;
  const WaitingJob* Find(JobId id) const;
  /// Mutable lookup. Conservatively invalidates the ordered-view cache:
  /// callers use it to edit fields the ordering depends on.
  WaitingJob* FindMutable(JobId id);

  std::size_t size() const { return jobs_.size(); }
  bool empty() const { return jobs_.empty(); }

  /// Bumped by every mutation that can change ordering inputs; schedulers
  /// key their own pass caches on it (paired with the cluster and
  /// availability-profile epochs).
  std::uint64_t epoch() const { return epoch_; }

  /// Entries ordered by (boosted first, policy key, first_submit, id).
  /// Served from the epoch-keyed cache when nothing relevant changed; the
  /// returned vector is the caller's own copy, safe across queue edits.
  std::vector<const WaitingJob*> Ordered(const OrderingPolicy& policy, SimTime now) const;

  /// Ordered() minus partition_only entries — the scheduling pass's view —
  /// filtered once per cache refresh instead of per pass. Returns a
  /// reference into the cache: valid only until the next queue mutation,
  /// so callers must finish reading before starting/removing jobs.
  const std::vector<const WaitingJob*>& OrderedEligible(const OrderingPolicy& policy,
                                                        SimTime now) const;

  /// Unordered view (iteration for metrics/tests).
  std::vector<const WaitingJob*> All() const;

 private:
  /// Refreshes the ordered cache if stale; returns it.
  const std::vector<const WaitingJob*>& EnsureOrdered(const OrderingPolicy& policy,
                                                      SimTime now) const;

  std::unordered_map<JobId, WaitingJob> jobs_;

  // Ordered-view cache. Entry pointers stay valid across map churn
  // (unordered_map nodes are stable) and any churn bumps epoch_, so a
  // cache hit never dereferences a removed entry.
  std::uint64_t epoch_ = 0;
  mutable std::vector<const WaitingJob*> cache_;
  mutable std::uint64_t cache_epoch_ = 0;
  mutable bool cache_valid_ = false;
  mutable std::string cache_policy_;
  mutable bool cache_time_invariant_ = false;
  mutable SimTime cache_now_ = 0;
  // Eligible (non-partition_only) projection of cache_; rebuilt lazily
  // after every cache_ refresh.
  mutable std::vector<const WaitingJob*> eligible_cache_;
  mutable bool eligible_valid_ = false;
};

}  // namespace hs
