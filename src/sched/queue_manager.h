// Waiting-queue container: insertion, removal, and policy-ordered views.
#pragma once

#include <unordered_map>
#include <vector>

#include "sched/policy.h"

namespace hs {

class QueueManager {
 public:
  void Add(WaitingJob job);
  /// Removes and returns the entry; throws if absent.
  WaitingJob Remove(JobId id);
  bool Contains(JobId id) const;
  const WaitingJob* Find(JobId id) const;
  WaitingJob* FindMutable(JobId id);

  std::size_t size() const { return jobs_.size(); }
  bool empty() const { return jobs_.empty(); }

  /// Entries ordered by (boosted first, policy key, first_submit, id).
  std::vector<const WaitingJob*> Ordered(const OrderingPolicy& policy, SimTime now) const;

  /// Unordered view (iteration for metrics/tests).
  std::vector<const WaitingJob*> All() const;

 private:
  std::unordered_map<JobId, WaitingJob> jobs_;
};

}  // namespace hs
