#include "sched/policy.h"

#include <cmath>
#include <stdexcept>

namespace hs {

const char* ToString(PolicyKind kind) {
  switch (kind) {
    case PolicyKind::kFcfs: return "FCFS";
    case PolicyKind::kSjf: return "SJF";
    case PolicyKind::kLjf: return "LJF";
    case PolicyKind::kSmallestFirst: return "SmallestFirst";
    case PolicyKind::kLargestFirst: return "LargestFirst";
    case PolicyKind::kWfp3: return "WFP3";
  }
  return "?";
}

namespace {

class FcfsPolicy final : public OrderingPolicy {
 public:
  const char* name() const override { return "FCFS"; }
  double Key(const WaitingJob& job, SimTime) const override {
    return static_cast<double>(job.first_submit);
  }
  bool time_invariant() const override { return true; }
};

class SjfPolicy final : public OrderingPolicy {
 public:
  const char* name() const override { return "SJF"; }
  double Key(const WaitingJob& job, SimTime) const override {
    return static_cast<double>(job.estimate_remaining);
  }
  bool time_invariant() const override { return true; }
};

class LjfPolicy final : public OrderingPolicy {
 public:
  const char* name() const override { return "LJF"; }
  double Key(const WaitingJob& job, SimTime) const override {
    return -static_cast<double>(job.estimate_remaining);
  }
  bool time_invariant() const override { return true; }
};

class SmallestFirstPolicy final : public OrderingPolicy {
 public:
  const char* name() const override { return "SmallestFirst"; }
  double Key(const WaitingJob& job, SimTime) const override {
    return static_cast<double>(job.size());
  }
  bool time_invariant() const override { return true; }
};

class LargestFirstPolicy final : public OrderingPolicy {
 public:
  const char* name() const override { return "LargestFirst"; }
  double Key(const WaitingJob& job, SimTime) const override {
    return -static_cast<double>(job.size());
  }
  bool time_invariant() const override { return true; }
};

/// WFP3 (from the ALCF scheduling literature): favors jobs with large
/// accumulated wait relative to their runtime, weighted by size.
class Wfp3Policy final : public OrderingPolicy {
 public:
  const char* name() const override { return "WFP3"; }
  double Key(const WaitingJob& job, SimTime now) const override {
    const double wait = static_cast<double>(now - job.enqueue_time);
    const double runtime = std::max<double>(1.0, static_cast<double>(job.estimate_remaining));
    const double score = std::pow(wait / runtime, 3.0) * job.size();
    return -score;  // bigger score first
  }
};

template <typename P>
PolicyFactory Factory() {
  return [] { return std::make_unique<P>(); };
}

}  // namespace

NamedRegistry<PolicyFactory>& PolicyRegistry() {
  static NamedRegistry<PolicyFactory>* registry = [] {
    auto* r = new NamedRegistry<PolicyFactory>("policy");
    r->Register("FCFS", Factory<FcfsPolicy>());
    r->Register("SJF", Factory<SjfPolicy>());
    r->Register("LJF", Factory<LjfPolicy>());
    r->Register("SmallestFirst", Factory<SmallestFirstPolicy>());
    r->Register("LargestFirst", Factory<LargestFirstPolicy>());
    r->Register("WFP3", Factory<Wfp3Policy>());
    return r;
  }();
  return *registry;
}

void RegisterPolicy(const std::string& name, PolicyFactory factory,
                    const std::vector<std::string>& aliases) {
  PolicyRegistry().Register(name, std::move(factory), aliases);
}

std::unique_ptr<OrderingPolicy> MakePolicy(const std::string& name) {
  return PolicyRegistry().Get(name)();
}

std::vector<std::string> PolicyNames() { return PolicyRegistry().Names(); }

std::unique_ptr<OrderingPolicy> MakePolicy(PolicyKind kind) {
  return MakePolicy(std::string(ToString(kind)));
}

}  // namespace hs
