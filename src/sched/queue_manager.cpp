#include "sched/queue_manager.h"

#include <algorithm>
#include <stdexcept>

namespace hs {

void QueueManager::RebindRecords(const std::vector<JobRecord>& jobs) {
  for (auto& [id, job] : jobs_) {
    job.record = &jobs.at(static_cast<std::size_t>(id));
  }
}

void QueueManager::Add(WaitingJob job) {
  const JobId id = job.id;
  const auto [it, inserted] = jobs_.emplace(id, std::move(job));
  (void)it;
  if (!inserted) throw std::runtime_error("QueueManager::Add: duplicate job");
  ++epoch_;
}

WaitingJob QueueManager::Remove(JobId id) {
  const auto it = jobs_.find(id);
  if (it == jobs_.end()) throw std::runtime_error("QueueManager::Remove: absent job");
  WaitingJob out = std::move(it->second);
  jobs_.erase(it);
  ++epoch_;
  return out;
}

bool QueueManager::Contains(JobId id) const { return jobs_.count(id) > 0; }

const WaitingJob* QueueManager::Find(JobId id) const {
  const auto it = jobs_.find(id);
  return it == jobs_.end() ? nullptr : &it->second;
}

WaitingJob* QueueManager::FindMutable(JobId id) {
  const auto it = jobs_.find(id);
  if (it == jobs_.end()) return nullptr;
  ++epoch_;  // the caller may edit ordering inputs through this pointer
  return &it->second;
}

const std::vector<const WaitingJob*>& QueueManager::EnsureOrdered(
    const OrderingPolicy& policy, SimTime now) const {
  const bool hit = cache_valid_ && cache_epoch_ == epoch_ &&
                   cache_policy_ == policy.name() &&
                   (cache_time_invariant_ || cache_now_ == now);
  if (!hit) {
    cache_ = All();
    std::sort(cache_.begin(), cache_.end(),
              [&policy, now](const WaitingJob* a, const WaitingJob* b) {
                if (a->boosted != b->boosted) return a->boosted;
                const double ka = policy.Key(*a, now);
                const double kb = policy.Key(*b, now);
                if (ka != kb) return ka < kb;
                if (a->first_submit != b->first_submit) return a->first_submit < b->first_submit;
                return a->id < b->id;
              });
    cache_valid_ = true;
    cache_epoch_ = epoch_;
    cache_policy_ = policy.name();
    cache_time_invariant_ = policy.time_invariant();
    cache_now_ = now;
    eligible_valid_ = false;
  }
  return cache_;
}

std::vector<const WaitingJob*> QueueManager::Ordered(const OrderingPolicy& policy,
                                                     SimTime now) const {
  return EnsureOrdered(policy, now);
}

const std::vector<const WaitingJob*>& QueueManager::OrderedEligible(
    const OrderingPolicy& policy, SimTime now) const {
  EnsureOrdered(policy, now);
  if (!eligible_valid_) {
    eligible_cache_.clear();
    for (const WaitingJob* w : cache_) {
      if (!w->partition_only) eligible_cache_.push_back(w);
    }
    eligible_valid_ = true;
  }
  return eligible_cache_;
}

std::vector<const WaitingJob*> QueueManager::All() const {
  std::vector<const WaitingJob*> view;
  view.reserve(jobs_.size());
  for (const auto& [id, job] : jobs_) view.push_back(&job);
  return view;
}

}  // namespace hs
