#include "sched/availability.h"

#include <algorithm>
#include <cassert>
#include <limits>
#include <stdexcept>

namespace hs {

namespace {

/// All overdue steps share est_end == now, so the (est_end, id) order the
/// legacy sort imposed degenerates to id order among them.
constexpr JobId kMaxJobId = std::numeric_limits<JobId>::max();

}  // namespace

void AvailabilityProfile::Set(JobId id, SimTime end, int alloc) {
  if (alloc < 1) throw std::invalid_argument("AvailabilityProfile::Set: alloc < 1");
  const auto it = entry_.find(id);
  if (it != entry_.end()) {
    if (it->second.first == end && it->second.second == alloc) return;
    by_end_.erase({it->second.first, id});
    it->second = {end, alloc};
  } else {
    entry_.emplace(id, std::make_pair(end, alloc));
  }
  by_end_[{end, id}] = alloc;
  ++epoch_;
}

void AvailabilityProfile::Erase(JobId id) {
  const auto it = entry_.find(id);
  if (it == entry_.end()) return;
  by_end_.erase({it->second.first, id});
  entry_.erase(it);
  ++epoch_;
}

void AvailabilityProfile::Clear() {
  if (entry_.empty()) return;
  by_end_.clear();
  entry_.clear();
  ++epoch_;
}

SimTime AvailabilityProfile::EndOf(JobId id) const {
  const auto it = entry_.find(id);
  return it == entry_.end() ? kNever : it->second.first;
}

int AvailabilityProfile::AllocOf(JobId id) const {
  const auto it = entry_.find(id);
  return it == entry_.end() ? 0 : it->second.second;
}

std::pair<SimTime, int> AvailabilityProfile::EarliestFit(int free_now, int need,
                                                         SimTime now) const {
  int avail = free_now;
  // Overdue prefix: steps at or before `now` clamp to `now` and rank by id.
  const auto split = by_end_.upper_bound({now, kMaxJobId});
  if (split != by_end_.begin()) {
    overdue_scratch_.clear();
    for (auto it = by_end_.begin(); it != split; ++it) {
      overdue_scratch_.push_back({it->first.second, it->second});
    }
    std::sort(overdue_scratch_.begin(), overdue_scratch_.end());
    for (const auto& [id, alloc] : overdue_scratch_) {
      avail += alloc;
      if (avail >= need) return {now, avail - need};
    }
  }
  for (auto it = split; it != by_end_.end(); ++it) {
    avail += it->second;
    if (avail >= need) return {it->first.first, avail - need};
  }
  return {kNever, 0};
}

SimTime AvailabilityProfile::NextEndAfter(SimTime now) const {
  const auto it = by_end_.upper_bound({now, kMaxJobId});
  return it == by_end_.end() ? kNever : it->first.first;
}

void AvailabilityProfile::AppendSortedView(SimTime now,
                                           std::vector<RunningView>* out) const {
  assert(out != nullptr);
  out->reserve(out->size() + entry_.size());
  const auto split = by_end_.upper_bound({now, kMaxJobId});
  if (split != by_end_.begin()) {
    overdue_scratch_.clear();
    for (auto it = by_end_.begin(); it != split; ++it) {
      overdue_scratch_.push_back({it->first.second, it->second});
    }
    std::sort(overdue_scratch_.begin(), overdue_scratch_.end());
    for (const auto& [id, alloc] : overdue_scratch_) {
      out->push_back({id, alloc, now});
    }
  }
  for (auto it = split; it != by_end_.end(); ++it) {
    out->push_back({it->first.second, it->second, it->first.first});
  }
}

}  // namespace hs
