// Queue-ordering policies.
//
// The paper's mechanisms are *composed with* an ordering policy ("while a
// scheduling policy determines the order of waiting jobs, our mechanisms
// manipulate the running jobs"). FCFS is the evaluation default; the other
// classic policies are provided so the composition claim is exercisable.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "util/registry.h"
#include "util/time.h"
#include "workload/job.h"

namespace hs {

/// A waiting-queue entry. Resubmitted (preempted) jobs keep their original
/// submit time (§III-B2) and carry reduced remaining demands.
struct WaitingJob {
  JobId id = kNoJob;
  const JobRecord* record = nullptr;
  SimTime first_submit = 0;        // original submission (policy key for FCFS)
  SimTime enqueue_time = 0;        // when this (re)submission entered the queue
  SimTime estimate_remaining = 0;  // user estimate of remaining setup+compute
  SimTime compute_remaining = 0;   // ground-truth remaining compute (engine only)
  std::int64_t work_remaining = 0; // malleable: remaining node-seconds
  std::int64_t est_work_remaining = 0;  // malleable: estimate-based node-seconds
  int restarts = 0;
  bool boosted = false;            // sorts ahead of everything (front of queue)
  /// Flexible sizing active (malleable job under a non-baseline scheduler).
  /// When false the job must be allocated exactly `size()` nodes.
  bool flexible = false;
  /// Job may only run inside the static on-demand partition (the
  /// dedicated-cluster comparator); the batch scheduling pass skips it.
  bool partition_only = false;

  int size() const { return record->size; }
  int min_size() const { return flexible ? record->min_size : record->size; }
};

enum class PolicyKind { kFcfs, kSjf, kLjf, kSmallestFirst, kLargestFirst, kWfp3 };

const char* ToString(PolicyKind kind);

class OrderingPolicy {
 public:
  virtual ~OrderingPolicy() = default;
  virtual const char* name() const = 0;
  /// Smaller keys schedule earlier. `now` feeds wait-time-aware policies.
  virtual double Key(const WaitingJob& job, SimTime now) const = 0;
  /// True when Key() ignores `now` (a pure function of the job). Lets
  /// QueueManager reuse a cached ordered view across scheduling passes at
  /// different times; wait-aware policies (e.g. WFP3) keep the conservative
  /// default and re-sort whenever the clock has advanced.
  virtual bool time_invariant() const { return false; }
};

/// Creates one ordering-policy instance; registered in PolicyRegistry().
using PolicyFactory = std::function<std::unique_ptr<OrderingPolicy>()>;

/// The global policy registry. The six classic policies are pre-registered;
/// plugins add their own via RegisterPolicy and are then addressable from
/// EngineConfig::policy, SimSpec strings and the CLI.
NamedRegistry<PolicyFactory>& PolicyRegistry();

/// Registers a custom policy under `name` (plus optional aliases).
void RegisterPolicy(const std::string& name, PolicyFactory factory,
                    const std::vector<std::string>& aliases = {});

/// Instantiates a registered policy by (case-insensitive) name; throws
/// std::invalid_argument naming the token and the known policies.
std::unique_ptr<OrderingPolicy> MakePolicy(const std::string& name);

/// Canonical names of every registered policy, in registration order.
std::vector<std::string> PolicyNames();

/// Compatibility shim for the classic enum-addressed policies.
std::unique_ptr<OrderingPolicy> MakePolicy(PolicyKind kind);

}  // namespace hs
