// EASY backfilling (Mu'alem & Feitelson, TPDS'01) with malleable-aware
// sizing, expressed as a pure function over immutable views so it can be
// property-tested in isolation.
//
// Semantics: walk the policy-ordered queue, starting jobs while they fit.
// The first job that does not fit receives a *shadow reservation*: the
// earliest time enough running jobs will have ended (by their estimates)
// for it to start, plus the count of "extra" nodes left at that moment.
// Later jobs may jump ahead only if they terminate before the shadow time
// or use no more than the extra nodes — i.e., they never delay the head job.
#pragma once

#include <functional>
#include <vector>

#include "sched/policy.h"

namespace hs {

/// A running job as the backfill pass sees it.
struct RunningView {
  JobId id = kNoJob;
  int alloc = 0;
  SimTime est_end = 0;  // estimate-based completion bound
};

/// A start decision: give `job` exactly `alloc` nodes now.
struct StartDecision {
  JobId job = kNoJob;
  int alloc = 0;
};

struct BackfillInput {
  int free_nodes = 0;                       // immediately usable by the queue
  SimTime now = 0;
  std::vector<RunningView> running;         // current executions
  std::vector<const WaitingJob*> queue;     // policy order
  /// Wall-time bound if `job` starts now on `alloc` nodes (estimate-based).
  std::function<SimTime(const WaitingJob&, int alloc)> wall_estimate;
  /// Nodes already held for the job elsewhere (its private reservation);
  /// the pass only needs to find size - held from the free pool.
  std::function<int(const WaitingJob&)> held_nodes = nullptr;
};

struct BackfillResult {
  std::vector<StartDecision> starts;
  /// Shadow reservation granted to the first blocked job (kNoJob if none).
  JobId blocked_head = kNoJob;
  SimTime shadow_time = kNever;
  int extra_nodes = 0;
};

BackfillResult EasyBackfill(const BackfillInput& input);

}  // namespace hs
