// EASY backfilling (Mu'alem & Feitelson, TPDS'01) with malleable-aware
// sizing, expressed as a pure function over immutable views so it can be
// property-tested in isolation.
//
// Semantics: walk the policy-ordered queue, starting jobs while they fit.
// The first job that does not fit receives a *shadow reservation*: the
// earliest time enough running jobs will have ended (by their estimates)
// for it to start, plus the count of "extra" nodes left at that moment.
// Later jobs may jump ahead only if they terminate before the shadow time
// or use no more than the extra nodes — i.e., they never delay the head job.
//
// Two entry points share one queue-walk core:
//   * EasyBackfill(BackfillInput) — the legacy snapshot form: the caller
//     materializes a RunningView vector and the shadow falls out of an
//     (est_end, id) sort over it. Kept for tests and as the differential
//     oracle for the profile-backed planner.
//   * PlanBackfill(...) — the production form: the shadow is answered by an
//     incrementally-maintained AvailabilityProfile query, so a pass sorts
//     and copies nothing. Per-job callbacks go through the small
//     BackfillEnv interface (one virtual call) instead of std::function.
#pragma once

#include <functional>
#include <vector>

#include "sched/policy.h"

namespace hs {

class AvailabilityProfile;

/// A running job as the backfill pass sees it.
struct RunningView {
  JobId id = kNoJob;
  int alloc = 0;
  SimTime est_end = 0;  // estimate-based completion bound
};

/// A start decision: give `job` exactly `alloc` nodes now.
struct StartDecision {
  JobId job = kNoJob;
  int alloc = 0;
};

/// Per-job callbacks of the planning walk, as a small interface so the hot
/// path pays one indirect call instead of std::function dispatch.
class BackfillEnv {
 public:
  virtual ~BackfillEnv() = default;
  /// Wall-time bound if `w` starts now on `alloc` nodes (estimate-based).
  virtual SimTime WallEstimate(const WaitingJob& w, int alloc) const = 0;
  /// Nodes already held for the job elsewhere (its private reservation);
  /// the walk only needs to find size - held from the free pool.
  virtual int HeldNodes(const WaitingJob& w) const = 0;
};

struct BackfillInput {
  int free_nodes = 0;                       // immediately usable by the queue
  SimTime now = 0;
  std::vector<RunningView> running;         // current executions
  std::vector<const WaitingJob*> queue;     // policy order
  /// Wall-time bound if `job` starts now on `alloc` nodes (estimate-based).
  std::function<SimTime(const WaitingJob&, int alloc)> wall_estimate;
  /// Nodes already held for the job elsewhere (its private reservation);
  /// the pass only needs to find size - held from the free pool.
  std::function<int(const WaitingJob&)> held_nodes = nullptr;
};

struct BackfillResult {
  std::vector<StartDecision> starts;
  /// Shadow reservation granted to the first blocked job (kNoJob if none).
  JobId blocked_head = kNoJob;
  SimTime shadow_time = kNever;
  int extra_nodes = 0;
};

BackfillResult EasyBackfill(const BackfillInput& input);

/// Profile-backed planning: byte-identical decisions to EasyBackfill over a
/// RunningView snapshot of the same state (the shadow query reproduces the
/// legacy sort order exactly, overdue-clamping included), without building
/// or sorting that snapshot.
BackfillResult PlanBackfill(int free_nodes, SimTime now,
                            const AvailabilityProfile& avail,
                            const std::vector<const WaitingJob*>& queue,
                            const BackfillEnv& env);

}  // namespace hs
