#include "sched/batch_scheduler.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace hs {

namespace {

std::int64_t CeilDiv(std::int64_t a, std::int64_t b) {
  assert(b > 0);
  return (a + b - 1) / b;
}

/// Nodes of `released` that ended up in the free pool (reservation-marked
/// nodes snapped back to reserved-idle inside the cluster).
std::vector<int> FreePoolOnly(const Cluster& cluster, const std::vector<int>& released) {
  std::vector<int> freed;
  freed.reserve(released.size());
  for (const int node : released) {
    if (cluster.reserved_for(node) == kNoJob) freed.push_back(node);
  }
  return freed;
}

}  // namespace

ExecutionEngine::ExecutionEngine(const Trace& trace, const EngineConfig& config,
                                 Collector& collector, Simulator& sim)
    : trace_(&trace),
      config_(config),
      collector_(&collector),
      sim_(&sim),
      cluster_(trace.num_nodes),
      policy_(MakePolicy(config.policy)),
      ckpt_(config.checkpoint),
      failure_rng_(config.failure_seed) {}

ExecutionEngine::ExecutionEngine(const ExecutionEngine& other, const Trace& trace,
                                 Collector& collector, Simulator& sim)
    : trace_(&trace),
      config_(other.config_),
      collector_(&collector),
      sim_(&sim),
      cluster_(other.cluster_),
      queue_(other.queue_),
      policy_(MakePolicy(other.config_.policy)),
      ckpt_(other.ckpt_),
      failure_rng_(other.failure_rng_),
      running_(other.running_),
      jobs_finished_(other.jobs_finished_),
      jobs_killed_(other.jobs_killed_),
      avail_(other.avail_),
      pass_cache_valid_(other.pass_cache_valid_),
      pass_cluster_epoch_(other.pass_cluster_epoch_),
      pass_queue_epoch_(other.pass_queue_epoch_),
      pass_avail_epoch_(other.pass_avail_epoch_),
      pass_next_step_(other.pass_next_step_) {
  if (&trace != other.trace_) {
    for (auto& [id, r] : running_) {
      r.rec = &trace_->jobs.at(static_cast<std::size_t>(id));
    }
    queue_.RebindRecords(trace_->jobs);
  }
}

RunningJob& ExecutionEngine::MustRun(JobId id) {
  const auto it = running_.find(id);
  if (it == running_.end()) throw std::runtime_error("job not running: " + std::to_string(id));
  return it->second;
}

const RunningJob& ExecutionEngine::MustRun(JobId id) const {
  const auto it = running_.find(id);
  if (it == running_.end()) throw std::runtime_error("job not running: " + std::to_string(id));
  return it->second;
}

const RunningJob* ExecutionEngine::Running(JobId id) const {
  const auto it = running_.find(id);
  return it == running_.end() ? nullptr : &it->second;
}

std::vector<JobId> ExecutionEngine::RunningIds() const {
  std::vector<JobId> ids;
  ids.reserve(running_.size());
  for (const auto& [id, r] : running_) ids.push_back(id);
  std::sort(ids.begin(), ids.end());
  return ids;
}

void ExecutionEngine::EnqueueFresh(JobId id, SimTime now, bool boosted) {
  const JobRecord& rec = record(id);
  WaitingJob w;
  w.id = id;
  w.record = &rec;
  w.first_submit = now;
  w.enqueue_time = now;
  w.estimate_remaining = rec.estimate;
  w.compute_remaining = rec.compute_time;
  w.work_remaining = rec.total_work();
  w.est_work_remaining =
      static_cast<std::int64_t>(rec.estimate - rec.setup_time) * rec.size;
  w.boosted = boosted;
  w.flexible = rec.is_malleable() && config_.malleable_flexible;
  collector_->OnSubmit(rec, now);
  queue_.Add(std::move(w));
}

void ExecutionEngine::EnqueueResubmission(WaitingJob waiting, SimTime now) {
  waiting.enqueue_time = now;
  queue_.Add(std::move(waiting));
}

SimTime ExecutionEngine::WallEstimate(const WaitingJob& w, int alloc) const {
  const JobRecord& rec = *w.record;
  const bool flexible = rec.is_malleable() && config_.malleable_flexible;
  if (flexible) {
    assert(alloc >= 1);
    return rec.setup_time + CeilDiv(w.est_work_remaining, alloc);
  }
  const SimTime est_compute = std::max<SimTime>(1, w.estimate_remaining - rec.setup_time);
  const SimTime interval = rec.is_rigid() ? ckpt_.IntervalFor(rec.size) : 0;
  const RigidTimeline bound(rec.setup_time, est_compute, interval,
                            ckpt_.OverheadFor(rec.size));
  return bound.total_wall();
}

bool ExecutionEngine::StartWaiting(JobId id, int alloc, SimTime now) {
  const WaitingJob* w = queue_.Find(id);
  if (w == nullptr) throw std::runtime_error("StartWaiting: job not queued");
  const int held = cluster_.ReservedIdleCount(id);
  if (alloc < w->min_size() || alloc > w->size()) return false;
  const int extra = alloc - std::min(held, alloc);
  if (extra > cluster_.free_count()) return false;
  WaitingJob waiting = queue_.Remove(id);
  const std::vector<int> nodes = cluster_.StartOnReservation(id, extra);
  assert(static_cast<int>(nodes.size()) == alloc);
  BeginExecution(std::move(waiting), nodes, now, /*tenant=*/false);
  return true;
}

void ExecutionEngine::StartTenant(JobId id, const std::vector<int>& nodes, SimTime now) {
  WaitingJob waiting = queue_.Remove(id);
  cluster_.StartOn(id, nodes);
  BeginExecution(std::move(waiting), nodes, now, /*tenant=*/true);
}

void ExecutionEngine::BeginExecution(WaitingJob waiting, const std::vector<int>& nodes,
                                     SimTime now, bool tenant) {
  const JobRecord& rec = *waiting.record;
  RunningJob r;
  r.id = waiting.id;
  r.rec = &rec;
  r.alloc = static_cast<int>(nodes.size());
  r.restarts = waiting.restarts;
  r.first_submit = waiting.first_submit;
  r.start = now;
  r.setup_end = now + rec.setup_time;
  r.is_tenant = tenant;
  r.malleable_mode = rec.is_malleable() && config_.malleable_flexible;

  if (r.malleable_mode) {
    r.work_remaining = waiting.work_remaining;
    r.est_work_remaining = waiting.est_work_remaining;
    r.work_done = 0;
    r.last_advance = now;
  } else {
    r.compute_remaining = waiting.compute_remaining;
    r.estimate_remaining = waiting.estimate_remaining;
    const SimTime interval = rec.is_rigid() ? ckpt_.IntervalFor(rec.size) : 0;
    r.timeline = RigidTimeline(rec.setup_time, r.compute_remaining, interval,
                               ckpt_.OverheadFor(rec.size));
  }

  collector_->OnStart(rec, now, r.alloc, r.restarts > 0);

  auto [it, inserted] = running_.emplace(r.id, std::move(r));
  assert(inserted);
  ScheduleCompletionEvents(it->second, now);
  SyncAvailability(it->second.id);
}

void ExecutionEngine::ScheduleCompletionEvents(RunningJob& r, SimTime now) {
  if (config_.inject_failures && r.alloc > 0) {
    // Exponential failure times are memoryless, so re-drawing at every
    // (re)schedule — including resizes, with the new allocation's rate —
    // preserves the failure process exactly.
    const double job_mtbf =
        static_cast<double>(config_.failure_node_mtbf) / r.alloc;
    const auto dt = static_cast<SimTime>(failure_rng_.Exponential(job_mtbf)) + 1;
    r.failure_event = sim_->Schedule(now + dt, EventKind::kNodeFailure, r.id);
  }
  if (r.malleable_mode) {
    const std::int64_t rem = std::max<std::int64_t>(0, r.work_remaining - r.work_done);
    const std::int64_t est_rem =
        std::max<std::int64_t>(0, r.est_work_remaining - r.work_done);
    const SimTime base = std::max(now, r.setup_end);
    const SimTime finish = base + CeilDiv(rem, r.alloc);
    const SimTime kill = base + CeilDiv(est_rem, r.alloc);
    r.finish_event = sim_->Schedule(finish, EventKind::kJobFinish, r.id);
    r.kill_time_abs = std::max(kill, finish);
    r.kill_event = sim_->Schedule(r.kill_time_abs, EventKind::kJobKill, r.id);
  } else {
    const SimTime finish = r.start + r.timeline.total_wall();
    const SimTime est_compute =
        std::max<SimTime>(r.compute_remaining, r.estimate_remaining - r.rec->setup_time);
    const RigidTimeline bound(r.rec->setup_time, est_compute, r.timeline.interval(),
                              r.timeline.overhead());
    r.finish_event = sim_->Schedule(finish, EventKind::kJobFinish, r.id);
    r.kill_time_abs = std::max(finish, r.start + bound.total_wall());
    r.kill_event = sim_->Schedule(r.kill_time_abs, EventKind::kJobKill, r.id);
  }
}

void ExecutionEngine::CancelCompletionEvents(RunningJob& r) {
  sim_->Cancel(r.finish_event);
  sim_->Cancel(r.kill_event);
  sim_->Cancel(r.failure_event);
  r.finish_event = kNoEvent;
  r.kill_event = kNoEvent;
  r.failure_event = kNoEvent;
}

bool ExecutionEngine::IsCurrentFailureEvent(JobId id, EventId event) const {
  const auto it = running_.find(id);
  return it != running_.end() && it->second.failure_event == event &&
         event != kNoEvent;
}

void ExecutionEngine::AdvanceProgress(RunningJob& r, SimTime now) {
  if (!r.malleable_mode) return;
  const SimTime from = std::max(r.last_advance, r.setup_end);
  if (now > from) {
    r.work_done += static_cast<std::int64_t>(now - from) * r.alloc;
  }
  r.last_advance = std::max(r.last_advance, now);
}

std::int64_t ExecutionEngine::ProjectedWork(const RunningJob& r, SimTime now) {
  if (!r.malleable_mode) return 0;
  const SimTime from = std::max(r.last_advance, r.setup_end);
  std::int64_t done = r.work_done;
  if (now > from) done += static_cast<std::int64_t>(now - from) * r.alloc;
  return done;
}

void ExecutionEngine::AccountExecutionOverheads(const RunningJob& r, SimTime now) {
  const SimTime elapsed = now - r.start;
  const SimTime setup_used = std::min<SimTime>(elapsed, r.rec->setup_time);
  if (setup_used > 0) {
    collector_->OnSetupPaid(*r.rec, static_cast<double>(setup_used) * r.alloc);
  }
  if (!r.malleable_mode && r.timeline.interval() > 0) {
    const SimTime bounded = std::min(elapsed, r.timeline.total_wall());
    const SimTime progress = r.timeline.ProgressAt(bounded);
    const SimTime dump_wall = bounded - setup_used - progress;
    if (dump_wall > 0) {
      collector_->OnCheckpointOverhead(*r.rec,
                                       static_cast<double>(dump_wall) * r.alloc);
    }
  }
}

std::vector<int> ExecutionEngine::FinishRunning(JobId id, SimTime now) {
  RunningJob& r = MustRun(id);
  CancelCompletionEvents(r);
  if (r.draining) {
    sim_->Cancel(r.drain_event);
  }
  AccountExecutionOverheads(r, now);
  collector_->OnFinish(*r.rec, now);
  running_.erase(id);
  avail_.Erase(id);
  ++jobs_finished_;
  const std::vector<int> released = cluster_.Finish(id);
  return FreePoolOnly(cluster_, released);
}

std::vector<int> ExecutionEngine::KillAtEstimate(JobId id, SimTime now) {
  RunningJob& r = MustRun(id);
  CancelCompletionEvents(r);
  if (r.draining) sim_->Cancel(r.drain_event);
  double lost = 0.0;
  if (r.malleable_mode) {
    AdvanceProgress(r, now);
    lost = static_cast<double>(r.work_done);
  } else {
    lost = static_cast<double>(r.timeline.ProgressAt(now - r.start)) * r.alloc;
  }
  AccountExecutionOverheads(r, now);
  collector_->OnKill(*r.rec, now, lost);
  running_.erase(id);
  avail_.Erase(id);
  ++jobs_killed_;
  const std::vector<int> released = cluster_.Finish(id);
  return FreePoolOnly(cluster_, released);
}

WaitingJob ExecutionEngine::MakeResubmission(const RunningJob& r, SimTime now,
                                             SimTime saved_progress,
                                             std::int64_t malleable_done) const {
  WaitingJob w;
  w.id = r.id;
  w.record = r.rec;
  w.first_submit = r.first_submit;  // §III-B2: keep the original submit time
  w.enqueue_time = now;
  w.restarts = r.restarts + 1;
  w.flexible = r.malleable_mode;
  if (r.malleable_mode) {
    w.work_remaining = std::max<std::int64_t>(0, r.work_remaining - malleable_done);
    w.est_work_remaining =
        std::max<std::int64_t>(w.work_remaining, r.est_work_remaining - malleable_done);
    w.compute_remaining = static_cast<SimTime>(CeilDiv(w.work_remaining, r.rec->size));
    w.estimate_remaining =
        r.rec->setup_time + static_cast<SimTime>(CeilDiv(w.est_work_remaining, r.rec->size));
  } else {
    w.compute_remaining = std::max<SimTime>(0, r.compute_remaining - saved_progress);
    w.estimate_remaining =
        std::max<SimTime>(r.rec->setup_time + w.compute_remaining,
                          r.estimate_remaining - saved_progress);
    w.work_remaining = static_cast<std::int64_t>(w.compute_remaining) * r.rec->size;
    w.est_work_remaining =
        static_cast<std::int64_t>(w.estimate_remaining - r.rec->setup_time) * r.rec->size;
  }
  return w;
}

std::vector<int> ExecutionEngine::PreemptNow(JobId id, SimTime now, PreemptKind kind) {
  RunningJob& r = MustRun(id);
  CancelCompletionEvents(r);
  if (r.draining) sim_->Cancel(r.drain_event);

  WaitingJob resub;
  double lost = 0.0;
  if (r.malleable_mode) {
    // Loosely-coupled tasks: finished tasks persist, so progress survives
    // even an immediate preemption; only the setup must be re-paid.
    AdvanceProgress(r, now);
    resub = MakeResubmission(r, now, 0, r.work_done);
  } else {
    const SimTime elapsed = now - r.start;
    const SimTime progress = r.timeline.ProgressAt(elapsed);
    const SimTime saved = r.timeline.CheckpointedAt(elapsed);
    lost = static_cast<double>(progress - saved) * r.alloc;
    resub = MakeResubmission(r, now, saved, 0);
  }
  AccountExecutionOverheads(r, now);
  collector_->OnPreempt(*r.rec, now, lost, kind);
  running_.erase(id);
  avail_.Erase(id);
  const std::vector<int> released = cluster_.Finish(id);
  EnqueueResubmission(std::move(resub), now);
  return FreePoolOnly(cluster_, released);
}

void ExecutionEngine::BeginDrain(JobId id, JobId od, SimTime now) {
  RunningJob& r = MustRun(id);
  if (r.draining) throw std::runtime_error("BeginDrain: already draining");
  if (!r.malleable_mode) throw std::runtime_error("BeginDrain: not malleable");
  r.draining = true;
  r.drain_for = od;
  r.drain_deadline = now + config_.drain_warning;
  r.drain_event = sim_->Schedule(r.drain_deadline, EventKind::kWarningExpire, id, od);
  SyncAvailability(id);  // the profile bound becomes the drain deadline
}

std::vector<int> ExecutionEngine::CompleteDrain(JobId id, SimTime now) {
  RunningJob& r = MustRun(id);
  assert(r.draining);
  CancelCompletionEvents(r);
  AdvanceProgress(r, now);
  WaitingJob resub = MakeResubmission(r, now, 0, r.work_done);
  AccountExecutionOverheads(r, now);
  collector_->OnPreempt(*r.rec, now, 0.0, PreemptKind::kDrained);
  running_.erase(id);
  avail_.Erase(id);
  const std::vector<int> released = cluster_.Finish(id);
  EnqueueResubmission(std::move(resub), now);
  return FreePoolOnly(cluster_, released);
}

void ExecutionEngine::CancelDrain(JobId id) {
  RunningJob& r = MustRun(id);
  if (!r.draining) return;
  sim_->Cancel(r.drain_event);
  r.draining = false;
  r.drain_for = kNoJob;
  r.drain_event = kNoEvent;
  r.drain_deadline = kNever;
  SyncAvailability(id);  // back to the execution's own completion bound
}

std::vector<int> ExecutionEngine::ShrinkBy(JobId id, int nodes, SimTime now) {
  RunningJob& r = MustRun(id);
  if (!r.malleable_mode) throw std::runtime_error("ShrinkBy: not malleable");
  if (nodes <= 0 || r.alloc - nodes < r.rec->min_size) {
    throw std::runtime_error("ShrinkBy: would violate minimum size");
  }
  AdvanceProgress(r, now);
  const int from = r.alloc;
  const std::vector<int> released = cluster_.ReleaseSome(id, nodes);
  r.alloc -= nodes;
  collector_->OnShrink(*r.rec, now, from, r.alloc);
  CancelCompletionEvents(r);
  ScheduleCompletionEvents(r, now);
  SyncAvailability(id);
  return FreePoolOnly(cluster_, released);
}

void ExecutionEngine::ExpandByFromFree(JobId id, int nodes, SimTime now) {
  RunningJob& r = MustRun(id);
  if (!r.malleable_mode) throw std::runtime_error("ExpandByFromFree: not malleable");
  if (nodes <= 0) return;
  if (r.alloc + nodes > r.rec->size) throw std::runtime_error("ExpandByFromFree: above max");
  AdvanceProgress(r, now);
  const int from = r.alloc;
  cluster_.ExpandFromFree(id, nodes);
  r.alloc += nodes;
  collector_->OnExpand(*r.rec, now, from, r.alloc);
  CancelCompletionEvents(r);
  ScheduleCompletionEvents(r, now);
  SyncAvailability(id);
}

SimTime ExecutionEngine::EstimatedEnd(JobId id, SimTime now) const {
  return EstimatedEndOf(MustRun(id), now);
}

SimTime ExecutionEngine::EstimatedEndOf(const RunningJob& r, SimTime now) const {
  return std::max(now, ProfileEndOf(r));
}

SimTime ExecutionEngine::ProfileEndOf(const RunningJob& r) {
  if (r.draining) return r.drain_deadline;
  if (r.malleable_mode) {
    // Drift-free form of the instantaneous estimate: work_done advances by
    // exactly alloc node-seconds per second past max(last_advance,
    // setup_end), so the projected end E = t0 + ceil((est_work_remaining -
    // work_done) / alloc) is constant until the next mutation, and the
    // instantaneous estimate equals max(E, now) (integer arithmetic makes
    // the reduction exact; see availability.h).
    const std::int64_t est_rem =
        std::max<std::int64_t>(0, r.est_work_remaining - r.work_done);
    return std::max(r.last_advance, r.setup_end) + CeilDiv(est_rem, r.alloc);
  }
  return r.kill_time_abs;
}

void ExecutionEngine::SyncAvailability(JobId id) {
  const auto it = running_.find(id);
  if (it == running_.end()) {
    avail_.Erase(id);
    return;
  }
  avail_.Set(id, ProfileEndOf(it->second), it->second.alloc);
}

double ExecutionEngine::PreemptionCostNodeSec(JobId id, SimTime now) const {
  const RunningJob& r = MustRun(id);
  const double setup_cost =
      static_cast<double>(r.rec->setup_time) * r.alloc;
  if (r.malleable_mode) return setup_cost;  // progress survives; setup re-paid
  const SimTime elapsed = now - r.start;
  const SimTime progress = r.timeline.ProgressAt(elapsed);
  const SimTime saved = r.timeline.CheckpointedAt(elapsed);
  return static_cast<double>(progress - saved) * r.alloc + setup_cost;
}

SimTime ExecutionEngine::NextCheckpointCompletion(JobId id, SimTime now) const {
  const RunningJob& r = MustRun(id);
  if (r.malleable_mode || r.timeline.interval() <= 0) return kNever;
  const SimTime offset = r.timeline.NextCheckpointCompletion(now - r.start);
  return offset == kNever ? kNever : r.start + offset;
}

int ExecutionEngine::ShrinkableNodes(JobId id) const {
  const auto it = running_.find(id);
  if (it == running_.end()) return 0;
  const RunningJob& r = it->second;
  if (!r.malleable_mode || r.draining || r.is_tenant) return 0;
  return std::max(0, r.alloc - r.rec->min_size);
}

bool ExecutionEngine::IsPreemptable(JobId id) const {
  const auto it = running_.find(id);
  if (it == running_.end()) return false;
  const RunningJob& r = it->second;
  return !r.rec->is_on_demand() && !r.draining && !r.is_tenant;
}

namespace {

/// The engine's BackfillEnv: held nodes come from the job's own reserved-
/// idle count, wall estimates from the engine's estimate model.
class EnginePassEnv final : public BackfillEnv {
 public:
  explicit EnginePassEnv(const ExecutionEngine& engine) : engine_(&engine) {}
  SimTime WallEstimate(const WaitingJob& w, int alloc) const override {
    return engine_->WallEstimate(w, alloc);
  }
  int HeldNodes(const WaitingJob& w) const override {
    return engine_->cluster().ReservedIdleCount(w.id);
  }

 private:
  const ExecutionEngine* engine_;
};

}  // namespace

int ExecutionEngine::RunSchedulingPass(SimTime now) {
  // Incremental schedule repair: a pass whose plan was empty recorded what
  // it consulted; if none of it changed, re-planning is provably another
  // empty plan, so skip. The time-invariance gate is required — a policy
  // whose order drifts with the clock (WFP3) can promote a startable job
  // to the head even with frozen state. The clock gate (`now` short of the
  // next profile step) freezes the overdue-clamped prefix of the shadow
  // query; past it, a blocked head's shadow/extra answer could change.
  // Starting no jobs has no side effects, so skipping is state-identical.
  if (pass_cache_valid_ && policy_->time_invariant() &&
      pass_cluster_epoch_ == cluster_.epoch() &&
      pass_queue_epoch_ == queue_.epoch() &&
      pass_avail_epoch_ == avail_.epoch() && now < pass_next_step_) {
    return 0;
  }
  // The eligible view is a reference into the queue's cache: planning reads
  // it to completion before any start mutates the queue.
  const std::vector<const WaitingJob*>& queue = queue_.OrderedEligible(*policy_, now);
  const EnginePassEnv env(*this);
  const BackfillResult result =
      PlanBackfill(cluster_.free_count(), now, avail_, queue, env);
  int started = 0;
  for (const StartDecision& d : result.starts) {
    if (StartWaiting(d.job, d.alloc, now)) ++started;
  }
  pass_cache_valid_ = result.starts.empty();
  if (pass_cache_valid_) {
    pass_cluster_epoch_ = cluster_.epoch();
    pass_queue_epoch_ = queue_.epoch();
    pass_avail_epoch_ = avail_.epoch();
    pass_next_step_ = avail_.NextEndAfter(now);
  }
  return started;
}

}  // namespace hs
