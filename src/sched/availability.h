// AvailabilityProfile: a persistent free-node step function over future
// time, maintained incrementally instead of re-derived per scheduling pass.
//
// Each running job contributes one step: its allocation becomes available
// at its *drift-free completion bound* E. E is constant between engine
// mutations — for rigid jobs it is the estimate-kill time, for draining
// jobs the drain deadline, and for malleable jobs
//     E = max(last_advance, setup_end) + ceil(est_work_remaining / alloc)
// (the work-conserving progress model advances work_done by exactly
// alloc node-seconds per second, so the projected end does not move as the
// clock does). The instantaneous estimate the scheduler reasons with is
// max(E, now): a job past its bound that has not been killed yet (a
// malleable under-estimator between its estimate bound and its true
// finish) is treated as ending "now", exactly as the legacy per-pass
// recomputation did.
//
// The profile serves the EASY shadow computation directly: EarliestFit()
// walks the steps in ascending (max(E, now), id) order accumulating
// released allocations — the same total order the legacy pass obtained by
// sorting a RunningView snapshot on every pass, now answered from a
// maintained ordered map without materializing or sorting anything.
//
// An epoch counter increments on every mutation; pass caches (the
// incremental-repair scheme in ExecutionEngine) key on it.
#pragma once

#include <cstdint>
#include <map>
#include <utility>
#include <unordered_map>
#include <vector>

#include "sched/backfill.h"

namespace hs {

class AvailabilityProfile {
 public:
  /// Inserts or updates a job's step. `alloc` must be >= 1.
  void Set(JobId id, SimTime end, int alloc);
  /// Removes a job's step (no-op if absent).
  void Erase(JobId id);
  void Clear();

  bool Contains(JobId id) const { return entry_.count(id) > 0; }
  std::size_t size() const { return entry_.size(); }
  /// Bumped by every Set/Erase/Clear that changes the profile.
  std::uint64_t epoch() const { return epoch_; }
  /// The job's stored completion bound E (kNever if absent).
  SimTime EndOf(JobId id) const;
  /// The job's stored allocation (0 if absent).
  int AllocOf(JobId id) const;

  /// Earliest time at which `need` nodes are available given `free_now`
  /// free nodes right now, together with the nodes to spare at that moment
  /// — the EASY shadow reservation for a blocked head job. Matches the
  /// legacy accumulate-until-satisfied walk over a (est_end, id)-sorted
  /// running snapshot exactly, including its tie order: jobs at or past
  /// their bound (E <= now) count as ending `now` and are visited in id
  /// order ahead of every strictly-future step. Returns {kNever, 0} when
  /// the requirement is unreachable even after everything ends.
  std::pair<SimTime, int> EarliestFit(int free_now, int need, SimTime now) const;

  /// Smallest stored bound strictly greater than `now` (kNever if none):
  /// the next moment the clock alone can change what EarliestFit would
  /// answer. Pass caches stay valid only up to (not including) this time.
  SimTime NextEndAfter(SimTime now) const;

  /// Appends the profile as RunningViews in the exact order and with the
  /// exact est_end values the legacy per-pass snapshot sort produced:
  /// (max(E, now), id) ascending. For differential tests and debugging.
  void AppendSortedView(SimTime now, std::vector<RunningView>* out) const;

 private:
  /// Steps keyed by (E, id): the strictly-future suffix is already in
  /// legacy order; the overdue prefix (E <= now) is re-ranked by id at
  /// query time (it is empty in the common case — only jobs running past
  /// their estimate bound land there).
  std::map<std::pair<SimTime, JobId>, int> by_end_;
  std::unordered_map<JobId, std::pair<SimTime, int>> entry_;  // id -> (E, alloc)
  std::uint64_t epoch_ = 0;
  /// Query-time scratch for the overdue prefix; reused across calls so the
  /// hot path does not allocate.
  mutable std::vector<std::pair<JobId, int>> overdue_scratch_;
};

}  // namespace hs
