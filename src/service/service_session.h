// ServiceSession: one live, online simulation behind the hs_server verbs.
//
// Wraps an online SimulationSession and keeps the op log — every accepted
// submit/cancel with the virtual time it was applied at. The log is the
// session's event-sourced identity: replaying it against a cold session
// (same spec, same base trace) reproduces the live state deterministically.
// That one property powers three features:
//
//   * `whatif` for a NON-live mechanism: the live event heap carries
//     mechanism-specific events (notices, planned preempts), so live state
//     cannot be reinterpreted under another mechanism — instead a cold
//     session under the candidate mechanism replays the op log to now().
//     For the live mechanism, Fork() skips the replay (same answer, tested
//     equal by service_whatif_test).
//   * `snapshot`: the file is just (spec, headroom, now, op log) in the
//     `# hs-session v1` text format — no binary state serialization, and
//     restore is replay.
//   * the differential oracle: a what-if answer must equal a cold batch run
//     of the candidate mechanism over base + online jobs + probe, truncated
//     at the probe's start (the PR's acceptance criterion).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "exp/session.h"
#include "exp/sim_spec.h"

namespace hs {

/// One accepted mutation, with the virtual time it was applied at.
struct SessionOp {
  enum class Kind { kSubmit, kCancel };
  Kind kind = Kind::kSubmit;
  SimTime at = 0;
  JobRecord job;          // kSubmit: the record as appended (id assigned)
  JobId target = kNoJob;  // kCancel
};

/// One mechanism's what-if verdict for a probe job.
struct WhatIfAnswer {
  std::string mechanism;  // canonical name
  bool started = false;   // false: the probe never started (queue wedged dry)
  SimTime submit = 0;
  SimTime start = kNever;
  SimTime wait = -1;  // start - submit when started
  /// System-cost snapshot at the probe's start (scheduler-induced).
  std::size_t preemptions = 0;
  double lost_node_hours = 0.0;
  double utilization = 0.0;
};

/// Formats an answer as its wire line (`mech=... started=... ...`), doubles
/// at 17 significant digits — the byte-deterministic response format.
std::string FormatWhatIfAnswer(const WhatIfAnswer& answer);

/// One prepared what-if run: a private copy of the live state (fork or
/// op-log replay) with the probe already submitted. Preparing is cheap and
/// reads the live session; running (RunUntilStarted) touches only the copy,
/// so a concurrent server steps it off-thread without holding any lock.
struct WhatIfRun {
  std::string mechanism;                       // canonical name
  std::unique_ptr<SimulationSession> session;  // private copy, probe in
  JobId probe = kNoJob;
};

/// Runs `session` forward until `probe` first starts (or the event queue
/// drains), and reports the answer. Shared by the fork path, the replay
/// path, and the differential tests, so "truncated at the probe's start"
/// means exactly one thing everywhere.
WhatIfAnswer RunUntilStarted(SimulationSession& session, JobId probe,
                             std::string mechanism);

class ServiceSession {
 public:
  static constexpr std::size_t kDefaultHeadroom = 1024;

  /// Builds the base trace from `spec` and opens the live session with
  /// `online_headroom` submission slots.
  explicit ServiceSession(const SimSpec& spec,
                          std::size_t online_headroom = kDefaultHeadroom);

  SimTime now() const { return live_->now(); }
  const SimSpec& spec() const { return spec_; }
  const Trace& base_trace() const { return *base_trace_; }
  const std::vector<SessionOp>& ops() const { return ops_; }
  std::size_t ops_logged() const { return ops_.size(); }
  std::size_t events_processed() const { return live_->simulator().events_processed(); }
  SimulationSession& live() { return *live_; }

  /// Appends the job to the live session (strictly-future submit_time
  /// required) and logs the op. Returns the assigned id; throws on
  /// validation failure or exhausted headroom.
  JobId Submit(JobRecord job);

  /// Cancels a pending/waiting job; logs the op only when accepted.
  bool Cancel(JobId id);

  /// Advances the live session to `t` (>= now()).
  void AdvanceTo(SimTime t);

  /// Metrics over everything executed so far.
  SimResult Metrics() const { return live_->Finalize(); }

  /// query-job state machine.
  enum class JobState { kUnknown, kPending, kWaiting, kRunning, kDone, kKilled, kCanceled };
  struct JobStatus {
    JobState state = JobState::kUnknown;
    JobRecord record;          // valid unless kUnknown
    SimTime first_start = kNever;
    SimTime completion = kNever;
    int alloc = 0;             // kRunning only
  };
  JobStatus Query(JobId id) const;

  /// Answers `whatif` for each mechanism (canonical names resolved through
  /// the registry; throws on an unknown one): submits `probe` to a private
  /// copy of the live state — Fork() when the candidate is the live
  /// mechanism and `force_replay` is off, op-log replay otherwise — and
  /// runs it to the probe's start. The live session is never perturbed.
  std::vector<WhatIfAnswer> WhatIf(const JobRecord& probe,
                                   const std::vector<std::string>& mechanisms,
                                   bool force_replay = false) const;

  /// The prepare half of WhatIf(): builds the private copies and submits
  /// the probe, but does not step them. The concurrent server calls this
  /// under the session read lock, then RunUntilStarted()s each run with no
  /// lock held (the copies are private).
  std::vector<WhatIfRun> PrepareWhatIf(const JobRecord& probe,
                                       const std::vector<std::string>& mechanisms,
                                       bool force_replay = false) const;

  /// Becomes `other` (the `restore path=` verb): spec, trace, live state
  /// and op log are all taken over; `other` is left moved-from.
  void ReplaceWith(ServiceSession&& other);

  /// Serializes (spec, headroom, now, op log) as `# hs-session v1` text.
  std::string SnapshotText() const;
  void SnapshotTo(const std::string& path) const;

  /// Rebuilds a session from SnapshotText() output by replaying the ops.
  /// Throws std::invalid_argument on malformed or truncated input.
  static std::unique_ptr<ServiceSession> RestoreText(const std::string& text);
  static std::unique_ptr<ServiceSession> RestoreFrom(const std::string& path);

 private:
  /// Cold session under `mechanism` with the op log replayed to now().
  std::unique_ptr<SimulationSession> Replay(const std::string& mechanism) const;

  SimSpec spec_;
  std::size_t headroom_;
  std::shared_ptr<const Trace> base_trace_;
  std::unique_ptr<SimulationSession> live_;
  std::vector<SessionOp> ops_;
};

}  // namespace hs
