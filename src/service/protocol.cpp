#include "service/protocol.h"

#include <algorithm>
#include <cstdio>
#include <limits>
#include <stdexcept>

namespace hs {

namespace {

int HexDigit(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

std::int64_t ParseInt64(const std::string& key, const std::string& value) {
  try {
    std::size_t used = 0;
    const std::int64_t parsed = std::stoll(value, &used);
    if (used != value.size()) throw std::invalid_argument(value);
    return parsed;
  } catch (const std::exception&) {
    throw std::invalid_argument("bad integer for '" + key + "': " + value);
  }
}

std::string WireClassName(JobClass klass) {
  switch (klass) {
    case JobClass::kRigid: return "rigid";
    case JobClass::kOnDemand: return "od";
    case JobClass::kMalleable: return "malleable";
  }
  return "rigid";
}

JobClass ParseWireClass(const std::string& name) {
  if (name == "rigid") return JobClass::kRigid;
  if (name == "od") return JobClass::kOnDemand;
  if (name == "malleable") return JobClass::kMalleable;
  throw std::invalid_argument("bad job class '" + name +
                              "' (rigid|od|malleable)");
}

std::vector<std::string> SplitTokens(const std::string& line) {
  std::vector<std::string> tokens;
  std::size_t pos = 0;
  while (pos < line.size()) {
    const std::size_t space = line.find(' ', pos);
    const std::size_t end = space == std::string::npos ? line.size() : space;
    if (end > pos) tokens.push_back(line.substr(pos, end - pos));
    pos = end + 1;
  }
  return tokens;
}

}  // namespace

std::string EscapeField(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (const char c : value) {
    if (c == ' ') {
      out += "%20";
    } else if (c == '%') {
      out += "%25";
    } else if (c == '\n') {
      out += "%0A";
    } else {
      out += c;
    }
  }
  return out;
}

std::string UnescapeField(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (std::size_t i = 0; i < value.size(); ++i) {
    if (value[i] == '%') {
      if (i + 2 >= value.size()) {
        throw std::invalid_argument("truncated %-escape in '" + value + "'");
      }
      const int hi = HexDigit(value[i + 1]);
      const int lo = HexDigit(value[i + 2]);
      if (hi < 0 || lo < 0) {
        throw std::invalid_argument("bad %-escape in '" + value + "'");
      }
      out += static_cast<char>(hi * 16 + lo);
      i += 2;
    } else {
      out += value[i];
    }
  }
  return out;
}

std::string FmtExactDouble(double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*g",
                std::numeric_limits<double>::max_digits10, value);
  return buf;
}

Request Request::Parse(const std::string& line) {
  const std::vector<std::string> tokens = SplitTokens(line);
  if (tokens.empty()) throw std::invalid_argument("empty request line");
  Request req;
  req.verb_ = tokens[0];
  for (std::size_t i = 1; i < tokens.size(); ++i) {
    const std::size_t eq = tokens[i].find('=');
    if (eq == std::string::npos || eq == 0) {
      throw std::invalid_argument("argument '" + tokens[i] +
                                  "' is not key=value");
    }
    req.args_.emplace_back(tokens[i].substr(0, eq),
                           UnescapeField(tokens[i].substr(eq + 1)));
  }
  return req;
}

bool Request::Has(const std::string& key) const {
  recognized_.push_back(key);
  for (const auto& [k, v] : args_) {
    if (k == key) return true;
  }
  return false;
}

std::string Request::GetString(const std::string& key, const std::string& def) const {
  recognized_.push_back(key);
  for (const auto& [k, v] : args_) {
    if (k == key) return v;
  }
  return def;
}

std::int64_t Request::GetInt(const std::string& key, std::int64_t def) const {
  recognized_.push_back(key);
  for (const auto& [k, v] : args_) {
    if (k == key) return ParseInt64(key, v);
  }
  return def;
}

SimTime Request::GetTime(const std::string& key, SimTime now, SimTime def) const {
  recognized_.push_back(key);
  for (const auto& [k, v] : args_) {
    if (k != key) continue;
    if (!v.empty() && v[0] == '+') {
      return now + ParseInt64(key, v.substr(1));
    }
    return ParseInt64(key, v);
  }
  return def;
}

void Request::RejectUnknown() const {
  for (const auto& [k, v] : args_) {
    if (std::find(recognized_.begin(), recognized_.end(), k) ==
        recognized_.end()) {
      throw std::invalid_argument("unknown argument '" + k + "' for verb '" +
                                  verb_ + "'");
    }
  }
}

std::string FormatRequest(
    const std::string& verb,
    const std::vector<std::pair<std::string, std::string>>& args) {
  std::string line = verb;
  for (const auto& [key, value] : args) {
    line += ' ';
    line += key;
    line += '=';
    line += EscapeField(value);
  }
  return line;
}

std::string FormatJobFields(const JobRecord& job, bool with_id) {
  std::string out;
  if (with_id) out += "id=" + std::to_string(job.id) + " ";
  out += "class=" + WireClassName(job.klass);
  out += " size=" + std::to_string(job.size);
  out += " min=" + std::to_string(job.min_size);
  out += " submit=" + std::to_string(job.submit_time);
  out += " compute=" + std::to_string(job.compute_time);
  out += " estimate=" + std::to_string(job.estimate);
  out += " setup=" + std::to_string(job.setup_time);
  if (job.has_notice()) {
    out += " notice=" + std::to_string(job.notice_time);
    out += " predicted=" + std::to_string(job.predicted_arrival);
  }
  if (job.project >= 0) out += " project=" + std::to_string(job.project);
  return out;
}

JobRecord ParseJobFields(const Request& req, SimTime now) {
  JobRecord job;
  job.klass = ParseWireClass(req.GetString("class", "rigid"));
  job.size = static_cast<int>(req.GetInt("size", 0));
  job.min_size = static_cast<int>(req.GetInt("min", job.size));
  job.submit_time = req.GetTime("submit", now, now + 1);
  job.compute_time = req.GetTime("compute", 0, 0);
  job.estimate = req.GetTime("estimate", 0, 0);
  job.setup_time = req.GetTime("setup", 0, 0);
  job.project = static_cast<std::int32_t>(req.GetInt("project", -1));
  if (job.estimate == 0) job.estimate = job.setup_time + job.compute_time;
  const bool has_notice = req.Has("notice");
  const bool has_predicted = req.Has("predicted");
  if (has_notice != has_predicted) {
    throw std::invalid_argument("notice= and predicted= go together");
  }
  if (has_notice) {
    if (job.klass != JobClass::kOnDemand) {
      throw std::invalid_argument("only od jobs carry a notice");
    }
    job.notice_time = req.GetTime("notice", now, kNever);
    job.predicted_arrival = req.GetTime("predicted", now, kNever);
    if (job.predicted_arrival == job.submit_time) {
      job.notice = NoticeClass::kAccurate;
    } else if (job.submit_time < job.predicted_arrival) {
      job.notice = NoticeClass::kEarly;
    } else {
      job.notice = NoticeClass::kLate;
    }
  }
  return job;
}

JobId ParseJobId(const Request& req) {
  if (!req.Has("id")) throw std::invalid_argument("missing id=");
  return req.GetInt("id", kNoJob);
}

}  // namespace hs
