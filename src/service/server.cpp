#include "service/server.h"

#include <exception>
#include <stdexcept>

#include "core/mechanism.h"
#include "service/protocol.h"

namespace hs {

namespace {

std::string Err(const std::string& message) {
  return "err msg=" + EscapeField(message);
}

const char* StateName(ServiceSession::JobState state) {
  switch (state) {
    case ServiceSession::JobState::kUnknown: return "unknown";
    case ServiceSession::JobState::kPending: return "pending";
    case ServiceSession::JobState::kWaiting: return "waiting";
    case ServiceSession::JobState::kRunning: return "running";
    case ServiceSession::JobState::kDone: return "done";
    case ServiceSession::JobState::kKilled: return "killed";
    case ServiceSession::JobState::kCanceled: return "canceled";
  }
  return "unknown";
}

std::vector<std::string> SplitCsv(const std::string& text) {
  std::vector<std::string> parts;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t comma = text.find(',', pos);
    const std::size_t end = comma == std::string::npos ? text.size() : comma;
    if (end > pos) parts.push_back(text.substr(pos, end - pos));
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return parts;
}

WireResponse HandleSubmit(ServiceSession& session, const Request& req) {
  JobRecord job = ParseJobFields(req, session.now());
  req.RejectUnknown();
  const JobId id = session.Submit(std::move(job));
  return {{"ok job=" + std::to_string(id) + " submit=" +
           std::to_string(session.Query(id).record.submit_time)},
          false};
}

WireResponse HandleCancel(ServiceSession& session, const Request& req) {
  const JobId id = req.GetInt("job", kNoJob);
  req.RejectUnknown();
  if (id == kNoJob) return {{Err("cancel needs job=")}, false};
  if (!session.Cancel(id)) {
    return {{Err("job " + std::to_string(id) +
                 " cannot be canceled (running, finished, or unknown)")},
            false};
  }
  return {{"ok job=" + std::to_string(id)}, false};
}

WireResponse HandleQueryJob(ServiceSession& session, const Request& req) {
  const JobId id = req.GetInt("job", kNoJob);
  req.RejectUnknown();
  const ServiceSession::JobStatus status = session.Query(id);
  if (status.state == ServiceSession::JobState::kUnknown) {
    return {{Err("unknown job " + std::to_string(id))}, false};
  }
  std::string line = "ok job=" + std::to_string(id) + " state=" +
                     StateName(status.state) + " " +
                     FormatJobFields(status.record, /*with_id=*/false);
  if (status.first_start != kNever) {
    line += " start=" + std::to_string(status.first_start);
  }
  if (status.completion != kNever) {
    line += " completion=" + std::to_string(status.completion);
  }
  if (status.state == ServiceSession::JobState::kRunning) {
    line += " alloc=" + std::to_string(status.alloc);
  }
  return {{line}, false};
}

WireResponse HandleQueryMetrics(ServiceSession& session, const Request& req) {
  req.RejectUnknown();
  const SimResult r = session.Metrics();
  std::string line = "ok now=" + std::to_string(session.now());
  line += " events=" + std::to_string(session.events_processed());
  line += " jobs_completed=" + std::to_string(r.jobs_completed);
  line += " jobs_killed=" + std::to_string(r.jobs_killed);
  line += " preemptions=" + std::to_string(r.preemptions);
  line += " avg_turnaround_h=" + FmtExactDouble(r.avg_turnaround_h);
  line += " avg_wait_h=" + FmtExactDouble(r.avg_wait_h);
  line += " od_instant_rate=" + FmtExactDouble(r.od_instant_rate);
  line += " utilization=" + FmtExactDouble(r.utilization);
  line += " lost_node_h=" + FmtExactDouble(r.lost_node_hours);
  return {{line}, false};
}

WireResponse HandleAdvance(ServiceSession& session, const Request& req) {
  const bool has_to = req.Has("to");
  const bool has_by = req.Has("by");
  if (has_to == has_by) return {{Err("advance needs exactly one of to=|by=")}, false};
  const SimTime target = has_to ? req.GetTime("to", session.now(), session.now())
                                : session.now() + req.GetInt("by", 0);
  req.RejectUnknown();
  session.AdvanceTo(target);
  return {{"ok now=" + std::to_string(session.now()) +
           " events=" + std::to_string(session.events_processed())},
          false};
}

WireResponse HandleWhatIf(ServiceSession& session, const Request& req,
                          const DispatchOptions& options) {
  const std::string which = req.GetString("mechanisms", "all");
  JobRecord probe = ParseJobFields(req, session.now());
  req.RejectUnknown();
  const std::vector<std::string> mechanisms =
      which == "all" ? MechanismNames() : SplitCsv(which);
  if (mechanisms.empty()) return {{Err("whatif: no mechanisms named")}, false};
  const std::vector<WhatIfAnswer> answers =
      session.WhatIf(probe, mechanisms, options.force_replay);
  WireResponse resp;
  resp.lines.push_back("ok n=" + std::to_string(answers.size()));
  for (const WhatIfAnswer& answer : answers) {
    resp.lines.push_back(FormatWhatIfAnswer(answer));
  }
  resp.lines.push_back("end");
  return resp;
}

WireResponse HandleSnapshot(ServiceSession& session, const Request& req) {
  const std::string path = req.GetString("path", "");
  req.RejectUnknown();
  if (path.empty()) return {{Err("snapshot needs path=")}, false};
  session.SnapshotTo(path);
  return {{"ok path=" + EscapeField(path) + " ops=" +
           std::to_string(session.ops_logged()) +
           " now=" + std::to_string(session.now())},
          false};
}

}  // namespace

WireResponse HandleRequestLine(ServiceSession& session, const std::string& line,
                               const DispatchOptions& options) {
  try {
    const Request req = Request::Parse(line);
    const std::string& verb = req.verb();
    if (verb == "submit") return HandleSubmit(session, req);
    if (verb == "cancel") return HandleCancel(session, req);
    if (verb == "query-job") return HandleQueryJob(session, req);
    if (verb == "query-metrics") return HandleQueryMetrics(session, req);
    if (verb == "advance") return HandleAdvance(session, req);
    if (verb == "whatif") return HandleWhatIf(session, req, options);
    if (verb == "snapshot") return HandleSnapshot(session, req);
    if (verb == "ping") {
      req.RejectUnknown();
      return {{"ok now=" + std::to_string(session.now())}, false};
    }
    if (verb == "shutdown") {
      req.RejectUnknown();
      return {{"ok bye"}, true};
    }
    return {{Err("unknown verb '" + verb + "'")}, false};
  } catch (const std::exception& e) {
    return {{Err(e.what())}, false};
  }
}

ScheduleServer::ScheduleServer(ServiceSession& session, std::uint16_t port)
    : session_(&session), listener_(port) {}

void ScheduleServer::Serve() {
  for (;;) {
    Socket client = listener_.Accept();
    SendLine(client, kWireGreeting);
    for (;;) {
      const std::optional<std::string> line = client.RecvLine();
      if (!line.has_value()) break;  // client hung up; accept the next one
      if (line->empty()) continue;
      const WireResponse resp = HandleRequestLine(*session_, *line);
      for (const std::string& out : resp.lines) SendLine(client, out);
      if (resp.shutdown) return;
    }
  }
}

}  // namespace hs
