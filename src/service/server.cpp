#include "service/server.h"

#include <algorithm>
#include <chrono>
#include <exception>
#include <stdexcept>
#include <thread>
#include <utility>

#include "core/mechanism.h"
#include "service/protocol.h"
#include "util/stats.h"

namespace hs {

namespace {

std::string Err(const std::string& message) {
  return "err msg=" + EscapeField(message);
}

const char* StateName(ServiceSession::JobState state) {
  switch (state) {
    case ServiceSession::JobState::kUnknown: return "unknown";
    case ServiceSession::JobState::kPending: return "pending";
    case ServiceSession::JobState::kWaiting: return "waiting";
    case ServiceSession::JobState::kRunning: return "running";
    case ServiceSession::JobState::kDone: return "done";
    case ServiceSession::JobState::kKilled: return "killed";
    case ServiceSession::JobState::kCanceled: return "canceled";
  }
  return "unknown";
}

/// Splits on ',' keeping empty segments, so "a,,b" surfaces the empty token
/// as an error instead of silently dropping it.
std::vector<std::string> SplitCsv(const std::string& text) {
  std::vector<std::string> parts;
  std::size_t pos = 0;
  for (;;) {
    const std::size_t comma = text.find(',', pos);
    const std::size_t end = comma == std::string::npos ? text.size() : comma;
    parts.push_back(text.substr(pos, end - pos));
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return parts;
}

/// Resolves a `whatif mechanisms=` value to canonical names: "all" expands
/// to the registry, CSV tokens are canonicalized and deduped (first
/// occurrence wins — a duplicate must not run twice), and empty or
/// unregistered tokens throw naming the offender and the registered list
/// (the ValidateMechanism error style).
std::vector<std::string> ResolveMechanismList(const std::string& which) {
  if (which == "all") return MechanismNames();
  std::vector<std::string> resolved;
  for (const std::string& token : SplitCsv(which)) {
    if (token.empty()) {
      throw std::invalid_argument("empty mechanism token in '" + which + "'");
    }
    std::string canonical;
    try {
      canonical = CanonicalMechanismName(token);
    } catch (const std::exception&) {
      std::string registered;
      for (const std::string& name : MechanismNames()) {
        if (!registered.empty()) registered += ", ";
        registered += name;
      }
      throw std::invalid_argument("unknown mechanism '" + token + "' in '" +
                                  which + "' (registered: " + registered + ")");
    }
    if (std::find(resolved.begin(), resolved.end(), canonical) ==
        resolved.end()) {
      resolved.push_back(canonical);
    }
  }
  return resolved;
}

/// The query-metrics body, shared verbatim by `query-metrics` ("ok " +
/// body) and `watch` ticks ("tick seq=K " + body + running stats).
std::string FormatMetricsBody(SimTime now, std::size_t events,
                              const SimResult& r) {
  std::string line = "now=" + std::to_string(now);
  line += " events=" + std::to_string(events);
  line += " jobs_completed=" + std::to_string(r.jobs_completed);
  line += " jobs_killed=" + std::to_string(r.jobs_killed);
  line += " preemptions=" + std::to_string(r.preemptions);
  line += " avg_turnaround_h=" + FmtExactDouble(r.avg_turnaround_h);
  line += " avg_wait_h=" + FmtExactDouble(r.avg_wait_h);
  line += " od_instant_rate=" + FmtExactDouble(r.od_instant_rate);
  line += " utilization=" + FmtExactDouble(r.utilization);
  line += " lost_node_h=" + FmtExactDouble(r.lost_node_hours);
  return line;
}

WireResponse HandleSubmit(ServiceSession& session, const Request& req) {
  JobRecord job = ParseJobFields(req, session.now());
  req.RejectUnknown();
  const JobId id = session.Submit(std::move(job));
  return {{"ok job=" + std::to_string(id) + " submit=" +
           std::to_string(session.Query(id).record.submit_time)},
          false};
}

WireResponse HandleCancel(ServiceSession& session, const Request& req) {
  const JobId id = req.GetInt("job", kNoJob);
  req.RejectUnknown();
  if (id == kNoJob) return {{Err("cancel needs job=")}, false};
  if (!session.Cancel(id)) {
    return {{Err("job " + std::to_string(id) +
                 " cannot be canceled (running, finished, or unknown)")},
            false};
  }
  return {{"ok job=" + std::to_string(id)}, false};
}

WireResponse HandleQueryJob(ServiceSession& session, const Request& req) {
  const JobId id = req.GetInt("job", kNoJob);
  req.RejectUnknown();
  const ServiceSession::JobStatus status = session.Query(id);
  if (status.state == ServiceSession::JobState::kUnknown) {
    return {{Err("unknown job " + std::to_string(id))}, false};
  }
  std::string line = "ok job=" + std::to_string(id) + " state=" +
                     StateName(status.state) + " " +
                     FormatJobFields(status.record, /*with_id=*/false);
  if (status.first_start != kNever) {
    line += " start=" + std::to_string(status.first_start);
  }
  if (status.completion != kNever) {
    line += " completion=" + std::to_string(status.completion);
  }
  if (status.state == ServiceSession::JobState::kRunning) {
    line += " alloc=" + std::to_string(status.alloc);
  }
  return {{line}, false};
}

WireResponse HandleQueryMetrics(ServiceSession& session, const Request& req) {
  req.RejectUnknown();
  return {{"ok " + FormatMetricsBody(session.now(), session.events_processed(),
                                     session.Metrics())},
          false};
}

WireResponse HandleAdvance(ServiceSession& session, const Request& req) {
  const bool has_to = req.Has("to");
  const bool has_by = req.Has("by");
  if (has_to == has_by) return {{Err("advance needs exactly one of to=|by=")}, false};
  SimTime target = 0;
  if (has_by) {
    const std::int64_t by = req.GetInt("by", 0);
    // Time only moves forward: a negative delta is a request to time-travel,
    // not a clamp-to-now.
    if (by < 0) {
      return {{Err("advance by=" + std::to_string(by) +
                   " is negative (time only moves forward)")},
              false};
    }
    if (by > kNever - session.now()) {
      return {{Err("advance by=" + std::to_string(by) + " overflows from now=" +
                   std::to_string(session.now()))},
              false};
    }
    target = session.now() + by;
  } else {
    target = req.GetTime("to", session.now(), session.now());
    if (target < session.now()) {
      return {{Err("advance to=" + std::to_string(target) +
                   " is before now=" + std::to_string(session.now()) +
                   " (time only moves forward)")},
              false};
    }
  }
  req.RejectUnknown();
  session.AdvanceTo(target);
  return {{"ok now=" + std::to_string(session.now()) +
           " events=" + std::to_string(session.events_processed())},
          false};
}

/// The prepare half of `whatif`: validates the request and builds the
/// private session copies (fork/replay) with the probe submitted. The
/// concurrent server calls this under the read lock; stepping the copies
/// (FinishWhatIf) happens with no lock held.
std::vector<WhatIfRun> PrepareWhatIfRuns(const ServiceSession& session,
                                         const Request& req,
                                         const DispatchOptions& options) {
  const std::string which = req.GetString("mechanisms", "all");
  const JobRecord probe = ParseJobFields(req, session.now());
  req.RejectUnknown();
  const std::vector<std::string> mechanisms = ResolveMechanismList(which);
  if (mechanisms.empty()) {
    throw std::invalid_argument("whatif: no mechanisms named");
  }
  return session.PrepareWhatIf(probe, mechanisms, options.force_replay);
}

WireResponse FinishWhatIf(std::vector<WhatIfRun> runs) {
  WireResponse resp;
  resp.lines.push_back("ok n=" + std::to_string(runs.size()));
  for (WhatIfRun& run : runs) {
    resp.lines.push_back(FormatWhatIfAnswer(
        RunUntilStarted(*run.session, run.probe, std::move(run.mechanism))));
  }
  resp.lines.push_back("end");
  return resp;
}

WireResponse HandleWhatIf(ServiceSession& session, const Request& req,
                          const DispatchOptions& options) {
  return FinishWhatIf(PrepareWhatIfRuns(session, req, options));
}

WireResponse HandleSnapshot(ServiceSession& session, const Request& req) {
  const std::string path = req.GetString("path", "");
  req.RejectUnknown();
  if (path.empty()) return {{Err("snapshot needs path=")}, false};
  session.SnapshotTo(path);
  return {{"ok path=" + EscapeField(path) + " ops=" +
           std::to_string(session.ops_logged()) +
           " now=" + std::to_string(session.now())},
          false};
}

WireResponse HandleRestore(ServiceSession& session, const Request& req) {
  const std::string path = req.GetString("path", "");
  req.RejectUnknown();
  if (path.empty()) return {{Err("restore needs path=")}, false};
  std::unique_ptr<ServiceSession> restored = ServiceSession::RestoreFrom(path);
  session.ReplaceWith(std::move(*restored));
  return {{"ok path=" + EscapeField(path) + " ops=" +
           std::to_string(session.ops_logged()) +
           " now=" + std::to_string(session.now())},
          false};
}

/// Verbs that mutate session state and must hold the writer lock. The op
/// log orders exactly these (plus restore, which rewrites it wholesale).
bool IsMutatingVerb(const std::string& verb) {
  return verb == "submit" || verb == "cancel" || verb == "advance" ||
         verb == "restore";
}

/// The verb token of a raw request line (cheap peek, no full parse).
std::string VerbOf(const std::string& line) {
  const std::size_t space = line.find(' ');
  return line.substr(0, space == std::string::npos ? line.size() : space);
}

}  // namespace

WireResponse HandleRequestLine(ServiceSession& session, const std::string& line,
                               const DispatchOptions& options) {
  try {
    const Request req = Request::Parse(line);
    const std::string& verb = req.verb();
    if (verb == "submit") return HandleSubmit(session, req);
    if (verb == "cancel") return HandleCancel(session, req);
    if (verb == "query-job") return HandleQueryJob(session, req);
    if (verb == "query-metrics") return HandleQueryMetrics(session, req);
    if (verb == "advance") return HandleAdvance(session, req);
    if (verb == "whatif") return HandleWhatIf(session, req, options);
    if (verb == "snapshot") return HandleSnapshot(session, req);
    if (verb == "restore") return HandleRestore(session, req);
    if (verb == "watch") {
      return {{Err("watch streams over a live server connection; "
                   "it has no one-shot dispatch form")},
              false};
    }
    if (verb == "ping") {
      req.RejectUnknown();
      return {{"ok now=" + std::to_string(session.now())}, false};
    }
    if (verb == "shutdown") {
      req.RejectUnknown();
      return {{"ok bye"}, true};
    }
    return {{Err("unknown verb '" + verb + "'")}, false};
  } catch (const std::exception& e) {
    return {{Err(e.what())}, false};
  }
}

ScheduleServer::ScheduleServer(ServiceSession& session, std::uint16_t port)
    : session_(&session), listener_(port) {}

void ScheduleServer::Serve() {
  for (;;) {
    Socket client;
    try {
      client = listener_.Accept();
    } catch (const std::exception&) {
      if (stopping_.load()) break;
      throw;
    }
    if (stopping_.load()) break;  // the RequestStop() wake-up connection
    {
      std::lock_guard<std::mutex> lock(conn_mutex_);
      live_fds_.push_back(client.fd());
    }
    threads_.Spawn([this, sock = std::move(client)]() mutable {
      ServeConnection(std::move(sock));
    });
  }
  // Wake every connection thread still parked in recv (or mid-watch) so the
  // join below cannot hang on an idle client.
  {
    std::lock_guard<std::mutex> lock(conn_mutex_);
    for (const int fd : live_fds_) ShutdownFd(fd);
  }
  threads_.JoinAll();
}

void ScheduleServer::ServeConnection(Socket client) {
  const int fd = client.fd();
  try {
    SendLine(client, kWireGreeting);
    while (!stopping_.load()) {
      const std::optional<std::string> line = client.RecvLine();
      if (!line.has_value()) break;  // client hung up cleanly
      if (line->empty()) continue;
      if (HandleOne(client, *line)) break;  // shutdown accepted
    }
  } catch (const std::exception&) {
    // Per-connection I/O failure — the client hung up between request and
    // response, reset the connection, or vanished mid-stream. Drop this
    // connection; every other client keeps being served.
  }
  // Unregister before the Socket destructor closes the fd, so the stop
  // path can never shut down a recycled descriptor.
  std::lock_guard<std::mutex> lock(conn_mutex_);
  live_fds_.erase(std::remove(live_fds_.begin(), live_fds_.end(), fd),
                  live_fds_.end());
}

bool ScheduleServer::HandleOne(Socket& client, const std::string& line) {
  const std::string verb = VerbOf(line);
  if (verb == "watch") {
    HandleWatch(client, line);
    return false;
  }
  if (verb == "whatif") {
    WireResponse resp;
    try {
      std::vector<WhatIfRun> runs;
      {
        std::shared_lock<std::shared_mutex> lock(session_mutex_);
        const Request req = Request::Parse(line);
        runs = PrepareWhatIfRuns(*session_, req, DispatchOptions{});
      }
      // Step the private copies with no lock held: a slow probe never
      // blocks the writer or other readers.
      resp = FinishWhatIf(std::move(runs));
    } catch (const std::exception& e) {
      resp = {{Err(e.what())}, false};
    }
    for (const std::string& out : resp.lines) SendLine(client, out);
    return false;
  }
  WireResponse resp;
  if (IsMutatingVerb(verb) || verb == "shutdown") {
    std::unique_lock<std::shared_mutex> lock(session_mutex_);
    resp = HandleRequestLine(*session_, line);
  } else {
    std::shared_lock<std::shared_mutex> lock(session_mutex_);
    resp = HandleRequestLine(*session_, line);
  }
  for (const std::string& out : resp.lines) SendLine(client, out);
  if (resp.shutdown) RequestStop();
  return resp.shutdown;
}

void ScheduleServer::HandleWatch(Socket& client, const std::string& line) {
  std::int64_t every = 0;
  std::int64_t count = 0;
  try {
    const Request req = Request::Parse(line);
    every = req.GetInt("every", kHour);
    count = req.GetInt("count", 0);
    req.RejectUnknown();
    if (every <= 0) {
      throw std::invalid_argument("watch every=" + std::to_string(every) +
                                  " must be positive");
    }
    if (count < 0) {
      throw std::invalid_argument("watch count=" + std::to_string(count) +
                                  " is negative (0 means unbounded)");
    }
  } catch (const std::exception& e) {
    SendLine(client, Err(e.what()));
    return;
  }
  SendLine(client,
           "ok n=" + std::to_string(count) + " every=" + std::to_string(every));

  RunningStats util_stats;
  SimTime next_tick;
  {
    std::shared_lock<std::shared_mutex> lock(session_mutex_);
    next_tick = session_->now();
  }
  std::int64_t seq = 0;
  while (!stopping_.load() && (count == 0 || seq < count)) {
    bool due = false;
    SimTime now = 0;
    std::size_t events = 0;
    SimResult metrics;
    {
      std::shared_lock<std::shared_mutex> lock(session_mutex_);
      if (session_->now() >= next_tick) {
        due = true;
        now = session_->now();
        events = session_->events_processed();
        metrics = session_->Metrics();
      }
    }
    if (due) {
      util_stats.Add(metrics.utilization);
      std::string tick = "tick seq=" + std::to_string(seq) + " " +
                         FormatMetricsBody(now, events, metrics);
      tick += " util_mean=" + FmtExactDouble(util_stats.mean());
      tick += " util_min=" + FmtExactDouble(util_stats.min());
      tick += " util_max=" + FmtExactDouble(util_stats.max());
      SendLine(client, tick);  // a hang-up throws; ServeConnection drops us
      ++seq;
      next_tick += every;
      continue;  // drain every due tick before sleeping again
    }
    if (client.PeerClosed()) return;  // watcher vanished while time stood still
    std::this_thread::sleep_for(std::chrono::milliseconds(watch_poll_ms_));
  }
  SendLine(client, "end");
}

void ScheduleServer::RequestStop() {
  if (stopping_.exchange(true)) return;
  // Wake the accept loop: a throwaway self-connection is the portable way
  // to get Accept() to return so Serve() can observe stopping_.
  try {
    Socket wake = ConnectLoopback(listener_.port());
    (void)wake;
  } catch (const std::exception&) {
    // If the listener is already gone, Serve() is past Accept() anyway.
  }
}

}  // namespace hs
