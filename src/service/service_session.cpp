#include "service/service_session.h"

#include <stdexcept>
#include <utility>

#include "core/mechanism.h"
#include "service/protocol.h"
#include "util/file_util.h"

namespace hs {

std::string FormatWhatIfAnswer(const WhatIfAnswer& answer) {
  std::string line = "mech=" + EscapeField(answer.mechanism);
  line += " started=" + std::string(answer.started ? "1" : "0");
  line += " submit=" + std::to_string(answer.submit);
  line += " start=" + std::to_string(answer.started ? answer.start : -1);
  line += " wait=" + std::to_string(answer.started ? answer.wait : -1);
  line += " preemptions=" + std::to_string(answer.preemptions);
  line += " lost_node_h=" + FmtExactDouble(answer.lost_node_hours);
  line += " util=" + FmtExactDouble(answer.utilization);
  return line;
}

WhatIfAnswer RunUntilStarted(SimulationSession& session, JobId probe,
                             std::string mechanism) {
  WhatIfAnswer answer;
  answer.mechanism = std::move(mechanism);
  answer.submit = session.trace().jobs.at(static_cast<std::size_t>(probe)).submit_time;
  for (;;) {
    const std::optional<Collector::JobTimes> times = session.collector().Times(probe);
    if (times.has_value() && times->first_start != kNever) {
      answer.started = true;
      answer.start = times->first_start;
      answer.wait = answer.start - answer.submit;
      break;
    }
    const SimTime next = session.NextEventTime();
    if (next == kNever) break;  // drained: the probe never starts
    // One full timestamp batch per step (events + quiescent pass), so the
    // truncation point is always a batch boundary — the same state a batch
    // run reaches after processing that timestamp.
    session.StepTo(next);
  }
  const SimResult result = session.Finalize();
  answer.preemptions = result.preemptions;
  answer.lost_node_hours = result.lost_node_hours;
  answer.utilization = result.utilization;
  return answer;
}

ServiceSession::ServiceSession(const SimSpec& spec, std::size_t online_headroom)
    : spec_(spec),
      headroom_(online_headroom),
      base_trace_(std::make_shared<const Trace>(spec.BuildTrace())),
      live_(std::make_unique<SimulationSession>(spec, *base_trace_, online_headroom)) {}

JobId ServiceSession::Submit(JobRecord job) {
  const JobId id = live_->SubmitJob(job);
  SessionOp op;
  op.kind = SessionOp::Kind::kSubmit;
  op.at = live_->now();
  op.job = job;
  op.job.id = id;
  ops_.push_back(std::move(op));
  return id;
}

bool ServiceSession::Cancel(JobId id) {
  if (!live_->CancelJob(id)) return false;
  SessionOp op;
  op.kind = SessionOp::Kind::kCancel;
  op.at = live_->now();
  op.target = id;
  ops_.push_back(std::move(op));
  return true;
}

void ServiceSession::AdvanceTo(SimTime t) {
  if (t < live_->now()) {
    throw std::invalid_argument("advance into the past: t=" + std::to_string(t) +
                                " now=" + std::to_string(live_->now()));
  }
  live_->StepTo(t);
}

ServiceSession::JobStatus ServiceSession::Query(JobId id) const {
  JobStatus status;
  const Trace& trace = live_->trace();
  if (id < 0 || static_cast<std::size_t>(id) >= trace.jobs.size()) return status;
  status.record = trace.jobs[static_cast<std::size_t>(id)];
  const HybridScheduler& sched = live_->scheduler();
  const std::optional<Collector::JobTimes> times = live_->collector().Times(id);
  if (times.has_value()) {
    status.first_start = times->first_start;
    status.completion = times->completion;
  }
  if (sched.IsCanceled(id)) {
    status.state = JobState::kCanceled;
  } else if (times.has_value() && times->completion != kNever) {
    status.state = times->killed ? JobState::kKilled : JobState::kDone;
  } else if (sched.engine().IsRunning(id)) {
    status.state = JobState::kRunning;
    status.alloc = sched.engine().Running(id)->alloc;
  } else if (sched.engine().IsWaiting(id)) {
    status.state = JobState::kWaiting;
  } else {
    status.state = JobState::kPending;
  }
  return status;
}

std::vector<WhatIfAnswer> ServiceSession::WhatIf(
    const JobRecord& probe, const std::vector<std::string>& mechanisms,
    bool force_replay) const {
  std::vector<WhatIfRun> runs = PrepareWhatIf(probe, mechanisms, force_replay);
  std::vector<WhatIfAnswer> answers;
  answers.reserve(runs.size());
  for (WhatIfRun& run : runs) {
    answers.push_back(
        RunUntilStarted(*run.session, run.probe, std::move(run.mechanism)));
  }
  return answers;
}

std::vector<WhatIfRun> ServiceSession::PrepareWhatIf(
    const JobRecord& probe, const std::vector<std::string>& mechanisms,
    bool force_replay) const {
  const std::string live_mech = CanonicalMechanismName(spec_.mechanism);
  std::vector<WhatIfRun> runs;
  runs.reserve(mechanisms.size());
  for (const std::string& name : mechanisms) {
    WhatIfRun run;
    run.mechanism = CanonicalMechanismName(name);
    run.session = (!force_replay && run.mechanism == live_mech)
                      ? live_->Fork()
                      : Replay(run.mechanism);
    run.probe = run.session->SubmitJob(probe);
    runs.push_back(std::move(run));
  }
  return runs;
}

void ServiceSession::ReplaceWith(ServiceSession&& other) {
  spec_ = std::move(other.spec_);
  headroom_ = other.headroom_;
  base_trace_ = std::move(other.base_trace_);
  live_ = std::move(other.live_);
  ops_ = std::move(other.ops_);
}

std::unique_ptr<SimulationSession> ServiceSession::Replay(
    const std::string& mechanism) const {
  SimSpec spec = spec_;
  spec.mechanism = mechanism;
  auto session = std::make_unique<SimulationSession>(spec, *base_trace_, headroom_);
  for (const SessionOp& op : ops_) {
    session->StepTo(op.at);
    if (op.kind == SessionOp::Kind::kSubmit) {
      const JobId got = session->SubmitJob(op.job);
      if (got != op.job.id) {
        throw std::logic_error("op-log replay assigned id " + std::to_string(got) +
                               ", live session had " + std::to_string(op.job.id));
      }
    } else {
      session->CancelJob(op.target);
    }
  }
  session->StepTo(live_->now());
  return session;
}

std::string ServiceSession::SnapshotText() const {
  std::string out = std::string(kWireGreeting) + "\n";
  out += "spec " + EscapeField(spec_.ToString()) + "\n";
  out += "headroom " + std::to_string(headroom_) + "\n";
  out += "now " + std::to_string(live_->now()) + "\n";
  for (const SessionOp& op : ops_) {
    if (op.kind == SessionOp::Kind::kSubmit) {
      out += "op submit at=" + std::to_string(op.at) + " " +
             FormatJobFields(op.job, /*with_id=*/true) + "\n";
    } else {
      out += "op cancel at=" + std::to_string(op.at) +
             " id=" + std::to_string(op.target) + "\n";
    }
  }
  out += "end " + std::to_string(ops_.size()) + "\n";
  return out;
}

void ServiceSession::SnapshotTo(const std::string& path) const {
  WriteTextFile(path, SnapshotText());
}

std::unique_ptr<ServiceSession> ServiceSession::RestoreText(const std::string& text) {
  const std::vector<std::string> lines = SplitLines(text);
  std::size_t i = 0;
  const auto next_line = [&]() -> const std::string& {
    if (i >= lines.size()) {
      throw std::invalid_argument("truncated snapshot (no 'end' line)");
    }
    return lines[i++];
  };
  if (next_line() != kWireGreeting) {
    throw std::invalid_argument("snapshot does not open with '" +
                                std::string(kWireGreeting) + "'");
  }
  const std::string spec_line = next_line();
  if (spec_line.rfind("spec ", 0) != 0) {
    throw std::invalid_argument("snapshot missing 'spec' line");
  }
  const SimSpec spec = SimSpec::Parse(UnescapeField(spec_line.substr(5)));
  const std::string headroom_line = next_line();
  if (headroom_line.rfind("headroom ", 0) != 0) {
    throw std::invalid_argument("snapshot missing 'headroom' line");
  }
  const std::size_t headroom = std::stoull(headroom_line.substr(9));
  const std::string now_line = next_line();
  if (now_line.rfind("now ", 0) != 0) {
    throw std::invalid_argument("snapshot missing 'now' line");
  }
  const SimTime now = std::stoll(now_line.substr(4));

  auto session = std::make_unique<ServiceSession>(spec, headroom);
  std::size_t ops = 0;
  for (;;) {
    const std::string& line = next_line();
    if (line.rfind("end ", 0) == 0) {
      if (std::stoull(line.substr(4)) != ops) {
        throw std::invalid_argument("snapshot op count mismatch (truncated?)");
      }
      break;
    }
    if (line.rfind("op ", 0) != 0) {
      throw std::invalid_argument("unexpected snapshot line: " + line);
    }
    const Request op = Request::Parse(line.substr(3));
    const SimTime at = op.GetInt("at", -1);
    if (at < 0) throw std::invalid_argument("op line missing at=: " + line);
    session->AdvanceTo(at);
    if (op.verb() == "submit") {
      const JobId want = ParseJobId(op);
      JobRecord job = ParseJobFields(op, at);
      op.RejectUnknown();
      if (session->Submit(std::move(job)) != want) {
        throw std::invalid_argument("snapshot replay id drift at op " +
                                    std::to_string(ops));
      }
    } else if (op.verb() == "cancel") {
      const JobId target = ParseJobId(op);
      op.RejectUnknown();
      if (!session->Cancel(target)) {
        throw std::invalid_argument("snapshot cancel refused for job " +
                                    std::to_string(target));
      }
    } else {
      throw std::invalid_argument("unknown snapshot op: " + op.verb());
    }
    ++ops;
  }
  session->AdvanceTo(now);
  return session;
}

std::unique_ptr<ServiceSession> ServiceSession::RestoreFrom(const std::string& path) {
  return RestoreText(ReadTextFile(path));
}

}  // namespace hs
