// ScheduleServer: the hs-session v1 verb dispatcher + loopback serve loop.
//
// The dispatcher is a pure function from (session, request line) to
// response lines, so tests drive it without a socket and hs_client's
// --oracle-snapshot mode reuses it verbatim against a restored session.
// Responses are one `ok`/`err` line, except `whatif`, which is framed
// `ok n=K` / K answer lines / `end` (the multi-line responses end with a
// sentinel so clients never guess).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "service/service_session.h"
#include "util/socket.h"

namespace hs {

/// Dispatcher knobs. `force_replay` answers every what-if through op-log
/// replay even for the live mechanism — hs_client's oracle mode, which the
/// CI smoke diffs against the live server's fork-path answers.
struct DispatchOptions {
  bool force_replay = false;
};

struct WireResponse {
  std::vector<std::string> lines;
  bool shutdown = false;  // the `shutdown` verb was accepted
};

/// Handles one request line. Never throws: errors come back as `err ...`.
WireResponse HandleRequestLine(ServiceSession& session, const std::string& line,
                               const DispatchOptions& options = {});

/// Serves `session` on 127.0.0.1:`port` (0 = ephemeral; port() tells).
/// One client at a time, sequential accept loop — the session is single-
/// threaded state and verbs are meant to be serialized anyway.
class ScheduleServer {
 public:
  ScheduleServer(ServiceSession& session, std::uint16_t port);

  std::uint16_t port() const { return listener_.port(); }

  /// Greets each connection with `# hs-session v1`, then answers request
  /// lines until the client disconnects (accept the next) or a `shutdown`
  /// verb arrives (return).
  void Serve();

 private:
  ServiceSession* session_;
  TcpListener listener_;
};

}  // namespace hs
