// ScheduleServer: the hs-session v1 verb dispatcher + concurrent serve loop.
//
// The dispatcher is a pure function from (session, request line) to
// response lines, so tests drive it without a socket and hs_client's
// --oracle-snapshot mode reuses it verbatim against a restored session.
// Responses are one `ok`/`err` line, except `whatif` and `watch`, which
// are framed `ok n=K` / K body lines / `end` (multi-line responses end
// with a sentinel so clients never guess).
//
// Concurrency model (docs/SERVER.md has the full story):
//   * one thread per accepted connection (ThreadGroup harness);
//   * a shared_mutex over the session: mutating verbs (submit/cancel/
//     advance/restore) take it exclusively — the op log totally orders
//     them, so snapshot-replay stays the oracle — while read verbs
//     (ping/query-*/snapshot) share it and never queue behind each other;
//   * `whatif` forks/replays under the read lock, then steps the private
//     copies with no lock held — a long probe never blocks the writer;
//   * `watch` streams metric ticks from its own connection thread,
//     sampling under the read lock and sleeping off it;
//   * per-connection send/recv failures drop that connection only.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <vector>

#include "service/service_session.h"
#include "util/socket.h"
#include "util/thread_group.h"

namespace hs {

/// Dispatcher knobs. `force_replay` answers every what-if through op-log
/// replay even for the live mechanism — hs_client's oracle mode, which the
/// CI smoke diffs against the live server's fork-path answers.
struct DispatchOptions {
  bool force_replay = false;
};

struct WireResponse {
  std::vector<std::string> lines;
  bool shutdown = false;  // the `shutdown` verb was accepted
};

/// Handles one request line. Never throws: errors come back as `err ...`.
/// Single-threaded — the concurrent server wraps it in the appropriate
/// lock per verb; tests and the snapshot oracle call it directly.
WireResponse HandleRequestLine(ServiceSession& session, const std::string& line,
                               const DispatchOptions& options = {});

/// Serves `session` on 127.0.0.1:`port` (0 = ephemeral; port() tells).
class ScheduleServer {
 public:
  ScheduleServer(ServiceSession& session, std::uint16_t port);

  std::uint16_t port() const { return listener_.port(); }

  /// Greets each connection with `# hs-session v1` and answers its request
  /// lines on a dedicated thread until that client disconnects. Returns
  /// once a `shutdown` verb arrives on any connection and every connection
  /// thread has drained.
  void Serve();

  /// Wall-clock interval between `watch` poll samples (tests shrink it).
  void set_watch_poll_ms(int ms) { watch_poll_ms_ = ms; }

 private:
  void ServeConnection(Socket client);
  /// Dispatches one request line on `client`; true when it was `shutdown`.
  bool HandleOne(Socket& client, const std::string& line);
  /// The `watch` verb: streams `tick ...` lines until `count` ticks, the
  /// client hangs up, or the server stops.
  void HandleWatch(Socket& client, const std::string& line);
  /// Flags the serve loop to stop and wakes it out of Accept().
  void RequestStop();

  ServiceSession* session_;
  TcpListener listener_;
  std::shared_mutex session_mutex_;
  std::atomic<bool> stopping_{false};
  std::mutex conn_mutex_;
  std::vector<int> live_fds_;  // open connection fds, for stop-time wakeup
  ThreadGroup threads_;
  int watch_poll_ms_ = 10;
};

}  // namespace hs
