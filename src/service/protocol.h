// The hs-session wire protocol: versioned, line-delimited text.
//
// Same family as the `# hs-shard v1` formats (exp/shard_io.h): every
// message is one line of space-separated tokens, the first being the verb
// (requests) or status (responses), the rest `key=value` pairs with values
// percent-escaped (space -> %20, '%' -> %25, newline -> %0A). Doubles are
// printed with 17 significant digits so they round-trip bit-exactly —
// byte-determinism of responses is part of the contract (tested against
// the batch-run oracle).
//
// Grammar (see docs/SERVER.md for verb semantics):
//
//   request   := verb (' ' key '=' escaped-value)*
//   response  := ('ok' | 'err') (' ' key '=' escaped-value)* | 'err' text
//
// Job records cross the wire as a fixed key set, shared by the `submit`
// verb, what-if probes, and snapshot `op submit` lines:
//
//   class=rigid|od|malleable size=N [min=N] submit=T compute=S estimate=S
//   [setup=S] [notice=T predicted=T] [project=P] [id=J]
//
// Times are absolute simulated seconds; request parsers additionally accept
// '+D' (relative to the session's current time) wherever a time is taken.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "util/time.h"
#include "workload/job.h"

namespace hs {

/// Protocol version line: the server greets each connection with it, and
/// snapshot files open with it.
inline constexpr const char* kWireGreeting = "# hs-session v1";

std::string EscapeField(const std::string& value);
std::string UnescapeField(const std::string& value);

/// %.17g — every finite double round-trips through strtod bit-exactly.
std::string FmtExactDouble(double value);

/// One parsed request line: the verb plus key=value arguments in wire
/// order. Get* helpers throw std::invalid_argument on malformed values and
/// record the key as recognized; call RejectUnknown() after reading all
/// args so a typo'd key fails loudly instead of defaulting.
class Request {
 public:
  /// Parses `verb key=value ...`; throws std::invalid_argument on an empty
  /// line or an argument without '='.
  static Request Parse(const std::string& line);

  const std::string& verb() const { return verb_; }
  bool Has(const std::string& key) const;
  std::string GetString(const std::string& key, const std::string& def) const;
  std::int64_t GetInt(const std::string& key, std::int64_t def) const;
  /// A time argument: absolute seconds, or '+D' meaning `now + D`.
  SimTime GetTime(const std::string& key, SimTime now, SimTime def) const;
  void RejectUnknown() const;

 private:
  std::string verb_;
  std::vector<std::pair<std::string, std::string>> args_;
  mutable std::vector<std::string> recognized_;
};

/// Formats `verb key=value ...` with values escaped (the client side).
std::string FormatRequest(const std::string& verb,
                          const std::vector<std::pair<std::string, std::string>>& args);

/// Renders a JobRecord as its wire key set (`with_id` adds `id=` — snapshot
/// op lines carry it, submit responses echo it separately).
std::string FormatJobFields(const JobRecord& job, bool with_id);

/// Builds a JobRecord from a request's wire keys. `now` resolves relative
/// times. The notice class is derived from (notice, predicted, submit):
/// absent -> none, predicted == submit -> accurate, submit < predicted ->
/// early, submit > predicted -> late. The id is NOT read here (sessions
/// assign ids); ParseJobId handles snapshot lines. Throws
/// std::invalid_argument on missing/malformed keys.
JobRecord ParseJobFields(const Request& req, SimTime now);

/// The `id=` key of a snapshot op line; throws when absent.
JobId ParseJobId(const Request& req);

}  // namespace hs
