// Simulation time: a strong integer type measured in seconds.
//
// The simulator is a discrete-event system; all timestamps and durations are
// whole seconds (the granularity of production HPC schedulers and of the
// Theta trace). Using a distinct type rather than a bare int64_t prevents
// accidental mixing of node counts, identifiers, and times.
#pragma once

#include <cstdint>
#include <string>

namespace hs {

/// A point in simulated time or a duration, in whole seconds.
using SimTime = std::int64_t;

inline constexpr SimTime kSecond = 1;
inline constexpr SimTime kMinute = 60;
inline constexpr SimTime kHour = 3600;
inline constexpr SimTime kDay = 24 * kHour;
inline constexpr SimTime kWeek = 7 * kDay;

/// Sentinel for "no such time"; sorts after every valid timestamp.
inline constexpr SimTime kNever = INT64_MAX;

/// Formats a duration as a compact human string, e.g. "2d03h", "15m20s".
std::string FormatDuration(SimTime seconds);

/// Formats an absolute simulation timestamp as "D+hh:mm:ss" (day offset).
std::string FormatTimestamp(SimTime t);

/// Converts seconds to fractional hours (for reporting).
constexpr double ToHours(SimTime t) { return static_cast<double>(t) / kHour; }

/// Rounds `t` up to the next multiple of `quantum` (quantum > 0).
constexpr SimTime RoundUp(SimTime t, SimTime quantum) {
  return ((t + quantum - 1) / quantum) * quantum;
}

}  // namespace hs
