// Plain-text table rendering for the benchmark harness. Every bench binary
// prints the same rows/series the paper reports; this formatter keeps those
// outputs aligned and diff-friendly.
#pragma once

#include <string>
#include <vector>

namespace hs {

/// A fixed-column ASCII table. Columns are sized to the widest cell.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  void AddRow(std::vector<std::string> row);
  /// Inserts a horizontal rule before the next added row.
  void AddRule();

  /// Renders with a header rule and column separators ("|").
  std::string Render() const;

  std::size_t num_rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;  // empty vector == rule
};

/// Formats a double with `digits` decimals.
std::string Fmt(double v, int digits = 2);
/// Formats a ratio as a percentage with `digits` decimals, e.g. "83.93%".
std::string FmtPct(double ratio, int digits = 2);

}  // namespace hs
