// Minimal TCP primitives for the scheduler service and the distributed
// experiment fabric.
//
// Deliberately tiny: IPv4, blocking I/O by default, newline-delimited text
// messages. Loopback is the default posture (the service is a local
// co-process, like hs_worker); the fabric additionally needs real-host
// connects (ConnectTcp) and bounded reads (RecvLineWithTimeout) so a
// half-open or wedged peer can never hang the orchestrator forever.
// Errors throw std::runtime_error naming the failing call, matching the
// subprocess.h / file_util.h idiom.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace hs {

/// Outcome of a bounded line read (Socket::RecvLineWithTimeout).
enum class RecvLineStatus {
  kLine,     // a complete line (or the partial final line at EOF) arrived
  kEof,      // clean EOF with nothing buffered
  kTimeout,  // no complete line within the deadline; partial bytes stay
             // buffered for the next call
};

/// A connected stream socket; move-only RAII over the file descriptor.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket();
  Socket(Socket&& other) noexcept;
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }
  void Close();

  /// Writes all of `data` (retrying short writes); throws on error.
  /// SIGPIPE is suppressed — a peer hangup surfaces as the exception.
  void SendAll(std::string_view data);

  /// Reads up to and including the next '\n'; returns the line without the
  /// newline (and without a trailing '\r'). nullopt on clean EOF with no
  /// buffered partial line; a partial line at EOF is returned as-is.
  std::optional<std::string> RecvLine();

  /// RecvLine bounded by a deadline: waits at most `timeout_s` seconds
  /// (0 = a single non-blocking poll) for a complete line. kLine fills
  /// `*line` with the same framing rules as RecvLine (a partial line at
  /// EOF counts as a line); kEof is a clean EOF with nothing buffered;
  /// kTimeout means no complete line arrived in time — any bytes already
  /// received stay buffered, so a later call resumes mid-line losslessly.
  /// EINTR never shortens the wait (the deadline is recomputed). Throws on
  /// socket errors, like RecvLine.
  RecvLineStatus RecvLineWithTimeout(double timeout_s, std::string* line);

  /// Non-blocking probe: true when the peer has closed (or the connection
  /// is dead), false when it is still open (with or without pending bytes).
  /// Lets a streaming sender notice a hang-up without writing anything.
  bool PeerClosed() const;

 private:
  int fd_ = -1;
  std::string buf_;  // bytes received past the last returned line
};

/// Sends `line` + '\n'.
void SendLine(Socket& socket, std::string_view line);

/// shutdown(2)s both directions of `fd` without closing it — wakes a thread
/// blocked in recv on the same descriptor (its RecvLine sees EOF). The
/// owning Socket still closes the fd; safe to call from another thread as
/// long as the owner has not closed it yet.
void ShutdownFd(int fd);

/// Connects to 127.0.0.1:`port`; throws std::runtime_error on failure.
Socket ConnectLoopback(std::uint16_t port);

/// Connects to `host`:`port` (IPv4; numeric or resolvable name). A
/// `connect_timeout_s` > 0 bounds the connect itself (non-blocking connect
/// + poll, then the socket is returned to blocking mode); 0 uses the OS
/// default. Throws std::runtime_error naming host:port on failure or
/// timeout — a dead agent must surface quickly, not after the kernel's
/// multi-minute SYN retry schedule.
Socket ConnectTcp(const std::string& host, std::uint16_t port,
                  double connect_timeout_s = 0.0);

/// A listening socket bound to 127.0.0.1 by default (never a routable
/// interface unless `bind_any` is explicitly requested — hs_agent opts in
/// for real multi-host deployments). Port 0 requests an ephemeral port;
/// port() reports the bound one.
class TcpListener {
 public:
  explicit TcpListener(std::uint16_t port, bool bind_any = false);

  std::uint16_t port() const { return port_; }

  /// Blocks for the next connection; throws on listener failure.
  Socket Accept();

 private:
  Socket listen_;
  std::uint16_t port_ = 0;
};

}  // namespace hs
