// Minimal loopback TCP primitives for the scheduler service.
//
// Deliberately tiny: IPv4 loopback only (the service is a local co-process,
// like hs_worker), blocking I/O, newline-delimited text messages. Errors
// throw std::runtime_error naming the failing call, matching the
// subprocess.h / file_util.h idiom.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace hs {

/// A connected stream socket; move-only RAII over the file descriptor.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket();
  Socket(Socket&& other) noexcept;
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }
  void Close();

  /// Writes all of `data` (retrying short writes); throws on error.
  /// SIGPIPE is suppressed — a peer hangup surfaces as the exception.
  void SendAll(std::string_view data);

  /// Reads up to and including the next '\n'; returns the line without the
  /// newline (and without a trailing '\r'). nullopt on clean EOF with no
  /// buffered partial line; a partial line at EOF is returned as-is.
  std::optional<std::string> RecvLine();

  /// Non-blocking probe: true when the peer has closed (or the connection
  /// is dead), false when it is still open (with or without pending bytes).
  /// Lets a streaming sender notice a hang-up without writing anything.
  bool PeerClosed() const;

 private:
  int fd_ = -1;
  std::string buf_;  // bytes received past the last returned line
};

/// Sends `line` + '\n'.
void SendLine(Socket& socket, std::string_view line);

/// shutdown(2)s both directions of `fd` without closing it — wakes a thread
/// blocked in recv on the same descriptor (its RecvLine sees EOF). The
/// owning Socket still closes the fd; safe to call from another thread as
/// long as the owner has not closed it yet.
void ShutdownFd(int fd);

/// Connects to 127.0.0.1:`port`; throws std::runtime_error on failure.
Socket ConnectLoopback(std::uint16_t port);

/// A listening socket bound to 127.0.0.1 (never a routable interface).
/// Port 0 requests an ephemeral port; port() reports the bound one.
class TcpListener {
 public:
  explicit TcpListener(std::uint16_t port);

  std::uint16_t port() const { return port_; }

  /// Blocks for the next connection; throws on listener failure.
  Socket Accept();

 private:
  Socket listen_;
  std::uint16_t port_ = 0;
};

}  // namespace hs
