// Minimal POSIX subprocess spawning for the multi-process experiment
// harness: fork/exec (no shell), optional stdout/stderr redirection to
// files, blocking and deadline waits, non-blocking polls, and kill — the
// primitives the fault-tolerant ShardedRunner needs to respawn dead
// workers and reap hung ones. Every wait/poll retries EINTR, so a stray
// signal during gather can never surface as a spurious worker failure.
// Workers share nothing with the parent beyond their command line, so
// this stays deliberately small.
#pragma once

#include <csignal>
#include <string>
#include <sys/types.h>
#include <vector>

namespace hs {

/// Terminal state of one child process.
struct ProcessStatus {
  bool spawned = false;   // fork/exec reached the child
  int exit_code = -1;     // valid when spawned && !signaled
  bool signaled = false;  // child died on a signal
  int term_signal = 0;    // valid when signaled
  std::string error;      // parent-side failure (fork/open), when !spawned

  bool ok() const { return spawned && !signaled && exit_code == 0; }
  /// Human-readable summary ("exit 3", "signal 11 (SEGV)", ...).
  std::string Describe() const;
};

/// One spawned child. Move-only; Wait() must be called (the destructor
/// asserts the child was reaped so shard failures cannot leak zombies).
class Subprocess {
 public:
  /// An empty handle (no child): running() is false, Wait()/Poll() return
  /// an unspawned status. Assign a Spawn() result into it to arm it.
  Subprocess() = default;

  /// Starts `argv` (argv[0] is the executable; PATH-searched when it has no
  /// '/'). Non-empty `stdout_path` / `stderr_path` redirect the child's
  /// streams to freshly truncated files. Never throws: a failed spawn is
  /// reported by Wait().
  static Subprocess Spawn(const std::vector<std::string>& argv,
                          const std::string& stdout_path = "",
                          const std::string& stderr_path = "");

  Subprocess(Subprocess&& other) noexcept;
  Subprocess& operator=(Subprocess&& other) noexcept;
  Subprocess(const Subprocess&) = delete;
  Subprocess& operator=(const Subprocess&) = delete;
  ~Subprocess();

  /// Blocks until the child exits; idempotent (later calls return the
  /// cached status). EINTR is retried.
  ProcessStatus Wait();

  /// Non-blocking reap attempt (waitpid WNOHANG, EINTR retried): returns
  /// true once the child has exited — the status is cached, and a later
  /// Wait()/Poll() returns it without re-reaping. Also true when the spawn
  /// itself failed (there is nothing left to wait for).
  bool Poll();

  /// Waits until the child exits or `timeout_s` elapses (short poll +
  /// sleep loop); returns true when the child exited within the deadline.
  /// On false the child is still running — Kill() + Wait() to reap it.
  bool WaitFor(double timeout_s);

  /// Sends `sig` (default SIGKILL) to a still-running child. Returns false
  /// when there is nothing to signal (spawn failed or already reaped); the
  /// caller still owns the reap (Wait/Poll) after a successful Kill.
  bool Kill(int sig = SIGKILL);

  /// True while a spawned child has not been reaped yet.
  bool running() const { return pid_ >= 0 && !reaped_; }

  pid_t pid() const { return pid_; }

 private:
  pid_t pid_ = -1;  // -1: spawn failed or already reaped
  ProcessStatus status_;
  bool reaped_ = false;
};

/// Convenience: spawn + wait.
ProcessStatus RunProcess(const std::vector<std::string>& argv,
                         const std::string& stdout_path = "",
                         const std::string& stderr_path = "");

/// Directory holding the current executable (via /proc/self/exe), without a
/// trailing slash; empty when it cannot be resolved. Lets orchestrators
/// find sibling binaries (hs_worker) in the same build directory.
std::string SelfExeDir();

}  // namespace hs
