// Environment-variable knobs shared by the bench binaries so that the whole
// harness can be scaled from quick smoke runs to paper-scale sweeps without
// recompiling (HYBRIDSCHED_WEEKS, HYBRIDSCHED_SEEDS, HYBRIDSCHED_FULL).
#pragma once

#include <cstdint>
#include <string>

namespace hs {

/// Reads an integer env var; returns `def` when unset or unparsable.
std::int64_t EnvInt(const char* name, std::int64_t def);

/// Reads a string env var; returns `def` when unset.
std::string EnvString(const char* name, const std::string& def);

/// Scale shared by bench binaries. The default already matches the paper's
/// horizon (one year); HYBRIDSCHED_FULL additionally averages ten traces per
/// cell as the paper does.
struct BenchScale {
  int weeks = 52;   // trace horizon per run
  int seeds = 5;    // traces averaged per experiment cell
  bool full = false;  // HYBRIDSCHED_FULL=1: 52 weeks x 10 seeds (paper scale)
};

/// Resolves the bench scale from the environment.
BenchScale ResolveBenchScale();

}  // namespace hs
