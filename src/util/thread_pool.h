// Fixed-size worker pool used by the experiment harness to run independent
// simulations (mechanism x workload x seed cells) in parallel. Simulations
// share nothing; determinism comes from per-run RNG seeds, not scheduling
// order, so a plain work queue is sufficient.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace hs {

class ThreadPool {
 public:
  /// Spawns `num_threads` workers (>= 1; defaults to hardware concurrency).
  explicit ThreadPool(std::size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task; the returned future reports the result or exception.
  template <typename F>
  auto Submit(F&& f) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(f));
    std::future<R> result = task->get_future();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (stopping_) throw std::runtime_error("ThreadPool: submit after shutdown");
      queue_.emplace([task] { (*task)(); });
    }
    cv_.notify_one();
    return result;
  }

  /// Runs fn(i) for i in [0, n) across the pool and waits for completion.
  /// Every iteration runs even when one throws; the first exception (in
  /// index order) is rethrown once all of them have finished.
  void ParallelFor(std::size_t n, const std::function<void(std::size_t)>& fn);

  std::size_t size() const { return workers_.size(); }

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

}  // namespace hs
