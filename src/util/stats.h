// Online and batch summary statistics used by the metrics and experiment
// layers: running mean/variance (Welford), percentiles, confidence
// half-widths for seed-averaged experiment cells.
#pragma once

#include <cstddef>
#include <vector>

namespace hs {

/// Numerically stable running mean / variance / extrema accumulator.
class RunningStats {
 public:
  void Add(double x);
  void Merge(const RunningStats& other);

  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  double sum() const { return sum_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Exact percentile of a sample (linear interpolation between order
/// statistics); `q` in [0, 1]. Copies and sorts; intended for reporting.
double Percentile(std::vector<double> values, double q);

/// Half-width of an approximate 95% confidence interval for the mean of
/// `stats` (normal approximation; returns 0 for fewer than two samples).
double ConfidenceHalfWidth95(const RunningStats& stats);

/// Arithmetic mean of a vector (0 for empty input).
double Mean(const std::vector<double>& values);

}  // namespace hs
