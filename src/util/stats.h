// Online and batch summary statistics used by the metrics and experiment
// layers: running mean/variance (Welford), percentiles, streaming quantile
// estimation (P²), confidence half-widths for seed-averaged experiment
// cells.
#pragma once

#include <array>
#include <cstddef>
#include <vector>

namespace hs {

/// Numerically stable running mean / variance / extrema accumulator.
class RunningStats {
 public:
  void Add(double x);
  void Merge(const RunningStats& other);

  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  double sum() const { return sum_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Exact percentile of a sample (linear interpolation between order
/// statistics); `q` in [0, 1]. Copies and sorts; intended for reporting.
double Percentile(std::vector<double> values, double q);

/// Streaming quantile estimator (Jain & Chlamtac's P² algorithm): one
/// quantile tracked in O(1) memory with five markers, no sample retained.
/// Exact (order-statistic interpolation) for the first five observations;
/// an estimate after that. Deterministic in the insertion sequence — feed
/// it through a MergingResultSink (canonical spec order) and the digest of
/// a sharded grid is identical to the single-process one.
class P2Quantile {
 public:
  /// `q` in (0, 1), e.g. 0.99 for the 99th percentile.
  explicit P2Quantile(double q);

  void Add(double x);

  /// Current estimate (0 before the first observation).
  double value() const;
  double quantile() const { return q_; }
  std::size_t count() const { return n_; }

 private:
  double q_;
  std::size_t n_ = 0;
  std::array<double, 5> heights_{};    // marker heights (sorted)
  std::array<double, 5> positions_{};  // actual marker positions (1-based)
  std::array<double, 5> desired_{};    // desired marker positions
  std::array<double, 5> increments_{}; // desired-position increment per Add
};

/// Half-width of an approximate 95% confidence interval for the mean of
/// `stats` (normal approximation; returns 0 for fewer than two samples).
double ConfidenceHalfWidth95(const RunningStats& stats);

/// Arithmetic mean of a vector (0 for empty input).
double Mean(const std::vector<double>& values);

}  // namespace hs
