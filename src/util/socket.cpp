#include "util/socket.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <stdexcept>
#include <utility>

namespace hs {

namespace {

[[noreturn]] void Fail(const std::string& what) {
  throw std::runtime_error(what + ": " + std::strerror(errno));
}

sockaddr_in LoopbackAddr(std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  return addr;
}

/// poll(2) on one fd for `events`, EINTR-safe against a fixed deadline.
/// Returns the revents (0 on timeout). `timeout_ms` < 0 blocks forever.
int PollFd(int fd, short events, int timeout_ms) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(timeout_ms);
  for (;;) {
    int remaining = timeout_ms;
    if (timeout_ms > 0) {
      const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                            deadline - std::chrono::steady_clock::now())
                            .count();
      remaining = left > 0 ? static_cast<int>(left) : 0;
    }
    pollfd pfd{fd, events, 0};
    const int rc = ::poll(&pfd, 1, remaining);
    if (rc < 0) {
      if (errno == EINTR) continue;  // re-derive remaining from the deadline
      Fail("poll");
    }
    return rc == 0 ? 0 : pfd.revents;
  }
}

}  // namespace

Socket::~Socket() { Close(); }

Socket::Socket(Socket&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)), buf_(std::move(other.buf_)) {}

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = std::exchange(other.fd_, -1);
    buf_ = std::move(other.buf_);
  }
  return *this;
}

void Socket::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  buf_.clear();
}

void Socket::SendAll(std::string_view data) {
  if (fd_ < 0) throw std::runtime_error("Socket::SendAll on closed socket");
  while (!data.empty()) {
    // MSG_NOSIGNAL: a hung-up peer must surface as the exception below, not
    // as a process-killing SIGPIPE.
    const ssize_t n = ::send(fd_, data.data(), data.size(), MSG_NOSIGNAL);
    if (n <= 0) {
      // n == 0 cannot make progress; treat it like EINTR and retry rather
      // than spin the remove_prefix loop on an empty write.
      if (n == 0 || errno == EINTR) continue;
      Fail("Socket::SendAll");
    }
    data.remove_prefix(static_cast<std::size_t>(n));
  }
}

std::optional<std::string> Socket::RecvLine() {
  if (fd_ < 0) throw std::runtime_error("Socket::RecvLine on closed socket");
  for (;;) {
    const std::size_t nl = buf_.find('\n');
    if (nl != std::string::npos) {
      std::string line = buf_.substr(0, nl);
      buf_.erase(0, nl + 1);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      return line;
    }
    char chunk[4096];
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      Fail("Socket::RecvLine");
    }
    if (n == 0) {  // EOF
      if (buf_.empty()) return std::nullopt;
      std::string line = std::move(buf_);
      buf_.clear();
      if (!line.empty() && line.back() == '\r') line.pop_back();
      return line;
    }
    buf_.append(chunk, static_cast<std::size_t>(n));
  }
}

RecvLineStatus Socket::RecvLineWithTimeout(double timeout_s, std::string* line) {
  if (fd_ < 0) throw std::runtime_error("Socket::RecvLineWithTimeout on closed socket");
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(timeout_s));
  bool first = true;
  for (;;) {
    const std::size_t nl = buf_.find('\n');
    if (nl != std::string::npos) {
      *line = buf_.substr(0, nl);
      buf_.erase(0, nl + 1);
      if (!line->empty() && line->back() == '\r') line->pop_back();
      return RecvLineStatus::kLine;
    }
    int remaining_ms = 0;
    if (timeout_s > 0.0) {
      const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                            deadline - std::chrono::steady_clock::now())
                            .count();
      remaining_ms = left > 0 ? static_cast<int>(left) : 0;
      if (remaining_ms == 0 && !first) return RecvLineStatus::kTimeout;
    }
    first = false;
    if (PollFd(fd_, POLLIN, remaining_ms) == 0) return RecvLineStatus::kTimeout;
    // POLLIN (or POLLHUP/POLLERR) is up: one recv cannot block, and an
    // error condition surfaces through it as -1 / EOF.
    char chunk[4096];
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      Fail("Socket::RecvLineWithTimeout");
    }
    if (n == 0) {  // EOF: a buffered partial line is still a line
      if (buf_.empty()) return RecvLineStatus::kEof;
      *line = std::move(buf_);
      buf_.clear();
      if (!line->empty() && line->back() == '\r') line->pop_back();
      return RecvLineStatus::kLine;
    }
    buf_.append(chunk, static_cast<std::size_t>(n));
  }
}

bool Socket::PeerClosed() const {
  if (fd_ < 0) return true;
  char probe;
  const ssize_t n = ::recv(fd_, &probe, 1, MSG_PEEK | MSG_DONTWAIT);
  if (n > 0) return false;  // pending request bytes: still talking to us
  if (n == 0) return true;  // orderly shutdown from the peer
  return errno != EAGAIN && errno != EWOULDBLOCK && errno != EINTR;
}

void ShutdownFd(int fd) {
  if (fd >= 0) ::shutdown(fd, SHUT_RDWR);
}

void SendLine(Socket& socket, std::string_view line) {
  std::string framed(line);
  framed += '\n';
  socket.SendAll(framed);
}

Socket ConnectLoopback(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) Fail("ConnectLoopback: socket");
  Socket sock(fd);
  const sockaddr_in addr = LoopbackAddr(port);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    Fail("ConnectLoopback: connect to 127.0.0.1:" + std::to_string(port));
  }
  return sock;
}

Socket ConnectTcp(const std::string& host, std::uint16_t port,
                  double connect_timeout_s) {
  const std::string label = host + ":" + std::to_string(port);
  addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* res = nullptr;
  const int gai = ::getaddrinfo(host.c_str(), std::to_string(port).c_str(),
                                &hints, &res);
  if (gai != 0) {
    throw std::runtime_error("ConnectTcp: resolve " + label + ": " +
                             ::gai_strerror(gai));
  }
  std::string last_error = "no addresses";
  for (const addrinfo* ai = res; ai != nullptr; ai = ai->ai_next) {
    const int fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) {
      last_error = std::string("socket: ") + std::strerror(errno);
      continue;
    }
    Socket sock(fd);
    if (connect_timeout_s <= 0.0) {
      if (::connect(fd, ai->ai_addr, ai->ai_addrlen) == 0) {
        ::freeaddrinfo(res);
        return sock;
      }
      last_error = std::string("connect: ") + std::strerror(errno);
      continue;
    }
    // Bounded connect: non-blocking connect, poll for writability, read
    // SO_ERROR for the verdict, then return the socket to blocking mode.
    const int flags = ::fcntl(fd, F_GETFL, 0);
    if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
      last_error = std::string("fcntl: ") + std::strerror(errno);
      continue;
    }
    int rc = ::connect(fd, ai->ai_addr, ai->ai_addrlen);
    if (rc != 0 && errno != EINPROGRESS && errno != EINTR) {
      last_error = std::string("connect: ") + std::strerror(errno);
      continue;
    }
    if (rc != 0) {
      const int timeout_ms =
          static_cast<int>(connect_timeout_s * 1000.0) + 1;
      if (PollFd(fd, POLLOUT, timeout_ms) == 0) {
        last_error = "connect timed out after " +
                     std::to_string(connect_timeout_s) + "s";
        continue;
      }
      int err = 0;
      socklen_t len = sizeof(err);
      if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) != 0 || err != 0) {
        last_error = std::string("connect: ") +
                     std::strerror(err != 0 ? err : errno);
        continue;
      }
    }
    if (::fcntl(fd, F_SETFL, flags) < 0) {
      last_error = std::string("fcntl restore: ") + std::strerror(errno);
      continue;
    }
    ::freeaddrinfo(res);
    return sock;
  }
  ::freeaddrinfo(res);
  throw std::runtime_error("ConnectTcp: " + label + ": " + last_error);
}

TcpListener::TcpListener(std::uint16_t port, bool bind_any) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) Fail("TcpListener: socket");
  listen_ = Socket(fd);
  const int one = 1;
  if (::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one)) != 0) {
    Fail("TcpListener: setsockopt(SO_REUSEADDR)");
  }
  sockaddr_in addr = LoopbackAddr(port);
  if (bind_any) addr.sin_addr.s_addr = htonl(INADDR_ANY);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    Fail("TcpListener: bind " + std::string(bind_any ? "0.0.0.0" : "127.0.0.1") +
         ":" + std::to_string(port));
  }
  if (::listen(fd, 8) != 0) Fail("TcpListener: listen");
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    Fail("TcpListener: getsockname");
  }
  port_ = ntohs(addr.sin_port);
}

Socket TcpListener::Accept() {
  for (;;) {
    const int fd = ::accept(listen_.fd(), nullptr, nullptr);
    if (fd >= 0) return Socket(fd);
    if (errno == EINTR) continue;
    Fail("TcpListener::Accept");
  }
}

}  // namespace hs
