#include "util/socket.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <utility>

namespace hs {

namespace {

[[noreturn]] void Fail(const std::string& what) {
  throw std::runtime_error(what + ": " + std::strerror(errno));
}

sockaddr_in LoopbackAddr(std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  return addr;
}

}  // namespace

Socket::~Socket() { Close(); }

Socket::Socket(Socket&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)), buf_(std::move(other.buf_)) {}

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = std::exchange(other.fd_, -1);
    buf_ = std::move(other.buf_);
  }
  return *this;
}

void Socket::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  buf_.clear();
}

void Socket::SendAll(std::string_view data) {
  if (fd_ < 0) throw std::runtime_error("Socket::SendAll on closed socket");
  while (!data.empty()) {
    // MSG_NOSIGNAL: a hung-up peer must surface as the exception below, not
    // as a process-killing SIGPIPE.
    const ssize_t n = ::send(fd_, data.data(), data.size(), MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      Fail("Socket::SendAll");
    }
    data.remove_prefix(static_cast<std::size_t>(n));
  }
}

std::optional<std::string> Socket::RecvLine() {
  if (fd_ < 0) throw std::runtime_error("Socket::RecvLine on closed socket");
  for (;;) {
    const std::size_t nl = buf_.find('\n');
    if (nl != std::string::npos) {
      std::string line = buf_.substr(0, nl);
      buf_.erase(0, nl + 1);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      return line;
    }
    char chunk[4096];
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      Fail("Socket::RecvLine");
    }
    if (n == 0) {  // EOF
      if (buf_.empty()) return std::nullopt;
      std::string line = std::move(buf_);
      buf_.clear();
      if (!line.empty() && line.back() == '\r') line.pop_back();
      return line;
    }
    buf_.append(chunk, static_cast<std::size_t>(n));
  }
}

bool Socket::PeerClosed() const {
  if (fd_ < 0) return true;
  char probe;
  const ssize_t n = ::recv(fd_, &probe, 1, MSG_PEEK | MSG_DONTWAIT);
  if (n > 0) return false;  // pending request bytes: still talking to us
  if (n == 0) return true;  // orderly shutdown from the peer
  return errno != EAGAIN && errno != EWOULDBLOCK && errno != EINTR;
}

void ShutdownFd(int fd) {
  if (fd >= 0) ::shutdown(fd, SHUT_RDWR);
}

void SendLine(Socket& socket, std::string_view line) {
  std::string framed(line);
  framed += '\n';
  socket.SendAll(framed);
}

Socket ConnectLoopback(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) Fail("ConnectLoopback: socket");
  Socket sock(fd);
  const sockaddr_in addr = LoopbackAddr(port);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    Fail("ConnectLoopback: connect to 127.0.0.1:" + std::to_string(port));
  }
  return sock;
}

TcpListener::TcpListener(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) Fail("TcpListener: socket");
  listen_ = Socket(fd);
  const int one = 1;
  if (::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one)) != 0) {
    Fail("TcpListener: setsockopt(SO_REUSEADDR)");
  }
  sockaddr_in addr = LoopbackAddr(port);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    Fail("TcpListener: bind 127.0.0.1:" + std::to_string(port));
  }
  if (::listen(fd, 8) != 0) Fail("TcpListener: listen");
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    Fail("TcpListener: getsockname");
  }
  port_ = ntohs(addr.sin_port);
}

Socket TcpListener::Accept() {
  for (;;) {
    const int fd = ::accept(listen_.fd(), nullptr, nullptr);
    if (fd >= 0) return Socket(fd);
    if (errno == EINTR) continue;
    Fail("TcpListener::Accept");
  }
}

}  // namespace hs
