#include "util/env.h"

#include <cstdlib>

namespace hs {

std::int64_t EnvInt(const char* name, std::int64_t def) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return def;
  char* end = nullptr;
  const long long parsed = std::strtoll(v, &end, 10);
  if (end == v) return def;
  return parsed;
}

std::string EnvString(const char* name, const std::string& def) {
  const char* v = std::getenv(name);
  return (v == nullptr) ? def : std::string(v);
}

BenchScale ResolveBenchScale() {
  BenchScale scale;
  scale.full = EnvInt("HYBRIDSCHED_FULL", 0) != 0;
  if (scale.full) {
    scale.weeks = 52;
    scale.seeds = 10;
  }
  scale.weeks = static_cast<int>(EnvInt("HYBRIDSCHED_WEEKS", scale.weeks));
  scale.seeds = static_cast<int>(EnvInt("HYBRIDSCHED_SEEDS", scale.seeds));
  if (scale.weeks < 1) scale.weeks = 1;
  if (scale.seeds < 1) scale.seeds = 1;
  return scale;
}

}  // namespace hs
