#include "util/stats.h"

#include <algorithm>
#include <cmath>

namespace hs {

void RunningStats::Add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::Merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double n = na + nb;
  mean_ += delta * nb / n;
  m2_ += other.m2_ + delta * delta * na * nb / n;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  n_ += other.n_;
}

double RunningStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double Percentile(std::vector<double> values, double q) {
  if (values.empty()) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  std::sort(values.begin(), values.end());
  const double pos = q * static_cast<double>(values.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const auto hi = std::min(lo + 1, values.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

double ConfidenceHalfWidth95(const RunningStats& stats) {
  if (stats.count() < 2) return 0.0;
  return 1.96 * stats.stddev() / std::sqrt(static_cast<double>(stats.count()));
}

double Mean(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double s = 0.0;
  for (const double v : values) s += v;
  return s / static_cast<double>(values.size());
}

}  // namespace hs
