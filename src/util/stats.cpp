#include "util/stats.h"

#include <algorithm>
#include <cmath>

namespace hs {

void RunningStats::Add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::Merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double n = na + nb;
  mean_ += delta * nb / n;
  m2_ += other.m2_ + delta * delta * na * nb / n;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  n_ += other.n_;
}

double RunningStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double Percentile(std::vector<double> values, double q) {
  if (values.empty()) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  std::sort(values.begin(), values.end());
  const double pos = q * static_cast<double>(values.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const auto hi = std::min(lo + 1, values.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

P2Quantile::P2Quantile(double q) : q_(std::clamp(q, 1e-9, 1.0 - 1e-9)) {
  increments_ = {0.0, q_ / 2.0, q_, (1.0 + q_) / 2.0, 1.0};
}

void P2Quantile::Add(double x) {
  if (n_ < 5) {
    heights_[n_++] = x;
    std::sort(heights_.begin(), heights_.begin() + n_);
    if (n_ == 5) {
      positions_ = {1.0, 2.0, 3.0, 4.0, 5.0};
      desired_ = {1.0, 1.0 + 2.0 * q_, 1.0 + 4.0 * q_, 3.0 + 2.0 * q_, 5.0};
    }
    return;
  }
  ++n_;

  // Locate the cell of x, extending the extremes when it falls outside.
  std::size_t k;
  if (x < heights_[0]) {
    heights_[0] = x;
    k = 0;
  } else if (x >= heights_[4]) {
    heights_[4] = x;
    k = 3;
  } else {
    k = 0;
    while (k < 3 && x >= heights_[k + 1]) ++k;
  }

  for (std::size_t i = k + 1; i < 5; ++i) positions_[i] += 1.0;
  for (std::size_t i = 0; i < 5; ++i) desired_[i] += increments_[i];

  // Nudge the three interior markers toward their desired positions using
  // the piecewise-parabolic (P^2) height update, falling back to linear
  // interpolation when the parabola would break marker monotonicity.
  for (std::size_t i = 1; i <= 3; ++i) {
    const double d = desired_[i] - positions_[i];
    const double ahead = positions_[i + 1] - positions_[i];
    const double behind = positions_[i - 1] - positions_[i];
    if ((d >= 1.0 && ahead > 1.0) || (d <= -1.0 && behind < -1.0)) {
      const double s = d >= 1.0 ? 1.0 : -1.0;
      const double hp = (heights_[i + 1] - heights_[i]) / ahead;
      const double hm = (heights_[i - 1] - heights_[i]) / behind;
      const double parabolic =
          heights_[i] + s / (positions_[i + 1] - positions_[i - 1]) *
                            ((positions_[i] - positions_[i - 1] + s) * hp +
                             (positions_[i + 1] - positions_[i] - s) * hm);
      if (heights_[i - 1] < parabolic && parabolic < heights_[i + 1]) {
        heights_[i] = parabolic;
      } else {
        heights_[i] += s * (s > 0.0 ? hp : hm);
      }
      positions_[i] += s;
    }
  }
}

double P2Quantile::value() const {
  if (n_ == 0) return 0.0;
  if (n_ <= 5) {
    // Exact order-statistic interpolation over the retained sample.
    std::vector<double> sample(heights_.begin(), heights_.begin() + n_);
    return Percentile(std::move(sample), q_);
  }
  return heights_[2];
}

double ConfidenceHalfWidth95(const RunningStats& stats) {
  if (stats.count() < 2) return 0.0;
  return 1.96 * stats.stddev() / std::sqrt(static_cast<double>(stats.count()));
}

double Mean(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double s = 0.0;
  for (const double v : values) s += v;
  return s / static_cast<double>(values.size());
}

}  // namespace hs
