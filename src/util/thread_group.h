// ThreadGroup: a joinable set of worker threads.
//
// The thread-per-connection harness behind ScheduleServer: Spawn() is
// thread-safe (the accept loop and connection handlers race on it freely),
// JoinAll() drains every spawned thread — including ones spawned while the
// drain is in progress — and the destructor joins whatever is left so a
// thrown exception can never leak a detached thread.
#pragma once

#include <cstddef>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

namespace hs {

class ThreadGroup {
 public:
  ThreadGroup() = default;
  ~ThreadGroup() { JoinAll(); }
  ThreadGroup(const ThreadGroup&) = delete;
  ThreadGroup& operator=(const ThreadGroup&) = delete;

  /// Starts a thread running `fn` (any move-only callable) and tracks it.
  template <typename F>
  void Spawn(F&& fn) {
    std::thread worker(std::forward<F>(fn));
    std::lock_guard<std::mutex> lock(mutex_);
    threads_.push_back(std::move(worker));
    ++spawned_;
  }

  /// Total threads spawned over the group's lifetime (joined or not).
  std::size_t spawned() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return spawned_;
  }

  /// Joins every tracked thread; loops until no new ones appear.
  void JoinAll() {
    for (;;) {
      std::vector<std::thread> drained;
      {
        std::lock_guard<std::mutex> lock(mutex_);
        if (threads_.empty()) return;
        drained.swap(threads_);
      }
      for (std::thread& t : drained) {
        if (t.joinable()) t.join();
      }
    }
  }

 private:
  mutable std::mutex mutex_;
  std::vector<std::thread> threads_;
  std::size_t spawned_ = 0;
};

}  // namespace hs
