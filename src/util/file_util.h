// Small file helpers shared by the sharded experiment harness: whole-file
// read/write, line splitting, and temp-dir management for shard scratch
// space. All failures throw std::runtime_error naming the path.
#pragma once

#include <string>
#include <vector>

namespace hs {

/// Reads the whole file; throws std::runtime_error when it cannot be opened.
std::string ReadTextFile(const std::string& path);

/// Writes (truncates) the whole file; throws std::runtime_error on failure.
void WriteTextFile(const std::string& path, const std::string& content);

/// Splits `text` into lines ('\n'; a trailing newline does not produce an
/// empty final line).
std::vector<std::string> SplitLines(const std::string& text);

/// ReadTextFile + SplitLines.
std::vector<std::string> ReadLines(const std::string& path);

/// Creates a fresh, uniquely named directory under TMPDIR (default /tmp)
/// with the given name prefix and returns its path.
std::string MakeTempDir(const std::string& prefix);

/// Recursively removes `path` if it exists; errors are ignored (cleanup of
/// scratch space must never mask the real failure).
void RemoveTreeBestEffort(const std::string& path);

}  // namespace hs
