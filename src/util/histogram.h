// Simple bucketed histogram over named, explicitly-bounded ranges.
// Used to reproduce the job-size characterization of Fig. 3 (count of jobs
// and total core-hours per size range).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace hs {

/// A histogram with caller-defined, inclusive-lower / inclusive-upper bins.
class RangeHistogram {
 public:
  struct Bin {
    std::int64_t lo = 0;
    std::int64_t hi = 0;  // inclusive
    std::string label;
    std::size_t count = 0;
    double weight = 0.0;  // sum of per-sample weights (e.g. node-hours)
  };

  /// `edges` are bin boundaries [e0, e1, ..., en]; bins are [e0,e1-1],
  /// [e1,e2-1], ..., [e_{n-1}, en]. Requires strictly increasing edges and
  /// at least two of them.
  explicit RangeHistogram(const std::vector<std::int64_t>& edges);

  /// Adds a sample; out-of-range samples clamp to the first/last bin.
  void Add(std::int64_t value, double weight = 1.0);

  const std::vector<Bin>& bins() const { return bins_; }
  std::size_t total_count() const { return total_count_; }
  double total_weight() const { return total_weight_; }

  /// Fraction of samples in bin i (0 if empty histogram).
  double CountShare(std::size_t i) const;
  /// Fraction of weight in bin i (0 if zero total weight).
  double WeightShare(std::size_t i) const;

 private:
  std::vector<Bin> bins_;
  std::size_t total_count_ = 0;
  double total_weight_ = 0.0;
};

}  // namespace hs
