#include "util/table.h"

#include <algorithm>
#include <cstdio>
#include <sstream>
#include <stdexcept>

namespace hs {

TextTable::TextTable(std::vector<std::string> header) : header_(std::move(header)) {
  if (header_.empty()) throw std::invalid_argument("TextTable: empty header");
}

void TextTable::AddRow(std::vector<std::string> row) {
  if (row.size() != header_.size()) {
    throw std::invalid_argument("TextTable: row width != header width");
  }
  rows_.push_back(std::move(row));
}

void TextTable::AddRule() { rows_.emplace_back(); }

std::string TextTable::Render() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto render_row = [&](const std::vector<std::string>& row, std::ostringstream& os) {
    os << "|";
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << ' ' << row[c] << std::string(widths[c] - row[c].size(), ' ') << " |";
    }
    os << '\n';
  };
  auto render_rule = [&](std::ostringstream& os) {
    os << "+";
    for (const std::size_t w : widths) os << std::string(w + 2, '-') << '+';
    os << '\n';
  };
  std::ostringstream os;
  render_rule(os);
  render_row(header_, os);
  render_rule(os);
  for (const auto& row : rows_) {
    if (row.empty()) {
      render_rule(os);
    } else {
      render_row(row, os);
    }
  }
  render_rule(os);
  return os.str();
}

std::string Fmt(double v, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, v);
  return buf;
}

std::string FmtPct(double ratio, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f%%", digits, ratio * 100.0);
  return buf;
}

}  // namespace hs
