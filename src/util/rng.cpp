#include "util/rng.h"

#include <cassert>
#include <cmath>
#include <stdexcept>
#include <vector>

namespace hs {

std::uint64_t SplitMix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t HashTag(std::string_view tag) {
  std::uint64_t h = 0xCBF29CE484222325ULL;
  for (const char c : tag) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001B3ULL;
  }
  return h;
}

Rng::Rng(std::uint64_t seed) : engine_(seed), seed_(seed) {}

Rng Rng::Fork(std::string_view tag) {
  std::uint64_t state = seed_ ^ HashTag(tag) ^ (0xA5A5A5A5A5A5A5A5ULL + ++fork_counter_);
  return Rng(SplitMix64(state));
}

std::int64_t Rng::UniformInt(std::int64_t lo, std::int64_t hi) {
  assert(lo <= hi);
  return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
}

double Rng::Uniform(double lo, double hi) {
  return std::uniform_real_distribution<double>(lo, hi)(engine_);
}

bool Rng::Chance(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return Uniform() < p;
}

double Rng::LogNormal(double mu, double sigma) {
  return std::lognormal_distribution<double>(mu, sigma)(engine_);
}

double Rng::Exponential(double mean) {
  assert(mean > 0.0);
  return std::exponential_distribution<double>(1.0 / mean)(engine_);
}

double Rng::Normal(double mean, double stddev) {
  return std::normal_distribution<double>(mean, stddev)(engine_);
}

std::size_t Rng::Zipf(std::size_t n, double s) {
  assert(n >= 1 && s > 0.0);
  // Direct inversion over the (small) alphabet; n is at most a few hundred
  // projects, so an O(n) scan per draw is cheap and exact.
  double total = 0.0;
  for (std::size_t k = 0; k < n; ++k) total += 1.0 / std::pow(double(k + 1), s);
  double u = Uniform(0.0, total);
  for (std::size_t k = 0; k < n; ++k) {
    u -= 1.0 / std::pow(double(k + 1), s);
    if (u <= 0.0) return k;
  }
  return n - 1;
}

std::size_t Rng::Categorical(const std::vector<double>& weights) {
  double total = 0.0;
  for (const double w : weights) {
    assert(w >= 0.0);
    total += w;
  }
  if (total <= 0.0) throw std::invalid_argument("Categorical: all weights zero");
  double u = Uniform(0.0, total);
  for (std::size_t i = 0; i < weights.size(); ++i) {
    u -= weights[i];
    if (u <= 0.0) return i;
  }
  return weights.size() - 1;
}

}  // namespace hs
