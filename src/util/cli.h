// A tiny --key=value flag parser for the example binaries; no external
// dependencies and no global state.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace hs {

/// Parses argv of the form: prog --alpha=3 --name=foo --verbose positional.
/// Flags must use the --key=value or --key (boolean true) forms.
///
/// Every Get*/Has call records its key as recognized; call RejectUnknown()
/// once all flags have been read to fail loudly on typo'd flags instead of
/// silently falling through to defaults.
class CliArgs {
 public:
  CliArgs(int argc, const char* const* argv);

  bool Has(const std::string& key) const;
  std::string GetString(const std::string& key, const std::string& def) const;
  std::int64_t GetInt(const std::string& key, std::int64_t def) const;
  double GetDouble(const std::string& key, double def) const;
  bool GetBool(const std::string& key, bool def) const;

  /// Throws std::invalid_argument listing every --flag that was passed but
  /// never read through Has/Get* (i.e. flags no code path recognizes).
  void RejectUnknown() const;

  /// The flags RejectUnknown would complain about right now.
  std::vector<std::string> UnknownFlags() const;

  const std::vector<std::string>& positional() const { return positional_; }
  const std::string& program() const { return program_; }

 private:
  std::string program_;
  std::map<std::string, std::string> flags_;
  std::vector<std::string> positional_;
  mutable std::set<std::string> recognized_;
};

}  // namespace hs
