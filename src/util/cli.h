// A tiny --key=value flag parser for the example binaries; no external
// dependencies and no global state.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace hs {

/// Parses argv of the form: prog --alpha=3 --name=foo --verbose positional.
/// Flags must use the --key=value or --key (boolean true) forms.
class CliArgs {
 public:
  CliArgs(int argc, const char* const* argv);

  bool Has(const std::string& key) const;
  std::string GetString(const std::string& key, const std::string& def) const;
  std::int64_t GetInt(const std::string& key, std::int64_t def) const;
  double GetDouble(const std::string& key, double def) const;
  bool GetBool(const std::string& key, bool def) const;

  const std::vector<std::string>& positional() const { return positional_; }
  const std::string& program() const { return program_; }

 private:
  std::string program_;
  std::map<std::string, std::string> flags_;
  std::vector<std::string> positional_;
};

}  // namespace hs
