#include "util/histogram.h"

#include <cassert>
#include <stdexcept>

namespace hs {

RangeHistogram::RangeHistogram(const std::vector<std::int64_t>& edges) {
  if (edges.size() < 2) throw std::invalid_argument("RangeHistogram: need >= 2 edges");
  for (std::size_t i = 0; i + 1 < edges.size(); ++i) {
    if (edges[i] >= edges[i + 1]) {
      throw std::invalid_argument("RangeHistogram: edges must be strictly increasing");
    }
    Bin b;
    b.lo = edges[i];
    // Last bin is inclusive of the final edge; interior bins end one below
    // the next edge so that bins partition [e0, en] over integers.
    b.hi = (i + 2 == edges.size()) ? edges[i + 1] : edges[i + 1] - 1;
    b.label = std::to_string(b.lo) + "-" + std::to_string(b.hi);
    bins_.push_back(std::move(b));
  }
}

void RangeHistogram::Add(std::int64_t value, double weight) {
  std::size_t idx = 0;
  if (value <= bins_.front().hi) {
    idx = 0;
  } else if (value >= bins_.back().lo) {
    idx = bins_.size() - 1;
  } else {
    // Linear scan: bin counts here are tiny (size-range characterizations).
    for (std::size_t i = 0; i < bins_.size(); ++i) {
      if (value >= bins_[i].lo && value <= bins_[i].hi) {
        idx = i;
        break;
      }
    }
  }
  bins_[idx].count += 1;
  bins_[idx].weight += weight;
  total_count_ += 1;
  total_weight_ += weight;
}

double RangeHistogram::CountShare(std::size_t i) const {
  assert(i < bins_.size());
  if (total_count_ == 0) return 0.0;
  return static_cast<double>(bins_[i].count) / static_cast<double>(total_count_);
}

double RangeHistogram::WeightShare(std::size_t i) const {
  assert(i < bins_.size());
  if (total_weight_ <= 0.0) return 0.0;
  return bins_[i].weight / total_weight_;
}

}  // namespace hs
