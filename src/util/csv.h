// Minimal CSV emission for experiment results (machine-readable companion to
// the ASCII tables). Quotes fields containing separators or quotes.
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace hs {

class CsvWriter {
 public:
  /// Writes to `out`; the stream must outlive the writer.
  explicit CsvWriter(std::ostream& out) : out_(out) {}

  void WriteRow(const std::vector<std::string>& fields);

  /// Escapes a single field per RFC 4180.
  static std::string Escape(const std::string& field);

 private:
  std::ostream& out_;
};

}  // namespace hs
