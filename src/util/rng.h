// Deterministic, splittable random number generation.
//
// Every simulation run owns a root `Rng` seeded from (experiment seed, run
// index). Sub-streams for independent concerns (arrivals, sizes, runtimes,
// notice categories, ...) are derived with `Fork(tag)` so that adding draws
// to one concern never perturbs another — a requirement for reproducible
// parameter sweeps run in parallel.
#pragma once

#include <cstdint>
#include <random>
#include <string_view>
#include <vector>

namespace hs {

/// SplitMix64: used for seed derivation only.
std::uint64_t SplitMix64(std::uint64_t& state);

/// Stable 64-bit FNV-1a hash of a tag string (used to derive fork seeds).
std::uint64_t HashTag(std::string_view tag);

/// Deterministic PRNG wrapper around std::mt19937_64 with named sub-streams.
class Rng {
 public:
  explicit Rng(std::uint64_t seed);

  /// Derives an independent child stream; deterministic in (seed, tag, n-th
  /// fork with the same tag).
  Rng Fork(std::string_view tag);

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  std::int64_t UniformInt(std::int64_t lo, std::int64_t hi);

  /// Uniform real in [lo, hi).
  double Uniform(double lo = 0.0, double hi = 1.0);

  /// Bernoulli draw with probability p of true.
  bool Chance(double p);

  /// Log-normal draw parameterized by the *underlying normal* mu/sigma.
  double LogNormal(double mu, double sigma);

  /// Exponential draw with the given mean (> 0).
  double Exponential(double mean);

  /// Standard normal scaled to (mean, stddev).
  double Normal(double mean, double stddev);

  /// Zipf-like draw in [0, n): probability of k proportional to 1/(k+1)^s.
  /// Used for project popularity. Requires n >= 1, s > 0.
  std::size_t Zipf(std::size_t n, double s);

  /// Picks an index in [0, weights.size()) proportional to weights[i] >= 0.
  /// Requires at least one strictly positive weight.
  std::size_t Categorical(const std::vector<double>& weights);

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
  std::uint64_t seed_;
  std::uint64_t fork_counter_ = 0;
};

}  // namespace hs
