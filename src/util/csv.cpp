#include "util/csv.h"

namespace hs {

std::string CsvWriter::Escape(const std::string& field) {
  const bool needs_quote =
      field.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quote) return field;
  std::string out = "\"";
  for (const char c : field) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += '"';
  return out;
}

void CsvWriter::WriteRow(const std::vector<std::string>& fields) {
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i) out_ << ',';
    out_ << Escape(fields[i]);
  }
  out_ << '\n';
}

}  // namespace hs
