#include "util/subprocess.h"

#include <cassert>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <fcntl.h>
#include <sys/wait.h>
#include <thread>
#include <unistd.h>

namespace hs {

namespace {

/// In the child, points `fd` at `path` (truncating); returns false on error.
bool RedirectToFile(int fd, const std::string& path) {
  const int file = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (file < 0) return false;
  const bool ok = ::dup2(file, fd) >= 0;
  ::close(file);
  return ok;
}

}  // namespace

std::string ProcessStatus::Describe() const {
  if (!spawned) return "spawn failed: " + error;
  if (!error.empty()) return "wait failed: " + error;
  if (signaled) {
    return "signal " + std::to_string(term_signal) + " (" +
           strsignal(term_signal) + ")";
  }
  if (exit_code == 127) return "exit 127 (exec failed: command not found?)";
  return "exit " + std::to_string(exit_code);
}

Subprocess Subprocess::Spawn(const std::vector<std::string>& argv,
                             const std::string& stdout_path,
                             const std::string& stderr_path) {
  Subprocess child;
  if (argv.empty()) {
    child.status_.error = "empty argv";
    child.reaped_ = true;
    return child;
  }

  std::vector<char*> cargv;
  cargv.reserve(argv.size() + 1);
  for (const std::string& arg : argv) cargv.push_back(const_cast<char*>(arg.c_str()));
  cargv.push_back(nullptr);
  // Built before fork(): the child may only call async-signal-safe
  // functions (another thread could hold the malloc lock at fork time).
  const std::string exec_failed_note = "exec '" + argv[0] + "' failed\n";

  const pid_t pid = ::fork();
  if (pid < 0) {
    child.status_.error = std::string("fork: ") + std::strerror(errno);
    child.reaped_ = true;
    return child;
  }
  if (pid == 0) {
    // Child: redirect, exec, report failure through exit code 127 (the
    // shell convention) with a note on the original stderr if possible.
    if (!stdout_path.empty() && !RedirectToFile(STDOUT_FILENO, stdout_path)) _exit(127);
    if (!stderr_path.empty() && !RedirectToFile(STDERR_FILENO, stderr_path)) _exit(127);
    ::execvp(cargv[0], cargv.data());
    [[maybe_unused]] const auto n =
        ::write(STDERR_FILENO, exec_failed_note.data(), exec_failed_note.size());
    _exit(127);
  }
  child.pid_ = pid;
  child.status_.spawned = true;
  return child;
}

Subprocess::Subprocess(Subprocess&& other) noexcept
    : pid_(other.pid_), status_(std::move(other.status_)), reaped_(other.reaped_) {
  other.pid_ = -1;
  other.reaped_ = true;
}

Subprocess& Subprocess::operator=(Subprocess&& other) noexcept {
  if (this != &other) {
    assert(reaped_ || pid_ < 0);
    pid_ = other.pid_;
    status_ = std::move(other.status_);
    reaped_ = other.reaped_;
    other.pid_ = -1;
    other.reaped_ = true;
  }
  return *this;
}

Subprocess::~Subprocess() { assert(reaped_ || pid_ < 0); }

ProcessStatus Subprocess::Wait() {
  if (reaped_ || pid_ < 0) return status_;
  int wstatus = 0;
  pid_t waited = -1;
  do {
    waited = ::waitpid(pid_, &wstatus, 0);
  } while (waited < 0 && errno == EINTR);
  reaped_ = true;
  if (waited < 0) {
    // The child did spawn; only the wait failed (e.g. ECHILD when a host
    // app's SIGCHLD handler reaped it first) — keep `spawned` truthful.
    status_.error = std::string("waitpid: ") + std::strerror(errno);
    return status_;
  }
  if (WIFSIGNALED(wstatus)) {
    status_.signaled = true;
    status_.term_signal = WTERMSIG(wstatus);
  } else if (WIFEXITED(wstatus)) {
    status_.exit_code = WEXITSTATUS(wstatus);
  }
  return status_;
}

bool Subprocess::Poll() {
  if (reaped_ || pid_ < 0) return true;
  int wstatus = 0;
  pid_t waited = -1;
  do {
    waited = ::waitpid(pid_, &wstatus, WNOHANG);
  } while (waited < 0 && errno == EINTR);
  if (waited == 0) return false;  // still running
  reaped_ = true;
  if (waited < 0) {
    status_.error = std::string("waitpid: ") + std::strerror(errno);
    return true;
  }
  if (WIFSIGNALED(wstatus)) {
    status_.signaled = true;
    status_.term_signal = WTERMSIG(wstatus);
  } else if (WIFEXITED(wstatus)) {
    status_.exit_code = WEXITSTATUS(wstatus);
  }
  return true;
}

bool Subprocess::WaitFor(double timeout_s) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double>(timeout_s);
  while (!Poll()) {
    if (std::chrono::steady_clock::now() >= deadline) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return true;
}

bool Subprocess::Kill(int sig) {
  if (reaped_ || pid_ < 0) return false;
  return ::kill(pid_, sig) == 0;
}

ProcessStatus RunProcess(const std::vector<std::string>& argv,
                         const std::string& stdout_path,
                         const std::string& stderr_path) {
  return Subprocess::Spawn(argv, stdout_path, stderr_path).Wait();
}

std::string SelfExeDir() {
  char buf[4096];
  ssize_t n = -1;
  do {
    n = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
  } while (n < 0 && errno == EINTR);
  if (n <= 0) return {};
  buf[n] = '\0';
  const std::string path(buf);
  const std::size_t slash = path.find_last_of('/');
  return slash == std::string::npos ? std::string() : path.substr(0, slash);
}

}  // namespace hs
