#include "util/time.h"

#include <cstdio>

namespace hs {

std::string FormatDuration(SimTime seconds) {
  char buf[64];
  const char* sign = seconds < 0 ? "-" : "";
  if (seconds < 0) seconds = -seconds;
  if (seconds >= kDay) {
    std::snprintf(buf, sizeof(buf), "%s%lldd%02lldh", sign,
                  static_cast<long long>(seconds / kDay),
                  static_cast<long long>((seconds % kDay) / kHour));
  } else if (seconds >= kHour) {
    std::snprintf(buf, sizeof(buf), "%s%lldh%02lldm", sign,
                  static_cast<long long>(seconds / kHour),
                  static_cast<long long>((seconds % kHour) / kMinute));
  } else if (seconds >= kMinute) {
    std::snprintf(buf, sizeof(buf), "%s%lldm%02llds", sign,
                  static_cast<long long>(seconds / kMinute),
                  static_cast<long long>(seconds % kMinute));
  } else {
    std::snprintf(buf, sizeof(buf), "%s%llds", sign,
                  static_cast<long long>(seconds));
  }
  return buf;
}

std::string FormatTimestamp(SimTime t) {
  char buf[64];
  const SimTime day = t / kDay;
  const SimTime rest = t % kDay;
  std::snprintf(buf, sizeof(buf), "%lld+%02lld:%02lld:%02lld",
                static_cast<long long>(day),
                static_cast<long long>(rest / kHour),
                static_cast<long long>((rest % kHour) / kMinute),
                static_cast<long long>(rest % kMinute));
  return buf;
}

}  // namespace hs
