// A small thread-safe name -> value registry with canonical names and
// case-insensitive alias lookup. The plugin point behind the policy,
// mechanism and scenario-preset registries: new variants register once and
// every spec-driven entry point (SimSpec, CLI, benches) can name them.
#pragma once

#include <algorithm>
#include <cctype>
#include <map>
#include <mutex>
#include <stdexcept>
#include <string>
#include <vector>

namespace hs {

template <typename Value>
class NamedRegistry {
 public:
  /// `what` names the registry in error messages ("policy", "mechanism").
  explicit NamedRegistry(std::string what) : what_(std::move(what)) {}

  NamedRegistry(const NamedRegistry&) = delete;
  NamedRegistry& operator=(const NamedRegistry&) = delete;

  /// Registers `value` under `canonical` (plus optional aliases). Lookup is
  /// case-insensitive; the canonical spelling is preserved for display and
  /// round-tripping. Re-registering an existing name throws.
  void Register(const std::string& canonical, Value value,
                const std::vector<std::string>& aliases = {}) {
    std::lock_guard<std::mutex> lock(mutex_);
    const std::string key = Fold(canonical);
    if (index_.count(key) > 0) {
      throw std::invalid_argument(what_ + " '" + canonical + "' already registered");
    }
    entries_.push_back(Entry{canonical, std::move(value)});
    index_[key] = entries_.size() - 1;
    for (const std::string& alias : aliases) {
      const std::string akey = Fold(alias);
      if (index_.count(akey) > 0) {
        throw std::invalid_argument(what_ + " alias '" + alias + "' already registered");
      }
      index_[akey] = entries_.size() - 1;
    }
  }

  bool Contains(const std::string& name) const {
    std::lock_guard<std::mutex> lock(mutex_);
    return index_.count(Fold(name)) > 0;
  }

  /// Looks `name` up (canonical or alias, any case); throws
  /// std::invalid_argument naming the offending token and the known names.
  const Value& Get(const std::string& name) const {
    std::lock_guard<std::mutex> lock(mutex_);
    return entries_[MustFind(name)].value;
  }

  /// The canonical spelling behind `name` (resolves aliases and case).
  std::string Canonical(const std::string& name) const {
    std::lock_guard<std::mutex> lock(mutex_);
    return entries_[MustFind(name)].canonical;
  }

  /// Canonical names in registration order.
  std::vector<std::string> Names() const {
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<std::string> names;
    names.reserve(entries_.size());
    for (const Entry& e : entries_) names.push_back(e.canonical);
    return names;
  }

 private:
  struct Entry {
    std::string canonical;
    Value value;
  };

  static std::string Fold(const std::string& name) {
    std::string key = name;
    std::transform(key.begin(), key.end(), key.begin(),
                   [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
    return key;
  }

  std::size_t MustFind(const std::string& name) const {
    const auto it = index_.find(Fold(name));
    if (it == index_.end()) {
      std::string known;
      for (const Entry& e : entries_) {
        if (!known.empty()) known += ", ";
        known += e.canonical;
      }
      throw std::invalid_argument("unknown " + what_ + " '" + name +
                                  "' (known: " + known + ")");
    }
    return it->second;
  }

  const std::string what_;
  mutable std::mutex mutex_;
  std::vector<Entry> entries_;
  std::map<std::string, std::size_t> index_;  // folded name/alias -> entry
};

}  // namespace hs
