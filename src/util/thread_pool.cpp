#include "util/thread_pool.h"

#include <algorithm>

namespace hs {

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (stopping_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
  }
}

void ThreadPool::ParallelFor(std::size_t n, const std::function<void(std::size_t)>& fn) {
  std::vector<std::future<void>> futures;
  futures.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    futures.push_back(Submit([&fn, i] { fn(i); }));
  }
  // Drain every future before rethrowing: queued tasks capture `fn` by
  // reference, so returning early would leave workers running against a
  // dead callable (and silently drop the iterations behind the failure).
  std::exception_ptr first_error;
  for (auto& f : futures) {
    try {
      f.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace hs
