// Leveled logging with a process-global threshold. The simulator is
// single-threaded per run, but experiment sweeps run many simulations in
// parallel; the sink serializes writes with a mutex.
#pragma once

#include <sstream>
#include <string>

namespace hs {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Sets the global threshold; messages below it are discarded.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

/// Thread-safe raw sink used by the HS_LOG macro.
void LogMessage(LogLevel level, const std::string& message);

namespace detail {
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { LogMessage(level_, os_.str()); }
  template <typename T>
  LogLine& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream os_;
};
}  // namespace detail

}  // namespace hs

#define HS_LOG(level)                                   \
  if (static_cast<int>(::hs::LogLevel::level) <         \
      static_cast<int>(::hs::GetLogLevel())) {          \
  } else                                                \
    ::hs::detail::LogLine(::hs::LogLevel::level)
