#include "util/file_util.h"

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <system_error>

namespace hs {

std::string ReadTextFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open for read: " + path);
  std::ostringstream out;
  out << in.rdbuf();
  if (in.bad()) throw std::runtime_error("read failed: " + path);
  return out.str();
}

void WriteTextFile(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw std::runtime_error("cannot open for write: " + path);
  out << content;
  out.flush();
  if (!out) throw std::runtime_error("write failed: " + path);
}

std::vector<std::string> SplitLines(const std::string& text) {
  std::vector<std::string> lines;
  std::size_t start = 0;
  while (start < text.size()) {
    const std::size_t nl = text.find('\n', start);
    if (nl == std::string::npos) {
      lines.push_back(text.substr(start));
      break;
    }
    lines.push_back(text.substr(start, nl - start));
    start = nl + 1;
  }
  return lines;
}

std::vector<std::string> ReadLines(const std::string& path) {
  return SplitLines(ReadTextFile(path));
}

std::string MakeTempDir(const std::string& prefix) {
  const char* tmpdir = std::getenv("TMPDIR");
  std::string pattern = (tmpdir != nullptr && *tmpdir != '\0') ? tmpdir : "/tmp";
  if (pattern.back() != '/') pattern += '/';
  pattern += prefix + "XXXXXX";
  std::vector<char> buf(pattern.begin(), pattern.end());
  buf.push_back('\0');
  if (mkdtemp(buf.data()) == nullptr) {
    throw std::runtime_error("mkdtemp failed for pattern: " + pattern);
  }
  return std::string(buf.data());
}

void RemoveTreeBestEffort(const std::string& path) {
  std::error_code ec;
  std::filesystem::remove_all(path, ec);
}

}  // namespace hs
