#include "util/cli.h"

#include <cstdlib>
#include <stdexcept>

namespace hs {

CliArgs::CliArgs(int argc, const char* const* argv) {
  if (argc > 0) program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) == 0) {
      const auto eq = arg.find('=');
      if (eq == std::string::npos) {
        flags_[arg.substr(2)] = "true";
      } else {
        flags_[arg.substr(2, eq - 2)] = arg.substr(eq + 1);
      }
    } else {
      positional_.push_back(arg);
    }
  }
}

bool CliArgs::Has(const std::string& key) const {
  recognized_.insert(key);
  return flags_.count(key) > 0;
}

std::string CliArgs::GetString(const std::string& key, const std::string& def) const {
  recognized_.insert(key);
  const auto it = flags_.find(key);
  return it == flags_.end() ? def : it->second;
}

std::int64_t CliArgs::GetInt(const std::string& key, std::int64_t def) const {
  recognized_.insert(key);
  const auto it = flags_.find(key);
  if (it == flags_.end()) return def;
  return std::strtoll(it->second.c_str(), nullptr, 10);
}

double CliArgs::GetDouble(const std::string& key, double def) const {
  recognized_.insert(key);
  const auto it = flags_.find(key);
  if (it == flags_.end()) return def;
  return std::strtod(it->second.c_str(), nullptr);
}

bool CliArgs::GetBool(const std::string& key, bool def) const {
  recognized_.insert(key);
  const auto it = flags_.find(key);
  if (it == flags_.end()) return def;
  return it->second == "true" || it->second == "1" || it->second == "yes";
}

std::vector<std::string> CliArgs::UnknownFlags() const {
  std::vector<std::string> unknown;
  for (const auto& [key, value] : flags_) {
    if (recognized_.count(key) == 0) unknown.push_back(key);
  }
  return unknown;
}

void CliArgs::RejectUnknown() const {
  const std::vector<std::string> unknown = UnknownFlags();
  if (unknown.empty()) return;
  std::string message = "unknown flag(s):";
  for (const std::string& key : unknown) message += " --" + key;
  throw std::invalid_argument(message);
}

}  // namespace hs
