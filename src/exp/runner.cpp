#include "exp/runner.h"

#include <algorithm>
#include <map>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace hs {

namespace {

std::string FmtDouble(double value) {
  std::ostringstream out;
  out << value;
  return out.str();
}

/// (name, value-as-string) pairs shared by the CSV and JSONL sinks. The
/// wall-clock columns (decision_avg_us, decision_max_us) are the only ones
/// that vary between runs of the same binary; CsvSinkOptions can strip them
/// to produce byte-stable, diffable output.
std::vector<std::pair<std::string, std::string>> ResultFields(const SpecResult& row,
                                                              bool include_wallclock) {
  const SimResult& r = row.result;
  std::vector<std::pair<std::string, std::string>> fields;
  fields.emplace_back("spec", row.spec.ToString());
  fields.emplace_back("trace", row.trace_name);
  fields.emplace_back("mechanism", row.spec.mechanism);
  fields.emplace_back("policy", row.spec.policy);
  fields.emplace_back("mix", row.spec.notice_mix);
  fields.emplace_back("preset", row.spec.preset);
  fields.emplace_back("weeks", std::to_string(row.spec.weeks));
  fields.emplace_back("seed", std::to_string(row.spec.seed));
  fields.emplace_back("avg_turnaround_h", FmtDouble(r.avg_turnaround_h));
  fields.emplace_back("rigid_turnaround_h", FmtDouble(r.rigid_turnaround_h));
  fields.emplace_back("malleable_turnaround_h", FmtDouble(r.malleable_turnaround_h));
  fields.emplace_back("od_turnaround_h", FmtDouble(r.od_turnaround_h));
  fields.emplace_back("avg_wait_h", FmtDouble(r.avg_wait_h));
  fields.emplace_back("od_instant_rate", FmtDouble(r.od_instant_rate));
  fields.emplace_back("od_instant_rate_strict", FmtDouble(r.od_instant_rate_strict));
  fields.emplace_back("od_avg_delay_s", FmtDouble(r.od_avg_delay_s));
  fields.emplace_back("rigid_preempt_ratio", FmtDouble(r.rigid_preempt_ratio));
  fields.emplace_back("malleable_preempt_ratio", FmtDouble(r.malleable_preempt_ratio));
  fields.emplace_back("malleable_shrink_ratio", FmtDouble(r.malleable_shrink_ratio));
  fields.emplace_back("utilization", FmtDouble(r.utilization));
  fields.emplace_back("useful_utilization", FmtDouble(r.useful_utilization));
  fields.emplace_back("allocated_utilization", FmtDouble(r.allocated_utilization));
  fields.emplace_back("window_utilization", FmtDouble(r.window_utilization));
  fields.emplace_back("lost_node_hours", FmtDouble(r.lost_node_hours));
  fields.emplace_back("setup_node_hours", FmtDouble(r.setup_node_hours));
  fields.emplace_back("checkpoint_node_hours", FmtDouble(r.checkpoint_node_hours));
  fields.emplace_back("jobs_completed", std::to_string(r.jobs_completed));
  fields.emplace_back("jobs_killed", std::to_string(r.jobs_killed));
  fields.emplace_back("od_jobs", std::to_string(r.od_jobs));
  fields.emplace_back("preemptions", std::to_string(r.preemptions));
  fields.emplace_back("failures", std::to_string(r.failures));
  fields.emplace_back("shrinks", std::to_string(r.shrinks));
  fields.emplace_back("expands", std::to_string(r.expands));
  if (include_wallclock) {
    fields.emplace_back("decision_avg_us", FmtDouble(r.decision_avg_us));
    fields.emplace_back("decision_max_us", FmtDouble(r.decision_max_us));
  }
  fields.emplace_back("decisions", std::to_string(r.decisions));
  fields.emplace_back("makespan_s", std::to_string(r.makespan));
  return fields;
}

std::string JsonEscape(const std::string& text) {
  std::string out;
  out.reserve(text.size() + 2);
  for (const char c : text) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

bool IsNumericField(const std::string& name) {
  return name != "spec" && name != "trace" && name != "mechanism" &&
         name != "policy" && name != "mix" && name != "preset";
}

}  // namespace

CsvResultSink::CsvResultSink(std::ostream& out, CsvSinkOptions options)
    : writer_(out), options_(options) {}

void CsvResultSink::OnResult(std::size_t /*spec_index*/, const SpecResult& row) {
  const auto fields = ResultFields(row, options_.include_wallclock);
  if (!header_written_) {
    std::vector<std::string> header;
    header.reserve(fields.size());
    for (const auto& [name, value] : fields) header.push_back(name);
    writer_.WriteRow(header);
    header_written_ = true;
  }
  std::vector<std::string> values;
  values.reserve(fields.size());
  for (const auto& [name, value] : fields) values.push_back(value);
  writer_.WriteRow(values);
}

void JsonlResultSink::OnResult(std::size_t /*spec_index*/, const SpecResult& row) {
  std::string line = "{";
  bool first = true;
  for (const auto& [name, value] : ResultFields(row, /*include_wallclock=*/true)) {
    if (!first) line += ",";
    first = false;
    line += "\"" + name + "\":";
    if (IsNumericField(name)) {
      line += value;
    } else {
      line += "\"" + JsonEscape(value) + "\"";
    }
  }
  line += "}\n";
  out_ << line;
  out_.flush();
}

TeeResultSink::TeeResultSink(std::vector<ResultSink*> sinks)
    : sinks_(std::move(sinks)) {
  for (const ResultSink* sink : sinks_) {
    if (sink == nullptr) {
      throw std::invalid_argument("TeeResultSink: null sink");
    }
  }
}

void TeeResultSink::OnResult(std::size_t spec_index, const SpecResult& row) {
  for (ResultSink* sink : sinks_) sink->OnResult(spec_index, row);
}

MergingResultSink::MergingResultSink(ResultSink& inner, std::size_t expected_rows)
    : inner_(inner),
      held_(expected_rows),
      seen_(expected_rows, false),
      skipped_(expected_rows, false) {}

void MergingResultSink::OnResult(std::size_t spec_index, const SpecResult& row) {
  if (spec_index >= held_.size()) {
    throw std::out_of_range("MergingResultSink: spec index " +
                            std::to_string(spec_index) + " >= expected " +
                            std::to_string(held_.size()));
  }
  if (seen_[spec_index] || skipped_[spec_index]) {
    throw std::runtime_error("MergingResultSink: duplicate row for spec index " +
                             std::to_string(spec_index));
  }
  seen_[spec_index] = true;
  held_[spec_index] = std::make_unique<SpecResult>(row);
  FlushReady();
}

void MergingResultSink::Skip(std::size_t spec_index) {
  if (spec_index >= held_.size()) {
    throw std::out_of_range("MergingResultSink: spec index " +
                            std::to_string(spec_index) + " >= expected " +
                            std::to_string(held_.size()));
  }
  if (seen_[spec_index]) {
    throw std::runtime_error("MergingResultSink: cannot skip spec index " +
                             std::to_string(spec_index) + ": its row arrived");
  }
  if (skipped_[spec_index]) {
    throw std::runtime_error("MergingResultSink: spec index " +
                             std::to_string(spec_index) + " skipped twice");
  }
  skipped_[spec_index] = true;
  FlushReady();
}

void MergingResultSink::FlushReady() {
  while (next_ < held_.size() && (held_[next_] != nullptr || skipped_[next_])) {
    if (held_[next_] != nullptr) {
      inner_.OnResult(next_, *held_[next_]);
      held_[next_].reset();  // forwarded; only the arrival flag stays
    }
    ++next_;
  }
}

std::vector<std::size_t> MergingResultSink::MissingIndices() const {
  std::vector<std::size_t> missing;
  for (std::size_t i = 0; i < seen_.size(); ++i) {
    if (!seen_[i] && !skipped_[i]) missing.push_back(i);
  }
  return missing;
}

std::vector<std::size_t> MergingResultSink::SkippedIndices() const {
  std::vector<std::size_t> skipped;
  for (std::size_t i = 0; i < skipped_.size(); ++i) {
    if (skipped_[i]) skipped.push_back(i);
  }
  return skipped;
}

void MergingResultSink::Finish() const {
  const auto missing = MissingIndices();
  if (missing.empty()) return;
  throw std::runtime_error("MergingResultSink: " + std::to_string(missing.size()) +
                           " of " + std::to_string(seen_.size()) +
                           " rows never arrived (spec indices " +
                           FormatIndexList(missing) + ")");
}

std::string FormatIndexList(const std::vector<std::size_t>& indices,
                            std::size_t limit) {
  std::string list;
  for (std::size_t i = 0; i < indices.size() && i < limit; ++i) {
    if (!list.empty()) list += ", ";
    list += std::to_string(indices[i]);
  }
  if (indices.size() > limit) list += ", ...";
  return list;
}

std::vector<SpecResult> ExperimentRunner::Run(const std::vector<SimSpec>& specs,
                                              ResultSink* sink) {
  for (const SimSpec& spec : specs) {
    const std::string error = spec.Validate();
    if (!error.empty()) {
      throw std::invalid_argument("invalid spec '" + spec.ToString() + "': " + error);
    }
  }

  // Build each distinct scenario trace once, in parallel.
  std::map<std::string, std::size_t> trace_index;
  std::vector<const SimSpec*> trace_specs;
  std::vector<std::size_t> spec_to_trace(specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    const std::string key = specs[i].ScenarioKey();
    const auto [it, inserted] = trace_index.emplace(key, trace_specs.size());
    if (inserted) trace_specs.push_back(&specs[i]);
    spec_to_trace[i] = it->second;
  }
  // Failures (trace build or cell) are collected per index instead of
  // thrown, so one bad cell cannot abort its siblings: every healthy cell
  // still runs and streams to `sink` before Run reports the failure.
  std::vector<std::string> trace_errors(trace_specs.size());
  std::vector<std::shared_ptr<const Trace>> traces(trace_specs.size());
  pool_.ParallelFor(trace_specs.size(), [&](std::size_t t) {
    try {
      traces[t] = std::make_shared<const Trace>(trace_specs[t]->BuildTrace());
    } catch (const std::exception& e) {
      trace_errors[t] = e.what();
    }
  });

  // Run every cell in its own session; stream rows as they complete.
  std::vector<SpecResult> rows(specs.size());
  std::vector<std::string> cell_errors(specs.size());
  pool_.ParallelFor(specs.size(), [&](std::size_t i) {
    const std::string& trace_error = trace_errors[spec_to_trace[i]];
    if (!trace_error.empty()) {
      cell_errors[i] = trace_error;
      return;
    }
    try {
      SimulationSession session(specs[i], traces[spec_to_trace[i]]);
      rows[i] = SpecResult{specs[i], session.trace().name, session.Run()};
    } catch (const std::exception& e) {
      cell_errors[i] = e.what();
      return;
    }
    // Outside the catch: a throwing sink is a consumer bug and propagates
    // as itself, not as a misattributed "spec failed" error.
    if (sink != nullptr) {
      std::lock_guard<std::mutex> lock(sink_mutex_);
      sink->OnResult(i, rows[i]);
    }
  });
  for (std::size_t i = 0; i < specs.size(); ++i) {
    if (!cell_errors[i].empty()) {
      throw std::runtime_error("spec '" + specs[i].ToString() +
                               "' failed: " + cell_errors[i]);
    }
  }
  return rows;
}

std::vector<SimSpec> SeedSweep(const SimSpec& base, int count, std::uint64_t base_seed) {
  std::vector<SimSpec> specs(static_cast<std::size_t>(std::max(count, 0)), base);
  for (std::size_t i = 0; i < specs.size(); ++i) specs[i].seed = base_seed + i;
  return specs;
}

std::vector<SimResult> ResultsOf(const std::vector<SpecResult>& rows) {
  std::vector<SimResult> results;
  results.reserve(rows.size());
  for (const SpecResult& row : rows) results.push_back(row.result);
  return results;
}

SimResult MeanResult(const std::vector<SimResult>& results) {
  SimResult mean;
  if (results.empty()) return mean;
  const double n = static_cast<double>(results.size());
  for (const SimResult& r : results) {
    mean.avg_turnaround_h += r.avg_turnaround_h / n;
    mean.rigid_turnaround_h += r.rigid_turnaround_h / n;
    mean.malleable_turnaround_h += r.malleable_turnaround_h / n;
    mean.od_turnaround_h += r.od_turnaround_h / n;
    mean.avg_wait_h += r.avg_wait_h / n;
    mean.od_instant_rate += r.od_instant_rate / n;
    mean.od_instant_rate_strict += r.od_instant_rate_strict / n;
    mean.od_avg_delay_s += r.od_avg_delay_s / n;
    mean.rigid_preempt_ratio += r.rigid_preempt_ratio / n;
    mean.malleable_preempt_ratio += r.malleable_preempt_ratio / n;
    mean.malleable_shrink_ratio += r.malleable_shrink_ratio / n;
    mean.utilization += r.utilization / n;
    mean.useful_utilization += r.useful_utilization / n;
    mean.allocated_utilization += r.allocated_utilization / n;
    mean.window_utilization += r.window_utilization / n;
    mean.lost_node_hours += r.lost_node_hours / n;
    mean.setup_node_hours += r.setup_node_hours / n;
    mean.checkpoint_node_hours += r.checkpoint_node_hours / n;
    mean.jobs_completed += r.jobs_completed;
    mean.jobs_killed += r.jobs_killed;
    mean.od_jobs += r.od_jobs;
    mean.preemptions += r.preemptions;
    mean.failures += r.failures;
    mean.shrinks += r.shrinks;
    mean.expands += r.expands;
    mean.decision_avg_us += r.decision_avg_us / n;
    mean.decision_max_us = std::max(mean.decision_max_us, r.decision_max_us);
    mean.decisions += r.decisions;
    mean.makespan = std::max(mean.makespan, r.makespan);
  }
  return mean;
}

std::vector<SimResult> GroupMeans(const std::vector<SpecResult>& rows,
                                  std::size_t group_size) {
  if (group_size == 0 || rows.size() % group_size != 0) {
    throw std::invalid_argument("GroupMeans: rows not divisible into groups of " +
                                std::to_string(group_size));
  }
  std::vector<SimResult> means;
  means.reserve(rows.size() / group_size);
  for (std::size_t g = 0; g < rows.size(); g += group_size) {
    std::vector<SimResult> slice;
    slice.reserve(group_size);
    for (std::size_t i = 0; i < group_size; ++i) slice.push_back(rows[g + i].result);
    means.push_back(MeanResult(slice));
  }
  return means;
}

}  // namespace hs
