#include "exp/experiment.h"

namespace hs {

std::vector<Trace> BuildTraces(const ScenarioConfig& config, int seeds,
                               std::uint64_t base_seed, ThreadPool& pool) {
  std::vector<Trace> traces(static_cast<std::size_t>(seeds));
  pool.ParallelFor(static_cast<std::size_t>(seeds), [&](std::size_t i) {
    traces[i] = BuildScenarioTrace(config, base_seed + i);
  });
  return traces;
}

std::vector<std::vector<SimResult>> RunGrid(const std::vector<Trace>& traces,
                                            const std::vector<HybridConfig>& configs,
                                            ThreadPool& pool) {
  std::vector<std::vector<SimResult>> results(
      configs.size(), std::vector<SimResult>(traces.size()));
  const std::size_t total = configs.size() * traces.size();
  pool.ParallelFor(total, [&](std::size_t k) {
    const std::size_t c = k / traces.size();
    const std::size_t t = k % traces.size();
    results[c][t] = RunSimulation(traces[t], configs[c]);
  });
  return results;
}

SimResult MeanResult(const std::vector<SimResult>& results) {
  SimResult mean;
  if (results.empty()) return mean;
  const double n = static_cast<double>(results.size());
  for (const SimResult& r : results) {
    mean.avg_turnaround_h += r.avg_turnaround_h / n;
    mean.rigid_turnaround_h += r.rigid_turnaround_h / n;
    mean.malleable_turnaround_h += r.malleable_turnaround_h / n;
    mean.od_turnaround_h += r.od_turnaround_h / n;
    mean.avg_wait_h += r.avg_wait_h / n;
    mean.od_instant_rate += r.od_instant_rate / n;
    mean.od_instant_rate_strict += r.od_instant_rate_strict / n;
    mean.od_avg_delay_s += r.od_avg_delay_s / n;
    mean.rigid_preempt_ratio += r.rigid_preempt_ratio / n;
    mean.malleable_preempt_ratio += r.malleable_preempt_ratio / n;
    mean.malleable_shrink_ratio += r.malleable_shrink_ratio / n;
    mean.utilization += r.utilization / n;
    mean.useful_utilization += r.useful_utilization / n;
    mean.allocated_utilization += r.allocated_utilization / n;
    mean.window_utilization += r.window_utilization / n;
    mean.lost_node_hours += r.lost_node_hours / n;
    mean.setup_node_hours += r.setup_node_hours / n;
    mean.checkpoint_node_hours += r.checkpoint_node_hours / n;
    mean.jobs_completed += r.jobs_completed;
    mean.jobs_killed += r.jobs_killed;
    mean.od_jobs += r.od_jobs;
    mean.preemptions += r.preemptions;
    mean.failures += r.failures;
    mean.shrinks += r.shrinks;
    mean.expands += r.expands;
    mean.decision_avg_us += r.decision_avg_us / n;
    mean.decision_max_us = std::max(mean.decision_max_us, r.decision_max_us);
    mean.decisions += r.decisions;
    mean.makespan = std::max(mean.makespan, r.makespan);
  }
  return mean;
}

}  // namespace hs
