// SimSpec: a declarative, validated, round-trippable description of one
// simulation run.
//
// One spec names everything a run needs — mechanism, ordering policy,
// scenario preset, advance-notice mix, horizon, seed, and config overrides
// — through the registries (MechanismRegistry, PolicyRegistry,
// ScenarioRegistry), so a new mechanism/policy/preset registered in one
// place is immediately addressable from every bench, example and test.
//
// Canonical string form (segments separated by '/'):
//
//   <mechanism>/<policy>/<mix>[/key=value]...
//
//   CUP&SPAA/FCFS/W5/seed=7
//   baseline/SJF/W2/preset=midsize/weeks=4/ckpt_scale=0.5
//   N&PAA/FCFS/W5/preset=swf/swf=%2Fdata%2Ftheta.swf
//
// The first three segments are positional (later ones may be omitted and
// default); every 'key=value' segment is either a field (preset, weeks,
// seed) or a registered config override (see KnownOverrides()). Override
// values containing '/' (file paths) are written %2F ('%' as %25) inside
// spec strings; CLI flags and SetOverride also accept them verbatim.
// Parsing is strict: unknown mechanisms/policies/presets/mixes/keys and
// malformed values throw std::invalid_argument, and
// Parse(spec.ToString()) == spec.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "core/config.h"
#include "exp/scenario.h"
#include "util/cli.h"

namespace hs {

struct SimSpec {
  std::string mechanism = "baseline";  // MechanismRegistry name
  std::string policy = "FCFS";         // PolicyRegistry name
  std::string notice_mix = "W5";       // Table III preset (W1..W5)
  std::string preset = "paper";        // ScenarioRegistry name
  int weeks = 1;                       // trace horizon
  std::uint64_t seed = 1;              // scenario RNG seed
  /// Config/scenario overrides by registered key (see KnownOverrides()).
  /// Values keep their spelling so specs round-trip exactly.
  std::map<std::string, std::string> overrides;

  bool operator==(const SimSpec&) const = default;

  /// Canonical spec string; defaults are omitted. Parse(ToString()) == *this.
  std::string ToString() const;

  /// Parses a spec string; throws std::invalid_argument on anything
  /// unknown or malformed. Names are canonicalized via the registries.
  static SimSpec Parse(const std::string& text);

  /// Builds a spec from CLI flags: --spec=STRING is parsed first (if
  /// present), then --mechanism/--policy/--mix/--preset/--weeks/--seed and
  /// any registered override key given as a flag refine it. Throws on
  /// invalid values; callers should follow up with args.RejectUnknown().
  static SimSpec FromCli(const CliArgs& args);

  /// Empty when the spec is consistent; otherwise the violated constraint.
  std::string Validate() const;

  /// Sets an override after validating the key and value; throws on either.
  void SetOverride(const std::string& key, const std::string& value);

  // --- materialization -----------------------------------------------------

  /// The scenario for this spec: preset(weeks, mix) + scenario overrides.
  ScenarioConfig BuildScenario() const;

  /// The scheduler configuration: paper defaults for the mechanism, the
  /// spec's policy, + config overrides. Validated.
  HybridConfig BuildConfig() const;

  /// The fully labelled trace (deterministic in the spec).
  Trace BuildTrace() const;

  /// Cache key covering exactly the fields that determine BuildTrace():
  /// specs with equal ScenarioKey()s share a trace.
  std::string ScenarioKey() const;
};

/// One registered override key.
struct OverrideKey {
  std::string key;
  std::string help;
  /// A valid sample value (shown in --help text; the spec round-trip test
  /// loops the table and exercises every key through it, so a new key is
  /// covered the moment it is registered).
  std::string example;
  /// True when the key affects trace generation (ScenarioConfig), false
  /// when it tunes the scheduler (HybridConfig).
  bool scenario = false;
};

/// Every override key SimSpec accepts, in presentation order.
const std::vector<OverrideKey>& KnownOverrides();

}  // namespace hs
