// Transport: how ShardedRunner turns a work unit (a set of global spec
// indices) into a running executor and a stream of result rows — the seam
// that makes the fabric multi-host.
//
// The runner owns policy (work-stealing dispatch, retry budgets, hang
// detection, bisection, quarantine, the merge contract); a Transport owns
// only mechanism: launch a unit on some executor slot, report liveness,
// kill it, and hand back whatever rows it produced plus an honest account
// of how it ended. Two implementations:
//
//   LocalExecTransport  the original fork/exec path: one hs_worker process
//                       per unit, shard file + JSONL gather on local disk.
//   TcpTransport        one slot per remote hs_agent daemon; units travel
//                       over the `# hs-fabric v1` line protocol and rows
//                       stream back live. A dead connection is a dead
//                       worker: the runner re-queues the unit elsewhere.
//
// `# hs-fabric v1` (newline-delimited text, one connection per unit):
//
//   agent:        # hs-fabric v1                      greeting on accept
//   orchestrator: unit origin=K attempt=N cells=M [threads=T]
//                 <global index>\t<canonical spec>    x M (shard-file body)
//                 end
//   agent:        row <worker JSONL row>              per completed cell
//                 # hs-progress ...                   heartbeats, verbatim
//                 log <worker stderr line>            diagnostics
//                 done exit=C | done signal=S         terminal status
//                 err msg=<reason>                    agent-side failure
//
// The agent closes the connection after `done`/`err`; the orchestrator
// hanging up mid-unit makes the agent kill its worker and return to
// accept. Outcomes are classified exactly like the local file gather:
// a malformed FINAL row is a torn write (retryable drop), a malformed
// earlier row is version skew (loud error), EOF without `done` is a dead
// worker.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "exp/shard_io.h"
#include "exp/sim_spec.h"

namespace hs {

/// Everything the runner needs to know about how one launched unit ended.
struct TransportOutcome {
  /// The unit never reached an executor (connect/handshake failure): no
  /// attempt was consumed, nothing ran, the runner may re-dispatch freely.
  bool infrastructure = false;
  /// The executor claims it completed the unit (exit 0 / `done exit=0`).
  /// Rows may still be missing (dropped rows) — the runner decides.
  bool clean = false;
  /// Human-readable failure description when !clean (or when
  /// infrastructure): already includes executor identity and stderr tail.
  std::string status;
  /// The final row was a truncated write (killed mid-write): a retryable
  /// dropped row, not version skew.
  bool torn_final_line = false;
  /// Every complete, well-formed row the unit produced, in arrival order.
  std::vector<IndexedSpecResult> rows;
};

/// One launched unit in flight. Poll/activity are cheap and non-blocking;
/// Take() is called exactly once, after Poll() returned true.
class TransportTask {
 public:
  virtual ~TransportTask() = default;
  /// True once the unit has terminated (executor exited, stream closed,
  /// or the task was killed) and Take() may be called.
  virtual bool Poll() = 0;
  /// Monotone liveness counter (output bytes seen so far); the runner's
  /// inactivity monitor kills tasks whose counter stalls.
  virtual std::uint64_t activity() = 0;
  /// Hard-stop the unit (SIGKILL / connection close). Idempotent; a later
  /// Poll() returns true and Take() reports the kill.
  virtual void Kill() = 0;
  /// Gathers the terminal outcome. May throw std::runtime_error on wire
  /// version skew (malformed non-final rows).
  virtual TransportOutcome Take() = 0;
};

/// A way to run work units. slots() bounds concurrent launches; Launch is
/// only called while fewer than slots() tasks are outstanding.
class Transport {
 public:
  virtual ~Transport() = default;
  virtual std::size_t slots() const = 0;
  /// Short human-readable label for reports ("local-exec (3 slots)",
  /// "tcp (2 agents: ...)").
  virtual std::string Describe() const = 0;
  /// Starts `indices` (positions into `specs`) as one unit. Never throws
  /// for per-launch infrastructure failures — those come back as an
  /// immediately-finished task with an `infrastructure` outcome, so the
  /// runner can route around a dead host.
  virtual std::unique_ptr<TransportTask> Launch(
      const std::vector<std::size_t>& indices, const std::vector<SimSpec>& specs,
      std::size_t origin_shard, int attempt) = 0;
  /// True when every slot has accumulated >= `threshold` consecutive
  /// dispatch failures with no success in between — the whole fabric is
  /// unreachable and the runner should give up rather than re-queue
  /// forever. A transport whose launches cannot fail as infrastructure
  /// (local fork/exec) never reports dead slots.
  virtual bool AllSlotsDead(std::size_t threshold) const {
    (void)threshold;
    return false;
  }
};

/// One fabric agent endpoint.
struct HostEndpoint {
  std::string host;
  std::uint16_t port = 0;
  std::string Label() const { return host + ":" + std::to_string(port); }
};

/// Parses a `--hosts=` list: comma-separated `host:port` entries.
/// Empty input is an empty list (callers treat that as "run locally").
/// Throws std::invalid_argument naming the offending entry.
std::vector<HostEndpoint> ParseHostList(const std::string& hosts);

/// The fork/exec transport: shard files and JSONL gathers on local disk,
/// exactly the pre-transport ShardedRunner behavior (same scratch-file
/// stems, same error message shapes).
class LocalExecTransport final : public Transport {
 public:
  /// `slots` is the concurrency cap (the runner passes the plan width, so
  /// local behavior is unchanged: at most one worker per original shard).
  LocalExecTransport(std::string work_dir, std::string worker_cmd,
                     int worker_threads, std::size_t slots);

  std::size_t slots() const override { return slots_; }
  std::string Describe() const override;
  std::unique_ptr<TransportTask> Launch(const std::vector<std::size_t>& indices,
                                        const std::vector<SimSpec>& specs,
                                        std::size_t origin_shard,
                                        int attempt) override;

 private:
  std::string work_dir_;
  std::string worker_cmd_;
  int worker_threads_ = 0;
  std::size_t slots_ = 1;
  std::size_t launch_seq_ = 0;
};

struct TcpTransportOptions {
  int worker_threads = 0;        // forwarded in the unit header when > 0
  double connect_timeout_s = 5.0;  // per-connect + greeting deadline
};

/// The multi-host transport: one slot per hs_agent endpoint. Launch picks
/// an idle agent (healthiest first — consecutive connect failures rank an
/// agent last until it answers again); a connect/handshake failure is an
/// `infrastructure` outcome so the runner re-queues the unit on another
/// host without burning a retry attempt.
class TcpTransport final : public Transport {
 public:
  explicit TcpTransport(std::vector<HostEndpoint> hosts,
                        TcpTransportOptions options = {});

  std::size_t slots() const override { return agents_.size(); }
  std::string Describe() const override;
  std::unique_ptr<TransportTask> Launch(const std::vector<std::size_t>& indices,
                                        const std::vector<SimSpec>& specs,
                                        std::size_t origin_shard,
                                        int attempt) override;
  bool AllSlotsDead(std::size_t threshold) const override;

 private:
  friend class TcpTransportTask;
  struct AgentSlot {
    HostEndpoint endpoint;
    bool busy = false;
    std::size_t consecutive_failures = 0;
  };
  std::vector<AgentSlot> agents_;
  TcpTransportOptions options_;
};

/// The protocol greeting/version line both sides must agree on.
inline constexpr const char* kFabricGreeting = "# hs-fabric v1";

}  // namespace hs
