// SimulationSession: one simulation run behind a single owner.
//
// The session owns every piece of the stack — trace, configuration, metrics
// collector, event simulator, and hybrid scheduler — in construction order,
// so the "trace/collector/sim must outlive the scheduler" lifetime rule is
// enforced by the type instead of by every call site. Construct it from a
// declarative SimSpec (the normal path) or from a hand-built trace +
// config (tests, trace surgery), then Run().
#pragma once

#include <memory>

#include "core/hybrid_scheduler.h"
#include "exp/sim_spec.h"
#include "metrics/collector.h"
#include "sim/simulator.h"
#include "workload/trace.h"

namespace hs {

class SimulationSession final : public EventHandler {
 public:
  /// Materializes the spec (trace + config) and primes the scheduler.
  /// Throws std::invalid_argument when the spec or config is inconsistent.
  explicit SimulationSession(const SimSpec& spec);

  /// Runs `spec`'s configuration against a pre-built trace (the
  /// ExperimentRunner path: one trace genuinely shared by many concurrent
  /// cells, no per-cell copy).
  SimulationSession(const SimSpec& spec, std::shared_ptr<const Trace> trace);

  /// Custom-trace path for tests and trace surgery; `spec()` stays default.
  SimulationSession(Trace trace, const HybridConfig& config);

  /// Online-capable session (the hs_server path): copies `base` into
  /// privately owned storage with room for `online_headroom` additional
  /// jobs. JobRecord addresses stay stable until the headroom is exhausted,
  /// which is what makes SubmitJob() legal mid-flight; SubmitJob throws
  /// once the headroom is spent.
  SimulationSession(const SimSpec& spec, const Trace& base,
                    std::size_t online_headroom);

  /// Runs the simulation (to exhaustion, or to `until`) and returns the
  /// finalized metrics. Safe to call repeatedly with increasing `until`.
  SimResult Run(SimTime until = kNever);

  /// Metrics of whatever has executed so far (Run() calls this for you).
  SimResult Finalize() const;

  /// Incremental stepping: processes every event at/before `t`, then pins
  /// the virtual clock at exactly `t` (so a subsequent SubmitJob at t+1 is
  /// schedulable even when no event is stamped t). Requires t >= now().
  void StepTo(SimTime t);

  /// Current virtual time.
  SimTime now() const { return sim_.now(); }

  /// Timestamp of the earliest pending event (kNever when drained).
  SimTime NextEventTime() { return sim_.NextEventTime(); }

  /// Appends `job` to the session's trace (online sessions only), assigns
  /// it the next dense id, and primes its submit/notice events. The job's
  /// submit_time must be strictly after now() — same-instant submission
  /// would race the current quiescent batch and break fork/replay
  /// determinism. Returns the assigned id; throws std::invalid_argument on
  /// a bad record and std::runtime_error when the headroom is exhausted.
  JobId SubmitJob(JobRecord job);

  /// Cancels a pending or waiting job at now(); see
  /// HybridScheduler::CancelJob for the exact refusal rules.
  bool CancelJob(JobId id);

  /// True when this session owns mutable trace storage (SubmitJob legal).
  bool online() const { return mutable_trace_ != nullptr; }

  /// Remaining online submission slots (0 for non-online sessions).
  std::size_t online_capacity_left() const;

  /// Deep copy of the entire live state — cluster, queues, reservations,
  /// leases, event heap, RNG streams, metrics, clock. The fork and the
  /// original then evolve independently and, fed identical event streams,
  /// produce byte-identical metrics (the what-if contract, enforced by
  /// exp_fork_test). Online sessions fork their trace storage too (same
  /// headroom); plain sessions share the immutable trace.
  std::unique_ptr<SimulationSession> Fork() const;

  // EventHandler: the session is its own event sink, forwarding to the
  // scheduler (this is what breaks the simulator <-> handler cycle every
  // call site used to hand-wire).
  void HandleEvent(const Event& event, Simulator& sim) override;
  void OnQuiescent(SimTime now, Simulator& sim) override;

  const SimSpec& spec() const { return spec_; }
  const Trace& trace() const { return *trace_; }
  const HybridConfig& config() const { return config_; }
  Collector& collector() { return collector_; }
  Simulator& simulator() { return sim_; }
  HybridScheduler& scheduler() { return sched_; }
  const HybridScheduler& scheduler() const { return sched_; }

  const Collector& collector() const { return collector_; }

 private:
  struct ForkTag {};
  /// The Fork() clone path: copies every member against rebound references.
  SimulationSession(const SimulationSession& other, ForkTag);

  /// Allocates the online trace storage: a copy of `base` with vector
  /// capacity reserved for `headroom` appended jobs.
  static std::shared_ptr<Trace> MakeOnlineTrace(const Trace& base,
                                                std::size_t headroom);

  SimSpec spec_;
  /// Online sessions' mutable storage; null for plain (shared-trace) runs.
  /// When set, trace_ aliases it. Declared before trace_ so the fork
  /// constructor can initialize them in order.
  std::shared_ptr<Trace> mutable_trace_;
  std::shared_ptr<const Trace> trace_;  // shared with the runner's cache
  std::size_t online_headroom_ = 0;
  HybridConfig config_;
  Collector collector_;
  Simulator sim_;
  HybridScheduler sched_;
};

/// Compatibility wrapper: builds, primes and runs one SimulationSession.
SimResult RunSimulation(const Trace& trace, const HybridConfig& config);

/// Convenience: parses `spec`, runs it, returns the metrics.
SimResult RunSpec(const std::string& spec);

}  // namespace hs
