// SimulationSession: one simulation run behind a single owner.
//
// The session owns every piece of the stack — trace, configuration, metrics
// collector, event simulator, and hybrid scheduler — in construction order,
// so the "trace/collector/sim must outlive the scheduler" lifetime rule is
// enforced by the type instead of by every call site. Construct it from a
// declarative SimSpec (the normal path) or from a hand-built trace +
// config (tests, trace surgery), then Run().
#pragma once

#include <memory>

#include "core/hybrid_scheduler.h"
#include "exp/sim_spec.h"
#include "metrics/collector.h"
#include "sim/simulator.h"
#include "workload/trace.h"

namespace hs {

class SimulationSession final : public EventHandler {
 public:
  /// Materializes the spec (trace + config) and primes the scheduler.
  /// Throws std::invalid_argument when the spec or config is inconsistent.
  explicit SimulationSession(const SimSpec& spec);

  /// Runs `spec`'s configuration against a pre-built trace (the
  /// ExperimentRunner path: one trace genuinely shared by many concurrent
  /// cells, no per-cell copy).
  SimulationSession(const SimSpec& spec, std::shared_ptr<const Trace> trace);

  /// Custom-trace path for tests and trace surgery; `spec()` stays default.
  SimulationSession(Trace trace, const HybridConfig& config);

  /// Runs the simulation (to exhaustion, or to `until`) and returns the
  /// finalized metrics. Safe to call repeatedly with increasing `until`.
  SimResult Run(SimTime until = kNever);

  /// Metrics of whatever has executed so far (Run() calls this for you).
  SimResult Finalize() const;

  // EventHandler: the session is its own event sink, forwarding to the
  // scheduler (this is what breaks the simulator <-> handler cycle every
  // call site used to hand-wire).
  void HandleEvent(const Event& event, Simulator& sim) override;
  void OnQuiescent(SimTime now, Simulator& sim) override;

  const SimSpec& spec() const { return spec_; }
  const Trace& trace() const { return *trace_; }
  const HybridConfig& config() const { return config_; }
  Collector& collector() { return collector_; }
  Simulator& simulator() { return sim_; }
  HybridScheduler& scheduler() { return sched_; }
  const HybridScheduler& scheduler() const { return sched_; }

 private:
  SimSpec spec_;
  std::shared_ptr<const Trace> trace_;  // shared with the runner's cache
  HybridConfig config_;
  Collector collector_;
  Simulator sim_;
  HybridScheduler sched_;
};

/// Compatibility wrapper: builds, primes and runs one SimulationSession.
SimResult RunSimulation(const Trace& trace, const HybridConfig& config);

/// Convenience: parses `spec`, runs it, returns the metrics.
SimResult RunSpec(const std::string& spec);

}  // namespace hs
