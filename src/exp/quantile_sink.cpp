#include "exp/quantile_sink.h"

#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace hs {

namespace {

/// The simulation-content metrics worth percentile treatment across a grid
/// (headline paper metrics; wall-clock columns are deliberately absent so
/// digests stay run-to-run stable). Name and accessor live in one row so
/// the two can never drift apart.
struct MetricField {
  const char* name;
  double SimResult::*field;
};

const std::vector<MetricField>& DigestedFields() {
  static const std::vector<MetricField> fields = {
      {"avg_turnaround_h", &SimResult::avg_turnaround_h},
      {"avg_wait_h", &SimResult::avg_wait_h},
      {"utilization", &SimResult::utilization},
      {"od_instant_rate", &SimResult::od_instant_rate},
      {"od_avg_delay_s", &SimResult::od_avg_delay_s},
      {"lost_node_hours", &SimResult::lost_node_hours},
  };
  return fields;
}

const std::vector<std::string>& DigestedMetrics() {
  static const std::vector<std::string>* metrics = [] {
    auto* m = new std::vector<std::string>;
    for (const MetricField& field : DigestedFields()) m->push_back(field.name);
    return m;
  }();
  return *metrics;
}

double MetricValue(const SpecResult& row, std::size_t index) {
  return row.result.*DigestedFields()[index].field;
}

}  // namespace

QuantileResultSink::QuantileResultSink() : QuantileResultSink(Options{}) {}

QuantileResultSink::QuantileResultSink(Options options)
    : options_(std::move(options)) {
  if (options_.quantiles.empty()) {
    throw std::invalid_argument("QuantileResultSink: no quantiles configured");
  }
  digests_.resize(DigestedMetrics().size());
  for (Digest& digest : digests_) {
    digest.estimators.reserve(options_.quantiles.size());
    for (const double q : options_.quantiles) {
      if (q <= 0.0 || q >= 1.0) {
        throw std::invalid_argument("QuantileResultSink: quantile must be in (0, 1)");
      }
      digest.estimators.emplace_back(q);
    }
  }
}

void QuantileResultSink::OnResult(std::size_t /*spec_index*/, const SpecResult& row) {
  for (std::size_t m = 0; m < digests_.size(); ++m) {
    const double value = MetricValue(row, m);
    digests_[m].stats.Add(value);
    for (P2Quantile& estimator : digests_[m].estimators) estimator.Add(value);
  }
  ++rows_;
}

const std::vector<std::string>& QuantileResultSink::metrics() const {
  return DigestedMetrics();
}

std::size_t QuantileResultSink::MetricIndex(const std::string& metric) const {
  const auto& names = DigestedMetrics();
  for (std::size_t m = 0; m < names.size(); ++m) {
    if (names[m] == metric) return m;
  }
  std::string known;
  for (const std::string& name : names) {
    if (!known.empty()) known += ", ";
    known += name;
  }
  throw std::invalid_argument("unknown digest metric '" + metric +
                              "' (known: " + known + ")");
}

const RunningStats& QuantileResultSink::Stats(const std::string& metric) const {
  return digests_[MetricIndex(metric)].stats;
}

double QuantileResultSink::Quantile(const std::string& metric, double q) const {
  const Digest& digest = digests_[MetricIndex(metric)];
  for (const P2Quantile& estimator : digest.estimators) {
    if (estimator.quantile() == q) return estimator.value();
  }
  throw std::invalid_argument("quantile " + std::to_string(q) +
                              " is not tracked by this sink");
}

std::string QuantileResultSink::Summary() const {
  std::string out = "streaming digest over ";
  out += std::to_string(rows_);
  out += " rows\n";
  char line[256];
  std::snprintf(line, sizeof(line), "  %-18s %10s %10s %10s", "metric", "mean",
                "min", "max");
  out += line;
  for (const double q : options_.quantiles) {
    // %g keeps sub-percent quantiles distinct: 0.999 -> p99.9, not p100.
    char label[32];
    std::snprintf(label, sizeof(label), "p%g", q * 100.0);
    std::snprintf(line, sizeof(line), " %9s", label);
    out += line;
  }
  out += "\n";
  for (std::size_t m = 0; m < digests_.size(); ++m) {
    const RunningStats& stats = digests_[m].stats;
    std::snprintf(line, sizeof(line), "  %-18s %10.3f %10.3f %10.3f",
                  DigestedMetrics()[m].c_str(), stats.mean(), stats.min(),
                  stats.max());
    out += line;
    for (const P2Quantile& estimator : digests_[m].estimators) {
      std::snprintf(line, sizeof(line), " %9.3f", estimator.value());
      out += line;
    }
    out += "\n";
  }
  return out;
}

}  // namespace hs
