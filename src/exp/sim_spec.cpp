#include "exp/sim_spec.h"

#include <cctype>
#include <cmath>
#include <functional>
#include <stdexcept>

#include "core/mechanism.h"
#include "sched/policy.h"

namespace hs {

namespace {

// --- strict value parsing ---------------------------------------------------

std::int64_t ParseIntValue(const std::string& key, const std::string& value) {
  std::size_t consumed = 0;
  std::int64_t parsed = 0;
  try {
    parsed = std::stoll(value, &consumed, 10);
  } catch (const std::exception&) {
    consumed = 0;
  }
  if (consumed == 0 || consumed != value.size()) {
    throw std::invalid_argument("override '" + key + "': expected an integer, got '" +
                                value + "'");
  }
  return parsed;
}

double ParseDoubleValue(const std::string& key, const std::string& value) {
  std::size_t consumed = 0;
  double parsed = 0.0;
  try {
    parsed = std::stod(value, &consumed);
  } catch (const std::exception&) {
    consumed = 0;
  }
  if (consumed == 0 || consumed != value.size()) {
    throw std::invalid_argument("override '" + key + "': expected a number, got '" +
                                value + "'");
  }
  return parsed;
}

bool ParseBoolValue(const std::string& key, const std::string& value) {
  if (value == "true" || value == "1" || value == "yes" || value == "on") return true;
  if (value == "false" || value == "0" || value == "no" || value == "off") return false;
  throw std::invalid_argument("override '" + key + "': expected a boolean, got '" +
                              value + "'");
}

void Require(bool ok, const std::string& key, const char* constraint) {
  if (!ok) {
    throw std::invalid_argument("override '" + key + "' " + constraint);
  }
}

// --- the override table -----------------------------------------------------

struct OverrideEntry {
  OverrideKey info;
  /// Applies `value` to whichever target matches info.scenario; the other
  /// pointer is null. Throws std::invalid_argument on a bad value.
  std::function<void(const std::string& value, ScenarioConfig*, HybridConfig*)> apply;
};

const std::vector<OverrideEntry>& OverrideTable() {
  static const std::vector<OverrideEntry>* table = [] {
    auto* t = new std::vector<OverrideEntry>;
    const auto scenario = [t](const char* key, const char* help, const char* example,
                              std::function<void(const std::string&, ScenarioConfig&)> fn) {
      t->push_back({{key, help, example, true},
                    [fn = std::move(fn)](const std::string& v, ScenarioConfig* s,
                                         HybridConfig*) { fn(v, *s); }});
    };
    const auto config = [t](const char* key, const char* help, const char* example,
                            std::function<void(const std::string&, HybridConfig&)> fn) {
      t->push_back({{key, help, example, false},
                    [fn = std::move(fn)](const std::string& v, ScenarioConfig*,
                                         HybridConfig* c) { fn(v, *c); }});
    };

    scenario("nodes", "machine size (also caps the largest job)", "512",
             [](const std::string& v, ScenarioConfig& s) {
               const auto nodes = ParseIntValue("nodes", v);
               Require(nodes > 0, "nodes", "must be > 0");
               s.theta.num_nodes = static_cast<int>(nodes);
               s.theta.projects.max_job_size = static_cast<int>(nodes);
             });
    scenario("projects", "number of projects in the synthetic workload", "32",
             [](const std::string& v, ScenarioConfig& s) {
               const auto n = ParseIntValue("projects", v);
               Require(n > 0, "projects", "must be > 0");
               s.theta.projects.num_projects = static_cast<int>(n);
             });
    scenario("load", "offered-load calibration target", "0.8",
             [](const std::string& v, ScenarioConfig& s) {
               const double load = ParseDoubleValue("load", v);
               Require(load > 0.0 && load <= 2.0, "load", "must be in (0, 2]");
               s.theta.target_load = load;
             });
    scenario("od_share", "share of projects submitting on-demand jobs", "0.25",
             [](const std::string& v, ScenarioConfig& s) {
               const double share = ParseDoubleValue("od_share", v);
               Require(share >= 0.0 && share <= 1.0, "od_share", "must be in [0, 1]");
               s.types.on_demand_project_share = share;
             });
    scenario("rigid_share", "share of projects submitting rigid jobs", "0.5",
             [](const std::string& v, ScenarioConfig& s) {
               const double share = ParseDoubleValue("rigid_share", v);
               Require(share >= 0.0 && share <= 1.0, "rigid_share", "must be in [0, 1]");
               s.types.rigid_project_share = share;
             });
    scenario("malleable_min", "malleable minimum size as a fraction of the request", "0.5",
             [](const std::string& v, ScenarioConfig& s) {
               const double frac = ParseDoubleValue("malleable_min", v);
               Require(frac > 0.0 && frac <= 1.0, "malleable_min", "must be in (0, 1]");
               s.types.malleable_min_frac = frac;
             });

    config("ckpt_scale", "checkpoint interval as a multiple of the Daly optimum", "0.5",
           [](const std::string& v, HybridConfig& c) {
             const double scale = ParseDoubleValue("ckpt_scale", v);
             Require(scale > 0.0, "ckpt_scale", "must be > 0");
             c.engine.checkpoint.interval_scale = scale;
           });
    config("warning", "malleable drain warning, seconds", "120",
           [](const std::string& v, HybridConfig& c) {
             const auto seconds = ParseIntValue("warning", v);
             Require(seconds >= 0, "warning", "must be >= 0");
             c.engine.drain_warning = seconds;
           });
    config("backfill", "backfill jobs onto reserved nodes (bool)", "true",
           [](const std::string& v, HybridConfig& c) {
             c.backfill_on_reserved = ParseBoolValue("backfill", v);
           });
    config("expand", "opportunistically expand malleable jobs (bool)", "false",
           [](const std::string& v, HybridConfig& c) {
             c.opportunistic_expand = ParseBoolValue("expand", v);
           });
    config("hold", "hold returned nodes for preempted lenders (bool)", "true",
           [](const std::string& v, HybridConfig& c) {
             c.hold_returned_nodes = ParseBoolValue("hold", v);
           });
    config("partition", "static on-demand partition size, nodes (0 = off)", "256",
           [](const std::string& v, HybridConfig& c) {
             const auto nodes = ParseIntValue("partition", v);
             Require(nodes >= 0, "partition", "must be >= 0");
             c.static_od_partition = static_cast<int>(nodes);
           });
    config("timeout", "reservation timeout after the predicted arrival, seconds", "300",
           [](const std::string& v, HybridConfig& c) {
             const auto seconds = ParseIntValue("timeout", v);
             Require(seconds >= 0, "timeout", "must be >= 0");
             c.reservation_timeout = seconds;
           });
    config("instant", "instant-start threshold, seconds", "60",
           [](const std::string& v, HybridConfig& c) {
             const auto seconds = ParseIntValue("instant", v);
             Require(seconds >= 0, "instant", "must be >= 0");
             c.instant_threshold = seconds;
           });
    scenario("swf", "SWF trace file to replay (preset=swf; '/' written as %2F in specs)", "/data/theta.swf",
             [](const std::string& v, ScenarioConfig& s) {
               Require(!v.empty(), "swf", "must be a file path");
               s.swf_path = v;
             });
    config("failures", "inject hardware failures (bool)", "true",
           [](const std::string& v, HybridConfig& c) {
             c.engine.inject_failures = ParseBoolValue("failures", v);
           });
    config("mtbf_days", "per-node mean time between failures, days", "7.5",
           [](const std::string& v, HybridConfig& c) {
             const double days = ParseDoubleValue("mtbf_days", v);
             Require(days > 0.0, "mtbf_days", "must be > 0");
             c.engine.failure_node_mtbf = static_cast<SimTime>(days * kDay);
           });
    // Workload-generator knobs (workload/generators.h): modulators compose
    // with any preset, so these are plain scenario keys — `preset=burst`
    // merely changes their defaults.
    scenario("burst_mult", "storm arrival-rate multiplier (1 = no storms)", "6",
             [](const std::string& v, ScenarioConfig& s) {
               const double mult = ParseDoubleValue("burst_mult", v);
               Require(mult >= 1.0, "burst_mult", "must be >= 1");
               s.gen.burst.mult = mult;
             });
    scenario("burst_period_h", "mean storm-free gap between storm windows, hours", "12",
             [](const std::string& v, ScenarioConfig& s) {
               const double hours = ParseDoubleValue("burst_period_h", v);
               Require(hours > 0.0, "burst_period_h", "must be > 0");
               s.gen.burst.period = static_cast<SimTime>(std::llround(hours * kHour));
             });
    scenario("burst_len_h", "storm window length, hours", "1",
             [](const std::string& v, ScenarioConfig& s) {
               const double hours = ParseDoubleValue("burst_len_h", v);
               Require(hours > 0.0, "burst_len_h", "must be > 0");
               s.gen.burst.duration = static_cast<SimTime>(std::llround(hours * kHour));
             });
    scenario("diurnal_amp", "diurnal/weekly cycle modulation depth", "0.9",
             [](const std::string& v, ScenarioConfig& s) {
               const double amp = ParseDoubleValue("diurnal_amp", v);
               Require(amp >= 0.0 && amp < 1.0, "diurnal_amp", "must be in [0, 1)");
               s.gen.diurnal.amplitude = amp;
             });
    scenario("weekend_factor", "weekend arrival damping factor", "0.4",
             [](const std::string& v, ScenarioConfig& s) {
               const double factor = ParseDoubleValue("weekend_factor", v);
               Require(factor > 0.0 && factor <= 1.0, "weekend_factor",
                       "must be in (0, 1]");
               s.gen.diurnal.weekend_factor = factor;
             });
    scenario("ai_frac", "AI-task share of total offered demand", "0.3",
             [](const std::string& v, ScenarioConfig& s) {
               const double frac = ParseDoubleValue("ai_frac", v);
               Require(frac >= 0.0 && frac < 1.0, "ai_frac", "must be in [0, 1)");
               s.gen.ai.frac = frac;
             });
    scenario("ai_swarm", "tasks per AI swarm", "48",
             [](const std::string& v, ScenarioConfig& s) {
               const auto tasks = ParseIntValue("ai_swarm", v);
               Require(tasks >= 1, "ai_swarm", "must be >= 1");
               s.gen.ai.swarm = static_cast<int>(tasks);
             });
    scenario("ai_size", "largest AI task, nodes", "256",
             [](const std::string& v, ScenarioConfig& s) {
               const auto nodes = ParseIntValue("ai_size", v);
               Require(nodes >= 1, "ai_size", "must be >= 1");
               s.gen.ai.max_size = static_cast<int>(nodes);
             });
    return t;
  }();
  return *table;
}

const OverrideEntry& FindOverride(const std::string& key) {
  for (const OverrideEntry& entry : OverrideTable()) {
    if (entry.info.key == key) return entry;
  }
  std::string known;
  for (const OverrideEntry& entry : OverrideTable()) {
    if (!known.empty()) known += ", ";
    known += entry.info.key;
  }
  throw std::invalid_argument("unknown override key '" + key + "' (known: " + known +
                              ")");
}

// --- name canonicalization --------------------------------------------------

std::string CanonicalMixName(const std::string& name) {
  std::string upper = name;
  for (char& c : upper) c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  try {
    return NoticeMixByName(upper).name;
  } catch (const std::out_of_range&) {
    std::string known;
    for (const NoticeMix& mix : PaperNoticeMixes()) {
      if (!known.empty()) known += ", ";
      known += mix.name;
    }
    throw std::invalid_argument("unknown notice mix '" + name + "' (known: " + known +
                                ")");
  }
}

int ParseWeeksValue(const std::string& value) {
  const auto weeks = ParseIntValue("weeks", value);
  if (weeks < 1) throw std::invalid_argument("weeks must be >= 1, got " + value);
  return static_cast<int>(weeks);
}

std::uint64_t ParseSeedValue(const std::string& value) {
  const auto seed = ParseIntValue("seed", value);
  if (seed < 0) throw std::invalid_argument("seed must be >= 0, got " + value);
  return static_cast<std::uint64_t>(seed);
}

// Override values live inside '/'-separated spec strings, so a literal '/'
// (file paths) is written %2F and a literal '%' as %25. Encoding is the
// identity for every value without those characters, keeping existing specs
// byte-stable.
std::string EncodeOverrideValue(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (const char c : value) {
    if (c == '%') {
      out += "%25";
    } else if (c == '/') {
      out += "%2F";
    } else {
      out += c;
    }
  }
  return out;
}

std::string DecodeOverrideValue(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (std::size_t i = 0; i < value.size(); ++i) {
    if (value[i] == '%' && i + 2 < value.size()) {
      const std::string code = value.substr(i + 1, 2);
      if (code == "2F" || code == "2f") {
        out += '/';
        i += 2;
        continue;
      }
      if (code == "25") {
        out += '%';
        i += 2;
        continue;
      }
    }
    out += value[i];
  }
  return out;
}

std::string Trimmed(const std::string& text) {
  std::size_t begin = 0, end = text.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(text[begin]))) ++begin;
  while (end > begin && std::isspace(static_cast<unsigned char>(text[end - 1]))) --end;
  return text.substr(begin, end - begin);
}

bool IEqualsPrefix(const std::string& text, const char* prefix) {
  std::size_t i = 0;
  for (; prefix[i] != '\0'; ++i) {
    if (i >= text.size()) return false;
    if (std::tolower(static_cast<unsigned char>(text[i])) !=
        std::tolower(static_cast<unsigned char>(prefix[i]))) {
      return false;
    }
  }
  return text.size() == i || text[i] == '/';
}

}  // namespace

const std::vector<OverrideKey>& KnownOverrides() {
  static const std::vector<OverrideKey>* keys = [] {
    auto* k = new std::vector<OverrideKey>;
    for (const OverrideEntry& entry : OverrideTable()) k->push_back(entry.info);
    return k;
  }();
  return *keys;
}

std::string SimSpec::ToString() const {
  std::string out = mechanism + "/" + policy + "/" + notice_mix;
  if (preset != "paper") out += "/preset=" + preset;
  if (weeks != 1) out += "/weeks=" + std::to_string(weeks);
  if (seed != 1) out += "/seed=" + std::to_string(seed);
  for (const auto& [key, value] : overrides) {
    out += "/" + key + "=" + EncodeOverrideValue(value);
  }
  return out;
}

SimSpec SimSpec::Parse(const std::string& text) {
  const std::string trimmed = Trimmed(text);
  if (trimmed.empty()) throw std::invalid_argument("empty spec");

  std::vector<std::string> tokens;
  std::string rest = trimmed;
  // The baseline's display name "FCFS/EASY" contains the segment separator;
  // accept it as the leading mechanism token.
  if (IEqualsPrefix(trimmed, "FCFS/EASY")) {
    tokens.push_back("baseline");
    rest = trimmed.size() > 9 ? trimmed.substr(10) : "";
    if (trimmed.size() > 9 && rest.empty()) {
      throw std::invalid_argument("empty segment in spec '" + trimmed + "'");
    }
  }
  std::size_t start = 0;
  while (start <= rest.size() && !rest.empty()) {
    const std::size_t slash = rest.find('/', start);
    const std::string token =
        rest.substr(start, slash == std::string::npos ? std::string::npos : slash - start);
    tokens.push_back(token);
    if (slash == std::string::npos) break;
    start = slash + 1;
  }

  SimSpec spec;
  std::size_t positional = 0;
  bool saw_key_value = false;
  for (const std::string& token : tokens) {
    if (token.empty()) {
      throw std::invalid_argument("empty segment in spec '" + trimmed + "'");
    }
    const std::size_t eq = token.find('=');
    if (eq == std::string::npos) {
      if (saw_key_value) {
        throw std::invalid_argument("positional segment '" + token +
                                    "' after key=value segments in '" + trimmed + "'");
      }
      switch (positional++) {
        case 0: spec.mechanism = CanonicalMechanismName(token); break;
        case 1: spec.policy = PolicyRegistry().Canonical(token); break;
        case 2: spec.notice_mix = CanonicalMixName(token); break;
        default:
          throw std::invalid_argument("too many positional segments in spec '" +
                                      trimmed + "' (expected mechanism/policy/mix)");
      }
      continue;
    }
    saw_key_value = true;
    const std::string key = token.substr(0, eq);
    const std::string value = token.substr(eq + 1);
    if (key == "preset") {
      spec.preset = ScenarioRegistry().Canonical(value);
    } else if (key == "weeks") {
      spec.weeks = ParseWeeksValue(value);
    } else if (key == "seed") {
      spec.seed = ParseSeedValue(value);
    } else {
      // Spec strings carry '/'-escaped values ('%2F'); CLI flags and direct
      // SetOverride calls stay verbatim. Values are stored decoded and
      // ToString re-encodes, so Parse(ToString()) round-trips.
      spec.SetOverride(key, DecodeOverrideValue(value));
    }
  }
  return spec;
}

SimSpec SimSpec::FromCli(const CliArgs& args) {
  SimSpec spec;
  if (args.Has("spec")) spec = Parse(args.GetString("spec", ""));
  if (args.Has("mechanism")) {
    spec.mechanism = CanonicalMechanismName(args.GetString("mechanism", spec.mechanism));
  }
  if (args.Has("policy")) {
    spec.policy = PolicyRegistry().Canonical(args.GetString("policy", spec.policy));
  }
  if (args.Has("mix")) {
    spec.notice_mix = CanonicalMixName(args.GetString("mix", spec.notice_mix));
  }
  if (args.Has("preset")) {
    spec.preset = ScenarioRegistry().Canonical(args.GetString("preset", spec.preset));
  }
  if (args.Has("weeks")) spec.weeks = ParseWeeksValue(args.GetString("weeks", "1"));
  if (args.Has("seed")) spec.seed = ParseSeedValue(args.GetString("seed", "1"));
  for (const OverrideKey& key : KnownOverrides()) {
    if (args.Has(key.key)) spec.SetOverride(key.key, args.GetString(key.key, ""));
  }
  return spec;
}

void SimSpec::SetOverride(const std::string& key, const std::string& value) {
  const OverrideEntry& entry = FindOverride(key);
  // Validate the value eagerly against scratch targets so bad specs fail at
  // parse time, not mid-experiment.
  ScenarioConfig scratch_scenario;
  HybridConfig scratch_config;
  entry.apply(value, &scratch_scenario, &scratch_config);
  overrides[key] = value;
}

std::string SimSpec::Validate() const {
  try {
    if (weeks < 1) return "weeks must be >= 1";
    (void)MechanismRegistry().Get(mechanism);
    (void)PolicyRegistry().Get(policy);
    (void)ScenarioRegistry().Get(preset);
    (void)CanonicalMixName(notice_mix);
    (void)BuildScenario();
    const HybridConfig config = BuildConfig();
    const std::string error = config.Validate();
    if (!error.empty()) return error;
  } catch (const std::exception& e) {
    return e.what();
  }
  return {};
}

ScenarioConfig SimSpec::BuildScenario() const {
  ScenarioConfig scenario = MakeScenario(preset, weeks, CanonicalMixName(notice_mix));
  for (const auto& [key, value] : overrides) {
    const OverrideEntry& entry = FindOverride(key);
    if (entry.info.scenario) entry.apply(value, &scenario, nullptr);
  }
  const std::string error = ValidateScenario(scenario);
  if (!error.empty()) throw std::invalid_argument(error);
  return scenario;
}

HybridConfig SimSpec::BuildConfig() const {
  HybridConfig config = MakePaperConfig(ParseMechanism(mechanism));
  config.engine.policy = PolicyRegistry().Canonical(policy);
  for (const auto& [key, value] : overrides) {
    const OverrideEntry& entry = FindOverride(key);
    if (!entry.info.scenario) entry.apply(value, nullptr, &config);
  }
  return config;
}

Trace SimSpec::BuildTrace() const { return BuildScenarioTrace(BuildScenario(), seed); }

std::string SimSpec::ScenarioKey() const {
  std::string key = preset + "|" + notice_mix + "|w" + std::to_string(weeks) + "|s" +
                    std::to_string(seed);
  for (const auto& [name, value] : overrides) {
    if (FindOverride(name).info.scenario) key += "|" + name + "=" + value;
  }
  return key;
}

}  // namespace hs
