// ExperimentRunner: executes a flat vector of SimSpecs over the thread
// pool, streaming one result row per completed cell to a ResultSink.
//
// Replaces the nested-vector RunGrid API: an experiment is now "a list of
// specs" (any mix of mechanisms, policies, presets, seeds and overrides),
// results come back in spec order, and traces are built once per distinct
// ScenarioKey() and shared across the cells that need them.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <mutex>
#include <string>
#include <vector>

#include "exp/session.h"
#include "exp/sim_spec.h"
#include "util/csv.h"
#include "util/thread_pool.h"

namespace hs {

/// One completed experiment cell.
struct SpecResult {
  SimSpec spec;
  std::string trace_name;
  SimResult result;
};

/// Streaming consumer of completed cells. OnResult is invoked from the
/// runner as each cell finishes (serialized; never concurrently), in
/// completion order — not spec order.
class ResultSink {
 public:
  virtual ~ResultSink() = default;
  virtual void OnResult(const SpecResult& row) = 0;
};

/// Writes one CSV row per completed cell (header first).
class CsvResultSink final : public ResultSink {
 public:
  /// `out` must outlive the sink.
  explicit CsvResultSink(std::ostream& out);
  void OnResult(const SpecResult& row) override;

 private:
  CsvWriter writer_;
  bool header_written_ = false;
};

/// Writes one JSON object per line per completed cell (JSONL).
class JsonlResultSink final : public ResultSink {
 public:
  /// `out` must outlive the sink.
  explicit JsonlResultSink(std::ostream& out) : out_(out) {}
  void OnResult(const SpecResult& row) override;

 private:
  std::ostream& out_;
};

class ExperimentRunner {
 public:
  explicit ExperimentRunner(ThreadPool& pool) : pool_(pool) {}

  /// Runs every spec (validating all of them up front; throws
  /// std::invalid_argument on the first bad one). Distinct scenarios are
  /// generated once, in parallel; cells then run in parallel, each inside
  /// its own SimulationSession. `sink` (optional) receives each row as it
  /// completes. Returns the rows in spec order.
  std::vector<SpecResult> Run(const std::vector<SimSpec>& specs,
                              ResultSink* sink = nullptr);

 private:
  ThreadPool& pool_;
  std::mutex sink_mutex_;
};

/// `count` copies of `base` with seed = base_seed + i: the per-trace
/// averaging pattern of every paper experiment.
std::vector<SimSpec> SeedSweep(const SimSpec& base, int count, std::uint64_t base_seed);

/// Extracts the bare SimResults of `rows`, in order.
std::vector<SimResult> ResultsOf(const std::vector<SpecResult>& rows);

/// Field-wise arithmetic mean of per-seed results (counters accumulate,
/// maxima take the max).
SimResult MeanResult(const std::vector<SimResult>& results);

/// Means of consecutive groups of `group_size` rows: the "configs x seeds"
/// reduction when specs were laid out config-major via SeedSweep.
std::vector<SimResult> GroupMeans(const std::vector<SpecResult>& rows,
                                  std::size_t group_size);

}  // namespace hs
