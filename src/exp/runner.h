// ExperimentRunner: executes a flat vector of SimSpecs over the thread
// pool, streaming one result row per completed cell to a ResultSink.
//
// Replaces the nested-vector RunGrid API: an experiment is now "a list of
// specs" (any mix of mechanisms, policies, presets, seeds and overrides),
// results come back in spec order, and traces are built once per distinct
// ScenarioKey() and shared across the cells that need them.
//
// Sinks receive the cell's position in the spec vector alongside the row,
// so order-sensitive consumers (MergingResultSink, the sharded worker
// protocol in shard_io.h) can restore canonical spec order no matter which
// thread or process finished first.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "exp/session.h"
#include "exp/sim_spec.h"
#include "util/csv.h"
#include "util/thread_pool.h"

namespace hs {

/// One completed experiment cell.
struct SpecResult {
  SimSpec spec;
  std::string trace_name;
  SimResult result;
};

/// Streaming consumer of completed cells. OnResult is invoked from the
/// runner as each cell finishes (serialized; never concurrently), in
/// completion order — not spec order. `spec_index` is the cell's position
/// in the spec vector passed to Run.
class ResultSink {
 public:
  virtual ~ResultSink() = default;
  virtual void OnResult(std::size_t spec_index, const SpecResult& row) = 0;
};

/// Column selection shared by the CSV sink and the golden/differential
/// harness: wall-clock columns (decision_avg_us, decision_max_us) differ
/// between any two runs of the same binary, so byte-stable outputs strip
/// them and keep only simulation-content columns.
struct CsvSinkOptions {
  bool include_wallclock = true;
};

/// Writes one CSV row per completed cell (header first).
class CsvResultSink final : public ResultSink {
 public:
  /// `out` must outlive the sink.
  explicit CsvResultSink(std::ostream& out, CsvSinkOptions options = {});
  void OnResult(std::size_t spec_index, const SpecResult& row) override;

 private:
  CsvWriter writer_;
  CsvSinkOptions options_;
  bool header_written_ = false;
};

/// Writes one JSON object per line per completed cell (JSONL).
class JsonlResultSink final : public ResultSink {
 public:
  /// `out` must outlive the sink.
  explicit JsonlResultSink(std::ostream& out) : out_(out) {}
  void OnResult(std::size_t spec_index, const SpecResult& row) override;

 private:
  std::ostream& out_;
};

/// Forwards every row to each inner sink in order — e.g. a CSV file plus a
/// streaming QuantileResultSink behind one MergingResultSink.
class TeeResultSink final : public ResultSink {
 public:
  /// Every sink must outlive the tee; null entries are rejected.
  explicit TeeResultSink(std::vector<ResultSink*> sinks);
  void OnResult(std::size_t spec_index, const SpecResult& row) override;

 private:
  std::vector<ResultSink*> sinks_;
};

/// Reorders completion-order rows back into canonical spec order: rows are
/// buffered until every earlier index has arrived, then forwarded to the
/// inner sink as a contiguous in-order prefix. This makes streamed output
/// (CSV bytes included) independent of thread/process completion order —
/// the merge-determinism contract of the sharded runner.
///
/// OnResult throws std::out_of_range on an index >= expected_rows and
/// std::runtime_error on a duplicate index. Call Finish() once the run
/// completed: it throws std::runtime_error naming the missing indices when
/// rows were dropped (a worker died mid-shard), so partial output can never
/// be mistaken for a full grid.
///
/// Skip(i) declares that row i will never arrive (a quarantined poison
/// cell in a best-effort sharded run): the merge flushes past it so every
/// healthy row still reaches the inner sink in canonical order, and
/// Finish() treats it as accounted for — quarantine is explicit, never a
/// silent drop.
class MergingResultSink final : public ResultSink {
 public:
  /// `inner` must outlive the sink.
  MergingResultSink(ResultSink& inner, std::size_t expected_rows);
  void OnResult(std::size_t spec_index, const SpecResult& row) override;

  /// Marks `spec_index` as known-missing and flushes any held rows past
  /// it. Throws std::out_of_range like OnResult and std::runtime_error
  /// when the row already arrived or was already skipped.
  void Skip(std::size_t spec_index);

  /// Rows forwarded to the inner sink so far (the in-order prefix;
  /// skipped indices count once passed).
  std::size_t flushed() const { return next_; }

  /// Indices neither delivered nor skipped, in ascending order.
  std::vector<std::size_t> MissingIndices() const;

  /// Indices declared missing via Skip, in ascending order.
  std::vector<std::size_t> SkippedIndices() const;

  /// Throws std::runtime_error unless every expected row arrived or was
  /// explicitly skipped.
  void Finish() const;

 private:
  void FlushReady();

  ResultSink& inner_;
  std::vector<std::unique_ptr<SpecResult>> held_;  // buffered, not yet flushed
  std::vector<bool> seen_;
  std::vector<bool> skipped_;
  std::size_t next_ = 0;  // first index not yet forwarded
};

class ExperimentRunner {
 public:
  explicit ExperimentRunner(ThreadPool& pool) : pool_(pool) {}

  /// Runs every spec (validating all of them up front; throws
  /// std::invalid_argument on the first bad one). Distinct scenarios are
  /// generated once, in parallel; cells then run in parallel, each inside
  /// its own SimulationSession. `sink` (optional) receives each row as it
  /// completes. Returns the rows in spec order.
  ///
  /// A cell that throws mid-grid (e.g. a trace file that turned unreadable
  /// after validation) does not abort the others: every remaining cell
  /// still runs and streams its row to `sink`, and Run then throws
  /// std::runtime_error naming the first failing spec (in spec order) and
  /// its error. The sink therefore always holds every successful row.
  std::vector<SpecResult> Run(const std::vector<SimSpec>& specs,
                              ResultSink* sink = nullptr);

 private:
  ThreadPool& pool_;
  std::mutex sink_mutex_;
};

/// "3, 7, 12" — at most `limit` entries, then ", ..." (error messages
/// naming dropped/missing spec indices).
std::string FormatIndexList(const std::vector<std::size_t>& indices,
                            std::size_t limit = 8);

/// `count` copies of `base` with seed = base_seed + i: the per-trace
/// averaging pattern of every paper experiment.
std::vector<SimSpec> SeedSweep(const SimSpec& base, int count, std::uint64_t base_seed);

/// Extracts the bare SimResults of `rows`, in order.
std::vector<SimResult> ResultsOf(const std::vector<SpecResult>& rows);

/// Field-wise arithmetic mean of per-seed results (counters accumulate,
/// maxima take the max).
SimResult MeanResult(const std::vector<SimResult>& results);

/// Means of consecutive groups of `group_size` rows: the "configs x seeds"
/// reduction when specs were laid out config-major via SeedSweep.
std::vector<SimResult> GroupMeans(const std::vector<SpecResult>& rows,
                                  std::size_t group_size);

}  // namespace hs
