#include "exp/sharded_runner.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <deque>
#include <filesystem>
#include <stdexcept>
#include <thread>
#include <utility>

#include "exp/shard_io.h"
#include "exp/transport.h"
#include "util/file_util.h"
#include "util/rng.h"
#include "util/subprocess.h"

namespace hs {

namespace {

using Clock = std::chrono::steady_clock;

/// Deterministic backoff before attempt `next_attempt` (>= 2) of a unit
/// from `origin` shard: exponential with seed-derived jitter.
double BackoffSeconds(const RetryPolicy& policy, std::size_t origin, int next_attempt) {
  if (policy.backoff_initial_s <= 0.0) return 0.0;
  double base = policy.backoff_initial_s *
                std::pow(policy.backoff_multiplier,
                         std::max(0, next_attempt - 2));
  base = std::min(base, policy.backoff_max_s);
  if (policy.jitter_frac <= 0.0) return base;
  std::uint64_t state = policy.jitter_seed ^
                        (static_cast<std::uint64_t>(origin) * 0x9E3779B97F4A7C15ull) ^
                        static_cast<std::uint64_t>(next_attempt);
  const double unit = static_cast<double>(SplitMix64(state) >> 11) * 0x1.0p-53;
  return base * (1.0 + policy.jitter_frac * unit);
}

/// One re-scatterable piece of work: a subset of spec indices descended
/// from one original plan shard, with its attempt budget consumed so far.
struct WorkUnit {
  std::size_t origin_shard = 0;
  std::vector<std::size_t> indices;
  int attempts_used = 0;
  Clock::time_point ready_at;  // backoff gate
  /// Dispatch failures (dead host, refused connection) that never reached
  /// an executor — these do not consume retry attempts, only patience.
  int infra_failures = 0;
};

/// One launched unit in flight on some transport slot.
struct Running {
  WorkUnit unit;
  std::unique_ptr<TransportTask> task;
  Clock::time_point last_activity;
  std::uint64_t last_bytes = 0;
  bool hang_killed = false;
};

}  // namespace

std::string DefaultWorkerCommand() {
  const std::string dir = SelfExeDir();
  return dir.empty() ? std::string("hs_worker") : dir + "/hs_worker";
}

std::string FabricReport::Summary() const {
  std::string out;
  if (!transport.empty()) out += "fabric: transport: " + transport + "\n";
  out += "fabric: " + std::to_string(shard_count) + " shards, " +
         std::to_string(workers_launched) + " worker launches (" +
         std::to_string(retries) + " retries, " + std::to_string(bisections) +
         " bisections, " + std::to_string(hang_kills) + " hang kills)\n";
  out += "fabric: cells: " + std::to_string(rows_merged) + " merged useful, " +
         std::to_string(wasted_cells()) + " wasted of " +
         std::to_string(cells_scattered) + " scattered; " +
         std::to_string(quarantined.size()) + " quarantined\n";
  if (conn_failures > 0) {
    out += "fabric: " + std::to_string(conn_failures) +
           " connection failures routed around\n";
  }
  std::string per_shard;
  for (std::size_t k = 0; k < launches_per_shard.size(); ++k) {
    if (!per_shard.empty()) per_shard += ", ";
    per_shard += "shard " + std::to_string(k) + ": " +
                 std::to_string(launches_per_shard[k]);
  }
  if (!per_shard.empty()) out += "fabric: launches by shard: " + per_shard + "\n";
  for (const FabricCellError& cell : quarantined) {
    std::string reason = cell.reason;
    constexpr std::size_t kMax = 300;
    if (reason.size() > kMax) reason = reason.substr(0, kMax) + "...";
    std::replace(reason.begin(), reason.end(), '\n', ' ');
    out += "fabric: quarantined cell " + std::to_string(cell.spec_index) + " ('" +
           cell.spec + "'): " + reason + "\n";
  }
  return out;
}

ShardedRunner::ShardedRunner(ShardedRunnerOptions options)
    : options_(std::move(options)) {}

std::vector<SpecResult> ShardedRunner::Run(const std::vector<SimSpec>& specs,
                                           ResultSink* sink) {
  for (const SimSpec& spec : specs) {
    const std::string error = spec.Validate();
    if (!error.empty()) {
      throw std::invalid_argument("invalid spec '" + spec.ToString() + "': " + error);
    }
  }
  if (options_.retry.max_attempts < 1) {
    throw std::invalid_argument("ShardedRunner: retry.max_attempts must be >= 1");
  }
  last_plan_ = MakeShardPlan(specs, options_.shards, options_.strategy);
  last_report_ = FabricReport{};
  last_report_.shard_count = last_plan_.shard_count();
  last_report_.launches_per_shard.assign(last_plan_.shard_count(), 0);
  if (specs.empty()) return {};

  const std::string worker =
      options_.worker_cmd.empty() ? DefaultWorkerCommand() : options_.worker_cmd;

  const bool own_work_dir = options_.work_dir.empty();
  std::string work_dir = options_.work_dir;
  if (own_work_dir) {
    work_dir = MakeTempDir("hs-shards-");
  } else {
    std::filesystem::create_directories(work_dir);
  }

  // Pick the transport: empty --hosts keeps the original local fork/exec
  // path (one slot per plan shard, same scratch files, same messages);
  // otherwise every unit travels to an hs_agent over TCP.
  std::unique_ptr<Transport> transport;
  if (options_.hosts.empty()) {
    transport = std::make_unique<LocalExecTransport>(
        work_dir, worker, options_.worker_threads, last_plan_.shard_count());
  } else {
    TcpTransportOptions tcp;
    tcp.worker_threads = options_.worker_threads;
    tcp.connect_timeout_s = options_.connect_timeout_s;
    transport = std::make_unique<TcpTransport>(ParseHostList(options_.hosts), tcp);
  }
  last_report_.transport = transport->Describe();

  // --- the work-stealing scatter/gather loop ---------------------------------
  //
  // Pending units wait out their backoff and are drained by whichever
  // transport slot is idle first (dynamic dispatch — a fast host simply
  // takes more units). Every exit (clean, crashed, hang-killed, or a dead
  // connection) is gathered tolerantly: rows already received are kept,
  // only the missing indices are re-scattered. A dispatch that never
  // reached an executor (dead host) re-queues the unit without consuming a
  // retry attempt. A unit that exhausts its attempts is bisected until the
  // poison cell is isolated, then quarantined (best_effort) or thrown.
  std::deque<WorkUnit> pending;
  for (std::size_t k = 0; k < last_plan_.shard_count(); ++k) {
    pending.push_back(WorkUnit{k, last_plan_.shards[k], 0, Clock::now()});
  }
  std::deque<Running> running;
  std::vector<std::unique_ptr<SpecResult>> collected(specs.size());
  const std::size_t max_parallel = std::max<std::size_t>(1, transport->slots());
  const double poll_s = std::max(0.001, options_.poll_interval_s);
  // Consecutive dispatch failures per slot before a slot counts as dead;
  // the run only gives up when EVERY slot is dead (a unit bouncing off one
  // dead host is fine — it will land on a live one when that frees up).
  constexpr std::size_t kDeadSlotThreshold = 5;

  // Gathers one finished launch; returns when its unit completed and
  // enqueues follow-up work (retry / bisect / quarantine) otherwise.
  // Throws on wire-format skew, on an unreachable fabric, and on terminal
  // failure in fail-fast mode.
  const auto handle_exit = [&](Running& launch) {
    WorkUnit& unit = launch.unit;
    const TransportOutcome outcome = launch.task->Take();
    const std::string shard_name = "shard " + std::to_string(unit.origin_shard);

    if (outcome.infrastructure) {
      // Never reached an executor: nothing ran, so no attempt was consumed
      // and no worker/cell accounting sticks. Route around the dead host.
      last_report_.conn_failures += 1;
      last_report_.workers_launched -= 1;
      last_report_.cells_scattered -= unit.indices.size();
      last_report_.launches_per_shard[unit.origin_shard] -= 1;
      unit.infra_failures += 1;
      if (transport->AllSlotsDead(kDeadSlotThreshold)) {
        throw std::runtime_error(shard_name + " could not be dispatched after " +
                                 std::to_string(unit.infra_failures) +
                                 " connection attempts — every agent is "
                                 "unreachable; last error: " +
                                 outcome.status);
      }
      const double pause = std::max(0.01, options_.retry.backoff_initial_s);
      WorkUnit requeued = std::move(unit);
      requeued.ready_at = Clock::now() + std::chrono::duration_cast<Clock::duration>(
                                             std::chrono::duration<double>(pause));
      pending.push_back(std::move(requeued));
      return;
    }

    unit.attempts_used += 1;
    std::vector<bool> assigned_here(specs.size(), false);
    for (const std::size_t index : unit.indices) assigned_here[index] = true;
    std::vector<bool> returned_here(specs.size(), false);
    for (const IndexedSpecResult& row : outcome.rows) {
      if (row.index >= specs.size()) {
        throw std::runtime_error(shard_name + " returned out-of-range spec index " +
                                 std::to_string(row.index));
      }
      if (!assigned_here[row.index]) {
        throw std::runtime_error(shard_name + " returned spec index " +
                                 std::to_string(row.index) +
                                 " that was never assigned to it");
      }
      if (returned_here[row.index]) {
        throw std::runtime_error(shard_name + " returned spec index " +
                                 std::to_string(row.index) + " twice");
      }
      returned_here[row.index] = true;
      if (!(row.row.spec == specs[row.index])) {
        throw std::runtime_error(
            shard_name + " returned spec '" + row.row.spec.ToString() +
            "' for index " + std::to_string(row.index) +
            " where the plan scattered '" + specs[row.index].ToString() +
            "' (shard file / worker version skew?)");
      }
      // Keep every gathered row, even from a failed attempt: resume is
      // exact, the retry covers only what is still missing.
      collected[row.index] = std::make_unique<SpecResult>(row.row);
    }

    std::vector<std::size_t> missing;
    for (const std::size_t index : unit.indices) {
      if (!returned_here[index]) missing.push_back(index);
    }
    if (missing.empty()) return;  // unit complete (exit status is moot: data is)

    // Describe this failure once; retries, quarantine records, and the
    // fail-fast error all reuse it.
    std::string why;
    if (launch.hang_killed) {
      why = "hang timeout: no output activity for " +
            std::to_string(options_.shard_timeout_s) + "s (killed)";
    } else if (!outcome.clean) {
      why = outcome.status;
    } else if (outcome.torn_final_line) {
      why = "torn final result line (worker killed mid-write); dropped " +
            std::to_string(missing.size()) + " of " +
            std::to_string(unit.indices.size()) + " assigned rows (spec indices " +
            FormatIndexList(missing) + ")";
    } else {
      why = "dropped " + std::to_string(missing.size()) + " of " +
            std::to_string(unit.indices.size()) + " assigned rows (spec indices " +
            FormatIndexList(missing) + ")";
    }

    if (unit.attempts_used < options_.retry.max_attempts) {
      // Retry: re-scatter only the missing indices after backoff.
      const double backoff =
          BackoffSeconds(options_.retry, unit.origin_shard, unit.attempts_used + 1);
      pending.push_back(WorkUnit{
          unit.origin_shard, std::move(missing), unit.attempts_used,
          Clock::now() + std::chrono::duration_cast<Clock::duration>(
                             std::chrono::duration<double>(backoff))});
      last_report_.retries += 1;
      return;
    }

    // Attempt budget exhausted.
    const bool isolate = missing.size() > 1 &&
                         (options_.retry.max_attempts > 1 || options_.best_effort);
    if (isolate) {
      // Bisect to find which cell(s) actually poison the unit; halves get
      // a fresh budget (the tree is log-deep, so total work stays bounded).
      const std::size_t half = missing.size() / 2;
      std::vector<std::size_t> lo(missing.begin(), missing.begin() + half);
      std::vector<std::size_t> hi(missing.begin() + half, missing.end());
      pending.push_back(WorkUnit{unit.origin_shard, std::move(lo), 0, Clock::now()});
      pending.push_back(WorkUnit{unit.origin_shard, std::move(hi), 0, Clock::now()});
      last_report_.bisections += 1;
      return;
    }
    if (options_.best_effort) {
      for (const std::size_t index : missing) {
        last_report_.quarantined.push_back(
            FabricCellError{index, specs[index].ToString(), why});
      }
      return;
    }
    // Fail fast, naming the shard — and the isolated poison cell when
    // bisection narrowed it down to one.
    std::string message = shard_name + " " + why;
    if (missing.size() == 1) {
      message += " — isolated poison cell: spec index " + std::to_string(missing[0]) +
                 " ('" + specs[missing[0]].ToString() + "')";
    }
    if (unit.attempts_used > 1) {
      message += " [after " + std::to_string(unit.attempts_used) + " attempts]";
    }
    throw std::runtime_error(message);
  };

  try {
    while (!pending.empty() || !running.empty()) {
      const Clock::time_point now = Clock::now();
      bool progressed = false;

      // Dispatch every pending unit whose backoff elapsed, capacity
      // allowing — units go to whichever slot the transport has idle.
      for (std::size_t i = 0; i < pending.size() && running.size() < max_parallel;) {
        if (pending[i].ready_at > now) {
          ++i;
          continue;
        }
        WorkUnit unit = std::move(pending[i]);
        pending.erase(pending.begin() + static_cast<std::ptrdiff_t>(i));
        last_report_.workers_launched += 1;
        last_report_.cells_scattered += unit.indices.size();
        last_report_.launches_per_shard[unit.origin_shard] += 1;
        Running launch;
        launch.task = transport->Launch(unit.indices, specs, unit.origin_shard,
                                        unit.attempts_used + 1);
        launch.unit = std::move(unit);
        launch.last_activity = Clock::now();
        launch.last_bytes = 0;
        running.push_back(std::move(launch));
        progressed = true;
      }

      // Reap finished units; watch the rest for output stalls.
      for (std::size_t i = 0; i < running.size();) {
        Running& launch = running[i];
        if (launch.task->Poll()) {
          Running done = std::move(launch);
          running.erase(running.begin() + static_cast<std::ptrdiff_t>(i));
          handle_exit(done);
          progressed = true;
          continue;
        }
        if (options_.shard_timeout_s > 0.0 && !launch.hang_killed) {
          const std::uint64_t bytes = launch.task->activity();
          if (bytes != launch.last_bytes) {
            launch.last_bytes = bytes;
            launch.last_activity = now;
          } else if (now - launch.last_activity >
                     std::chrono::duration_cast<Clock::duration>(
                         std::chrono::duration<double>(options_.shard_timeout_s))) {
            launch.task->Kill();  // the next Poll() observes the kill
            launch.hang_killed = true;
            last_report_.hang_kills += 1;
          }
        }
        ++i;
      }

      if (!progressed) {
        std::this_thread::sleep_for(std::chrono::duration<double>(poll_s));
      }
    }
  } catch (...) {
    // Stop every still-running unit before surfacing the failure — no
    // zombies, and the scratch dir stays for inspection.
    for (Running& launch : running) launch.task->Kill();
    throw;
  }

  std::sort(last_report_.quarantined.begin(), last_report_.quarantined.end(),
            [](const FabricCellError& a, const FabricCellError& b) {
              return a.spec_index < b.spec_index;
            });

  // Merge: healthy rows flow to the sink in canonical spec order;
  // quarantined indices are simply absent (the report names them).
  std::vector<bool> quarantined_index(specs.size(), false);
  for (const FabricCellError& cell : last_report_.quarantined) {
    quarantined_index[cell.spec_index] = true;
  }
  std::vector<SpecResult> rows(specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    if (collected[i] == nullptr) {
      if (!quarantined_index[i]) {
        throw std::runtime_error("ShardedRunner: internal accounting error: spec index " +
                                 std::to_string(i) +
                                 " neither gathered nor quarantined");
      }
      continue;
    }
    rows[i] = *collected[i];
    if (sink != nullptr) sink->OnResult(i, rows[i]);
    last_report_.rows_merged += 1;
  }

  if (own_work_dir && !options_.keep_work_dir && last_report_.complete()) {
    RemoveTreeBestEffort(work_dir);
  }
  return rows;
}

}  // namespace hs
