#include "exp/sharded_runner.h"

#include <filesystem>
#include <stdexcept>
#include <utility>

#include "exp/shard_io.h"
#include "util/file_util.h"
#include "util/subprocess.h"

namespace hs {

namespace {

std::string ShardPath(const std::string& dir, std::size_t shard, const char* suffix) {
  return dir + "/shard_" + std::to_string(shard) + suffix;
}

/// The tail of a worker's stderr capture, for error messages.
std::string StderrTail(const std::string& path, std::size_t max_bytes = 2000) {
  std::string text;
  try {
    text = ReadTextFile(path);
  } catch (const std::exception&) {
    return "<no stderr captured>";
  }
  while (!text.empty() && (text.back() == '\n' || text.back() == '\r')) text.pop_back();
  if (text.empty()) return "<empty stderr>";
  if (text.size() > max_bytes) text = "..." + text.substr(text.size() - max_bytes);
  return text;
}

/// Collects every row of one shard's output, enforcing that the shard
/// returned exactly its assigned indices with the specs it was given.
void GatherShard(std::size_t shard, const std::string& out_path,
                 const std::vector<std::size_t>& assigned,
                 const std::vector<SimSpec>& specs,
                 std::vector<IndexedSpecResult>* gathered) {
  const std::vector<IndexedSpecResult> rows = ReadWorkerRows(out_path);
  std::vector<bool> assigned_here(specs.size(), false);
  for (const std::size_t index : assigned) assigned_here[index] = true;
  std::vector<bool> returned_here(specs.size(), false);
  for (const IndexedSpecResult& row : rows) {
    if (row.index >= specs.size()) {
      throw std::runtime_error("shard " + std::to_string(shard) +
                               " returned out-of-range spec index " +
                               std::to_string(row.index));
    }
    if (!assigned_here[row.index]) {
      throw std::runtime_error("shard " + std::to_string(shard) +
                               " returned spec index " + std::to_string(row.index) +
                               " that was never assigned to it");
    }
    if (returned_here[row.index]) {
      throw std::runtime_error("shard " + std::to_string(shard) +
                               " returned spec index " + std::to_string(row.index) +
                               " twice");
    }
    returned_here[row.index] = true;
    if (!(row.row.spec == specs[row.index])) {
      throw std::runtime_error(
          "shard " + std::to_string(shard) + " returned spec '" +
          row.row.spec.ToString() + "' for index " + std::to_string(row.index) +
          " where the plan scattered '" + specs[row.index].ToString() +
          "' (shard file / worker version skew?)");
    }
  }
  std::vector<std::size_t> missing;
  for (const std::size_t index : assigned) {
    if (!returned_here[index]) missing.push_back(index);
  }
  if (!missing.empty()) {
    throw std::runtime_error("shard " + std::to_string(shard) + " dropped " +
                             std::to_string(missing.size()) + " of " +
                             std::to_string(assigned.size()) +
                             " assigned rows (spec indices " +
                             FormatIndexList(missing) + ")");
  }
  gathered->insert(gathered->end(), rows.begin(), rows.end());
}

/// Adapter collecting the ordered rows while forwarding to the caller's
/// sink (which may be null).
class CollectingSink final : public ResultSink {
 public:
  CollectingSink(std::vector<SpecResult>* rows, ResultSink* forward)
      : rows_(rows), forward_(forward) {}
  void OnResult(std::size_t spec_index, const SpecResult& row) override {
    (*rows_)[spec_index] = row;
    if (forward_ != nullptr) forward_->OnResult(spec_index, row);
  }

 private:
  std::vector<SpecResult>* rows_;
  ResultSink* forward_;
};

}  // namespace

std::string DefaultWorkerCommand() {
  const std::string dir = SelfExeDir();
  return dir.empty() ? std::string("hs_worker") : dir + "/hs_worker";
}

ShardedRunner::ShardedRunner(ShardedRunnerOptions options)
    : options_(std::move(options)) {}

std::vector<SpecResult> ShardedRunner::Run(const std::vector<SimSpec>& specs,
                                           ResultSink* sink) {
  for (const SimSpec& spec : specs) {
    const std::string error = spec.Validate();
    if (!error.empty()) {
      throw std::invalid_argument("invalid spec '" + spec.ToString() + "': " + error);
    }
  }
  last_plan_ = MakeShardPlan(specs, options_.shards, options_.strategy);
  if (specs.empty()) return {};

  const std::string worker =
      options_.worker_cmd.empty() ? DefaultWorkerCommand() : options_.worker_cmd;

  const bool own_work_dir = options_.work_dir.empty();
  std::string work_dir = options_.work_dir;
  if (own_work_dir) {
    work_dir = MakeTempDir("hs-shards-");
  } else {
    std::filesystem::create_directories(work_dir);
  }

  // Scatter: write every shard file and build every command line before
  // the first spawn, so nothing that can throw sits between forks — and
  // spawned children are always reaped (Wait) before any failure is
  // raised, even if the spawn loop itself throws.
  std::vector<std::vector<std::string>> argvs;
  argvs.reserve(last_plan_.shard_count());
  for (std::size_t k = 0; k < last_plan_.shard_count(); ++k) {
    WriteShardFileAt(ShardPath(work_dir, k, ".specs"), last_plan_.shards[k], specs);
    std::vector<std::string> argv = {worker,
                                     "--shard=" + ShardPath(work_dir, k, ".specs"),
                                     "--out=" + ShardPath(work_dir, k, ".jsonl")};
    if (options_.worker_threads > 0) {
      argv.push_back("--threads=" + std::to_string(options_.worker_threads));
    }
    argvs.push_back(std::move(argv));
  }
  std::vector<Subprocess> workers;
  workers.reserve(last_plan_.shard_count());
  std::vector<ProcessStatus> statuses;
  statuses.reserve(last_plan_.shard_count());
  try {
    for (std::size_t k = 0; k < argvs.size(); ++k) {
      workers.push_back(Subprocess::Spawn(argvs[k], ShardPath(work_dir, k, ".stdout"),
                                          ShardPath(work_dir, k, ".stderr")));
    }
    for (Subprocess& child : workers) statuses.push_back(child.Wait());
  } catch (...) {
    for (Subprocess& child : workers) child.Wait();  // no zombies
    throw;
  }

  // Gather + merge. Any throw from here on leaves the scratch dir in place
  // (shard files, partial outputs, stderr captures) for inspection.
  std::vector<SpecResult> rows(specs.size());
  for (std::size_t k = 0; k < statuses.size(); ++k) {
    if (!statuses[k].ok()) {
      throw std::runtime_error(
          "shard " + std::to_string(k) + " worker ('" + worker + "') failed: " +
          statuses[k].Describe() +
          "; stderr: " + StderrTail(ShardPath(work_dir, k, ".stderr")));
    }
  }
  std::vector<IndexedSpecResult> gathered;
  gathered.reserve(specs.size());
  for (std::size_t k = 0; k < last_plan_.shard_count(); ++k) {
    GatherShard(k, ShardPath(work_dir, k, ".jsonl"), last_plan_.shards[k], specs,
                &gathered);
  }
  // Feed rows in gather order (arbitrary) through the merging sink, which
  // restores canonical spec order for the caller's sink.
  CollectingSink collector(&rows, sink);
  MergingResultSink merger(collector, specs.size());
  for (const IndexedSpecResult& row : gathered) merger.OnResult(row.index, row.row);
  merger.Finish();

  if (own_work_dir && !options_.keep_work_dir) RemoveTreeBestEffort(work_dir);
  return rows;
}

}  // namespace hs
