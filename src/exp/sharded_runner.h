// ShardedRunner: ExperimentRunner's spec-vector contract, executed across
// worker processes.
//
// The orchestrator partitions the specs with a deterministic ShardPlan,
// scatters one shard file per worker (shard_io.h), spawns one hs_worker
// process per shard, gathers the per-shard JSONL result streams, and
// merges them back into canonical spec order through a MergingResultSink —
// so the merged output (CSV bytes included) is byte-identical to a
// single-process ExperimentRunner run on every simulation-content column,
// regardless of which worker or thread finished first.
//
// Failure surfacing is part of the contract: a worker that exits non-zero,
// dies on a signal, or drops rows (crashed mid-shard) turns into a
// std::runtime_error naming the shard, the observed status/stderr, and the
// missing spec indices. The scratch directory is kept on failure so the
// shard files and partial outputs can be inspected.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "exp/runner.h"
#include "exp/shard_plan.h"
#include "exp/sim_spec.h"

namespace hs {

struct ShardedRunnerOptions {
  /// Worker processes to scatter across (clamped to the spec count).
  std::size_t shards = 2;
  ShardStrategy strategy = ShardStrategy::kCostWeighted;
  /// Path of the worker binary; empty uses DefaultWorkerCommand() (the
  /// hs_worker next to the current executable).
  std::string worker_cmd;
  /// Threads per worker, forwarded as --threads (0: worker default, one
  /// thread per core — oversubscribes when shards > 1; set explicitly for
  /// benchmarking).
  int worker_threads = 0;
  /// Scratch directory for shard files and worker output. Empty: a fresh
  /// temp dir, removed after a fully successful merge. A caller-provided
  /// directory is created if needed and always kept.
  std::string work_dir;
  /// Keep the scratch directory even on success (debugging).
  bool keep_work_dir = false;
};

class ShardedRunner {
 public:
  explicit ShardedRunner(ShardedRunnerOptions options = {});

  /// Same contract as ExperimentRunner::Run — validates every spec up
  /// front (std::invalid_argument), returns rows in spec order, streams
  /// each row to `sink` — but rows arrive through worker processes and the
  /// sink always sees them in canonical spec order (the merge reorders).
  /// Throws std::runtime_error when a shard fails or drops rows.
  std::vector<SpecResult> Run(const std::vector<SimSpec>& specs,
                              ResultSink* sink = nullptr);

  /// The partition used by the last Run (for logging/tests).
  const ShardPlan& last_plan() const { return last_plan_; }

 private:
  ShardedRunnerOptions options_;
  ShardPlan last_plan_;
};

/// Absolute path of the hs_worker expected next to the current executable
/// (SelfExeDir() + "/hs_worker").
std::string DefaultWorkerCommand();

}  // namespace hs
