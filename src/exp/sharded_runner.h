// ShardedRunner: ExperimentRunner's spec-vector contract, executed across
// worker processes — with a fault-tolerant fabric underneath.
//
// The orchestrator partitions the specs with a deterministic ShardPlan,
// scatters one shard file per worker (shard_io.h), spawns one hs_worker
// process per shard, gathers the per-shard JSONL result streams, and
// merges them back into canonical spec order — so the merged output (CSV
// bytes included) is byte-identical to a single-process ExperimentRunner
// run on every simulation-content column, regardless of which worker or
// thread finished first, and regardless of how many workers died, hung,
// or dropped rows along the way:
//
//   retry/respawn  a worker that exits non-zero, dies on a signal, tears
//                  its final row, or drops rows is respawned with a fresh
//                  shard file holding *only the missing spec indices*
//                  (rows already gathered are kept — the wire format's
//                  spec-index tagging makes resume exact), after an
//                  exponential backoff with deterministic seed-derived
//                  jitter (RetryPolicy).
//   hang detection hs_worker emits `# hs-progress` heartbeats on stderr;
//                  the orchestrator watches the redirected stderr/out
//                  files for growth and SIGKILLs any worker whose output
//                  stalls past `shard_timeout_s`, then retries it like
//                  any other death.
//   quarantine     a unit that keeps failing is bisected until the
//                  poison cell(s) are isolated. Under `best_effort` each
//                  poison cell becomes a structured error record (spec
//                  index + spec string + captured stderr) in the
//                  FabricReport while every healthy cell still reaches
//                  the sink; without `best_effort` the run stays
//                  fail-fast, but the error names the isolated cell.
//
// Failure surfacing is part of the contract: in fail-fast mode a terminal
// failure turns into a std::runtime_error naming the shard, the observed
// status/stderr, and the missing spec indices. The scratch directory is
// kept whenever anything went unhealed (failure or quarantine) so shard
// files and partial outputs can be inspected.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "exp/runner.h"
#include "exp/shard_plan.h"
#include "exp/sim_spec.h"

namespace hs {

/// Per-work-unit respawn budget and backoff shape. Attempt n of a unit
/// (n >= 2) starts backoff_initial_s * multiplier^(n-2) seconds (capped at
/// backoff_max_s) after its predecessor failed, stretched by a
/// deterministic jitter in [0, jitter_frac] derived from (jitter_seed,
/// origin shard, attempt) — so chaos tests replay the same schedule.
struct RetryPolicy {
  /// Worker launches per work unit before it is declared failed (1 =
  /// fail on the first death, the pre-fabric behavior).
  int max_attempts = 1;
  double backoff_initial_s = 0.05;
  double backoff_multiplier = 2.0;
  double backoff_max_s = 2.0;
  /// Max jitter as a fraction of the base backoff (0 disables).
  double jitter_frac = 0.25;
  std::uint64_t jitter_seed = 0;
};

/// One quarantined poison cell: which cell, what it was, why it failed.
struct FabricCellError {
  std::size_t spec_index = 0;
  std::string spec;    // canonical spec string
  std::string reason;  // last observed status + captured stderr tail
};

/// What the fabric did to finish (or give up on) the last Run: retry
/// overhead, hang kills, bisections, and the quarantine list. Exposed so
/// front-ends can print it next to the results — wasted work should be
/// visible, never silent.
struct FabricReport {
  std::size_t shard_count = 0;       // original plan width
  std::size_t workers_launched = 0;  // every spawn, incl. retries/bisections
  std::size_t retries = 0;           // respawns of a unit past its 1st attempt
  std::size_t bisections = 0;        // failing units split to isolate poison
  std::size_t hang_kills = 0;        // workers killed by the inactivity timeout
  std::size_t cells_scattered = 0;   // cell slots across every launch
  std::size_t rows_merged = 0;       // healthy rows that reached the sink
  /// Dispatches that never reached an executor (dead host, refused or
  /// dropped handshake). These consume no retry attempts and leave no
  /// launch/cell accounting behind — the unit was simply re-queued.
  std::size_t conn_failures = 0;
  /// Transport label of the last Run ("local-exec (3 slots)", "tcp (...)").
  std::string transport;
  /// Worker launches per original plan shard (retries and bisected
  /// descendants count toward their origin shard).
  std::vector<std::size_t> launches_per_shard;
  /// Poison cells (best_effort only), ascending by spec index.
  std::vector<FabricCellError> quarantined;

  /// True when every cell produced a row (nothing quarantined).
  bool complete() const { return quarantined.empty(); }
  /// Cell executions that produced no merged row (scattered - merged):
  /// the price paid for faults.
  std::size_t wasted_cells() const {
    return cells_scattered >= rows_merged ? cells_scattered - rows_merged : 0;
  }
  /// Human-readable multi-line block for bench/CLI output.
  std::string Summary() const;
};

struct ShardedRunnerOptions {
  /// Worker processes to scatter across (clamped to the spec count); also
  /// the cap on concurrently running workers while retrying.
  std::size_t shards = 2;
  ShardStrategy strategy = ShardStrategy::kCostWeighted;
  /// Path of the worker binary; empty uses DefaultWorkerCommand() (the
  /// hs_worker next to the current executable).
  std::string worker_cmd;
  /// Threads per worker, forwarded as --threads (0: worker default, one
  /// thread per core — oversubscribes when shards > 1; set explicitly for
  /// benchmarking).
  int worker_threads = 0;
  /// Scratch directory for shard files and worker output. Empty: a fresh
  /// temp dir, removed after a fully successful merge. A caller-provided
  /// directory is created if needed and always kept.
  std::string work_dir;
  /// Keep the scratch directory even on success (debugging).
  bool keep_work_dir = false;
  /// Respawn budget and backoff for failed workers.
  RetryPolicy retry;
  /// Hang detection: SIGKILL a worker whose stderr/out files stop growing
  /// for this long, then retry it (0 disables; must exceed the longest
  /// single cell, since heartbeats fire per completed cell).
  double shard_timeout_s = 0.0;
  /// Cadence of the poll/heartbeat-watch loop.
  double poll_interval_s = 0.02;
  /// Degrade gracefully: quarantine isolated poison cells into the
  /// FabricReport and deliver every healthy row, instead of throwing.
  bool best_effort = false;
  /// Comma-separated `host:port` hs_agent endpoints. Empty (default) runs
  /// workers locally via fork/exec; non-empty switches to the TCP
  /// transport: one concurrency slot per agent, units drained
  /// work-stealing style by whichever agent is idle, and a dead
  /// connection treated as a dead worker (the unit is re-queued
  /// elsewhere without consuming a retry attempt).
  std::string hosts;
  /// TCP transport only: per-connect + greeting deadline.
  double connect_timeout_s = 5.0;
};

class ShardedRunner {
 public:
  explicit ShardedRunner(ShardedRunnerOptions options = {});

  /// Same contract as ExperimentRunner::Run — validates every spec up
  /// front (std::invalid_argument), returns rows in spec order, streams
  /// each row to `sink` — but rows arrive through worker processes and the
  /// sink always sees them in canonical spec order (the merge reorders).
  ///
  /// Fail-fast mode (default): throws std::runtime_error when a shard
  /// exhausts its retry budget or drops rows, naming the shard and (after
  /// bisection) the isolated poison cell. best_effort mode: never throws
  /// for unhealthy cells — the sink receives every healthy row in order
  /// (quarantined indices are simply absent), the returned vector holds
  /// default-constructed rows at quarantined positions, and last_report()
  /// lists exactly which cells were quarantined and why.
  std::vector<SpecResult> Run(const std::vector<SimSpec>& specs,
                              ResultSink* sink = nullptr);

  /// The partition used by the last Run (for logging/tests).
  const ShardPlan& last_plan() const { return last_plan_; }

  /// Retry/quarantine accounting of the last Run.
  const FabricReport& last_report() const { return last_report_; }

 private:
  ShardedRunnerOptions options_;
  ShardPlan last_plan_;
  FabricReport last_report_;
};

/// Absolute path of the hs_worker expected next to the current executable
/// (SelfExeDir() + "/hs_worker").
std::string DefaultWorkerCommand();

}  // namespace hs
