// Parallel experiment harness.
//
// Every (trace, configuration) cell is an independent simulation, so sweeps
// run across a thread pool with one deterministic RNG stream per trace
// (the hpc-parallel idiom: parallelize across independent work items,
// share nothing, aggregate at the end).
#pragma once

#include <cstdint>
#include <vector>

#include "core/hybrid_scheduler.h"
#include "exp/scenario.h"
#include "util/thread_pool.h"

namespace hs {

/// Builds `seeds` scenario traces (seed = base_seed + i) in parallel.
std::vector<Trace> BuildTraces(const ScenarioConfig& config, int seeds,
                               std::uint64_t base_seed, ThreadPool& pool);

/// Runs every config against every trace in parallel.
/// result[c][t] is the SimResult of configs[c] on traces[t].
std::vector<std::vector<SimResult>> RunGrid(const std::vector<Trace>& traces,
                                            const std::vector<HybridConfig>& configs,
                                            ThreadPool& pool);

/// Field-wise arithmetic mean of per-seed results.
SimResult MeanResult(const std::vector<SimResult>& results);

}  // namespace hs
