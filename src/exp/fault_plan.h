// FaultPlan: deterministic fault injection for the sharded experiment
// fabric. hs_worker honors the worker-level tokens and hs_agent the
// network-level ones, both from the HS_FAULT environment variable, so
// chaos is reproducible: the same plan against the same grid injects the
// same fault at the same cell, in unit tests and CI alike.
//
// Grammar — ';'-separated tokens, each `key=value` or a bare flag:
//
//   crash-before-cell=N   die instead of emitting the row for global spec
//                         index N (exit-code / signal selects how)
//   hang-at-cell=N        wedge forever instead of emitting the row for
//                         global spec index N (no heartbeats, no rows —
//                         only the orchestrator's inactivity timeout ends it)
//   drop-every=K          silently skip writing every K-th completed row
//                         (the worker still exits 0: a torn gather)
//   exit-code=C           exit code used by crash-before-cell (default 70)
//   signal=S              die by raise(S) instead of _exit (e.g. 9)
//   torn-final-line       crash-before-cell first writes a truncated
//                         prefix of the pending row (killed mid-write)
//   attempts=M            inject only while the worker's --attempt <= M
//                         (default 1: the fault heals on the first retry;
//                         a large M makes the cell a permanent poison cell)
//
// Network tokens, honored by hs_agent (the TCP transport daemon) and
// ignored by hs_worker — each fires when the agent is about to forward
// the result row for global spec index N:
//
//   drop-conn-at-cell=N   close the orchestrator connection instead of
//                         forwarding row N (the local worker is killed)
//   kill-agent-at-cell=N  the agent raise(SIGKILL)s itself — a dead host:
//                         every later connect to it is refused
//   torn-frame-at-cell=N  send half of row N's frame with no newline,
//                         then drop the connection (a torn wire write)
//   stall-at-cell=N       stop forwarding anything but keep the
//                         connection open — only the orchestrator's
//                         inactivity monitor ends the unit
//
// Example: "crash-before-cell=5;exit-code=3;torn-final-line;attempts=1".
#pragma once

#include <string>

namespace hs {

struct FaultPlan {
  long long crash_before_cell = -1;  // global spec index; -1 = off
  long long hang_at_cell = -1;       // global spec index; -1 = off
  int drop_every = 0;                // 0 = off
  int exit_code = 70;                // crash-before-cell exit status
  int signal = 0;                    // 0 = _exit(exit_code); else raise(signal)
  bool torn_final_line = false;
  int attempts = 1;                  // inject while attempt <= attempts

  // Network faults (hs_agent only); all keyed by global spec index, -1 = off.
  long long drop_conn_at_cell = -1;
  long long kill_agent_at_cell = -1;
  long long torn_frame_at_cell = -1;
  long long stall_at_cell = -1;

  /// True when any fault is armed at all.
  bool any() const {
    return crash_before_cell >= 0 || hang_at_cell >= 0 || drop_every > 0 ||
           drop_conn_at_cell >= 0 || kill_agent_at_cell >= 0 ||
           torn_frame_at_cell >= 0 || stall_at_cell >= 0;
  }

  /// True when the plan applies to a worker on its `attempt`-th try (1-based).
  bool ActiveOn(int attempt) const { return any() && attempt <= attempts; }

  /// Canonical text form; ParseFaultPlan(ToString()) round-trips. Empty for
  /// a default (fault-free) plan.
  std::string ToString() const;
};

/// Parses the HS_FAULT grammar above; throws std::invalid_argument naming
/// the offending token. An empty string is the fault-free plan.
FaultPlan ParseFaultPlan(const std::string& text);

/// The plan in $HS_FAULT (fault-free when unset/empty). Throws like
/// ParseFaultPlan on a malformed value — a typo'd chaos schedule must fail
/// loudly, not run a clean grid that "passes".
FaultPlan FaultPlanFromEnv();

}  // namespace hs
