#include "exp/fixtures.h"

#include <stdexcept>

namespace hs::test {

EngineSandbox::EngineSandbox(Trace trace, EngineConfig config,
                             SimTime instant_threshold)
    : trace_(std::move(trace)),
      sim_(*this),
      collector_(instant_threshold),
      engine_(trace_, config, collector_, sim_) {}

void EngineSandbox::HandleEvent(const Event& event, Simulator&) {
  engine_.cluster().Touch(event.time);
  switch (event.kind) {
    case EventKind::kJobFinish:
      engine_.FinishRunning(event.job, event.time);
      break;
    case EventKind::kJobKill:
      engine_.KillAtEstimate(event.job, event.time);
      break;
    case EventKind::kWarningExpire:
      engine_.CompleteDrain(event.job, event.time);
      break;
    case EventKind::kJobSubmit:
      engine_.EnqueueFresh(event.job, event.time);
      break;
    default:
      break;
  }
}

void EngineSandbox::OnQuiescent(SimTime now, Simulator&) {
  if (auto_schedule) engine_.RunSchedulingPass(now);
}

LoadedEngine::LoadedEngine(int n)
    : trace_(MakeTrace(n)),
      sim_(*this),
      collector_(),
      engine_(trace_, Config(), collector_, sim_) {
  for (int i = 0; i < n; ++i) {
    engine_.EnqueueFresh(i, 0);
    const bool ok = engine_.StartWaiting(i, trace_.jobs[static_cast<std::size_t>(i)].size, 0);
    if (!ok) throw std::runtime_error("LoadedEngine: machine too small");
  }
}

void LoadedEngine::HandleEvent(const Event&, Simulator&) {}
void LoadedEngine::OnQuiescent(SimTime, Simulator&) {}

EngineConfig LoadedEngine::Config() {
  EngineConfig config;
  config.checkpoint.node_mtbf = 1000LL * 365 * kDay;
  return config;
}

Trace LoadedEngine::MakeTrace(int n) {
  Trace trace;
  trace.num_nodes = n * 16;
  for (int i = 0; i < n; ++i) {
    JobRecord rec;
    rec.id = i;
    rec.klass = (i % 2 == 0) ? JobClass::kRigid : JobClass::kMalleable;
    rec.size = 16;
    rec.min_size = rec.is_malleable() ? 4 : 16;
    rec.compute_time = 10000 + i;
    rec.setup_time = 100;
    rec.estimate = 30000;
    trace.jobs.push_back(rec);
  }
  return trace;
}

}  // namespace hs::test
