// Metric plumbing for the paper-reproduction benches: named metric
// extraction from SimResult (the panels of Fig. 6 / Fig. 7) and helpers for
// assembling mechanism x workload grids.
#pragma once

#include <string>
#include <vector>

#include "metrics/collector.h"

namespace hs {

enum class MetricKind {
  kAvgTurnaroundH,
  kRigidTurnaroundH,
  kMalleableTurnaroundH,
  kOdTurnaroundH,
  kUtilization,
  kOdInstantRate,
  kRigidPreemptRatio,
  kMalleablePreemptRatio,
};

const char* MetricName(MetricKind kind);
bool MetricIsPercent(MetricKind kind);
double ExtractMetric(const SimResult& result, MetricKind kind);

/// The Fig. 6 panels in presentation order.
const std::vector<MetricKind>& Fig6Metrics();

}  // namespace hs
