#include "exp/transport.h"

#include <stdexcept>
#include <sys/stat.h>
#include <utility>

#include "util/file_util.h"
#include "util/socket.h"
#include "util/subprocess.h"

namespace hs {

namespace {

/// The tail of a worker's stderr capture, for error messages and
/// quarantine records.
std::string StderrTailOf(const std::string& text_in, std::size_t max_bytes = 2000) {
  std::string text = text_in;
  while (!text.empty() && (text.back() == '\n' || text.back() == '\r')) text.pop_back();
  if (text.empty()) return "<empty stderr>";
  if (text.size() > max_bytes) text = "..." + text.substr(text.size() - max_bytes);
  return text;
}

std::string StderrTailOfFile(const std::string& path) {
  try {
    return StderrTailOf(ReadTextFile(path));
  } catch (const std::exception&) {
    return "<no stderr captured>";
  }
}

/// Combined size of a launch's output files — growth means the worker is
/// alive (rows or heartbeats), stall past the timeout means it is wedged.
std::uint64_t OutputBytes(const std::string& out_path, const std::string& err_path) {
  std::uint64_t total = 0;
  struct stat st;
  if (::stat(out_path.c_str(), &st) == 0) total += static_cast<std::uint64_t>(st.st_size);
  if (::stat(err_path.c_str(), &st) == 0) total += static_cast<std::uint64_t>(st.st_size);
  return total;
}

bool StartsWith(const std::string& text, const char* prefix) {
  return text.rfind(prefix, 0) == 0;
}

// --- local fork/exec ---------------------------------------------------------

class LocalExecTask final : public TransportTask {
 public:
  LocalExecTask(Subprocess proc, std::string worker_cmd, std::string out_path,
                std::string err_path)
      : proc_(std::move(proc)),
        worker_cmd_(std::move(worker_cmd)),
        out_path_(std::move(out_path)),
        err_path_(std::move(err_path)) {}

  ~LocalExecTask() override {
    // Defensive reap: normally Take() (via Wait) or Kill() reaped already;
    // exception unwinds must not trip the Subprocess zombie assert.
    if (proc_.running()) {
      proc_.Kill();
      proc_.Wait();
    }
  }

  bool Poll() override { return proc_.Poll(); }

  std::uint64_t activity() override { return OutputBytes(out_path_, err_path_); }

  void Kill() override {
    proc_.Kill();  // SIGKILL; Wait() reaps promptly so Poll() turns true
    proc_.Wait();
  }

  TransportOutcome Take() override {
    TransportOutcome outcome;
    const ProcessStatus status = proc_.Wait();
    const WorkerRowsRead read = ReadWorkerRowsTolerant(out_path_);
    outcome.rows = read.rows;
    outcome.torn_final_line = read.torn_final_line;
    outcome.clean = status.ok();
    if (!outcome.clean) {
      outcome.status = "worker ('" + worker_cmd_ + "') failed: " +
                       status.Describe() + "; stderr: " + StderrTailOfFile(err_path_);
    }
    return outcome;
  }

 private:
  Subprocess proc_;
  std::string worker_cmd_;
  std::string out_path_;
  std::string err_path_;
};

/// A launch that failed before reaching any executor: immediately finished
/// with an `infrastructure` outcome.
class FailedLaunchTask final : public TransportTask {
 public:
  explicit FailedLaunchTask(std::string status) {
    outcome_.infrastructure = true;
    outcome_.status = std::move(status);
  }
  bool Poll() override { return true; }
  std::uint64_t activity() override { return 0; }
  void Kill() override {}
  TransportOutcome Take() override { return outcome_; }

 private:
  TransportOutcome outcome_;
};

}  // namespace

// --- host list ---------------------------------------------------------------

std::vector<HostEndpoint> ParseHostList(const std::string& hosts) {
  std::vector<HostEndpoint> out;
  std::size_t pos = 0;
  while (pos <= hosts.size()) {
    const std::size_t comma = hosts.find(',', pos);
    std::string entry = hosts.substr(
        pos, comma == std::string::npos ? std::string::npos : comma - pos);
    pos = comma == std::string::npos ? hosts.size() + 1 : comma + 1;
    while (!entry.empty() && entry.front() == ' ') entry.erase(entry.begin());
    while (!entry.empty() && entry.back() == ' ') entry.pop_back();
    if (entry.empty()) {
      if (hosts.empty()) break;  // an empty list is "run locally"
      throw std::invalid_argument("host list: empty entry in '" + hosts + "'");
    }
    const std::size_t colon = entry.rfind(':');
    if (colon == std::string::npos || colon == 0 || colon + 1 == entry.size()) {
      throw std::invalid_argument("host list: entry '" + entry +
                                  "' is not host:port");
    }
    const std::string port_text = entry.substr(colon + 1);
    long port = 0;
    std::size_t parsed = 0;
    try {
      port = std::stol(port_text, &parsed);
    } catch (const std::exception&) {
      parsed = 0;
    }
    if (parsed != port_text.size() || port < 1 || port > 65535) {
      throw std::invalid_argument("host list: bad port in '" + entry +
                                  "' (want 1..65535)");
    }
    out.push_back(HostEndpoint{entry.substr(0, colon),
                               static_cast<std::uint16_t>(port)});
  }
  return out;
}

// --- LocalExecTransport ------------------------------------------------------

LocalExecTransport::LocalExecTransport(std::string work_dir, std::string worker_cmd,
                                       int worker_threads, std::size_t slots)
    : work_dir_(std::move(work_dir)),
      worker_cmd_(std::move(worker_cmd)),
      worker_threads_(worker_threads),
      slots_(slots == 0 ? 1 : slots) {}

std::string LocalExecTransport::Describe() const {
  return "local-exec (" + std::to_string(slots_) + " slots)";
}

std::unique_ptr<TransportTask> LocalExecTransport::Launch(
    const std::vector<std::size_t>& indices, const std::vector<SimSpec>& specs,
    std::size_t origin_shard, int attempt) {
  const std::string stem = work_dir_ + "/shard_" + std::to_string(origin_shard) +
                           "_L" + std::to_string(launch_seq_++);
  WriteShardFileAt(stem + ".specs", indices, specs);
  std::vector<std::string> argv = {worker_cmd_, "--shard=" + stem + ".specs",
                                   "--out=" + stem + ".jsonl",
                                   "--attempt=" + std::to_string(attempt)};
  if (worker_threads_ > 0) {
    argv.push_back("--threads=" + std::to_string(worker_threads_));
  }
  Subprocess proc = Subprocess::Spawn(argv, stem + ".stdout", stem + ".stderr");
  return std::make_unique<LocalExecTask>(std::move(proc), worker_cmd_,
                                         stem + ".jsonl", stem + ".stderr");
}

// --- TcpTransport ------------------------------------------------------------

/// One unit streaming back from an hs_agent. Single-threaded and
/// non-blocking: Poll() drains whatever lines have arrived; classification
/// of the terminal state mirrors the local file gather exactly.
class TcpTransportTask final : public TransportTask {
 public:
  TcpTransportTask(TcpTransport* transport, std::size_t slot_index, Socket sock)
      : transport_(transport), slot_index_(slot_index), sock_(std::move(sock)) {}

  ~TcpTransportTask() override {
    sock_.Close();
    Release();
  }

  bool Poll() override {
    if (finished_) return true;
    for (;;) {
      std::string line;
      RecvLineStatus status;
      try {
        status = sock_.RecvLineWithTimeout(0.0, &line);
      } catch (const std::exception& e) {
        FinishLost(std::string("connection error: ") + e.what());
        return true;
      }
      if (status == RecvLineStatus::kTimeout) return false;
      if (status == RecvLineStatus::kEof) {
        FinishLost("connection lost mid-unit (agent died or dropped the link)");
        return true;
      }
      activity_ += line.size() + 1;
      if (StartsWith(line, "row ")) {
        raw_rows_.push_back(line.substr(4));
      } else if (StartsWith(line, "# hs-progress")) {
        // Heartbeat: the activity bump above is its entire job.
      } else if (StartsWith(line, "log ")) {
        stderr_text_ += line.substr(4);
        stderr_text_ += '\n';
        constexpr std::size_t kMaxStderr = 64 * 1024;
        if (stderr_text_.size() > kMaxStderr) {
          stderr_text_.erase(0, stderr_text_.size() - kMaxStderr);
        }
      } else if (StartsWith(line, "done ")) {
        FinishDone(line.substr(5));
        return true;
      } else if (StartsWith(line, "err ")) {
        clean_ = false;
        fail_ = "agent " + Label() + " error: " + line.substr(4);
        Finish();
        return true;
      } else {
        // Unknown frame: keep it as a raw-row candidate. Take() classifies
        // a malformed FINAL row as a torn frame and a malformed earlier
        // row as version skew — the same rule the file gather applies.
        raw_rows_.push_back(line);
      }
    }
  }

  std::uint64_t activity() override { return activity_; }

  void Kill() override {
    if (finished_) return;
    clean_ = false;
    fail_ = "agent " + Label() + ": unit killed by the orchestrator";
    sock_.Close();  // the agent sees the hangup and kills its worker
    Finish();
  }

  TransportOutcome Take() override {
    TransportOutcome outcome;
    outcome.clean = clean_ && done_seen_;
    outcome.status = fail_;
    for (std::size_t i = 0; i < raw_rows_.size(); ++i) {
      try {
        outcome.rows.push_back(ParseWorkerRow(raw_rows_[i]));
      } catch (const std::exception& e) {
        if (i + 1 == raw_rows_.size()) {
          outcome.torn_final_line = true;  // killed mid-write on the wire
          break;
        }
        throw std::runtime_error("agent " + Label() +
                                 " sent a malformed result row mid-stream (" +
                                 e.what() + "): " + raw_rows_[i]);
      }
    }
    return outcome;
  }

 private:
  std::string Label() const {
    return transport_->agents_[slot_index_].endpoint.Label();
  }

  std::string StderrTail() const {
    return stderr_text_.empty() ? "<empty stderr>" : StderrTailOf(stderr_text_);
  }

  void FinishDone(const std::string& status_text) {
    done_seen_ = true;
    // "exit=C" or "signal=S".
    std::string describe = status_text;
    bool ok = false;
    if (StartsWith(status_text, "exit=")) {
      describe = "exit " + status_text.substr(5);
      ok = status_text == "exit=0";
    } else if (StartsWith(status_text, "signal=")) {
      describe = "signal " + status_text.substr(7);
    }
    clean_ = ok;
    if (!ok) {
      fail_ = "agent " + Label() + ": worker failed: " + describe +
              "; stderr: " + StderrTail();
    }
    Finish();
  }

  void FinishLost(const std::string& how) {
    clean_ = false;
    fail_ = "agent " + Label() + " " + how + "; stderr: " + StderrTail();
    Finish();
  }

  void Finish() {
    finished_ = true;
    Release();
  }

  void Release() {
    if (released_) return;
    released_ = true;
    transport_->agents_[slot_index_].busy = false;
  }

  TcpTransport* transport_;
  std::size_t slot_index_;
  Socket sock_;
  std::uint64_t activity_ = 0;
  bool finished_ = false;
  bool released_ = false;
  bool done_seen_ = false;
  bool clean_ = false;
  std::string fail_;
  std::string stderr_text_;
  std::vector<std::string> raw_rows_;
};

TcpTransport::TcpTransport(std::vector<HostEndpoint> hosts,
                           TcpTransportOptions options)
    : options_(options) {
  if (hosts.empty()) {
    throw std::invalid_argument("TcpTransport: need at least one host");
  }
  for (HostEndpoint& host : hosts) {
    agents_.push_back(AgentSlot{std::move(host)});
  }
}

std::string TcpTransport::Describe() const {
  std::string list;
  for (const AgentSlot& agent : agents_) {
    if (!list.empty()) list += ", ";
    list += agent.endpoint.Label();
  }
  return "tcp (" + std::to_string(agents_.size()) + " agents: " + list + ")";
}

bool TcpTransport::AllSlotsDead(std::size_t threshold) const {
  for (const AgentSlot& agent : agents_) {
    if (agent.consecutive_failures < threshold) return false;
  }
  return true;
}

std::unique_ptr<TransportTask> TcpTransport::Launch(
    const std::vector<std::size_t>& indices, const std::vector<SimSpec>& specs,
    std::size_t origin_shard, int attempt) {
  AgentSlot* pick = nullptr;
  std::size_t pick_index = 0;
  for (std::size_t i = 0; i < agents_.size(); ++i) {
    AgentSlot& agent = agents_[i];
    if (agent.busy) continue;
    if (pick == nullptr || agent.consecutive_failures < pick->consecutive_failures) {
      pick = &agent;
      pick_index = i;
    }
  }
  if (pick == nullptr) {
    throw std::logic_error("TcpTransport::Launch called with no idle agent slot");
  }
  pick->busy = true;
  try {
    Socket sock = ConnectTcp(pick->endpoint.host, pick->endpoint.port,
                             options_.connect_timeout_s);
    std::string greeting;
    if (sock.RecvLineWithTimeout(options_.connect_timeout_s, &greeting) !=
        RecvLineStatus::kLine) {
      throw std::runtime_error("no greeting within " +
                               std::to_string(options_.connect_timeout_s) + "s");
    }
    if (greeting != kFabricGreeting) {
      throw std::runtime_error("unexpected greeting '" + greeting +
                               "' (agent version skew?)");
    }
    std::string message = "unit origin=" + std::to_string(origin_shard) +
                          " attempt=" + std::to_string(attempt) +
                          " cells=" + std::to_string(indices.size());
    if (options_.worker_threads > 0) {
      message += " threads=" + std::to_string(options_.worker_threads);
    }
    message += '\n';
    for (const std::size_t index : indices) {
      message += std::to_string(index);
      message += '\t';
      message += specs[index].ToString();
      message += '\n';
    }
    message += "end\n";
    sock.SendAll(message);
    pick->consecutive_failures = 0;
    return std::make_unique<TcpTransportTask>(this, pick_index, std::move(sock));
  } catch (const std::exception& e) {
    pick->consecutive_failures += 1;
    pick->busy = false;
    return std::make_unique<FailedLaunchTask>(
        "agent " + pick->endpoint.Label() + " unreachable: " + e.what());
  }
}

}  // namespace hs
