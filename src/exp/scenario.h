// Scenario construction: one call from (config, seed) to a fully labelled
// trace — Theta-like synthesis, per-project type assignment, and the
// advance-notice mix (Table III).
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "util/registry.h"
#include "workload/generators.h"
#include "workload/notice_model.h"
#include "workload/theta_model.h"
#include "workload/type_assign.h"

namespace hs {

struct ScenarioConfig {
  ThetaConfig theta;
  TypeAssignConfig types;
  NoticeModelConfig notice;
  std::string notice_mix = "W5";  // Table III preset name

  /// Composable workload modulators (workload/generators.h): burst storms,
  /// diurnal/weekly cycles, and the AI-task mix. Applied after base
  /// synthesis (Theta or SWF replay) and before type/notice assignment;
  /// all off by default, so existing presets are bit-stable. Knobs are
  /// exposed as SimSpec overrides (burst_mult=, ai_frac=, ...).
  GeneratorConfig gen;

  /// SWF replay (the "swf" preset): when non-empty, BuildScenarioTrace
  /// imports this Standard-Workload-Format file (workload/swf.h) instead of
  /// synthesizing a Theta-like trace, truncates it to `theta.weeks` weeks
  /// from its first submit, and applies the same per-project type
  /// assignment and notice mix on top. Set via the `swf=` SimSpec override
  /// (CLI: --swf=path; inside one-string specs '/' is escaped as %2F).
  std::string swf_path;
  /// Set by presets that cannot run without swf_path (so a bare
  /// "preset=swf" spec fails at validation, not mid-experiment).
  bool swf_required = false;
};

/// Empty when the scenario is runnable; otherwise the violated constraint
/// (missing/unreadable SWF file, missing required swf_path, out-of-range
/// generator knobs). Errors name the override key or preset involved and,
/// for preset-level problems, the registered preset names.
std::string ValidateScenario(const ScenarioConfig& config);

/// Deterministic in (config, seed). Throws std::invalid_argument when
/// ValidateScenario fails.
Trace BuildScenarioTrace(const ScenarioConfig& config, std::uint64_t seed);

/// Paper-default scenario with the given horizon.
ScenarioConfig MakePaperScenario(int weeks, const std::string& notice_mix = "W5");

/// Builds a ScenarioConfig from (weeks, notice mix); the registered form of
/// a scenario preset.
using ScenarioPreset = std::function<ScenarioConfig(int weeks, const std::string& notice_mix)>;

/// The global scenario-preset registry. Pre-registered presets:
///   "paper"    - Theta-scale machine (4,392 nodes, 211 projects; Table I)
///   "midsize"  - 2,048-node machine (the examples' quick-turnaround scale)
///   "tiny"     - 512 nodes / 20 projects (test-sized traces)
///   "swf"      - replay of a real trace supplied via the `swf=` override
///                (machine size from the file header unless `nodes=` is set)
///   "burst"    - midsize + Poisson-burst storms (6x spikes; burst_mult=...)
///   "diurnal"  - midsize + deep diurnal/weekly cycle (diurnal_amp=...)
///   "aimix"    - midsize + 30%-demand AI-task swarms (ai_frac=...)
///   "paper-xl" - 3x Theta grid (13,176 nodes, 633 projects; alias "xl")
/// New workload families register here and become addressable from SimSpec
/// strings and the CLI. Full catalog with knobs and repro lines:
/// docs/SCENARIOS.md.
NamedRegistry<ScenarioPreset>& ScenarioRegistry();

/// Registers a scenario preset (plus optional aliases).
void RegisterScenarioPreset(const std::string& name, ScenarioPreset preset,
                            const std::vector<std::string>& aliases = {});

/// Instantiates a registered preset by (case-insensitive) name; throws
/// std::invalid_argument naming the token and the known presets.
ScenarioConfig MakeScenario(const std::string& preset, int weeks,
                            const std::string& notice_mix);

/// Canonical names of every registered preset, in registration order.
std::vector<std::string> ScenarioPresetNames();

}  // namespace hs
