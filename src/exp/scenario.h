// Scenario construction: one call from (config, seed) to a fully labelled
// trace — Theta-like synthesis, per-project type assignment, and the
// advance-notice mix (Table III).
#pragma once

#include <string>

#include "workload/notice_model.h"
#include "workload/theta_model.h"
#include "workload/type_assign.h"

namespace hs {

struct ScenarioConfig {
  ThetaConfig theta;
  TypeAssignConfig types;
  NoticeModelConfig notice;
  std::string notice_mix = "W5";  // Table III preset name
};

/// Deterministic in (config, seed).
Trace BuildScenarioTrace(const ScenarioConfig& config, std::uint64_t seed);

/// Paper-default scenario with the given horizon.
ScenarioConfig MakePaperScenario(int weeks, const std::string& notice_mix = "W5");

}  // namespace hs
