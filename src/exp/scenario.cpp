#include "exp/scenario.h"

#include <algorithm>
#include <fstream>
#include <stdexcept>

#include "workload/swf.h"

namespace hs {

namespace {

/// Imports config.swf_path, truncates to the configured horizon, and
/// normalizes ids so they stay dense (JobRecord ids index the trace).
Trace LoadSwfTrace(const ScenarioConfig& config) {
  std::ifstream in(config.swf_path);
  if (!in) {
    throw std::invalid_argument("cannot open SWF trace '" + config.swf_path + "'");
  }
  Trace trace = ImportSwf(in, config.theta.num_nodes);
  std::stable_sort(trace.jobs.begin(), trace.jobs.end(),
                   [](const JobRecord& a, const JobRecord& b) {
                     return a.submit_time < b.submit_time;
                   });
  if (!trace.jobs.empty() && config.theta.weeks > 0) {
    const SimTime horizon =
        trace.jobs.front().submit_time +
        static_cast<SimTime>(config.theta.weeks) * kWeek;
    trace.jobs.erase(std::remove_if(trace.jobs.begin(), trace.jobs.end(),
                                    [horizon](const JobRecord& j) {
                                      return j.submit_time >= horizon;
                                    }),
                     trace.jobs.end());
  }
  for (std::size_t i = 0; i < trace.jobs.size(); ++i) {
    trace.jobs[i].id = static_cast<JobId>(i);
  }
  std::string stem = config.swf_path;
  const auto slash = stem.find_last_of('/');
  if (slash != std::string::npos) stem = stem.substr(slash + 1);
  trace.name = "swf-" + stem;
  return trace;
}

}  // namespace

std::string ValidateScenario(const ScenarioConfig& config) {
  if (config.swf_required && config.swf_path.empty()) {
    return "scenario preset 'swf' requires the swf=<path> override";
  }
  if (!config.swf_path.empty()) {
    std::ifstream in(config.swf_path);
    if (!in) return "cannot open SWF trace '" + config.swf_path + "'";
  }
  return {};
}

Trace BuildScenarioTrace(const ScenarioConfig& config, std::uint64_t seed) {
  // Only the cheap structural check here; LoadSwfTrace reports unreadable
  // files itself, so the trace file is opened exactly once per build.
  if (config.swf_required && config.swf_path.empty()) {
    throw std::invalid_argument("scenario preset 'swf' requires the swf=<path> override");
  }
  Trace trace = config.swf_path.empty() ? GenerateThetaTrace(config.theta, seed)
                                        : LoadSwfTrace(config);
  Rng rng(seed ^ 0x5CE7A110C0FFEE11ULL);
  AssignJobTypes(trace, config.types, rng);
  AssignNotices(trace, NoticeMixByName(config.notice_mix), config.notice, rng);
  trace.name += "-" + config.notice_mix;
  return trace;
}

ScenarioConfig MakePaperScenario(int weeks, const std::string& notice_mix) {
  ScenarioConfig config;
  config.theta.weeks = weeks;
  config.notice_mix = notice_mix;
  return config;
}

namespace {

ScenarioConfig ScaledScenario(int weeks, const std::string& mix, int nodes,
                              int projects) {
  ScenarioConfig config = MakePaperScenario(weeks, mix);
  config.theta.num_nodes = nodes;
  config.theta.projects.max_job_size = nodes;
  if (projects > 0) config.theta.projects.num_projects = projects;
  return config;
}

}  // namespace

NamedRegistry<ScenarioPreset>& ScenarioRegistry() {
  static NamedRegistry<ScenarioPreset>* registry = [] {
    auto* r = new NamedRegistry<ScenarioPreset>("scenario preset");
    r->Register("paper", [](int weeks, const std::string& mix) {
      return MakePaperScenario(weeks, mix);
    });
    r->Register("midsize", [](int weeks, const std::string& mix) {
      return ScaledScenario(weeks, mix, 2048, 0);
    });
    r->Register("tiny", [](int weeks, const std::string& mix) {
      return ScaledScenario(weeks, mix, 512, 20);
    });
    // Real-trace replay: the file arrives through the `swf=` override; the
    // machine size comes from the SWF header unless `nodes=` overrides it.
    r->Register("swf", [](int weeks, const std::string& mix) {
      ScenarioConfig config = MakePaperScenario(weeks, mix);
      config.theta.num_nodes = 0;  // 0: take MaxNodes from the file header
      config.swf_required = true;
      return config;
    });
    return r;
  }();
  return *registry;
}

void RegisterScenarioPreset(const std::string& name, ScenarioPreset preset,
                            const std::vector<std::string>& aliases) {
  ScenarioRegistry().Register(name, std::move(preset), aliases);
}

ScenarioConfig MakeScenario(const std::string& preset, int weeks,
                            const std::string& notice_mix) {
  return ScenarioRegistry().Get(preset)(weeks, notice_mix);
}

std::vector<std::string> ScenarioPresetNames() { return ScenarioRegistry().Names(); }

}  // namespace hs
