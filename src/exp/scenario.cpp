#include "exp/scenario.h"

#include <algorithm>
#include <fstream>
#include <stdexcept>

#include "workload/swf.h"

namespace hs {

namespace {

/// Imports config.swf_path, truncates to the configured horizon, and
/// normalizes ids so they stay dense (JobRecord ids index the trace).
Trace LoadSwfTrace(const ScenarioConfig& config) {
  std::ifstream in(config.swf_path);
  if (!in) {
    throw std::invalid_argument("cannot open SWF trace '" + config.swf_path + "'");
  }
  Trace trace = ImportSwf(in, config.theta.num_nodes);
  std::stable_sort(trace.jobs.begin(), trace.jobs.end(),
                   [](const JobRecord& a, const JobRecord& b) {
                     return a.submit_time < b.submit_time;
                   });
  if (!trace.jobs.empty() && config.theta.weeks > 0) {
    const SimTime horizon =
        trace.jobs.front().submit_time +
        static_cast<SimTime>(config.theta.weeks) * kWeek;
    trace.jobs.erase(std::remove_if(trace.jobs.begin(), trace.jobs.end(),
                                    [horizon](const JobRecord& j) {
                                      return j.submit_time >= horizon;
                                    }),
                     trace.jobs.end());
  }
  for (std::size_t i = 0; i < trace.jobs.size(); ++i) {
    trace.jobs[i].id = static_cast<JobId>(i);
  }
  std::string stem = config.swf_path;
  const auto slash = stem.find_last_of('/');
  if (slash != std::string::npos) stem = stem.substr(slash + 1);
  trace.name = "swf-" + stem;
  return trace;
}

/// ", e.g. one of: paper, midsize, tiny, ..." — appended to preset-level
/// errors so every message names the registered presets uniformly (the
/// same list MakeScenario's unknown-name error carries).
std::string PresetListSuffix() {
  std::string list;
  for (const std::string& name : ScenarioPresetNames()) {
    if (!list.empty()) list += ", ";
    list += name;
  }
  return " (registered presets: " + list + ")";
}

std::string MissingSwfError() {
  return "scenario preset 'swf' requires the swf=<path> override" +
         PresetListSuffix();
}

}  // namespace

std::string ValidateScenario(const ScenarioConfig& config) {
  if (config.swf_required && config.swf_path.empty()) {
    return MissingSwfError();
  }
  if (!config.swf_path.empty()) {
    std::ifstream in(config.swf_path);
    if (!in) return "cannot open SWF trace '" + config.swf_path + "' (override swf=)";
  }
  return ValidateGenerators(config.gen);
}

Trace BuildScenarioTrace(const ScenarioConfig& config, std::uint64_t seed) {
  // Only the cheap structural checks here; LoadSwfTrace reports unreadable
  // files itself, so the trace file is opened exactly once per build.
  if (config.swf_required && config.swf_path.empty()) {
    throw std::invalid_argument(MissingSwfError());
  }
  const std::string gen_error = ValidateGenerators(config.gen);
  if (!gen_error.empty()) throw std::invalid_argument(gen_error);
  // The AI stream carves its share out of the configured load rather than
  // riding on top: the base synthesis is scaled to (1 - frac) of the
  // target, and the blend restores the total. This keeps `load=` (and the
  // paper's 0.84 default) the *total* offered load for every ai_frac —
  // override-order-proof, unlike baking compensation into a preset. A
  // replayed SWF base has fixed demand (target_load is ignored there), so
  // on that path the AI stream is purely additive.
  ThetaConfig theta = config.theta;
  if (config.gen.ai.enabled()) theta.target_load *= 1.0 - config.gen.ai.frac;
  Trace trace = config.swf_path.empty() ? GenerateThetaTrace(theta, seed)
                                        : LoadSwfTrace(config);
  // No-op (and no RNG draws) when no modulator is enabled, keeping the
  // original presets bit-identical to their pre-generator traces.
  ApplyGenerators(trace, config.gen, theta, seed);
  Rng rng(seed ^ 0x5CE7A110C0FFEE11ULL);
  AssignJobTypes(trace, config.types, rng);
  AssignNotices(trace, NoticeMixByName(config.notice_mix), config.notice, rng);
  trace.name += "-" + config.notice_mix;
  return trace;
}

ScenarioConfig MakePaperScenario(int weeks, const std::string& notice_mix) {
  ScenarioConfig config;
  config.theta.weeks = weeks;
  config.notice_mix = notice_mix;
  return config;
}

namespace {

ScenarioConfig ScaledScenario(int weeks, const std::string& mix, int nodes,
                              int projects) {
  ScenarioConfig config = MakePaperScenario(weeks, mix);
  config.theta.num_nodes = nodes;
  config.theta.projects.max_job_size = nodes;
  if (projects > 0) config.theta.projects.num_projects = projects;
  return config;
}

}  // namespace

NamedRegistry<ScenarioPreset>& ScenarioRegistry() {
  static NamedRegistry<ScenarioPreset>* registry = [] {
    auto* r = new NamedRegistry<ScenarioPreset>("scenario preset");
    r->Register("paper", [](int weeks, const std::string& mix) {
      return MakePaperScenario(weeks, mix);
    });
    r->Register("midsize", [](int weeks, const std::string& mix) {
      return ScaledScenario(weeks, mix, 2048, 0);
    });
    r->Register("tiny", [](int weeks, const std::string& mix) {
      return ScaledScenario(weeks, mix, 512, 20);
    });
    // Real-trace replay: the file arrives through the `swf=` override; the
    // machine size comes from the SWF header unless `nodes=` overrides it.
    r->Register("swf", [](int weeks, const std::string& mix) {
      ScenarioConfig config = MakePaperScenario(weeks, mix);
      config.theta.num_nodes = 0;  // 0: take MaxNodes from the file header
      config.swf_required = true;
      return config;
    });
    // Generator-based presets (workload/generators.h): midsize machines so
    // the bursty regimes run at bench speed; every knob re-tunable via the
    // burst_*/diurnal_*/ai_* overrides. Catalog: docs/SCENARIOS.md.
    r->Register("burst", [](int weeks, const std::string& mix) {
      ScenarioConfig config = ScaledScenario(weeks, mix, 2048, 0);
      config.gen.burst.mult = 6.0;  // period 12 h / duration 1 h defaults
      return config;
    }, {"burst-storm"});
    r->Register("diurnal", [](int weeks, const std::string& mix) {
      ScenarioConfig config = ScaledScenario(weeks, mix, 2048, 0);
      config.theta.diurnal_depth = 0.0;  // the warp owns the whole cycle
      config.gen.diurnal.amplitude = 0.9;
      config.gen.diurnal.weekend_factor = 0.4;
      return config;
    });
    // The AI share carves out of the configured total load (see
    // BuildScenarioTrace), so no calibration compensation is needed here
    // and `ai_frac=`/`load=` overrides stay accurate.
    r->Register("aimix", [](int weeks, const std::string& mix) {
      ScenarioConfig config = ScaledScenario(weeks, mix, 2048, 0);
      config.gen.ai.frac = 0.30;
      return config;
    }, {"ai-mix"});
    // Multi-cluster-scale grid: 3x Theta in nodes and projects.
    r->Register("paper-xl", [](int weeks, const std::string& mix) {
      return ScaledScenario(weeks, mix, 3 * 4392, 3 * 211);
    }, {"xl"});
    return r;
  }();
  return *registry;
}

void RegisterScenarioPreset(const std::string& name, ScenarioPreset preset,
                            const std::vector<std::string>& aliases) {
  ScenarioRegistry().Register(name, std::move(preset), aliases);
}

ScenarioConfig MakeScenario(const std::string& preset, int weeks,
                            const std::string& notice_mix) {
  return ScenarioRegistry().Get(preset)(weeks, notice_mix);
}

std::vector<std::string> ScenarioPresetNames() { return ScenarioRegistry().Names(); }

}  // namespace hs
