#include "exp/scenario.h"

namespace hs {

Trace BuildScenarioTrace(const ScenarioConfig& config, std::uint64_t seed) {
  Trace trace = GenerateThetaTrace(config.theta, seed);
  Rng rng(seed ^ 0x5CE7A110C0FFEE11ULL);
  AssignJobTypes(trace, config.types, rng);
  AssignNotices(trace, NoticeMixByName(config.notice_mix), config.notice, rng);
  trace.name += "-" + config.notice_mix;
  return trace;
}

ScenarioConfig MakePaperScenario(int weeks, const std::string& notice_mix) {
  ScenarioConfig config;
  config.theta.weeks = weeks;
  config.notice_mix = notice_mix;
  return config;
}

namespace {

ScenarioConfig ScaledScenario(int weeks, const std::string& mix, int nodes,
                              int projects) {
  ScenarioConfig config = MakePaperScenario(weeks, mix);
  config.theta.num_nodes = nodes;
  config.theta.projects.max_job_size = nodes;
  if (projects > 0) config.theta.projects.num_projects = projects;
  return config;
}

}  // namespace

NamedRegistry<ScenarioPreset>& ScenarioRegistry() {
  static NamedRegistry<ScenarioPreset>* registry = [] {
    auto* r = new NamedRegistry<ScenarioPreset>("scenario preset");
    r->Register("paper", [](int weeks, const std::string& mix) {
      return MakePaperScenario(weeks, mix);
    });
    r->Register("midsize", [](int weeks, const std::string& mix) {
      return ScaledScenario(weeks, mix, 2048, 0);
    });
    r->Register("tiny", [](int weeks, const std::string& mix) {
      return ScaledScenario(weeks, mix, 512, 20);
    });
    return r;
  }();
  return *registry;
}

void RegisterScenarioPreset(const std::string& name, ScenarioPreset preset,
                            const std::vector<std::string>& aliases) {
  ScenarioRegistry().Register(name, std::move(preset), aliases);
}

ScenarioConfig MakeScenario(const std::string& preset, int weeks,
                            const std::string& notice_mix) {
  return ScenarioRegistry().Get(preset)(weeks, notice_mix);
}

std::vector<std::string> ScenarioPresetNames() { return ScenarioRegistry().Names(); }

}  // namespace hs
