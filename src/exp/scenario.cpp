#include "exp/scenario.h"

namespace hs {

Trace BuildScenarioTrace(const ScenarioConfig& config, std::uint64_t seed) {
  Trace trace = GenerateThetaTrace(config.theta, seed);
  Rng rng(seed ^ 0x5CE7A110C0FFEE11ULL);
  AssignJobTypes(trace, config.types, rng);
  AssignNotices(trace, NoticeMixByName(config.notice_mix), config.notice, rng);
  trace.name += "-" + config.notice_mix;
  return trace;
}

ScenarioConfig MakePaperScenario(int weeks, const std::string& notice_mix) {
  ScenarioConfig config;
  config.theta.weeks = weeks;
  config.notice_mix = notice_mix;
  return config;
}

}  // namespace hs
