#include "exp/fault_plan.h"

#include <cerrno>
#include <cstdlib>
#include <stdexcept>

namespace hs {

namespace {

long long ParseNonNegative(const std::string& token, const std::string& value) {
  errno = 0;
  char* end = nullptr;
  const long long parsed = std::strtoll(value.c_str(), &end, 10);
  if (value.empty() || end != value.c_str() + value.size() || errno == ERANGE ||
      parsed < 0) {
    throw std::invalid_argument("fault plan: bad value in '" + token +
                                "' (want a non-negative integer)");
  }
  return parsed;
}

}  // namespace

std::string FaultPlan::ToString() const {
  const FaultPlan defaults;
  std::string out;
  const auto append = [&out](const std::string& token) {
    if (!out.empty()) out += ';';
    out += token;
  };
  if (crash_before_cell >= 0) {
    append("crash-before-cell=" + std::to_string(crash_before_cell));
  }
  if (hang_at_cell >= 0) append("hang-at-cell=" + std::to_string(hang_at_cell));
  if (drop_every > 0) append("drop-every=" + std::to_string(drop_every));
  if (exit_code != defaults.exit_code) {
    append("exit-code=" + std::to_string(exit_code));
  }
  if (signal != defaults.signal) append("signal=" + std::to_string(signal));
  if (torn_final_line) append("torn-final-line");
  if (drop_conn_at_cell >= 0) {
    append("drop-conn-at-cell=" + std::to_string(drop_conn_at_cell));
  }
  if (kill_agent_at_cell >= 0) {
    append("kill-agent-at-cell=" + std::to_string(kill_agent_at_cell));
  }
  if (torn_frame_at_cell >= 0) {
    append("torn-frame-at-cell=" + std::to_string(torn_frame_at_cell));
  }
  if (stall_at_cell >= 0) append("stall-at-cell=" + std::to_string(stall_at_cell));
  if (attempts != defaults.attempts) append("attempts=" + std::to_string(attempts));
  return out;
}

FaultPlan ParseFaultPlan(const std::string& text) {
  FaultPlan plan;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t semi = text.find(';', pos);
    const std::string token =
        text.substr(pos, semi == std::string::npos ? std::string::npos : semi - pos);
    pos = semi == std::string::npos ? text.size() + 1 : semi + 1;
    if (token.empty()) continue;
    const std::size_t eq = token.find('=');
    const std::string key = token.substr(0, eq);
    const std::string value = eq == std::string::npos ? "" : token.substr(eq + 1);
    const bool has_value = eq != std::string::npos;
    if (key == "torn-final-line") {
      if (has_value) {
        throw std::invalid_argument("fault plan: '" + key + "' takes no value");
      }
      plan.torn_final_line = true;
      continue;
    }
    if (!has_value) {
      throw std::invalid_argument("fault plan: '" + token + "' needs '=<value>'");
    }
    if (key == "crash-before-cell") {
      plan.crash_before_cell = ParseNonNegative(token, value);
    } else if (key == "hang-at-cell") {
      plan.hang_at_cell = ParseNonNegative(token, value);
    } else if (key == "drop-every") {
      plan.drop_every = static_cast<int>(ParseNonNegative(token, value));
      if (plan.drop_every == 0) {
        throw std::invalid_argument("fault plan: drop-every must be >= 1");
      }
    } else if (key == "exit-code") {
      plan.exit_code = static_cast<int>(ParseNonNegative(token, value));
    } else if (key == "signal") {
      plan.signal = static_cast<int>(ParseNonNegative(token, value));
    } else if (key == "drop-conn-at-cell") {
      plan.drop_conn_at_cell = ParseNonNegative(token, value);
    } else if (key == "kill-agent-at-cell") {
      plan.kill_agent_at_cell = ParseNonNegative(token, value);
    } else if (key == "torn-frame-at-cell") {
      plan.torn_frame_at_cell = ParseNonNegative(token, value);
    } else if (key == "stall-at-cell") {
      plan.stall_at_cell = ParseNonNegative(token, value);
    } else if (key == "attempts") {
      plan.attempts = static_cast<int>(ParseNonNegative(token, value));
      if (plan.attempts == 0) {
        throw std::invalid_argument("fault plan: attempts must be >= 1");
      }
    } else {
      throw std::invalid_argument(
          "fault plan: unknown token '" + token +
          "' (known: crash-before-cell, hang-at-cell, drop-every, exit-code, "
          "signal, torn-final-line, drop-conn-at-cell, kill-agent-at-cell, "
          "torn-frame-at-cell, stall-at-cell, attempts)");
    }
  }
  return plan;
}

FaultPlan FaultPlanFromEnv() {
  const char* raw = std::getenv("HS_FAULT");
  if (raw == nullptr) return {};
  return ParseFaultPlan(raw);
}

}  // namespace hs
