#include "exp/shard_io.h"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <ostream>
#include <set>
#include <sstream>
#include <stdexcept>

#include "util/file_util.h"

namespace hs {

namespace {

constexpr const char kShardHeader[] = "# hs-shard v1";

// --- SimResult field tables -------------------------------------------------
// One row in these tables = one key in the worker JSON "result" object. The
// writer and parser share them, so the two cannot drift; a new SimResult
// field only needs one entry here (the strict parser then forces every
// worker/orchestrator pair onto the same schema).

struct DoubleField {
  const char* name;
  double SimResult::*field;
};

struct CountField {
  const char* name;
  std::size_t SimResult::*field;
};

constexpr DoubleField kDoubleFields[] = {
    {"avg_turnaround_h", &SimResult::avg_turnaround_h},
    {"rigid_turnaround_h", &SimResult::rigid_turnaround_h},
    {"malleable_turnaround_h", &SimResult::malleable_turnaround_h},
    {"od_turnaround_h", &SimResult::od_turnaround_h},
    {"avg_wait_h", &SimResult::avg_wait_h},
    {"od_instant_rate", &SimResult::od_instant_rate},
    {"od_instant_rate_strict", &SimResult::od_instant_rate_strict},
    {"od_avg_delay_s", &SimResult::od_avg_delay_s},
    {"rigid_preempt_ratio", &SimResult::rigid_preempt_ratio},
    {"malleable_preempt_ratio", &SimResult::malleable_preempt_ratio},
    {"malleable_shrink_ratio", &SimResult::malleable_shrink_ratio},
    {"utilization", &SimResult::utilization},
    {"useful_utilization", &SimResult::useful_utilization},
    {"allocated_utilization", &SimResult::allocated_utilization},
    {"window_utilization", &SimResult::window_utilization},
    {"lost_node_hours", &SimResult::lost_node_hours},
    {"setup_node_hours", &SimResult::setup_node_hours},
    {"checkpoint_node_hours", &SimResult::checkpoint_node_hours},
    {"decision_avg_us", &SimResult::decision_avg_us},
    {"decision_max_us", &SimResult::decision_max_us},
};

constexpr CountField kCountFields[] = {
    {"jobs_completed", &SimResult::jobs_completed},
    {"jobs_killed", &SimResult::jobs_killed},
    {"od_jobs", &SimResult::od_jobs},
    {"preemptions", &SimResult::preemptions},
    {"failures", &SimResult::failures},
    {"shrinks", &SimResult::shrinks},
    {"expands", &SimResult::expands},
    {"decisions", &SimResult::decisions},
};

/// %.17g: enough digits that strtod round-trips every finite double exactly.
std::string FmtExactDouble(double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*g", std::numeric_limits<double>::max_digits10,
                value);
  return buf;
}

std::string JsonEscape(const std::string& text) {
  std::string out;
  out.reserve(text.size() + 2);
  for (const char c : text) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

// --- minimal JSON scanner for worker rows -----------------------------------
// Handles exactly the shape WriteWorkerRow emits: one flat object whose
// values are strings, numbers, or the one nested "result" object. Strict:
// anything else throws.

class JsonCursor {
 public:
  explicit JsonCursor(const std::string& text) : text_(text) {}

  void SkipWs() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool AtEnd() {
    SkipWs();
    return pos_ >= text_.size();
  }

  char Peek() {
    SkipWs();
    if (pos_ >= text_.size()) Fail("unexpected end of line");
    return text_[pos_];
  }

  void Expect(char c) {
    if (Peek() != c) {
      Fail(std::string("expected '") + c + "', got '" + text_[pos_] + "'");
    }
    ++pos_;
  }

  bool TryConsume(char c) {
    if (AtEnd() || text_[pos_] != c) return false;
    ++pos_;
    return true;
  }

  std::string ParseString() {
    Expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) Fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') break;
      if (c == '\\') {
        if (pos_ >= text_.size()) Fail("dangling escape");
        const char esc = text_[pos_++];
        if (esc == 'n') {
          out += '\n';
        } else if (esc == '"' || esc == '\\') {
          out += esc;
        } else {
          Fail(std::string("unsupported escape '\\") + esc + "'");
        }
        continue;
      }
      out += c;
    }
    return out;
  }

  /// The raw characters of a JSON number token (validated by the caller's
  /// strtod/strtoull, which must consume all of it).
  std::string ParseNumberToken() {
    SkipWs();
    const std::size_t start = pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if ((c >= '0' && c <= '9') || c == '-' || c == '+' || c == '.' || c == 'e' ||
          c == 'E') {
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start) Fail("expected a number");
    return text_.substr(start, pos_ - start);
  }

  [[noreturn]] void Fail(const std::string& what) const {
    throw std::runtime_error("worker row: " + what + " at offset " +
                             std::to_string(pos_) + " in: " + text_);
  }

 private:
  const std::string& text_;
  std::size_t pos_ = 0;
};

double ParseExactDouble(JsonCursor& cur) {
  const std::string token = cur.ParseNumberToken();
  errno = 0;
  char* end = nullptr;
  const double value = std::strtod(token.c_str(), &end);
  if (end != token.c_str() + token.size() || errno == ERANGE) {
    cur.Fail("bad double '" + token + "'");
  }
  return value;
}

unsigned long long ParseCount(JsonCursor& cur) {
  const std::string token = cur.ParseNumberToken();
  errno = 0;
  char* end = nullptr;
  const unsigned long long value = std::strtoull(token.c_str(), &end, 10);
  if (token.empty() || token[0] == '-' || end != token.c_str() + token.size() ||
      errno == ERANGE) {
    cur.Fail("bad counter '" + token + "'");
  }
  return value;
}

SimResult ParseResultObject(JsonCursor& cur) {
  SimResult result;
  std::set<std::string> seen;
  cur.Expect('{');
  while (!cur.TryConsume('}')) {
    if (!seen.empty()) cur.Expect(',');
    const std::string key = cur.ParseString();
    cur.Expect(':');
    if (!seen.insert(key).second) cur.Fail("duplicate result field '" + key + "'");
    bool known = false;
    for (const DoubleField& f : kDoubleFields) {
      if (key == f.name) {
        result.*(f.field) = ParseExactDouble(cur);
        known = true;
        break;
      }
    }
    if (!known) {
      for (const CountField& f : kCountFields) {
        if (key == f.name) {
          result.*(f.field) = static_cast<std::size_t>(ParseCount(cur));
          known = true;
          break;
        }
      }
    }
    if (!known && key == "makespan") {
      const std::string token = cur.ParseNumberToken();
      errno = 0;
      char* end = nullptr;
      const long long value = std::strtoll(token.c_str(), &end, 10);
      if (end != token.c_str() + token.size() || errno == ERANGE) {
        cur.Fail("bad makespan '" + token + "'");
      }
      result.makespan = static_cast<SimTime>(value);
      known = true;
    }
    if (!known) cur.Fail("unknown result field '" + key + "'");
  }
  const std::size_t expected = std::size(kDoubleFields) + std::size(kCountFields) + 1;
  if (seen.size() != expected) {
    cur.Fail("result object has " + std::to_string(seen.size()) + " fields, expected " +
             std::to_string(expected));
  }
  return result;
}

}  // namespace

void WriteShardFile(std::ostream& out, const std::vector<std::size_t>& indices,
                    const std::vector<SimSpec>& specs) {
  out << kShardHeader << "\n";
  for (const std::size_t index : indices) {
    if (index >= specs.size()) {
      throw std::runtime_error("WriteShardFile: index " + std::to_string(index) +
                               " out of range (" + std::to_string(specs.size()) +
                               " specs)");
    }
    out << index << "\t" << specs[index].ToString() << "\n";
  }
}

void WriteShardFileAt(const std::string& path, const std::vector<std::size_t>& indices,
                      const std::vector<SimSpec>& specs) {
  std::ostringstream out;
  WriteShardFile(out, indices, specs);
  WriteTextFile(path, out.str());
}

std::vector<IndexedSpec> ReadShardFile(std::istream& in) {
  std::vector<IndexedSpec> cells;
  std::set<std::size_t> seen;
  std::string line;
  std::size_t lineno = 0;
  bool saw_header = false;
  while (std::getline(in, line)) {
    ++lineno;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (!saw_header) {
      if (line != kShardHeader) {
        throw std::runtime_error("shard file line 1: expected header '" +
                                 std::string(kShardHeader) + "', got '" + line + "'");
      }
      saw_header = true;
      continue;
    }
    if (line.empty() || line[0] == '#') continue;
    const std::size_t tab = line.find('\t');
    if (tab == std::string::npos) {
      throw std::runtime_error("shard file line " + std::to_string(lineno) +
                               ": expected '<index>\\t<spec>', got '" + line + "'");
    }
    const std::string index_text = line.substr(0, tab);
    errno = 0;
    char* end = nullptr;
    const unsigned long long index = std::strtoull(index_text.c_str(), &end, 10);
    if (index_text.empty() || end != index_text.c_str() + index_text.size() ||
        errno == ERANGE) {
      throw std::runtime_error("shard file line " + std::to_string(lineno) +
                               ": bad spec index '" + index_text + "'");
    }
    if (!seen.insert(index).second) {
      throw std::runtime_error("shard file line " + std::to_string(lineno) +
                               ": duplicate spec index " + index_text);
    }
    IndexedSpec cell;
    cell.index = static_cast<std::size_t>(index);
    try {
      cell.spec = SimSpec::Parse(line.substr(tab + 1));
    } catch (const std::exception& e) {
      throw std::runtime_error("shard file line " + std::to_string(lineno) + ": " +
                               e.what());
    }
    cells.push_back(std::move(cell));
  }
  if (!saw_header) {
    throw std::runtime_error("shard file: empty (missing '" +
                             std::string(kShardHeader) + "' header)");
  }
  return cells;
}

std::vector<IndexedSpec> ReadShardFileAt(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open shard file: " + path);
  try {
    return ReadShardFile(in);
  } catch (const std::exception& e) {
    throw std::runtime_error(path + ": " + e.what());
  }
}

void WriteWorkerRow(std::ostream& out, std::size_t index, const SpecResult& row) {
  out << "{\"index\":" << index << ",\"spec\":\"" << JsonEscape(row.spec.ToString())
      << "\",\"trace\":\"" << JsonEscape(row.trace_name) << "\",\"result\":{";
  bool first = true;
  for (const DoubleField& f : kDoubleFields) {
    if (!first) out << ",";
    first = false;
    out << "\"" << f.name << "\":" << FmtExactDouble(row.result.*(f.field));
  }
  for (const CountField& f : kCountFields) {
    out << ",\"" << f.name << "\":" << row.result.*(f.field);
  }
  out << ",\"makespan\":" << row.result.makespan << "}}\n";
}

IndexedSpecResult ParseWorkerRow(const std::string& line) {
  JsonCursor cur(line);
  IndexedSpecResult cell;
  bool saw_index = false, saw_spec = false, saw_trace = false, saw_result = false;
  cur.Expect('{');
  bool first = true;
  while (!cur.TryConsume('}')) {
    if (!first) cur.Expect(',');
    first = false;
    const std::string key = cur.ParseString();
    cur.Expect(':');
    if (key == "index") {
      cell.index = static_cast<std::size_t>(ParseCount(cur));
      saw_index = true;
    } else if (key == "spec") {
      cell.row.spec = SimSpec::Parse(cur.ParseString());
      saw_spec = true;
    } else if (key == "trace") {
      cell.row.trace_name = cur.ParseString();
      saw_trace = true;
    } else if (key == "result") {
      cell.row.result = ParseResultObject(cur);
      saw_result = true;
    } else {
      cur.Fail("unknown field '" + key + "'");
    }
  }
  if (!cur.AtEnd()) cur.Fail("trailing characters after object");
  if (!saw_index || !saw_spec || !saw_trace || !saw_result) {
    cur.Fail("missing field (need index, spec, trace, result)");
  }
  return cell;
}

WorkerRowsRead ReadWorkerRowsTolerant(const std::string& path) {
  WorkerRowsRead out;
  std::ifstream probe(path);
  if (!probe) return out;  // died before opening --out: zero rows
  probe.close();
  std::vector<std::string> lines = ReadLines(path);
  while (!lines.empty()) {  // ignore trailing blank lines
    std::string& last = lines.back();
    if (!last.empty() && last.back() == '\r') last.pop_back();
    if (!last.empty()) break;
    lines.pop_back();
  }
  for (std::size_t i = 0; i < lines.size(); ++i) {
    std::string line = lines[i];
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    try {
      out.rows.push_back(ParseWorkerRow(line));
    } catch (const std::exception& e) {
      if (i + 1 == lines.size()) {
        out.torn_final_line = true;
        out.torn_line = line;
        break;
      }
      throw std::runtime_error(path + " line " + std::to_string(i + 1) + ": " +
                               e.what());
    }
  }
  return out;
}

std::vector<IndexedSpecResult> ReadWorkerRows(const std::string& path) {
  std::vector<IndexedSpecResult> rows;
  const std::vector<std::string> lines = ReadLines(path);
  for (std::size_t i = 0; i < lines.size(); ++i) {
    std::string line = lines[i];
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    try {
      rows.push_back(ParseWorkerRow(line));
    } catch (const std::exception& e) {
      throw std::runtime_error(path + " line " + std::to_string(i + 1) + ": " +
                               e.what());
    }
  }
  return rows;
}

}  // namespace hs
