// ShardPlan: a deterministic partition of a SimSpec vector into K shards
// for multi-process execution (ShardedRunner / hs_worker).
//
// Both strategies depend only on (specs, shard_count), never on timing or
// iteration order, so the same grid always scatters the same way — a
// prerequisite for the merge-determinism contract (README "Scaling out"):
//
//   round-robin    spec i goes to shard i % K. Trivial, and optimal when
//                  cells are uniform (the common seeds-sweep case).
//   cost-weighted  longest-processing-time greedy: specs sorted by
//                  descending SpecCost() are placed on the least-loaded
//                  shard, balancing mixed-horizon grids (weeks=1 cells next
//                  to weeks=52 cells) far better than round-robin.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "exp/sim_spec.h"

namespace hs {

enum class ShardStrategy {
  kRoundRobin,
  kCostWeighted,
};

/// "round-robin" / "cost-weighted".
const char* ShardStrategyName(ShardStrategy strategy);

/// Parses a strategy name (case-sensitive); throws std::invalid_argument
/// listing the known names.
ShardStrategy ParseShardStrategy(const std::string& name);

/// A partition of spec indices [0, spec_count) into disjoint shards. Every
/// index appears in exactly one shard; within a shard, indices ascend.
struct ShardPlan {
  std::vector<std::vector<std::size_t>> shards;
  std::size_t spec_count = 0;

  std::size_t shard_count() const { return shards.size(); }
};

/// Relative execution-cost proxy of one cell, used by kCostWeighted. The
/// trace horizon dominates both trace size and event count, so the proxy is
/// simply the spec's weeks.
double SpecCost(const SimSpec& spec);

/// Partitions `specs` into at most `shard_count` shards (empty shards are
/// never emitted: the effective count is min(shard_count, specs.size())).
/// Throws std::invalid_argument when shard_count == 0.
ShardPlan MakeShardPlan(const std::vector<SimSpec>& specs, std::size_t shard_count,
                        ShardStrategy strategy);

}  // namespace hs
