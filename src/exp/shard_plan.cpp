#include "exp/shard_plan.h"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace hs {

const char* ShardStrategyName(ShardStrategy strategy) {
  switch (strategy) {
    case ShardStrategy::kRoundRobin: return "round-robin";
    case ShardStrategy::kCostWeighted: return "cost-weighted";
  }
  return "?";
}

ShardStrategy ParseShardStrategy(const std::string& name) {
  if (name == "round-robin") return ShardStrategy::kRoundRobin;
  if (name == "cost-weighted") return ShardStrategy::kCostWeighted;
  throw std::invalid_argument("unknown shard strategy '" + name +
                              "' (known: round-robin, cost-weighted)");
}

double SpecCost(const SimSpec& spec) { return static_cast<double>(spec.weeks); }

ShardPlan MakeShardPlan(const std::vector<SimSpec>& specs, std::size_t shard_count,
                        ShardStrategy strategy) {
  if (shard_count == 0) {
    throw std::invalid_argument("MakeShardPlan: shard_count must be >= 1");
  }
  ShardPlan plan;
  plan.spec_count = specs.size();
  const std::size_t shards = std::min(shard_count, specs.size());
  plan.shards.assign(shards, {});
  if (shards == 0) return plan;

  switch (strategy) {
    case ShardStrategy::kRoundRobin:
      for (std::size_t i = 0; i < specs.size(); ++i) {
        plan.shards[i % shards].push_back(i);
      }
      break;
    case ShardStrategy::kCostWeighted: {
      // LPT greedy, fully deterministic: costs tie-break by spec index,
      // loads tie-break by shard index.
      std::vector<std::size_t> order(specs.size());
      std::iota(order.begin(), order.end(), 0);
      std::stable_sort(order.begin(), order.end(),
                       [&](std::size_t a, std::size_t b) {
                         return SpecCost(specs[a]) > SpecCost(specs[b]);
                       });
      std::vector<double> load(shards, 0.0);
      for (const std::size_t index : order) {
        const std::size_t target = static_cast<std::size_t>(
            std::min_element(load.begin(), load.end()) - load.begin());
        plan.shards[target].push_back(index);
        load[target] += SpecCost(specs[index]);
      }
      for (auto& shard : plan.shards) std::sort(shard.begin(), shard.end());
      break;
    }
  }
  return plan;
}

}  // namespace hs
