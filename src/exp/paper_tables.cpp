#include "exp/paper_tables.h"

namespace hs {

const char* MetricName(MetricKind kind) {
  switch (kind) {
    case MetricKind::kAvgTurnaroundH: return "Avg turnaround (h)";
    case MetricKind::kRigidTurnaroundH: return "Rigid turnaround (h)";
    case MetricKind::kMalleableTurnaroundH: return "Malleable turnaround (h)";
    case MetricKind::kOdTurnaroundH: return "On-demand turnaround (h)";
    case MetricKind::kUtilization: return "System utilization";
    case MetricKind::kOdInstantRate: return "On-demand instant start rate";
    case MetricKind::kRigidPreemptRatio: return "Rigid preemption ratio";
    case MetricKind::kMalleablePreemptRatio: return "Malleable preemption ratio";
  }
  return "?";
}

bool MetricIsPercent(MetricKind kind) {
  switch (kind) {
    case MetricKind::kUtilization:
    case MetricKind::kOdInstantRate:
    case MetricKind::kRigidPreemptRatio:
    case MetricKind::kMalleablePreemptRatio:
      return true;
    default:
      return false;
  }
}

double ExtractMetric(const SimResult& r, MetricKind kind) {
  switch (kind) {
    case MetricKind::kAvgTurnaroundH: return r.avg_turnaround_h;
    case MetricKind::kRigidTurnaroundH: return r.rigid_turnaround_h;
    case MetricKind::kMalleableTurnaroundH: return r.malleable_turnaround_h;
    case MetricKind::kOdTurnaroundH: return r.od_turnaround_h;
    case MetricKind::kUtilization: return r.utilization;
    case MetricKind::kOdInstantRate: return r.od_instant_rate;
    case MetricKind::kRigidPreemptRatio: return r.rigid_preempt_ratio;
    case MetricKind::kMalleablePreemptRatio: return r.malleable_preempt_ratio;
  }
  return 0.0;
}

const std::vector<MetricKind>& Fig6Metrics() {
  static const std::vector<MetricKind> metrics = {
      MetricKind::kAvgTurnaroundH,      MetricKind::kRigidTurnaroundH,
      MetricKind::kMalleableTurnaroundH, MetricKind::kUtilization,
      MetricKind::kOdInstantRate,       MetricKind::kRigidPreemptRatio,
      MetricKind::kMalleablePreemptRatio,
  };
  return metrics;
}

}  // namespace hs
