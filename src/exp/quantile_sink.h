// Streaming percentile aggregation of experiment grids.
//
// QuantileResultSink digests completed cells as they stream out of an
// ExperimentRunner / ShardedRunner without materializing rows: per metric
// it keeps a RunningStats (count/mean/min/max) plus one P^2 marker set per
// requested quantile — O(metrics x quantiles) memory for grids of any
// size, the ROADMAP's "streaming percentile aggregator" sink.
//
// P^2 estimates depend on insertion order, so for reproducible digests
// feed the sink through a MergingResultSink (canonical spec order): the
// digest of a --shards=K run is then identical to the single-process one
// regardless of completion order. bench_spec_grid --digest wires exactly
// that chain.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "exp/runner.h"
#include "util/stats.h"

namespace hs {

/// Streaming per-metric digest: moments + P^2 percentile estimates.
class QuantileResultSink final : public ResultSink {
 public:
  struct Options {
    /// Quantiles tracked per metric, each in (0, 1).
    std::vector<double> quantiles = {0.5, 0.9, 0.99};
  };

  QuantileResultSink();  // default quantiles (p50/p90/p99)
  explicit QuantileResultSink(Options options);

  void OnResult(std::size_t spec_index, const SpecResult& row) override;

  /// Rows digested so far.
  std::size_t rows() const { return rows_; }

  /// Names of the digested metrics, in presentation order.
  const std::vector<std::string>& metrics() const;

  /// The tracked quantiles, as configured.
  const std::vector<double>& quantiles() const { return options_.quantiles; }

  /// Moment summary for `metric`; throws std::invalid_argument naming the
  /// metric and the known ones when unknown.
  const RunningStats& Stats(const std::string& metric) const;

  /// Current estimate of quantile `q` (must be one of quantiles()) for
  /// `metric`; throws std::invalid_argument on unknown metric or q.
  double Quantile(const std::string& metric, double q) const;

  /// Rendered fixed-width digest table (one line per metric).
  std::string Summary() const;

 private:
  struct Digest {
    RunningStats stats;
    std::vector<P2Quantile> estimators;  // one per options_.quantiles entry
  };

  std::size_t MetricIndex(const std::string& metric) const;

  Options options_;
  std::vector<Digest> digests_;  // parallel to metrics()
  std::size_t rows_ = 0;
};

}  // namespace hs
