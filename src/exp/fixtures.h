// Owning fixtures for tests and microbenchmarks that need a live
// ExecutionEngine or a bare Simulator without hand-wiring the
// simulator/handler/collector lifetimes at every call site.
#pragma once

#include <utility>

#include "sched/batch_scheduler.h"
#include "sim/simulator.h"

namespace hs::test {

/// Owns a Simulator wired to a caller-defined handler; the building block
/// for unit tests of the event loop itself.
template <typename Handler>
class SimSandbox {
 public:
  template <typename... Args>
  explicit SimSandbox(Args&&... args)
      : handler(std::forward<Args>(args)...), sim(handler) {}

  Handler handler;
  Simulator sim;
};

/// Owns the trace/collector/simulator/engine stack and dispatches events to
/// the engine: finish/kill/drain/submit are applied, and the quiescent hook
/// optionally runs a scheduling pass (`auto_schedule`).
class EngineSandbox : public EventHandler {
 public:
  explicit EngineSandbox(Trace trace, EngineConfig config = {},
                         SimTime instant_threshold = 5 * kMinute);

  void HandleEvent(const Event& event, Simulator& sim) override;
  void OnQuiescent(SimTime now, Simulator& sim) override;

  Trace trace_;
  Simulator sim_;
  Collector collector_;
  ExecutionEngine engine_;
  bool auto_schedule = false;
};

/// Owns a bare Collector for unit tests of the metrics layer.
class CollectorSandbox {
 public:
  explicit CollectorSandbox(SimTime instant_threshold = 5 * kMinute)
      : collector(instant_threshold) {}

  Collector collector;
};

/// An engine with `n` running jobs (alternating rigid/malleable), for
/// microbenchmarks of the arrival-time decision kernels.
class LoadedEngine : public EventHandler {
 public:
  explicit LoadedEngine(int n);

  void HandleEvent(const Event& event, Simulator& sim) override;
  void OnQuiescent(SimTime now, Simulator& sim) override;

  ExecutionEngine& engine() { return engine_; }

 private:
  static EngineConfig Config();
  static Trace MakeTrace(int n);

  Trace trace_;
  Simulator sim_;
  Collector collector_;
  ExecutionEngine engine_;
};

}  // namespace hs::test
