// Wire formats of the multi-process experiment runner (ShardedRunner on
// the orchestrator side, hs_worker on the shard side).
//
// Shard spec file — what the orchestrator scatters. Text; first line is the
// version header, then one cell per line, global spec index and canonical
// spec string (SimSpec::ToString, so the SimSpec print/parse round-trip is
// the serialization):
//
//   # hs-shard v1
//   0	CUP&SPAA/FCFS/W5/seed=800
//   7	baseline/SJF/W2/weeks=4
//
// Worker result stream — what each worker sends back. JSONL, one object
// per completed cell, streamed (and flushed) as cells finish so a dying
// worker leaves every completed row behind:
//
//   {"index":7,"spec":"...","trace":"...","result":{"avg_turnaround_h":...}}
//
// Doubles are printed with max_digits10 (17 significant digits), which
// makes text round-trips bit-exact: the orchestrator re-parses rows and
// re-formats them through the normal CSV sink, producing output
// byte-identical to a single-process run on every simulation-content
// column. Parsing is strict — unknown or missing result fields, malformed
// lines, and bad indices all throw, so a version skew between orchestrator
// and worker fails loudly instead of merging garbage.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

#include "exp/runner.h"
#include "exp/sim_spec.h"

namespace hs {

/// One scattered cell: position in the global spec vector + the spec.
struct IndexedSpec {
  std::size_t index = 0;
  SimSpec spec;
};

/// One gathered cell: position in the global spec vector + the full row.
struct IndexedSpecResult {
  std::size_t index = 0;
  SpecResult row;
};

/// Writes the shard file for `indices` (positions into `specs`).
void WriteShardFile(std::ostream& out, const std::vector<std::size_t>& indices,
                    const std::vector<SimSpec>& specs);
void WriteShardFileAt(const std::string& path, const std::vector<std::size_t>& indices,
                      const std::vector<SimSpec>& specs);

/// Parses a shard file; throws std::runtime_error (with a line number) on a
/// bad header, malformed line, invalid spec string, or duplicate index.
std::vector<IndexedSpec> ReadShardFile(std::istream& in);
std::vector<IndexedSpec> ReadShardFileAt(const std::string& path);

/// Writes one worker result row (newline-terminated JSONL object).
void WriteWorkerRow(std::ostream& out, std::size_t index, const SpecResult& row);

/// Parses one worker row; throws std::runtime_error on malformed JSON,
/// unknown/missing result fields, or an invalid spec string.
IndexedSpecResult ParseWorkerRow(const std::string& line);

/// Reads a whole worker output file (blank lines ignored); throws like
/// ParseWorkerRow, prefixed with the path and line number.
std::vector<IndexedSpecResult> ReadWorkerRows(const std::string& path);

/// A tolerant read of a worker output stream whose writer may have been
/// killed mid-write.
struct WorkerRowsRead {
  std::vector<IndexedSpecResult> rows;  // every complete, well-formed row
  bool torn_final_line = false;         // last line was a truncated row
  std::string torn_line;                // its raw text (diagnostics)
};

/// Like ReadWorkerRows, but classifies the two shapes a killed worker
/// legitimately leaves behind instead of throwing a generic parse error:
/// a missing file (died before opening --out) reads as zero rows, and a
/// malformed FINAL line reads as `torn_final_line` — that row simply
/// never made it, a dropped-row condition the orchestrator can retry. A
/// malformed line anywhere *else* still throws like ReadWorkerRows:
/// earlier lines were complete, so that is schema/version skew, not a
/// crash.
WorkerRowsRead ReadWorkerRowsTolerant(const std::string& path);

}  // namespace hs
