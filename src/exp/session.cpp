#include "exp/session.h"

#include <stdexcept>
#include <utility>

namespace hs {

SimulationSession::SimulationSession(const SimSpec& spec)
    : SimulationSession(spec, std::make_shared<const Trace>(spec.BuildTrace())) {}

SimulationSession::SimulationSession(const SimSpec& spec,
                                     std::shared_ptr<const Trace> trace)
    : spec_(spec),
      trace_(std::move(trace)),
      config_(spec.BuildConfig()),
      collector_(config_.instant_threshold),
      sim_(*this),
      sched_(*trace_, config_, collector_, sim_) {
  const std::string error = config_.Validate();
  if (!error.empty()) {
    throw std::invalid_argument("invalid config from spec '" + spec.ToString() +
                                "': " + error);
  }
  sched_.Prime();
}

SimulationSession::SimulationSession(Trace trace, const HybridConfig& config)
    : trace_(std::make_shared<const Trace>(std::move(trace))),
      config_(config),
      collector_(config_.instant_threshold),
      sim_(*this),
      sched_(*trace_, config_, collector_, sim_) {
  const std::string error = config_.Validate();
  if (!error.empty()) throw std::invalid_argument("invalid config: " + error);
  sched_.Prime();
}

void SimulationSession::HandleEvent(const Event& event, Simulator& sim) {
  sched_.HandleEvent(event, sim);
}

void SimulationSession::OnQuiescent(SimTime now, Simulator& sim) {
  sched_.OnQuiescent(now, sim);
}

SimResult SimulationSession::Run(SimTime until) {
  sim_.Run(until);
  return Finalize();
}

SimResult SimulationSession::Finalize() const {
  SimResult result = collector_.Finalize(
      trace_->num_nodes, sched_.engine().cluster().busy_node_seconds());
  result.window_utilization = sched_.utilization_tracker().MeanBusyFraction(
      trace_->FirstSubmit(), trace_->LastSubmit());
  return result;
}

SimResult RunSimulation(const Trace& trace, const HybridConfig& config) {
  return SimulationSession(trace, config).Run();
}

SimResult RunSpec(const std::string& spec) {
  return SimulationSession(SimSpec::Parse(spec)).Run();
}

}  // namespace hs
