#include "exp/session.h"

#include <stdexcept>
#include <utility>

namespace hs {

SimulationSession::SimulationSession(const SimSpec& spec)
    : SimulationSession(spec, std::make_shared<const Trace>(spec.BuildTrace())) {}

SimulationSession::SimulationSession(const SimSpec& spec,
                                     std::shared_ptr<const Trace> trace)
    : spec_(spec),
      trace_(std::move(trace)),
      config_(spec.BuildConfig()),
      collector_(config_.instant_threshold),
      sim_(*this),
      sched_(*trace_, config_, collector_, sim_) {
  const std::string error = config_.Validate();
  if (!error.empty()) {
    throw std::invalid_argument("invalid config from spec '" + spec.ToString() +
                                "': " + error);
  }
  sched_.Prime();
}

SimulationSession::SimulationSession(Trace trace, const HybridConfig& config)
    : trace_(std::make_shared<const Trace>(std::move(trace))),
      config_(config),
      collector_(config_.instant_threshold),
      sim_(*this),
      sched_(*trace_, config_, collector_, sim_) {
  const std::string error = config_.Validate();
  if (!error.empty()) throw std::invalid_argument("invalid config: " + error);
  sched_.Prime();
}

std::shared_ptr<Trace> SimulationSession::MakeOnlineTrace(const Trace& base,
                                                          std::size_t headroom) {
  auto trace = std::make_shared<Trace>(base);
  trace->jobs.reserve(base.jobs.size() + headroom);
  return trace;
}

SimulationSession::SimulationSession(const SimSpec& spec, const Trace& base,
                                     std::size_t online_headroom)
    : spec_(spec),
      mutable_trace_(MakeOnlineTrace(base, online_headroom)),
      trace_(mutable_trace_),
      online_headroom_(online_headroom),
      config_(spec.BuildConfig()),
      collector_(config_.instant_threshold),
      sim_(*this),
      sched_(*trace_, config_, collector_, sim_) {
  const std::string error = config_.Validate();
  if (!error.empty()) {
    throw std::invalid_argument("invalid config from spec '" + spec.ToString() +
                                "': " + error);
  }
  sched_.Prime();
}

SimulationSession::SimulationSession(const SimulationSession& other, ForkTag)
    : spec_(other.spec_),
      // The fork inherits the REMAINING capacity, not a fresh headroom:
      // total slots stay base + headroom on both sides of the fork.
      mutable_trace_(other.mutable_trace_ == nullptr
                         ? nullptr
                         : MakeOnlineTrace(*other.trace_, other.online_capacity_left())),
      trace_(mutable_trace_ == nullptr ? other.trace_
                                       : std::shared_ptr<const Trace>(mutable_trace_)),
      online_headroom_(other.online_headroom_),
      config_(other.config_),
      collector_(other.collector_),
      sim_(*this, other.sim_),
      sched_(other.sched_, *trace_, collector_, sim_) {}

std::unique_ptr<SimulationSession> SimulationSession::Fork() const {
  return std::unique_ptr<SimulationSession>(new SimulationSession(*this, ForkTag{}));
}

void SimulationSession::StepTo(SimTime t) {
  if (t < sim_.now()) {
    throw std::invalid_argument("StepTo into the past: t=" + std::to_string(t) +
                                " now=" + std::to_string(sim_.now()));
  }
  sim_.Run(t);
  sim_.FastForward(t);
}

JobId SimulationSession::SubmitJob(JobRecord job) {
  if (mutable_trace_ == nullptr) {
    throw std::logic_error("SubmitJob: session was not built with online headroom");
  }
  Trace& trace = *mutable_trace_;
  if (trace.jobs.size() >= trace.jobs.capacity()) {
    // Growing the vector would move every JobRecord the queue/running tables
    // point into — refuse instead (the record-stability contract).
    throw std::runtime_error("SubmitJob: online headroom exhausted (" +
                             std::to_string(online_headroom_) + " submissions)");
  }
  if (job.submit_time <= sim_.now()) {
    throw std::invalid_argument("SubmitJob: submit_time must be strictly after now()=" +
                                std::to_string(sim_.now()));
  }
  if (job.has_notice() && job.notice_time < sim_.now()) {
    throw std::invalid_argument("SubmitJob: notice_time in the past");
  }
  if (job.size > trace.num_nodes) {
    throw std::invalid_argument("SubmitJob: size exceeds machine");
  }
  job.id = static_cast<JobId>(trace.jobs.size());
  const std::string error = job.Validate();
  if (!error.empty()) throw std::invalid_argument("SubmitJob: " + error);
  trace.jobs.push_back(job);
  sched_.PrimeJob(trace.jobs.back());
  return job.id;
}

bool SimulationSession::CancelJob(JobId id) {
  return sched_.CancelJob(id, sim_.now());
}

std::size_t SimulationSession::online_capacity_left() const {
  if (mutable_trace_ == nullptr) return 0;
  return mutable_trace_->jobs.capacity() - mutable_trace_->jobs.size();
}

void SimulationSession::HandleEvent(const Event& event, Simulator& sim) {
  sched_.HandleEvent(event, sim);
}

void SimulationSession::OnQuiescent(SimTime now, Simulator& sim) {
  sched_.OnQuiescent(now, sim);
}

SimResult SimulationSession::Run(SimTime until) {
  sim_.Run(until);
  return Finalize();
}

SimResult SimulationSession::Finalize() const {
  SimResult result = collector_.Finalize(
      trace_->num_nodes, sched_.engine().cluster().busy_node_seconds());
  result.window_utilization = sched_.utilization_tracker().MeanBusyFraction(
      trace_->FirstSubmit(), trace_->LastSubmit());
  return result;
}

SimResult RunSimulation(const Trace& trace, const HybridConfig& config) {
  return SimulationSession(trace, config).Run();
}

SimResult RunSpec(const std::string& spec) {
  return SimulationSession(SimSpec::Parse(spec)).Run();
}

}  // namespace hs
