#include "core/preemption_cost.h"

#include <algorithm>

namespace hs {

std::vector<PreemptionCandidate> ListPreemptionCandidates(const MechanismContext& ctx,
                                                          SimTime now) {
  std::vector<PreemptionCandidate> candidates;
  for (const JobId id : ctx.RunningIds()) {
    if (!ctx.IsPreemptable(id)) continue;
    const RunningJob* r = ctx.Running(id);
    PreemptionCandidate c;
    c.id = id;
    c.alloc = r->alloc;
    c.cost = ctx.PreemptionCostNodeSec(id, now);
    c.malleable = r->malleable_mode;
    candidates.push_back(c);
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const PreemptionCandidate& a, const PreemptionCandidate& b) {
              if (a.cost != b.cost) return a.cost < b.cost;
              return a.id < b.id;
            });
  return candidates;
}

std::vector<PreemptionCandidate> ListPreemptionCandidates(const ExecutionEngine& engine,
                                                          SimTime now) {
  return ListPreemptionCandidates(EngineMechanismView(engine), now);
}

std::vector<PreemptionCandidate> SelectVictims(
    const std::vector<PreemptionCandidate>& candidates, int needed) {
  if (needed <= 0) return {};
  int total = 0;
  for (const auto& c : candidates) total += c.alloc;
  if (total < needed) return {};  // cannot satisfy: preempt nothing
  std::vector<PreemptionCandidate> victims;
  int got = 0;
  for (const auto& c : candidates) {
    if (got >= needed) break;
    victims.push_back(c);
    got += c.alloc;
  }
  return victims;
}

}  // namespace hs
