#include "core/mechanism.h"

#include <stdexcept>

namespace hs {

const char* ToString(NoticePolicy policy) {
  switch (policy) {
    case NoticePolicy::kNone: return "N";
    case NoticePolicy::kCua: return "CUA";
    case NoticePolicy::kCup: return "CUP";
  }
  return "?";
}

const char* ToString(ArrivalPolicy policy) {
  switch (policy) {
    case ArrivalPolicy::kQueue: return "QUEUE";
    case ArrivalPolicy::kPaa: return "PAA";
    case ArrivalPolicy::kSpaa: return "SPAA";
  }
  return "?";
}

std::string ToString(const Mechanism& mechanism) {
  if (mechanism.is_baseline()) return "FCFS/EASY";
  return std::string(ToString(mechanism.notice)) + "&" + ToString(mechanism.arrival);
}

Mechanism ParseMechanism(const std::string& name) {
  if (name == "FCFS/EASY" || name == "baseline") return BaselineMechanism();
  const auto amp = name.find('&');
  if (amp == std::string::npos) throw std::invalid_argument("bad mechanism: " + name);
  const std::string notice = name.substr(0, amp);
  const std::string arrival = name.substr(amp + 1);
  Mechanism m;
  if (notice == "N") m.notice = NoticePolicy::kNone;
  else if (notice == "CUA") m.notice = NoticePolicy::kCua;
  else if (notice == "CUP") m.notice = NoticePolicy::kCup;
  else throw std::invalid_argument("bad notice policy: " + notice);
  if (arrival == "PAA") m.arrival = ArrivalPolicy::kPaa;
  else if (arrival == "SPAA") m.arrival = ArrivalPolicy::kSpaa;
  else throw std::invalid_argument("bad arrival policy: " + arrival);
  return m;
}

const std::array<Mechanism, 6>& PaperMechanisms() {
  static const std::array<Mechanism, 6> mechanisms = {{
      {NoticePolicy::kNone, ArrivalPolicy::kPaa},
      {NoticePolicy::kNone, ArrivalPolicy::kSpaa},
      {NoticePolicy::kCua, ArrivalPolicy::kPaa},
      {NoticePolicy::kCua, ArrivalPolicy::kSpaa},
      {NoticePolicy::kCup, ArrivalPolicy::kPaa},
      {NoticePolicy::kCup, ArrivalPolicy::kSpaa},
  }};
  return mechanisms;
}

Mechanism BaselineMechanism() { return Mechanism{}; }

}  // namespace hs
