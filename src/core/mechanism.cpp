#include "core/mechanism.h"

#include <cctype>
#include <stdexcept>

namespace hs {

const char* ToString(NoticePolicy policy) {
  switch (policy) {
    case NoticePolicy::kNone: return "N";
    case NoticePolicy::kCua: return "CUA";
    case NoticePolicy::kCup: return "CUP";
  }
  return "?";
}

const char* ToString(ArrivalPolicy policy) {
  switch (policy) {
    case ArrivalPolicy::kQueue: return "QUEUE";
    case ArrivalPolicy::kPaa: return "PAA";
    case ArrivalPolicy::kSpaa: return "SPAA";
  }
  return "?";
}

std::string ToString(const Mechanism& mechanism) {
  if (mechanism.is_baseline()) return "FCFS/EASY";
  return std::string(ToString(mechanism.notice)) + "&" + ToString(mechanism.arrival);
}

NamedRegistry<Mechanism>& MechanismRegistry() {
  static NamedRegistry<Mechanism>* registry = [] {
    auto* r = new NamedRegistry<Mechanism>("mechanism");
    r->Register("baseline", BaselineMechanism(), {"FCFS/EASY", "fcfs-easy"});
    for (const Mechanism& m : PaperMechanisms()) r->Register(ToString(m), m);
    return r;
  }();
  return *registry;
}

void RegisterMechanism(const std::string& name, const Mechanism& mechanism,
                       const std::vector<std::string>& aliases) {
  MechanismRegistry().Register(name, mechanism, aliases);
}

std::vector<std::string> MechanismNames() { return MechanismRegistry().Names(); }

Mechanism ParseMechanism(const std::string& name) {
  if (MechanismRegistry().Contains(name)) return MechanismRegistry().Get(name);
  // Not registered: diagnose which token of a "NOTICE&ARRIVAL" pair is bad
  // so typos are reported precisely.
  const auto amp = name.find('&');
  if (amp == std::string::npos) {
    MechanismRegistry().Get(name);  // throws, listing the known names
  }
  const std::string notice = name.substr(0, amp);
  const std::string arrival = name.substr(amp + 1);
  std::string notice_upper = notice;
  for (char& c : notice_upper) {
    c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  }
  if (notice_upper != "N" && notice_upper != "CUA" && notice_upper != "CUP") {
    throw std::invalid_argument("unknown notice policy '" + notice + "' in '" +
                                name + "' (expected N, CUA or CUP)");
  }
  throw std::invalid_argument("unknown arrival policy '" + arrival + "' in '" +
                              name + "' (expected PAA or SPAA)");
}

std::string CanonicalMechanismName(const std::string& name) {
  if (MechanismRegistry().Contains(name)) return MechanismRegistry().Canonical(name);
  ParseMechanism(name);  // throws the precise diagnostic
  return name;
}

const std::array<Mechanism, 6>& PaperMechanisms() {
  static const std::array<Mechanism, 6> mechanisms = {{
      {NoticePolicy::kNone, ArrivalPolicy::kPaa},
      {NoticePolicy::kNone, ArrivalPolicy::kSpaa},
      {NoticePolicy::kCua, ArrivalPolicy::kPaa},
      {NoticePolicy::kCua, ArrivalPolicy::kSpaa},
      {NoticePolicy::kCup, ArrivalPolicy::kPaa},
      {NoticePolicy::kCup, ArrivalPolicy::kSpaa},
  }};
  return mechanisms;
}

Mechanism BaselineMechanism() { return Mechanism{}; }

}  // namespace hs
