#include "core/mechanism.h"

#include <cctype>
#include <stdexcept>
#include <utility>

#include "core/advance_notice.h"
#include "core/arrival.h"

namespace hs {

bool Mechanism::is_baseline() const {
  if (!custom.empty() && MechanismRegistry().Contains(custom)) {
    return MechanismRegistry().Get(custom).baseline;
  }
  // One derivation for every enum-pair fallback (MechanismDefFromPair).
  return MechanismDefFromPair(*this).baseline;
}

bool Mechanism::uses_notices() const {
  if (!custom.empty() && MechanismRegistry().Contains(custom)) {
    return MechanismRegistry().Get(custom).uses_notices;
  }
  return MechanismDefFromPair(*this).uses_notices;
}

const char* ToString(NoticePolicy policy) {
  switch (policy) {
    case NoticePolicy::kNone: return "N";
    case NoticePolicy::kCua: return "CUA";
    case NoticePolicy::kCup: return "CUP";
  }
  return "?";
}

const char* ToString(ArrivalPolicy policy) {
  switch (policy) {
    case ArrivalPolicy::kQueue: return "QUEUE";
    case ArrivalPolicy::kPaa: return "PAA";
    case ArrivalPolicy::kSpaa: return "SPAA";
  }
  return "?";
}

std::string ToString(const Mechanism& mechanism) {
  if (!mechanism.custom.empty()) return mechanism.custom;
  if (mechanism.is_baseline()) return "FCFS/EASY";
  return std::string(ToString(mechanism.notice)) + "&" + ToString(mechanism.arrival);
}

MechanismDef MechanismDefFromPair(const Mechanism& pair, std::string summary) {
  MechanismDef def;
  def.handle = pair;
  def.handle.custom.clear();
  def.baseline = pair.arrival == ArrivalPolicy::kQueue;
  def.uses_notices = !def.baseline && pair.notice != NoticePolicy::kNone;
  def.summary = std::move(summary);
  return def;
}

NamedRegistry<MechanismDef>& MechanismRegistry() {
  static NamedRegistry<MechanismDef>* registry = [] {
    auto* r = new NamedRegistry<MechanismDef>("mechanism");
    r->Register(
        "baseline",
        MechanismDefFromPair(BaselineMechanism(),
                             "FCFS/EASY with no special on-demand treatment (Table II)"),
        {"FCFS/EASY", "fcfs-easy"});
    for (const Mechanism& m : PaperMechanisms()) {
      r->Register(ToString(m), MechanismDefFromPair(m, "paper mechanism (§III-B)"));
    }
    // The behavioral plugin proving the strategy seam: CUP preparation whose
    // planned preemptions defer while the release forecast still covers the
    // predicted deficit. Not expressible as a (notice, arrival) enum pair.
    MechanismDef defer;
    defer.handle = Mechanism{NoticePolicy::kCup, ArrivalPolicy::kPaa, "CUP-DEFER"};
    defer.baseline = false;
    defer.uses_notices = true;
    defer.summary =
        "CUP&PAA with planned preemptions deferred while expected releases "
        "cover the predicted deficit";
    defer.make_notice = [] { return std::make_unique<DeferredPrepareNotices>(); };
    defer.make_arrival = [] { return std::make_unique<PreemptAtArrival>(); };
    r->Register("CUP-DEFER", std::move(defer));
    return r;
  }();
  return *registry;
}

void RegisterMechanism(const std::string& name, const Mechanism& mechanism,
                       const std::vector<std::string>& aliases) {
  MechanismDef def = MechanismDefFromPair(mechanism);
  def.handle.custom = name;
  MechanismRegistry().Register(name, std::move(def), aliases);
}

void RegisterMechanism(const std::string& name, MechanismDef def,
                       const std::vector<std::string>& aliases) {
  def.handle.custom = name;
  MechanismRegistry().Register(name, std::move(def), aliases);
}

std::vector<std::string> MechanismNames() { return MechanismRegistry().Names(); }

MechanismDef FindMechanismDef(const Mechanism& mechanism) {
  if (!mechanism.custom.empty()) {
    return MechanismRegistry().Get(mechanism.custom);  // throws when unknown
  }
  const std::string name = ToString(mechanism);
  if (MechanismRegistry().Contains(name)) {
    const MechanismDef def = MechanismRegistry().Get(name);
    // Only reuse the registered def when it actually describes this pair
    // (ToString folds every kQueue pair onto the baseline name).
    if (def.handle.notice == mechanism.notice && def.handle.arrival == mechanism.arrival) {
      return def;
    }
  }
  return MechanismDefFromPair(mechanism);
}

Mechanism ParseMechanism(const std::string& name) {
  if (MechanismRegistry().Contains(name)) return MechanismRegistry().Get(name).handle;
  // Not registered: diagnose which token of a "NOTICE&ARRIVAL" pair is bad
  // so typos are reported precisely.
  const auto amp = name.find('&');
  if (amp == std::string::npos) {
    MechanismRegistry().Get(name);  // throws, listing the known names
  }
  const std::string notice = name.substr(0, amp);
  const std::string arrival = name.substr(amp + 1);
  std::string notice_upper = notice;
  for (char& c : notice_upper) {
    c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  }
  if (notice_upper != "N" && notice_upper != "CUA" && notice_upper != "CUP") {
    throw std::invalid_argument("unknown notice policy '" + notice + "' in '" +
                                name + "' (expected N, CUA or CUP)");
  }
  throw std::invalid_argument("unknown arrival policy '" + arrival + "' in '" +
                              name + "' (expected PAA or SPAA)");
}

std::string CanonicalMechanismName(const std::string& name) {
  if (MechanismRegistry().Contains(name)) return MechanismRegistry().Canonical(name);
  ParseMechanism(name);  // throws the precise diagnostic
  return name;
}

std::string ValidateMechanism(const Mechanism& mechanism) {
  if (!mechanism.custom.empty()) {
    if (!MechanismRegistry().Contains(mechanism.custom)) {
      return "mechanism '" + mechanism.custom + "' is not registered";
    }
    return {};
  }
  if (mechanism.arrival == ArrivalPolicy::kQueue &&
      mechanism.notice != NoticePolicy::kNone) {
    return std::string("baseline mechanism cannot use notice policy '") +
           ToString(mechanism.notice) +
           "' (notice handling requires a PAA or SPAA arrival policy)";
  }
  return {};
}

const std::array<Mechanism, 6>& PaperMechanisms() {
  static const std::array<Mechanism, 6> mechanisms = {{
      {NoticePolicy::kNone, ArrivalPolicy::kPaa},
      {NoticePolicy::kNone, ArrivalPolicy::kSpaa},
      {NoticePolicy::kCua, ArrivalPolicy::kPaa},
      {NoticePolicy::kCua, ArrivalPolicy::kSpaa},
      {NoticePolicy::kCup, ArrivalPolicy::kPaa},
      {NoticePolicy::kCup, ArrivalPolicy::kSpaa},
  }};
  return mechanisms;
}

Mechanism BaselineMechanism() { return Mechanism{}; }

}  // namespace hs
