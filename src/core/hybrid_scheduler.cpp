#include "core/hybrid_scheduler.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>

#include "core/mechanism_context.h"
#include "util/log.h"

namespace hs {

/// The scheduler-backed MechanismContext: exposes exactly the state
/// strategies may touch, each call forwarding to the owning scheduler's
/// internals.
class HybridScheduler::Context final : public MechanismContext {
 public:
  explicit Context(HybridScheduler& sched) : s_(&sched) {}

  const JobRecord& record(JobId id) const override { return s_->engine_.record(id); }
  std::vector<JobId> RunningIds() const override { return s_->engine_.RunningIds(); }
  const RunningJob* Running(JobId id) const override { return s_->engine_.Running(id); }
  bool IsPreemptable(JobId id) const override { return s_->engine_.IsPreemptable(id); }
  SimTime EstimatedEnd(JobId id, SimTime now) const override {
    return s_->engine_.EstimatedEnd(id, now);
  }
  double PreemptionCostNodeSec(JobId id, SimTime now) const override {
    return s_->engine_.PreemptionCostNodeSec(id, now);
  }
  SimTime NextCheckpointCompletion(JobId id, SimTime now) const override {
    return s_->engine_.NextCheckpointCompletion(id, now);
  }
  int ShrinkableNodes(JobId id) const override {
    return s_->engine_.ShrinkableNodes(id);
  }

  int FreeCount() const override { return s_->engine_.cluster().free_count(); }
  int ReservedCount(JobId od) const override {
    return s_->engine_.cluster().ReservedCount(od);
  }
  bool HasReservation(JobId od) const override { return s_->reservations_.Has(od); }
  const Reservation* FindReservation(JobId od) const override {
    return s_->reservations_.Find(od);
  }
  int ReservationDeficit(JobId od) const override {
    return s_->reservations_.Deficit(od);
  }
  int PendingDrainNodes(JobId od) const override { return s_->PendingDrainNodes(od); }

  SimTime drain_warning() const override { return s_->config_.engine.drain_warning; }
  SimTime reservation_timeout() const override { return s_->config_.reservation_timeout; }
  Collector& collector() override { return *s_->collector_; }

  void OpenReservation(JobId od, int target, SimTime notice_time,
                       SimTime predicted_arrival) override {
    s_->reservations_.Open(od, target, notice_time, predicted_arrival);
  }
  EventId Schedule(SimTime time, EventKind kind, JobId job, std::int64_t aux) override {
    return s_->sim_->Schedule(time, kind, job, aux);
  }
  std::vector<int> PreemptNow(JobId victim, SimTime now, PreemptKind kind) override {
    return s_->engine_.PreemptNow(victim, now, kind);
  }
  void BeginDrain(JobId victim, JobId od, SimTime now) override {
    s_->engine_.BeginDrain(victim, od, now);
  }
  std::vector<int> ShrinkBy(JobId victim, int nodes, SimTime now) override {
    return s_->engine_.ShrinkBy(victim, nodes, now);
  }
  void RecordLease(JobId od, JobId lender, int nodes, LeaseKind kind) override {
    s_->ledger_.Record(od, lender, nodes, kind);
  }
  void GiveTo(JobId od) override { s_->GiveTo(od); }

 private:
  HybridScheduler* s_;
};

HybridScheduler::HybridScheduler(const Trace& trace, const HybridConfig& config,
                                 Collector& collector, Simulator& sim)
    : trace_(&trace),
      config_(config),
      collector_(&collector),
      sim_(&sim),
      engine_(trace, config.engine, collector, sim),
      reservations_(engine_.cluster()),
      util_track_(trace.num_nodes) {
  const std::string config_error = config_.Validate();
  if (!config_error.empty()) {
    throw std::invalid_argument("HybridConfig: " + config_error);
  }
  // Online sessions append live submissions at the trace tail, so submit
  // order is not required here — every other per-job rule still is.
  const std::string trace_error = trace.Validate(/*require_sorted=*/false);
  if (!trace_error.empty()) {
    throw std::invalid_argument("Trace: " + trace_error);
  }
  mech_ = MakeMechanismRuntime(config_.mechanism);
  ctx_ = std::make_unique<Context>(*this);
  if (config_.static_od_partition > 0) {
    if (config_.static_od_partition >= trace.num_nodes) {
      throw std::invalid_argument("static_od_partition must leave batch nodes");
    }
    // A permanent, non-absorbing reservation carves the partition out of the
    // batch pool; on-demand jobs run on it as tenants so their nodes snap
    // back to the partition at completion.
    reservations_.Open(kStaticPartitionHolder, config_.static_od_partition,
                       /*notice_time=*/-1, kNever, /*absorbing=*/false,
                       /*grab_free=*/true);
  }
}

HybridScheduler::HybridScheduler(const HybridScheduler& other, const Trace& trace,
                                 Collector& collector, Simulator& sim)
    : trace_(&trace),
      config_(other.config_),
      collector_(&collector),
      sim_(&sim),
      engine_(other.engine_, trace, collector, sim),
      reservations_(other.reservations_, engine_.cluster()),
      ledger_(other.ledger_),
      util_track_(other.util_track_),
      canceled_(other.canceled_) {
  mech_ = MakeMechanismRuntime(config_.mechanism);
  ctx_ = std::make_unique<Context>(*this);
}

HybridScheduler::~HybridScheduler() = default;

void HybridScheduler::Prime() {
  for (const JobRecord& job : trace_->jobs) PrimeJob(job);
}

void HybridScheduler::PrimeJob(const JobRecord& job) {
  sim_->Schedule(job.submit_time, EventKind::kJobSubmit, job.id);
  if (mech_.uses_notices && job.is_on_demand() && job.has_notice()) {
    sim_->Schedule(job.notice_time, EventKind::kAdvanceNotice, job.id);
  }
}

bool HybridScheduler::CancelJob(JobId id, SimTime now) {
  if (id < 0 || static_cast<std::size_t>(id) >= trace_->jobs.size()) return false;
  if (canceled_.count(id) > 0 || engine_.IsRunning(id)) return false;
  const bool waiting = engine_.IsWaiting(id);
  const bool pending = engine_.record(id).submit_time > now;
  if (!waiting && !pending) return false;  // finished, killed, or mid-lifecycle
  canceled_.insert(id);
  if (waiting) engine_.queue().Remove(id);
  // Drop whatever the mechanism holds for the job. Closing a reservation is
  // safe even against a scheduled planned preempt or timeout: both fire as
  // no-ops once the reservation is gone (the CUP guards), exactly like the
  // reservation-timeout path.
  if (reservations_.Has(id)) reservations_.Close(id);
  ledger_.Drop(id);
  Absorb();
  return true;
}

void HybridScheduler::HandleEvent(const Event& event, Simulator&) {
  engine_.cluster().Touch(event.time);
  util_track_.Record(event.time, engine_.cluster().busy_count());
  switch (event.kind) {
    case EventKind::kJobSubmit:
      OnSubmitEvent(event.job, event.time);
      break;
    case EventKind::kAdvanceNotice:
      OnNoticeEvent(event.job, event.time);
      break;
    case EventKind::kJobFinish:
      OnFinishEvent(event.job, event.time);
      break;
    case EventKind::kJobKill:
      OnKillEvent(event.job, event.time);
      break;
    case EventKind::kWarningExpire:
      OnWarningExpireEvent(event.job, static_cast<JobId>(event.aux), event.time);
      break;
    case EventKind::kPlannedPreempt:
      OnPlannedPreemptEvent(event.job, static_cast<JobId>(event.aux), event.time);
      break;
    case EventKind::kReservationTimeout:
      OnReservationTimeoutEvent(event.job, event.time);
      break;
    case EventKind::kNodeFailure:
      // Failures are validated against the current execution: a restart
      // redraws its own failure event, making this one stale.
      if (engine_.IsCurrentFailureEvent(event.job, event.id)) {
        engine_.PreemptNow(event.job, event.time, PreemptKind::kFailure);
        Absorb();
      }
      break;
    case EventKind::kSchedule:
      break;  // the quiescent pass does the work
  }
}

void HybridScheduler::OnSubmitEvent(JobId id, SimTime now) {
  if (canceled_.count(id) > 0) return;  // canceled while pending
  const JobRecord& rec = engine_.record(id);
  if (rec.is_on_demand() && config_.static_od_partition > 0) {
    // Dedicated-cluster comparator: the job runs inside the partition
    // (unless it does not fit there at all, in which case it falls back to
    // the shared batch queue like any other job).
    engine_.EnqueueFresh(id, now, /*boosted=*/false);
    if (rec.size <= config_.static_od_partition) {
      // Same-tick batch admission: the job is only marked here; the one
      // TryStartPartitionJobs call in OnQuiescent admits the whole tick's
      // arrivals in a single FIFO walk. Decisions are unchanged — the
      // partition queue is FIFO, finishes (which grow the idle set) sort
      // before submits within a tick, and OnQuiescent runs before the
      // clock advances — so N same-tick submits cost one walk, not N.
      engine_.queue().FindMutable(id)->partition_only = true;
    }
    return;
  }
  if (rec.is_on_demand() && !mech_.baseline) {
    HandleOnDemandArrival(id, now);
  } else {
    engine_.EnqueueFresh(id, now, /*boosted=*/false);
  }
}

void HybridScheduler::OnNoticeEvent(JobId od, SimTime now) {
  if (canceled_.count(od) > 0) return;  // canceled while pending
  if (!mech_.uses_notices || mech_.notice == nullptr) return;
  mech_.notice->OnNotice(*ctx_, od, now);
}

void HybridScheduler::OnPlannedPreemptEvent(JobId job, JobId od, SimTime now) {
  if (mech_.notice == nullptr) return;
  mech_.notice->OnPlannedPreempt(*ctx_, job, od, now);
}

void HybridScheduler::HandleOnDemandArrival(JobId od, SimTime now) {
  const JobRecord& rec = engine_.record(od);
  // The on-demand job joins the system at the head of the queue (boosted);
  // it starts the moment its absorbing reservation covers the request.
  engine_.EnqueueFresh(od, now, /*boosted=*/true);

  if (!reservations_.Has(od)) {
    // No notice (or the reservation timed out before a late arrival).
    reservations_.Open(od, rec.size, now, kNever);
  }
  reservations_.MarkArrived(od);

  // Backfilled tenants on this job's reserved nodes are preempted
  // immediately (§III-B1).
  for (const JobId tenant : engine_.cluster().TenantsOf(od)) {
    engine_.PreemptNow(tenant, now, PreemptKind::kBackfillKill);
  }
  GiveTo(od);

  if (reservations_.Deficit(od) > 0 && mech_.arrival != nullptr) {
    mech_.arrival->OnArrival(*ctx_, od, now);
  }
}

void HybridScheduler::OnFinishEvent(JobId id, SimTime now) {
  const JobRecord& rec = engine_.record(id);
  const std::vector<int> freed = engine_.FinishRunning(id, now);
  if (rec.is_on_demand() && !mech_.baseline) {
    SettleLeases(id, static_cast<int>(freed.size()), now);
  }
  Absorb();
}

void HybridScheduler::OnKillEvent(JobId id, SimTime now) {
  const JobRecord& rec = engine_.record(id);
  HS_LOG(kWarn) << "job " << id << " killed at its runtime estimate (t=" << now << ")";
  const std::vector<int> freed = engine_.KillAtEstimate(id, now);
  if (rec.is_on_demand() && !mech_.baseline) {
    SettleLeases(id, static_cast<int>(freed.size()), now);
  }
  Absorb();
}

void HybridScheduler::OnWarningExpireEvent(JobId job, JobId od, SimTime now) {
  if (!engine_.IsRunning(job)) return;  // completed before the warning expired
  const RunningJob* r = engine_.Running(job);
  if (!r->draining || r->drain_for != od) return;
  const bool still_needed = reservations_.Has(od) && reservations_.Deficit(od) > 0;
  if (!still_needed) {
    engine_.CancelDrain(job);  // the on-demand job got covered elsewhere
    return;
  }
  const std::vector<int> freed = engine_.CompleteDrain(job, now);
  ledger_.Record(od, job, static_cast<int>(freed.size()), LeaseKind::kPreempted);
  GiveTo(od);
  if (mech_.notice != nullptr) mech_.notice->OnWarningExpire(*ctx_, job, od, now);
}

void HybridScheduler::OnReservationTimeoutEvent(JobId od, SimTime now) {
  const Reservation* r = reservations_.Find(od);
  if (r == nullptr || r->arrived) return;
  HS_LOG(kDebug) << "reservation timeout for on-demand job " << od << " at t=" << now;
  reservations_.Close(od);
  // Lenders preempted ahead of time lose their lease claim; they recover
  // through the queue (they kept their original submit times).
  ledger_.Drop(od);
  Absorb();
}

int HybridScheduler::PendingDrainNodes(JobId od) const {
  int total = 0;  // a sum — map order is irrelevant
  for (const auto& [id, r] : engine_.running_jobs()) {
    if (r.draining && r.drain_for == od) total += r.alloc;
  }
  return total;
}

void HybridScheduler::GiveTo(JobId od) {
  reservations_.TopUp(od);
  reservations_.AbsorbFromFree();
}

void HybridScheduler::Absorb() { reservations_.AbsorbFromFree(); }

void HybridScheduler::SettleLeases(JobId od, int credit, SimTime now) {
  const std::vector<Lease> leases = ledger_.Take(od);
  for (const Lease& lease : leases) {
    if (credit <= 0) break;
    const JobRecord& lender_rec = engine_.record(lease.lender);
    if (lease.kind == LeaseKind::kShrunk) {
      // Expand a still-running shrunk lender back toward its original size
      // (§III-B3: "we will expand this job to its original size").
      const RunningJob* r = engine_.Running(lease.lender);
      if (r == nullptr || !r->malleable_mode || r->draining) continue;
      const int headroom = lender_rec.size - r->alloc;
      const int grow =
          std::min({lease.nodes, headroom, credit, engine_.cluster().free_count()});
      if (grow > 0) {
        engine_.ExpandByFromFree(lease.lender, grow, now);
        credit -= grow;
      }
      continue;
    }
    // Preempted lender: return the leased nodes; resume immediately if whole.
    if (!engine_.IsWaiting(lease.lender)) continue;  // already restarted elsewhere
    const int give = std::min({lease.nodes, credit, engine_.cluster().free_count()});
    if (give > 0 && config_.hold_returned_nodes) {
      const int needed = lender_rec.is_malleable() && config_.engine.malleable_flexible
                             ? lender_rec.min_size
                             : lender_rec.size;
      if (!reservations_.Has(lease.lender)) {
        reservations_.Open(lease.lender, needed, now, kNever,
                           /*absorbing=*/false, /*grab_free=*/false);
      }
      const int held = engine_.cluster().ReserveFromFree(lease.lender, give);
      credit -= held;
    }
    const int held_now = engine_.cluster().ReservedIdleCount(lease.lender);
    const int free_now = engine_.cluster().free_count();
    int alloc = lender_rec.size;
    if (lender_rec.is_malleable() && config_.engine.malleable_flexible) {
      alloc = std::min(lender_rec.size, std::max(lender_rec.min_size, held_now + free_now));
    }
    if (held_now + free_now >= alloc) {
      engine_.StartWaiting(lease.lender, alloc, now);
    }
  }
}

void HybridScheduler::TryStartPartitionJobs(SimTime now) {
  if (config_.static_od_partition <= 0) return;
  // FIFO over the partition-only waiting jobs.
  std::vector<const WaitingJob*> waiting;
  for (const WaitingJob* w : engine_.queue().All()) {
    if (w->partition_only) waiting.push_back(w);
  }
  std::sort(waiting.begin(), waiting.end(), [](const WaitingJob* a, const WaitingJob* b) {
    if (a->first_submit != b->first_submit) return a->first_submit < b->first_submit;
    return a->id < b->id;
  });
  std::vector<int> idle = engine_.cluster().ReservedIdleNodes(kStaticPartitionHolder);
  for (const WaitingJob* w : waiting) {
    if (w->size() > static_cast<int>(idle.size())) break;  // FIFO blocking
    std::vector<int> chosen(idle.end() - w->size(), idle.end());
    idle.resize(idle.size() - w->size());
    engine_.StartTenant(w->id, chosen, now);
  }
}

void HybridScheduler::CleanupReservations() {
  // Collect first, close after: Close() edits the open-reservation vector,
  // so the ids are gathered over the copy-free view and closed separately.
  std::vector<JobId> stale;
  for (const Reservation& r : reservations_.OpenView()) {
    if (r.od < 0) continue;  // the static partition is permanent
    const bool owner_running = engine_.IsRunning(r.od);
    const bool owner_waiting = engine_.IsWaiting(r.od);
    const JobRecord& rec = engine_.record(r.od);
    // An on-demand reservation whose owner has not arrived yet stays open
    // even though the owner is neither queued nor running.
    const bool pre_arrival = rec.is_on_demand() && !r.arrived;
    if (owner_running || (!owner_waiting && !pre_arrival)) {
      stale.push_back(r.od);
    }
  }
  for (const JobId od : stale) reservations_.Close(od);
}

void HybridScheduler::BackfillOnReserved(SimTime now) {
  if (!config_.backfill_on_reserved) return;
  // StartTenant never opens or closes reservations, so the copy-free view
  // stays valid across the loop.
  for (const Reservation& r : reservations_.OpenView()) {
    if (r.arrived || r.predicted_arrival == kNever || r.predicted_arrival <= now) {
      continue;
    }
    std::vector<int> idle = engine_.cluster().ReservedIdleNodes(r.od);
    if (idle.empty()) continue;
    const SimTime window = r.predicted_arrival - now;
    // Scan the queue in policy order; place jobs that provably finish before
    // the owner's predicted arrival. Reusing the engine's policy instance
    // means this view comes straight from the queue's ordered cache when the
    // scheduling pass above already built it.
    for (const WaitingJob* w : engine_.queue().Ordered(engine_.policy(), now)) {
      if (idle.empty()) break;
      if (w->boosted) continue;  // never divert a waiting on-demand job
      if (engine_.cluster().ReservedIdleCount(w->id) > 0) continue;  // lender hold
      const int avail = static_cast<int>(idle.size());
      if (w->min_size() > avail) continue;
      const int alloc = std::min(w->size(), avail);
      if (engine_.WallEstimate(*w, alloc) > window) continue;
      std::vector<int> chosen(idle.end() - alloc, idle.end());
      idle.resize(idle.size() - alloc);
      engine_.StartTenant(w->id, chosen, now);
    }
  }
}

void HybridScheduler::OnQuiescent(SimTime now, Simulator&) {
  engine_.cluster().Touch(now);
  CleanupReservations();
  if (config_.opportunistic_expand) {
    for (const JobId id : engine_.RunningIds()) {
      const RunningJob* r = engine_.Running(id);
      if (!r->malleable_mode || r->draining || r->is_tenant) continue;
      const int headroom = r->rec->size - r->alloc;
      const int grow = std::min(headroom, engine_.cluster().free_count());
      if (grow > 0) engine_.ExpandByFromFree(id, grow, now);
    }
  }
  engine_.RunSchedulingPass(now);
  CleanupReservations();
  // Progress valve: lender courtesy holds (non-absorbing reservations) may
  // pin every idle node while the queue is blocked behind a job that can
  // never accumulate its allocation — with nothing running and no events
  // pending, that is a permanent wedge. Break the holds and retry.
  if (engine_.cluster().busy_count() == 0 && !engine_.queue().empty()) {
    std::vector<JobId> holds;
    for (const Reservation& r : reservations_.OpenView()) {
      if (!r.absorbing && r.od >= 0) holds.push_back(r.od);  // never break the static partition
    }
    for (const JobId od : holds) reservations_.Close(od);
    if (!holds.empty()) {
      Absorb();
      engine_.RunSchedulingPass(now);
      CleanupReservations();
    }
  }
  TryStartPartitionJobs(now);
  BackfillOnReserved(now);
  util_track_.Record(now, engine_.cluster().busy_count());
}

}  // namespace hs
