#include "core/mechanism_strategy.h"

#include "core/advance_notice.h"
#include "core/arrival.h"

namespace hs {

MechanismRuntime MakeMechanismRuntime(const Mechanism& mechanism) {
  // Throws std::invalid_argument (listing the known names) when `custom`
  // names an unregistered plugin; enum pairs get a synthesized def.
  const MechanismDef def = FindMechanismDef(mechanism);
  MechanismRuntime runtime;
  runtime.baseline = def.baseline;
  runtime.uses_notices = def.uses_notices;
  runtime.notice =
      def.make_notice ? def.make_notice() : MakeNoticeStrategy(def.handle.notice);
  runtime.arrival =
      def.make_arrival ? def.make_arrival() : MakeArrivalStrategy(def.handle.arrival);
  return runtime;
}

}  // namespace hs
