// Preemption-overhead ordering (§III-B2).
//
// PAA "lists all currently running malleable and rigid jobs in ascending
// order of their preemption overheads" and preempts from the front. The
// overhead of a candidate is the computation it would lose (rigid: progress
// since the last completed checkpoint; malleable: nothing) plus the setup
// its resumed execution must re-pay.
#pragma once

#include <vector>

#include "core/mechanism_context.h"
#include "sched/batch_scheduler.h"

namespace hs {

struct PreemptionCandidate {
  JobId id = kNoJob;
  int alloc = 0;      // nodes released if preempted
  double cost = 0.0;  // node-seconds wasted
  bool malleable = false;
};

/// All preemptable running jobs, ascending by (cost, id).
std::vector<PreemptionCandidate> ListPreemptionCandidates(const MechanismContext& ctx,
                                                          SimTime now);
std::vector<PreemptionCandidate> ListPreemptionCandidates(const ExecutionEngine& engine,
                                                          SimTime now);

/// Greedy prefix of `candidates` whose total allocation covers `needed`
/// nodes; empty when even the full list is insufficient (the on-demand job
/// must wait, §III-B2).
std::vector<PreemptionCandidate> SelectVictims(
    const std::vector<PreemptionCandidate>& candidates, int needed);

}  // namespace hs
