#include "core/arrival.h"

#include <algorithm>

#include "core/advance_notice.h"
#include "core/preemption_cost.h"
#include "core/shrink_expand.h"
#include "util/log.h"

namespace hs {

std::vector<std::pair<JobId, int>> ListShrinkable(const MechanismContext& ctx) {
  std::vector<std::pair<JobId, int>> out;
  for (const JobId id : ctx.RunningIds()) {
    const int cap = ctx.ShrinkableNodes(id);
    if (cap > 0) out.emplace_back(id, cap);
  }
  return out;
}

std::vector<std::pair<JobId, int>> ListShrinkable(const ExecutionEngine& engine) {
  return ListShrinkable(EngineMechanismView(engine));
}

int TotalShrinkSupply(const MechanismContext& ctx) {
  int total = 0;
  for (const auto& [id, cap] : ListShrinkable(ctx)) total += cap;
  return total;
}

int TotalShrinkSupply(const ExecutionEngine& engine) {
  return TotalShrinkSupply(EngineMechanismView(engine));
}

void PreemptAtArrival::OnArrival(MechanismContext& ctx, JobId od, SimTime now) {
  DecisionTimer timer(ctx.collector());
  const int deficit = ctx.ReservationDeficit(od) - ctx.PendingDrainNodes(od);
  if (deficit <= 0) return;
  ResolveDeficit(ctx, od, deficit, now);
}

void PreemptAtArrival::ResolveDeficit(MechanismContext& ctx, JobId od, int deficit,
                                      SimTime now) {
  // PAA (also the SPAA fallback): preempt running jobs in ascending order of
  // preemption overhead until the request is covered. If even preempting
  // everything cannot cover it, preempt nothing: the job waits at the head
  // of the queue for releases (§III-B2).
  const std::vector<PreemptionCandidate> candidates = ListPreemptionCandidates(ctx, now);
  const std::vector<PreemptionCandidate> victims = SelectVictims(candidates, deficit);
  if (victims.empty()) {
    HS_LOG(kDebug) << "on-demand job " << od << " cannot start instantly (deficit "
                   << deficit << ")";
    return;
  }
  for (const PreemptionCandidate& victim : victims) {
    if (victim.malleable) {
      // Malleable preemption honours the 2-minute warning; the nodes arrive
      // when it expires and the on-demand job starts then.
      ctx.BeginDrain(victim.id, od, now);
    } else {
      const std::vector<int> freed =
          ctx.PreemptNow(victim.id, now, PreemptKind::kArrivalKill);
      ctx.RecordLease(od, victim.id, static_cast<int>(freed.size()),
                      LeaseKind::kPreempted);
      ctx.GiveTo(od);
    }
  }
}

void ShrinkPreemptAtArrival::ResolveDeficit(MechanismContext& ctx, JobId od, int deficit,
                                            SimTime now) {
  // SPAA: cover the whole deficit by shrinking running malleable jobs
  // evenly; if their combined supply cannot cover it, fall back to PAA.
  const std::vector<std::pair<JobId, int>> shrinkable = ListShrinkable(ctx);
  int supply = 0;
  for (const auto& [id, cap] : shrinkable) supply += cap;
  if (supply >= deficit) {
    for (const ShrinkShare& share : PlanEvenShrink(shrinkable, deficit)) {
      if (share.amount <= 0) continue;
      ctx.ShrinkBy(share.id, share.amount, now);
      ctx.RecordLease(od, share.id, share.amount, LeaseKind::kShrunk);
    }
    ctx.GiveTo(od);
    return;
  }
  PreemptAtArrival::ResolveDeficit(ctx, od, deficit, now);
}

std::unique_ptr<ArrivalStrategy> MakeArrivalStrategy(ArrivalPolicy policy) {
  switch (policy) {
    case ArrivalPolicy::kQueue: return nullptr;
    case ArrivalPolicy::kPaa: return std::make_unique<PreemptAtArrival>();
    case ArrivalPolicy::kSpaa: return std::make_unique<ShrinkPreemptAtArrival>();
  }
  return nullptr;
}

}  // namespace hs
