#include "core/arrival.h"

#include <algorithm>

#include "core/advance_notice.h"
#include "core/hybrid_scheduler.h"
#include "core/preemption_cost.h"
#include "core/shrink_expand.h"
#include "util/log.h"

namespace hs {

std::vector<std::pair<JobId, int>> ListShrinkable(const ExecutionEngine& engine) {
  std::vector<std::pair<JobId, int>> out;
  for (const JobId id : engine.RunningIds()) {
    const int cap = engine.ShrinkableNodes(id);
    if (cap > 0) out.emplace_back(id, cap);
  }
  return out;
}

int TotalShrinkSupply(const ExecutionEngine& engine) {
  int total = 0;
  for (const auto& [id, cap] : ListShrinkable(engine)) total += cap;
  return total;
}

void HybridScheduler::HandleOnDemandArrival(JobId od, SimTime now) {
  const JobRecord& rec = engine_.record(od);
  // The on-demand job joins the system at the head of the queue (boosted);
  // it starts the moment its absorbing reservation covers the request.
  engine_.EnqueueFresh(od, now, /*boosted=*/true);

  if (!reservations_.Has(od)) {
    // No notice (or the reservation timed out before a late arrival).
    reservations_.Open(od, rec.size, now, kNever);
  }
  reservations_.MarkArrived(od);

  // Backfilled tenants on this job's reserved nodes are preempted
  // immediately (§III-B1).
  for (const JobId tenant : engine_.cluster().TenantsOf(od)) {
    engine_.PreemptNow(tenant, now, PreemptKind::kBackfillKill);
  }
  GiveTo(od);

  if (reservations_.Deficit(od) > 0) {
    ApplyArrivalPolicy(od, now);
  }
}

void HybridScheduler::ApplyArrivalPolicy(JobId od, SimTime now) {
  DecisionTimer timer(*collector_);
  int deficit = reservations_.Deficit(od) - PendingDrainNodes(od);
  if (deficit <= 0) return;

  if (config_.mechanism.arrival == ArrivalPolicy::kSpaa) {
    // SPAA: cover the whole deficit by shrinking running malleable jobs
    // evenly; if their combined supply cannot cover it, fall back to PAA.
    const std::vector<std::pair<JobId, int>> shrinkable = ListShrinkable(engine_);
    int supply = 0;
    for (const auto& [id, cap] : shrinkable) supply += cap;
    if (supply >= deficit) {
      for (const ShrinkShare& share : PlanEvenShrink(shrinkable, deficit)) {
        if (share.amount <= 0) continue;
        engine_.ShrinkBy(share.id, share.amount, now);
        ledger_.Record(od, share.id, share.amount, LeaseKind::kShrunk);
      }
      GiveTo(od);
      return;
    }
  }

  // PAA (also the SPAA fallback): preempt running jobs in ascending order of
  // preemption overhead until the request is covered. If even preempting
  // everything cannot cover it, preempt nothing: the job waits at the head
  // of the queue for releases (§III-B2).
  const std::vector<PreemptionCandidate> candidates =
      ListPreemptionCandidates(engine_, now);
  const std::vector<PreemptionCandidate> victims = SelectVictims(candidates, deficit);
  if (victims.empty()) {
    HS_LOG(kDebug) << "on-demand job " << od << " cannot start instantly (deficit "
                   << deficit << ")";
    return;
  }
  for (const PreemptionCandidate& victim : victims) {
    if (victim.malleable) {
      // Malleable preemption honours the 2-minute warning; the nodes arrive
      // when it expires and the on-demand job starts then.
      engine_.BeginDrain(victim.id, od, now);
    } else {
      const std::vector<int> freed =
          engine_.PreemptNow(victim.id, now, PreemptKind::kArrivalKill);
      ledger_.Record(od, victim.id, static_cast<int>(freed.size()),
                     LeaseKind::kPreempted);
      GiveTo(od);
    }
  }
}

}  // namespace hs
