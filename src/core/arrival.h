// Arrival-time mechanisms (§III-B2): PAA and SPAA.
//
// Pure planning helpers for testability; the event wiring lives in
// HybridScheduler (arrival.cpp).
#pragma once

#include <utility>
#include <vector>

#include "sched/batch_scheduler.h"

namespace hs {

/// (job, nodes it can give by shrinking to its minimum) for every running,
/// non-draining, non-tenant malleable job, in ascending job-id order.
std::vector<std::pair<JobId, int>> ListShrinkable(const ExecutionEngine& engine);

/// Total shrink supply across ListShrinkable.
int TotalShrinkSupply(const ExecutionEngine& engine);

}  // namespace hs
