// Arrival-time mechanisms (§III-B2): the PAA and SPAA arrival strategies
// plus the pure planning helpers they share.
//
// Helpers come in MechanismContext and bare-engine form for testability;
// the strategies act only through the context facade.
#pragma once

#include <utility>
#include <vector>

#include "core/mechanism_context.h"
#include "core/mechanism_strategy.h"

namespace hs {

/// (job, nodes it can give by shrinking to its minimum) for every running,
/// non-draining, non-tenant malleable job, in ascending job-id order.
std::vector<std::pair<JobId, int>> ListShrinkable(const MechanismContext& ctx);
std::vector<std::pair<JobId, int>> ListShrinkable(const ExecutionEngine& engine);

/// Total shrink supply across ListShrinkable.
int TotalShrinkSupply(const MechanismContext& ctx);
int TotalShrinkSupply(const ExecutionEngine& engine);

// --- the built-in arrival strategies ----------------------------------------

/// "PAA": preempt running jobs in ascending order of preemption overhead
/// until the request is covered; if even preempting everything cannot cover
/// it, preempt nothing — the job waits at the head of the queue (§III-B2).
class PreemptAtArrival : public ArrivalStrategy {
 public:
  const char* name() const override { return "PAA"; }
  void OnArrival(MechanismContext& ctx, JobId od, SimTime now) override;

 protected:
  /// The deficit-resolution body (deficit > 0, drain deliveries already
  /// netted out). PAA: overhead-ordered preemption.
  virtual void ResolveDeficit(MechanismContext& ctx, JobId od, int deficit, SimTime now);
};

/// "SPAA": cover the whole deficit by shrinking running malleable jobs
/// evenly; if their combined supply cannot cover it, fall back to PAA.
class ShrinkPreemptAtArrival final : public PreemptAtArrival {
 public:
  const char* name() const override { return "SPAA"; }

 protected:
  void ResolveDeficit(MechanismContext& ctx, JobId od, int deficit, SimTime now) override;
};

}  // namespace hs
