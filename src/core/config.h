// Top-level configuration of the hybrid scheduler (§IV-B defaults).
#pragma once

#include <string>

#include "core/mechanism.h"
#include "sched/batch_scheduler.h"

namespace hs {

struct HybridConfig {
  Mechanism mechanism = BaselineMechanism();
  EngineConfig engine;

  /// Reserved nodes are released this long after the predicted arrival if
  /// the on-demand job has not shown up (§IV-B: 10 minutes).
  SimTime reservation_timeout = 10 * kMinute;

  /// An on-demand start within this delay of its arrival counts as
  /// "instant" (tolerates the 2-minute drain warning; a strict 0-delay rate
  /// is reported alongside).
  SimTime instant_threshold = 5 * kMinute;

  /// Allow backfilled jobs to run on reserved nodes while the on-demand job
  /// has not arrived (§III-B1); survivors are killed at arrival.
  bool backfill_on_reserved = true;

  /// On on-demand completion, hold the returned nodes for preempted lenders
  /// that cannot resume yet (§III-B3 / Observation 2). Off by default: the
  /// lender sits at the head of the FCFS queue and reclaims the freed nodes
  /// through the scheduling pass anyway, while literal holds can pin the
  /// whole machine behind a starving lender (a progress valve breaks such
  /// holds when everything else is idle; see HybridScheduler::OnQuiescent).
  bool hold_returned_nodes = false;

  /// Extension (off by default, ablation only): expand running malleable
  /// jobs onto idle nodes during quiescent passes.
  bool opportunistic_expand = false;

  /// Comparator (off when 0): statically partition this many nodes for
  /// on-demand jobs — the "dedicated cluster" status quo the paper's intro
  /// argues against. On-demand jobs then run exclusively inside the
  /// partition (FIFO), never preempting batch work; batch jobs never touch
  /// partition nodes. On-demand requests larger than the partition fall
  /// back to the batch queue.
  int static_od_partition = 0;

  /// Empty when consistent; otherwise the violated constraint.
  std::string Validate() const;
};

/// Paper-default configuration for a mechanism.
HybridConfig MakePaperConfig(const Mechanism& mechanism);

}  // namespace hs
