#include "core/advance_notice.h"

#include <algorithm>
#include <chrono>

#include "util/log.h"

namespace hs {

DecisionTimer::DecisionTimer(Collector& collector)
    : collector_(&collector), start_(std::chrono::steady_clock::now()) {}

DecisionTimer::~DecisionTimer() {
  const auto elapsed = std::chrono::steady_clock::now() - start_;
  collector_->OnDecision(
      std::chrono::duration_cast<std::chrono::duration<double, std::micro>>(elapsed)
          .count());
}

int ExpectedReleaseNodes(const MechanismContext& ctx, SimTime now, SimTime by) {
  int total = 0;
  for (const JobId id : ctx.RunningIds()) {
    const RunningJob* r = ctx.Running(id);
    if (r->is_tenant) continue;   // those nodes snap back to their reservation
    if (r->draining) continue;    // already promised to another on-demand job
    if (ctx.EstimatedEnd(id, now) <= by) total += r->alloc;
  }
  return total;
}

int ExpectedReleaseNodes(const ExecutionEngine& engine, SimTime now, SimTime by) {
  return ExpectedReleaseNodes(EngineMechanismView(engine), now, by);
}

std::vector<CupPlanStep> PlanCupPreemptions(const MechanismContext& ctx, SimTime now,
                                            SimTime predicted_arrival, int deficit,
                                            SimTime drain_warning) {
  std::vector<CupPlanStep> options;
  for (const JobId id : ctx.RunningIds()) {
    if (!ctx.IsPreemptable(id)) continue;
    const RunningJob* r = ctx.Running(id);
    // Jobs ending before the predicted arrival release their nodes anyway;
    // CUA-style collection picks those up without any preemption.
    if (ctx.EstimatedEnd(id, now) <= predicted_arrival) continue;
    CupPlanStep step;
    step.victim = id;
    step.alloc = r->alloc;
    if (r->malleable_mode) {
      step.drain = true;
      step.fire_time = std::max(now, predicted_arrival - drain_warning);
      step.cost = static_cast<double>(r->rec->setup_time) * r->alloc;
    } else {
      // "We try to preempt rigid jobs immediately after checkpointing":
      // firing right after the next dump completes wastes no computation.
      const SimTime next_ckpt = ctx.NextCheckpointCompletion(id, now);
      if (next_ckpt != kNever && next_ckpt <= predicted_arrival) {
        step.fire_time = next_ckpt;
        step.cost = static_cast<double>(r->rec->setup_time) * r->alloc;
      } else {
        step.fire_time = predicted_arrival;
        step.cost = ctx.PreemptionCostNodeSec(id, predicted_arrival);
      }
    }
    options.push_back(step);
  }
  std::sort(options.begin(), options.end(), [](const CupPlanStep& a, const CupPlanStep& b) {
    if (a.cost != b.cost) return a.cost < b.cost;
    return a.victim < b.victim;
  });
  std::vector<CupPlanStep> plan;
  int covered = 0;
  for (const CupPlanStep& step : options) {
    if (covered >= deficit) break;
    plan.push_back(step);
    covered += step.alloc;
  }
  return plan;
}

std::vector<CupPlanStep> PlanCupPreemptions(const ExecutionEngine& engine, SimTime now,
                                            SimTime predicted_arrival, int deficit,
                                            SimTime drain_warning) {
  return PlanCupPreemptions(EngineMechanismView(engine), now, predicted_arrival,
                            deficit, drain_warning);
}

void NoticeStrategy::OnPlannedPreempt(MechanismContext&, JobId, JobId, SimTime) {}

void NoticeStrategy::OnWarningExpire(MechanismContext&, JobId, JobId, SimTime) {}

void CollectNotices::OnNotice(MechanismContext& ctx, JobId od, SimTime now) {
  if (ctx.HasReservation(od)) return;  // duplicate notice
  const JobRecord& rec = ctx.record(od);
  DecisionTimer timer(ctx.collector());
  ctx.OpenReservation(od, rec.size, now, rec.predicted_arrival);
  ctx.Schedule(rec.predicted_arrival + ctx.reservation_timeout(),
               EventKind::kReservationTimeout, od);
  PlanPreparation(ctx, od, now);
}

void PrepareNotices::PlanPreparation(MechanismContext& ctx, JobId od, SimTime now) {
  const JobRecord& rec = ctx.record(od);
  const SimTime pa = rec.predicted_arrival;
  const int reserved = ctx.ReservedCount(od);
  const int expected = ExpectedReleaseNodes(ctx, now, pa);
  const int deficit = rec.size - reserved - expected;
  if (deficit <= 0) return;
  const std::vector<CupPlanStep> plan =
      PlanCupPreemptions(ctx, now, pa, deficit, ctx.drain_warning());
  for (const CupPlanStep& step : plan) {
    ctx.Schedule(std::max(now, step.fire_time), EventKind::kPlannedPreempt, step.victim,
                 od);
  }
}

void PrepareNotices::OnPlannedPreempt(MechanismContext& ctx, JobId victim, JobId od,
                                      SimTime now) {
  // Validate: the preparation is only carried out if the on-demand job has
  // not arrived yet (early arrivals switch to the arrival policy, §III-B1),
  // the reservation is still short, and the victim is still preemptable.
  const Reservation* r = ctx.FindReservation(od);
  if (r == nullptr || r->arrived) return;
  if (ctx.ReservationDeficit(od) <= 0) return;
  if (!ctx.IsPreemptable(victim)) return;
  if (ShouldDefer(ctx, victim, od, now)) return;
  const RunningJob* v = ctx.Running(victim);
  if (v->malleable_mode) {
    ctx.BeginDrain(victim, od, now);
    return;  // the lease is recorded when the warning expires
  }
  const std::vector<int> freed = ctx.PreemptNow(victim, now, PreemptKind::kPlanned);
  ctx.RecordLease(od, victim, static_cast<int>(freed.size()), LeaseKind::kPlanPreempted);
  ctx.GiveTo(od);
}

bool DeferredPrepareNotices::ShouldDefer(MechanismContext& ctx, JobId victim, JobId od,
                                         SimTime now) {
  const Reservation* r = ctx.FindReservation(od);  // non-null: guarded by caller
  const SimTime pa = r->predicted_arrival;
  if (pa == kNever) return false;
  // Inside the final drain-warning window there is no slack left to defer
  // into: execute unconditionally.
  if (now + ctx.drain_warning() >= pa) return false;
  const int deficit = ctx.ReservationDeficit(od) - ctx.PendingDrainNodes(od);
  const int expected = ExpectedReleaseNodes(ctx, now, pa);
  if (expected < deficit) return false;
  // Natural releases still cover the predicted deficit: let the backfilled
  // work keep running and re-check halfway to the predicted arrival (the
  // halving terminates in the warning window above).
  const SimTime recheck = now + std::max<SimTime>(1, (pa - now) / 2);
  ctx.Schedule(recheck, EventKind::kPlannedPreempt, victim, od);
  HS_LOG(kDebug) << "CUP-DEFER: deferring planned preemption of job " << victim
                 << " for on-demand job " << od << " until t=" << recheck;
  return true;
}

std::unique_ptr<NoticeStrategy> MakeNoticeStrategy(NoticePolicy policy) {
  switch (policy) {
    case NoticePolicy::kNone: return std::make_unique<IgnoreNotices>();
    case NoticePolicy::kCua: return std::make_unique<CollectNotices>();
    case NoticePolicy::kCup: return std::make_unique<PrepareNotices>();
  }
  return std::make_unique<IgnoreNotices>();
}

}  // namespace hs
