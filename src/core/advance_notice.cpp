#include "core/advance_notice.h"

#include <algorithm>
#include <chrono>

#include "core/hybrid_scheduler.h"
#include "util/log.h"

namespace hs {

DecisionTimer::DecisionTimer(Collector& collector)
    : collector_(&collector), start_(std::chrono::steady_clock::now()) {}

DecisionTimer::~DecisionTimer() {
  const auto elapsed = std::chrono::steady_clock::now() - start_;
  collector_->OnDecision(
      std::chrono::duration_cast<std::chrono::duration<double, std::micro>>(elapsed)
          .count());
}

int ExpectedReleaseNodes(const ExecutionEngine& engine, SimTime now, SimTime by) {
  int total = 0;
  for (const JobId id : engine.RunningIds()) {
    const RunningJob* r = engine.Running(id);
    if (r->is_tenant) continue;   // those nodes snap back to their reservation
    if (r->draining) continue;    // already promised to another on-demand job
    if (engine.EstimatedEnd(id, now) <= by) total += r->alloc;
  }
  return total;
}

std::vector<CupPlanStep> PlanCupPreemptions(const ExecutionEngine& engine, SimTime now,
                                            SimTime predicted_arrival, int deficit,
                                            SimTime drain_warning) {
  std::vector<CupPlanStep> options;
  for (const JobId id : engine.RunningIds()) {
    if (!engine.IsPreemptable(id)) continue;
    const RunningJob* r = engine.Running(id);
    // Jobs ending before the predicted arrival release their nodes anyway;
    // CUA-style collection picks those up without any preemption.
    if (engine.EstimatedEnd(id, now) <= predicted_arrival) continue;
    CupPlanStep step;
    step.victim = id;
    step.alloc = r->alloc;
    if (r->malleable_mode) {
      step.drain = true;
      step.fire_time = std::max(now, predicted_arrival - drain_warning);
      step.cost = static_cast<double>(r->rec->setup_time) * r->alloc;
    } else {
      // "We try to preempt rigid jobs immediately after checkpointing":
      // firing right after the next dump completes wastes no computation.
      const SimTime next_ckpt = engine.NextCheckpointCompletion(id, now);
      if (next_ckpt != kNever && next_ckpt <= predicted_arrival) {
        step.fire_time = next_ckpt;
        step.cost = static_cast<double>(r->rec->setup_time) * r->alloc;
      } else {
        step.fire_time = predicted_arrival;
        step.cost = engine.PreemptionCostNodeSec(id, predicted_arrival);
      }
    }
    options.push_back(step);
  }
  std::sort(options.begin(), options.end(), [](const CupPlanStep& a, const CupPlanStep& b) {
    if (a.cost != b.cost) return a.cost < b.cost;
    return a.victim < b.victim;
  });
  std::vector<CupPlanStep> plan;
  int covered = 0;
  for (const CupPlanStep& step : options) {
    if (covered >= deficit) break;
    plan.push_back(step);
    covered += step.alloc;
  }
  return plan;
}

void HybridScheduler::OnNoticeEvent(JobId od, SimTime now) {
  if (config_.mechanism.notice == NoticePolicy::kNone) return;
  if (reservations_.Has(od)) return;  // duplicate notice
  const JobRecord& rec = engine_.record(od);
  DecisionTimer timer(*collector_);
  reservations_.Open(od, rec.size, now, rec.predicted_arrival);
  sim_->Schedule(rec.predicted_arrival + config_.reservation_timeout,
                 EventKind::kReservationTimeout, od);
  if (config_.mechanism.notice == NoticePolicy::kCup) {
    PlanCupPreparation(od, now);
  }
}

void HybridScheduler::PlanCupPreparation(JobId od, SimTime now) {
  const JobRecord& rec = engine_.record(od);
  const SimTime pa = rec.predicted_arrival;
  const int reserved = engine_.cluster().ReservedCount(od);
  const int expected = ExpectedReleaseNodes(engine_, now, pa);
  const int deficit = rec.size - reserved - expected;
  if (deficit <= 0) return;
  const std::vector<CupPlanStep> plan = PlanCupPreemptions(
      engine_, now, pa, deficit, config_.engine.drain_warning);
  for (const CupPlanStep& step : plan) {
    sim_->Schedule(std::max(now, step.fire_time), EventKind::kPlannedPreempt,
                   step.victim, od);
  }
}

void HybridScheduler::OnPlannedPreemptEvent(JobId job, JobId od, SimTime now) {
  // Validate: the preparation is only carried out if the on-demand job has
  // not arrived yet (early arrivals switch to the arrival policy, §III-B1),
  // the reservation is still short, and the victim is still preemptable.
  const Reservation* r = reservations_.Find(od);
  if (r == nullptr || r->arrived) return;
  if (reservations_.Deficit(od) <= 0) return;
  if (!engine_.IsPreemptable(job)) return;
  const RunningJob* victim = engine_.Running(job);
  if (victim->malleable_mode) {
    engine_.BeginDrain(job, od, now);
    return;  // the lease is recorded when the warning expires
  }
  const std::vector<int> freed = engine_.PreemptNow(job, now, PreemptKind::kPlanned);
  ledger_.Record(od, job, static_cast<int>(freed.size()), LeaseKind::kPlanPreempted);
  GiveTo(od);
}

}  // namespace hs
