// Behavioral mechanism plugin interfaces (§III-B as strategy objects).
//
// A NoticeStrategy owns the advance-notice side of a mechanism (§III-B1):
// what happens when a notice arrives, how preparation is planned, and how
// planned preemption points fire. An ArrivalStrategy owns the actual-
// arrival side (§III-B2): how the remaining deficit of an arrived on-demand
// job is resolved against the running jobs. Both act exclusively through
// the MechanismContext facade — they never touch HybridScheduler directly,
// which is what makes them unit-testable against a fake and swappable at
// registration time (core/mechanism.h).
#pragma once

#include <memory>

#include "core/mechanism.h"
#include "util/time.h"
#include "workload/job.h"

namespace hs {

class MechanismContext;

class NoticeStrategy {
 public:
  virtual ~NoticeStrategy() = default;
  virtual const char* name() const = 0;

  /// An advance notice for on-demand job `od` arrived (§III-B1). Only
  /// called when the mechanism's `uses_notices` metadata is true.
  virtual void OnNotice(MechanismContext& ctx, JobId od, SimTime now) = 0;

  /// A planned preemption point scheduled by this strategy fired: `victim`
  /// was earmarked for `od`. Default: nothing to do (strategies that never
  /// schedule kPlannedPreempt events never see this).
  virtual void OnPlannedPreempt(MechanismContext& ctx, JobId victim, JobId od,
                                SimTime now);

  /// A drain warning initiated on `job` for `od` expired and the nodes were
  /// handed over (after the scheduler's generic bookkeeping). Default: no-op.
  virtual void OnWarningExpire(MechanismContext& ctx, JobId job, JobId od, SimTime now);
};

class ArrivalStrategy {
 public:
  virtual ~ArrivalStrategy() = default;
  virtual const char* name() const = 0;

  /// An arrived on-demand job's reservation is still short after collection
  /// (§III-B2): resolve the deficit against the running jobs.
  virtual void OnArrival(MechanismContext& ctx, JobId od, SimTime now) = 0;
};

/// The built-in strategy for a notice policy (kNone included).
std::unique_ptr<NoticeStrategy> MakeNoticeStrategy(NoticePolicy policy);

/// The built-in strategy for an arrival policy; null for kQueue (the
/// baseline never resolves deficits).
std::unique_ptr<ArrivalStrategy> MakeArrivalStrategy(ArrivalPolicy policy);

/// A mechanism instantiated for one scheduler: the strategy pair plus the
/// dispatch metadata HybridScheduler consults on every event.
struct MechanismRuntime {
  std::unique_ptr<NoticeStrategy> notice;
  std::unique_ptr<ArrivalStrategy> arrival;  // null for baseline mechanisms
  bool baseline = false;
  bool uses_notices = false;
};

/// Instantiates the strategies behind a mechanism handle: registered
/// factories for plugin mechanisms (throws std::invalid_argument when
/// `custom` names nothing), built-in strategies for enum pairs.
MechanismRuntime MakeMechanismRuntime(const Mechanism& mechanism);

}  // namespace hs
