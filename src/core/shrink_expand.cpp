#include "core/shrink_expand.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

namespace hs {

std::vector<ShrinkShare> PlanEvenShrink(
    const std::vector<std::pair<JobId, int>>& shrinkable, int demand) {
  if (demand < 0) throw std::invalid_argument("PlanEvenShrink: negative demand");
  long long supply = 0;
  for (const auto& [id, cap] : shrinkable) {
    if (cap < 0) throw std::invalid_argument("PlanEvenShrink: negative capacity");
    supply += cap;
  }
  if (supply < demand) throw std::invalid_argument("PlanEvenShrink: demand exceeds supply");

  std::vector<ShrinkShare> plan;
  plan.reserve(shrinkable.size());
  if (demand == 0 || shrinkable.empty()) {
    for (const auto& [id, cap] : shrinkable) plan.push_back({id, 0});
    return plan;
  }

  // Proportional share with largest-remainder rounding.
  struct Entry {
    std::size_t index;
    int cap;
    int base;
    double remainder;
  };
  std::vector<Entry> entries;
  entries.reserve(shrinkable.size());
  long long base_total = 0;
  for (std::size_t i = 0; i < shrinkable.size(); ++i) {
    const double exact = static_cast<double>(demand) *
                         static_cast<double>(shrinkable[i].second) /
                         static_cast<double>(supply);
    const int base = std::min(shrinkable[i].second, static_cast<int>(std::floor(exact)));
    entries.push_back({i, shrinkable[i].second, base, exact - std::floor(exact)});
    base_total += base;
  }
  long long leftover = demand - base_total;
  // Distribute the remainder to the largest fractional parts (ties by index
  // for determinism), never exceeding a job's capacity.
  std::vector<std::size_t> order(entries.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&entries](std::size_t a, std::size_t b) {
    if (entries[a].remainder != entries[b].remainder) {
      return entries[a].remainder > entries[b].remainder;
    }
    return a < b;
  });
  for (std::size_t round = 0; leftover > 0; ++round) {
    bool progressed = false;
    for (const std::size_t i : order) {
      if (leftover == 0) break;
      if (entries[i].base < entries[i].cap) {
        ++entries[i].base;
        --leftover;
        progressed = true;
      }
    }
    if (!progressed) break;  // all capacities exhausted (cannot happen: supply >= demand)
  }
  assert(leftover == 0);

  plan.resize(shrinkable.size());
  for (const auto& e : entries) {
    plan[e.index] = {shrinkable[e.index].first, e.base};
  }
  return plan;
}

}  // namespace hs
