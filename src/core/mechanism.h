// The paper's six hybrid-workload scheduling mechanisms (§III-B).
//
// A mechanism is a pair: how advance notices are handled (N / CUA / CUP)
// and how actual arrivals are handled (PAA / SPAA). The Table II baseline
// is represented by ArrivalPolicy::kQueue — on-demand jobs receive no
// special treatment and simply join the batch queue.
#pragma once

#include <array>
#include <string>
#include <vector>

#include "util/registry.h"

namespace hs {

enum class NoticePolicy : std::uint8_t {
  kNone = 0,  // "N": ignore advance notices
  kCua = 1,   // collect released nodes until the actual arrival
  kCup = 2,   // prepare (collect + planned preemption) by the predicted arrival
};

enum class ArrivalPolicy : std::uint8_t {
  kQueue = 0,  // baseline: on-demand jobs queue like everyone else
  kPaa = 1,    // preempt-at-actual-arrival
  kSpaa = 2,   // shrink-preempt-at-actual-arrival
};

struct Mechanism {
  NoticePolicy notice = NoticePolicy::kNone;
  ArrivalPolicy arrival = ArrivalPolicy::kQueue;

  bool is_baseline() const { return arrival == ArrivalPolicy::kQueue; }
  bool operator==(const Mechanism&) const = default;
};

const char* ToString(NoticePolicy policy);
const char* ToString(ArrivalPolicy policy);
/// "N&PAA", "CUA&SPAA", ... or "FCFS/EASY" for the baseline.
std::string ToString(const Mechanism& mechanism);

/// The global mechanism registry: canonical name -> Mechanism. The paper's
/// six mechanisms plus the baseline are pre-registered ("baseline", with
/// aliases "FCFS/EASY" and "fcfs-easy"); new named variants register here
/// and become addressable from SimSpec strings and the CLI.
NamedRegistry<Mechanism>& MechanismRegistry();

/// Registers a named mechanism variant (plus optional aliases).
void RegisterMechanism(const std::string& name, const Mechanism& mechanism,
                       const std::vector<std::string>& aliases = {});

/// Canonical names of every registered mechanism, in registration order.
std::vector<std::string> MechanismNames();

/// Parses the names produced by ToString plus anything registered in
/// MechanismRegistry (case-insensitive). Throws std::invalid_argument
/// naming the offending token ("unknown notice policy 'X' in 'X&PAA'").
Mechanism ParseMechanism(const std::string& name);

/// The canonical registry spelling of `name` ("fcfs/easy" -> "baseline").
std::string CanonicalMechanismName(const std::string& name);

/// The six mechanisms evaluated in the paper, in its presentation order:
/// N&PAA, N&SPAA, CUA&PAA, CUA&SPAA, CUP&PAA, CUP&SPAA.
const std::array<Mechanism, 6>& PaperMechanisms();

/// FCFS/EASY with no special on-demand treatment (Table II).
Mechanism BaselineMechanism();

}  // namespace hs
