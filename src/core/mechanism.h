// The hybrid-workload scheduling mechanisms (§III-B), as pluggable strategy
// pairs.
//
// A mechanism couples how advance notices are handled (a NoticeStrategy:
// N / CUA / CUP for the paper's grid) with how actual arrivals are handled
// (an ArrivalStrategy: PAA / SPAA). The Table II baseline has neither —
// on-demand jobs receive no special treatment and simply join the batch
// queue.
//
// `Mechanism` is the configuration-side *handle*: for the paper's 2×3 grid
// it is still the (NoticePolicy, ArrivalPolicy) enum pair, so existing
// configs and tests keep working; behavioral plugins that the enum pair
// cannot express carry the canonical registry name of their MechanismDef in
// `custom` instead. MechanismRegistry() maps names to MechanismDefs —
// metadata plus strategy *factories* — so registering a def is the only
// step needed to make a brand-new behavior addressable from every SimSpec
// string, CLI flag, bench and test (see examples/custom_mechanism.cpp).
#pragma once

#include <array>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "util/registry.h"

namespace hs {

enum class NoticePolicy : std::uint8_t {
  kNone = 0,  // "N": ignore advance notices
  kCua = 1,   // collect released nodes until the actual arrival
  kCup = 2,   // prepare (collect + planned preemption) by the predicted arrival
};

enum class ArrivalPolicy : std::uint8_t {
  kQueue = 0,  // baseline: on-demand jobs queue like everyone else
  kPaa = 1,    // preempt-at-actual-arrival
  kSpaa = 2,   // shrink-preempt-at-actual-arrival
};

struct Mechanism {
  NoticePolicy notice = NoticePolicy::kNone;
  ArrivalPolicy arrival = ArrivalPolicy::kQueue;
  /// Canonical registry name of a behavioral plugin mechanism; empty for
  /// plain enum-pair mechanisms. When set, behavior and metadata come from
  /// the registered MechanismDef and the enum pair above is only the
  /// closest built-in description.
  std::string custom;

  Mechanism() = default;
  Mechanism(NoticePolicy notice_policy, ArrivalPolicy arrival_policy,
            std::string custom_name = {})
      : notice(notice_policy), arrival(arrival_policy), custom(std::move(custom_name)) {}

  /// On-demand jobs get no special treatment (registry metadata for plugin
  /// mechanisms; arrival == kQueue otherwise).
  bool is_baseline() const;
  /// Advance-notice events are scheduled and handled.
  bool uses_notices() const;
  bool operator==(const Mechanism&) const = default;
};

class NoticeStrategy;
class ArrivalStrategy;

using NoticeStrategyFactory = std::function<std::unique_ptr<NoticeStrategy>()>;
using ArrivalStrategyFactory = std::function<std::unique_ptr<ArrivalStrategy>()>;

/// One registered mechanism: the handle ParseMechanism returns, behavior
/// metadata, and the strategy factories. Factories may be left null, in
/// which case the built-in strategies for `handle`'s enum pair are used —
/// that is how the paper's seven mechanisms are registered.
struct MechanismDef {
  Mechanism handle;
  bool baseline = false;
  bool uses_notices = false;
  /// One-line description for docs and CLI help.
  std::string summary;
  NoticeStrategyFactory make_notice;
  ArrivalStrategyFactory make_arrival;
};

/// Builds the def of a plain enum-pair mechanism (metadata derived from the
/// pair, factories null).
MechanismDef MechanismDefFromPair(const Mechanism& pair, std::string summary = {});

const char* ToString(NoticePolicy policy);
const char* ToString(ArrivalPolicy policy);
/// "N&PAA", "CUA&SPAA", ... or "FCFS/EASY" for the baseline; the canonical
/// registry name for plugin mechanisms.
std::string ToString(const Mechanism& mechanism);

/// The global mechanism registry: canonical name -> MechanismDef. The
/// paper's six mechanisms plus the baseline are pre-registered ("baseline",
/// with aliases "FCFS/EASY" and "fcfs-easy"), as is the CUP-DEFER plugin
/// (deferred CUP preparation — a behavior the enum pair cannot express).
/// New variants register here and become addressable from SimSpec strings
/// and the CLI.
NamedRegistry<MechanismDef>& MechanismRegistry();

/// Registers a named enum-pair mechanism variant (plus optional aliases).
void RegisterMechanism(const std::string& name, const Mechanism& mechanism,
                       const std::vector<std::string>& aliases = {});

/// Registers a behavioral plugin mechanism. `def.handle.custom` is forced
/// to `name` so the handle round-trips through ToString/ParseMechanism.
void RegisterMechanism(const std::string& name, MechanismDef def,
                       const std::vector<std::string>& aliases = {});

/// Canonical names of every registered mechanism, in registration order.
std::vector<std::string> MechanismNames();

/// The registered def behind a mechanism handle (by `custom` name for
/// plugins, by ToString for enum pairs; unregistered enum pairs get a
/// synthesized def). Throws std::invalid_argument for unregistered customs.
MechanismDef FindMechanismDef(const Mechanism& mechanism);

/// Parses the names produced by ToString plus anything registered in
/// MechanismRegistry (case-insensitive). Throws std::invalid_argument
/// naming the offending token ("unknown notice policy 'X' in 'X&PAA'").
Mechanism ParseMechanism(const std::string& name);

/// The canonical registry spelling of `name` ("fcfs/easy" -> "baseline").
std::string CanonicalMechanismName(const std::string& name);

/// Empty when `mechanism` is consistent (registered when custom; notice
/// policy compatible with the arrival policy otherwise); otherwise an error
/// naming the offending token.
std::string ValidateMechanism(const Mechanism& mechanism);

/// The six mechanisms evaluated in the paper, in its presentation order:
/// N&PAA, N&SPAA, CUA&PAA, CUA&SPAA, CUP&PAA, CUP&SPAA.
const std::array<Mechanism, 6>& PaperMechanisms();

/// FCFS/EASY with no special on-demand treatment (Table II).
Mechanism BaselineMechanism();

}  // namespace hs
