// Advance-notice handling (§III-B1): CUA collection and CUP preparation.
//
// Helpers are exposed for unit testing; the event wiring lives in
// HybridScheduler (advance_notice.cpp).
#pragma once

#include <chrono>
#include <vector>

#include "sched/batch_scheduler.h"

namespace hs {

/// Nodes expected to be released by running jobs no later than `by`
/// (estimate-based), excluding tenants (their nodes return to their
/// reservation owner) and jobs draining for someone else.
int ExpectedReleaseNodes(const ExecutionEngine& engine, SimTime now, SimTime by);

/// One CUP preparation step: which job to preempt and when.
struct CupPlanStep {
  JobId victim = kNoJob;
  SimTime fire_time = 0;   // when the preemption/drain should trigger
  double cost = 0.0;       // projected node-seconds wasted
  int alloc = 0;
  bool drain = false;      // malleable: warn instead of kill
};

/// Plans preemptions covering `deficit` nodes by `predicted_arrival`,
/// cheapest first. Rigid victims fire right after their next checkpoint
/// completion when one lands before the predicted arrival (zero lost work),
/// otherwise at the predicted arrival itself; malleable victims are drained
/// so their warning expires at the predicted arrival. May cover less than
/// `deficit` if candidates run out.
std::vector<CupPlanStep> PlanCupPreemptions(const ExecutionEngine& engine, SimTime now,
                                            SimTime predicted_arrival, int deficit,
                                            SimTime drain_warning);

/// RAII wall-clock timer reporting one mechanism decision to the collector
/// (Observation 10: decisions must take well under 10 ms).
class DecisionTimer {
 public:
  explicit DecisionTimer(Collector& collector);
  ~DecisionTimer();
  DecisionTimer(const DecisionTimer&) = delete;
  DecisionTimer& operator=(const DecisionTimer&) = delete;

 private:
  Collector* collector_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace hs
