// Advance-notice handling (§III-B1): the N / CUA / CUP notice strategies
// plus the pure planning helpers they share.
//
// Planning helpers are exposed (in both MechanismContext and bare-engine
// form) for unit tests and benches; the strategies act only through the
// context facade.
#pragma once

#include <chrono>
#include <vector>

#include "core/mechanism_context.h"
#include "core/mechanism_strategy.h"

namespace hs {

/// Nodes expected to be released by running jobs no later than `by`
/// (estimate-based), excluding tenants (their nodes return to their
/// reservation owner) and jobs draining for someone else.
int ExpectedReleaseNodes(const MechanismContext& ctx, SimTime now, SimTime by);
int ExpectedReleaseNodes(const ExecutionEngine& engine, SimTime now, SimTime by);

/// One CUP preparation step: which job to preempt and when.
struct CupPlanStep {
  JobId victim = kNoJob;
  SimTime fire_time = 0;   // when the preemption/drain should trigger
  double cost = 0.0;       // projected node-seconds wasted
  int alloc = 0;
  bool drain = false;      // malleable: warn instead of kill
};

/// Plans preemptions covering `deficit` nodes by `predicted_arrival`,
/// cheapest first. Rigid victims fire right after their next checkpoint
/// completion when one lands before the predicted arrival (zero lost work),
/// otherwise at the predicted arrival itself; malleable victims are drained
/// so their warning expires at the predicted arrival. May cover less than
/// `deficit` if candidates run out.
std::vector<CupPlanStep> PlanCupPreemptions(const MechanismContext& ctx, SimTime now,
                                            SimTime predicted_arrival, int deficit,
                                            SimTime drain_warning);
std::vector<CupPlanStep> PlanCupPreemptions(const ExecutionEngine& engine, SimTime now,
                                            SimTime predicted_arrival, int deficit,
                                            SimTime drain_warning);

/// RAII wall-clock timer reporting one mechanism decision to the collector
/// (Observation 10: decisions must take well under 10 ms).
class DecisionTimer {
 public:
  explicit DecisionTimer(Collector& collector);
  ~DecisionTimer();
  DecisionTimer(const DecisionTimer&) = delete;
  DecisionTimer& operator=(const DecisionTimer&) = delete;

 private:
  Collector* collector_;
  std::chrono::steady_clock::time_point start_;
};

// --- the built-in notice strategies -----------------------------------------

/// "N": advance notices are ignored entirely.
class IgnoreNotices : public NoticeStrategy {
 public:
  const char* name() const override { return "N"; }
  void OnNotice(MechanismContext&, JobId, SimTime) override {}
};

/// "CUA": open an absorbing reservation at the notice and collect released
/// nodes until the actual arrival (§III-B1).
class CollectNotices : public NoticeStrategy {
 public:
  const char* name() const override { return "CUA"; }
  void OnNotice(MechanismContext& ctx, JobId od, SimTime now) override;

 protected:
  /// Hook for preparation beyond collection, called inside OnNotice's
  /// decision scope once the reservation is open. CUA: nothing.
  virtual void PlanPreparation(MechanismContext&, JobId, SimTime) {}
};

/// "CUP": CUA collection plus planned preemptions so the request is covered
/// by the predicted arrival (earmarked releases + scheduled preemptions).
class PrepareNotices : public CollectNotices {
 public:
  const char* name() const override { return "CUP"; }
  void OnPlannedPreempt(MechanismContext& ctx, JobId victim, JobId od,
                        SimTime now) override;

 protected:
  void PlanPreparation(MechanismContext& ctx, JobId od, SimTime now) override;
  /// Hook consulted right before a planned preemption executes (guards
  /// already passed). Returning true skips the victim this time — the
  /// strategy is responsible for rescheduling if it wants another look.
  /// CUP: never defers.
  virtual bool ShouldDefer(MechanismContext&, JobId /*victim*/, JobId /*od*/,
                           SimTime /*now*/) {
    return false;
  }
};

/// "CUP-DEFER": CUP preparation that defers a planned preemption while the
/// expected natural releases before the predicted arrival still cover the
/// remaining deficit — backfilled work keeps running and the preemption
/// only fires if the release forecast deteriorates. A behavior the
/// (NoticePolicy, ArrivalPolicy) enum pair cannot express.
class DeferredPrepareNotices final : public PrepareNotices {
 public:
  const char* name() const override { return "CUP-DEFER"; }

 protected:
  bool ShouldDefer(MechanismContext& ctx, JobId victim, JobId od, SimTime now) override;
};

}  // namespace hs
