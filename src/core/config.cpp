#include "core/config.h"

namespace hs {

std::string HybridConfig::Validate() const {
  if (!PolicyRegistry().Contains(engine.policy)) {
    return "unknown policy: " + engine.policy;
  }
  if (reservation_timeout < 0) return "reservation_timeout must be >= 0";
  if (instant_threshold < 0) return "instant_threshold must be >= 0";
  if (engine.drain_warning < 0) return "drain_warning must be >= 0";
  if (engine.checkpoint.interval_scale <= 0.0) return "interval_scale must be > 0";
  if (engine.checkpoint.node_mtbf <= 0) return "node_mtbf must be > 0";
  const std::string mechanism_error = ValidateMechanism(mechanism);
  if (!mechanism_error.empty()) return mechanism_error;
  if (static_od_partition < 0) return "static_od_partition must be >= 0";
  return {};
}

HybridConfig MakePaperConfig(const Mechanism& mechanism) {
  HybridConfig config;
  config.mechanism = mechanism;
  config.engine.policy = "FCFS";
  // The baseline schedules malleable jobs as rigid requests of their maximum
  // size ("without special treatments", Table II).
  config.engine.malleable_flexible = !mechanism.is_baseline();
  return config;
}

}  // namespace hs
