// Even shrinking of malleable jobs (§III-B2, SPAA).
//
// "The running malleable jobs will shrink their sizes evenly": the demand is
// split across jobs proportionally to how much each can give (current size
// minus minimum), with largest-remainder rounding so the amounts sum exactly
// to the demand and no job dips below its minimum.
#pragma once

#include <utility>
#include <vector>

#include "workload/job.h"

namespace hs {

struct ShrinkShare {
  JobId id = kNoJob;
  int amount = 0;  // nodes to take from this job
};

/// `shrinkable`: (job, max nodes it can give). Requires
/// sum(max) >= demand >= 0. The returned amounts sum exactly to `demand`
/// and each amount is within [0, max_i]. Deterministic.
std::vector<ShrinkShare> PlanEvenShrink(
    const std::vector<std::pair<JobId, int>>& shrinkable, int demand);

}  // namespace hs
