// HybridScheduler: the paper's contribution, wired together.
//
// Implements the event-driven co-scheduling of on-demand, rigid, and
// malleable jobs on one machine. Mechanism behavior is fully delegated to
// the strategy pair resolved from the configured mechanism
// (core/mechanism_strategy.h):
//   * advance notice   -> NoticeStrategy  (N / CUA / CUP / plugins)
//   * actual arrival   -> ArrivalStrategy (PAA / SPAA / plugins)
//   * completion       -> lease settlement: return nodes to lenders
//   * predicted+10min  -> reservation timeout
// Strategies act through a MechanismContext facade the scheduler implements
// over its internals — they never touch scheduler privates. On-demand jobs
// never enter the batch queue unboosted (except in the baseline): an
// arrived on-demand job holds an absorbing reservation that collects freed
// nodes with highest priority, sits at the head of the queue (boosted), and
// starts the moment its request is covered.
//
// The ordering policy (FCFS by default) plus EASY backfilling run as one
// quiescent scheduling pass after every batch of same-timestamp events.
#pragma once

#include <memory>
#include <unordered_set>

#include "core/config.h"
#include "core/mechanism.h"
#include "core/mechanism_strategy.h"
#include "metrics/collector.h"
#include "metrics/utilization.h"
#include "platform/lease_ledger.h"
#include "platform/reservation.h"
#include "sched/batch_scheduler.h"
#include "sim/simulator.h"
#include "workload/trace.h"

namespace hs {

/// Pseudo job id owning the static on-demand partition's reservation.
inline constexpr JobId kStaticPartitionHolder = -2;

class HybridScheduler : public EventHandler {
 public:
  /// `trace`, `collector` and `sim` must outlive the scheduler.
  HybridScheduler(const Trace& trace, const HybridConfig& config,
                  Collector& collector, Simulator& sim);

  /// Clone constructor (the session-fork path): deep-copies the mid-flight
  /// engine/reservation/lease/utilization state against the fork's own
  /// trace/collector/sim, and re-resolves the mechanism's strategy pair
  /// through MakeMechanismRuntime. Contract: strategies hold no per-run
  /// mutable state (every built-in is stateless; plugin strategies must be
  /// too, or forks of sessions using them diverge). Does NOT re-Prime, does
  /// NOT re-open the static partition — the copied event heap and
  /// reservation ledger already carry both.
  HybridScheduler(const HybridScheduler& other, const Trace& trace,
                  Collector& collector, Simulator& sim);
  ~HybridScheduler() override;

  /// Schedules every submit (and, when the mechanism uses notices, every
  /// advance-notice) event from the trace. Call once before Simulator::Run.
  void Prime();

  /// Schedules the submit (and, when applicable, advance-notice) event for
  /// one appended job — the online-submission path. `job` must live in the
  /// scheduler's trace.
  void PrimeJob(const JobRecord& job);

  /// Online cancellation at the current sim time. Pending jobs (submit event
  /// not fired yet) are tombstoned — the submit event becomes a no-op; so
  /// does a not-yet-fired advance notice. Waiting jobs leave the queue and
  /// drop their reservation/lease claims. Running, finished, killed, or
  /// already-canceled jobs are refused. Returns whether the job was
  /// canceled.
  bool CancelJob(JobId id, SimTime now);

  /// True when `id` was tombstoned by CancelJob.
  bool IsCanceled(JobId id) const { return canceled_.count(id) > 0; }

  // EventHandler:
  void HandleEvent(const Event& event, Simulator& sim) override;
  void OnQuiescent(SimTime now, Simulator& sim) override;

  ExecutionEngine& engine() { return engine_; }
  const ExecutionEngine& engine() const { return engine_; }
  ReservationManager& reservations() { return reservations_; }
  const LeaseLedger& ledger() const { return ledger_; }
  const HybridConfig& config() const { return config_; }
  /// The resolved strategy pair + metadata this scheduler dispatches to.
  const MechanismRuntime& mechanism_runtime() const { return mech_; }
  /// Time-resolved busy-node profile (sampled at every event).
  const UtilizationTracker& utilization_tracker() const { return util_track_; }

 private:
  /// The MechanismContext the strategies act through (hybrid_scheduler.cpp).
  class Context;

  // Event handlers.
  void OnSubmitEvent(JobId id, SimTime now);
  void OnNoticeEvent(JobId od, SimTime now);
  void OnFinishEvent(JobId id, SimTime now);
  void OnKillEvent(JobId id, SimTime now);
  void OnWarningExpireEvent(JobId job, JobId od, SimTime now);
  void OnPlannedPreemptEvent(JobId job, JobId od, SimTime now);
  void OnReservationTimeoutEvent(JobId od, SimTime now);

  /// §III-B2: the generic arrival machinery (boosted enqueue, reservation,
  /// tenant eviction, collection) before the ArrivalStrategy resolves any
  /// remaining deficit.
  void HandleOnDemandArrival(JobId od, SimTime now);

  /// §III-B3: return completed on-demand nodes to lenders. `credit` is the
  /// number of nodes the completed job released into the free pool.
  void SettleLeases(JobId od, int credit, SimTime now);

  /// Nodes that pending drains will deliver to `od` when their warnings
  /// expire.
  int PendingDrainNodes(JobId od) const;

  /// Tops up `od`'s reservation from the free pool first, then lets every
  /// other absorbing reservation take its share (notice order).
  void GiveTo(JobId od);
  /// Routes free nodes to absorbing reservations (notice order).
  void Absorb();

  /// Closes reservations whose owner started or completed.
  void CleanupReservations();

  /// Places queue jobs as tenants onto reserved-idle nodes when they fit
  /// before the owner's predicted arrival.
  void BackfillOnReserved(SimTime now);

  /// Static-partition comparator: starts waiting partition-only on-demand
  /// jobs (FIFO) on the partition's idle nodes.
  void TryStartPartitionJobs(SimTime now);

  const Trace* trace_;
  HybridConfig config_;
  Collector* collector_;
  Simulator* sim_;
  ExecutionEngine engine_;
  ReservationManager reservations_;
  LeaseLedger ledger_;
  UtilizationTracker util_track_;
  /// Jobs tombstoned by CancelJob: their already-scheduled submit/notice
  /// events fire as no-ops (cheaper and replay-stable vs. event-handle
  /// bookkeeping).
  std::unordered_set<JobId> canceled_;
  MechanismRuntime mech_;
  std::unique_ptr<Context> ctx_;
};

// NOTE: RunSimulation moved to exp/session.h, where it is a thin wrapper
// around SimulationSession — the facade that owns the trace / collector /
// simulator / scheduler lifetimes this constructor documents by hand.

}  // namespace hs
