#include "core/mechanism_context.h"

#include <stdexcept>
#include <string>

namespace hs {

EngineMechanismView::EngineMechanismView(const ExecutionEngine& engine,
                                         SimTime reservation_timeout)
    : engine_(&engine), reservation_timeout_(reservation_timeout) {}

const JobRecord& EngineMechanismView::record(JobId id) const {
  return engine_->record(id);
}

std::vector<JobId> EngineMechanismView::RunningIds() const {
  return engine_->RunningIds();
}

const RunningJob* EngineMechanismView::Running(JobId id) const {
  return engine_->Running(id);
}

bool EngineMechanismView::IsPreemptable(JobId id) const {
  return engine_->IsPreemptable(id);
}

SimTime EngineMechanismView::EstimatedEnd(JobId id, SimTime now) const {
  return engine_->EstimatedEnd(id, now);
}

double EngineMechanismView::PreemptionCostNodeSec(JobId id, SimTime now) const {
  return engine_->PreemptionCostNodeSec(id, now);
}

SimTime EngineMechanismView::NextCheckpointCompletion(JobId id, SimTime now) const {
  return engine_->NextCheckpointCompletion(id, now);
}

int EngineMechanismView::ShrinkableNodes(JobId id) const {
  return engine_->ShrinkableNodes(id);
}

int EngineMechanismView::FreeCount() const { return engine_->cluster().free_count(); }

int EngineMechanismView::ReservedCount(JobId od) const {
  return engine_->cluster().ReservedCount(od);
}

int EngineMechanismView::PendingDrainNodes(JobId od) const {
  int total = 0;
  for (const JobId id : engine_->RunningIds()) {
    const RunningJob* r = engine_->Running(id);
    if (r->draining && r->drain_for == od) total += r->alloc;
  }
  return total;
}

SimTime EngineMechanismView::drain_warning() const {
  return engine_->config().drain_warning;
}

Collector& EngineMechanismView::collector() { ReadOnly("collector"); }

void EngineMechanismView::OpenReservation(JobId, int, SimTime, SimTime) {
  ReadOnly("OpenReservation");
}

EventId EngineMechanismView::Schedule(SimTime, EventKind, JobId, std::int64_t) {
  ReadOnly("Schedule");
}

std::vector<int> EngineMechanismView::PreemptNow(JobId, SimTime, PreemptKind) {
  ReadOnly("PreemptNow");
}

void EngineMechanismView::BeginDrain(JobId, JobId, SimTime) { ReadOnly("BeginDrain"); }

std::vector<int> EngineMechanismView::ShrinkBy(JobId, int, SimTime) {
  ReadOnly("ShrinkBy");
}

void EngineMechanismView::RecordLease(JobId, JobId, int, LeaseKind) {
  ReadOnly("RecordLease");
}

void EngineMechanismView::GiveTo(JobId) { ReadOnly("GiveTo"); }

void EngineMechanismView::ReadOnly(const char* what) const {
  throw std::logic_error(std::string("EngineMechanismView is read-only: ") + what);
}

}  // namespace hs
