// MechanismContext: the narrow scheduler facade behavioral mechanism
// strategies (NoticeStrategy / ArrivalStrategy) are allowed to touch.
//
// Strategies never see HybridScheduler itself — only this interface, which
// exposes exactly the state the paper's mechanisms need: execution queries,
// the free pool, reservations, the lease ledger, event scheduling, and the
// preemption/drain/shrink primitives. The scheduler implements it over its
// internals; tests implement it as a fake to unit-test each hook; the
// read-only EngineMechanismView below adapts a bare ExecutionEngine so the
// pure planning helpers (ExpectedReleaseNodes, PlanCupPreemptions, ...)
// keep working outside a full scheduler.
#pragma once

#include <vector>

#include "metrics/collector.h"
#include "platform/lease_ledger.h"
#include "platform/reservation.h"
#include "sched/batch_scheduler.h"
#include "sim/event.h"

namespace hs {

class MechanismContext {
 public:
  virtual ~MechanismContext() = default;

  // --- queries: jobs and executions ---------------------------------------

  virtual const JobRecord& record(JobId id) const = 0;
  /// Running executions in ascending id order.
  virtual std::vector<JobId> RunningIds() const = 0;
  virtual const RunningJob* Running(JobId id) const = 0;
  virtual bool IsPreemptable(JobId id) const = 0;
  virtual SimTime EstimatedEnd(JobId id, SimTime now) const = 0;
  virtual double PreemptionCostNodeSec(JobId id, SimTime now) const = 0;
  virtual SimTime NextCheckpointCompletion(JobId id, SimTime now) const = 0;
  virtual int ShrinkableNodes(JobId id) const = 0;

  // --- queries: free pool and reservations --------------------------------

  virtual int FreeCount() const = 0;
  /// Nodes the cluster currently holds for `od`'s reservation.
  virtual int ReservedCount(JobId od) const = 0;
  virtual bool HasReservation(JobId od) const = 0;
  virtual const Reservation* FindReservation(JobId od) const = 0;
  /// Nodes still missing (target - held); 0 when satisfied or absent.
  virtual int ReservationDeficit(JobId od) const = 0;
  /// Nodes that pending drains will deliver to `od` when their warnings
  /// expire.
  virtual int PendingDrainNodes(JobId od) const = 0;

  // --- configuration and metrics ------------------------------------------

  virtual SimTime drain_warning() const = 0;
  virtual SimTime reservation_timeout() const = 0;
  /// For DecisionTimer scopes around mechanism decisions (Observation 10).
  virtual Collector& collector() = 0;

  // --- mutations -----------------------------------------------------------

  /// Opens an absorbing reservation that collects freed nodes for `od`.
  virtual void OpenReservation(JobId od, int target, SimTime notice_time,
                               SimTime predicted_arrival) = 0;
  virtual EventId Schedule(SimTime time, EventKind kind, JobId job,
                           std::int64_t aux = 0) = 0;
  /// Immediate preemption; returns the freed nodes (see ExecutionEngine).
  virtual std::vector<int> PreemptNow(JobId victim, SimTime now, PreemptKind kind) = 0;
  /// Starts the drain warning on a running malleable job for `od`.
  virtual void BeginDrain(JobId victim, JobId od, SimTime now) = 0;
  /// Shrinks a running malleable job; returns the released nodes.
  virtual std::vector<int> ShrinkBy(JobId victim, int nodes, SimTime now) = 0;
  /// Records that `lender` gave `nodes` nodes to `od` (settled at `od`'s
  /// completion).
  virtual void RecordLease(JobId od, JobId lender, int nodes, LeaseKind kind) = 0;
  /// Tops up `od`'s reservation from the free pool, then lets every other
  /// absorbing reservation take its share (notice order).
  virtual void GiveTo(JobId od) = 0;
};

/// Read-only MechanismContext over a bare ExecutionEngine: answers every
/// execution/free-pool query, reports "no reservations", and throws
/// std::logic_error on any mutation (and on collector()). Backs the
/// engine-signature overloads of the planning helpers so benches and tests
/// can plan against an engine without a full scheduler.
class EngineMechanismView final : public MechanismContext {
 public:
  explicit EngineMechanismView(const ExecutionEngine& engine,
                               SimTime reservation_timeout = 10 * kMinute);

  const JobRecord& record(JobId id) const override;
  std::vector<JobId> RunningIds() const override;
  const RunningJob* Running(JobId id) const override;
  bool IsPreemptable(JobId id) const override;
  SimTime EstimatedEnd(JobId id, SimTime now) const override;
  double PreemptionCostNodeSec(JobId id, SimTime now) const override;
  SimTime NextCheckpointCompletion(JobId id, SimTime now) const override;
  int ShrinkableNodes(JobId id) const override;

  int FreeCount() const override;
  int ReservedCount(JobId od) const override;
  bool HasReservation(JobId) const override { return false; }
  const Reservation* FindReservation(JobId) const override { return nullptr; }
  int ReservationDeficit(JobId) const override { return 0; }
  int PendingDrainNodes(JobId od) const override;

  SimTime drain_warning() const override;
  SimTime reservation_timeout() const override { return reservation_timeout_; }
  Collector& collector() override;

  void OpenReservation(JobId, int, SimTime, SimTime) override;
  EventId Schedule(SimTime, EventKind, JobId, std::int64_t) override;
  std::vector<int> PreemptNow(JobId, SimTime, PreemptKind) override;
  void BeginDrain(JobId, JobId, SimTime) override;
  std::vector<int> ShrinkBy(JobId, int, SimTime) override;
  void RecordLease(JobId, JobId, int, LeaseKind) override;
  void GiveTo(JobId) override;

 private:
  [[noreturn]] void ReadOnly(const char* what) const;

  const ExecutionEngine* engine_;
  SimTime reservation_timeout_;
};

}  // namespace hs
