#include "platform/reservation.h"

#include <algorithm>
#include <stdexcept>

namespace hs {

int ReservationManager::Open(JobId od, int target, SimTime notice_time,
                             SimTime predicted_arrival, bool absorbing,
                             bool grab_free) {
  if (Has(od)) throw std::runtime_error("ReservationManager::Open: duplicate");
  Reservation r;
  r.od = od;
  r.target = target;
  r.notice_time = notice_time;
  r.predicted_arrival = predicted_arrival;
  r.absorbing = absorbing;
  const auto pos = std::upper_bound(
      open_.begin(), open_.end(), r, [](const Reservation& a, const Reservation& b) {
        if (a.notice_time != b.notice_time) return a.notice_time < b.notice_time;
        return a.od < b.od;
      });
  open_.insert(pos, r);
  return grab_free ? cluster_.ReserveFromFree(od, target) : 0;
}

int ReservationManager::TopUp(JobId od) {
  const auto it = FindIt(od);
  if (it == open_.end()) return 0;
  const int deficit = std::max(0, it->target - cluster_.ReservedCount(od));
  if (deficit == 0) return 0;
  return cluster_.ReserveFromFree(od, deficit);
}

bool ReservationManager::Has(JobId od) const { return FindIt(od) != open_.end(); }

const Reservation* ReservationManager::Find(JobId od) const {
  const auto it = FindIt(od);
  return it == open_.end() ? nullptr : &*it;
}

std::vector<Reservation>::iterator ReservationManager::FindIt(JobId od) {
  return std::find_if(open_.begin(), open_.end(),
                      [od](const Reservation& r) { return r.od == od; });
}

std::vector<Reservation>::const_iterator ReservationManager::FindIt(JobId od) const {
  return std::find_if(open_.begin(), open_.end(),
                      [od](const Reservation& r) { return r.od == od; });
}

int ReservationManager::Deficit(JobId od) const {
  const auto it = FindIt(od);
  if (it == open_.end()) return 0;
  return std::max(0, it->target - cluster_.ReservedCount(od));
}

void ReservationManager::MarkArrived(JobId od) {
  const auto it = FindIt(od);
  if (it != open_.end()) it->arrived = true;
}

std::vector<int> ReservationManager::RouteFreedNodes(const std::vector<int>& nodes) {
  std::vector<int> remaining = nodes;
  for (auto& r : open_) {
    if (remaining.empty()) break;
    if (!r.absorbing) continue;
    int deficit = std::max(0, r.target - cluster_.ReservedCount(r.od));
    if (deficit == 0) continue;
    const int take = std::min<int>(deficit, static_cast<int>(remaining.size()));
    std::vector<int> chosen(remaining.end() - take, remaining.end());
    remaining.resize(remaining.size() - take);
    cluster_.ReserveSpecific(r.od, chosen);
  }
  return remaining;
}

int ReservationManager::AbsorbFromFree() {
  int absorbed = 0;
  for (const auto& r : open_) {
    if (!r.absorbing) continue;
    const int deficit = std::max(0, r.target - cluster_.ReservedCount(r.od));
    if (deficit > 0) absorbed += cluster_.ReserveFromFree(r.od, deficit);
  }
  return absorbed;
}

std::vector<int> ReservationManager::Close(JobId od) {
  const auto it = FindIt(od);
  if (it == open_.end()) return {};
  open_.erase(it);
  return cluster_.Unreserve(od);
}

std::vector<Reservation> ReservationManager::Snapshot() const { return open_; }

int ReservationManager::TotalDeficit() const {
  int total = 0;
  for (const auto& r : open_) {
    total += std::max(0, r.target - cluster_.ReservedCount(r.od));
  }
  return total;
}

}  // namespace hs
