#include "platform/lease_ledger.h"

namespace hs {

void LeaseLedger::Record(JobId od, JobId lender, int nodes, LeaseKind kind) {
  if (nodes <= 0) return;
  leases_[od].push_back(Lease{lender, nodes, kind});
}

std::vector<Lease> LeaseLedger::Take(JobId od) {
  const auto it = leases_.find(od);
  if (it == leases_.end()) return {};
  std::vector<Lease> out = std::move(it->second);
  leases_.erase(it);
  return out;
}

const std::vector<Lease>* LeaseLedger::Peek(JobId od) const {
  const auto it = leases_.find(od);
  return it == leases_.end() ? nullptr : &it->second;
}

void LeaseLedger::Drop(JobId od) { leases_.erase(od); }

std::size_t LeaseLedger::TotalOutstanding() const {
  std::size_t total = 0;
  for (const auto& [od, v] : leases_) total += v.size();
  return total;
}

}  // namespace hs
