// Logical reservations held for on-demand jobs (the CUA/CUP machinery).
//
// A reservation tracks how many nodes an on-demand job still needs, when it
// is predicted to arrive, and when its notice was received. Freed nodes are
// routed to unsatisfied reservations in notice order (§III-B1: "released
// nodes are assigned to the on-demand job with the earliest advance
// notice"). The node-level bookkeeping lives in Cluster; this class owns
// the policy-side state.
#pragma once

#include <optional>
#include <vector>

#include "platform/cluster.h"
#include "util/time.h"
#include "workload/job.h"

namespace hs {

struct Reservation {
  JobId od = kNoJob;
  int target = 0;                  // nodes the on-demand job requested
  SimTime notice_time = kNever;    // priority key for routing releases
  SimTime predicted_arrival = kNever;  // kNever: already arrived / unknown
  bool arrived = false;            // true once the job showed up
  /// Absorbing reservations (CUA/CUP collection, arrived on-demand jobs)
  /// receive released nodes; non-absorbing ones (lender holds after lease
  /// settlement) only keep what was explicitly reserved for them.
  bool absorbing = true;
};

class ReservationManager {
 public:
  explicit ReservationManager(Cluster& cluster) : cluster_(cluster) {}

  /// Clone constructor (the session-fork path): copies the open-reservation
  /// list and rebinds to `cluster` — the fork's own cluster copy, which
  /// already carries the matching node-level reservation marks.
  ReservationManager(const ReservationManager& other, Cluster& cluster)
      : cluster_(cluster), open_(other.open_) {}

  /// Opens a reservation; when `grab_free` it immediately takes free nodes
  /// (up to target). Returns the number of nodes reserved right away.
  int Open(JobId od, int target, SimTime notice_time, SimTime predicted_arrival,
           bool absorbing = true, bool grab_free = true);

  /// Grabs free nodes toward the target; returns how many were added.
  int TopUp(JobId od);

  bool Has(JobId od) const;
  const Reservation* Find(JobId od) const;

  /// Nodes still missing (target - held); 0 when satisfied or absent.
  int Deficit(JobId od) const;

  /// Marks the job as arrived (stops CUP-style preparation decisions).
  void MarkArrived(JobId od);

  /// Routes newly freed nodes to unsatisfied reservations in notice order.
  /// `nodes` must be free in the cluster. Returns nodes left unrouted.
  std::vector<int> RouteFreedNodes(const std::vector<int>& nodes);

  /// Tops up every absorbing, unsatisfied reservation from the free pool in
  /// notice order (§III-B1's "earliest advance notice first" routing).
  /// Returns the total number of nodes absorbed.
  int AbsorbFromFree();

  /// Closes the reservation, releasing held idle nodes back to free.
  /// Returns the freed nodes.
  std::vector<int> Close(JobId od);

  /// All open reservations (notice order), copied. Prefer OpenView() on
  /// hot paths; Snapshot() stays for callers that mutate while iterating.
  std::vector<Reservation> Snapshot() const;

  /// Copy-free view of the open reservations (notice order). Invalidated
  /// by Open/Close; do not call either while iterating.
  const std::vector<Reservation>& OpenView() const { return open_; }

  /// Sum of targets not yet covered across open, unarrived reservations.
  int TotalDeficit() const;

 private:
  Cluster& cluster_;
  std::vector<Reservation> open_;  // kept sorted by (notice_time, od)

  std::vector<Reservation>::iterator FindIt(JobId od);
  std::vector<Reservation>::const_iterator FindIt(JobId od) const;
};

}  // namespace hs
