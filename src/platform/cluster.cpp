#include "platform/cluster.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace hs {

Cluster::Cluster(int num_nodes) {
  if (num_nodes <= 0) throw std::invalid_argument("Cluster: num_nodes must be positive");
  running_.assign(num_nodes, kNoJob);
  reserved_.assign(num_nodes, kNoJob);
  free_.reserve(num_nodes);
  // Push in reverse so PopFree hands out low node ids first (stable tests).
  for (int n = num_nodes - 1; n >= 0; --n) free_.push_back(n);
}

void Cluster::Touch(SimTime now) {
  assert(now >= last_touch_);
  const auto dt = static_cast<double>(now - last_touch_);
  busy_node_seconds_ += dt * busy_count_;
  reserved_idle_node_seconds_ += dt * reserved_idle_count_;
  last_touch_ = now;
}

void Cluster::MakeFree(int node) {
  assert(running_[node] == kNoJob && reserved_[node] == kNoJob);
  free_.push_back(node);
}

int Cluster::PopFree() {
  assert(!free_.empty());
  const int node = free_.back();
  free_.pop_back();
  return node;
}

std::vector<int> Cluster::StartFromFree(JobId job, int count) {
  if (count > free_count()) throw std::runtime_error("StartFromFree: not enough free nodes");
  if (alloc_.count(job)) throw std::runtime_error("StartFromFree: job already running");
  std::vector<int> nodes;
  nodes.reserve(count);
  for (int i = 0; i < count; ++i) {
    const int node = PopFree();
    running_[node] = job;
    nodes.push_back(node);
  }
  busy_count_ += count;
  alloc_[job] = nodes;
  return nodes;
}

void Cluster::StartOn(JobId job, const std::vector<int>& nodes) {
  if (alloc_.count(job)) throw std::runtime_error("StartOn: job already running");
  for (const int node : nodes) {
    if (running_[node] != kNoJob) throw std::runtime_error("StartOn: node occupied");
  }
  for (const int node : nodes) {
    if (reserved_[node] != kNoJob) {
      --reserved_idle_count_;  // reserved-idle -> reserved tenant
    } else {
      // Node must come off the free list.
      const auto it = std::find(free_.begin(), free_.end(), node);
      assert(it != free_.end());
      free_.erase(it);
    }
    running_[node] = job;
    ++busy_count_;
  }
  alloc_[job] = nodes;
}

std::vector<int> Cluster::Finish(JobId job) {
  const auto it = alloc_.find(job);
  if (it == alloc_.end()) throw std::runtime_error("Finish: job not running");
  std::vector<int> released = std::move(it->second);
  alloc_.erase(it);
  for (const int node : released) {
    assert(running_[node] == job);
    running_[node] = kNoJob;
    --busy_count_;
    if (reserved_[node] != kNoJob) {
      ++reserved_idle_count_;  // back to reserved-idle
    } else {
      MakeFree(node);
    }
  }
  return released;
}

std::vector<int> Cluster::ReleaseSome(JobId job, int count) {
  const auto it = alloc_.find(job);
  if (it == alloc_.end()) throw std::runtime_error("ReleaseSome: job not running");
  auto& nodes = it->second;
  if (count < 0 || count > static_cast<int>(nodes.size())) {
    throw std::runtime_error("ReleaseSome: bad count");
  }
  // Prefer releasing nodes that carry no reservation so tenants shrink off
  // plain nodes first.
  std::stable_partition(nodes.begin(), nodes.end(),
                        [this](int n) { return reserved_[n] != kNoJob; });
  std::vector<int> released;
  released.reserve(count);
  for (int i = 0; i < count; ++i) {
    const int node = nodes.back();
    nodes.pop_back();
    running_[node] = kNoJob;
    --busy_count_;
    if (reserved_[node] != kNoJob) {
      ++reserved_idle_count_;
    } else {
      MakeFree(node);
    }
    released.push_back(node);
  }
  if (nodes.empty()) alloc_.erase(it);
  return released;
}

void Cluster::AddNodes(JobId job, const std::vector<int>& nodes) {
  const auto it = alloc_.find(job);
  if (it == alloc_.end()) throw std::runtime_error("AddNodes: job not running");
  for (const int node : nodes) {
    if (running_[node] != kNoJob) throw std::runtime_error("AddNodes: node occupied");
  }
  for (const int node : nodes) {
    if (reserved_[node] != kNoJob) {
      --reserved_idle_count_;
    } else {
      const auto fit = std::find(free_.begin(), free_.end(), node);
      assert(fit != free_.end());
      free_.erase(fit);
    }
    running_[node] = job;
    ++busy_count_;
    it->second.push_back(node);
  }
}

std::vector<int> Cluster::ExpandFromFree(JobId job, int count) {
  const auto it = alloc_.find(job);
  if (it == alloc_.end()) throw std::runtime_error("ExpandFromFree: job not running");
  if (count > free_count()) throw std::runtime_error("ExpandFromFree: not enough free nodes");
  std::vector<int> added;
  added.reserve(count);
  for (int i = 0; i < count; ++i) {
    const int node = PopFree();
    running_[node] = job;
    ++busy_count_;
    it->second.push_back(node);
    added.push_back(node);
  }
  return added;
}

int Cluster::ReserveFromFree(JobId od, int count) {
  const int take = std::min(count, free_count());
  auto& res = reservation_[od];
  for (int i = 0; i < take; ++i) {
    const int node = PopFree();
    reserved_[node] = od;
    res.push_back(node);
  }
  reserved_idle_count_ += take;
  if (res.empty()) reservation_.erase(od);
  return take;
}

void Cluster::ReserveSpecific(JobId od, const std::vector<int>& nodes) {
  for (const int node : nodes) {
    if (running_[node] != kNoJob || reserved_[node] != kNoJob) {
      throw std::runtime_error("ReserveSpecific: node not free");
    }
  }
  auto& res = reservation_[od];
  for (const int node : nodes) {
    const auto it = std::find(free_.begin(), free_.end(), node);
    assert(it != free_.end());
    free_.erase(it);
    reserved_[node] = od;
    ++reserved_idle_count_;
    res.push_back(node);
  }
}

std::vector<int> Cluster::Unreserve(JobId od) {
  const auto it = reservation_.find(od);
  if (it == reservation_.end()) return {};
  std::vector<int> freed;
  for (const int node : it->second) {
    assert(reserved_[node] == od);
    reserved_[node] = kNoJob;
    if (running_[node] == kNoJob) {
      --reserved_idle_count_;
      MakeFree(node);
      freed.push_back(node);
    }
    // Tenant nodes simply lose the mark; they free normally at job finish.
  }
  reservation_.erase(it);
  return freed;
}

std::vector<int> Cluster::StartOnReservation(JobId job, int extra_from_free) {
  if (alloc_.count(job)) throw std::runtime_error("StartOnReservation: job already running");
  if (extra_from_free > free_count()) {
    throw std::runtime_error("StartOnReservation: not enough free nodes");
  }
  std::vector<int> nodes;
  const auto it = reservation_.find(job);
  if (it != reservation_.end()) {
    std::vector<int> still_reserved;
    for (const int node : it->second) {
      if (running_[node] == kNoJob) {
        reserved_[node] = kNoJob;
        --reserved_idle_count_;
        running_[node] = job;
        ++busy_count_;
        nodes.push_back(node);
      } else {
        still_reserved.push_back(node);
      }
    }
    if (still_reserved.empty()) {
      reservation_.erase(it);
    } else {
      it->second = std::move(still_reserved);
    }
  }
  for (int i = 0; i < extra_from_free; ++i) {
    const int node = PopFree();
    running_[node] = job;
    ++busy_count_;
    nodes.push_back(node);
  }
  alloc_[job] = nodes;
  return nodes;
}

std::vector<int> Cluster::NodesOf(JobId job) const {
  const auto it = alloc_.find(job);
  return it == alloc_.end() ? std::vector<int>{} : it->second;
}

int Cluster::AllocCount(JobId job) const {
  const auto it = alloc_.find(job);
  return it == alloc_.end() ? 0 : static_cast<int>(it->second.size());
}

int Cluster::ReservedCount(JobId od) const {
  const auto it = reservation_.find(od);
  return it == reservation_.end() ? 0 : static_cast<int>(it->second.size());
}

int Cluster::ReservedIdleCount(JobId od) const {
  const auto it = reservation_.find(od);
  if (it == reservation_.end()) return 0;
  int idle = 0;
  for (const int node : it->second) idle += (running_[node] == kNoJob) ? 1 : 0;
  return idle;
}

std::vector<int> Cluster::ReservedIdleNodes(JobId od) const {
  std::vector<int> idle;
  const auto it = reservation_.find(od);
  if (it == reservation_.end()) return idle;
  for (const int node : it->second) {
    if (running_[node] == kNoJob) idle.push_back(node);
  }
  return idle;
}

std::vector<JobId> Cluster::TenantsOf(JobId od) const {
  std::vector<JobId> tenants;
  const auto it = reservation_.find(od);
  if (it == reservation_.end()) return tenants;
  for (const int node : it->second) {
    const JobId tenant = running_[node];
    if (tenant != kNoJob &&
        std::find(tenants.begin(), tenants.end(), tenant) == tenants.end()) {
      tenants.push_back(tenant);
    }
  }
  return tenants;
}

std::string Cluster::CheckInvariants() const {
  int busy = 0, reserved_idle = 0;
  for (int n = 0; n < num_nodes(); ++n) {
    if (running_[n] != kNoJob) ++busy;
    if (reserved_[n] != kNoJob && running_[n] == kNoJob) ++reserved_idle;
  }
  if (busy != busy_count_) return "busy count drift";
  if (reserved_idle != reserved_idle_count_) return "reserved-idle count drift";
  if (static_cast<int>(free_.size()) != num_nodes() - busy - reserved_idle) {
    return "free list size drift";
  }
  for (const int node : free_) {
    if (running_[node] != kNoJob || reserved_[node] != kNoJob) {
      return "non-free node on free list";
    }
  }
  for (const auto& [job, nodes] : alloc_) {
    for (const int node : nodes) {
      if (running_[node] != job) return "alloc map drift";
    }
  }
  for (const auto& [od, nodes] : reservation_) {
    if (nodes.empty()) return "empty reservation retained";
    for (const int node : nodes) {
      if (reserved_[node] != od) return "reservation map drift";
    }
  }
  return {};
}

}  // namespace hs
