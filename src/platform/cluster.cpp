#include "platform/cluster.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>
#include <unordered_set>

namespace hs {

namespace {
constexpr int kNotOnFreeList = -1;
constexpr int kFreeTombstone = -1;
}  // namespace

Cluster::Cluster(int num_nodes) {
  if (num_nodes <= 0) throw std::invalid_argument("Cluster: num_nodes must be positive");
  running_.assign(num_nodes, kNoJob);
  reserved_.assign(num_nodes, kNoJob);
  free_.reserve(num_nodes);
  free_pos_.assign(num_nodes, kNotOnFreeList);
  // Push in reverse so PopFree hands out low node ids first (stable tests).
  for (int n = num_nodes - 1; n >= 0; --n) MakeFree(n);
}

void Cluster::Touch(SimTime now) {
  assert(now >= last_touch_);
  const auto dt = static_cast<double>(now - last_touch_);
  busy_node_seconds_ += dt * busy_count_;
  reserved_idle_node_seconds_ += dt * reserved_idle_count_;
  last_touch_ = now;
}

void Cluster::MakeFree(int node) {
  assert(running_[node] == kNoJob && reserved_[node] == kNoJob);
  assert(free_pos_[node] == kNotOnFreeList);
  free_pos_[node] = static_cast<int>(free_.size());
  free_.push_back(node);
  ++free_live_;
}

int Cluster::PopFree() {
  assert(free_live_ > 0);
  while (free_.back() == kFreeTombstone) {
    free_.pop_back();
    --free_dead_;
  }
  const int node = free_.back();
  free_.pop_back();
  free_pos_[node] = kNotOnFreeList;
  --free_live_;
  return node;
}

void Cluster::RemoveFromFree(int node) {
  const int pos = free_pos_[node];
  assert(pos >= 0 && free_[pos] == node);
  free_[pos] = kFreeTombstone;
  free_pos_[node] = kNotOnFreeList;
  --free_live_;
  ++free_dead_;
  if (free_dead_ > free_live_ && free_dead_ > 16) CompactFreeList();
}

void Cluster::CompactFreeList() {
  std::size_t write = 0;
  for (const int node : free_) {
    if (node == kFreeTombstone) continue;
    free_pos_[node] = static_cast<int>(write);
    free_[write++] = node;
  }
  free_.resize(write);
  free_dead_ = 0;
}

std::vector<int> Cluster::StartFromFree(JobId job, int count) {
  ++epoch_;
  if (count > free_count()) throw std::runtime_error("StartFromFree: not enough free nodes");
  if (alloc_.count(job)) throw std::runtime_error("StartFromFree: job already running");
  std::vector<int> nodes;
  nodes.reserve(count);
  for (int i = 0; i < count; ++i) {
    const int node = PopFree();
    running_[node] = job;
    nodes.push_back(node);
  }
  busy_count_ += count;
  alloc_[job] = nodes;
  return nodes;
}

void Cluster::StartOn(JobId job, const std::vector<int>& nodes) {
  ++epoch_;
  if (alloc_.count(job)) throw std::runtime_error("StartOn: job already running");
  for (const int node : nodes) {
    if (running_[node] != kNoJob) throw std::runtime_error("StartOn: node occupied");
  }
  for (const int node : nodes) {
    if (reserved_[node] != kNoJob) {
      --reserved_idle_count_;  // reserved-idle -> reserved tenant
      --reserved_idle_by_od_[reserved_[node]];
    } else {
      RemoveFromFree(node);
    }
    running_[node] = job;
    ++busy_count_;
  }
  alloc_[job] = nodes;
}

std::vector<int> Cluster::Finish(JobId job) {
  ++epoch_;
  const auto it = alloc_.find(job);
  if (it == alloc_.end()) throw std::runtime_error("Finish: job not running");
  std::vector<int> released = std::move(it->second);
  alloc_.erase(it);
  for (const int node : released) {
    assert(running_[node] == job);
    running_[node] = kNoJob;
    --busy_count_;
    if (reserved_[node] != kNoJob) {
      ++reserved_idle_count_;  // back to reserved-idle
      ++reserved_idle_by_od_[reserved_[node]];
    } else {
      MakeFree(node);
    }
  }
  return released;
}

std::vector<int> Cluster::ReleaseSome(JobId job, int count) {
  ++epoch_;
  const auto it = alloc_.find(job);
  if (it == alloc_.end()) throw std::runtime_error("ReleaseSome: job not running");
  auto& nodes = it->second;
  if (count < 0 || count > static_cast<int>(nodes.size())) {
    throw std::runtime_error("ReleaseSome: bad count");
  }
  // Prefer releasing nodes that carry no reservation so tenants shrink off
  // plain nodes first.
  std::stable_partition(nodes.begin(), nodes.end(),
                        [this](int n) { return reserved_[n] != kNoJob; });
  std::vector<int> released;
  released.reserve(count);
  for (int i = 0; i < count; ++i) {
    const int node = nodes.back();
    nodes.pop_back();
    running_[node] = kNoJob;
    --busy_count_;
    if (reserved_[node] != kNoJob) {
      ++reserved_idle_count_;
      ++reserved_idle_by_od_[reserved_[node]];
    } else {
      MakeFree(node);
    }
    released.push_back(node);
  }
  if (nodes.empty()) alloc_.erase(it);
  return released;
}

void Cluster::AddNodes(JobId job, const std::vector<int>& nodes) {
  ++epoch_;
  const auto it = alloc_.find(job);
  if (it == alloc_.end()) throw std::runtime_error("AddNodes: job not running");
  for (const int node : nodes) {
    if (running_[node] != kNoJob) throw std::runtime_error("AddNodes: node occupied");
  }
  for (const int node : nodes) {
    if (reserved_[node] != kNoJob) {
      --reserved_idle_count_;
      --reserved_idle_by_od_[reserved_[node]];
    } else {
      RemoveFromFree(node);
    }
    running_[node] = job;
    ++busy_count_;
    it->second.push_back(node);
  }
}

std::vector<int> Cluster::ExpandFromFree(JobId job, int count) {
  ++epoch_;
  const auto it = alloc_.find(job);
  if (it == alloc_.end()) throw std::runtime_error("ExpandFromFree: job not running");
  if (count > free_count()) throw std::runtime_error("ExpandFromFree: not enough free nodes");
  std::vector<int> added;
  added.reserve(count);
  for (int i = 0; i < count; ++i) {
    const int node = PopFree();
    running_[node] = job;
    ++busy_count_;
    it->second.push_back(node);
    added.push_back(node);
  }
  return added;
}

int Cluster::ReserveFromFree(JobId od, int count) {
  ++epoch_;
  const int take = std::min(count, free_count());
  auto& res = reservation_[od];
  for (int i = 0; i < take; ++i) {
    const int node = PopFree();
    reserved_[node] = od;
    res.push_back(node);
  }
  reserved_idle_count_ += take;
  if (res.empty()) {
    reservation_.erase(od);
  } else {
    reserved_idle_by_od_[od] += take;
  }
  return take;
}

void Cluster::ReserveSpecific(JobId od, const std::vector<int>& nodes) {
  ++epoch_;
  for (const int node : nodes) {
    if (running_[node] != kNoJob || reserved_[node] != kNoJob) {
      throw std::runtime_error("ReserveSpecific: node not free");
    }
  }
  auto& res = reservation_[od];
  for (const int node : nodes) {
    RemoveFromFree(node);
    reserved_[node] = od;
    ++reserved_idle_count_;
    ++reserved_idle_by_od_[od];
    res.push_back(node);
  }
}

std::vector<int> Cluster::Unreserve(JobId od) {
  ++epoch_;
  const auto it = reservation_.find(od);
  if (it == reservation_.end()) return {};
  std::vector<int> freed;
  for (const int node : it->second) {
    assert(reserved_[node] == od);
    reserved_[node] = kNoJob;
    if (running_[node] == kNoJob) {
      --reserved_idle_count_;
      MakeFree(node);
      freed.push_back(node);
    }
    // Tenant nodes simply lose the mark; they free normally at job finish.
  }
  reservation_.erase(it);
  reserved_idle_by_od_.erase(od);
  return freed;
}

std::vector<int> Cluster::StartOnReservation(JobId job, int extra_from_free) {
  ++epoch_;
  if (alloc_.count(job)) throw std::runtime_error("StartOnReservation: job already running");
  if (extra_from_free > free_count()) {
    throw std::runtime_error("StartOnReservation: not enough free nodes");
  }
  std::vector<int> nodes;
  const auto it = reservation_.find(job);
  if (it != reservation_.end()) {
    std::vector<int> still_reserved;
    for (const int node : it->second) {
      if (running_[node] == kNoJob) {
        reserved_[node] = kNoJob;
        --reserved_idle_count_;
        --reserved_idle_by_od_[job];
        running_[node] = job;
        ++busy_count_;
        nodes.push_back(node);
      } else {
        still_reserved.push_back(node);
      }
    }
    if (still_reserved.empty()) {
      reservation_.erase(it);
      reserved_idle_by_od_.erase(job);
    } else {
      it->second = std::move(still_reserved);
    }
  }
  for (int i = 0; i < extra_from_free; ++i) {
    const int node = PopFree();
    running_[node] = job;
    ++busy_count_;
    nodes.push_back(node);
  }
  alloc_[job] = nodes;
  return nodes;
}

std::vector<int> Cluster::NodesOf(JobId job) const {
  const auto it = alloc_.find(job);
  return it == alloc_.end() ? std::vector<int>{} : it->second;
}

const std::vector<int>& Cluster::NodesViewOf(JobId job) const {
  static const std::vector<int> kEmpty;
  const auto it = alloc_.find(job);
  return it == alloc_.end() ? kEmpty : it->second;
}

int Cluster::AllocCount(JobId job) const {
  const auto it = alloc_.find(job);
  return it == alloc_.end() ? 0 : static_cast<int>(it->second.size());
}

int Cluster::ReservedCount(JobId od) const {
  const auto it = reservation_.find(od);
  return it == reservation_.end() ? 0 : static_cast<int>(it->second.size());
}

int Cluster::ReservedIdleCount(JobId od) const {
  const auto it = reserved_idle_by_od_.find(od);
  return it == reserved_idle_by_od_.end() ? 0 : it->second;
}

std::vector<int> Cluster::ReservedIdleNodes(JobId od) const {
  std::vector<int> idle;
  const auto it = reservation_.find(od);
  if (it == reservation_.end()) return idle;
  for (const int node : it->second) {
    if (running_[node] == kNoJob) idle.push_back(node);
  }
  return idle;
}

std::vector<JobId> Cluster::TenantsOf(JobId od) const {
  std::vector<JobId> tenants;
  const auto it = reservation_.find(od);
  if (it == reservation_.end()) return tenants;
  // Set-based dedup (the std::find-over-the-result version was O(n^2) for
  // large reservations); first-seen order is preserved because callers
  // preempt tenants in this order.
  std::unordered_set<JobId> seen;
  for (const int node : it->second) {
    const JobId tenant = running_[node];
    if (tenant != kNoJob && seen.insert(tenant).second) {
      tenants.push_back(tenant);
    }
  }
  return tenants;
}

std::string Cluster::CheckInvariants() const {
  int busy = 0, reserved_idle = 0;
  for (int n = 0; n < num_nodes(); ++n) {
    if (running_[n] != kNoJob) ++busy;
    if (reserved_[n] != kNoJob && running_[n] == kNoJob) ++reserved_idle;
  }
  if (busy != busy_count_) return "busy count drift";
  if (reserved_idle != reserved_idle_count_) return "reserved-idle count drift";
  if (free_live_ != num_nodes() - busy - reserved_idle) {
    return "free list size drift";
  }
  int live = 0, dead = 0;
  for (std::size_t pos = 0; pos < free_.size(); ++pos) {
    const int node = free_[pos];
    if (node == kFreeTombstone) {
      ++dead;
      continue;
    }
    ++live;
    if (running_[node] != kNoJob || reserved_[node] != kNoJob) {
      return "non-free node on free list";
    }
    if (free_pos_[node] != static_cast<int>(pos)) return "free index drift";
  }
  if (live != free_live_ || dead != free_dead_) return "free live/dead count drift";
  for (int node = 0; node < num_nodes(); ++node) {
    const bool should_be_free =
        running_[node] == kNoJob && reserved_[node] == kNoJob;
    if (should_be_free != (free_pos_[node] != kNotOnFreeList)) {
      return "free index membership drift";
    }
  }
  for (const auto& [job, nodes] : alloc_) {
    for (const int node : nodes) {
      if (running_[node] != job) return "alloc map drift";
    }
  }
  for (const auto& [od, nodes] : reservation_) {
    if (nodes.empty()) return "empty reservation retained";
    int idle = 0;
    for (const int node : nodes) {
      if (reserved_[node] != od) return "reservation map drift";
      idle += (running_[node] == kNoJob) ? 1 : 0;
    }
    const auto idle_it = reserved_idle_by_od_.find(od);
    if ((idle_it == reserved_idle_by_od_.end() ? 0 : idle_it->second) != idle) {
      return "per-od reserved-idle count drift";
    }
  }
  for (const auto& [od, idle] : reserved_idle_by_od_) {
    if (reservation_.count(od) == 0) return "orphan per-od reserved-idle entry";
    if (idle < 0) return "negative per-od reserved-idle count";
  }
  return {};
}

}  // namespace hs
