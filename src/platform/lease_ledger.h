// Lease ledger: which running jobs lent nodes to which on-demand job.
//
// §III-B3: "once an on-demand job is completed, the on-demand job will try
// to return its nodes to the lenders" — preempted lenders that still wait
// resume immediately when whole; shrunk lenders expand back toward their
// original size. The ledger records the debts; the hybrid scheduler settles
// them at completion time.
#pragma once

#include <unordered_map>
#include <vector>

#include "workload/job.h"

namespace hs {

enum class LeaseKind : std::uint8_t {
  kPreempted = 0,      // lender was fully preempted at arrival (PAA)
  kShrunk = 1,         // lender was shrunk (SPAA)
  kPlanPreempted = 2,  // lender was preempted ahead of time (CUP)
};

struct Lease {
  JobId lender = kNoJob;
  int nodes = 0;
  LeaseKind kind = LeaseKind::kPreempted;
};

class LeaseLedger {
 public:
  /// Records that `lender` gave `nodes` nodes to `od`.
  void Record(JobId od, JobId lender, int nodes, LeaseKind kind);

  /// Leases held by `od`, in recording order (settlement order).
  std::vector<Lease> Take(JobId od);

  /// Leases without removing them.
  const std::vector<Lease>* Peek(JobId od) const;

  /// Drops all leases of `od` (e.g. reservation timeout).
  void Drop(JobId od);

  std::size_t TotalOutstanding() const;

 private:
  std::unordered_map<JobId, std::vector<Lease>> leases_;
};

}  // namespace hs
