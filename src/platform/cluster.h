// Node-level resource manager.
//
// Every node is individually tracked with two orthogonal facts:
//   * running: the job currently executing on the node (kNoJob if none);
//   * reserved_for: the on-demand job this node is being held for
//     (kNoJob if none).
// A node is *free* (no running, no reservation), *busy* (running, no
// reservation), *reserved-idle* (reservation only), or a *reserved tenant*
// (a backfilled job running on a node that is promised to an on-demand job).
//
// The cluster also integrates busy/reserved-idle node-seconds over simulated
// time (`Touch`) for the utilization metrics.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "util/time.h"
#include "workload/job.h"

namespace hs {

class Cluster {
 public:
  explicit Cluster(int num_nodes);

  int num_nodes() const { return static_cast<int>(running_.size()); }
  int free_count() const { return free_live_; }
  int busy_count() const { return busy_count_; }
  int reserved_idle_count() const { return reserved_idle_count_; }

  /// Bumped by every structural mutation (start/finish/shrink/expand/
  /// reserve/unreserve) but not by Touch(): schedulers key pass caches on
  /// it, and the utilization integral cannot change a scheduling decision.
  std::uint64_t epoch() const { return epoch_; }

  /// Accumulates node-second integrals up to `now` (monotone).
  void Touch(SimTime now);
  double busy_node_seconds() const { return busy_node_seconds_; }
  double reserved_idle_node_seconds() const { return reserved_idle_node_seconds_; }

  // --- job execution -------------------------------------------------------

  /// Starts `job` on `count` free nodes; returns the chosen nodes.
  /// Requires count <= free_count() and the job not already running.
  std::vector<int> StartFromFree(JobId job, int count);

  /// Starts `job` on specific nodes, each of which must have no running job.
  /// Reservations on those nodes are left untouched (tenant placement).
  void StartOn(JobId job, const std::vector<int>& nodes);

  /// Stops `job` everywhere. Nodes with a reservation return to
  /// reserved-idle; plain nodes become free. Returns all released nodes.
  std::vector<int> Finish(JobId job);

  /// Releases `count` nodes from a running job (shrink). Released nodes
  /// become free (or reserved-idle when they carry a reservation). Nodes
  /// carrying no reservation are preferred. Returns the released nodes.
  std::vector<int> ReleaseSome(JobId job, int count);

  /// Grows a running job onto the given nodes (each must have no running
  /// job; reservations are left untouched).
  void AddNodes(JobId job, const std::vector<int>& nodes);

  /// Grows a running job by `count` nodes taken from the free pool;
  /// returns the chosen nodes.
  std::vector<int> ExpandFromFree(JobId job, int count);

  // --- reservations --------------------------------------------------------

  /// Moves up to `count` free nodes into `od`'s reservation; returns how
  /// many were actually reserved.
  int ReserveFromFree(JobId od, int count);

  /// Reserves specific nodes for `od`; each must be free.
  void ReserveSpecific(JobId od, const std::vector<int>& nodes);

  /// Drops `od`'s reservation. Reserved-idle nodes become free and are
  /// returned; tenant-occupied nodes simply lose the reservation mark.
  std::vector<int> Unreserve(JobId od);

  /// Starts `job` on its own reservation's idle nodes (consuming their
  /// reservation marks) plus `extra_from_free` nodes from the free pool.
  /// Tenant-occupied reserved nodes are skipped (kill tenants first).
  /// Returns the full allocation.
  std::vector<int> StartOnReservation(JobId job, int extra_from_free);

  // --- queries -------------------------------------------------------------

  bool IsRunning(JobId job) const { return alloc_.count(job) > 0; }
  /// Current allocation of a running job (empty if not running).
  std::vector<int> NodesOf(JobId job) const;
  /// Copy-free variant of NodesOf for hot read paths; the reference is
  /// invalidated by the next mutating call on this cluster.
  const std::vector<int>& NodesViewOf(JobId job) const;
  int AllocCount(JobId job) const;

  int ReservedCount(JobId od) const;      // idle + tenant-occupied
  /// Immediately usable by `od`. O(1): maintained incrementally, because
  /// the scheduling pass queries this once per waiting job per pass.
  int ReservedIdleCount(JobId od) const;
  std::vector<int> ReservedIdleNodes(JobId od) const;
  /// Tenants currently running on `od`'s reserved nodes (deduplicated).
  std::vector<JobId> TenantsOf(JobId od) const;

  JobId running_on(int node) const { return running_[node]; }
  JobId reserved_for(int node) const { return reserved_[node]; }

  /// Verifies internal consistency (counts, free list, maps); returns an
  /// empty string when consistent, else a description. For tests.
  std::string CheckInvariants() const;

 private:
  void MakeFree(int node);
  int PopFree();
  /// O(1) removal of a specific node from the free list (tenant StartOn /
  /// AddNodes / ReserveSpecific). The slot is tombstoned in place so the
  /// LIFO hand-out order of the remaining entries — part of the simulator's
  /// bit-stability contract — is preserved exactly; tombstones are compacted
  /// (order-preserving) once they outnumber live entries.
  void RemoveFromFree(int node);
  void CompactFreeList();

  std::vector<JobId> running_;
  std::vector<JobId> reserved_;
  /// Stack of free node ids, seeded low-id-on-top; kFreeTombstone entries
  /// are lazily-deleted slots skipped at pop time.
  std::vector<int> free_;
  /// node -> index in free_ (kNotOnFreeList when absent): makes
  /// remove-by-id O(1) instead of a linear std::find over the free list.
  std::vector<int> free_pos_;
  int free_live_ = 0;  // non-tombstone entries in free_
  int free_dead_ = 0;  // tombstones in free_
  std::unordered_map<JobId, std::vector<int>> alloc_;
  std::unordered_map<JobId, std::vector<int>> reservation_;
  /// Per-reservation idle-node counts, updated wherever
  /// reserved_idle_count_ is; entries live exactly as long as the
  /// reservation_ entry. Keeps ReservedIdleCount() O(1).
  std::unordered_map<JobId, int> reserved_idle_by_od_;
  int busy_count_ = 0;
  int reserved_idle_count_ = 0;
  std::uint64_t epoch_ = 0;

  SimTime last_touch_ = 0;
  double busy_node_seconds_ = 0.0;
  double reserved_idle_node_seconds_ = 0.0;
};

}  // namespace hs
