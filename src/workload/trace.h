// A workload trace: the machine size plus a submit-ordered list of jobs.
#pragma once

#include <string>
#include <vector>

#include "workload/job.h"

namespace hs {

struct Trace {
  std::string name;
  int num_nodes = 0;
  std::vector<JobRecord> jobs;  // sorted by (submit_time, id)

  /// Sorts jobs into canonical order and reassigns dense ids preserving it.
  void Canonicalize();

  /// Validates the machine size and every job; empty string when valid.
  /// `require_sorted` additionally demands submit-time order — the normal
  /// contract for generated traces; online sessions append live submissions
  /// at the tail and validate with it off.
  std::string Validate(bool require_sorted = true) const;

  /// Earliest/latest submission (0/0 for an empty trace). Full scans, so
  /// they stay correct for online-extended (tail-appended) traces.
  SimTime FirstSubmit() const;
  SimTime LastSubmit() const;

  /// Total demand in node-seconds: sum of size x (setup + compute). The
  /// numerator of OfferedLoad and the quantity workload modulators budget
  /// against.
  double TotalDemand() const;

  /// Offered load: TotalDemand() over N x span, where span runs from the
  /// first submission to the last. Loosely, the fraction of machine
  /// capacity the workload demands.
  double OfferedLoad() const;

  std::size_t CountClass(JobClass klass) const;
};

}  // namespace hs
