#include "workload/type_assign.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>
#include <vector>

namespace hs {

void AssignJobTypes(Trace& trace, const TypeAssignConfig& config, Rng& rng) {
  // Per-project mean request size (for the small-project on-demand pool).
  std::map<std::int32_t, std::pair<double, int>> size_acc;
  for (const auto& job : trace.jobs) {
    auto& [sum, count] = size_acc[job.project];
    sum += job.size;
    count += 1;
  }
  std::vector<std::int32_t> projects;
  projects.reserve(size_acc.size());
  for (const auto& [project, acc] : size_acc) projects.push_back(project);

  Rng r = rng.Fork("type-assign");
  const auto n = projects.size();
  const auto n_od = static_cast<std::size_t>(
      std::llround(config.on_demand_project_share * static_cast<double>(n)));
  const auto n_rigid = static_cast<std::size_t>(
      std::llround(config.rigid_project_share * static_cast<double>(n)));

  std::vector<std::int32_t> od_projects;
  if (config.od_from_small_projects && n_od > 0) {
    // Order by mean request; sample the on-demand projects from the small
    // pool ("real on-demand jobs are relatively small", §IV-A).
    std::vector<std::int32_t> by_size = projects;
    std::sort(by_size.begin(), by_size.end(),
              [&size_acc](std::int32_t a, std::int32_t b) {
                const double ma = size_acc[a].first / size_acc[a].second;
                const double mb = size_acc[b].first / size_acc[b].second;
                if (ma != mb) return ma < mb;
                return a < b;
              });
    auto pool_size = static_cast<std::size_t>(
        std::ceil(config.od_small_pool_frac * static_cast<double>(n)));
    pool_size = std::max(pool_size, std::min(n, n_od));
    std::vector<std::int32_t> pool(by_size.begin(), by_size.begin() + pool_size);
    std::shuffle(pool.begin(), pool.end(), r.engine());
    od_projects.assign(pool.begin(), pool.begin() + std::min(n_od, pool.size()));
  }

  std::vector<std::int32_t> rest;
  {
    const std::set<std::int32_t> od_set(od_projects.begin(), od_projects.end());
    for (const auto p : projects) {
      if (!od_set.count(p)) rest.push_back(p);
    }
    std::shuffle(rest.begin(), rest.end(), r.engine());
  }

  std::map<std::int32_t, JobClass> project_class;
  std::size_t assigned_od = 0;
  for (const auto p : od_projects) {
    project_class[p] = JobClass::kOnDemand;
    ++assigned_od;
  }
  std::size_t index = 0;
  for (; assigned_od < n_od && index < rest.size(); ++index, ++assigned_od) {
    project_class[rest[index]] = JobClass::kOnDemand;
  }
  for (std::size_t k = 0; k < n_rigid && index < rest.size(); ++k, ++index) {
    project_class[rest[index]] = JobClass::kRigid;
  }
  for (; index < rest.size(); ++index) {
    project_class[rest[index]] = JobClass::kMalleable;
  }

  const int large_threshold =
      static_cast<int>(config.large_od_frac * trace.num_nodes);
  for (auto& job : trace.jobs) {
    JobClass klass = project_class.at(job.project);
    if (klass == JobClass::kOnDemand && job.size > large_threshold) {
      // Real on-demand requests are small (§IV-A); oversize ones are
      // reassigned randomly to the batch classes.
      klass = r.Chance(0.5) ? JobClass::kRigid : JobClass::kMalleable;
    }
    job.klass = klass;
    job.notice = NoticeClass::kNone;
    job.notice_time = kNever;
    job.predicted_arrival = kNever;
    if (klass == JobClass::kMalleable) {
      job.min_size = std::max(1, static_cast<int>(std::ceil(
                                     config.malleable_min_frac * job.size)));
      // Malleable applications are loosely coupled: cheaper startup (0-5%).
      const double frac = r.Uniform(config.malleable_setup_lo, config.malleable_setup_hi);
      job.setup_time = static_cast<SimTime>(
          std::llround(frac * static_cast<double>(job.compute_time)));
      job.estimate = std::max(job.estimate, job.setup_time + job.compute_time);
    } else {
      job.min_size = job.size;
    }
  }
}

}  // namespace hs
