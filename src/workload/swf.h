// Trace I/O.
//
// Two formats are supported:
//  * HSWF ("hybrid SWF"): this project's native text format. One job per
//    line, whitespace-separated columns carrying the hybrid-workload fields
//    (class, notice category, notice/predicted times, min size). Lines
//    beginning with ';' are comments; the header carries `; MaxNodes: N`.
//  * Standard Workload Format (SWF) import: the 18-column archive format
//    used by the Parallel Workloads Archive (and by the real Theta trace
//    after conversion). SWF has no job-class information, so every imported
//    job is rigid; `type_assign` can then label it per project.
//
// HSWF columns:
//   id project class notice submit notice_time predicted size min_size
//   compute estimate setup
// with kNever serialized as -1.
#pragma once

#include <iosfwd>
#include <string>

#include "workload/trace.h"

namespace hs {

/// Writes `trace` in HSWF to `out`.
void WriteHswf(const Trace& trace, std::ostream& out);

/// Parses HSWF; throws std::runtime_error with a line number on bad input.
Trace ReadHswf(std::istream& in);

/// File convenience wrappers.
void WriteHswfFile(const Trace& trace, const std::string& path);
Trace ReadHswfFile(const std::string& path);

/// Imports a standard SWF stream. `num_nodes` overrides the header's
/// MaxNodes when positive. Jobs with unknown (-1) runtime or size are
/// skipped. Wait times are discarded (the simulator re-derives them);
/// requested time becomes the estimate; all jobs are rigid.
Trace ImportSwf(std::istream& in, int num_nodes = 0);

}  // namespace hs
