#include "workload/generators.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "util/log.h"

namespace hs {

namespace {

/// Warp-weight grid resolution. kWeek is an exact multiple, so cell edges
/// never straddle the horizon.
constexpr SimTime kWarpCell = 5 * kMinute;

/// Monotone measure-preserving time warp over [0, span): arrival density
/// becomes proportional to the per-cell weights while Map(0) == 0 and
/// Map(span) == span. Weights must be strictly positive.
class TimeWarp {
 public:
  TimeWarp(const std::vector<double>& weights, SimTime span)
      : span_(span), cum_(weights.size() + 1, 0.0) {
    for (std::size_t i = 0; i < weights.size(); ++i) {
      cum_[i + 1] = cum_[i] + weights[i];
    }
  }

  SimTime Map(SimTime v) const {
    if (span_ <= 0 || cum_.back() <= 0.0) return v;
    v = std::clamp<SimTime>(v, 0, span_ - 1);
    const double u =
        static_cast<double>(v) / static_cast<double>(span_) * cum_.back();
    // First cell whose cumulative mass exceeds u.
    const auto it = std::upper_bound(cum_.begin() + 1, cum_.end(), u);
    const auto i = static_cast<std::size_t>(it - cum_.begin()) - 1;
    const double mass = cum_[i + 1] - cum_[i];
    const double frac = mass > 0.0 ? (u - cum_[i]) / mass : 0.0;
    const auto t = static_cast<SimTime>(
        std::llround((static_cast<double>(i) + frac) * kWarpCell));
    return std::clamp<SimTime>(t, 0, span_ - 1);
  }

 private:
  SimTime span_;
  std::vector<double> cum_;  // cum_[i]: mass of cells [0, i)
};

/// Builds the per-cell warp weights over [0, span): diurnal/weekly shape
/// times the storm windows drawn from `storm_rng`.
std::vector<double> BuildWarpWeights(const GeneratorConfig& config, SimTime span,
                                     Rng& storm_rng, std::size_t* storms) {
  const auto cells = static_cast<std::size_t>((span + kWarpCell - 1) / kWarpCell);
  std::vector<double> weights(cells, 1.0);
  if (config.diurnal.enabled()) {
    for (std::size_t i = 0; i < cells; ++i) {
      const SimTime mid = static_cast<SimTime>(i) * kWarpCell + kWarpCell / 2;
      double w = 1.0 - config.diurnal.amplitude +
                 config.diurnal.amplitude * DayCycleFactor(mid);
      if ((mid / kDay) % 7 >= 5) w *= config.diurnal.weekend_factor;
      weights[i] *= w;
    }
  }
  if (config.burst.enabled()) {
    SimTime s = 0;
    while (true) {
      s += std::max<SimTime>(
          1, std::llround(storm_rng.Exponential(
                 static_cast<double>(config.burst.period))));
      if (s >= span) break;
      ++*storms;
      const SimTime end = std::min(span, s + config.burst.duration);
      for (SimTime c = s / kWarpCell; c * kWarpCell < end; ++c) {
        weights[static_cast<std::size_t>(c)] *= config.burst.mult;
      }
      s = end;
    }
  }
  return weights;
}

/// Appends AI swarms until the AI stream holds config.frac of total demand.
void BlendAiTasks(Trace& trace, const AiMixConfig& config, const ThetaConfig& theta,
                  SimTime base, SimTime span, Rng& rng, GeneratorReport* report) {
  const double base_demand = trace.TotalDemand();
  const double target =
      base_demand * config.frac / (1.0 - config.frac);
  // Quantize AI task sizes like the base stream, clamped to the machine;
  // a cap below one quantum is honored literally (sub-quantum AI tasks)
  // instead of silently rounding up to the quantum.
  const int quantum = std::max(1, theta.projects.size_quantum);
  const int machine = trace.num_nodes > 0 ? trace.num_nodes : theta.num_nodes;
  const int cap = std::max(1, std::min(config.max_size, machine));
  const int max_units = std::max(1, cap / quantum);

  std::int32_t next_project = 0;
  for (const JobRecord& job : trace.jobs) {
    next_project = std::max(next_project, job.project + 1);
  }

  JobId next_id = static_cast<JobId>(trace.jobs.size());
  double added = 0.0;
  const double runtime_mu = std::log(static_cast<double>(config.runtime_median));
  // Hard stop mirroring GenerateThetaTrace's guard.
  const std::size_t max_jobs = 2'000'000;
  std::size_t ai_jobs = 0;
  while (added < target && ai_jobs < max_jobs) {
    const std::int32_t project = next_project++;
    SimTime t = base + rng.UniformInt(0, span - 1);
    for (int k = 0; k < config.swarm && added < target; ++k) {
      JobRecord job;
      job.id = next_id++;
      job.project = project;
      job.klass = JobClass::kRigid;  // type assignment happens later
      job.submit_time = std::min(t, base + span - 1);
      job.size = std::min(cap, quantum * static_cast<int>(rng.UniformInt(1, max_units)));
      job.min_size = job.size;
      job.compute_time = std::clamp<SimTime>(
          std::llround(rng.LogNormal(runtime_mu, config.runtime_sigma)),
          kMinute, config.max_runtime);
      // Loosely coupled tasks: a thin launch cost, not the rigid 5-10%.
      job.setup_time = static_cast<SimTime>(std::llround(
          rng.Uniform(0.01, 0.03) * static_cast<double>(job.compute_time)));
      const SimTime useful_wall = job.setup_time + job.compute_time;
      job.estimate = RoundUp(
          static_cast<SimTime>(std::llround(
              rng.Uniform(1.1, 2.0) * static_cast<double>(useful_wall))),
          15 * kMinute);
      job.estimate = std::max(job.estimate, useful_wall);

      added += static_cast<double>(job.size) * static_cast<double>(useful_wall);
      trace.jobs.push_back(job);
      ++ai_jobs;
      t += std::max<SimTime>(1, std::llround(rng.Exponential(
                                    static_cast<double>(config.intra_gap_mean))));
    }
  }
  report->ai_jobs = ai_jobs;
  const double total = base_demand + added;
  report->ai_demand_frac = total > 0.0 ? added / total : 0.0;
}

}  // namespace

std::string ValidateGenerators(const GeneratorConfig& config) {
  if (config.burst.mult < 1.0) {
    return "burst storm intensity must be >= 1 (override burst_mult=)";
  }
  if (config.burst.period <= 0) {
    return "burst storm period must be > 0 (override burst_period_h=)";
  }
  if (config.burst.duration <= 0) {
    return "burst storm duration must be > 0 (override burst_len_h=)";
  }
  if (config.diurnal.amplitude < 0.0 || config.diurnal.amplitude >= 1.0) {
    return "diurnal amplitude must be in [0, 1) (override diurnal_amp=)";
  }
  if (config.diurnal.weekend_factor <= 0.0 || config.diurnal.weekend_factor > 1.0) {
    return "weekend factor must be in (0, 1] (override weekend_factor=)";
  }
  if (config.ai.frac < 0.0 || config.ai.frac >= 1.0) {
    return "AI demand share must be in [0, 1) (override ai_frac=)";
  }
  if (config.ai.enabled() && config.ai.swarm < 1) {
    return "AI swarm size must be >= 1 (override ai_swarm=)";
  }
  if (config.ai.enabled() && config.ai.max_size < 1) {
    return "AI task size cap must be >= 1 node (override ai_size=)";
  }
  return {};
}

GeneratorReport ApplyGenerators(Trace& trace, const GeneratorConfig& config,
                                const ThetaConfig& theta, std::uint64_t seed) {
  GeneratorReport report;
  if (!config.Enabled()) return report;
  const std::string error = ValidateGenerators(config);
  if (!error.empty()) throw std::invalid_argument(error);

  // Both sub-streams are forked unconditionally so enabling one modulator
  // never reseeds another (Rng::Fork advances a shared counter).
  Rng root(seed ^ 0x6D0D07A70B5EEDULL);
  Rng ai_rng = root.Fork("ai-mix");
  Rng storm_rng = root.Fork("storms");

  const SimTime base = trace.FirstSubmit();
  const SimTime span = std::max<SimTime>(
      1, static_cast<SimTime>(std::max(theta.weeks, 1)) * kWeek);

  // Blend first so the AI stream is modulated by the same storms/cycles as
  // the capability stream; then warp arrivals of the combined trace.
  if (config.ai.enabled()) {
    BlendAiTasks(trace, config.ai, theta, base, span, ai_rng, &report);
  }
  if (config.burst.enabled() || config.diurnal.enabled()) {
    const std::vector<double> weights =
        BuildWarpWeights(config, span, storm_rng, &report.storms);
    const TimeWarp warp(weights, span);
    for (JobRecord& job : trace.jobs) {
      job.submit_time = base + warp.Map(job.submit_time - base);
    }
  }
  trace.Canonicalize();

  if (config.burst.enabled()) {
    trace.name += "+burst" + std::to_string(std::llround(config.burst.mult)) + "x";
  }
  if (config.diurnal.enabled()) trace.name += "+diurnal";
  if (config.ai.enabled()) {
    trace.name += "+ai" + std::to_string(std::llround(100.0 * config.ai.frac));
  }
  HS_LOG(kInfo) << "ApplyGenerators " << trace.name << " jobs=" << trace.jobs.size()
                << " storms=" << report.storms << " ai_jobs=" << report.ai_jobs
                << " ai_frac=" << report.ai_demand_frac;
  return report;
}

}  // namespace hs
