// Composable workload generators: deterministic, seedable modulators that
// reshape a synthesized (or replayed) trace *after* base synthesis and
// *before* type/notice assignment, so they compose with the Theta model and
// the SWF replay path instead of replacing either.
//
// Three modulator families (each off by default; a default-constructed
// GeneratorConfig is a guaranteed no-op, which is what keeps the golden
// fixture for the original presets byte-stable):
//
//   BurstStormConfig    Poisson-arriving storm windows inside which the
//                       arrival rate is multiplied by `mult` (spike
//                       intensity) for `duration` seconds — the on-demand
//                       burst regimes of Fig. 5 pushed to storm scale.
//   DiurnalCycleConfig  sinusoidal day cycle (peak 14:00) plus a weekend
//                       damping factor — weekly-shaped arrival pressure.
//   AiMixConfig         a heavy-tailed AI-task stream (RADICAL-Pilot-style
//                       swarms of short, small tasks) blended with the
//                       existing capability jobs at a configurable demand
//                       ratio (Merzky et al., PAPERS.md).
//
// Arrival modulation is implemented as a measure-preserving monotone time
// warp: a weight function w(t) >= 0 is accumulated over the horizon and
// every submit time is mapped through the inverse cumulative, so arrival
// density becomes proportional to w(t) while job count, sizes, runtimes,
// relative order, and the overall horizon are all preserved. Storm window
// placement and the AI stream are drawn from forked sub-streams of the
// scenario seed, so every generated trace is deterministic in
// (config, seed) — the property the seeded round-trip test locks.
//
// Scenario presets `burst`, `diurnal`, `aimix`, and `paper-xl` package
// these (src/exp/scenario.cpp); the knobs are exposed as SimSpec override
// keys (burst_mult=, burst_period_h=, burst_len_h=, diurnal_amp=,
// weekend_factor=, ai_frac=, ai_swarm=, ai_size=) so any preset can be
// modulated from any spec string. See docs/SCENARIOS.md.
#pragma once

#include <cstdint>
#include <string>

#include "workload/theta_model.h"
#include "workload/trace.h"

namespace hs {

/// Poisson-burst storms: non-overlapping windows of length `duration`,
/// each starting an exponential gap (mean `period`) after the previous
/// window ends, inside which the arrival rate is multiplied by `mult`.
/// mult == 1 disables the modulator.
struct BurstStormConfig {
  double mult = 1.0;             // arrival-rate multiplier inside a storm
  SimTime period = 12 * kHour;   // mean storm-free gap between windows
  SimTime duration = 1 * kHour;  // storm window length

  bool enabled() const { return mult > 1.0; }
};

/// Diurnal/weekly sinusoidal arrival cycle: weight
/// 1 - amplitude + amplitude * daycycle(t) with a cosine day shape peaking
/// at 14:00, times `weekend_factor` on the last two days of each week.
/// amplitude == 0 disables the modulator.
struct DiurnalCycleConfig {
  double amplitude = 0.0;       // [0, 1): modulation depth of the day cycle
  double weekend_factor = 1.0;  // (0, 1]: weight multiplier on days 6-7

  bool enabled() const { return amplitude > 0.0 || weekend_factor < 1.0; }
};

/// Heavy-tailed AI-task mix: swarms of short, small tasks (one fresh
/// project id per swarm, tasks seconds apart) are appended until the AI
/// stream contributes `frac` of total offered demand. At this level the
/// blend is additive (total = base demand / (1 - frac));
/// BuildScenarioTrace scales the Theta calibration down by (1 - frac)
/// before synthesis, so in the spec-driven path `load=` stays the *total*
/// offered load for any ai_frac on a synthesized base (a replayed SWF
/// base has fixed demand, so there the blend stays additive). frac == 0
/// disables the modulator.
struct AiMixConfig {
  double frac = 0.0;     // [0, 1): AI share of total offered demand
  int swarm = 48;        // tasks per swarm
  int max_size = 128;    // largest AI task, nodes (quantized like the base)
  /// Lognormal runtime: heavy-tailed around a short median (many small
  /// tasks, a fat tail of stragglers).
  SimTime runtime_median = 10 * kMinute;
  double runtime_sigma = 1.2;
  SimTime max_runtime = 2 * kHour;
  SimTime intra_gap_mean = 15;  // mean seconds between swarm tasks

  bool enabled() const { return frac > 0.0; }
};

struct GeneratorConfig {
  BurstStormConfig burst;
  DiurnalCycleConfig diurnal;
  AiMixConfig ai;

  /// True when any modulator is active. False for a default-constructed
  /// config: ApplyGenerators is then a guaranteed no-op and existing
  /// presets stay bit-identical.
  bool Enabled() const {
    return burst.enabled() || diurnal.enabled() || ai.enabled();
  }
};

/// Empty when the config is runnable; otherwise the violated constraint,
/// naming the SimSpec override key that controls the offending knob.
std::string ValidateGenerators(const GeneratorConfig& config);

/// What ApplyGenerators did (for tests and reporting).
struct GeneratorReport {
  std::size_t storms = 0;        // burst windows placed inside the horizon
  std::size_t ai_jobs = 0;       // tasks appended by the AI stream
  double ai_demand_frac = 0.0;   // realized AI share of total demand
};

/// Applies every enabled modulator to `trace` in place (AI blend first,
/// then the arrival-time warp over the combined stream), re-canonicalizes,
/// and tags trace.name. Deterministic in (trace, config, theta, seed); a
/// disabled config returns without touching the trace. `theta` supplies
/// the horizon (weeks) and machine/quantum shape for the AI stream; works
/// on SWF-replayed traces too (the warp is anchored at the first submit).
/// Throws std::invalid_argument when ValidateGenerators fails.
GeneratorReport ApplyGenerators(Trace& trace, const GeneratorConfig& config,
                                const ThetaConfig& theta, std::uint64_t seed);

}  // namespace hs
