#include "workload/notice_model.h"

#include <algorithm>
#include <stdexcept>

namespace hs {

const std::array<NoticeMix, 5>& PaperNoticeMixes() {
  static const std::array<NoticeMix, 5> mixes = {{
      {"W1", 0.70, 0.10, 0.10, 0.10},
      {"W2", 0.10, 0.70, 0.10, 0.10},
      {"W3", 0.10, 0.10, 0.70, 0.10},
      {"W4", 0.10, 0.10, 0.10, 0.70},
      {"W5", 0.25, 0.25, 0.25, 0.25},
  }};
  return mixes;
}

const NoticeMix& NoticeMixByName(const std::string& name) {
  for (const auto& mix : PaperNoticeMixes()) {
    if (mix.name == name) return mix;
  }
  throw std::out_of_range("unknown notice mix: " + name);
}

void AssignNotices(Trace& trace, const NoticeMix& mix,
                   const NoticeModelConfig& config, Rng& rng) {
  Rng r = rng.Fork("notices");
  const std::vector<double> weights = {mix.none, mix.accurate, mix.early, mix.late};
  for (auto& job : trace.jobs) {
    if (!job.is_on_demand()) continue;
    const auto category = static_cast<NoticeClass>(r.Categorical(weights));
    job.notice = category;
    const SimTime lead = r.UniformInt(config.lead_lo, config.lead_hi);
    switch (category) {
      case NoticeClass::kNone:
        job.notice_time = kNever;
        job.predicted_arrival = kNever;
        break;
      case NoticeClass::kAccurate:
        job.predicted_arrival = job.submit_time;
        job.notice_time = std::max<SimTime>(0, job.submit_time - lead);
        break;
      case NoticeClass::kEarly: {
        // The job arrives between its notice and the predicted arrival:
        // pick the notice at submit - U[0, lead], predict notice + lead.
        const SimTime before = r.UniformInt(0, lead);
        job.notice_time = std::max<SimTime>(0, job.submit_time - before);
        job.predicted_arrival = job.notice_time + lead;
        break;
      }
      case NoticeClass::kLate: {
        // The job arrives within `late_window` after the prediction.
        const SimTime after = r.UniformInt(0, config.late_window);
        job.predicted_arrival = std::max<SimTime>(0, job.submit_time - after);
        job.notice_time = std::max<SimTime>(0, job.predicted_arrival - lead);
        break;
      }
    }
  }
}

}  // namespace hs
