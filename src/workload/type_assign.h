// Job-type assignment (§IV-A / §IV-B).
//
// The real trace carries no class labels, so the paper assigns types *per
// project*: by default 10% of projects submit on-demand jobs, 60% rigid,
// and the remaining 30% malleable. On-demand jobs larger than half the
// machine are individually reassigned to rigid or malleable. Malleable jobs
// get a minimum size of 20% of their request and a fresh 0-5% setup cost.
#pragma once

#include "util/rng.h"
#include "workload/trace.h"

namespace hs {

struct TypeAssignConfig {
  double on_demand_project_share = 0.10;  // §IV-B default
  double rigid_project_share = 0.60;      // remainder becomes malleable
  /// On-demand jobs above `large_od_frac` x machine are reassigned (§IV-A).
  double large_od_frac = 0.5;
  /// §IV-A: "real on-demand jobs are relatively small in size". When true,
  /// the on-demand projects are drawn from the small-job half of the
  /// projects (by mean request) instead of uniformly.
  bool od_from_small_projects = true;
  double od_small_pool_frac = 0.5;
  /// Malleable minimum size as a fraction of the request (§IV-B: 20%).
  double malleable_min_frac = 0.20;
  /// Malleable setup cost range as a fraction of compute (§IV-B: 0-5%).
  double malleable_setup_lo = 0.0;
  double malleable_setup_hi = 0.05;
};

/// Labels every job in `trace` in place. Deterministic in (trace, config,
/// rng state). Projects are shuffled before the shares are applied so that
/// project activity and class are independent.
void AssignJobTypes(Trace& trace, const TypeAssignConfig& config, Rng& rng);

}  // namespace hs
