#include "workload/job.h"

namespace hs {

const char* ToString(JobClass klass) {
  switch (klass) {
    case JobClass::kRigid: return "rigid";
    case JobClass::kOnDemand: return "on-demand";
    case JobClass::kMalleable: return "malleable";
  }
  return "?";
}

const char* ToString(NoticeClass notice) {
  switch (notice) {
    case NoticeClass::kNone: return "none";
    case NoticeClass::kAccurate: return "accurate";
    case NoticeClass::kEarly: return "early";
    case NoticeClass::kLate: return "late";
  }
  return "?";
}

std::string JobRecord::Validate() const {
  if (id < 0) return "id must be non-negative";
  if (size <= 0) return "size must be positive";
  if (min_size <= 0 || min_size > size) return "min_size must be in [1, size]";
  if (!is_malleable() && min_size != size) return "min_size != size for non-malleable job";
  if (compute_time <= 0) return "compute_time must be positive";
  if (setup_time < 0) return "setup_time must be non-negative";
  if (estimate < setup_time + compute_time) return "estimate below setup+compute";
  if (submit_time < 0) return "submit_time must be non-negative";
  if (is_on_demand()) {
    if (notice == NoticeClass::kNone) {
      if (notice_time != kNever) return "no-notice job carries a notice_time";
    } else {
      if (notice_time == kNever || predicted_arrival == kNever)
        return "noticed job missing notice_time/predicted_arrival";
      if (notice_time > submit_time) return "notice_time after actual arrival";
      if (notice_time > predicted_arrival) return "notice_time after predicted arrival";
      if (notice == NoticeClass::kAccurate && predicted_arrival != submit_time)
        return "accurate notice with predicted != actual";
      if (notice == NoticeClass::kEarly && submit_time > predicted_arrival)
        return "early job arriving after predicted arrival";
      if (notice == NoticeClass::kLate && submit_time < predicted_arrival)
        return "late job arriving before predicted arrival";
    }
  } else {
    if (notice != NoticeClass::kNone || notice_time != kNever)
      return "non-on-demand job carries notice data";
  }
  return {};
}

}  // namespace hs
