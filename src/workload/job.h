// Trace-level job description (§III-A of the paper).
//
// A JobRecord is immutable workload input: what the user submitted. Runtime
// state (allocation, progress, restarts) lives in the scheduler, never here,
// so one trace can be replayed under many mechanisms in parallel.
#pragma once

#include <cstdint>
#include <string>

#include "util/time.h"

namespace hs {

using JobId = std::int64_t;
inline constexpr JobId kNoJob = -1;

/// The three application classes the paper co-schedules.
enum class JobClass : std::uint8_t { kRigid = 0, kOnDemand = 1, kMalleable = 2 };

/// The four on-demand notice categories of Fig. 1.
enum class NoticeClass : std::uint8_t {
  kNone = 0,      // no advance notice: the arrival is the first signal
  kAccurate = 1,  // predicted arrival == actual arrival
  kEarly = 2,     // arrives between the notice and the predicted arrival
  kLate = 3,      // arrives within 30 min after the predicted arrival
};

const char* ToString(JobClass klass);
const char* ToString(NoticeClass notice);

struct JobRecord {
  JobId id = kNoJob;
  std::int32_t project = -1;
  JobClass klass = JobClass::kRigid;
  NoticeClass notice = NoticeClass::kNone;  // meaningful for on-demand only

  /// Actual arrival (submission) time.
  SimTime submit_time = 0;
  /// Advance-notice timestamp (on-demand only; kNever when no notice).
  SimTime notice_time = kNever;
  /// Arrival time predicted by the notice (kNever when no notice).
  SimTime predicted_arrival = kNever;

  /// Requested nodes. For malleable jobs this is the *maximum* size
  /// (the original request, §IV-B); min_size is the shrink floor.
  int size = 0;
  int min_size = 0;  // == size for rigid/on-demand jobs

  /// Actual useful compute seconds when running at `size` nodes
  /// (excludes setup and checkpoint dumps).
  SimTime compute_time = 0;
  /// User wall-time estimate covering setup + compute (the kill limit;
  /// actual setup + compute never exceeds it, per trace construction).
  SimTime estimate = 0;
  /// One-time startup cost paid at every (re)start.
  SimTime setup_time = 0;

  bool is_on_demand() const { return klass == JobClass::kOnDemand; }
  bool is_malleable() const { return klass == JobClass::kMalleable; }
  bool is_rigid() const { return klass == JobClass::kRigid; }
  bool has_notice() const { return notice_time != kNever; }

  /// Total work in node-seconds (the malleable progress budget; also the
  /// useful node-seconds a completed job contributes to utilization).
  std::int64_t total_work() const {
    return static_cast<std::int64_t>(compute_time) * size;
  }

  /// Validates internal consistency; returns an empty string when valid,
  /// otherwise a description of the first violated constraint.
  std::string Validate() const;
};

}  // namespace hs
