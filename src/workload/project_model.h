// Project-level statistical model behind the Theta-like generator.
//
// The paper assigns job types *per project* and relies on project-clustered,
// bursty submission ("users tend to submit a bunch of on-demand jobs in a
// short period of time", Fig. 5). We therefore model the trace as a set of
// projects, each with: a Zipf popularity weight, a characteristic job-size
// distribution, a characteristic runtime scale, and session-based arrivals
// (a session is a burst of several submissions minutes apart).
#pragma once

#include <cstdint>
#include <vector>

#include "util/rng.h"
#include "util/time.h"

namespace hs {

struct ProjectProfile {
  std::int32_t id = -1;
  double weight = 1.0;           // relative share of sessions (Zipf)
  double size_mu = 0.0;          // lognormal (underlying normal) of node count
  double size_sigma = 0.5;
  double runtime_mu = 0.0;       // lognormal of compute seconds
  double runtime_sigma = 0.8;
  double burst_mean = 3.0;       // mean jobs per session (geometric)
  SimTime intra_gap_mean = 5 * kMinute;  // mean gap between burst jobs
};

struct ProjectModelConfig {
  int num_projects = 211;        // Table I
  double zipf_s = 1.05;          // popularity skew
  int min_job_size = 128;        // Theta's minimum allocation
  int max_job_size = 4392;       // full machine
  int size_quantum = 128;        // allocations rounded to this many nodes
  /// Cap on jobs per submission session. Sessions stay bursty (Fig. 5) but
  /// a single session can no longer dwarf the machine.
  int max_session_burst = 15;
  // Size-class mixture (shares over projects): small / medium / large.
  // Calibrated so the job-count histogram is dominated by the smallest
  // ranges while core-hours skew large (Fig. 3).
  double small_share = 0.62;
  double medium_share = 0.28;    // remainder is large
  // Runtime scale: median compute seconds by class.
  double runtime_median_small = 1.4 * kHour;
  double runtime_median_medium = 2.2 * kHour;
  double runtime_median_large = 3.0 * kHour;
};

/// Draws the per-project profiles for one trace.
std::vector<ProjectProfile> BuildProjectProfiles(const ProjectModelConfig& config,
                                                 Rng& rng);

/// Samples a job size (nodes) from a project profile, quantized and clamped
/// to the machine limits in `config`.
int SampleJobSize(const ProjectProfile& project, const ProjectModelConfig& config,
                  Rng& rng);

/// Samples useful compute seconds (at full size) from a project profile,
/// clamped to [10 min, cap].
SimTime SampleComputeTime(const ProjectProfile& project, SimTime cap, Rng& rng);

}  // namespace hs
