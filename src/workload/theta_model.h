// Theta-like synthetic trace generator (Table I / Fig. 3 substitute).
//
// The real 2019 Theta Cobalt trace is not redistributable, so experiments
// run on statistically similar synthetic traces: 4,392 nodes, 128-node
// minimum allocation, 1-day runtime cap, 211 projects with Zipf activity,
// session-based bursty arrivals with a diurnal cycle, and an offered load
// calibrated so the FCFS/EASY baseline lands near the paper's Table II
// aggregates (~84% utilization). Real traces can be swapped in through
// `swf.h` + `type_assign.h`.
#pragma once

#include "workload/project_model.h"
#include "workload/trace.h"

namespace hs {

struct ThetaConfig {
  int num_nodes = 4392;          // Table I
  int weeks = 52;                // trace horizon
  /// Offered load the generator calibrates to. 0.84 lands the FCFS/EASY
  /// baseline near Table II on a one-year horizon (utilization ~83.3%,
  /// instant-start ~22%; average turnaround runs a few hours above the
  /// paper's 15.6 h because the synthetic trace carries longer congestion
  /// waves — see EXPERIMENTS.md).
  double target_load = 0.84;
  ProjectModelConfig projects;   // project/size/runtime mixture

  /// Runtime cap: total wall (setup + compute) never exceeds this.
  SimTime max_wall = kDay;       // Table I: maximum job length 1 day

  /// Rigid setup cost is U[5%, 10%] of compute (§IV-B); malleable setup is
  /// re-drawn by type assignment. Estimates are U[estimate_slack_lo, hi]
  /// times the useful wall, rounded up to 15 min and capped at max_wall
  /// plus the allowed slack.
  double setup_frac_lo = 0.05;
  double setup_frac_hi = 0.10;
  double estimate_slack_lo = 1.05;
  double estimate_slack_hi = 3.0;

  /// Diurnal modulation: session starts are accepted with probability
  /// proportional to 1 - depth + depth * day_factor(t). depth = 0 disables.
  double diurnal_depth = 0.5;
};

/// Generates a trace with the given seed. Deterministic in (config, seed).
Trace GenerateThetaTrace(const ThetaConfig& config, std::uint64_t seed);

/// Work-hours bias in [0, 1]: cosine with a 14:00 peak and an overnight
/// trough. Shared by the Theta session sampler (diurnal_depth) and the
/// diurnal warp modulator (workload/generators.h), so the two cycles can
/// never diverge in shape.
double DayCycleFactor(SimTime t);

}  // namespace hs
