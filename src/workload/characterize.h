// Workload characterization used to reproduce Table I, Fig. 3, Fig. 4 and
// Fig. 5: trace summary, job-size histogram weighted by node-hours, job-type
// distribution, and weekly on-demand submission counts.
#pragma once

#include <string>
#include <vector>

#include "util/histogram.h"
#include "workload/trace.h"

namespace hs {

struct TraceSummary {
  std::string name;
  int num_nodes = 0;
  std::size_t num_jobs = 0;
  std::size_t num_projects = 0;
  SimTime span = 0;             // first submit .. last submit
  SimTime max_wall = 0;         // max setup + compute
  int min_size = 0;
  int max_size = 0;
  double offered_load = 0.0;
  std::size_t rigid_jobs = 0;
  std::size_t on_demand_jobs = 0;
  std::size_t malleable_jobs = 0;
};

TraceSummary Summarize(const Trace& trace);

/// Fig. 3: jobs and node-hours per size range. Edges follow the powers of
/// two from Theta's 128-node minimum up to the full machine.
RangeHistogram SizeHistogram(const Trace& trace);

/// Fig. 4: per-class share of job count (index by JobClass).
struct ClassShares {
  double rigid = 0.0;
  double on_demand = 0.0;
  double malleable = 0.0;
};
ClassShares JobClassShares(const Trace& trace);
/// Same, weighted by node-hours instead of job count.
ClassShares NodeHourClassShares(const Trace& trace);

/// Fig. 5: number of on-demand submissions per week over the trace span.
std::vector<std::size_t> WeeklyOnDemandCounts(const Trace& trace);

/// Burstiness of on-demand arrivals: coefficient of variation of the
/// interarrival gaps (Poisson ~ 1; bursty >> 1).
double OnDemandInterarrivalCv(const Trace& trace);

}  // namespace hs
