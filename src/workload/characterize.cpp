#include "workload/characterize.h"

#include <algorithm>
#include <cmath>
#include <set>

#include "util/stats.h"

namespace hs {

TraceSummary Summarize(const Trace& trace) {
  TraceSummary s;
  s.name = trace.name;
  s.num_nodes = trace.num_nodes;
  s.num_jobs = trace.jobs.size();
  std::set<std::int32_t> projects;
  for (const auto& job : trace.jobs) {
    projects.insert(job.project);
    s.max_wall = std::max(s.max_wall, job.setup_time + job.compute_time);
    s.min_size = s.min_size == 0 ? job.size : std::min(s.min_size, job.size);
    s.max_size = std::max(s.max_size, job.size);
    switch (job.klass) {
      case JobClass::kRigid: ++s.rigid_jobs; break;
      case JobClass::kOnDemand: ++s.on_demand_jobs; break;
      case JobClass::kMalleable: ++s.malleable_jobs; break;
    }
  }
  s.num_projects = projects.size();
  s.span = trace.LastSubmit() - trace.FirstSubmit();
  s.offered_load = trace.OfferedLoad();
  return s;
}

RangeHistogram SizeHistogram(const Trace& trace) {
  std::vector<std::int64_t> edges = {128, 256, 512, 1024, 2048, 4096};
  if (trace.num_nodes > 4096) edges.push_back(trace.num_nodes);
  RangeHistogram hist(edges);
  for (const auto& job : trace.jobs) {
    const double node_hours = static_cast<double>(job.size) *
                              ToHours(job.setup_time + job.compute_time);
    hist.Add(job.size, node_hours);
  }
  return hist;
}

ClassShares JobClassShares(const Trace& trace) {
  ClassShares shares;
  if (trace.jobs.empty()) return shares;
  const auto n = static_cast<double>(trace.jobs.size());
  shares.rigid = static_cast<double>(trace.CountClass(JobClass::kRigid)) / n;
  shares.on_demand = static_cast<double>(trace.CountClass(JobClass::kOnDemand)) / n;
  shares.malleable = static_cast<double>(trace.CountClass(JobClass::kMalleable)) / n;
  return shares;
}

ClassShares NodeHourClassShares(const Trace& trace) {
  ClassShares shares;
  double total = 0.0, rigid = 0.0, od = 0.0, malleable = 0.0;
  for (const auto& job : trace.jobs) {
    const double nh = static_cast<double>(job.size) *
                      ToHours(job.setup_time + job.compute_time);
    total += nh;
    switch (job.klass) {
      case JobClass::kRigid: rigid += nh; break;
      case JobClass::kOnDemand: od += nh; break;
      case JobClass::kMalleable: malleable += nh; break;
    }
  }
  if (total <= 0.0) return shares;
  shares.rigid = rigid / total;
  shares.on_demand = od / total;
  shares.malleable = malleable / total;
  return shares;
}

std::vector<std::size_t> WeeklyOnDemandCounts(const Trace& trace) {
  std::vector<std::size_t> weekly;
  if (trace.jobs.empty()) return weekly;
  const SimTime start = trace.FirstSubmit();
  const SimTime span = trace.LastSubmit() - start;
  weekly.assign(static_cast<std::size_t>(span / kWeek) + 1, 0);
  for (const auto& job : trace.jobs) {
    if (!job.is_on_demand()) continue;
    weekly[static_cast<std::size_t>((job.submit_time - start) / kWeek)] += 1;
  }
  return weekly;
}

double OnDemandInterarrivalCv(const Trace& trace) {
  RunningStats gaps;
  SimTime prev = kNever;
  for (const auto& job : trace.jobs) {
    if (!job.is_on_demand()) continue;
    if (prev != kNever) gaps.Add(static_cast<double>(job.submit_time - prev));
    prev = job.submit_time;
  }
  if (gaps.count() < 2 || gaps.mean() <= 0.0) return 0.0;
  return gaps.stddev() / gaps.mean();
}

}  // namespace hs
