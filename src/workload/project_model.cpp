#include "workload/project_model.h"

#include <algorithm>
#include <cmath>

namespace hs {

std::vector<ProjectProfile> BuildProjectProfiles(const ProjectModelConfig& config,
                                                 Rng& rng) {
  std::vector<ProjectProfile> projects;
  projects.reserve(config.num_projects);
  Rng r = rng.Fork("projects");
  for (int p = 0; p < config.num_projects; ++p) {
    ProjectProfile prof;
    prof.id = p;
    // Zipf weight by a random rank so project ids carry no ordering.
    const auto rank = static_cast<double>(1 + r.UniformInt(0, config.num_projects - 1));
    prof.weight = 1.0 / std::pow(rank, config.zipf_s);

    const double cls = r.Uniform();
    double size_median;
    double runtime_median;
    if (cls < config.small_share) {
      // Mass concentrated at/near the minimum allocation (Fig. 3: the
      // smallest range dominates the job count).
      size_median = config.min_job_size * r.Uniform(0.6, 1.4);
      runtime_median = config.runtime_median_small;
    } else if (cls < config.small_share + config.medium_share) {
      size_median = config.min_job_size * r.Uniform(2.0, 6.0);
      runtime_median = config.runtime_median_medium;
    } else {
      size_median = config.min_job_size * r.Uniform(8.0, 20.0);
      runtime_median = config.runtime_median_large;
    }
    prof.size_mu = std::log(size_median);
    prof.size_sigma = r.Uniform(0.3, 0.7);
    prof.runtime_mu = std::log(runtime_median * r.Uniform(0.6, 1.6));
    prof.runtime_sigma = r.Uniform(0.5, 1.0);
    prof.burst_mean = r.Uniform(1.5, 6.0);
    prof.intra_gap_mean = static_cast<SimTime>(r.Uniform(2.0, 10.0) * kMinute);
    projects.push_back(prof);
  }
  return projects;
}

int SampleJobSize(const ProjectProfile& project, const ProjectModelConfig& config,
                  Rng& rng) {
  const double raw = rng.LogNormal(project.size_mu, project.size_sigma);
  const long long quantum = config.size_quantum;
  // Round to the nearest allocation quantum so the minimum allocation keeps
  // its dominant share (rounding up would empty the smallest bin).
  auto size = (static_cast<long long>(std::llround(raw)) + quantum / 2) / quantum *
              quantum;
  size = std::clamp<long long>(size, config.min_job_size, config.max_job_size);
  return static_cast<int>(size);
}

SimTime SampleComputeTime(const ProjectProfile& project, SimTime cap, Rng& rng) {
  const double raw = rng.LogNormal(project.runtime_mu, project.runtime_sigma);
  auto t = static_cast<SimTime>(std::llround(raw));
  return std::clamp<SimTime>(t, 10 * kMinute, cap);
}

}  // namespace hs
