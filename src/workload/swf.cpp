#include "workload/swf.h"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace hs {

namespace {

SimTime EncodeNever(SimTime t) { return t == kNever ? -1 : t; }
SimTime DecodeNever(long long t) { return t < 0 ? kNever : static_cast<SimTime>(t); }

}  // namespace

void WriteHswf(const Trace& trace, std::ostream& out) {
  out << "; HSWF 1\n";
  out << "; MaxNodes: " << trace.num_nodes << "\n";
  out << "; Name: " << (trace.name.empty() ? "unnamed" : trace.name) << "\n";
  out << "; id project class notice submit notice_time predicted size min_size "
         "compute estimate setup\n";
  for (const auto& j : trace.jobs) {
    out << j.id << ' ' << j.project << ' ' << static_cast<int>(j.klass) << ' '
        << static_cast<int>(j.notice) << ' ' << j.submit_time << ' '
        << EncodeNever(j.notice_time) << ' ' << EncodeNever(j.predicted_arrival)
        << ' ' << j.size << ' ' << j.min_size << ' ' << j.compute_time << ' '
        << j.estimate << ' ' << j.setup_time << '\n';
  }
}

Trace ReadHswf(std::istream& in) {
  Trace trace;
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty()) continue;
    if (line[0] == ';') {
      const auto pos = line.find("MaxNodes:");
      if (pos != std::string::npos) {
        trace.num_nodes = std::stoi(line.substr(pos + 9));
      }
      const auto npos = line.find("Name:");
      if (npos != std::string::npos) {
        std::string name = line.substr(npos + 5);
        const auto first = name.find_first_not_of(' ');
        trace.name = (first == std::string::npos) ? "" : name.substr(first);
      }
      continue;
    }
    std::istringstream fields(line);
    long long id, project, klass, notice, submit, notice_time, predicted;
    long long size, min_size, compute, estimate, setup;
    if (!(fields >> id >> project >> klass >> notice >> submit >> notice_time >>
          predicted >> size >> min_size >> compute >> estimate >> setup)) {
      throw std::runtime_error("HSWF parse error at line " + std::to_string(lineno));
    }
    if (klass < 0 || klass > 2 || notice < 0 || notice > 3) {
      throw std::runtime_error("HSWF bad class/notice at line " + std::to_string(lineno));
    }
    JobRecord j;
    j.id = id;
    j.project = static_cast<std::int32_t>(project);
    j.klass = static_cast<JobClass>(klass);
    j.notice = static_cast<NoticeClass>(notice);
    j.submit_time = submit;
    j.notice_time = DecodeNever(notice_time);
    j.predicted_arrival = DecodeNever(predicted);
    j.size = static_cast<int>(size);
    j.min_size = static_cast<int>(min_size);
    j.compute_time = compute;
    j.estimate = estimate;
    j.setup_time = setup;
    trace.jobs.push_back(j);
  }
  std::sort(trace.jobs.begin(), trace.jobs.end(),
            [](const JobRecord& a, const JobRecord& b) {
              if (a.submit_time != b.submit_time) return a.submit_time < b.submit_time;
              return a.id < b.id;
            });
  return trace;
}

void WriteHswfFile(const Trace& trace, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open for write: " + path);
  WriteHswf(trace, out);
}

Trace ReadHswfFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open for read: " + path);
  return ReadHswf(in);
}

Trace ImportSwf(std::istream& in, int num_nodes) {
  Trace trace;
  trace.num_nodes = num_nodes;
  std::string line;
  JobId next_id = 0;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    if (line[0] == ';') {
      const auto pos = line.find("MaxNodes:");
      if (pos != std::string::npos && num_nodes <= 0) {
        trace.num_nodes = std::stoi(line.substr(pos + 9));
      }
      continue;
    }
    std::istringstream fields(line);
    // SWF: 1 job number, 2 submit, 3 wait, 4 run, 5 procs used, 6 avg cpu,
    // 7 mem, 8 procs requested, 9 time requested, 10 mem requested,
    // 11 status, 12 uid, 13 gid, 14 app, 15 queue, 16 partition,
    // 17 preceding job, 18 think time.
    long long f[18];
    bool ok = true;
    for (int i = 0; i < 18; ++i) {
      if (!(fields >> f[i])) {
        // Tolerate short lines as long as the first 9 fields exist.
        if (i >= 9) { for (int k = i; k < 18; ++k) f[k] = -1; break; }
        ok = false;
        break;
      }
    }
    if (!ok) continue;
    const long long submit = f[1];
    const long long runtime = f[3];
    long long procs = f[7] > 0 ? f[7] : f[4];
    long long requested_time = f[8] > 0 ? f[8] : runtime;
    if (runtime <= 0 || procs <= 0 || submit < 0) continue;
    JobRecord j;
    j.id = next_id++;
    j.project = static_cast<std::int32_t>(f[12] >= 0 ? f[12] : 0);  // group id
    j.klass = JobClass::kRigid;
    j.submit_time = submit;
    j.size = static_cast<int>(procs);
    j.min_size = j.size;
    j.compute_time = runtime;
    j.setup_time = 0;
    j.estimate = std::max<long long>(requested_time, runtime);
    trace.jobs.push_back(j);
  }
  if (trace.num_nodes <= 0) {
    int max_size = 1;
    for (const auto& j : trace.jobs) max_size = std::max(max_size, j.size);
    trace.num_nodes = max_size;
  }
  return trace;
}

}  // namespace hs
