#include "workload/theta_model.h"

#include <algorithm>
#include <cmath>

#include "util/log.h"

namespace hs {

double DayCycleFactor(SimTime t) {
  const double hour = static_cast<double>(t % kDay) / kHour;
  // Cosine with peak at 14:00, scaled to [0, 1].
  return 0.5 * (1.0 + std::cos((hour - 14.0) / 24.0 * 2.0 * 3.14159265358979));
}

Trace GenerateThetaTrace(const ThetaConfig& config, std::uint64_t seed) {
  Trace trace;
  trace.name = "theta-synth-" + std::to_string(seed);
  trace.num_nodes = config.num_nodes;

  Rng root(seed);
  Rng session_rng = root.Fork("sessions");
  Rng job_rng = root.Fork("jobs");

  const auto projects = BuildProjectProfiles(config.projects, root);
  std::vector<double> weights;
  weights.reserve(projects.size());
  for (const auto& p : projects) weights.push_back(p.weight);

  const SimTime horizon = static_cast<SimTime>(config.weeks) * kWeek;
  const double capacity =
      static_cast<double>(config.num_nodes) * static_cast<double>(horizon);
  const double target_demand = config.target_load * capacity;

  // Sessions are drawn until the offered load reaches the target. Whole
  // sessions are kept so the bursty arrival pattern survives calibration.
  double demand = 0.0;
  JobId next_id = 0;
  // Hard stop to guarantee termination even with a degenerate config.
  const std::size_t max_jobs = 4'000'000;
  while (demand < target_demand && trace.jobs.size() < max_jobs) {
    const std::size_t pidx = session_rng.Categorical(weights);
    const ProjectProfile& project = projects[pidx];

    // Rejection-sample the session start against the diurnal profile.
    SimTime start = 0;
    for (int attempt = 0; attempt < 16; ++attempt) {
      start = session_rng.UniformInt(0, horizon - 1);
      const double accept =
          1.0 - config.diurnal_depth + config.diurnal_depth * DayCycleFactor(start);
      if (session_rng.Chance(accept)) break;
    }

    const auto burst = std::min(
        config.projects.max_session_burst,
        static_cast<int>(1 + std::floor(session_rng.Exponential(
                                 std::max(0.5, project.burst_mean - 1.0)))));
    SimTime t = start;
    for (int b = 0; b < burst && demand < target_demand; ++b) {
      JobRecord job;
      job.id = next_id++;
      job.project = project.id;
      job.klass = JobClass::kRigid;  // type assignment happens later
      job.submit_time = t;
      job.size = SampleJobSize(project, config.projects, job_rng);
      job.min_size = job.size;

      const double setup_frac = job_rng.Uniform(config.setup_frac_lo, config.setup_frac_hi);
      // Cap compute so that setup + compute fits below max_wall.
      const auto compute_cap = static_cast<SimTime>(
          static_cast<double>(config.max_wall) / (1.0 + setup_frac)) - 1;
      job.compute_time = SampleComputeTime(project, compute_cap, job_rng);
      job.setup_time = static_cast<SimTime>(
          std::llround(setup_frac * static_cast<double>(job.compute_time)));

      const double slack =
          job_rng.Uniform(config.estimate_slack_lo, config.estimate_slack_hi);
      const SimTime useful_wall = job.setup_time + job.compute_time;
      job.estimate = RoundUp(
          static_cast<SimTime>(std::llround(slack * static_cast<double>(useful_wall))),
          15 * kMinute);
      job.estimate = std::max(job.estimate, useful_wall);

      demand += static_cast<double>(job.size) * static_cast<double>(useful_wall);
      trace.jobs.push_back(job);

      t += static_cast<SimTime>(
          std::llround(job_rng.Exponential(static_cast<double>(project.intra_gap_mean))));
      if (t >= horizon) break;
    }
  }

  trace.Canonicalize();
  HS_LOG(kInfo) << "GenerateThetaTrace seed=" << seed << " jobs=" << trace.jobs.size()
                << " offered_load=" << trace.OfferedLoad();
  return trace;
}

}  // namespace hs
