// Advance-notice category assignment (Fig. 1 / Table III).
//
// Every on-demand job is placed into one of four categories: no notice,
// accurate notice, arrive-early, arrive-late. Notices lead the predicted
// arrival by 15-30 minutes (§I); late arrivals land within 30 minutes after
// the prediction (§IV-B). Table III's W1..W5 mixes are provided as presets.
#pragma once

#include <array>
#include <string>

#include "util/rng.h"
#include "workload/trace.h"

namespace hs {

struct NoticeMix {
  std::string name;
  double none = 0.25;
  double accurate = 0.25;
  double early = 0.25;
  double late = 0.25;
};

/// Table III presets: W1 (70% no notice), W2 (70% accurate), W3 (70% early),
/// W4 (70% late), W5 (uniform).
const std::array<NoticeMix, 5>& PaperNoticeMixes();

/// Looks a preset up by name ("W1".."W5"); throws std::out_of_range.
const NoticeMix& NoticeMixByName(const std::string& name);

struct NoticeModelConfig {
  SimTime lead_lo = 15 * kMinute;  // notice precedes predicted arrival by
  SimTime lead_hi = 30 * kMinute;  // U[lead_lo, lead_hi]
  SimTime late_window = 30 * kMinute;  // late arrival within this after prediction
};

/// Assigns notice categories and times to the on-demand jobs of `trace`,
/// leaving other classes untouched. The generated submit_time is kept as the
/// actual arrival; notice/predicted times are derived around it.
void AssignNotices(Trace& trace, const NoticeMix& mix,
                   const NoticeModelConfig& config, Rng& rng);

}  // namespace hs
