#include "workload/trace.h"

#include <algorithm>

namespace hs {

void Trace::Canonicalize() {
  std::stable_sort(jobs.begin(), jobs.end(),
                   [](const JobRecord& a, const JobRecord& b) {
                     if (a.submit_time != b.submit_time) return a.submit_time < b.submit_time;
                     return a.id < b.id;
                   });
  for (std::size_t i = 0; i < jobs.size(); ++i) jobs[i].id = static_cast<JobId>(i);
}

std::string Trace::Validate(bool require_sorted) const {
  if (num_nodes <= 0) return "num_nodes must be positive";
  SimTime prev = -1;
  for (const auto& job : jobs) {
    const std::string err = job.Validate();
    if (!err.empty()) return "job " + std::to_string(job.id) + ": " + err;
    if (job.size > num_nodes) {
      return "job " + std::to_string(job.id) + ": size exceeds machine";
    }
    if (require_sorted && job.submit_time < prev) {
      return "jobs not sorted by submit_time";
    }
    prev = job.submit_time;
  }
  return {};
}

SimTime Trace::FirstSubmit() const {
  SimTime first = kNever;
  for (const auto& job : jobs) first = std::min(first, job.submit_time);
  return jobs.empty() ? 0 : first;
}

SimTime Trace::LastSubmit() const {
  SimTime last = 0;
  for (const auto& job : jobs) last = std::max(last, job.submit_time);
  return last;
}

double Trace::TotalDemand() const {
  double demand = 0.0;
  for (const auto& job : jobs) {
    demand += static_cast<double>(job.size) *
              static_cast<double>(job.setup_time + job.compute_time);
  }
  return demand;
}

double Trace::OfferedLoad() const {
  if (jobs.empty() || num_nodes <= 0) return 0.0;
  const SimTime span = std::max<SimTime>(1, LastSubmit() - FirstSubmit());
  return TotalDemand() / (static_cast<double>(num_nodes) * static_cast<double>(span));
}

std::size_t Trace::CountClass(JobClass klass) const {
  std::size_t n = 0;
  for (const auto& job : jobs) n += (job.klass == klass) ? 1 : 0;
  return n;
}

}  // namespace hs
