// Checkpoint cost model and the wall-clock timeline of a rigid execution.
//
// Paper configuration (§IV-B): per-checkpoint overhead is 600 s for jobs
// below 1 K nodes and 1,200 s otherwise; checkpoints are taken at the Daly
// optimum for the allocation's MTBF, optionally scaled (Fig. 7 sweeps the
// interval at fractions of the optimum — "50%" means twice as frequent).
//
// A rigid execution alternates:   setup | compute tau | dump delta | compute
// tau | dump delta | ... | final compute (no trailing dump).
// `RigidTimeline` answers, for any wall offset into the execution: how much
// compute progress exists, how much of it is safely checkpointed, and when
// the next checkpoint completes (the moment CUP prefers to preempt).
#pragma once

#include <cstdint>

#include "util/time.h"

namespace hs {

struct CheckpointConfig {
  /// Per-checkpoint dump cost by allocation size (paper: 600 s / 1,200 s).
  SimTime small_job_overhead = 600;
  SimTime large_job_overhead = 1200;
  int large_job_threshold = 1024;  // nodes at/above this pay the large cost

  /// Interval = scale x Daly optimum. 1.0 reproduces the default; Fig. 7
  /// uses 0.25/0.5/1.0/2.0 (smaller = more frequent checkpoints).
  double interval_scale = 1.0;

  /// Per-node mean time between failures used in the Daly formula. The
  /// job-level MTBF is node_mtbf / nodes.
  SimTime node_mtbf = 5 * 365 * kDay;

  /// Floor for the checkpoint interval regardless of scale.
  SimTime min_interval = 10 * kMinute;
};

class CheckpointModel {
 public:
  explicit CheckpointModel(const CheckpointConfig& config = {});

  /// Dump cost for an allocation of `nodes` nodes.
  SimTime OverheadFor(int nodes) const;

  /// Scaled Daly-optimal compute interval between checkpoints for `nodes`.
  SimTime IntervalFor(int nodes) const;

  const CheckpointConfig& config() const { return config_; }

 private:
  CheckpointConfig config_;
};

/// Timeline of one rigid execution with periodic checkpoints.
/// `interval == 0` disables checkpointing (on-demand jobs, or the tail of a
/// job too short to reach a first checkpoint).
class RigidTimeline {
 public:
  /// `compute` is the remaining useful compute for this execution; `setup`
  /// is paid once at the start. All values in seconds, >= 0.
  RigidTimeline(SimTime setup, SimTime compute, SimTime interval, SimTime overhead);

  /// Number of completed checkpoint dumps over the whole execution.
  int num_checkpoints() const { return num_checkpoints_; }

  /// Total wall time: setup + compute + dumps.
  SimTime total_wall() const { return total_wall_; }

  /// Compute progress after `elapsed` wall seconds (clamped to [0, compute]).
  SimTime ProgressAt(SimTime elapsed) const;

  /// Progress covered by the latest *completed* checkpoint at `elapsed`
  /// wall seconds (0 before the first dump finishes).
  SimTime CheckpointedAt(SimTime elapsed) const;

  /// Wall offset at which the next checkpoint dump *completes* strictly
  /// after `elapsed`; kNever if no further checkpoint exists.
  SimTime NextCheckpointCompletion(SimTime elapsed) const;

  SimTime setup() const { return setup_; }
  SimTime compute() const { return compute_; }
  SimTime interval() const { return interval_; }
  SimTime overhead() const { return overhead_; }

 private:
  SimTime setup_;
  SimTime compute_;
  SimTime interval_;  // 0 => checkpointing disabled
  SimTime overhead_;
  int num_checkpoints_ = 0;
  SimTime total_wall_ = 0;
};

}  // namespace hs
