#include "checkpoint/daly.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace hs {

double DalyFirstOrder(double delta, double mtbf) {
  assert(delta > 0.0 && mtbf > 0.0);
  return std::sqrt(2.0 * delta * mtbf);
}

double DalyHigherOrder(double delta, double mtbf) {
  assert(delta > 0.0 && mtbf > 0.0);
  if (delta >= 2.0 * mtbf) return mtbf;
  const double ratio = delta / (2.0 * mtbf);
  const double base = std::sqrt(2.0 * delta * mtbf);
  return base * (1.0 + std::sqrt(ratio) / 3.0 + ratio / 9.0) - delta;
}

SimTime DalyOptimalInterval(SimTime delta, SimTime mtbf) {
  const double tau = DalyHigherOrder(static_cast<double>(delta), static_cast<double>(mtbf));
  const auto rounded = static_cast<SimTime>(std::llround(tau));
  return std::max<SimTime>(rounded, delta);
}

}  // namespace hs
