#include "checkpoint/checkpoint_model.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "checkpoint/daly.h"

namespace hs {

CheckpointModel::CheckpointModel(const CheckpointConfig& config) : config_(config) {
  assert(config_.interval_scale > 0.0);
  assert(config_.node_mtbf > 0);
}

SimTime CheckpointModel::OverheadFor(int nodes) const {
  return nodes >= config_.large_job_threshold ? config_.large_job_overhead
                                              : config_.small_job_overhead;
}

SimTime CheckpointModel::IntervalFor(int nodes) const {
  assert(nodes >= 1);
  const SimTime job_mtbf = std::max<SimTime>(1, config_.node_mtbf / nodes);
  const SimTime optimum = DalyOptimalInterval(OverheadFor(nodes), job_mtbf);
  const auto scaled = static_cast<SimTime>(
      std::llround(static_cast<double>(optimum) * config_.interval_scale));
  return std::max({scaled, config_.min_interval, OverheadFor(nodes)});
}

RigidTimeline::RigidTimeline(SimTime setup, SimTime compute, SimTime interval,
                             SimTime overhead)
    : setup_(setup), compute_(compute), interval_(interval), overhead_(overhead) {
  assert(setup_ >= 0 && compute_ >= 0 && interval_ >= 0 && overhead_ >= 0);
  if (interval_ > 0 && compute_ > interval_) {
    // Dumps complete after every full interval except a final segment that
    // reaches the end of the computation (no trailing dump).
    num_checkpoints_ = static_cast<int>((compute_ - 1) / interval_);
  }
  total_wall_ = setup_ + compute_ + static_cast<SimTime>(num_checkpoints_) * overhead_;
}

SimTime RigidTimeline::ProgressAt(SimTime elapsed) const {
  if (elapsed <= setup_) return 0;
  if (elapsed >= total_wall_) return compute_;
  const SimTime w = elapsed - setup_;
  if (interval_ == 0 || num_checkpoints_ == 0) return std::min(w, compute_);
  const SimTime cycle = interval_ + overhead_;
  const SimTime full_cycles = w / cycle;
  const SimTime within = w % cycle;
  const SimTime progress = full_cycles * interval_ + std::min(within, interval_);
  return std::min(progress, compute_);
}

SimTime RigidTimeline::CheckpointedAt(SimTime elapsed) const {
  if (interval_ == 0 || num_checkpoints_ == 0) return 0;
  if (elapsed <= setup_) return 0;
  const SimTime w = elapsed - setup_;
  const SimTime cycle = interval_ + overhead_;
  // A dump that started at the end of compute segment k completes at wall
  // offset setup + k*cycle; completed dumps at elapsed = floor(w / cycle).
  SimTime completed = w / cycle;
  completed = std::min<SimTime>(completed, num_checkpoints_);
  return completed * interval_;
}

SimTime RigidTimeline::NextCheckpointCompletion(SimTime elapsed) const {
  if (interval_ == 0 || num_checkpoints_ == 0) return kNever;
  const SimTime cycle = interval_ + overhead_;
  // Dump k (1-based) completes at setup + k*cycle.
  for (int k = 1; k <= num_checkpoints_; ++k) {
    const SimTime completion = setup_ + static_cast<SimTime>(k) * cycle;
    if (completion > elapsed) return completion;
  }
  return kNever;
}

}  // namespace hs
