// Daly's optimum checkpoint interval (J. Daly, "A higher order estimate of
// the optimum checkpoint interval for restart dumps", FGCS 2006).
//
// The paper's rigid jobs checkpoint at "the optimal frequency defined by
// Daly" (§IV-B); Fig. 7 then sweeps the interval relative to this optimum.
#pragma once

#include "util/time.h"

namespace hs {

/// First-order approximation: tau = sqrt(2 * delta * mtbf).
/// `delta` is the cost of writing one checkpoint, `mtbf` the mean time
/// between failures for the allocation. Both in seconds, both > 0.
double DalyFirstOrder(double delta, double mtbf);

/// Daly's higher-order estimate:
///   tau = sqrt(2*delta*M) * [1 + (1/3)*sqrt(delta/(2M)) + (1/9)*(delta/(2M))]
///         - delta                                     for delta < 2M,
///   tau = M                                           otherwise.
double DalyHigherOrder(double delta, double mtbf);

/// Convenience: higher-order optimum rounded to whole seconds and clamped to
/// at least `delta` (an interval shorter than the dump cost is nonsensical).
SimTime DalyOptimalInterval(SimTime delta, SimTime mtbf);

}  // namespace hs
