// Simulation engine.
//
// Mirrors CQSim's loop: pop the earliest event, advance the virtual clock,
// dispatch to the handler; after *all* events at a timestamp have been
// dispatched, give the handler one quiescent callback (this is where the
// scheduling pass — policy ordering plus EASY backfilling — runs, so a batch
// of simultaneous releases/arrivals triggers exactly one pass).
#pragma once

#include <cstddef>

#include "sim/event_queue.h"

namespace hs {

class Simulator;

/// The single consumer of events (the scheduler under test).
class EventHandler {
 public:
  virtual ~EventHandler() = default;
  virtual void HandleEvent(const Event& event, Simulator& sim) = 0;
  /// Called once after each batch of same-timestamp events.
  virtual void OnQuiescent(SimTime now, Simulator& sim) = 0;
};

class Simulator {
 public:
  explicit Simulator(EventHandler& handler) : handler_(handler) {}

  /// Clone constructor (the SimulationSession::Fork path): copies the full
  /// event heap — including handle generations and the queue nonce, so
  /// EventIds issued by `other` keep cancelling the matching events in the
  /// clone — plus the clock and counters, but dispatches to `handler`.
  Simulator(EventHandler& handler, const Simulator& other)
      : handler_(handler),
        queue_(other.queue_),
        now_(other.now_),
        events_processed_(other.events_processed_) {}

  /// Schedules an event; must not be in the past.
  EventId Schedule(SimTime time, EventKind kind, JobId job = kNoJob,
                   std::int64_t aux = 0);
  void Cancel(EventId id) { queue_.Cancel(id); }

  /// Runs until the queue is empty (or `until`, if provided and earlier).
  void Run(SimTime until = kNever);

  /// Timestamp of the earliest pending event (kNever when exhausted).
  /// Non-const like exhausted(): peeking compacts tombstoned entries.
  SimTime NextEventTime() { return queue_.Empty() ? kNever : queue_.PeekTime(); }

  /// Pins the clock at `t` without dispatching anything. Only legal when
  /// every event at/before `t` has already been processed — the incremental
  /// stepping primitive (Run(t) then FastForward(t) leaves now() == t even
  /// when no event is stamped exactly t).
  void FastForward(SimTime t);

  SimTime now() const { return now_; }
  std::size_t events_processed() const { return events_processed_; }
  bool exhausted() { return queue_.Empty(); }

 private:
  EventHandler& handler_;
  EventQueue queue_;
  SimTime now_ = 0;
  std::size_t events_processed_ = 0;
};

}  // namespace hs
