#include "sim/event_queue.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <stdexcept>

namespace hs {

namespace {
// Handle layout: [63:48] queue nonce | [47:32] slot generation | [31:0] slot.
// 16 nonce bits keep cross-queue detection alive for 65535 queues per
// process (a paper-scale ExperimentRunner sweep builds a few hundred); 16
// generation bits are ample because stale handles are cancelled within the
// same event-handling turn they go stale in, never 65536 slot reuses later.
constexpr int kSlotBits = 32;
constexpr int kGenerationBits = 16;
constexpr std::uint32_t kGenerationMask = (1u << kGenerationBits) - 1;
constexpr std::uint32_t kNonceMask = 0xFFFFu;
}  // namespace

EventQueue::EventQueue() {
  // 1..65535 so a valid handle is never kNoEvent (0) and handles from
  // different queues (modulo wrap) disagree in their top 16 bits.
  static std::atomic<std::uint32_t> counter{0};
  nonce_ = (counter.fetch_add(1, std::memory_order_relaxed) % kNonceMask) + 1u;
}

EventId EventQueue::MakeHandle(std::uint32_t slot, std::uint32_t generation) const {
  return (static_cast<EventId>(nonce_) << (kSlotBits + kGenerationBits)) |
         (static_cast<EventId>(generation) << kSlotBits) | slot;
}

std::uint32_t EventQueue::SlotOf(EventId id) {
  return static_cast<std::uint32_t>(id & 0xFFFFFFFFull);
}

std::uint32_t EventQueue::GenerationOf(EventId id) {
  return static_cast<std::uint32_t>(id >> kSlotBits) & kGenerationMask;
}

std::uint32_t EventQueue::NonceOf(EventId id) {
  return static_cast<std::uint32_t>(id >> (kSlotBits + kGenerationBits));
}

EventId EventQueue::Push(SimTime time, EventKind kind, JobId job, std::int64_t aux) {
  std::uint32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
  } else {
    slot = static_cast<std::uint32_t>(slots_.size());
    slots_.push_back({});
  }
  Slot& s = slots_[slot];
  // Bump the generation at every reuse (16-bit wrap, skipping 0) so stale
  // handles to this slot are recognized as dead.
  s.generation = (s.generation + 1) & kGenerationMask;
  if (s.generation == 0) s.generation = 1;
  s.live = true;

  Event e;
  e.time = time;
  e.kind = kind;
  e.job = job;
  e.aux = aux;
  e.id = MakeHandle(slot, s.generation);
  e.seq = next_seq_++;
  heap_.push_back(e);
  std::push_heap(heap_.begin(), heap_.end(), EventAfter{});
  ++live_count_;
  last_handle_ = e.id;
  return e.id;
}

void EventQueue::Cancel(EventId id) {
  if (id == kNoEvent) return;
  // A handle minted by a different queue is a caller bug: its nonce cannot
  // match ours. Fail loudly in debug builds; ignore in release.
  assert(NonceOf(id) == nonce_ && "EventQueue::Cancel: handle from another queue");
  if (NonceOf(id) != nonce_) return;
  const std::uint32_t slot = SlotOf(id);
  if (slot >= slots_.size()) return;
  Slot& s = slots_[slot];
  // Stale generation or already-dead slot: the event fired or was cancelled
  // before (the documented no-op).
  if (!s.live || s.generation != GenerationOf(id)) return;
  s.live = false;
  --live_count_;
  ++dead_in_heap_;
  MaybeCompact();
}

void EventQueue::RecycleSlot(std::uint32_t slot) { free_slots_.push_back(slot); }

void EventQueue::SkipDead() {
  while (!heap_.empty()) {
    const Event& top = heap_.front();
    const Slot& s = slots_[SlotOf(top.id)];
    if (s.live && s.generation == GenerationOf(top.id)) break;
    RecycleSlot(SlotOf(top.id));
    std::pop_heap(heap_.begin(), heap_.end(), EventAfter{});
    heap_.pop_back();
    --dead_in_heap_;
  }
}

void EventQueue::MaybeCompact() {
  if (dead_in_heap_ <= heap_.size() / 2 || heap_.size() < 64) return;
  std::vector<Event> live;
  live.reserve(live_count_);
  for (const Event& e : heap_) {
    const Slot& s = slots_[SlotOf(e.id)];
    if (s.live && s.generation == GenerationOf(e.id)) {
      live.push_back(e);
    } else {
      RecycleSlot(SlotOf(e.id));
    }
  }
  heap_ = std::move(live);
  std::make_heap(heap_.begin(), heap_.end(), EventAfter{});
  dead_in_heap_ = 0;
}

bool EventQueue::Empty() {
  SkipDead();
  return heap_.empty();
}

SimTime EventQueue::PeekTime() {
  SkipDead();
  return heap_.empty() ? kNever : heap_.front().time;
}

Event EventQueue::Pop() {
  SkipDead();
  if (heap_.empty()) throw std::runtime_error("EventQueue::Pop on empty queue");
  std::pop_heap(heap_.begin(), heap_.end(), EventAfter{});
  const Event e = heap_.back();
  heap_.pop_back();
  Slot& s = slots_[SlotOf(e.id)];
  assert(s.live && s.generation == GenerationOf(e.id));
  s.live = false;
  RecycleSlot(SlotOf(e.id));
  --live_count_;
  return e;
}

}  // namespace hs
