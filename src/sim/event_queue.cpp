#include "sim/event_queue.h"

#include <cassert>
#include <stdexcept>

namespace hs {

EventId EventQueue::Push(SimTime time, EventKind kind, JobId job, std::int64_t aux) {
  Event e;
  e.time = time;
  e.kind = kind;
  e.job = job;
  e.aux = aux;
  e.id = next_id_++;
  heap_.push(e);
  live_ids_.insert(e.id);
  return e.id;
}

void EventQueue::Cancel(EventId id) {
  if (id == kNoEvent) return;
  // Cancelling an already-fired or already-cancelled event is a no-op; the
  // live-id set distinguishes those from genuinely pending events.
  live_ids_.erase(id);
}

void EventQueue::SkipDead() {
  while (!heap_.empty() && live_ids_.count(heap_.top().id) == 0) {
    heap_.pop();
  }
}

bool EventQueue::Empty() {
  SkipDead();
  return heap_.empty();
}

SimTime EventQueue::PeekTime() {
  SkipDead();
  return heap_.empty() ? kNever : heap_.top().time;
}

Event EventQueue::Pop() {
  SkipDead();
  if (heap_.empty()) throw std::runtime_error("EventQueue::Pop on empty queue");
  Event e = heap_.top();
  heap_.pop();
  live_ids_.erase(e.id);
  return e;
}

}  // namespace hs
