// Cancelable min-heap event queue with deterministic tie-breaking.
//
// Cancellation is O(1) via generation-stamped slot handles instead of a
// hash set of live ids: an EventId packs (queue nonce, slot generation,
// slot index). Each pending event owns one slot; slots are recycled when
// their heap entry is physically removed, and the generation is bumped at
// every reuse so stale handles never alias a newer event.
//
// Cancel contract:
//   * Cancelling a pending event removes it logically (O(1)); the heap
//     entry is tombstoned and skipped at pop time.
//   * Cancelling an event that already fired (or was already cancelled) is
//     a guaranteed no-op — handlers routinely cancel the completion pair of
//     the event that just fired, and the generation stamp recognizes the
//     stale handle even after its slot was reused by a later Push.
//   * Handles are queue-specific: passing another queue's handle is a bug,
//     caught by an assert in debug builds (the per-queue nonce baked into
//     every handle disagrees) and ignored in release builds.
//
// Lazy deletion is bounded: when tombstones outnumber live entries the heap
// is compacted in one O(n) rebuild, so malleable-resize churn (cancel +
// reschedule of every finish/kill pair) cannot grow the heap past ~2x the
// live event count.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/event.h"

namespace hs {

class EventQueue {
 public:
  EventQueue();

  /// Schedules an event; returns its cancellation handle.
  EventId Push(SimTime time, EventKind kind, JobId job = kNoJob, std::int64_t aux = 0);

  /// Cancels a scheduled event; harmless if already popped or cancelled
  /// (see the contract above). Asserts on another queue's handle.
  void Cancel(EventId id);

  /// True if no live events remain.
  bool Empty();

  /// Earliest live event time (kNever when empty).
  SimTime PeekTime();

  /// Pops the earliest live event. Requires !Empty().
  Event Pop();

  std::size_t live_size() const { return live_count_; }
  /// Physical heap entries, live + tombstoned (for compaction tests).
  std::size_t heap_size() const { return heap_.size(); }
  EventId last_id() const { return last_handle_; }

 private:
  struct Slot {
    std::uint32_t generation = 0;
    bool live = false;
  };

  EventId MakeHandle(std::uint32_t slot, std::uint32_t generation) const;
  static std::uint32_t SlotOf(EventId id);
  static std::uint32_t GenerationOf(EventId id);
  static std::uint32_t NonceOf(EventId id);

  void SkipDead();
  void MaybeCompact();
  void RecycleSlot(std::uint32_t slot);

  std::vector<Event> heap_;  // binary heap under EventAfter
  std::vector<Slot> slots_;
  std::vector<std::uint32_t> free_slots_;
  std::uint64_t next_seq_ = 1;
  std::size_t live_count_ = 0;    // pending (not cancelled) events
  std::size_t dead_in_heap_ = 0;  // tombstoned heap entries
  std::uint32_t nonce_;           // queue identity baked into handles (1..65535)
  EventId last_handle_ = kNoEvent;
};

}  // namespace hs
