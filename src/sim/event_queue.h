// Cancelable min-heap event queue with deterministic tie-breaking.
//
// Cancellation is lazy: cancelled ids are tombstoned and skipped at pop
// time. This keeps Schedule/Cancel O(log n) without heap surgery, which
// matters because malleable resizes reschedule finish events frequently.
#pragma once

#include <queue>
#include <unordered_set>
#include <vector>

#include "sim/event.h"

namespace hs {

class EventQueue {
 public:
  /// Schedules an event; returns its id (usable with Cancel).
  EventId Push(SimTime time, EventKind kind, JobId job = kNoJob, std::int64_t aux = 0);

  /// Cancels a scheduled event; harmless if already popped or cancelled.
  void Cancel(EventId id);

  /// True if no live events remain.
  bool Empty();

  /// Earliest live event time (kNever when empty).
  SimTime PeekTime();

  /// Pops the earliest live event. Requires !Empty().
  Event Pop();

  std::size_t live_size() const { return live_ids_.size(); }
  EventId last_id() const { return next_id_ - 1; }

 private:
  void SkipDead();

  std::priority_queue<Event, std::vector<Event>, EventAfter> heap_;
  std::unordered_set<EventId> live_ids_;
  EventId next_id_ = 1;
};

}  // namespace hs
