#include "sim/event.h"

#include <sstream>

namespace hs {

const char* ToString(EventKind kind) {
  switch (kind) {
    case EventKind::kJobFinish: return "JobFinish";
    case EventKind::kWarningExpire: return "WarningExpire";
    case EventKind::kPlannedPreempt: return "PlannedPreempt";
    case EventKind::kReservationTimeout: return "ReservationTimeout";
    case EventKind::kAdvanceNotice: return "AdvanceNotice";
    case EventKind::kJobSubmit: return "JobSubmit";
    case EventKind::kJobKill: return "JobKill";
    case EventKind::kSchedule: return "Schedule";
    case EventKind::kNodeFailure: return "NodeFailure";
  }
  return "?";
}

std::string Event::ToDebugString() const {
  std::ostringstream os;
  os << ToString(kind) << "@" << FormatTimestamp(time) << " job=" << job
     << " aux=" << aux << " seq=" << seq;
  return os.str();
}

}  // namespace hs
