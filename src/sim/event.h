// Discrete-event model.
//
// The scheduler is driven entirely by typed events. Within one timestamp,
// events execute in a fixed kind order (releases before arrivals before
// housekeeping) and then by insertion sequence, making every run
// bit-deterministic for a given trace and configuration.
#pragma once

#include <cstdint>
#include <string>

#include "util/time.h"
#include "workload/job.h"

namespace hs {

enum class EventKind : std::uint8_t {
  kJobFinish = 0,          // a running job completed
  kWarningExpire = 1,      // malleable 2-minute warning elapsed; nodes hand over
  kPlannedPreempt = 2,     // CUP-scheduled preemption point reached
  kReservationTimeout = 3, // on-demand job missed its predicted arrival window
  kAdvanceNotice = 4,      // on-demand advance notice received
  kJobSubmit = 5,          // job (any class) actually arrives
  kJobKill = 6,            // runtime-estimate limit reached
  kSchedule = 7,           // explicit request to run a scheduling pass
  kNodeFailure = 8,        // hardware failure hits a running job (extension)
};

const char* ToString(EventKind kind);

/// Cancellation handle issued by EventQueue::Push. Encodes (16-bit queue
/// nonce, 16-bit slot generation, 32-bit slot) — see event_queue.h — so
/// cancellation is O(1) with no id hash set, and stale handles are
/// recognized cheaply. Treat it as opaque: compare for equality, pass to
/// Cancel, nothing else.
using EventId = std::uint64_t;
inline constexpr EventId kNoEvent = 0;

struct Event {
  SimTime time = 0;
  EventKind kind = EventKind::kSchedule;
  JobId job = kNoJob;
  std::int64_t aux = 0;  // kind-specific payload (e.g. lender id)
  EventId id = kNoEvent;
  /// Monotone insertion sequence (assigned by EventQueue::Push); the
  /// deterministic same-time/same-kind tie-breaker. `id` cannot serve this
  /// role because slot handles are reused.
  std::uint64_t seq = 0;

  std::string ToDebugString() const;
};

/// Ordering: earlier time first; at equal times the kind enum above; then
/// insertion sequence. Implements "greater" for use in a min-heap.
struct EventAfter {
  bool operator()(const Event& a, const Event& b) const {
    if (a.time != b.time) return a.time > b.time;
    if (a.kind != b.kind) return static_cast<int>(a.kind) > static_cast<int>(b.kind);
    return a.seq > b.seq;
  }
};

}  // namespace hs
