#include "sim/simulator.h"

#include <stdexcept>

namespace hs {

EventId Simulator::Schedule(SimTime time, EventKind kind, JobId job, std::int64_t aux) {
  if (time < now_) {
    throw std::runtime_error("Simulator::Schedule in the past: t=" +
                             std::to_string(time) + " now=" + std::to_string(now_));
  }
  return queue_.Push(time, kind, job, aux);
}

void Simulator::FastForward(SimTime t) {
  if (t < now_) {
    throw std::runtime_error("Simulator::FastForward into the past: t=" +
                             std::to_string(t) + " now=" + std::to_string(now_));
  }
  if (!queue_.Empty() && queue_.PeekTime() <= t) {
    throw std::runtime_error(
        "Simulator::FastForward over a pending event at t=" +
        std::to_string(queue_.PeekTime()) + " (run to " + std::to_string(t) +
        " first)");
  }
  now_ = t;
}

void Simulator::Run(SimTime until) {
  while (!queue_.Empty()) {
    const SimTime t = queue_.PeekTime();
    if (t > until) break;
    now_ = t;
    // Dispatch every event stamped `t`. Handlers may schedule more events at
    // `t`; those join the same batch (the queue orders them by kind/id).
    while (!queue_.Empty() && queue_.PeekTime() == t) {
      const Event e = queue_.Pop();
      ++events_processed_;
      handler_.HandleEvent(e, *this);
    }
    handler_.OnQuiescent(t, *this);
    // A quiescent handler may schedule events at `t` again (e.g. a start
    // that triggers an immediate follow-up); loop to drain them.
    while (!queue_.Empty() && queue_.PeekTime() == t) {
      while (!queue_.Empty() && queue_.PeekTime() == t) {
        const Event e = queue_.Pop();
        ++events_processed_;
        handler_.HandleEvent(e, *this);
      }
      handler_.OnQuiescent(t, *this);
    }
  }
}

}  // namespace hs
