// Extension ablation: opportunistic expansion. The paper only expands
// shrunk malleable jobs when their on-demand borrower completes (§III-B3);
// the extension also grows running malleable jobs onto idle nodes at every
// scheduling pass. Measures what that buys (and costs).
#include <cstdio>

#include "exp/experiment.h"
#include "metrics/report.h"
#include "util/env.h"

using namespace hs;

int main() {
  const BenchScale scale = ResolveBenchScale();
  std::printf("=== Ablation: opportunistic malleable expansion (W5, %d weeks x %d "
              "seeds) ===\n\n",
              scale.weeks, scale.seeds);

  ThreadPool pool;
  const ScenarioConfig scenario = MakePaperScenario(scale.weeks, "W5");
  const auto traces = BuildTraces(scenario, scale.seeds, 950, pool);

  std::vector<HybridConfig> configs;
  std::vector<std::string> labels;
  for (const char* name : {"N&SPAA", "CUA&SPAA"}) {
    for (const bool expand : {false, true}) {
      HybridConfig config = MakePaperConfig(ParseMechanism(name));
      config.opportunistic_expand = expand;
      configs.push_back(config);
      labels.push_back(std::string(name) + (expand ? " +expand" : "        "));
    }
  }
  const auto grid = RunGrid(traces, configs, pool);
  std::vector<LabeledResult> rows;
  for (std::size_t i = 0; i < configs.size(); ++i) {
    rows.push_back({labels[i], MeanResult(grid[i])});
  }
  std::printf("%s\n", RenderComparisonTable(rows).c_str());
  std::printf("expected: +expand shortens malleable turnaround (idle nodes get "
              "used) while slightly increasing the shrink traffic when the "
              "next on-demand burst lands.\n");
  return 0;
}
