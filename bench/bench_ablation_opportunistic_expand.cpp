// Extension ablation: opportunistic expansion. The paper only expands
// shrunk malleable jobs when their on-demand borrower completes (§III-B3);
// the extension also grows running malleable jobs onto idle nodes at every
// scheduling pass. Measures what that buys (and costs).
#include <cstdio>

#include "exp/runner.h"
#include "metrics/report.h"
#include "util/env.h"

using namespace hs;

int main() {
  const BenchScale scale = ResolveBenchScale();
  std::printf("=== Ablation: opportunistic malleable expansion (W5, %d weeks x %d "
              "seeds) ===\n\n",
              scale.weeks, scale.seeds);

  ThreadPool pool;
  ExperimentRunner runner(pool);

  std::vector<SimSpec> specs;
  std::vector<std::string> labels;
  for (const char* name : {"N&SPAA", "CUA&SPAA"}) {
    for (const bool expand : {false, true}) {
      SimSpec base = SimSpec::Parse(std::string(name) + "/FCFS/W5/expand=" +
                                    (expand ? "1" : "0"));
      base.weeks = scale.weeks;
      for (const SimSpec& seeded : SeedSweep(base, scale.seeds, 950)) {
        specs.push_back(seeded);
      }
      labels.push_back(std::string(name) + (expand ? " +expand" : "        "));
    }
  }
  const auto means = GroupMeans(runner.Run(specs), static_cast<std::size_t>(scale.seeds));

  std::vector<LabeledResult> rows;
  for (std::size_t i = 0; i < labels.size(); ++i) {
    rows.push_back({labels[i], means[i]});
  }
  std::printf("%s\n", RenderComparisonTable(rows).c_str());
  std::printf("expected: +expand shortens malleable turnaround (idle nodes get "
              "used) while slightly increasing the shrink traffic when the "
              "next on-demand burst lands.\n");
  return 0;
}
