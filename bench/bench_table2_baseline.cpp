// Table II: baseline FCFS/EASY performance with no special treatment of
// on-demand, rigid, or malleable jobs.
//
// Paper reference (Theta 2019, full year):
//   Avg. Turnaround 15.6 hours | System Util. 83.93% | Instant Start 22.69%
//
// Scale via HYBRIDSCHED_WEEKS / HYBRIDSCHED_SEEDS / HYBRIDSCHED_FULL=1.
#include <cstdio>

#include "exp/runner.h"
#include "metrics/report.h"
#include "util/env.h"

using namespace hs;

int main() {
  const BenchScale scale = ResolveBenchScale();
  std::printf("=== Table II: baseline FCFS/EASY (%d weeks x %d seeds) ===\n\n",
              scale.weeks, scale.seeds);

  ThreadPool pool;
  ExperimentRunner runner(pool);
  SimSpec base = SimSpec::Parse("baseline/FCFS/W5");
  base.weeks = scale.weeks;
  const SimResult mean =
      MeanResult(ResultsOf(runner.Run(SeedSweep(base, scale.seeds, 1000))));

  std::printf("%s\n", RenderBaselineTable(mean).c_str());
  std::printf("paper reports: 15.6 hours | 83.93%% | 22.69%%\n\n");
  std::printf("supporting detail: wait %.1f h | allocated util %.1f%% | "
              "od jobs %zu | completed %zu | killed %zu\n",
              mean.avg_wait_h, 100.0 * mean.allocated_utilization, mean.od_jobs,
              mean.jobs_completed, mean.jobs_killed);
  return 0;
}
