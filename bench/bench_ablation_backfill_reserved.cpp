// Ablation: backfilling jobs onto reserved nodes (§III-B1 allows it; killed
// at arrival). On vs off, for CUA&SPAA and CUP&SPAA on W2 (accurate
// notices, where reservations live longest).
#include <cstdio>

#include "exp/runner.h"
#include "metrics/report.h"
#include "util/env.h"

using namespace hs;

int main() {
  const BenchScale scale = ResolveBenchScale();
  std::printf("=== Ablation: backfill on reserved nodes (W2, %d weeks x %d seeds) "
              "===\n\n",
              scale.weeks, scale.seeds);

  ThreadPool pool;
  ExperimentRunner runner(pool);

  std::vector<SimSpec> specs;
  std::vector<std::string> labels;
  for (const char* name : {"CUA&SPAA", "CUP&SPAA"}) {
    for (const bool on : {true, false}) {
      SimSpec base = SimSpec::Parse(std::string(name) + "/FCFS/W2/backfill=" +
                                    (on ? "1" : "0"));
      base.weeks = scale.weeks;
      for (const SimSpec& seeded : SeedSweep(base, scale.seeds, 900)) {
        specs.push_back(seeded);
      }
      labels.push_back(std::string(name) + (on ? " +backfill" : " -backfill"));
    }
  }
  const auto means = GroupMeans(runner.Run(specs), static_cast<std::size_t>(scale.seeds));

  std::vector<LabeledResult> rows;
  for (std::size_t i = 0; i < labels.size(); ++i) {
    rows.push_back({labels[i], means[i]});
  }
  std::printf("%s\n", RenderComparisonTable(rows).c_str());
  std::printf("expected: +backfill improves utilization/turnaround slightly at "
              "the cost of occasional tenant kills on early arrivals.\n");
  return 0;
}
