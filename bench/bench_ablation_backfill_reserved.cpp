// Ablation: backfilling jobs onto reserved nodes (§III-B1 allows it; killed
// at arrival). On vs off, for CUA&SPAA and CUP&SPAA on W2 (accurate
// notices, where reservations live longest).
#include <cstdio>

#include "exp/experiment.h"
#include "metrics/report.h"
#include "util/env.h"

using namespace hs;

int main() {
  const BenchScale scale = ResolveBenchScale();
  std::printf("=== Ablation: backfill on reserved nodes (W2, %d weeks x %d seeds) "
              "===\n\n",
              scale.weeks, scale.seeds);

  ThreadPool pool;
  const ScenarioConfig scenario = MakePaperScenario(scale.weeks, "W2");
  const auto traces = BuildTraces(scenario, scale.seeds, 900, pool);

  std::vector<HybridConfig> configs;
  std::vector<std::string> labels;
  for (const char* name : {"CUA&SPAA", "CUP&SPAA"}) {
    for (const bool on : {true, false}) {
      HybridConfig config = MakePaperConfig(ParseMechanism(name));
      config.backfill_on_reserved = on;
      configs.push_back(config);
      labels.push_back(std::string(name) + (on ? " +backfill" : " -backfill"));
    }
  }
  const auto grid = RunGrid(traces, configs, pool);

  std::vector<LabeledResult> rows;
  for (std::size_t i = 0; i < configs.size(); ++i) {
    rows.push_back({labels[i], MeanResult(grid[i])});
  }
  std::printf("%s\n", RenderComparisonTable(rows).c_str());
  std::printf("expected: +backfill improves utilization/turnaround slightly at "
              "the cost of occasional tenant kills on early arrivals.\n");
  return 0;
}
