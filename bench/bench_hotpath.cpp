// bench_hotpath: microbenchmark harness for the simulator's per-event hot
// paths. Five benchmark families cover the layers the event loop touches on
// every simulated second:
//
//   cluster_ops     platform: start/finish/reserve/release node bookkeeping
//   queue_order_*   sched: policy-ordered waiting-queue views (hot + churn)
//   sched_pass_*    sched: ExecutionEngine::RunSchedulingPass in isolation
//                   (quiet: saturated cluster, blocked queue, nothing to do;
//                   storm: AI-swarm same-tick arrival bursts that start and
//                   drain through the free pool) — pass cost tracked
//                   independently of end_to_end_cells
//   event_churn     sim: schedule/cancel/pop cycles (malleable resizes)
//   trace_gen_burst workload: modulated synthesis (burst/aimix presets)
//   end_to_end      exp: sequential ExperimentRunner cells/sec
//   session_fork    exp: mid-flight SimulationSession::Fork()s/sec (what-if)
//   session_step    exp: batch-at-a-time NextEventTime/StepTo events/sec
//
// session_fork and session_step are report-only: they have no entry in the
// committed baselines (they arrived with the hs_server work), so they show
// a trajectory from here on without invalidating the pre-refactor numbers.
//
// Methodology: steady-clock timing, one warmup run per benchmark, then R
// timed repetitions; the reported figure is the median ops/sec (medians are
// robust against one-off scheduler hiccups on shared CI runners). Results
// are written as machine-readable JSON (BENCH_hotpath.json) so every PR
// extends a perf trajectory instead of a one-off number.
//
// The committed pre-refactor baseline (bench/BENCH_hotpath_baseline.json)
// is loaded and echoed into the output together with speedup ratios;
// --baseline= overrides the path, --baseline= (empty) skips it.
//
// Flags: --quick (CI smoke: smaller sizes, fewer reps), --reps=N,
//        --out=PATH, --baseline=PATH.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "exp/fixtures.h"
#include "exp/runner.h"
#include "exp/session.h"
#include "platform/cluster.h"
#include "sched/batch_scheduler.h"
#include "sched/policy.h"
#include "sched/queue_manager.h"
#include "sim/event_queue.h"
#include "util/cli.h"
#include "util/rng.h"

using namespace hs;

namespace {

struct BenchResult {
  std::string name;
  double median_ops_per_sec = 0.0;
  std::vector<double> reps;  // per-repetition ops/sec
};

/// Times `fn` (which returns the number of "operations" it performed):
/// one warmup call, then `reps` timed calls; returns median ops/sec.
template <typename Fn>
BenchResult RunBench(const std::string& name, int reps, Fn&& fn) {
  BenchResult out;
  out.name = name;
  fn();  // warmup
  for (int r = 0; r < reps; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    const std::int64_t ops = fn();
    const double secs =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
    out.reps.push_back(static_cast<double>(ops) / std::max(secs, 1e-9));
  }
  std::vector<double> sorted = out.reps;
  std::sort(sorted.begin(), sorted.end());
  out.median_ops_per_sec = sorted[sorted.size() / 2];
  return out;
}

// --- platform: cluster bookkeeping churn ------------------------------------

/// Mixed Start/Finish/Reserve/Release churn over a cluster, shaped like the
/// scheduler's usage: StartOn with specific nodes (the tenant path that used
/// to pay a linear free-list erase per node), reservations opening and
/// closing, malleable shrink/expand. Returns ops performed.
std::int64_t ClusterChurn(int num_nodes, int rounds) {
  Cluster cluster(num_nodes);
  Rng rng(0xC105ULL);
  std::int64_t ops = 0;
  std::vector<JobId> running;
  JobId next_job = 0;
  for (int i = 0; i < rounds; ++i) {
    const int free = cluster.free_count();
    const int action = static_cast<int>(rng.UniformInt(0, 5));
    if (action <= 1 && free >= 8) {  // start a job from the free pool
      const int want = static_cast<int>(rng.UniformInt(1, std::min(free, 64)));
      running.push_back(next_job);
      cluster.StartFromFree(next_job++, want);
      ++ops;
    } else if (action == 2 && free >= 16) {  // tenant-style StartOn (specific nodes)
      std::vector<int> nodes;
      for (int n = 0; n < num_nodes && static_cast<int>(nodes.size()) < 8; ++n) {
        if (cluster.running_on(n) == kNoJob && cluster.reserved_for(n) == kNoJob) {
          nodes.push_back(n);
        }
      }
      if (!nodes.empty()) {
        running.push_back(next_job);
        cluster.StartOn(next_job++, nodes);
        ++ops;
      }
    } else if (action == 3 && free >= 8) {  // open + drop a reservation
      const JobId od = next_job++;
      cluster.ReserveFromFree(od, static_cast<int>(rng.UniformInt(1, 32)));
      cluster.Unreserve(od);
      ops += 2;
    } else if (action == 4 && !running.empty()) {  // shrink a running job
      const std::size_t pick =
          static_cast<std::size_t>(rng.UniformInt(0, static_cast<std::int64_t>(running.size()) - 1));
      const JobId job = running[pick];
      const int alloc = cluster.AllocCount(job);
      if (alloc > 1) {
        cluster.ReleaseSome(job, alloc / 2);
        ++ops;
      }
    } else if (!running.empty()) {  // finish the oldest job
      cluster.Finish(running.front());
      running.erase(running.begin());
      ++ops;
    }
  }
  for (const JobId job : running) cluster.Finish(job);
  return ops + static_cast<std::int64_t>(running.size());
}

// --- sched: policy-ordered queue views ---------------------------------------

std::vector<JobRecord> MakeQueueRecords(int count) {
  std::vector<JobRecord> records(static_cast<std::size_t>(count));
  Rng rng(0x0DEULL);
  for (int i = 0; i < count; ++i) {
    JobRecord& rec = records[static_cast<std::size_t>(i)];
    rec.id = i;
    rec.size = static_cast<int>(rng.UniformInt(1, 256));
    rec.min_size = rec.size;
    rec.estimate = rng.UniformInt(600, 24 * 3600);
    rec.compute_time = rec.estimate / 2;
  }
  return records;
}

void FillQueue(QueueManager& queue, const std::vector<JobRecord>& records) {
  Rng rng(0xF111ULL);
  for (const JobRecord& rec : records) {
    WaitingJob w;
    w.id = rec.id;
    w.record = &rec;
    w.first_submit = rng.UniformInt(0, 1 << 20);
    w.enqueue_time = w.first_submit;
    w.estimate_remaining = rec.estimate;
    queue.Add(w);
  }
}

/// Repeated Ordered() views over a static queue (the quiescent-pass shape:
/// many passes between queue edits). Returns ordering calls performed.
std::int64_t QueueOrderHot(const std::vector<JobRecord>& records, int calls) {
  QueueManager queue;
  FillQueue(queue, records);
  const auto policy = MakePolicy("SJF");
  std::int64_t sink = 0;
  for (int i = 0; i < calls; ++i) {
    const auto view = queue.Ordered(*policy, /*now=*/i);
    sink += static_cast<std::int64_t>(view.size());
  }
  return sink == -1 ? 0 : calls;
}

/// Ordered() with queue churn between calls (arrivals + starts): each
/// iteration removes and re-adds a pair of jobs first.
std::int64_t QueueOrderChurn(const std::vector<JobRecord>& records, int calls) {
  QueueManager queue;
  FillQueue(queue, records);
  const auto policy = MakePolicy("SJF");
  const int n = static_cast<int>(records.size());
  std::int64_t sink = 0;
  for (int i = 0; i < calls; ++i) {
    const JobId a = i % n;
    const JobId b = (i * 7 + 1) % n;
    WaitingJob wa = queue.Remove(a);
    queue.Add(wa);
    if (b != a) {
      WaitingJob wb = queue.Remove(b);
      queue.Add(wb);
    }
    const auto view = queue.Ordered(*policy, /*now=*/i);
    sink += static_cast<std::int64_t>(view.size());
  }
  return sink == -1 ? 0 : calls;
}

// --- sched: the scheduling pass in isolation ----------------------------------

/// The pass rigs and the id pool they draw storm bursts from. Quantum-sized
/// aimix jobs (128 nodes — the smallest allocation the Theta synthesis
/// emits) are the AI-swarm component: 16 fit concurrently, so the engine
/// carries a realistic running table with free headroom left over.
struct PassRig {
  std::unique_ptr<test::EngineSandbox> sandbox;
  std::vector<JobId> small_ids;  // unstarted small jobs (storm ammunition)
};

/// A warm ExecutionEngine over an aimix trace: small (AI-swarm) jobs are
/// started directly until the cluster reaches `busy_frac`, then `backlog`
/// further jobs are enqueued as the waiting queue. High busy_frac + backlog
/// is the quiet-rig shape (saturated machine, blocked queue); low busy_frac
/// with no backlog leaves free headroom for storm rounds.
PassRig MakePassRig(int weeks, double busy_frac, int backlog) {
  SimSpec spec = SimSpec::Parse("baseline/FCFS/W5/preset=aimix/ai_frac=0.5");
  spec.weeks = weeks;
  spec.seed = 42;
  EngineConfig config;
  config.checkpoint.node_mtbf = 1000LL * 365 * kDay;  // no dumps: pass-only cost
  PassRig rig;
  rig.sandbox = std::make_unique<test::EngineSandbox>(spec.BuildTrace(), config);
  ExecutionEngine& engine = rig.sandbox->engine_;
  const Trace& trace = rig.sandbox->trace_;
  const int nodes = trace.num_nodes;
  const int total = static_cast<int>(trace.jobs.size());
  int backlog_left = backlog;
  for (JobId id = 0; id < total; ++id) {
    const JobRecord& rec = trace.jobs[static_cast<std::size_t>(id)];
    const bool small = rec.size <= 128;  // the Theta size quantum: 16 fit concurrently
    if (small && engine.cluster().busy_count() <
                     static_cast<int>(busy_frac * nodes) &&
        rec.size <= engine.cluster().free_count()) {
      engine.EnqueueFresh(id, 0);
      if (!engine.StartWaiting(id, rec.size, 0)) engine.queue().Remove(id);
    } else if (backlog_left > 0) {
      engine.EnqueueFresh(id, 0);
      --backlog_left;
    } else if (small) {
      rig.small_ids.push_back(id);
    }
  }
  return rig;
}

/// Repeated passes over a saturated cluster and an unchanged blocked queue —
/// the dominant quiescent-callback shape (most events change nothing the
/// pass could use). Returns passes performed.
std::int64_t SchedPassQuiet(test::EngineSandbox& rig, int calls) {
  std::int64_t started = 0;
  for (int i = 1; i <= calls; ++i) {
    started += rig.engine_.RunSchedulingPass(i);
  }
  return started == -1 ? 0 : calls;
}

/// AI-swarm storm rounds: every round submits a same-tick burst of small
/// jobs, runs one pass (they start through the free pool), then finishes the
/// started jobs and clears the stragglers — steady-state arrival churn.
/// Returns jobs pushed through.
std::int64_t SchedPassStorm(PassRig& rig, int burst, int rounds) {
  ExecutionEngine& engine = rig.sandbox->engine_;
  const int pool = static_cast<int>(rig.small_ids.size());
  std::int64_t ops = 0;
  int next = 0;
  std::vector<JobId> batch;
  for (int r = 1; r <= rounds; ++r) {
    const SimTime now = r;
    batch.clear();
    for (int b = 0; b < burst; ++b) {
      const JobId id = rig.small_ids[static_cast<std::size_t>(next++ % pool)];
      if (engine.IsWaiting(id) || engine.IsRunning(id)) continue;
      engine.EnqueueFresh(id, now);
      batch.push_back(id);
    }
    engine.RunSchedulingPass(now);
    for (const JobId id : batch) {
      if (engine.IsRunning(id)) {
        engine.FinishRunning(id, now);
      } else if (engine.IsWaiting(id)) {
        engine.queue().Remove(id);
      }
    }
    ops += static_cast<std::int64_t>(batch.size());
  }
  return ops;
}

// --- sim: event queue churn ---------------------------------------------------

/// Schedule/cancel/pop cycles shaped like malleable resizes: every resize
/// cancels a finish/kill pair and schedules a new one. Returns ops.
std::int64_t EventChurn(int jobs, int rounds) {
  EventQueue q;
  Rng rng(0xE7E2ULL);
  std::vector<EventId> finish(static_cast<std::size_t>(jobs), kNoEvent);
  std::vector<EventId> kill(static_cast<std::size_t>(jobs), kNoEvent);
  std::int64_t ops = 0;
  SimTime now = 0;
  for (int j = 0; j < jobs; ++j) {
    finish[static_cast<std::size_t>(j)] =
        q.Push(now + rng.UniformInt(1, 100000), EventKind::kJobFinish, j);
    kill[static_cast<std::size_t>(j)] =
        q.Push(now + rng.UniformInt(1, 200000), EventKind::kJobKill, j);
    ops += 2;
  }
  for (int i = 0; i < rounds; ++i) {
    const int j = static_cast<int>(rng.UniformInt(0, jobs - 1));
    const auto sj = static_cast<std::size_t>(j);
    // Resize: cancel the pair, reschedule it later.
    q.Cancel(finish[sj]);
    q.Cancel(kill[sj]);
    finish[sj] = q.Push(now + rng.UniformInt(1, 100000), EventKind::kJobFinish, j);
    kill[sj] = q.Push(now + rng.UniformInt(1, 200000), EventKind::kJobKill, j);
    ops += 4;
    if (i % 4 == 0 && !q.Empty()) {  // drain a little, advancing the clock
      const Event e = q.Pop();
      now = std::max(now, e.time);
      ++ops;
    }
  }
  while (!q.Empty()) {
    q.Pop();
    ++ops;
  }
  return ops;
}

// --- workload: modulated trace synthesis --------------------------------------

/// Generator-layer throughput: jobs synthesized per second for a bursty,
/// AI-blended scenario — Theta synthesis plus the workload/generators.h
/// pipeline (AI swarm blend + storm/diurnal arrival warp), the hot path of
/// the burst/diurnal/aimix presets. Returns jobs generated.
std::int64_t TraceGenBurst(int weeks) {
  SimSpec spec =
      SimSpec::Parse("baseline/FCFS/W5/preset=burst/ai_frac=0.2/diurnal_amp=0.5");
  spec.weeks = weeks;
  spec.seed = 77;
  const Trace trace = spec.BuildTrace();
  return static_cast<std::int64_t>(trace.jobs.size());
}

// --- exp: end-to-end cells/sec ------------------------------------------------

/// Sequential ExperimentRunner throughput over a small mechanism sample.
/// Single-threaded on purpose: cells/sec here is per-cell simulation cost,
/// not machine parallelism. Returns cells completed.
std::int64_t EndToEnd(int weeks, int seeds) {
  std::vector<SimSpec> specs;
  for (const char* mechanism : {"baseline", "N&PAA", "CUP&SPAA"}) {
    SimSpec base = SimSpec::Parse(std::string(mechanism) + "/FCFS/W5");
    base.weeks = weeks;
    for (const SimSpec& seeded : SeedSweep(base, seeds, 4200)) specs.push_back(seeded);
  }
  ThreadPool pool(1);
  ExperimentRunner runner(pool);
  const auto rows = runner.Run(specs);
  return static_cast<std::int64_t>(rows.size());
}

// --- exp: session fork + incremental stepping ---------------------------------

/// Fork()s/sec of a mid-flight midsize session — the hs_server what-if hot
/// path (deep copy of cluster + queues + reservations + event heap + RNG
/// streams). Returns forks performed.
std::int64_t SessionFork(const SimulationSession& session, int forks) {
  std::int64_t sink = 0;
  for (int i = 0; i < forks; ++i) {
    const std::unique_ptr<SimulationSession> fork = session.Fork();
    sink += fork->now();
  }
  return sink == -1 ? 0 : forks;
}

/// Events/sec when driving a run one timestamp batch at a time through
/// NextEventTime()/StepTo() — the server's advance/what-if stepping shape,
/// versus Run()'s single uninterrupted loop. Returns events processed.
std::int64_t SessionStep(const SimSpec& spec) {
  SimulationSession session(spec);
  for (;;) {
    const SimTime next = session.NextEventTime();
    if (next == kNever) break;
    session.StepTo(next);
  }
  return static_cast<std::int64_t>(session.simulator().events_processed());
}

// --- JSON output / baseline loading ------------------------------------------

std::string JsonDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

/// Extracts `"median": <number>` for benchmark `name` from a prior
/// BENCH_hotpath.json. Medians-only scan — enough for trend arithmetic
/// without a JSON dependency; returns false when the file or key is absent.
bool BaselineMedian(const std::string& text, const std::string& name, double* out) {
  const auto name_pos = text.find("\"" + name + "\"");
  if (name_pos == std::string::npos) return false;
  const auto med_pos = text.find("\"median\":", name_pos);
  if (med_pos == std::string::npos) return false;
  *out = std::strtod(text.c_str() + med_pos + 9, nullptr);
  return *out > 0.0;
}

}  // namespace

int main(int argc, char** argv) try {
  const CliArgs args(argc, argv);
  const bool quick = args.GetBool("quick", false);
  const int reps =
      std::max(1, static_cast<int>(args.GetInt("reps", quick ? 3 : 5)));
  const std::string out_path = args.GetString("out", "BENCH_hotpath.json");
  // Quick and full runs use different workload sizes, so each mode has its
  // own committed pre-refactor baseline; comparing across modes would
  // report meaningless ratios.
  const std::string baseline_file = quick ? "BENCH_hotpath_baseline_quick.json"
                                          : "BENCH_hotpath_baseline.json";
#ifdef HS_SOURCE_DIR
  const std::string default_baseline =
      std::string(HS_SOURCE_DIR) + "/bench/" + baseline_file;
#else
  const std::string default_baseline = baseline_file;
#endif
  const std::string baseline_path = args.GetString("baseline", default_baseline);
  args.RejectUnknown();

  const int cluster_nodes = quick ? 1024 : 4096;
  const int cluster_rounds = quick ? 60000 : 300000;
  const int queue_jobs = quick ? 500 : 1500;
  const int order_calls_hot = quick ? 600 : 2000;
  const int order_calls_churn = quick ? 300 : 800;
  const int event_jobs = quick ? 2000 : 8000;
  const int event_rounds = quick ? 120000 : 600000;
  const int e2e_weeks = quick ? 1 : 2;
  const int e2e_seeds = quick ? 1 : 2;
  const int trace_gen_weeks = quick ? 1 : 4;
  const int fork_count = quick ? 50 : 200;
  const int pass_quiet_calls = quick ? 5000 : 20000;
  const int pass_storm_rounds = quick ? 300 : 1000;
  const int pass_storm_burst = 64;

  std::printf("=== bench_hotpath (%s: reps=%d) ===\n", quick ? "quick" : "full", reps);

  const std::vector<JobRecord> records = MakeQueueRecords(queue_jobs);
  std::vector<BenchResult> results;
  results.push_back(RunBench("cluster_ops", reps, [&] {
    return ClusterChurn(cluster_nodes, cluster_rounds);
  }));
  results.push_back(RunBench("queue_order_hot", reps, [&] {
    return QueueOrderHot(records, order_calls_hot);
  }));
  results.push_back(RunBench("queue_order_churn", reps, [&] {
    return QueueOrderChurn(records, order_calls_churn);
  }));
  {
    // Rigs are built once: the families measure steady-state pass cost, not
    // trace synthesis or warmup placement. A settling pass lets whatever can
    // still start (head + backfill) do so, so the timed passes see a
    // genuinely blocked steady state.
    auto quiet_rig = MakePassRig(/*weeks=*/1, /*busy_frac=*/0.95,
                                 /*backlog=*/2000);
    quiet_rig.sandbox->engine_.RunSchedulingPass(0);
    results.push_back(RunBench("sched_pass_quiet", reps, [&] {
      return SchedPassQuiet(*quiet_rig.sandbox, pass_quiet_calls);
    }));
    auto storm_rig = MakePassRig(/*weeks=*/1, /*busy_frac=*/0.6, /*backlog=*/0);
    results.push_back(RunBench("sched_pass_storm", reps, [&] {
      return SchedPassStorm(storm_rig, pass_storm_burst, pass_storm_rounds);
    }));
  }
  results.push_back(RunBench("event_churn", reps, [&] {
    return EventChurn(event_jobs, event_rounds);
  }));
  results.push_back(RunBench("trace_gen_burst", reps, [&] {
    return TraceGenBurst(trace_gen_weeks);
  }));
  results.push_back(RunBench("end_to_end_cells", reps, [&] {
    return EndToEnd(e2e_weeks, e2e_seeds);
  }));
  // Report-only families (no entry in the committed baselines): the
  // hs_server paths — what-if forking and batch-at-a-time stepping.
  SimSpec fork_spec = SimSpec::Parse("CUP&SPAA/FCFS/W5/preset=midsize");
  fork_spec.seed = 1;
  SimulationSession fork_session(fork_spec);
  fork_session.StepTo(3 * kDay + kHour / 2);  // mid-week, state fully warm
  results.push_back(RunBench("session_fork", reps, [&] {
    return SessionFork(fork_session, fork_count);
  }));
  results.push_back(RunBench("session_step", reps, [&] {
    return SessionStep(fork_spec);
  }));

  // Load the committed pre-refactor baseline (if present).
  std::string baseline_text;
  if (!baseline_path.empty()) {
    std::ifstream in(baseline_path);
    if (in) {
      std::ostringstream buf;
      buf << in.rdbuf();
      baseline_text = buf.str();
    }
  }

  std::ostringstream json;
  json << "{\n  \"schema\": 1,\n  \"quick\": " << (quick ? "true" : "false")
       << ",\n  \"reps\": " << reps << ",\n  \"benchmarks\": {\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const BenchResult& r = results[i];
    json << "    \"" << r.name << "\": {\"unit\": \"ops_per_sec\", \"median\": "
         << JsonDouble(r.median_ops_per_sec) << ", \"reps\": [";
    for (std::size_t k = 0; k < r.reps.size(); ++k) {
      if (k) json << ", ";
      json << JsonDouble(r.reps[k]);
    }
    json << "]}" << (i + 1 < results.size() ? "," : "") << "\n";
  }
  json << "  },\n  \"baseline\": ";
  if (baseline_text.empty()) {
    json << "null,\n  \"speedup_vs_baseline\": null\n";
  } else {
    std::ostringstream base, speed;
    bool first = true;
    for (const BenchResult& r : results) {
      double med = 0.0;
      if (!BaselineMedian(baseline_text, r.name, &med)) continue;
      if (!first) {
        base << ", ";
        speed << ", ";
      }
      first = false;
      base << "\"" << r.name << "\": " << JsonDouble(med);
      speed << "\"" << r.name << "\": " << JsonDouble(r.median_ops_per_sec / med);
    }
    json << "{" << base.str() << "},\n  \"speedup_vs_baseline\": {" << speed.str()
         << "}\n";
  }
  json << "}\n";

  std::ofstream out(out_path);
  out << json.str();
  out.close();

  for (const BenchResult& r : results) {
    double med = 0.0;
    const bool have_base =
        !baseline_text.empty() && BaselineMedian(baseline_text, r.name, &med);
    std::printf("  %-18s %12.3g ops/s", r.name.c_str(), r.median_ops_per_sec);
    if (have_base) std::printf("   (%.2fx vs baseline)", r.median_ops_per_sec / med);
    std::printf("\n");
  }
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
} catch (const std::exception& e) {
  std::fprintf(stderr, "error: %s\n", e.what());
  return 2;
}
