// Ablation: the malleable minimum-size fraction (§IV-B fixes it at 20% of
// the request). Smaller minima give SPAA a deeper shrink supply.
#include <cstdio>

#include "exp/experiment.h"
#include "metrics/report.h"
#include "util/env.h"

using namespace hs;

int main() {
  const BenchScale scale = ResolveBenchScale();
  std::printf("=== Ablation: malleable min-size fraction (N&SPAA, W5, %d weeks x "
              "%d seeds) ===\n\n",
              scale.weeks, scale.seeds);

  ThreadPool pool;
  std::vector<LabeledResult> rows;
  for (const double frac : {0.1, 0.2, 0.5}) {
    ScenarioConfig scenario = MakePaperScenario(scale.weeks, "W5");
    scenario.types.malleable_min_frac = frac;
    const auto traces = BuildTraces(scenario, scale.seeds, 920, pool);
    const HybridConfig config = MakePaperConfig(ParseMechanism("N&SPAA"));
    const auto grid = RunGrid(traces, {config}, pool);
    rows.push_back({"min=" + FmtPct(frac, 0), MeanResult(grid[0])});
  }
  std::printf("%s\n", RenderComparisonTable(rows).c_str());
  std::printf("expected: smaller minima raise the shrink supply, cutting "
              "malleable preemptions; very small minima stretch malleable "
              "turnaround instead.\n");
  return 0;
}
