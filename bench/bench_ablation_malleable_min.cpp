// Ablation: the malleable minimum-size fraction (§IV-B fixes it at 20% of
// the request). Smaller minima give SPAA a deeper shrink supply.
#include <cstdio>

#include "exp/runner.h"
#include "metrics/report.h"
#include "util/env.h"

using namespace hs;

int main() {
  const BenchScale scale = ResolveBenchScale();
  std::printf("=== Ablation: malleable min-size fraction (N&SPAA, W5, %d weeks x "
              "%d seeds) ===\n\n",
              scale.weeks, scale.seeds);

  ThreadPool pool;
  ExperimentRunner runner(pool);

  std::vector<SimSpec> specs;
  std::vector<std::string> labels;
  for (const double frac : {0.1, 0.2, 0.5}) {
    SimSpec base = SimSpec::Parse("N&SPAA/FCFS/W5/malleable_min=" + Fmt(frac, 1));
    base.weeks = scale.weeks;
    for (const SimSpec& seeded : SeedSweep(base, scale.seeds, 920)) {
      specs.push_back(seeded);
    }
    labels.push_back("min=" + FmtPct(frac, 0));
  }
  const auto means = GroupMeans(runner.Run(specs), static_cast<std::size_t>(scale.seeds));

  std::vector<LabeledResult> rows;
  for (std::size_t i = 0; i < labels.size(); ++i) {
    rows.push_back({labels[i], means[i]});
  }
  std::printf("%s\n", RenderComparisonTable(rows).c_str());
  std::printf("expected: smaller minima raise the shrink supply, cutting "
              "malleable preemptions; very small minima stretch malleable "
              "turnaround instead.\n");
  return 0;
}
