// Comparator ablation: a statically partitioned machine (the "dedicated
// on-demand cluster" status quo from the paper's introduction) versus the
// hybrid co-scheduling mechanisms. The partition guarantees responsiveness
// only when it is large — and then it burns idle node-hours; the mechanisms
// deliver both responsiveness and utilization from one shared pool.
#include <cstdio>

#include "exp/runner.h"
#include "metrics/report.h"
#include "util/env.h"

using namespace hs;

int main() {
  const BenchScale scale = ResolveBenchScale();
  std::printf("=== Ablation: static on-demand partition vs hybrid mechanisms "
              "(W5, %d weeks x %d seeds) ===\n\n",
              scale.weeks, scale.seeds);

  ThreadPool pool;
  ExperimentRunner runner(pool);

  std::vector<std::pair<std::string, std::string>> cells;
  cells.emplace_back("shared, FCFS/EASY", "baseline/FCFS/W5");
  for (const int partition : {256, 512, 1024}) {
    cells.emplace_back("static partition " + std::to_string(partition),
                       "baseline/FCFS/W5/partition=" + std::to_string(partition));
  }
  cells.emplace_back("hybrid CUA&SPAA", "CUA&SPAA/FCFS/W5");

  std::vector<SimSpec> specs;
  for (const auto& [label, spec_text] : cells) {
    SimSpec base = SimSpec::Parse(spec_text);
    base.weeks = scale.weeks;
    for (const SimSpec& seeded : SeedSweep(base, scale.seeds, 940)) {
      specs.push_back(seeded);
    }
  }
  const auto means = GroupMeans(runner.Run(specs), static_cast<std::size_t>(scale.seeds));

  std::vector<LabeledResult> rows;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    rows.push_back({cells[i].first, means[i]});
  }
  std::printf("%s\n", RenderComparisonTable(rows).c_str());
  std::printf("expected: small partitions leave on-demand jobs queueing behind "
              "each other; large partitions idle away capacity (lower "
              "utilization, longer batch turnaround); the hybrid mechanism "
              "dominates both.\n");
  return 0;
}
