// Comparator ablation: a statically partitioned machine (the "dedicated
// on-demand cluster" status quo from the paper's introduction) versus the
// hybrid co-scheduling mechanisms. The partition guarantees responsiveness
// only when it is large — and then it burns idle node-hours; the mechanisms
// deliver both responsiveness and utilization from one shared pool.
#include <cstdio>

#include "exp/experiment.h"
#include "metrics/report.h"
#include "util/env.h"

using namespace hs;

int main() {
  const BenchScale scale = ResolveBenchScale();
  std::printf("=== Ablation: static on-demand partition vs hybrid mechanisms "
              "(W5, %d weeks x %d seeds) ===\n\n",
              scale.weeks, scale.seeds);

  ThreadPool pool;
  const ScenarioConfig scenario = MakePaperScenario(scale.weeks, "W5");
  const auto traces = BuildTraces(scenario, scale.seeds, 940, pool);

  std::vector<HybridConfig> configs;
  std::vector<std::string> labels;
  configs.push_back(MakePaperConfig(BaselineMechanism()));
  labels.push_back("shared, FCFS/EASY");
  for (const int partition : {256, 512, 1024}) {
    HybridConfig config = MakePaperConfig(BaselineMechanism());
    config.static_od_partition = partition;
    configs.push_back(config);
    labels.push_back("static partition " + std::to_string(partition));
  }
  configs.push_back(MakePaperConfig(ParseMechanism("CUA&SPAA")));
  labels.push_back("hybrid CUA&SPAA");

  const auto grid = RunGrid(traces, configs, pool);
  std::vector<LabeledResult> rows;
  for (std::size_t i = 0; i < configs.size(); ++i) {
    rows.push_back({labels[i], MeanResult(grid[i])});
  }
  std::printf("%s\n", RenderComparisonTable(rows).c_str());
  std::printf("expected: small partitions leave on-demand jobs queueing behind "
              "each other; large partitions idle away capacity (lower "
              "utilization, longer batch turnaround); the hybrid mechanism "
              "dominates both.\n");
  return 0;
}
