// Table I + Fig. 3: the synthetic Theta-like workload — machine summary,
// and the number of jobs (outer ring in the paper) and node-hours (inner
// ring) per size range.
#include <cstdio>

#include "exp/sim_spec.h"
#include "util/env.h"
#include "util/table.h"
#include "workload/characterize.h"

using namespace hs;

int main() {
  const BenchScale scale = ResolveBenchScale();
  SimSpec spec = SimSpec::Parse("baseline/FCFS/W5/seed=1");
  spec.weeks = scale.weeks;
  const Trace trace = spec.BuildTrace();
  const TraceSummary s = Summarize(trace);

  std::printf("=== Table I: synthetic Theta-like workload (%d weeks) ===\n\n",
              scale.weeks);
  TextTable info({"Field", "Value", "Paper (Theta 2019)"});
  info.AddRow({"Compute nodes", std::to_string(s.num_nodes), "4,392 KNL"});
  info.AddRow({"Trace period", FormatDuration(s.span), "Jan. - Dec. 2019"});
  info.AddRow({"Number of jobs", std::to_string(s.num_jobs), "37,298 (full year)"});
  info.AddRow({"Number of projects", std::to_string(s.num_projects), "211"});
  info.AddRow({"Maximum job length", FormatDuration(s.max_wall), "1 day"});
  info.AddRow({"Minimum job size", std::to_string(s.min_size) + " nodes", "128 nodes"});
  info.AddRow({"Offered load", Fmt(s.offered_load, 2), "(calibrated ~0.92)"});
  std::printf("%s\n", info.Render().c_str());

  std::printf("=== Fig. 3: jobs (outer) and node-hours (inner) by size range ===\n\n");
  const RangeHistogram hist = SizeHistogram(trace);
  TextTable fig3({"Size range (nodes)", "Jobs", "Jobs share", "Node-hours share"});
  for (std::size_t i = 0; i < hist.bins().size(); ++i) {
    fig3.AddRow({hist.bins()[i].label, std::to_string(hist.bins()[i].count),
                 FmtPct(hist.CountShare(i), 1), FmtPct(hist.WeightShare(i), 1)});
  }
  std::printf("%s\n", fig3.Render().c_str());
  std::printf("shape check: small jobs dominate the count; large jobs hold a "
              "disproportionate share of node-hours.\n");
  return 0;
}
