// Observation 10: scheduling decisions must complete in well under 10 ms
// ("the proposed methods take less than 10 milliseconds to make a
// decision"). Microbenchmarks of the arrival-time decision kernels at
// various running-job counts, via google-benchmark.
#include <benchmark/benchmark.h>

#include "core/advance_notice.h"
#include "core/arrival.h"
#include "core/preemption_cost.h"
#include "core/shrink_expand.h"
#include "metrics/collector.h"
#include "sched/batch_scheduler.h"
#include "sim/simulator.h"

namespace hs {
namespace {

/// Builds an engine with `n` running jobs (alternating rigid/malleable).
class LoadedEngine : public EventHandler {
 public:
  explicit LoadedEngine(int n)
      : trace_(MakeTrace(n)), sim_(*this), collector_(), engine_(trace_, Config(),
                                                                 collector_, sim_) {
    for (int i = 0; i < n; ++i) {
      engine_.EnqueueFresh(i, 0);
      const bool ok = engine_.StartWaiting(i, trace_.jobs[i].size, 0);
      if (!ok) throw std::runtime_error("LoadedEngine: machine too small");
    }
  }

  void HandleEvent(const Event&, Simulator&) override {}
  void OnQuiescent(SimTime, Simulator&) override {}

  ExecutionEngine& engine() { return engine_; }

 private:
  static EngineConfig Config() {
    EngineConfig config;
    config.checkpoint.node_mtbf = 1000LL * 365 * kDay;
    return config;
  }
  static Trace MakeTrace(int n) {
    Trace trace;
    trace.num_nodes = n * 16;
    for (int i = 0; i < n; ++i) {
      JobRecord rec;
      rec.id = i;
      rec.klass = (i % 2 == 0) ? JobClass::kRigid : JobClass::kMalleable;
      rec.size = 16;
      rec.min_size = rec.is_malleable() ? 4 : 16;
      rec.compute_time = 10000 + i;
      rec.setup_time = 100;
      rec.estimate = 30000;
      trace.jobs.push_back(rec);
    }
    return trace;
  }

  Trace trace_;
  Simulator sim_;
  Collector collector_;
  ExecutionEngine engine_;
};

void BM_PaaDecision(benchmark::State& state) {
  LoadedEngine loaded(static_cast<int>(state.range(0)));
  const int needed = static_cast<int>(state.range(0)) * 4;
  for (auto _ : state) {
    const auto candidates = ListPreemptionCandidates(loaded.engine(), 5000);
    const auto victims = SelectVictims(candidates, needed);
    benchmark::DoNotOptimize(victims.size());
  }
}
BENCHMARK(BM_PaaDecision)->Arg(64)->Arg(256)->Arg(1024);

void BM_SpaaDecision(benchmark::State& state) {
  LoadedEngine loaded(static_cast<int>(state.range(0)));
  const int needed = static_cast<int>(state.range(0)) * 2;
  for (auto _ : state) {
    const auto shrinkable = ListShrinkable(loaded.engine());
    int supply = 0;
    for (const auto& [id, cap] : shrinkable) supply += cap;
    if (supply >= needed) {
      const auto plan = PlanEvenShrink(shrinkable, needed);
      benchmark::DoNotOptimize(plan.size());
    }
  }
}
BENCHMARK(BM_SpaaDecision)->Arg(64)->Arg(256)->Arg(1024);

void BM_CupPlanning(benchmark::State& state) {
  LoadedEngine loaded(static_cast<int>(state.range(0)));
  const int deficit = static_cast<int>(state.range(0)) * 4;
  for (auto _ : state) {
    const auto plan =
        PlanCupPreemptions(loaded.engine(), 5000, 5000 + 1800, deficit, 120);
    benchmark::DoNotOptimize(plan.size());
  }
}
BENCHMARK(BM_CupPlanning)->Arg(64)->Arg(256)->Arg(1024);

void BM_ExpectedReleases(benchmark::State& state) {
  LoadedEngine loaded(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(ExpectedReleaseNodes(loaded.engine(), 5000, 7000));
  }
}
BENCHMARK(BM_ExpectedReleases)->Arg(64)->Arg(1024);

}  // namespace
}  // namespace hs

BENCHMARK_MAIN();
