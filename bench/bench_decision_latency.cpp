// Observation 10: scheduling decisions must complete in well under 10 ms
// ("the proposed methods take less than 10 milliseconds to make a
// decision"). Microbenchmarks of the arrival-time decision kernels at
// various running-job counts, via google-benchmark.
#include <benchmark/benchmark.h>

#include "core/advance_notice.h"
#include "core/arrival.h"
#include "core/preemption_cost.h"
#include "core/shrink_expand.h"
#include "exp/fixtures.h"

namespace hs {
namespace {

/// The engine-with-n-running-jobs fixture lives in exp/fixtures.h.
using test::LoadedEngine;

void BM_PaaDecision(benchmark::State& state) {
  LoadedEngine loaded(static_cast<int>(state.range(0)));
  const int needed = static_cast<int>(state.range(0)) * 4;
  for (auto _ : state) {
    const auto candidates = ListPreemptionCandidates(loaded.engine(), 5000);
    const auto victims = SelectVictims(candidates, needed);
    benchmark::DoNotOptimize(victims.size());
  }
}
BENCHMARK(BM_PaaDecision)->Arg(64)->Arg(256)->Arg(1024);

void BM_SpaaDecision(benchmark::State& state) {
  LoadedEngine loaded(static_cast<int>(state.range(0)));
  const int needed = static_cast<int>(state.range(0)) * 2;
  for (auto _ : state) {
    const auto shrinkable = ListShrinkable(loaded.engine());
    int supply = 0;
    for (const auto& [id, cap] : shrinkable) supply += cap;
    if (supply >= needed) {
      const auto plan = PlanEvenShrink(shrinkable, needed);
      benchmark::DoNotOptimize(plan.size());
    }
  }
}
BENCHMARK(BM_SpaaDecision)->Arg(64)->Arg(256)->Arg(1024);

void BM_CupPlanning(benchmark::State& state) {
  LoadedEngine loaded(static_cast<int>(state.range(0)));
  const int deficit = static_cast<int>(state.range(0)) * 4;
  for (auto _ : state) {
    const auto plan =
        PlanCupPreemptions(loaded.engine(), 5000, 5000 + 1800, deficit, 120);
    benchmark::DoNotOptimize(plan.size());
  }
}
BENCHMARK(BM_CupPlanning)->Arg(64)->Arg(256)->Arg(1024);

void BM_ExpectedReleases(benchmark::State& state) {
  LoadedEngine loaded(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(ExpectedReleaseNodes(loaded.engine(), 5000, 7000));
  }
}
BENCHMARK(BM_ExpectedReleases)->Arg(64)->Arg(1024);

}  // namespace
}  // namespace hs

BENCHMARK_MAIN();
