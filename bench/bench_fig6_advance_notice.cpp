// Fig. 6 (with Table III): the paper's headline experiment. All six
// mechanisms (plus the baseline) across the five advance-notice mixes
// W1..W5, averaged over several randomly generated traces. One grid is
// printed per metric panel.
//
// Shape expectations from the paper (checked narratively at the end):
//   Obs. 1  mechanisms lift utilization and instant-start over baseline,
//           at some turnaround cost;
//   Obs. 2  N&PAA is worst overall;
//   Obs. 3  SPAA > PAA on utilization and malleable preemption ratio;
//   Obs. 5  CUA edges CUP on average;
//   Obs. 6  malleable turnaround < rigid turnaround under CUA/CUP;
//   Obs. 11 CUP peaks on W2 (accurate notices);
//   Obs. 12 CUA's best turnaround is on W4 (late arrivals).
#include <cstdio>

#include "exp/runner.h"
#include "exp/paper_tables.h"
#include "metrics/report.h"
#include "util/env.h"

using namespace hs;

int main() {
  const BenchScale scale = ResolveBenchScale();
  std::printf("=== Table III / Fig. 6: mechanisms x notice mixes "
              "(%d weeks x %d seeds per cell) ===\n\n",
              scale.weeks, scale.seeds);

  std::printf("Table III notice mixes (no notice / accurate / early / late):\n");
  for (const auto& mix : PaperNoticeMixes()) {
    std::printf("  %s: %.0f%% / %.0f%% / %.0f%% / %.0f%%\n", mix.name.c_str(),
                100 * mix.none, 100 * mix.accurate, 100 * mix.early, 100 * mix.late);
  }
  std::printf("\n");

  ThreadPool pool;
  ExperimentRunner runner(pool);

  // Cells: (baseline + the six mechanisms) x the five notice mixes, seeds
  // flattened config-major so GroupMeans reduces per cell.
  std::vector<std::string> labels = {"FCFS/EASY"};
  for (const Mechanism& mechanism : PaperMechanisms()) {
    labels.push_back(ToString(mechanism));
  }
  std::vector<std::string> mechanism_specs = {"baseline"};
  for (const Mechanism& mechanism : PaperMechanisms()) {
    mechanism_specs.push_back(ToString(mechanism));
  }

  // means[w][c] = mean over seeds.
  std::vector<std::string> workload_names;
  std::vector<std::vector<SimResult>> means;
  for (const auto& mix : PaperNoticeMixes()) {
    std::vector<SimSpec> specs;
    for (const std::string& mechanism : mechanism_specs) {
      SimSpec base = SimSpec::Parse(mechanism + "/FCFS/" + mix.name);
      base.weeks = scale.weeks;
      for (const SimSpec& seeded : SeedSweep(base, scale.seeds, 42)) {
        specs.push_back(seeded);
      }
    }
    means.push_back(GroupMeans(runner.Run(specs),
                               static_cast<std::size_t>(scale.seeds)));
    workload_names.push_back(mix.name);
  }

  for (const MetricKind metric : Fig6Metrics()) {
    std::vector<std::vector<double>> cells(labels.size(),
                                           std::vector<double>(workload_names.size()));
    for (std::size_t c = 0; c < labels.size(); ++c) {
      for (std::size_t w = 0; w < workload_names.size(); ++w) {
        cells[c][w] = ExtractMetric(means[w][c], metric);
      }
    }
    std::printf("%s\n",
                RenderMetricGrid(MetricName(metric), labels, workload_names, cells,
                                 MetricIsPercent(metric) ? 1 : 2,
                                 MetricIsPercent(metric))
                    .c_str());
  }

  // --- shape checks against the paper's observations -----------------------
  auto avg_over_workloads = [&](std::size_t config_idx, MetricKind metric) {
    double sum = 0.0;
    for (std::size_t w = 0; w < workload_names.size(); ++w) {
      sum += ExtractMetric(means[w][config_idx], metric);
    }
    return sum / static_cast<double>(workload_names.size());
  };
  auto mech_index = [&](const char* name) -> std::size_t {
    for (std::size_t i = 0; i < labels.size(); ++i) {
      if (labels[i] == name) return i;
    }
    return 0;
  };

  const double base_instant = avg_over_workloads(0, MetricKind::kOdInstantRate);
  const double base_util = avg_over_workloads(0, MetricKind::kUtilization);
  double mech_instant = 0.0, mech_util = 0.0;
  double paa_util = 0.0, spaa_util = 0.0, paa_mall_pre = 0.0, spaa_mall_pre = 0.0;
  double cua_tat = 0.0, cup_tat = 0.0;
  for (std::size_t i = 1; i < labels.size(); ++i) {
    mech_instant += avg_over_workloads(i, MetricKind::kOdInstantRate) / 6.0;
    mech_util += avg_over_workloads(i, MetricKind::kUtilization) / 6.0;
    const bool spaa = labels[i].find("SPAA") != std::string::npos;
    (spaa ? spaa_util : paa_util) += avg_over_workloads(i, MetricKind::kUtilization) / 3.0;
    (spaa ? spaa_mall_pre : paa_mall_pre) +=
        avg_over_workloads(i, MetricKind::kMalleablePreemptRatio) / 3.0;
    if (labels[i].rfind("CUA", 0) == 0) {
      cua_tat += avg_over_workloads(i, MetricKind::kAvgTurnaroundH) / 2.0;
    }
    if (labels[i].rfind("CUP", 0) == 0) {
      cup_tat += avg_over_workloads(i, MetricKind::kAvgTurnaroundH) / 2.0;
    }
  }

  const std::size_t cua_spaa = mech_index("CUA&SPAA");
  const double mall_tat = avg_over_workloads(cua_spaa, MetricKind::kMalleableTurnaroundH);
  const double rigid_tat = avg_over_workloads(cua_spaa, MetricKind::kRigidTurnaroundH);

  std::printf("shape checks vs paper:\n");
  std::printf("  [%s] Obs.1  instant-start: baseline %.0f%% -> mechanisms %.0f%%\n",
              mech_instant > base_instant + 0.3 ? "ok" : "??",
              100 * base_instant, 100 * mech_instant);
  std::printf("  [%s] Obs.1  utilization: baseline %.1f%% -> mechanisms %.1f%%\n",
              mech_util >= base_util - 0.02 ? "ok" : "??", 100 * base_util,
              100 * mech_util);
  std::printf("  [%s] Obs.3  SPAA util %.1f%% >= PAA util %.1f%%\n",
              spaa_util >= paa_util - 0.005 ? "ok" : "??", 100 * spaa_util,
              100 * paa_util);
  std::printf("  [%s] Obs.3  SPAA malleable preemption %.1f%% < PAA %.1f%%\n",
              spaa_mall_pre < paa_mall_pre ? "ok" : "??", 100 * spaa_mall_pre,
              100 * paa_mall_pre);
  std::printf("  [%s] Obs.5  CUA turnaround %.1f h <= CUP %.1f h\n",
              cua_tat <= cup_tat + 0.5 ? "ok" : "??", cua_tat, cup_tat);
  std::printf("  [%s] Obs.6  CUA&SPAA malleable %.1f h < rigid %.1f h (incentive)\n",
              mall_tat < rigid_tat ? "ok" : "??", mall_tat, rigid_tat);
  return 0;
}
