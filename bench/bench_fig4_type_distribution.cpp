// Fig. 4: job-type distributions across the randomly generated traces.
// Project-level assignment (10% on-demand / 60% rigid / 30% malleable
// projects) yields trace-level job shares that vary widely because projects
// differ in activity — exactly the spread the paper shows.
#include <cstdio>

#include "exp/sim_spec.h"
#include "util/env.h"
#include "util/stats.h"
#include "util/table.h"
#include "workload/characterize.h"

using namespace hs;

int main() {
  const BenchScale scale = ResolveBenchScale();
  const int traces = std::max(10, scale.seeds);
  std::printf("=== Fig. 4: job-type distribution across %d generated traces ===\n\n",
              traces);

  SimSpec spec = SimSpec::Parse("baseline/FCFS/W5");
  spec.weeks = scale.weeks;
  TextTable table({"Trace", "Jobs", "Rigid", "On-demand", "Malleable",
                   "OD node-hours"});
  RunningStats od_share;
  for (int i = 0; i < traces; ++i) {
    spec.seed = 2000 + static_cast<std::uint64_t>(i);
    const Trace trace = spec.BuildTrace();
    const ClassShares shares = JobClassShares(trace);
    const ClassShares nh = NodeHourClassShares(trace);
    od_share.Add(shares.on_demand);
    table.AddRow({"T" + std::to_string(i), std::to_string(trace.jobs.size()),
                  FmtPct(shares.rigid, 1), FmtPct(shares.on_demand, 1),
                  FmtPct(shares.malleable, 1), FmtPct(nh.on_demand, 1)});
  }
  std::printf("%s\n", table.Render().c_str());
  std::printf("on-demand job share: min %.1f%% / mean %.1f%% / max %.1f%% "
              "(paper: 3%%-15%% across traces)\n",
              100 * od_share.min(), 100 * od_share.mean(), 100 * od_share.max());
  return 0;
}
