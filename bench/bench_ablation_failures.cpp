// Extension study: checkpoint frequency under *failures plus preemptions*.
//
// Fig. 7 argues that checkpointing more often than the Daly optimum pays
// off because scheduler preemptions interrupt jobs far more often than the
// failures the Daly formula assumes. In our reproduction the cost-ordered
// victim selection already avoids lost work, so that effect vanishes for
// preemptions alone (see EXPERIMENTS.md). This bench re-introduces real
// hardware failures — which strike uniformly, not right after checkpoints —
// and sweeps the interval again: with failures in play, frequent
// checkpointing recovers its value.
#include <cstdio>

#include "exp/runner.h"
#include "metrics/report.h"
#include "util/env.h"

using namespace hs;

int main() {
  const BenchScale scale = ResolveBenchScale();
  std::printf("=== Ablation: checkpoint interval under failure injection "
              "(CUA&SPAA, W5, %d weeks x %d seeds) ===\n\n",
              scale.weeks, scale.seeds);

  ThreadPool pool;
  ExperimentRunner runner(pool);

  const std::vector<double> interval_scales = {0.25, 0.5, 1.0, 2.0};
  // Node MTBF of 1 year: a 1K-node job fails about once every 8.7 hours —
  // a petascale-era failure rate (the Daly inputs keep their own MTBF).
  const std::vector<std::pair<const char*, int>> regimes = {
      {"no failures", 0},
      {"node MTBF 4y", 4 * 365},
      {"node MTBF 1y", 365},
  };

  // One flat spec vector over (regime x interval scale): every cell shares
  // the same scenario, so the runner builds each seed's trace exactly once.
  std::vector<SimSpec> specs;
  std::vector<std::string> columns;
  for (const auto& [label, mtbf_days] : regimes) {
    for (const double s : interval_scales) {
      std::string spec_text = "CUA&SPAA/FCFS/W5/ckpt_scale=" + Fmt(s, 2);
      if (mtbf_days > 0) {
        spec_text += "/failures=1/mtbf_days=" + std::to_string(mtbf_days);
      }
      SimSpec base = SimSpec::Parse(spec_text);
      base.weeks = scale.weeks;
      for (const SimSpec& seeded : SeedSweep(base, scale.seeds, 960)) {
        specs.push_back(seeded);
      }
    }
  }
  for (const double s : interval_scales) {
    columns.push_back(Fmt(s, 2) + "x Daly");
  }
  const auto means = GroupMeans(runner.Run(specs), static_cast<std::size_t>(scale.seeds));

  for (std::size_t r = 0; r < regimes.size(); ++r) {
    TextTable table({"regime: " + std::string(regimes[r].first), columns[0],
                     columns[1], columns[2], columns[3]});
    std::vector<std::string> tat = {"rigid turnaround (h)"};
    std::vector<std::string> lost = {"lost node-h (x1000)"};
    std::vector<std::string> fails = {"failures"};
    for (std::size_t s = 0; s < interval_scales.size(); ++s) {
      const SimResult& m = means[r * interval_scales.size() + s];
      tat.push_back(Fmt(m.rigid_turnaround_h, 1));
      lost.push_back(Fmt(m.lost_node_hours / 1000.0, 0));
      fails.push_back(std::to_string(m.failures / static_cast<std::size_t>(scale.seeds)));
    }
    table.AddRow(tat);
    table.AddRow(lost);
    table.AddRow(fails);
    std::printf("%s\n", table.Render().c_str());
  }
  std::printf("expected: without failures the Daly interval (or longer) wins; "
              "as the failure rate rises, the optimum shifts toward more "
              "frequent checkpoints — the regime where Fig. 7's advice "
              "applies.\n");
  return 0;
}
