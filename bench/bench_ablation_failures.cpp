// Extension study: checkpoint frequency under *failures plus preemptions*.
//
// Fig. 7 argues that checkpointing more often than the Daly optimum pays
// off because scheduler preemptions interrupt jobs far more often than the
// failures the Daly formula assumes. In our reproduction the cost-ordered
// victim selection already avoids lost work, so that effect vanishes for
// preemptions alone (see EXPERIMENTS.md). This bench re-introduces real
// hardware failures — which strike uniformly, not right after checkpoints —
// and sweeps the interval again: with failures in play, frequent
// checkpointing recovers its value.
#include <cstdio>

#include "exp/experiment.h"
#include "exp/paper_tables.h"
#include "metrics/report.h"
#include "util/env.h"

using namespace hs;

int main() {
  const BenchScale scale = ResolveBenchScale();
  std::printf("=== Ablation: checkpoint interval under failure injection "
              "(CUA&SPAA, W5, %d weeks x %d seeds) ===\n\n",
              scale.weeks, scale.seeds);

  ThreadPool pool;
  const ScenarioConfig scenario = MakePaperScenario(scale.weeks, "W5");
  const auto traces = BuildTraces(scenario, scale.seeds, 960, pool);

  const std::vector<double> interval_scales = {0.25, 0.5, 1.0, 2.0};
  // Node MTBF of 1 year: a 1K-node job fails about once every 8.7 hours —
  // a petascale-era failure rate (the Daly inputs keep their own MTBF).
  const std::vector<std::pair<const char*, SimTime>> regimes = {
      {"no failures", 0},
      {"node MTBF 4y", 4LL * 365 * kDay},
      {"node MTBF 1y", 365 * kDay},
  };

  for (const auto& [label, mtbf] : regimes) {
    std::vector<HybridConfig> configs;
    std::vector<std::string> columns;
    for (const double s : interval_scales) {
      HybridConfig config = MakePaperConfig(ParseMechanism("CUA&SPAA"));
      config.engine.checkpoint.interval_scale = s;
      config.engine.inject_failures = mtbf > 0;
      if (mtbf > 0) config.engine.failure_node_mtbf = mtbf;
      configs.push_back(config);
      columns.push_back(Fmt(s, 2) + "x Daly");
    }
    const auto grid = RunGrid(traces, configs, pool);
    TextTable table({"regime: " + std::string(label), columns[0], columns[1],
                     columns[2], columns[3]});
    std::vector<std::string> tat = {"rigid turnaround (h)"};
    std::vector<std::string> lost = {"lost node-h (x1000)"};
    std::vector<std::string> fails = {"failures"};
    for (std::size_t s = 0; s < interval_scales.size(); ++s) {
      const SimResult m = MeanResult(grid[s]);
      tat.push_back(Fmt(m.rigid_turnaround_h, 1));
      lost.push_back(Fmt(m.lost_node_hours / 1000.0, 0));
      fails.push_back(std::to_string(m.failures / grid[s].size()));
    }
    table.AddRow(tat);
    table.AddRow(lost);
    table.AddRow(fails);
    std::printf("%s\n", table.Render().c_str());
  }
  std::printf("expected: without failures the Daly interval (or longer) wins; "
              "as the failure rate rises, the optimum shifts toward more "
              "frequent checkpoints — the regime where Fig. 7's advice "
              "applies.\n");
  return 0;
}
