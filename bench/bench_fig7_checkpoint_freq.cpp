// Fig. 7: impact of the rigid jobs' checkpointing frequency. The interval
// is swept as a fraction of the Daly optimum (paper: "50% means rigid jobs
// make checkpoints twice as frequent as the optimal frequency").
//
// Expected shape (Obs. 13): more frequent checkpoints reduce rigid
// turnaround and raise utilization, because preemptions for on-demand jobs
// dominate failures.
#include <cstdio>

#include "exp/runner.h"
#include "exp/paper_tables.h"
#include "metrics/report.h"
#include "util/env.h"

using namespace hs;

int main() {
  const BenchScale scale = ResolveBenchScale();
  const std::vector<double> interval_scales = {0.25, 0.5, 1.0, 2.0};
  std::printf("=== Fig. 7: checkpoint interval sweep on W5 "
              "(%d weeks x %d seeds) ===\n\n",
              scale.weeks, scale.seeds);

  ThreadPool pool;
  ExperimentRunner runner(pool);

  std::vector<SimSpec> specs;
  std::vector<std::string> labels;
  std::vector<std::string> columns;
  for (const Mechanism& mechanism : PaperMechanisms()) {
    labels.push_back(ToString(mechanism));
    for (const double s : interval_scales) {
      SimSpec base = SimSpec::Parse(ToString(mechanism) + "/FCFS/W5/ckpt_scale=" +
                                    Fmt(s, 2));
      base.weeks = scale.weeks;
      for (const SimSpec& seeded : SeedSweep(base, scale.seeds, 77)) {
        specs.push_back(seeded);
      }
    }
  }
  for (const double s : interval_scales) {
    columns.push_back(Fmt(s, 2) + "x Daly");
  }

  // cell_means[m * |scales| + s] = mean over seeds.
  const auto cell_means =
      GroupMeans(runner.Run(specs), static_cast<std::size_t>(scale.seeds));

  const std::vector<MetricKind> metrics = {MetricKind::kRigidTurnaroundH,
                                           MetricKind::kUtilization,
                                           MetricKind::kOdInstantRate};
  for (const MetricKind metric : metrics) {
    std::vector<std::vector<double>> cells(labels.size(),
                                           std::vector<double>(interval_scales.size()));
    for (std::size_t m = 0; m < labels.size(); ++m) {
      for (std::size_t s = 0; s < interval_scales.size(); ++s) {
        cells[m][s] = ExtractMetric(cell_means[m * interval_scales.size() + s], metric);
      }
    }
    std::printf("%s\n", RenderMetricGrid(MetricName(metric), labels, columns, cells,
                                         MetricIsPercent(metric) ? 1 : 2,
                                         MetricIsPercent(metric))
                            .c_str());
  }

  // Shape discussion (Obs. 13). The paper reports that checkpointing more
  // frequently than the Daly optimum improves BOTH utilization and rigid
  // turnaround. The utilization half reproduces directly (dump overhead is
  // counted as job execution). The turnaround half inverts here: PAA picks
  // victims by lowest preemption overhead — i.e., recently-checkpointed
  // jobs — and CUP preempts right after dumps, so the mechanisms already
  // minimize lost work regardless of frequency, while the extra dump wall
  // time feeds queueing congestion at ~84% load. See EXPERIMENTS.md.
  double frequent_tat = 0.0, daly_tat = 0.0, frequent_util = 0.0, daly_util = 0.0;
  for (std::size_t m = 0; m < labels.size(); ++m) {
    frequent_tat += cell_means[m * interval_scales.size() + 0].rigid_turnaround_h / 6.0;
    daly_tat += cell_means[m * interval_scales.size() + 2].rigid_turnaround_h / 6.0;
    frequent_util += cell_means[m * interval_scales.size() + 0].utilization / 6.0;
    daly_util += cell_means[m * interval_scales.size() + 2].utilization / 6.0;
  }
  std::printf("shape checks vs paper (Obs. 13):\n");
  std::printf("  [%s] utilization rises with checkpoint frequency: 0.25x Daly "
              "%.1f%% vs 1.0x Daly %.1f%%\n",
              frequent_util > daly_util ? "ok" : "??", 100 * frequent_util,
              100 * daly_util);
  std::printf("  [deviation] rigid turnaround at 0.25x Daly = %.1f h vs 1.0x = "
              "%.1f h: cost-ordered victim selection already avoids lost work, "
              "so extra dumps only add congestion (paper saw the opposite; "
              "see EXPERIMENTS.md)\n",
              frequent_tat, daly_tat);
  return 0;
}
