// Ablation: the malleable preemption warning (§III-A adopts Amazon's
// 2-minute warning). Sweeps the window for N&PAA, the mechanism that leans
// hardest on arrival-time preemption.
#include <cstdio>

#include "exp/runner.h"
#include "metrics/report.h"
#include "util/env.h"

using namespace hs;

int main() {
  const BenchScale scale = ResolveBenchScale();
  std::printf("=== Ablation: malleable warning window (N&PAA, W5, %d weeks x %d "
              "seeds) ===\n\n",
              scale.weeks, scale.seeds);

  ThreadPool pool;
  ExperimentRunner runner(pool);

  std::vector<SimSpec> specs;
  std::vector<std::string> labels;
  for (const SimTime warning : {SimTime{0}, 2 * kMinute, 10 * kMinute}) {
    SimSpec base = SimSpec::Parse("N&PAA/FCFS/W5/warning=" + std::to_string(warning));
    base.weeks = scale.weeks;
    for (const SimSpec& seeded : SeedSweep(base, scale.seeds, 910)) {
      specs.push_back(seeded);
    }
    labels.push_back("warning=" + FormatDuration(warning));
  }
  const auto means = GroupMeans(runner.Run(specs), static_cast<std::size_t>(scale.seeds));

  std::vector<LabeledResult> rows;
  for (std::size_t i = 0; i < labels.size(); ++i) {
    rows.push_back({labels[i], means[i]});
  }
  std::printf("%s\n", RenderComparisonTable(rows).c_str());
  std::printf("expected: longer warnings delay on-demand starts (lower strict "
              "instant-start) but change little else; 2 minutes is a sweet "
              "spot.\n");
  return 0;
}
