// Ablation: the malleable preemption warning (§III-A adopts Amazon's
// 2-minute warning). Sweeps the window for N&PAA, the mechanism that leans
// hardest on arrival-time preemption.
#include <cstdio>

#include "exp/experiment.h"
#include "metrics/report.h"
#include "util/env.h"

using namespace hs;

int main() {
  const BenchScale scale = ResolveBenchScale();
  std::printf("=== Ablation: malleable warning window (N&PAA, W5, %d weeks x %d "
              "seeds) ===\n\n",
              scale.weeks, scale.seeds);

  ThreadPool pool;
  const ScenarioConfig scenario = MakePaperScenario(scale.weeks, "W5");
  const auto traces = BuildTraces(scenario, scale.seeds, 910, pool);

  std::vector<HybridConfig> configs;
  std::vector<std::string> labels;
  for (const SimTime warning : {SimTime{0}, 2 * kMinute, 10 * kMinute}) {
    HybridConfig config = MakePaperConfig(ParseMechanism("N&PAA"));
    config.engine.drain_warning = warning;
    configs.push_back(config);
    labels.push_back("warning=" + FormatDuration(warning));
  }
  const auto grid = RunGrid(traces, configs, pool);

  std::vector<LabeledResult> rows;
  for (std::size_t i = 0; i < configs.size(); ++i) {
    rows.push_back({labels[i], MeanResult(grid[i])});
  }
  std::printf("%s\n", RenderComparisonTable(rows).c_str());
  std::printf("expected: longer warnings delay on-demand starts (lower strict "
              "instant-start) but change little else; 2 minutes is a sweet "
              "spot.\n");
  return 0;
}
