// Ablation: how much on-demand load can the system absorb? Sweeps the share
// of projects that submit on-demand work (§IV-B default: 10%).
#include <cstdio>

#include "exp/experiment.h"
#include "metrics/report.h"
#include "util/env.h"

using namespace hs;

int main() {
  const BenchScale scale = ResolveBenchScale();
  std::printf("=== Ablation: on-demand project share (CUA&SPAA, W5, %d weeks x %d "
              "seeds) ===\n\n",
              scale.weeks, scale.seeds);

  ThreadPool pool;
  std::vector<LabeledResult> rows;
  for (const double share : {0.05, 0.10, 0.20, 0.30}) {
    ScenarioConfig scenario = MakePaperScenario(scale.weeks, "W5");
    scenario.types.on_demand_project_share = share;
    scenario.types.rigid_project_share = 0.70 - share;  // keep malleable at 30%
    const auto traces = BuildTraces(scenario, scale.seeds, 930, pool);
    const HybridConfig config = MakePaperConfig(ParseMechanism("CUA&SPAA"));
    const auto grid = RunGrid(traces, {config}, pool);
    rows.push_back({"od-projects=" + FmtPct(share, 0), MeanResult(grid[0])});
  }
  std::printf("%s\n", RenderComparisonTable(rows).c_str());
  std::printf("expected: instant-start stays high while batch turnaround and "
              "preemption ratios degrade as the on-demand share grows "
              "(Obs. 9: limited by simultaneous on-demand demand).\n");
  return 0;
}
