// Ablation: how much on-demand load can the system absorb? Sweeps the share
// of projects that submit on-demand work (§IV-B default: 10%).
#include <cstdio>

#include "exp/runner.h"
#include "metrics/report.h"
#include "util/env.h"

using namespace hs;

int main() {
  const BenchScale scale = ResolveBenchScale();
  std::printf("=== Ablation: on-demand project share (CUA&SPAA, W5, %d weeks x %d "
              "seeds) ===\n\n",
              scale.weeks, scale.seeds);

  ThreadPool pool;
  ExperimentRunner runner(pool);

  std::vector<SimSpec> specs;
  std::vector<std::string> labels;
  for (const double share : {0.05, 0.10, 0.20, 0.30}) {
    // Keep the malleable project share at 30%.
    SimSpec base = SimSpec::Parse("CUA&SPAA/FCFS/W5/od_share=" + Fmt(share, 2) +
                                  "/rigid_share=" + Fmt(0.70 - share, 2));
    base.weeks = scale.weeks;
    for (const SimSpec& seeded : SeedSweep(base, scale.seeds, 930)) {
      specs.push_back(seeded);
    }
    labels.push_back("od-projects=" + FmtPct(share, 0));
  }
  const auto means = GroupMeans(runner.Run(specs), static_cast<std::size_t>(scale.seeds));

  std::vector<LabeledResult> rows;
  for (std::size_t i = 0; i < labels.size(); ++i) {
    rows.push_back({labels[i], means[i]});
  }
  std::printf("%s\n", RenderComparisonTable(rows).c_str());
  std::printf("expected: instant-start stays high while batch turnaround and "
              "preemption ratios degrade as the on-demand share grows "
              "(Obs. 9: limited by simultaneous on-demand demand).\n");
  return 0;
}
