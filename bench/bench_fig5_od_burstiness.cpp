// Fig. 5: on-demand submissions per week for three sample traces, showing
// the bursty pattern (project sessions submit several jobs minutes apart).
#include <cstdio>

#include "exp/sim_spec.h"
#include "metrics/timeseries.h"
#include "util/env.h"
#include "util/table.h"
#include "workload/characterize.h"

using namespace hs;

int main() {
  const BenchScale scale = ResolveBenchScale();
  std::printf("=== Fig. 5: on-demand jobs per week (3 sample traces, %d weeks) ===\n\n",
              scale.weeks);

  SimSpec spec = SimSpec::Parse("baseline/FCFS/W5");
  spec.weeks = scale.weeks;
  for (const std::uint64_t seed : {31ULL, 32ULL, 33ULL}) {
    spec.seed = seed;
    const Trace trace = spec.BuildTrace();
    const auto weekly = WeeklyOnDemandCounts(trace);
    std::vector<double> series(weekly.begin(), weekly.end());
    std::size_t total = 0, peak = 0;
    for (const auto w : weekly) {
      total += w;
      peak = std::max(peak, w);
    }
    std::printf("trace %llu: %4zu on-demand jobs | peak week %3zu | "
                "interarrival CV %.2f (Poisson=1)\n",
                static_cast<unsigned long long>(seed), total, peak,
                OnDemandInterarrivalCv(trace));
    std::printf("  weekly: [%s]\n", Sparkline(series).c_str());
    std::printf("  counts:");
    for (const auto w : weekly) std::printf(" %zu", w);
    std::printf("\n\n");
  }
  std::printf("shape check: pronounced week-to-week bursts (CV >> 1), matching "
              "the paper's bursty submission pattern.\n");
  return 0;
}
