// ExperimentRunner at full width: the complete 7-mechanism (baseline + six)
// x ordering-policy grid from one flat vector of SimSpecs, with results
// streamed to CSV as cells complete. Doubles as the API example for
// spec-driven sweeps, as a perf smoke of the trace-sharing runner, and as
// the differential harness for the multi-process path: --shards=K scatters
// the same grid across hs_worker processes, and the merged CSV is
// byte-identical to the single-process run on every simulation-content
// column (pass --strip-wallclock and diff the two files).
//
// Flags (RejectUnknown enforced):
//   --quick             1 week x 2 seeds (the CI differential scale)
//   --weeks=N --seeds=N explicit scale (defaults: HYBRIDSCHED_WEEKS/_SEEDS)
//   --preset=NAME       scenario preset for every cell (default: paper);
//                       burst/diurnal/aimix/paper-xl sweep the generator
//                       presets (docs/SCENARIOS.md)
//   --out=PATH          write the streamed CSV here (HYBRIDSCHED_GRID_CSV)
//   --strip-wallclock   omit decision_avg_us/decision_max_us -> diffable
//   --digest            print the streaming percentile digest (p50/p90/p99
//                       per headline metric, O(1) memory) after the run
//   --shards=K          run through ShardedRunner with K hs_worker procs
//   --hosts=H1:P1,...   dispatch units to remote hs_agent daemons over TCP
//                       (work-stealing; defaults --shards to 3x host count)
//   --strategy=NAME     round-robin | cost-weighted (default)
//   --worker-bin=PATH   hs_worker override (default: next to this binary)
//   --retries=N         respawns per failed shard beyond the first attempt
//   --shard-timeout=S   kill + retry a worker silent for S seconds (0: off)
//   --best-effort       quarantine isolated poison cells instead of failing
//
// With --shards=K the run ends with a fabric summary (launches, retries,
// hang kills, wasted vs useful cell executions, quarantined cells) so
// retry overhead is visible in the BENCH artifacts.
#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "exp/paper_tables.h"
#include "exp/quantile_sink.h"
#include "exp/runner.h"
#include "exp/scenario.h"
#include "exp/sharded_runner.h"
#include "exp/transport.h"
#include "metrics/report.h"
#include "util/cli.h"
#include "util/env.h"

using namespace hs;

int main(int argc, char** argv) try {
  const CliArgs args(argc, argv);
  BenchScale scale = ResolveBenchScale();
  if (args.GetBool("quick", false)) {
    scale.weeks = 1;
    scale.seeds = 2;
  }
  scale.weeks = static_cast<int>(args.GetInt("weeks", scale.weeks));
  scale.seeds = static_cast<int>(args.GetInt("seeds", scale.seeds));
  const int shards = static_cast<int>(args.GetInt("shards", 0));
  if (shards < 0) throw std::invalid_argument("--shards must be >= 0");
  const std::string hosts = args.GetString("hosts", "");
  const std::string csv_path =
      args.GetString("out", EnvString("HYBRIDSCHED_GRID_CSV", ""));
  const bool strip_wallclock = args.GetBool("strip-wallclock", false);
  const std::string strategy_name = args.GetString("strategy", "cost-weighted");
  const std::string worker_bin = args.GetString("worker-bin", "");
  const int retries = static_cast<int>(args.GetInt("retries", 0));
  if (retries < 0) throw std::invalid_argument("--retries must be >= 0");
  const double shard_timeout = args.GetDouble("shard-timeout", 0.0);
  if (shard_timeout < 0) throw std::invalid_argument("--shard-timeout must be >= 0");
  const bool best_effort = args.GetBool("best-effort", false);
  const std::string preset =
      ScenarioRegistry().Canonical(args.GetString("preset", "paper"));
  const bool digest = args.GetBool("digest", false);
  args.RejectUnknown();

  const std::vector<std::string> policies = PolicyNames();
  std::vector<std::string> mechanisms = {"baseline"};
  for (const std::string& name : MechanismNames()) {
    if (name != "baseline") mechanisms.push_back(name);
  }

  std::printf("=== Spec grid: %zu mechanisms x %zu policies on preset '%s' "
              "(%d weeks x %d seeds per cell) ===\n\n",
              mechanisms.size(), policies.size(), preset.c_str(), scale.weeks,
              scale.seeds);

  // One flat spec vector, mechanism-major then policy, seeds innermost.
  std::vector<SimSpec> specs;
  for (const std::string& mechanism : mechanisms) {
    for (const std::string& policy : policies) {
      SimSpec base = SimSpec::Parse(mechanism + "/" + policy + "/W5");
      base.preset = preset;
      base.weeks = scale.weeks;
      for (const SimSpec& seeded : SeedSweep(base, scale.seeds, 800)) {
        specs.push_back(seeded);
      }
    }
  }

  // Stream every completed cell as a CSV row (to a file when requested,
  // else into a discarded buffer — the streaming path still runs). The
  // merging sink pins the row order to canonical spec order, so the bytes
  // do not depend on thread or worker completion order.
  std::ofstream csv_file;
  std::ostringstream csv_buffer;
  if (!csv_path.empty()) csv_file.open(csv_path);
  std::ostream& csv_out = csv_file.is_open() ? static_cast<std::ostream&>(csv_file)
                                             : csv_buffer;
  CsvResultSink sink(csv_out, {.include_wallclock = !strip_wallclock});
  // The digest sits behind the merging sink too: P^2 estimates depend on
  // insertion order, so canonical spec order makes the digest of a sharded
  // run identical to the single-process one.
  QuantileResultSink quantiles;
  std::vector<ResultSink*> fanout = {&sink};
  if (digest) fanout.push_back(&quantiles);
  TeeResultSink tee(std::move(fanout));
  MergingResultSink merged(tee, specs.size());

  const auto started = std::chrono::steady_clock::now();
  std::vector<SpecResult> rows;
  if (shards > 0 || !hosts.empty()) {
    ShardedRunnerOptions options;
    // With --hosts but no --shards, default to 3 units per agent so the
    // work-stealing queue has enough granularity to balance uneven hosts.
    options.shards = shards > 0 ? static_cast<std::size_t>(shards)
                                : 3 * ParseHostList(hosts).size();
    options.strategy = ParseShardStrategy(strategy_name);
    options.worker_cmd = worker_bin;
    options.retry.max_attempts = retries + 1;
    options.shard_timeout_s = shard_timeout;
    options.best_effort = best_effort;
    options.hosts = hosts;
    ShardedRunner runner(options);
    rows = runner.Run(specs, &merged);
    // Quarantined cells never arrive: account for them explicitly so every
    // healthy row still flushes through the order-restoring merge.
    for (const FabricCellError& cell : runner.last_report().quarantined) {
      merged.Skip(cell.spec_index);
    }
    std::printf("scattered %zu cells as %zu units via %s (%s)\n",
                specs.size(), runner.last_plan().shard_count(),
                runner.last_report().transport.c_str(),
                ShardStrategyName(options.strategy));
    std::printf("%s\n", runner.last_report().Summary().c_str());
  } else {
    ThreadPool pool;
    ExperimentRunner runner(pool);
    rows = runner.Run(specs, &merged);
  }
  merged.Finish();
  const double elapsed_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - started)
          .count();
  const auto means = GroupMeans(rows, static_cast<std::size_t>(scale.seeds));

  for (const MetricKind metric :
       {MetricKind::kAvgTurnaroundH, MetricKind::kUtilization,
        MetricKind::kOdInstantRate}) {
    std::vector<std::vector<double>> cells(
        mechanisms.size(), std::vector<double>(policies.size()));
    for (std::size_t m = 0; m < mechanisms.size(); ++m) {
      for (std::size_t p = 0; p < policies.size(); ++p) {
        cells[m][p] = ExtractMetric(means[m * policies.size() + p], metric);
      }
    }
    std::printf("%s\n", RenderMetricGrid(MetricName(metric), mechanisms, policies,
                                         cells, MetricIsPercent(metric) ? 1 : 2,
                                         MetricIsPercent(metric))
                            .c_str());
  }

  if (digest) std::printf("%s\n", quantiles.Summary().c_str());
  std::printf("ran %zu cells (%zu simulations) in %.1f s (%.2f sims/s)\n",
              means.size(), rows.size(), elapsed_s,
              static_cast<double>(rows.size()) / elapsed_s);
  if (csv_file.is_open()) {
    std::printf("streamed rows to %s\n", csv_path.c_str());
  }
  std::printf("\nshape check: instant-start stays high under every ordering "
              "policy — the mechanisms act on running jobs, orthogonally to "
              "queue order (§I).\n");
  return 0;
} catch (const std::exception& e) {
  std::fprintf(stderr, "error: %s\n", e.what());
  return 2;
}
