// ExperimentRunner at full width: the complete 7-mechanism (baseline + six)
// x ordering-policy grid from one flat vector of SimSpecs, with results
// streamed to CSV as cells complete. Doubles as the API example for
// spec-driven sweeps and as a perf smoke of the trace-sharing runner (7
// mechanisms x |policies| cells per seed reuse one trace per seed).
//
// Scale via HYBRIDSCHED_WEEKS / HYBRIDSCHED_SEEDS; set
// HYBRIDSCHED_GRID_CSV=path to keep the streamed rows.
#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "exp/paper_tables.h"
#include "exp/runner.h"
#include "metrics/report.h"
#include "util/env.h"

using namespace hs;

int main() {
  const BenchScale scale = ResolveBenchScale();
  const std::vector<std::string> policies = PolicyNames();
  std::vector<std::string> mechanisms = {"baseline"};
  for (const std::string& name : MechanismNames()) {
    if (name != "baseline") mechanisms.push_back(name);
  }

  std::printf("=== Spec grid: %zu mechanisms x %zu policies "
              "(%d weeks x %d seeds per cell) ===\n\n",
              mechanisms.size(), policies.size(), scale.weeks, scale.seeds);

  // One flat spec vector, mechanism-major then policy, seeds innermost.
  std::vector<SimSpec> specs;
  for (const std::string& mechanism : mechanisms) {
    for (const std::string& policy : policies) {
      SimSpec base = SimSpec::Parse(mechanism + "/" + policy + "/W5");
      base.weeks = scale.weeks;
      for (const SimSpec& seeded : SeedSweep(base, scale.seeds, 800)) {
        specs.push_back(seeded);
      }
    }
  }

  // Stream every completed cell as a CSV row (to a file when requested,
  // else into a discarded buffer — the streaming path still runs).
  const std::string csv_path = EnvString("HYBRIDSCHED_GRID_CSV", "");
  std::ofstream csv_file;
  std::ostringstream csv_buffer;
  if (!csv_path.empty()) csv_file.open(csv_path);
  std::ostream& csv_out = csv_file.is_open() ? static_cast<std::ostream&>(csv_file)
                                             : csv_buffer;
  CsvResultSink sink(csv_out);

  ThreadPool pool;
  ExperimentRunner runner(pool);
  const auto started = std::chrono::steady_clock::now();
  const auto rows = runner.Run(specs, &sink);
  const double elapsed_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - started)
          .count();
  const auto means = GroupMeans(rows, static_cast<std::size_t>(scale.seeds));

  for (const MetricKind metric :
       {MetricKind::kAvgTurnaroundH, MetricKind::kUtilization,
        MetricKind::kOdInstantRate}) {
    std::vector<std::vector<double>> cells(
        mechanisms.size(), std::vector<double>(policies.size()));
    for (std::size_t m = 0; m < mechanisms.size(); ++m) {
      for (std::size_t p = 0; p < policies.size(); ++p) {
        cells[m][p] = ExtractMetric(means[m * policies.size() + p], metric);
      }
    }
    std::printf("%s\n", RenderMetricGrid(MetricName(metric), mechanisms, policies,
                                         cells, MetricIsPercent(metric) ? 1 : 2,
                                         MetricIsPercent(metric))
                            .c_str());
  }

  std::printf("ran %zu cells (%zu simulations) in %.1f s (%.2f sims/s)\n",
              means.size(), rows.size(), elapsed_s,
              static_cast<double>(rows.size()) / elapsed_s);
  if (csv_file.is_open()) {
    std::printf("streamed rows to %s\n", csv_path.c_str());
  }
  std::printf("\nshape check: instant-start stays high under every ordering "
              "policy — the mechanisms act on running jobs, orthogonally to "
              "queue order (§I).\n");
  return 0;
}
