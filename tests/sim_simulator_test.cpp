#include "sim/simulator.h"

#include <gtest/gtest.h>

#include "exp/fixtures.h"

#include <vector>

namespace hs {
namespace {

/// Records every callback for inspection.
class RecordingHandler : public EventHandler {
 public:
  void HandleEvent(const Event& event, Simulator&) override { events.push_back(event); }
  void OnQuiescent(SimTime now, Simulator&) override { quiescent_times.push_back(now); }

  std::vector<Event> events;
  std::vector<SimTime> quiescent_times;
};

TEST(SimulatorTest, ProcessesEventsInOrder) {
  test::SimSandbox<RecordingHandler> sandbox;
  RecordingHandler& handler = sandbox.handler;
  Simulator& sim = sandbox.sim;
  sim.Schedule(300, EventKind::kJobSubmit, 3);
  sim.Schedule(100, EventKind::kJobSubmit, 1);
  sim.Run();
  ASSERT_EQ(handler.events.size(), 2u);
  EXPECT_EQ(handler.events[0].job, 1);
  EXPECT_EQ(handler.events[1].job, 3);
  EXPECT_EQ(sim.now(), 300);
}

TEST(SimulatorTest, QuiescentOncePerTimestampBatch) {
  test::SimSandbox<RecordingHandler> sandbox;
  RecordingHandler& handler = sandbox.handler;
  Simulator& sim = sandbox.sim;
  sim.Schedule(100, EventKind::kJobSubmit, 1);
  sim.Schedule(100, EventKind::kJobSubmit, 2);
  sim.Schedule(200, EventKind::kJobSubmit, 3);
  sim.Run();
  ASSERT_EQ(handler.quiescent_times.size(), 2u);
  EXPECT_EQ(handler.quiescent_times[0], 100);
  EXPECT_EQ(handler.quiescent_times[1], 200);
}

TEST(SimulatorTest, SchedulingInPastThrows) {
  test::SimSandbox<RecordingHandler> sandbox;
  RecordingHandler& handler = sandbox.handler;
  Simulator& sim = sandbox.sim;
  sim.Schedule(100, EventKind::kJobSubmit, 1);
  sim.Run();
  EXPECT_THROW(sim.Schedule(50, EventKind::kJobSubmit, 2), std::runtime_error);
}

TEST(SimulatorTest, RunUntilStopsEarly) {
  test::SimSandbox<RecordingHandler> sandbox;
  RecordingHandler& handler = sandbox.handler;
  Simulator& sim = sandbox.sim;
  sim.Schedule(100, EventKind::kJobSubmit, 1);
  sim.Schedule(500, EventKind::kJobSubmit, 2);
  sim.Run(300);
  EXPECT_EQ(handler.events.size(), 1u);
  EXPECT_FALSE(sim.exhausted());
}

/// A handler that schedules a follow-up event at the same timestamp from
/// within HandleEvent; the follow-up must join the same batch.
class ChainingHandler : public EventHandler {
 public:
  void HandleEvent(const Event& event, Simulator& sim) override {
    order.push_back(event.job);
    if (event.job == 1) sim.Schedule(event.time, EventKind::kJobFinish, 99);
  }
  void OnQuiescent(SimTime, Simulator&) override { ++quiescent_count; }
  std::vector<JobId> order;
  int quiescent_count = 0;
};

TEST(SimulatorTest, SameTimeFollowUpJoinsBatch) {
  test::SimSandbox<ChainingHandler> sandbox;
  ChainingHandler& handler = sandbox.handler;
  Simulator& sim = sandbox.sim;
  sim.Schedule(100, EventKind::kJobSubmit, 1);
  sim.Run();
  ASSERT_EQ(handler.order.size(), 2u);
  EXPECT_EQ(handler.order[1], 99);
  EXPECT_EQ(handler.quiescent_count, 1);
}

/// Quiescent hooks may schedule more work at the same timestamp; the
/// simulator must drain it (with another quiescent pass) before advancing.
class QuiescentChainHandler : public EventHandler {
 public:
  void HandleEvent(const Event& event, Simulator&) override { handled.push_back(event.job); }
  void OnQuiescent(SimTime now, Simulator& sim) override {
    ++quiescent_count;
    if (!rescheduled) {
      rescheduled = true;
      sim.Schedule(now, EventKind::kJobFinish, 42);
    }
  }
  std::vector<JobId> handled;
  int quiescent_count = 0;
  bool rescheduled = false;
};

TEST(SimulatorTest, QuiescentFollowUpsDrainAtSameTime) {
  test::SimSandbox<QuiescentChainHandler> sandbox;
  QuiescentChainHandler& handler = sandbox.handler;
  Simulator& sim = sandbox.sim;
  sim.Schedule(100, EventKind::kJobSubmit, 1);
  sim.Run();
  ASSERT_EQ(handler.handled.size(), 2u);
  EXPECT_EQ(handler.handled[1], 42);
  EXPECT_GE(handler.quiescent_count, 2);
  EXPECT_EQ(sim.now(), 100);
}

TEST(SimulatorTest, CancelPreventsDelivery) {
  test::SimSandbox<RecordingHandler> sandbox;
  RecordingHandler& handler = sandbox.handler;
  Simulator& sim = sandbox.sim;
  const EventId id = sim.Schedule(100, EventKind::kJobSubmit, 1);
  sim.Schedule(200, EventKind::kJobSubmit, 2);
  sim.Cancel(id);
  sim.Run();
  ASSERT_EQ(handler.events.size(), 1u);
  EXPECT_EQ(handler.events[0].job, 2);
}

TEST(SimulatorTest, EventsProcessedCounter) {
  test::SimSandbox<RecordingHandler> sandbox;
  RecordingHandler& handler = sandbox.handler;
  Simulator& sim = sandbox.sim;
  for (int i = 0; i < 10; ++i) sim.Schedule(i * 10, EventKind::kJobSubmit, i);
  sim.Run();
  EXPECT_EQ(sim.events_processed(), 10u);
}

}  // namespace
}  // namespace hs
