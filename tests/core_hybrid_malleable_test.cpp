// Malleable sizing behaviour: flexible starts, work conservation under
// shrink/expand, and the incentive story (malleability increases the chance
// of running).
#include <gtest/gtest.h>

#include "hybrid_harness.h"

namespace hs {
namespace {

using test::HybridHarness;
using test::TestConfig;
using test::TraceBuilder;

Mechanism NSpaa() { return {NoticePolicy::kNone, ArrivalPolicy::kSpaa}; }

TEST(MalleableTest, StartsAtMaxWhenMachineEmpty) {
  TraceBuilder builder(64);
  builder.AddMalleable(0, 32, 8, 1000, 0, 1000);
  HybridHarness h(std::move(builder).Build(), TestConfig(NSpaa()));
  h.Run(0);
  EXPECT_EQ(h.sched_.engine().Running(0)->alloc, 32);
}

TEST(MalleableTest, StartsShrunkOnCrowdedMachine) {
  TraceBuilder builder(64);
  builder.AddRigid(0, 52, 10000, 0, 10000);
  builder.AddMalleable(10, 32, 8, 1000, 0, 1000);
  HybridHarness h(std::move(builder).Build(), TestConfig(NSpaa()));
  h.Run(10);
  // 12 nodes free: the malleable job takes all of them (min 8 <= 12 < 32).
  EXPECT_EQ(h.sched_.engine().Running(1)->alloc, 12);
}

TEST(MalleableTest, WaitsBelowMinimum) {
  TraceBuilder builder(64);
  builder.AddRigid(0, 60, 10000, 0, 10000);
  builder.AddMalleable(10, 32, 8, 1000, 0, 1000);
  HybridHarness h(std::move(builder).Build(), TestConfig(NSpaa()));
  h.Run(10);
  EXPECT_TRUE(h.sched_.engine().IsWaiting(1));  // only 4 free < min 8
}

TEST(MalleableTest, WorkConservationAcrossSizes) {
  // The same job at different allocations must do the same node-seconds:
  // 32 nodes x 1000 s at max; at 16 nodes it takes 2000 s.
  for (const int rigid_size : {32, 48}) {
    TraceBuilder builder(64);
    builder.AddRigid(0, rigid_size, 100000, 0, 200000);
    builder.AddMalleable(10, 32, 8, 1000, 0, 1000);
    HybridHarness h(std::move(builder).Build(), TestConfig(NSpaa()));
    h.Run(200000);
    const int alloc = 64 - rigid_size;
    // Finish = start + work / alloc.
    const SimTime expected_finish = 10 + (1000LL * 32) / alloc;
    const SimResult r = h.Finalize();
    EXPECT_EQ(r.jobs_completed, 2u);
    EXPECT_NEAR(r.malleable_turnaround_h, ToHours(expected_finish - 10), 1e-6)
        << "rigid_size=" << rigid_size;
  }
}

TEST(MalleableTest, MalleabilityBeatsRigidityInTurnaround) {
  // Two identical workloads except for the class of the second job: the
  // malleable variant squeezes into the leftover nodes instead of waiting.
  const SimTime long_run = 10000;
  SimTime malleable_finish, rigid_finish;
  {
    TraceBuilder builder(64);
    builder.AddRigid(0, 40, long_run, 0, long_run);
    builder.AddMalleable(10, 32, 8, 1000, 0, 1000);
    HybridHarness h(std::move(builder).Build(), TestConfig(NSpaa()));
    h.Run();
    malleable_finish = h.sim_.now();
  }
  {
    TraceBuilder builder(64);
    builder.AddRigid(0, 40, long_run, 0, long_run);
    builder.AddRigid(10, 32, 1000, 0, 1000);
    HybridHarness h(std::move(builder).Build(), TestConfig(NSpaa()));
    h.Run();
    rigid_finish = h.sim_.now();
  }
  // Malleable finishes its work while the machine is still busy (24 nodes:
  // 32000/24 ~ 1343 s); the rigid version waits until t=10000.
  EXPECT_LT(malleable_finish, rigid_finish);
}

TEST(MalleableTest, RepeatedShrinkExpandConservesWork) {
  TraceBuilder builder(64);
  const JobId mall = builder.AddMalleable(0, 48, 8, 10000, 0, 20000);
  // Three consecutive on-demand bursts force shrink, expand, shrink, expand.
  builder.AddOnDemand(1000, 30, 500, 0, 600);
  builder.AddOnDemand(3000, 30, 500, 0, 600);
  builder.AddOnDemand(5000, 30, 500, 0, 600);
  HybridHarness h(std::move(builder).Build(), TestConfig(NSpaa()));
  h.Run();
  const SimResult r = h.Finalize();
  EXPECT_EQ(r.jobs_completed, 4u);
  EXPECT_EQ(r.jobs_killed, 0u);
  EXPECT_GE(r.shrinks, 3u);
  EXPECT_GE(r.expands, 3u);
  (void)mall;
  // Work conservation: total useful node-seconds equal the trace demand, so
  // utilization accounting must balance (no lost work for shrink/expand).
  EXPECT_DOUBLE_EQ(r.lost_node_hours, 0.0);
}

TEST(MalleableTest, DrainedJobResumesAndCompletes) {
  TraceBuilder builder(64);
  builder.AddMalleable(0, 64, 16, 5000, 100, 12000);
  builder.AddOnDemand(1000, 64, 1000, 0, 1500);
  HybridHarness h(std::move(builder).Build(), TestConfig(NSpaa()));
  h.Run();
  const SimResult r = h.Finalize();
  EXPECT_EQ(r.jobs_completed, 2u);
  // Shrinking cannot cover 64 nodes (min 16 > 0 remain), so the malleable
  // job was drained (PAA fallback), then resumed after the on-demand job.
  EXPECT_GE(r.preemptions, 1u);
  EXPECT_DOUBLE_EQ(r.malleable_preempt_ratio, 1.0);
}

TEST(MalleableTest, SetupRepaidOnResumeCountsAsOverhead) {
  TraceBuilder builder(64);
  builder.AddMalleable(0, 64, 16, 5000, 100, 12000);
  builder.AddOnDemand(1000, 64, 1000, 0, 1500);
  HybridHarness h(std::move(builder).Build(), TestConfig(NSpaa()));
  h.Run();
  const SimResult r = h.Finalize();
  // Setup paid at least twice (initial start + resume after drain).
  EXPECT_GT(r.setup_node_hours, 100.0 * 64 / kHour * 1.5);
}

}  // namespace
}  // namespace hs
