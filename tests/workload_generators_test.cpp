// Workload-generator layer: no-op guarantee for disabled configs, seeded
// determinism of every modulated preset (the round-trip the golden/shard
// harness relies on), modulator behavior (storm burstiness, diurnal shape,
// AI demand share), and the uniform validation error messages that name
// preset lists and override keys.
#include "workload/generators.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "exp/scenario.h"
#include "exp/session.h"
#include "exp/sim_spec.h"
#include "util/stats.h"

namespace hs {
namespace {

ThetaConfig TinyTheta() {
  ThetaConfig theta;
  theta.num_nodes = 512;
  theta.weeks = 1;
  theta.projects.num_projects = 20;
  theta.projects.max_job_size = 512;
  return theta;
}

bool SameJobs(const Trace& a, const Trace& b) {
  if (a.jobs.size() != b.jobs.size()) return false;
  for (std::size_t i = 0; i < a.jobs.size(); ++i) {
    const JobRecord& x = a.jobs[i];
    const JobRecord& y = b.jobs[i];
    if (x.id != y.id || x.project != y.project || x.submit_time != y.submit_time ||
        x.size != y.size || x.min_size != y.min_size ||
        x.compute_time != y.compute_time || x.setup_time != y.setup_time ||
        x.estimate != y.estimate || x.klass != y.klass || x.notice != y.notice) {
      return false;
    }
  }
  return true;
}

/// Coefficient of variation of per-hour arrival counts (burstiness index).
double HourlyCv(const Trace& trace, SimTime span) {
  std::vector<double> counts(static_cast<std::size_t>(span / kHour), 0.0);
  for (const JobRecord& job : trace.jobs) {
    const auto bucket = static_cast<std::size_t>(job.submit_time / kHour);
    if (bucket < counts.size()) counts[bucket] += 1.0;
  }
  RunningStats stats;
  for (const double c : counts) stats.Add(c);
  return stats.mean() > 0.0 ? stats.stddev() / stats.mean() : 0.0;
}

TEST(GeneratorsTest, DisabledConfigIsANoOp) {
  const ThetaConfig theta = TinyTheta();
  Trace trace = GenerateThetaTrace(theta, 7);
  const Trace before = trace;
  const GeneratorReport report = ApplyGenerators(trace, GeneratorConfig{}, theta, 7);
  EXPECT_TRUE(SameJobs(before, trace));
  EXPECT_EQ(trace.name, before.name);
  EXPECT_EQ(report.storms, 0u);
  EXPECT_EQ(report.ai_jobs, 0u);
}

TEST(GeneratorsTest, ModulatedTraceIsDeterministicInSeed) {
  for (const char* spec_text :
       {"baseline/FCFS/W5/preset=burst/nodes=512/projects=20",
        "baseline/FCFS/W5/preset=diurnal/nodes=512/projects=20",
        "baseline/FCFS/W5/preset=aimix/nodes=512/projects=20"}) {
    SimSpec spec = SimSpec::Parse(spec_text);
    spec.seed = 5;
    const Trace a = spec.BuildTrace();
    const Trace b = spec.BuildTrace();
    EXPECT_TRUE(SameJobs(a, b)) << spec_text;
    EXPECT_EQ(a.name, b.name);
    spec.seed = 6;
    const Trace c = spec.BuildTrace();
    EXPECT_FALSE(SameJobs(a, c)) << spec_text << ": seed must matter";
  }
}

// The seeded round-trip the acceptance criterion names: the same modulated
// spec, simulated twice, produces identical results (and the generator
// tags land in the trace name).
TEST(GeneratorsTest, ModulatedSimulationRoundTripsBitStable) {
  const SimSpec spec = SimSpec::Parse(
      "CUA&SPAA/FCFS/W5/preset=burst/nodes=512/projects=20/ai_frac=0.2/seed=5");
  SimulationSession first(spec);
  SimulationSession second(spec);
  EXPECT_NE(first.trace().name.find("+burst6x"), std::string::npos);
  EXPECT_NE(first.trace().name.find("+ai20"), std::string::npos);
  const SimResult a = first.Run();
  const SimResult b = second.Run();
  EXPECT_EQ(a.jobs_completed, b.jobs_completed);
  EXPECT_EQ(a.preemptions, b.preemptions);
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_DOUBLE_EQ(a.avg_turnaround_h, b.avg_turnaround_h);
  EXPECT_DOUBLE_EQ(a.utilization, b.utilization);
}

TEST(GeneratorsTest, BurstStormsRaiseBurstiness) {
  const ThetaConfig theta = TinyTheta();
  const SimTime span = kWeek;
  Trace plain = GenerateThetaTrace(theta, 11);
  Trace stormy = plain;
  GeneratorConfig config;
  config.burst.mult = 8.0;
  const GeneratorReport report = ApplyGenerators(stormy, config, theta, 11);
  EXPECT_GT(report.storms, 0u);
  // The warp only moves arrivals: same jobs, same work, same horizon.
  EXPECT_EQ(stormy.jobs.size(), plain.jobs.size());
  for (const JobRecord& job : stormy.jobs) {
    EXPECT_GE(job.submit_time, 0);
    EXPECT_LT(job.submit_time, span);
  }
  auto demand = [](const Trace& t) {
    double d = 0.0;
    for (const JobRecord& j : t.jobs) {
      d += static_cast<double>(j.size) * static_cast<double>(j.setup_time + j.compute_time);
    }
    return d;
  };
  EXPECT_DOUBLE_EQ(demand(stormy), demand(plain));
  EXPECT_GT(HourlyCv(stormy, span), HourlyCv(plain, span));
}

TEST(GeneratorsTest, DiurnalCycleShapesArrivals) {
  // A dense, perfectly uniform arrival stream makes the warp's shape sharp
  // (Theta's session clumps would drown it in a test-sized trace): after
  // the warp, arrival density must be proportional to the cycle weight.
  ThetaConfig theta = TinyTheta();
  theta.weeks = 2;
  Trace trace;
  trace.num_nodes = theta.num_nodes;
  trace.name = "uniform";
  for (int i = 0; i < 2 * 7 * 24 * 60; ++i) {
    JobRecord job;
    job.id = i;
    job.project = 0;
    job.submit_time = static_cast<SimTime>(i) * kMinute;
    job.size = job.min_size = 1;
    job.compute_time = 10 * kMinute;
    job.estimate = 15 * kMinute;
    trace.jobs.push_back(job);
  }
  GeneratorConfig config;
  config.diurnal.amplitude = 0.9;
  config.diurnal.weekend_factor = 0.3;
  ApplyGenerators(trace, config, theta, 13);

  std::size_t day = 0, night = 0, weekday = 0, weekend = 0;
  for (const JobRecord& job : trace.jobs) {
    const SimTime hour = (job.submit_time % kDay) / kHour;
    if (hour >= 10 && hour < 16) ++day;
    if (hour < 6) ++night;
    if ((job.submit_time / kDay) % 7 >= 5) {
      ++weekend;
    } else {
      ++weekday;
    }
  }
  // 6 daytime hours must out-draw 6 night hours decisively, and the two
  // damped weekend days must sit well under two average weekdays.
  EXPECT_GT(day, 2 * night);
  EXPECT_LT(static_cast<double>(weekend) / 2.0,
            0.7 * static_cast<double>(weekday) / 5.0);
}

TEST(GeneratorsTest, AiMixHitsTheConfiguredDemandShare) {
  const ThetaConfig theta = TinyTheta();
  Trace trace = GenerateThetaTrace(theta, 17);
  const std::size_t base_jobs = trace.jobs.size();
  GeneratorConfig config;
  config.ai.frac = 0.30;
  const GeneratorReport report = ApplyGenerators(trace, config, theta, 17);
  EXPECT_GT(report.ai_jobs, 0u);
  EXPECT_EQ(trace.jobs.size(), base_jobs + report.ai_jobs);
  // The last swarm may overshoot slightly; the share stays near the target.
  EXPECT_NEAR(report.ai_demand_frac, 0.30, 0.03);
  // AI tasks are many and small: far more jobs than the capability stream
  // added per unit of demand.
  EXPECT_GT(report.ai_jobs, base_jobs / 4);
  for (const JobRecord& job : trace.jobs) {
    EXPECT_LE(job.size, theta.num_nodes);
    EXPECT_GE(job.submit_time, 0);
    EXPECT_LT(job.submit_time, kWeek);
  }
}

// In the spec-driven path the AI share carves out of the configured load
// (the base is synthesized at 1 - frac of the target), so `load=` means
// total offered load for any ai_frac — overriding ai_frac must not
// overload the machine.
TEST(GeneratorsTest, AiShareCarvesOutOfTheConfiguredLoad) {
  const auto load_for = [](const char* spec_text) {
    return SimSpec::Parse(spec_text).BuildTrace().OfferedLoad();
  };
  const double base =
      load_for("baseline/FCFS/W5/preset=aimix/ai_frac=0.01/nodes=512/projects=20/seed=3");
  const double heavy =
      load_for("baseline/FCFS/W5/preset=aimix/ai_frac=0.5/nodes=512/projects=20/seed=3");
  EXPECT_NEAR(heavy, base, 0.12 * base)
      << "ai_frac=0.5 must not inflate total offered load";
}

TEST(GeneratorsTest, PresetsMaterializeTheirKnobs) {
  const ScenarioConfig burst = MakeScenario("burst", 1, "W5");
  EXPECT_DOUBLE_EQ(burst.gen.burst.mult, 6.0);
  EXPECT_EQ(burst.theta.num_nodes, 2048);
  const ScenarioConfig diurnal = MakeScenario("diurnal", 1, "W5");
  EXPECT_DOUBLE_EQ(diurnal.gen.diurnal.amplitude, 0.9);
  EXPECT_DOUBLE_EQ(diurnal.theta.diurnal_depth, 0.0);
  const ScenarioConfig aimix = MakeScenario("ai-mix", 1, "W5");  // alias
  EXPECT_DOUBLE_EQ(aimix.gen.ai.frac, 0.30);
  const ScenarioConfig xl = MakeScenario("xl", 1, "W5");  // alias
  EXPECT_EQ(xl.theta.num_nodes, 3 * 4392);
  EXPECT_EQ(xl.theta.projects.num_projects, 3 * 211);
}

TEST(GeneratorsTest, GeneratorKeysRoundTripThroughSpecStrings) {
  const SimSpec spec = SimSpec::Parse(
      "baseline/FCFS/W5/preset=burst/burst_mult=9/burst_period_h=6/"
      "burst_len_h=0.5/diurnal_amp=0.7/weekend_factor=0.8/ai_frac=0.25/"
      "ai_swarm=16/ai_size=64");
  EXPECT_EQ(SimSpec::Parse(spec.ToString()), spec);
  const ScenarioConfig scenario = spec.BuildScenario();
  EXPECT_DOUBLE_EQ(scenario.gen.burst.mult, 9.0);
  EXPECT_EQ(scenario.gen.burst.period, 6 * kHour);
  EXPECT_EQ(scenario.gen.burst.duration, 30 * kMinute);
  EXPECT_DOUBLE_EQ(scenario.gen.diurnal.amplitude, 0.7);
  EXPECT_DOUBLE_EQ(scenario.gen.diurnal.weekend_factor, 0.8);
  EXPECT_DOUBLE_EQ(scenario.gen.ai.frac, 0.25);
  EXPECT_EQ(scenario.gen.ai.swarm, 16);
  EXPECT_EQ(scenario.gen.ai.max_size, 64);
  // Generator keys shape the trace, so they must be part of the trace
  // cache key (specs differing in them may not share a trace).
  EXPECT_NE(SimSpec::Parse("baseline/FCFS/W5/preset=burst").ScenarioKey(),
            SimSpec::Parse("baseline/FCFS/W5/preset=burst/burst_mult=9").ScenarioKey());
}

// Satellite fix: validation errors name the offending override key (and,
// for preset-level problems, the registered preset names) uniformly.
TEST(GeneratorsTest, ValidationErrorsNameOverrideKeys) {
  const auto error_for = [](GeneratorConfig config) {
    return ValidateGenerators(config);
  };
  GeneratorConfig bad_mult;
  bad_mult.burst.mult = 0.5;
  EXPECT_NE(error_for(bad_mult).find("burst_mult="), std::string::npos);
  GeneratorConfig bad_amp;
  bad_amp.diurnal.amplitude = 1.5;
  EXPECT_NE(error_for(bad_amp).find("diurnal_amp="), std::string::npos);
  GeneratorConfig bad_weekend;
  bad_weekend.diurnal.weekend_factor = 0.0;
  EXPECT_NE(error_for(bad_weekend).find("weekend_factor="), std::string::npos);
  GeneratorConfig bad_frac;
  bad_frac.ai.frac = 1.0;
  EXPECT_NE(error_for(bad_frac).find("ai_frac="), std::string::npos);
  GeneratorConfig bad_swarm;
  bad_swarm.ai.frac = 0.2;
  bad_swarm.ai.swarm = 0;
  EXPECT_NE(error_for(bad_swarm).find("ai_swarm="), std::string::npos);

  // ValidateScenario surfaces the same message; BuildScenarioTrace throws it.
  ScenarioConfig scenario;
  scenario.gen.burst.mult = 0.5;
  EXPECT_NE(ValidateScenario(scenario).find("burst_mult="), std::string::npos);
  EXPECT_THROW(BuildScenarioTrace(scenario, 1), std::invalid_argument);
}

TEST(GeneratorsTest, PresetErrorsListRegisteredPresets) {
  // Unknown preset: the registry error names the token and every preset,
  // new ones included.
  try {
    MakeScenario("warpstorm", 1, "W5");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("warpstorm"), std::string::npos);
    for (const char* preset : {"paper", "midsize", "tiny", "swf", "burst",
                               "diurnal", "aimix", "paper-xl"}) {
      EXPECT_NE(what.find(preset), std::string::npos) << what;
    }
  }
  // Missing swf= override: same uniform preset list, plus the key to set.
  const ScenarioConfig swf = MakeScenario("swf", 1, "W5");
  const std::string error = ValidateScenario(swf);
  EXPECT_NE(error.find("swf=<path>"), std::string::npos) << error;
  EXPECT_NE(error.find("registered presets:"), std::string::npos) << error;
  EXPECT_NE(error.find("burst"), std::string::npos) << error;
}

}  // namespace
}  // namespace hs
