#include "util/time.h"

#include <gtest/gtest.h>

namespace hs {
namespace {

TEST(TimeTest, ConstantsAreConsistent) {
  EXPECT_EQ(kMinute, 60);
  EXPECT_EQ(kHour, 60 * kMinute);
  EXPECT_EQ(kDay, 24 * kHour);
  EXPECT_EQ(kWeek, 7 * kDay);
}

TEST(TimeTest, FormatDurationSeconds) { EXPECT_EQ(FormatDuration(42), "42s"); }

TEST(TimeTest, FormatDurationMinutes) { EXPECT_EQ(FormatDuration(125), "2m05s"); }

TEST(TimeTest, FormatDurationHours) {
  EXPECT_EQ(FormatDuration(2 * kHour + 30 * kMinute), "2h30m");
}

TEST(TimeTest, FormatDurationDays) {
  EXPECT_EQ(FormatDuration(3 * kDay + 4 * kHour), "3d04h");
}

TEST(TimeTest, FormatDurationNegative) { EXPECT_EQ(FormatDuration(-90), "-1m30s"); }

TEST(TimeTest, FormatTimestamp) {
  EXPECT_EQ(FormatTimestamp(kDay + kHour + kMinute + 1), "1+01:01:01");
  EXPECT_EQ(FormatTimestamp(0), "0+00:00:00");
}

TEST(TimeTest, ToHours) {
  EXPECT_DOUBLE_EQ(ToHours(kHour), 1.0);
  EXPECT_DOUBLE_EQ(ToHours(90 * kMinute), 1.5);
}

TEST(TimeTest, RoundUpExactMultipleUnchanged) { EXPECT_EQ(RoundUp(900, 900), 900); }

TEST(TimeTest, RoundUpToNextQuantum) {
  EXPECT_EQ(RoundUp(901, 900), 1800);
  EXPECT_EQ(RoundUp(1, 900), 900);
}

TEST(TimeTest, NeverIsLargerThanAnyTimestamp) {
  EXPECT_GT(kNever, 100LL * 365 * kDay);
}

}  // namespace
}  // namespace hs
