// Sharded-runner tests: deterministic shard planning, the shard-file and
// worker-row wire formats, merge-deterministic sinks, failure surfacing
// when workers die or drop rows, and the differential contract — the same
// grid run 1-process (twice) and K-sharded must produce byte-identical
// CSV on every simulation-content column.
#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <sys/stat.h>

#include "exp/runner.h"
#include "exp/shard_io.h"
#include "exp/shard_plan.h"
#include "exp/sharded_runner.h"
#include "util/file_util.h"
#include "util/subprocess.h"
#include "util/thread_pool.h"

namespace hs {
namespace {

// --- helpers ----------------------------------------------------------------

std::vector<SimSpec> TinyGrid() {
  std::vector<SimSpec> specs;
  for (const char* mechanism : {"baseline", "N&SPAA", "CUA&SPAA"}) {
    SimSpec base = SimSpec::Parse(std::string(mechanism) + "/FCFS/W5/preset=tiny");
    for (const SimSpec& seeded : SeedSweep(base, 2, 300)) specs.push_back(seeded);
  }
  return specs;
}

/// The byte-stable CSV of a grid: canonical spec order, wall-clock columns
/// stripped.
std::string InProcessCsv(const std::vector<SimSpec>& specs) {
  std::ostringstream out;
  CsvResultSink csv(out, {.include_wallclock = false});
  MergingResultSink merged(csv, specs.size());
  ThreadPool pool(4);
  ExperimentRunner runner(pool);
  runner.Run(specs, &merged);
  merged.Finish();
  return out.str();
}

std::string ShardedCsv(const std::vector<SimSpec>& specs, ShardedRunnerOptions options) {
  std::ostringstream out;
  CsvResultSink csv(out, {.include_wallclock = false});
  MergingResultSink merged(csv, specs.size());
  ShardedRunner runner(std::move(options));
  runner.Run(specs, &merged);
  merged.Finish();
  return out.str();
}

std::string WorkerBinary() { return SelfExeDir() + "/hs_worker"; }

/// Writes an executable shell script (for worker-failure injection).
std::string WriteScript(const std::string& dir, const std::string& name,
                        const std::string& body) {
  const std::string path = dir + "/" + name;
  WriteTextFile(path, "#!/bin/sh\n" + body);
  chmod(path.c_str(), 0755);
  return path;
}

/// Inner sink recording (index, spec string) in arrival order.
class RecordingSink final : public ResultSink {
 public:
  void OnResult(std::size_t spec_index, const SpecResult& row) override {
    indices.push_back(spec_index);
    specs.push_back(row.spec.ToString());
  }
  std::vector<std::size_t> indices;
  std::vector<std::string> specs;
};

SpecResult FakeRow(const std::string& spec_text) {
  SpecResult row;
  row.spec = SimSpec::Parse(spec_text);
  row.trace_name = "trace-" + spec_text;
  return row;
}

// --- ShardPlan --------------------------------------------------------------

TEST(ShardPlanTest, RoundRobinPartitions) {
  std::vector<SimSpec> specs(7);
  const ShardPlan plan = MakeShardPlan(specs, 3, ShardStrategy::kRoundRobin);
  ASSERT_EQ(plan.shard_count(), 3u);
  EXPECT_EQ(plan.shards[0], (std::vector<std::size_t>{0, 3, 6}));
  EXPECT_EQ(plan.shards[1], (std::vector<std::size_t>{1, 4}));
  EXPECT_EQ(plan.shards[2], (std::vector<std::size_t>{2, 5}));
}

TEST(ShardPlanTest, EveryIndexExactlyOnce) {
  std::vector<SimSpec> specs(23);
  for (std::size_t i = 0; i < specs.size(); ++i) specs[i].weeks = 1 + (i * 7) % 13;
  for (const ShardStrategy strategy :
       {ShardStrategy::kRoundRobin, ShardStrategy::kCostWeighted}) {
    const ShardPlan plan = MakeShardPlan(specs, 5, strategy);
    ASSERT_EQ(plan.spec_count, specs.size());
    std::vector<int> hits(plan.spec_count, 0);
    for (const auto& shard : plan.shards) {
      EXPECT_TRUE(std::is_sorted(shard.begin(), shard.end()));
      for (const std::size_t index : shard) ++hits[index];
    }
    for (std::size_t i = 0; i < hits.size(); ++i) {
      EXPECT_EQ(hits[i], 1) << ShardStrategyName(strategy) << " index " << i;
    }
  }
}

TEST(ShardPlanTest, CostWeightedBalancesMixedHorizons) {
  // 4 heavy cells (52 weeks) + 8 light ones (1 week) on 4 shards: LPT puts
  // one heavy cell per shard; round-robin would stack heavies on shard 0.
  std::vector<SimSpec> specs(12);
  for (std::size_t i = 0; i < 4; ++i) specs[i].weeks = 52;
  for (std::size_t i = 4; i < 12; ++i) specs[i].weeks = 1;
  const ShardPlan plan = MakeShardPlan(specs, 4, ShardStrategy::kCostWeighted);
  for (const auto& shard : plan.shards) {
    double load = 0.0;
    for (const std::size_t index : shard) load += SpecCost(specs[index]);
    EXPECT_NEAR(load, 54.0, 2.0);  // 52 + two light cells
  }
}

TEST(ShardPlanTest, DeterministicAndClamped) {
  std::vector<SimSpec> specs(3);
  const ShardPlan a = MakeShardPlan(specs, 8, ShardStrategy::kCostWeighted);
  const ShardPlan b = MakeShardPlan(specs, 8, ShardStrategy::kCostWeighted);
  EXPECT_EQ(a.shards, b.shards);
  EXPECT_EQ(a.shard_count(), 3u);  // never more shards than specs
  EXPECT_THROW(MakeShardPlan(specs, 0, ShardStrategy::kRoundRobin),
               std::invalid_argument);
  const ShardPlan empty = MakeShardPlan({}, 4, ShardStrategy::kRoundRobin);
  EXPECT_EQ(empty.shard_count(), 0u);
  EXPECT_EQ(empty.spec_count, 0u);
}

// --- shard file format ------------------------------------------------------

TEST(ShardIoTest, ShardFileRoundTrip) {
  std::vector<SimSpec> specs = TinyGrid();
  specs[1].SetOverride("swf", "/data/theta.swf");  // '/' must survive as %2F
  std::ostringstream out;
  WriteShardFile(out, {1, 4}, specs);
  EXPECT_NE(out.str().find("# hs-shard v1"), std::string::npos);
  EXPECT_NE(out.str().find("%2F"), std::string::npos);
  std::istringstream in(out.str());
  const auto cells = ReadShardFile(in);
  ASSERT_EQ(cells.size(), 2u);
  EXPECT_EQ(cells[0].index, 1u);
  EXPECT_EQ(cells[0].spec, specs[1]);
  EXPECT_EQ(cells[1].index, 4u);
  EXPECT_EQ(cells[1].spec, specs[4]);
}

TEST(ShardIoTest, ShardFileRejectsMalformedInput) {
  const auto parse = [](const std::string& text) {
    std::istringstream in(text);
    return ReadShardFile(in);
  };
  EXPECT_THROW(parse(""), std::runtime_error);                       // no header
  EXPECT_THROW(parse("bogus\n"), std::runtime_error);                // bad header
  EXPECT_THROW(parse("# hs-shard v2\n"), std::runtime_error);        // wrong version
  EXPECT_THROW(parse("# hs-shard v1\nnotab\n"), std::runtime_error); // no tab
  EXPECT_THROW(parse("# hs-shard v1\nx\tbaseline/FCFS/W5\n"), std::runtime_error);
  EXPECT_THROW(parse("# hs-shard v1\n0\tNOPE/FCFS/W5\n"), std::runtime_error);
  EXPECT_THROW(parse("# hs-shard v1\n0\tbaseline/FCFS/W5\n0\tbaseline/SJF/W5\n"),
               std::runtime_error);                                  // duplicate index
  EXPECT_EQ(parse("# hs-shard v1\n# comment\n\n").size(), 0u);       // comments ok
}

// --- worker rows ------------------------------------------------------------

TEST(ShardIoTest, WorkerRowRoundTripIsExact) {
  SpecResult row = FakeRow("CUP&SPAA/FCFS/W5/seed=7");
  row.result.avg_turnaround_h = 1.0 / 3.0;
  row.result.utilization = 0.1;  // not exactly representable
  row.result.od_avg_delay_s = 1e-300;
  row.result.lost_node_hours = 123456789.987654321;
  row.result.jobs_completed = 987654321;
  row.result.makespan = 31536000;
  std::ostringstream out;
  WriteWorkerRow(out, 42, row);
  const IndexedSpecResult parsed = ParseWorkerRow(out.str());
  EXPECT_EQ(parsed.index, 42u);
  EXPECT_EQ(parsed.row.spec, row.spec);
  EXPECT_EQ(parsed.row.trace_name, row.trace_name);
  // Bit-exact doubles: the parse -> format round trip must be stable.
  EXPECT_EQ(parsed.row.result.avg_turnaround_h, row.result.avg_turnaround_h);
  EXPECT_EQ(parsed.row.result.utilization, row.result.utilization);
  EXPECT_EQ(parsed.row.result.od_avg_delay_s, row.result.od_avg_delay_s);
  EXPECT_EQ(parsed.row.result.lost_node_hours, row.result.lost_node_hours);
  EXPECT_EQ(parsed.row.result.jobs_completed, row.result.jobs_completed);
  EXPECT_EQ(parsed.row.result.makespan, row.result.makespan);
  std::ostringstream again;
  WriteWorkerRow(again, 42, parsed.row);
  EXPECT_EQ(again.str(), out.str());
}

TEST(ShardIoTest, WorkerRowRejectsSchemaSkew) {
  SpecResult row = FakeRow("baseline/FCFS/W5");
  std::ostringstream out;
  WriteWorkerRow(out, 0, row);
  std::string line = out.str();
  EXPECT_NO_THROW(ParseWorkerRow(line));
  // An extra (unknown) result field — e.g. from a newer worker — throws.
  std::string extra = line;
  extra.replace(extra.find("\"result\":{"), 10, "\"result\":{\"new_metric\":1,");
  EXPECT_THROW(ParseWorkerRow(extra), std::runtime_error);
  // A missing result field throws too.
  std::string missing = line;
  const std::size_t at = missing.find("\"utilization\":");
  const std::size_t comma = missing.find(',', at);
  missing.erase(at, comma - at + 1);
  EXPECT_THROW(ParseWorkerRow(missing), std::runtime_error);
  // Truncation (a worker killed mid-write) throws.
  EXPECT_THROW(ParseWorkerRow(line.substr(0, line.size() / 2)), std::runtime_error);
  EXPECT_THROW(ParseWorkerRow("not json"), std::runtime_error);
}

// --- tolerant worker-row reads (crashed-worker gather) ----------------------

TEST(ShardIoTest, TolerantReadClassifiesTornFinalLine) {
  const std::string dir = MakeTempDir("hs-shard-test-");
  const std::string path = dir + "/rows.jsonl";
  std::ostringstream rows;
  WriteWorkerRow(rows, 0, FakeRow("baseline/FCFS/W5"));
  std::ostringstream torn_row;
  WriteWorkerRow(torn_row, 1, FakeRow("N&SPAA/FCFS/W5"));
  const std::string torn = torn_row.str().substr(0, torn_row.str().size() / 2);
  WriteTextFile(path, rows.str() + torn);

  const WorkerRowsRead read = ReadWorkerRowsTolerant(path);
  ASSERT_EQ(read.rows.size(), 1u);  // the complete row survives
  EXPECT_EQ(read.rows[0].index, 0u);
  EXPECT_TRUE(read.torn_final_line);
  EXPECT_EQ(read.torn_line, torn);
  // The strict reader still refuses the same file (version-skew semantics).
  EXPECT_THROW(ReadWorkerRows(path), std::runtime_error);

  // A clean file: no tear. A missing file: zero rows (died before opening).
  WriteTextFile(path, rows.str());
  EXPECT_FALSE(ReadWorkerRowsTolerant(path).torn_final_line);
  EXPECT_EQ(ReadWorkerRowsTolerant(dir + "/nope.jsonl").rows.size(), 0u);
  EXPECT_FALSE(ReadWorkerRowsTolerant(dir + "/nope.jsonl").torn_final_line);

  // Garbage on a NON-final line is schema skew, not a crash: still throws.
  WriteTextFile(path, "not json\n" + rows.str());
  EXPECT_THROW(ReadWorkerRowsTolerant(path), std::runtime_error);
  RemoveTreeBestEffort(dir);
}

TEST(ShardedRunnerTest, TornFinalLineIsClassifiedAsCrashedWorker) {
  // A wrapper that truncates its output mid-row emulates a worker killed
  // while writing: the gather must classify that as a dropped-row crash
  // naming the shard — not as a generic parse error.
  const std::string dir = MakeTempDir("hs-shard-test-");
  const std::string wrapper = WriteScript(
      dir, "tearing_worker.sh",
      "out=\"\"\n"
      "for a in \"$@\"; do case \"$a\" in --out=*) out=\"${a#--out=}\";; esac; done\n" +
          WorkerBinary() + " \"$@\" || exit $?\n" +
          "size=$(wc -c < \"$out\")\n"
          "head -c $((size - 20)) \"$out\" > \"$out.torn\" && mv \"$out.torn\" \"$out\"\n");
  ShardedRunnerOptions options;
  options.shards = 1;
  options.worker_cmd = wrapper;
  ShardedRunner runner(options);
  try {
    runner.Run(TinyGrid());
    FAIL() << "a torn final line must throw in fail-fast mode";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("shard 0"), std::string::npos) << what;
    EXPECT_NE(what.find("torn final result line"), std::string::npos) << what;
    EXPECT_NE(what.find("dropped 1 of 6"), std::string::npos) << what;
  }
  RemoveTreeBestEffort(dir);
}

// --- MergingResultSink ------------------------------------------------------

TEST(MergingSinkTest, ReordersOutOfOrderRows) {
  RecordingSink inner;
  MergingResultSink merged(inner, 3);
  merged.OnResult(2, FakeRow("CUA&SPAA/FCFS/W5"));
  EXPECT_EQ(merged.flushed(), 0u);  // 2 buffered, waiting for 0
  merged.OnResult(0, FakeRow("baseline/FCFS/W5"));
  EXPECT_EQ(merged.flushed(), 1u);  // 0 flushed, 2 still held
  merged.OnResult(1, FakeRow("N&SPAA/FCFS/W5"));
  EXPECT_EQ(merged.flushed(), 3u);
  EXPECT_EQ(inner.indices, (std::vector<std::size_t>{0, 1, 2}));
  EXPECT_EQ(inner.specs[0], "baseline/FCFS/W5");
  EXPECT_EQ(inner.specs[2], "CUA&SPAA/FCFS/W5");
  EXPECT_NO_THROW(merged.Finish());
}

TEST(MergingSinkTest, RejectsDuplicatesAndOutOfRange) {
  RecordingSink inner;
  MergingResultSink merged(inner, 2);
  merged.OnResult(0, FakeRow("baseline/FCFS/W5"));
  EXPECT_THROW(merged.OnResult(0, FakeRow("baseline/FCFS/W5")), std::runtime_error);
  EXPECT_THROW(merged.OnResult(2, FakeRow("baseline/FCFS/W5")), std::out_of_range);
}

TEST(MergingSinkTest, FinishNamesMissingRows) {
  RecordingSink inner;
  MergingResultSink merged(inner, 4);
  merged.OnResult(1, FakeRow("baseline/FCFS/W5"));
  EXPECT_EQ(merged.MissingIndices(), (std::vector<std::size_t>{0, 2, 3}));
  try {
    merged.Finish();
    FAIL() << "Finish() should throw on missing rows";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("3 of 4"), std::string::npos) << e.what();
    EXPECT_NE(std::string(e.what()).find("0, 2, 3"), std::string::npos) << e.what();
  }
}

TEST(MergingSinkTest, SkipFlushesPastQuarantinedIndices) {
  RecordingSink inner;
  MergingResultSink merged(inner, 4);
  merged.OnResult(3, FakeRow("CUA&SPAA/FCFS/W5"));
  merged.OnResult(0, FakeRow("baseline/FCFS/W5"));
  EXPECT_EQ(merged.flushed(), 1u);  // 3 held behind the missing 1 and 2
  merged.Skip(1);                   // quarantined: will never arrive
  EXPECT_EQ(merged.flushed(), 2u);  // prefix advances past the gap, waits on 2
  merged.OnResult(2, FakeRow("N&SPAA/FCFS/W5"));
  EXPECT_EQ(merged.flushed(), 4u);  // 2 and the held 3 flush
  EXPECT_EQ(inner.indices, (std::vector<std::size_t>{0, 2, 3}));
  EXPECT_EQ(merged.SkippedIndices(), (std::vector<std::size_t>{1}));
  EXPECT_TRUE(merged.MissingIndices().empty());
  EXPECT_NO_THROW(merged.Finish());  // skipped is accounted, not missing
}

TEST(MergingSinkTest, SkipRejectsArrivedOrDoubleSkippedRows) {
  RecordingSink inner;
  MergingResultSink merged(inner, 3);
  merged.OnResult(0, FakeRow("baseline/FCFS/W5"));
  EXPECT_THROW(merged.Skip(0), std::runtime_error);   // row already arrived
  merged.Skip(1);
  EXPECT_THROW(merged.Skip(1), std::runtime_error);   // double skip
  EXPECT_THROW(merged.OnResult(1, FakeRow("N&SPAA/FCFS/W5")),
               std::runtime_error);                   // row after skip
  EXPECT_THROW(merged.Skip(3), std::out_of_range);
  EXPECT_EQ(merged.MissingIndices(), (std::vector<std::size_t>{2}));
  EXPECT_THROW(merged.Finish(), std::runtime_error);  // 2 is genuinely missing
}

// --- ShardedRunner ----------------------------------------------------------

TEST(ShardedRunnerTest, DifferentialSingleVsSharded) {
  const std::vector<SimSpec> specs = TinyGrid();
  const std::string once = InProcessCsv(specs);
  const std::string twice = InProcessCsv(specs);
  EXPECT_EQ(once, twice) << "in-process grid is not deterministic";

  ShardedRunnerOptions options;
  options.shards = 3;
  options.worker_cmd = WorkerBinary();
  const std::string sharded = ShardedCsv(specs, options);
  EXPECT_EQ(once, sharded)
      << "3-shard merged CSV differs from the single-process run";
  EXPECT_NE(once.find("decisions"), std::string::npos);
  EXPECT_EQ(once.find("decision_avg_us"), std::string::npos);  // wall-clock stripped
}

TEST(ShardedRunnerTest, RoundRobinStrategyMatchesToo) {
  const std::vector<SimSpec> specs = TinyGrid();
  ShardedRunnerOptions options;
  options.shards = 2;
  options.strategy = ShardStrategy::kRoundRobin;
  options.worker_cmd = WorkerBinary();
  EXPECT_EQ(InProcessCsv(specs), ShardedCsv(specs, options));
}

TEST(ShardedRunnerTest, ReturnsRowsInSpecOrderAndStreamsInOrder) {
  const std::vector<SimSpec> specs = TinyGrid();
  ShardedRunnerOptions options;
  options.shards = 3;
  options.worker_cmd = WorkerBinary();
  ShardedRunner runner(options);
  RecordingSink sink;
  const auto rows = runner.Run(specs, &sink);
  ASSERT_EQ(rows.size(), specs.size());
  for (std::size_t i = 0; i < rows.size(); ++i) {
    EXPECT_EQ(rows[i].spec, specs[i]);
    EXPECT_GT(rows[i].result.jobs_completed, 0u);
  }
  std::vector<std::size_t> expected(specs.size());
  for (std::size_t i = 0; i < expected.size(); ++i) expected[i] = i;
  EXPECT_EQ(sink.indices, expected);  // canonical order despite 3 workers
  EXPECT_EQ(runner.last_plan().shard_count(), 3u);
}

TEST(ShardedRunnerTest, ShardReturningRowsOutOfOrderStillMerges) {
  // A wrapper worker that reverses its own JSONL output: the merged CSV
  // must not care in which order a shard streamed its rows.
  const std::string dir = MakeTempDir("hs-shard-test-");
  const std::string wrapper = WriteScript(
      dir, "reversing_worker.sh",
      "out=\"\"\n"
      "for a in \"$@\"; do case \"$a\" in --out=*) out=\"${a#--out=}\";; esac; done\n" +
          WorkerBinary() + " \"$@\" || exit $?\n" +
          "tac \"$out\" > \"$out.rev\" && mv \"$out.rev\" \"$out\"\n");
  const std::vector<SimSpec> specs = TinyGrid();
  ShardedRunnerOptions options;
  options.shards = 2;
  options.worker_cmd = wrapper;
  EXPECT_EQ(InProcessCsv(specs), ShardedCsv(specs, options));
  RemoveTreeBestEffort(dir);
}

TEST(ShardedRunnerTest, DyingWorkerIsSurfacedWithShardId) {
  const std::vector<SimSpec> specs = TinyGrid();
  ShardedRunnerOptions options;
  options.shards = 2;
  options.worker_cmd = "/bin/false";
  ShardedRunner runner(options);
  try {
    runner.Run(specs);
    FAIL() << "worker exiting non-zero must throw";
  } catch (const std::runtime_error& e) {
    // Both shards die in parallel; whichever failure surfaces first names
    // its shard id — either is correct.
    EXPECT_NE(std::string(e.what()).find("shard "), std::string::npos) << e.what();
    EXPECT_NE(std::string(e.what()).find("exit 1"), std::string::npos) << e.what();
  }
}

TEST(ShardedRunnerTest, MissingWorkerBinaryIsSurfaced) {
  ShardedRunnerOptions options;
  options.shards = 1;
  options.worker_cmd = "/nonexistent/hs_worker";
  ShardedRunner runner(options);
  try {
    runner.Run(TinyGrid());
    FAIL() << "missing worker binary must throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("127"), std::string::npos) << e.what();
  }
}

TEST(ShardedRunnerTest, DroppedRowsAreSurfacedWithIndices) {
  // A wrapper that deletes the last row of its output emulates a worker
  // that crashed after streaming most of its shard.
  const std::string dir = MakeTempDir("hs-shard-test-");
  const std::string wrapper = WriteScript(
      dir, "dropping_worker.sh",
      "out=\"\"\n"
      "for a in \"$@\"; do case \"$a\" in --out=*) out=\"${a#--out=}\";; esac; done\n" +
          WorkerBinary() + " \"$@\" || exit $?\n" +
          "sed -i '$d' \"$out\"\n");
  ShardedRunnerOptions options;
  options.shards = 1;
  options.worker_cmd = wrapper;
  options.work_dir = dir + "/work";
  ShardedRunner runner(options);
  try {
    runner.Run(TinyGrid());
    FAIL() << "dropped rows must throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("dropped 1 of 6"), std::string::npos)
        << e.what();
  }
  RemoveTreeBestEffort(dir);
}

TEST(ShardedRunnerTest, RejectsInvalidSpecsUpFront) {
  SimSpec bad;
  bad.mechanism = "NOPE&PAA";
  ShardedRunnerOptions options;
  options.worker_cmd = WorkerBinary();
  ShardedRunner runner(options);
  EXPECT_THROW(runner.Run({bad}), std::invalid_argument);
  EXPECT_TRUE(runner.Run({}).empty());  // empty grid: no workers, no rows
}

}  // namespace
}  // namespace hs
