// CSV, env-var, and logging utilities.
#include <gtest/gtest.h>

#include <cstdlib>
#include <sstream>

#include "util/csv.h"
#include "util/env.h"
#include "util/file_util.h"
#include "util/log.h"

namespace hs {
namespace {

TEST(CsvTest, PlainRow) {
  std::ostringstream out;
  CsvWriter writer(out);
  writer.WriteRow({"a", "b", "c"});
  EXPECT_EQ(out.str(), "a,b,c\n");
}

TEST(CsvTest, EscapesSeparatorsAndQuotes) {
  EXPECT_EQ(CsvWriter::Escape("plain"), "plain");
  EXPECT_EQ(CsvWriter::Escape("a,b"), "\"a,b\"");
  EXPECT_EQ(CsvWriter::Escape("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(CsvWriter::Escape("line\nbreak"), "\"line\nbreak\"");
}

TEST(CsvTest, MultipleRows) {
  std::ostringstream out;
  CsvWriter writer(out);
  writer.WriteRow({"x"});
  writer.WriteRow({"1,5", "2"});
  EXPECT_EQ(out.str(), "x\n\"1,5\",2\n");
}

TEST(EnvTest, IntDefaultsAndParses) {
  ::unsetenv("HS_TEST_ENV_INT");
  EXPECT_EQ(EnvInt("HS_TEST_ENV_INT", 7), 7);
  ::setenv("HS_TEST_ENV_INT", "42", 1);
  EXPECT_EQ(EnvInt("HS_TEST_ENV_INT", 7), 42);
  ::setenv("HS_TEST_ENV_INT", "garbage", 1);
  EXPECT_EQ(EnvInt("HS_TEST_ENV_INT", 7), 7);
  ::unsetenv("HS_TEST_ENV_INT");
}

TEST(EnvTest, StringDefaults) {
  ::unsetenv("HS_TEST_ENV_STR");
  EXPECT_EQ(EnvString("HS_TEST_ENV_STR", "d"), "d");
  ::setenv("HS_TEST_ENV_STR", "value", 1);
  EXPECT_EQ(EnvString("HS_TEST_ENV_STR", "d"), "value");
  ::unsetenv("HS_TEST_ENV_STR");
}

TEST(EnvTest, BenchScaleDefaultsToPaperHorizon) {
  ::unsetenv("HYBRIDSCHED_WEEKS");
  ::unsetenv("HYBRIDSCHED_SEEDS");
  ::unsetenv("HYBRIDSCHED_FULL");
  const BenchScale scale = ResolveBenchScale();
  EXPECT_EQ(scale.weeks, 52);
  EXPECT_EQ(scale.seeds, 5);
  EXPECT_FALSE(scale.full);
}

TEST(EnvTest, BenchScaleFullMode) {
  ::setenv("HYBRIDSCHED_FULL", "1", 1);
  const BenchScale scale = ResolveBenchScale();
  EXPECT_EQ(scale.weeks, 52);
  EXPECT_EQ(scale.seeds, 10);
  EXPECT_TRUE(scale.full);
  ::unsetenv("HYBRIDSCHED_FULL");
}

TEST(EnvTest, BenchScaleOverridesAndClamps) {
  ::setenv("HYBRIDSCHED_WEEKS", "3", 1);
  ::setenv("HYBRIDSCHED_SEEDS", "-2", 1);
  const BenchScale scale = ResolveBenchScale();
  EXPECT_EQ(scale.weeks, 3);
  EXPECT_EQ(scale.seeds, 1);  // clamped to >= 1
  ::unsetenv("HYBRIDSCHED_WEEKS");
  ::unsetenv("HYBRIDSCHED_SEEDS");
}

TEST(LogTest, ThresholdFilters) {
  const LogLevel before = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  // These must not crash and must be filtered (no observable assertion
  // beyond "does not blow up"; the sink writes to stderr).
  HS_LOG(kDebug) << "filtered";
  HS_LOG(kInfo) << "filtered " << 42;
  SetLogLevel(before);
}

TEST(LogTest, OffSilencesEverything) {
  const LogLevel before = GetLogLevel();
  SetLogLevel(LogLevel::kOff);
  HS_LOG(kError) << "still filtered";
  SetLogLevel(before);
}

TEST(FileUtilTest, TextFileRoundTripAndLines) {
  const std::string dir = MakeTempDir("hs-io-test-");
  const std::string path = dir + "/sample.txt";
  WriteTextFile(path, "alpha\nbeta\n\ngamma");
  EXPECT_EQ(ReadTextFile(path), "alpha\nbeta\n\ngamma");
  EXPECT_EQ(ReadLines(path),
            (std::vector<std::string>{"alpha", "beta", "", "gamma"}));
  // A trailing newline does not create a phantom empty line.
  WriteTextFile(path, "one\ntwo\n");
  EXPECT_EQ(ReadLines(path), (std::vector<std::string>{"one", "two"}));
  WriteTextFile(path, "");
  EXPECT_TRUE(ReadLines(path).empty());
  RemoveTreeBestEffort(dir);
}

TEST(FileUtilTest, MissingFilesThrowWithPath) {
  try {
    ReadTextFile("/nonexistent/hs/file.txt");
    FAIL() << "must throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("/nonexistent/hs/file.txt"),
              std::string::npos);
  }
  EXPECT_THROW(WriteTextFile("/nonexistent/hs/file.txt", "x"), std::runtime_error);
}

TEST(FileUtilTest, TempDirsAreFreshAndRemovable) {
  const std::string a = MakeTempDir("hs-io-test-");
  const std::string b = MakeTempDir("hs-io-test-");
  EXPECT_NE(a, b);
  EXPECT_NE(a.find("hs-io-test-"), std::string::npos);
  WriteTextFile(a + "/nested.txt", "x");
  RemoveTreeBestEffort(a);
  EXPECT_THROW(ReadTextFile(a + "/nested.txt"), std::runtime_error);
  RemoveTreeBestEffort(b);
  RemoveTreeBestEffort(b);  // idempotent, never throws
}

}  // namespace
}  // namespace hs
