// CSV, env-var, and logging utilities.
#include <gtest/gtest.h>

#include <cstdlib>
#include <sstream>

#include "util/csv.h"
#include "util/env.h"
#include "util/log.h"

namespace hs {
namespace {

TEST(CsvTest, PlainRow) {
  std::ostringstream out;
  CsvWriter writer(out);
  writer.WriteRow({"a", "b", "c"});
  EXPECT_EQ(out.str(), "a,b,c\n");
}

TEST(CsvTest, EscapesSeparatorsAndQuotes) {
  EXPECT_EQ(CsvWriter::Escape("plain"), "plain");
  EXPECT_EQ(CsvWriter::Escape("a,b"), "\"a,b\"");
  EXPECT_EQ(CsvWriter::Escape("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(CsvWriter::Escape("line\nbreak"), "\"line\nbreak\"");
}

TEST(CsvTest, MultipleRows) {
  std::ostringstream out;
  CsvWriter writer(out);
  writer.WriteRow({"x"});
  writer.WriteRow({"1,5", "2"});
  EXPECT_EQ(out.str(), "x\n\"1,5\",2\n");
}

TEST(EnvTest, IntDefaultsAndParses) {
  ::unsetenv("HS_TEST_ENV_INT");
  EXPECT_EQ(EnvInt("HS_TEST_ENV_INT", 7), 7);
  ::setenv("HS_TEST_ENV_INT", "42", 1);
  EXPECT_EQ(EnvInt("HS_TEST_ENV_INT", 7), 42);
  ::setenv("HS_TEST_ENV_INT", "garbage", 1);
  EXPECT_EQ(EnvInt("HS_TEST_ENV_INT", 7), 7);
  ::unsetenv("HS_TEST_ENV_INT");
}

TEST(EnvTest, StringDefaults) {
  ::unsetenv("HS_TEST_ENV_STR");
  EXPECT_EQ(EnvString("HS_TEST_ENV_STR", "d"), "d");
  ::setenv("HS_TEST_ENV_STR", "value", 1);
  EXPECT_EQ(EnvString("HS_TEST_ENV_STR", "d"), "value");
  ::unsetenv("HS_TEST_ENV_STR");
}

TEST(EnvTest, BenchScaleDefaultsToPaperHorizon) {
  ::unsetenv("HYBRIDSCHED_WEEKS");
  ::unsetenv("HYBRIDSCHED_SEEDS");
  ::unsetenv("HYBRIDSCHED_FULL");
  const BenchScale scale = ResolveBenchScale();
  EXPECT_EQ(scale.weeks, 52);
  EXPECT_EQ(scale.seeds, 5);
  EXPECT_FALSE(scale.full);
}

TEST(EnvTest, BenchScaleFullMode) {
  ::setenv("HYBRIDSCHED_FULL", "1", 1);
  const BenchScale scale = ResolveBenchScale();
  EXPECT_EQ(scale.weeks, 52);
  EXPECT_EQ(scale.seeds, 10);
  EXPECT_TRUE(scale.full);
  ::unsetenv("HYBRIDSCHED_FULL");
}

TEST(EnvTest, BenchScaleOverridesAndClamps) {
  ::setenv("HYBRIDSCHED_WEEKS", "3", 1);
  ::setenv("HYBRIDSCHED_SEEDS", "-2", 1);
  const BenchScale scale = ResolveBenchScale();
  EXPECT_EQ(scale.weeks, 3);
  EXPECT_EQ(scale.seeds, 1);  // clamped to >= 1
  ::unsetenv("HYBRIDSCHED_WEEKS");
  ::unsetenv("HYBRIDSCHED_SEEDS");
}

TEST(LogTest, ThresholdFilters) {
  const LogLevel before = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  // These must not crash and must be filtered (no observable assertion
  // beyond "does not blow up"; the sink writes to stderr).
  HS_LOG(kDebug) << "filtered";
  HS_LOG(kInfo) << "filtered " << 42;
  SetLogLevel(before);
}

TEST(LogTest, OffSilencesEverything) {
  const LogLevel before = GetLogLevel();
  SetLogLevel(LogLevel::kOff);
  HS_LOG(kError) << "still filtered";
  SetLogLevel(before);
}

}  // namespace
}  // namespace hs
