// Golden-trace regression test: the committed fixture
// tests/golden/spec_grid_seed.csv locks the simulation content of the
// original seven mechanisms (baseline + the paper's six) at W1S1 (weeks=1,
// seed=1) and W2S2 (weeks=2, seeds 2 and 3), wall-clock columns stripped.
// Any PR that silently changes simulation behavior — scheduler decisions,
// trace synthesis, metric accounting — fails here with a per-line diff.
//
// Intentional changes refresh the fixture with one command:
//
//   HS_UPDATE_GOLDEN=1 ./build/exp_golden_grid_test
//
// then commit the updated CSV alongside the change that moved it.
#include <gtest/gtest.h>

#include <cstdlib>
#include <sstream>

#include "exp/runner.h"
#include "util/file_util.h"
#include "util/thread_pool.h"

#ifndef HS_SOURCE_DIR
#error "exp_golden_grid_test requires HS_SOURCE_DIR (see CMakeLists.txt)"
#endif

namespace hs {
namespace {

constexpr const char* kOriginalMechanisms[] = {
    "baseline", "N&PAA", "N&SPAA", "CUA&PAA", "CUA&SPAA", "CUP&PAA", "CUP&SPAA",
};

std::string GoldenPath() {
  return std::string(HS_SOURCE_DIR) + "/tests/golden/spec_grid_seed.csv";
}

/// The fixture's grid: mechanism-major; per mechanism one W1S1 cell and a
/// two-seed W2S2 sweep, FCFS/W5 at paper scale (the Table 2 defaults).
std::vector<SimSpec> GoldenSpecs() {
  std::vector<SimSpec> specs;
  for (const char* mechanism : kOriginalMechanisms) {
    SimSpec base = SimSpec::Parse(std::string(mechanism) + "/FCFS/W5");
    base.weeks = 1;
    base.seed = 1;
    specs.push_back(base);
    base.weeks = 2;
    for (const SimSpec& seeded : SeedSweep(base, 2, 2)) specs.push_back(seeded);
  }
  return specs;
}

std::string GenerateGoldenCsv() {
  const std::vector<SimSpec> specs = GoldenSpecs();
  std::ostringstream out;
  CsvResultSink csv(out, {.include_wallclock = false});
  MergingResultSink merged(csv, specs.size());
  ThreadPool pool;
  ExperimentRunner runner(pool);
  runner.Run(specs, &merged);
  merged.Finish();
  return out.str();
}

TEST(GoldenGridTest, MatchesCommittedFixture) {
  const std::string generated = GenerateGoldenCsv();

  if (std::getenv("HS_UPDATE_GOLDEN") != nullptr) {
    WriteTextFile(GoldenPath(), generated);
    std::printf("refreshed %s (%zu bytes)\n", GoldenPath().c_str(), generated.size());
  }

  std::string golden;
  try {
    golden = ReadTextFile(GoldenPath());
  } catch (const std::exception& e) {
    FAIL() << e.what()
           << "\n(missing fixture? regenerate with HS_UPDATE_GOLDEN=1 " __FILE__ ")";
  }

  if (generated == golden) return;  // byte-identical, done

  // Pinpoint the drift: first differing line, named by spec.
  const auto got = SplitLines(generated);
  const auto want = SplitLines(golden);
  EXPECT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < std::min(got.size(), want.size()); ++i) {
    ASSERT_EQ(got[i], want[i])
        << "first drift at line " << (i + 1) << " of " << GoldenPath()
        << "\nSimulation content changed. If intentional, refresh with:\n"
           "  HS_UPDATE_GOLDEN=1 ./exp_golden_grid_test\nand commit the fixture.";
  }
  FAIL() << "generated CSV and fixture differ in length";
}

TEST(GoldenGridTest, FixtureShapeIsLocked) {
  const std::string golden = ReadTextFile(GoldenPath());
  const auto lines = SplitLines(golden);
  // Header + 7 mechanisms x (1 + 2) rows.
  ASSERT_EQ(lines.size(), 22u);
  EXPECT_EQ(lines[0].rfind("spec,trace,mechanism,", 0), 0u) << lines[0];
  // Wall-clock columns must never leak into the fixture.
  EXPECT_EQ(lines[0].find("decision_avg_us"), std::string::npos);
  EXPECT_EQ(lines[0].find("decision_max_us"), std::string::npos);
  EXPECT_NE(lines[0].find("decisions"), std::string::npos);
  for (const char* mechanism : kOriginalMechanisms) {
    EXPECT_NE(golden.find(mechanism), std::string::npos) << mechanism;
  }
}

}  // namespace
}  // namespace hs
