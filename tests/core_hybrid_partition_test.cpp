// Static-partition comparator behaviour (the dedicated-cluster status quo).
#include <gtest/gtest.h>

#include "hybrid_harness.h"

namespace hs {
namespace {

using test::HybridHarness;
using test::TestConfig;
using test::TraceBuilder;

HybridConfig PartitionConfig(int partition) {
  HybridConfig config = TestConfig(BaselineMechanism());
  config.static_od_partition = partition;
  return config;
}

TEST(StaticPartitionTest, OnDemandRunsInsidePartition) {
  TraceBuilder builder(64);
  builder.AddOnDemand(100, 16, 500, 0, 500);
  HybridHarness h(std::move(builder).Build(), PartitionConfig(16));
  h.Run(100);
  EXPECT_TRUE(h.sched_.engine().IsRunning(0));
  EXPECT_TRUE(h.sched_.engine().Running(0)->is_tenant);
  h.Run();
  const SimResult r = h.Finalize();
  EXPECT_DOUBLE_EQ(r.od_instant_rate_strict, 1.0);
  // The partition's nodes return to the partition, not the free pool.
  EXPECT_EQ(h.sched_.engine().cluster().ReservedIdleCount(kStaticPartitionHolder), 16);
}

TEST(StaticPartitionTest, BatchNeverUsesPartitionNodes) {
  TraceBuilder builder(64);
  builder.AddRigid(0, 56, 1000, 0, 1000);  // wants more than 64-16=48
  HybridHarness h(std::move(builder).Build(), PartitionConfig(16));
  h.Run(10);
  // Only 48 nodes are available to batch: the job cannot start, ever... the
  // partition never shrinks, so this job waits forever (a real drawback of
  // static partitioning; the trace here ends, leaving it queued).
  EXPECT_TRUE(h.sched_.engine().IsWaiting(0));
}

TEST(StaticPartitionTest, OnDemandQueuesFifoInsidePartition) {
  TraceBuilder builder(64);
  builder.AddOnDemand(0, 16, 1000, 0, 1000);
  builder.AddOnDemand(10, 16, 500, 0, 500);  // must wait: partition is full
  HybridHarness h(std::move(builder).Build(), PartitionConfig(16));
  h.Run(20);
  EXPECT_TRUE(h.sched_.engine().IsRunning(0));
  EXPECT_TRUE(h.sched_.engine().IsWaiting(1));
  h.Run();
  const SimResult r = h.Finalize();
  EXPECT_EQ(r.jobs_completed, 2u);
  EXPECT_DOUBLE_EQ(r.od_instant_rate_strict, 0.5);
  EXPECT_EQ(r.preemptions, 0u);  // never preempts batch work
}

TEST(StaticPartitionTest, OversizedOnDemandFallsBackToBatchQueue) {
  TraceBuilder builder(64);
  builder.AddOnDemand(0, 32, 500, 0, 500);  // larger than the partition
  HybridHarness h(std::move(builder).Build(), PartitionConfig(16));
  h.Run();
  const SimResult r = h.Finalize();
  EXPECT_EQ(r.jobs_completed, 1u);  // ran on the 48 shared nodes
}

TEST(StaticPartitionTest, PartitionSurvivesIdleValve) {
  // The progress valve must never release the partition reservation.
  TraceBuilder builder(64);
  builder.AddRigid(0, 56, 1000, 0, 1000);  // unstartable behind the partition
  HybridHarness h(std::move(builder).Build(), PartitionConfig(16));
  h.Run();
  EXPECT_EQ(h.sched_.engine().cluster().ReservedIdleCount(kStaticPartitionHolder), 16);
  EXPECT_TRUE(h.sched_.engine().IsWaiting(0));
}

TEST(StaticPartitionTest, RejectsPartitionCoveringWholeMachine) {
  TraceBuilder builder(64);
  builder.AddRigid(0, 8, 100, 0, 100);
  EXPECT_THROW(HybridHarness(std::move(builder).Build(), PartitionConfig(64)),
               std::invalid_argument);
}

}  // namespace
}  // namespace hs
