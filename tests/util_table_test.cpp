#include "util/table.h"

#include <gtest/gtest.h>

namespace hs {
namespace {

TEST(TableTest, RendersHeaderAndRows) {
  TextTable table({"a", "bb"});
  table.AddRow({"1", "2"});
  const std::string out = table.Render();
  EXPECT_NE(out.find("| a"), std::string::npos);
  EXPECT_NE(out.find("| bb"), std::string::npos);
  EXPECT_NE(out.find("| 1"), std::string::npos);
}

TEST(TableTest, ColumnsSizeToWidestCell) {
  TextTable table({"x"});
  table.AddRow({"wide-cell-content"});
  const std::string out = table.Render();
  EXPECT_NE(out.find("wide-cell-content"), std::string::npos);
  // Header row must be padded to the same width: find a line with "x" then
  // spaces up to the separator.
  EXPECT_NE(out.find("| x                 |"), std::string::npos);
}

TEST(TableTest, RowWidthMismatchThrows) {
  TextTable table({"a", "b"});
  EXPECT_THROW(table.AddRow({"only-one"}), std::invalid_argument);
}

TEST(TableTest, EmptyHeaderThrows) {
  EXPECT_THROW(TextTable({}), std::invalid_argument);
}

TEST(TableTest, RuleInsertsSeparator) {
  TextTable table({"a"});
  table.AddRow({"1"});
  table.AddRule();
  table.AddRow({"2"});
  const std::string out = table.Render();
  // 5 rules total: top, under header, mid, bottom... count '+' lines.
  int rules = 0;
  for (std::size_t pos = 0; (pos = out.find("+-", pos)) != std::string::npos; ++pos) ++rules;
  EXPECT_EQ(rules, 4);
}

TEST(FmtTest, Decimals) {
  EXPECT_EQ(Fmt(3.14159, 2), "3.14");
  EXPECT_EQ(Fmt(2.0, 0), "2");
}

TEST(FmtPctTest, Percentage) {
  EXPECT_EQ(FmtPct(0.8393), "83.93%");
  EXPECT_EQ(FmtPct(1.0, 0), "100%");
}

}  // namespace
}  // namespace hs
