#include <gtest/gtest.h>

#include "exp/fixtures.h"
#include "metrics/collector.h"
#include "metrics/report.h"
#include "metrics/timeseries.h"
#include "metrics/utilization.h"

namespace hs {
namespace {

JobRecord MakeJob(JobId id, JobClass klass, int size, SimTime compute) {
  JobRecord rec;
  rec.id = id;
  rec.klass = klass;
  rec.size = size;
  rec.min_size = klass == JobClass::kMalleable ? std::max(1, size / 5) : size;
  rec.compute_time = compute;
  rec.estimate = compute;
  return rec;
}

TEST(CollectorTest, TurnaroundPerClass) {
  test::CollectorSandbox sandbox;
  Collector& c = sandbox.collector;
  const auto rigid = MakeJob(0, JobClass::kRigid, 10, 100);
  const auto od = MakeJob(1, JobClass::kOnDemand, 10, 100);
  c.OnSubmit(rigid, 0);
  c.OnStart(rigid, 50, 10, false);
  c.OnFinish(rigid, 3600);
  c.OnSubmit(od, 0);
  c.OnStart(od, 0, 10, false);
  c.OnFinish(od, 7200);
  const SimResult r = c.Finalize(100, 0.0);
  EXPECT_DOUBLE_EQ(r.rigid_turnaround_h, 1.0);
  EXPECT_DOUBLE_EQ(r.od_turnaround_h, 2.0);
  EXPECT_DOUBLE_EQ(r.avg_turnaround_h, 1.5);
  EXPECT_EQ(r.jobs_completed, 2u);
}

TEST(CollectorTest, InstantStartThresholds) {
  test::CollectorSandbox sandbox(300);
  Collector& c = sandbox.collector;
  for (int i = 0; i < 4; ++i) {
    const auto od = MakeJob(i, JobClass::kOnDemand, 10, 100);
    c.OnSubmit(od, 0);
    // Delays: 0, 120, 299, 301.
    const SimTime delay = (i == 0) ? 0 : (i == 1) ? 120 : (i == 2) ? 299 : 301;
    c.OnStart(od, delay, 10, false);
    c.OnFinish(od, 1000 + delay);
  }
  const SimResult r = c.Finalize(100, 0.0);
  EXPECT_DOUBLE_EQ(r.od_instant_rate, 0.75);         // <= 300 s
  EXPECT_DOUBLE_EQ(r.od_instant_rate_strict, 0.25);  // == 0 s
  EXPECT_NEAR(r.od_avg_delay_s, (0 + 120 + 299 + 301) / 4.0, 1e-9);
}

TEST(CollectorTest, PreemptionRatiosCountDistinctJobs) {
  test::CollectorSandbox sandbox;
  Collector& c = sandbox.collector;
  const auto r1 = MakeJob(0, JobClass::kRigid, 10, 100);
  const auto r2 = MakeJob(1, JobClass::kRigid, 10, 100);
  c.OnSubmit(r1, 0);
  c.OnSubmit(r2, 0);
  // r1 preempted twice (still one preempted job).
  c.OnPreempt(r1, 10, 500.0, PreemptKind::kArrivalKill);
  c.OnPreempt(r1, 20, 500.0, PreemptKind::kArrivalKill);
  c.OnFinish(r1, 100);
  c.OnFinish(r2, 100);
  const SimResult result = c.Finalize(100, 0.0);
  EXPECT_DOUBLE_EQ(result.rigid_preempt_ratio, 0.5);
  EXPECT_EQ(result.preemptions, 2u);
  EXPECT_DOUBLE_EQ(result.lost_node_hours, 1000.0 / kHour);
}

TEST(CollectorTest, UtilizationExcludesOverheads) {
  test::CollectorSandbox sandbox;
  Collector& c = sandbox.collector;
  const auto job = MakeJob(0, JobClass::kRigid, 10, 1000);
  c.OnSubmit(job, 0);
  c.OnStart(job, 0, 10, false);
  c.OnSetupPaid(job, 1000.0);  // 100 s of setup on 10 nodes
  c.OnCheckpointOverhead(job, 600.0);
  c.OnFinish(job, 2000);
  const SimResult r = c.Finalize(10, 20000.0);
  // Strictly useful work: 1000 s x 10 nodes over 10 nodes x 2000 s = 0.5.
  // The paper-definition utilization only subtracts preemption waste (none
  // here), so it equals the allocated utilization.
  EXPECT_DOUBLE_EQ(r.useful_utilization, 0.5);
  EXPECT_DOUBLE_EQ(r.utilization, 1.0);
  EXPECT_DOUBLE_EQ(r.allocated_utilization, 1.0);
}

TEST(CollectorTest, KilledJobsNotCountedCompleted) {
  test::CollectorSandbox sandbox;
  Collector& c = sandbox.collector;
  const auto job = MakeJob(0, JobClass::kRigid, 10, 1000);
  c.OnSubmit(job, 0);
  c.OnStart(job, 0, 10, false);
  c.OnKill(job, 500, 5000.0);
  const SimResult r = c.Finalize(10, 0.0);
  EXPECT_EQ(r.jobs_completed, 0u);
  EXPECT_EQ(r.jobs_killed, 1u);
  EXPECT_DOUBLE_EQ(r.lost_node_hours, 5000.0 / kHour);
}

TEST(CollectorTest, ResubmissionKeepsFirstTimes) {
  test::CollectorSandbox sandbox;
  Collector& c = sandbox.collector;
  const auto job = MakeJob(0, JobClass::kRigid, 10, 1000);
  c.OnSubmit(job, 100);
  c.OnStart(job, 200, 10, false);
  c.OnPreempt(job, 500, 0.0, PreemptKind::kArrivalKill);
  c.OnStart(job, 900, 10, true);  // restart
  c.OnFinish(job, 3700);
  const SimResult r = c.Finalize(10, 0.0);
  EXPECT_DOUBLE_EQ(r.avg_turnaround_h, 1.0);          // 3700 - 100
  EXPECT_DOUBLE_EQ(r.avg_wait_h, 100.0 / kHour);      // first start - submit
}

TEST(UtilizationTrackerTest, WindowedMeans) {
  UtilizationTracker t(10);
  t.Record(0, 5);
  t.Record(100, 10);
  t.Record(200, 0);
  EXPECT_DOUBLE_EQ(t.MeanBusyFraction(0, 100), 0.5);
  EXPECT_DOUBLE_EQ(t.MeanBusyFraction(100, 200), 1.0);
  EXPECT_DOUBLE_EQ(t.MeanBusyFraction(0, 200), 0.75);
  EXPECT_DOUBLE_EQ(t.MeanBusyFraction(150, 250), 0.5);
}

TEST(UtilizationTrackerTest, RejectsTimeTravel) {
  UtilizationTracker t(10);
  t.Record(100, 5);
  EXPECT_THROW(t.Record(50, 5), std::runtime_error);
}

TEST(TimeSeriesTest, BucketSums) {
  TimeSeries s;
  s.Add(10, 1.0);
  s.Add(20, 2.0);
  s.Add(110, 5.0);
  const auto sums = s.BucketSums(100, 300);
  ASSERT_EQ(sums.size(), 3u);
  EXPECT_DOUBLE_EQ(sums[0], 3.0);
  EXPECT_DOUBLE_EQ(sums[1], 5.0);
  EXPECT_DOUBLE_EQ(sums[2], 0.0);
}

TEST(TimeSeriesTest, BucketMeans) {
  TimeSeries s;
  s.Add(10, 1.0);
  s.Add(20, 3.0);
  const auto means = s.BucketMeans(100, 200);
  EXPECT_DOUBLE_EQ(means[0], 2.0);
  EXPECT_DOUBLE_EQ(means[1], 0.0);
}

TEST(SparklineTest, RendersOneCharPerValue) {
  EXPECT_EQ(Sparkline({0.0, 0.5, 1.0}).size(), 3u);
  EXPECT_EQ(Sparkline({}), "");
}

TEST(ReportTest, BaselineTableContainsPaperColumns) {
  SimResult r;
  r.avg_turnaround_h = 15.6;
  r.utilization = 0.8393;
  r.od_instant_rate = 0.2269;
  const std::string table = RenderBaselineTable(r);
  EXPECT_NE(table.find("15.6 hours"), std::string::npos);
  EXPECT_NE(table.find("83.93%"), std::string::npos);
  EXPECT_NE(table.find("22.69%"), std::string::npos);
}

TEST(ReportTest, MetricGridShapeValidation) {
  EXPECT_THROW(RenderMetricGrid("m", {"a", "b"}, {"w"}, {{1.0}}), std::invalid_argument);
  const std::string grid = RenderMetricGrid("util", {"N&PAA"}, {"W1", "W2"},
                                            {{0.9, 0.91}}, 1, true);
  EXPECT_NE(grid.find("90.0%"), std::string::npos);
}

}  // namespace
}  // namespace hs
