// Baseline (FCFS/EASY) end-to-end behaviour on hand-crafted traces.
#include <gtest/gtest.h>

#include "hybrid_harness.h"

namespace hs {
namespace {

using test::HybridHarness;
using test::TestConfig;
using test::TraceBuilder;

TEST(HybridBaselineTest, SingleJobRunsImmediately) {
  TraceBuilder builder(64);
  builder.AddRigid(0, 32, 1000, 100, 2000);
  HybridHarness h(std::move(builder).Build(), TestConfig(BaselineMechanism()));
  h.Run();
  const SimResult r = h.Finalize();
  EXPECT_EQ(r.jobs_completed, 1u);
  EXPECT_EQ(r.jobs_killed, 0u);
  EXPECT_EQ(h.sim_.now(), 1100);
  EXPECT_EQ(h.sched_.engine().cluster().free_count(), 64);
}

TEST(HybridBaselineTest, FcfsOrderRespected) {
  TraceBuilder builder(64);
  builder.AddRigid(0, 64, 1000, 0, 1000);
  builder.AddRigid(10, 64, 1000, 0, 1000);
  builder.AddRigid(20, 64, 1000, 0, 1000);
  HybridHarness h(std::move(builder).Build(), TestConfig(BaselineMechanism()));
  h.Run();
  EXPECT_EQ(h.sim_.now(), 3000);  // strictly serialized
  EXPECT_EQ(h.Finalize().jobs_completed, 3u);
}

TEST(HybridBaselineTest, EasyBackfillImprovesPacking) {
  TraceBuilder builder(64);
  builder.AddRigid(0, 40, 1000, 0, 1000);   // runs first
  builder.AddRigid(0, 40, 1000, 0, 1000);   // blocked until t=1000
  builder.AddRigid(0, 20, 900, 0, 900);     // backfills alongside job 0
  HybridHarness h(std::move(builder).Build(), TestConfig(BaselineMechanism()));
  h.Run();
  EXPECT_EQ(h.sim_.now(), 2000);
  const SimResult r = h.Finalize();
  EXPECT_EQ(r.jobs_completed, 3u);
  // Job 2 must have run inside job 1's shadow, i.e. it finished at 900.
  EXPECT_LT(r.avg_turnaround_h, 2.0);
}

TEST(HybridBaselineTest, OnDemandGetsNoSpecialTreatment) {
  TraceBuilder builder(64);
  builder.AddRigid(0, 64, 1000, 0, 1000);
  builder.AddOnDemand(10, 32, 500, 0, 500);  // must wait behind the rigid job
  HybridHarness h(std::move(builder).Build(), TestConfig(BaselineMechanism()));
  h.Run();
  const SimResult r = h.Finalize();
  EXPECT_EQ(r.jobs_completed, 2u);
  EXPECT_EQ(r.od_jobs, 1u);
  EXPECT_DOUBLE_EQ(r.od_instant_rate, 0.0);  // started at t=1000, not instantly
  EXPECT_EQ(r.preemptions, 0u);
}

TEST(HybridBaselineTest, MalleableRunsAtMaxSizeRigidly) {
  TraceBuilder builder(64);
  builder.AddMalleable(0, 32, 8, 1000, 0, 1000);
  HybridHarness h(std::move(builder).Build(), TestConfig(BaselineMechanism()));
  h.Run();
  // Baseline treats it as a 32-node rigid request: compute 1000 s.
  EXPECT_EQ(h.sim_.now(), 1000);
  EXPECT_EQ(h.Finalize().shrinks, 0u);
}

TEST(HybridBaselineTest, UtilizationAccounting) {
  TraceBuilder builder(10);
  builder.AddRigid(0, 10, 1000, 0, 1000);  // whole machine for the whole run
  HybridHarness h(std::move(builder).Build(), TestConfig(BaselineMechanism()));
  h.Run();
  const SimResult r = h.Finalize();
  EXPECT_NEAR(r.utilization, 1.0, 1e-9);
  EXPECT_NEAR(r.allocated_utilization, 1.0, 1e-9);
}

TEST(HybridBaselineTest, SetupCountsAsOverheadNotUsefulWork) {
  TraceBuilder builder(10);
  builder.AddRigid(0, 10, 900, 100, 1000);  // 10% setup
  HybridHarness h(std::move(builder).Build(), TestConfig(BaselineMechanism()));
  h.Run();
  const SimResult r = h.Finalize();
  // Paper-definition utilization counts setup (no preemption waste here);
  // the strict useful_utilization excludes it.
  EXPECT_NEAR(r.utilization, 1.0, 1e-9);
  EXPECT_NEAR(r.useful_utilization, 0.9, 1e-9);
  EXPECT_NEAR(r.allocated_utilization, 1.0, 1e-9);
  EXPECT_NEAR(r.setup_node_hours, 100.0 * 10 / kHour, 1e-9);
}

TEST(HybridBaselineTest, TurnaroundIncludesWait) {
  TraceBuilder builder(8);
  builder.AddRigid(0, 8, 1000, 0, 1000);
  builder.AddRigid(0, 8, 1000, 0, 1000);  // waits 1000 s, turnaround 2000
  HybridHarness h(std::move(builder).Build(), TestConfig(BaselineMechanism()));
  h.Run();
  const SimResult r = h.Finalize();
  EXPECT_NEAR(r.avg_turnaround_h, (1000.0 + 2000.0) / 2 / kHour, 1e-9);
  EXPECT_NEAR(r.avg_wait_h, 500.0 / kHour, 1e-9);
}

TEST(HybridBaselineTest, NoEventsLeftBehind) {
  TraceBuilder builder(16);
  for (int i = 0; i < 20; ++i) {
    builder.AddRigid(i * 100, 4 + (i % 3) * 4, 500 + i * 10, 10, 2000);
  }
  HybridHarness h(std::move(builder).Build(), TestConfig(BaselineMechanism()));
  h.Run();
  EXPECT_TRUE(h.sim_.exhausted());
  EXPECT_EQ(h.Finalize().jobs_completed, 20u);
  EXPECT_EQ(h.sched_.engine().cluster().busy_count(), 0);
  EXPECT_EQ(h.sched_.engine().cluster().CheckInvariants(), "");
}

}  // namespace
}  // namespace hs
