#include "platform/cluster.h"

#include <gtest/gtest.h>

namespace hs {
namespace {

TEST(ClusterTest, InitialStateAllFree) {
  Cluster c(16);
  EXPECT_EQ(c.num_nodes(), 16);
  EXPECT_EQ(c.free_count(), 16);
  EXPECT_EQ(c.busy_count(), 0);
  EXPECT_EQ(c.reserved_idle_count(), 0);
  EXPECT_EQ(c.CheckInvariants(), "");
}

TEST(ClusterTest, StartAndFinishRoundTrip) {
  Cluster c(16);
  const auto nodes = c.StartFromFree(1, 10);
  EXPECT_EQ(nodes.size(), 10u);
  EXPECT_EQ(c.free_count(), 6);
  EXPECT_EQ(c.busy_count(), 10);
  EXPECT_TRUE(c.IsRunning(1));
  EXPECT_EQ(c.CheckInvariants(), "");
  const auto released = c.Finish(1);
  EXPECT_EQ(released.size(), 10u);
  EXPECT_EQ(c.free_count(), 16);
  EXPECT_FALSE(c.IsRunning(1));
  EXPECT_EQ(c.CheckInvariants(), "");
}

TEST(ClusterTest, StartBeyondFreeThrows) {
  Cluster c(8);
  EXPECT_THROW(c.StartFromFree(1, 9), std::runtime_error);
}

TEST(ClusterTest, DoubleStartThrows) {
  Cluster c(8);
  c.StartFromFree(1, 2);
  EXPECT_THROW(c.StartFromFree(1, 2), std::runtime_error);
}

TEST(ClusterTest, FinishUnknownThrows) {
  Cluster c(8);
  EXPECT_THROW(c.Finish(42), std::runtime_error);
}

TEST(ClusterTest, ShrinkReleasesNodes) {
  Cluster c(16);
  c.StartFromFree(1, 10);
  const auto released = c.ReleaseSome(1, 4);
  EXPECT_EQ(released.size(), 4u);
  EXPECT_EQ(c.AllocCount(1), 6);
  EXPECT_EQ(c.free_count(), 10);
  EXPECT_EQ(c.CheckInvariants(), "");
}

TEST(ClusterTest, ExpandFromFree) {
  Cluster c(16);
  c.StartFromFree(1, 4);
  c.ExpandFromFree(1, 6);
  EXPECT_EQ(c.AllocCount(1), 10);
  EXPECT_EQ(c.free_count(), 6);
  EXPECT_EQ(c.CheckInvariants(), "");
}

TEST(ClusterTest, ReservationLifecycle) {
  Cluster c(16);
  const int got = c.ReserveFromFree(7, 5);
  EXPECT_EQ(got, 5);
  EXPECT_EQ(c.reserved_idle_count(), 5);
  EXPECT_EQ(c.free_count(), 11);
  EXPECT_EQ(c.ReservedCount(7), 5);
  EXPECT_EQ(c.ReservedIdleCount(7), 5);
  const auto freed = c.Unreserve(7);
  EXPECT_EQ(freed.size(), 5u);
  EXPECT_EQ(c.free_count(), 16);
  EXPECT_EQ(c.CheckInvariants(), "");
}

TEST(ClusterTest, ReserveMoreThanFreeClamps) {
  Cluster c(8);
  c.StartFromFree(1, 6);
  EXPECT_EQ(c.ReserveFromFree(7, 5), 2);
  EXPECT_EQ(c.ReservedCount(7), 2);
}

TEST(ClusterTest, FinishReturnsReservedNodesToReservation) {
  Cluster c(16);
  c.ReserveFromFree(7, 4);
  // Tenant starts on the reserved nodes.
  const auto idle = c.ReservedIdleNodes(7);
  c.StartOn(2, idle);
  EXPECT_EQ(c.ReservedIdleCount(7), 0);
  EXPECT_EQ(c.ReservedCount(7), 4);
  EXPECT_EQ(c.busy_count(), 4);
  const auto tenants = c.TenantsOf(7);
  ASSERT_EQ(tenants.size(), 1u);
  EXPECT_EQ(tenants[0], 2);
  // Tenant finishes: nodes snap back to reserved-idle, not free.
  const auto released = c.Finish(2);
  EXPECT_EQ(released.size(), 4u);
  EXPECT_EQ(c.ReservedIdleCount(7), 4);
  EXPECT_EQ(c.free_count(), 12);
  EXPECT_EQ(c.CheckInvariants(), "");
}

TEST(ClusterTest, UnreserveWithTenantKeepsTenantRunning) {
  Cluster c(16);
  c.ReserveFromFree(7, 4);
  c.StartOn(2, c.ReservedIdleNodes(7));
  const auto freed = c.Unreserve(7);
  EXPECT_TRUE(freed.empty());  // all 4 were tenant-occupied
  EXPECT_TRUE(c.IsRunning(2));
  EXPECT_EQ(c.ReservedCount(7), 0);
  // Tenant finish now frees normally.
  c.Finish(2);
  EXPECT_EQ(c.free_count(), 16);
  EXPECT_EQ(c.CheckInvariants(), "");
}

TEST(ClusterTest, StartOnReservationConsumesIdleAndFree) {
  Cluster c(16);
  c.ReserveFromFree(7, 4);
  const auto nodes = c.StartOnReservation(7, 3);
  EXPECT_EQ(nodes.size(), 7u);
  EXPECT_EQ(c.busy_count(), 7);
  EXPECT_EQ(c.ReservedCount(7), 0);  // reservation fully consumed
  EXPECT_EQ(c.reserved_idle_count(), 0);
  EXPECT_EQ(c.free_count(), 9);
  EXPECT_EQ(c.CheckInvariants(), "");
}

TEST(ClusterTest, ReserveSpecificRequiresFreeNodes) {
  Cluster c(8);
  const auto nodes = c.StartFromFree(1, 2);
  EXPECT_THROW(c.ReserveSpecific(7, nodes), std::runtime_error);
}

TEST(ClusterTest, ShrinkPrefersUnreservedNodes) {
  Cluster c(16);
  c.ReserveFromFree(7, 4);
  // Tenant spans reserved + free nodes.
  auto idle = c.ReservedIdleNodes(7);
  c.StartOn(2, idle);
  c.ExpandFromFree(2, 4);
  EXPECT_EQ(c.AllocCount(2), 8);
  // Shrinking by 4 must give back the plain nodes first.
  const auto released = c.ReleaseSome(2, 4);
  for (const int node : released) {
    EXPECT_EQ(c.reserved_for(node), kNoJob);
  }
  EXPECT_EQ(c.ReservedCount(7), 4);
  EXPECT_EQ(c.CheckInvariants(), "");
}

TEST(ClusterTest, TimeIntegralsAccumulate) {
  Cluster c(10);
  c.Touch(0);
  c.StartFromFree(1, 4);
  c.Touch(100);  // 4 busy for 100 s
  EXPECT_DOUBLE_EQ(c.busy_node_seconds(), 400.0);
  c.ReserveFromFree(7, 2);
  c.Touch(200);  // +4 busy, +2 reserved-idle for 100 s
  EXPECT_DOUBLE_EQ(c.busy_node_seconds(), 800.0);
  EXPECT_DOUBLE_EQ(c.reserved_idle_node_seconds(), 200.0);
}

TEST(ClusterTest, InvalidConstructionThrows) {
  EXPECT_THROW(Cluster(0), std::invalid_argument);
  EXPECT_THROW(Cluster(-5), std::invalid_argument);
}

}  // namespace
}  // namespace hs
