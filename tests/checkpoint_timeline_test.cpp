#include "checkpoint/checkpoint_model.h"

#include <gtest/gtest.h>

namespace hs {
namespace {

TEST(CheckpointModelTest, OverheadBySize) {
  CheckpointModel model;
  EXPECT_EQ(model.OverheadFor(128), 600);
  EXPECT_EQ(model.OverheadFor(1023), 600);
  EXPECT_EQ(model.OverheadFor(1024), 1200);  // paper: >= 1K nodes
  EXPECT_EQ(model.OverheadFor(4392), 1200);
}

TEST(CheckpointModelTest, IntervalScalesWithConfig) {
  CheckpointConfig half;
  half.interval_scale = 0.5;
  CheckpointConfig full;
  const SimTime tau_full = CheckpointModel(full).IntervalFor(256);
  const SimTime tau_half = CheckpointModel(half).IntervalFor(256);
  EXPECT_NEAR(static_cast<double>(tau_half), static_cast<double>(tau_full) / 2.0,
              static_cast<double>(tau_full) * 0.01 + 2.0);
}

TEST(CheckpointModelTest, IntervalShrinksWithJobSize) {
  CheckpointModel model;
  // Bigger jobs fail more often -> smaller optimal interval (same overhead
  // class).
  EXPECT_GT(model.IntervalFor(128), model.IntervalFor(512));
}

TEST(CheckpointModelTest, IntervalRespectsFloor) {
  CheckpointConfig config;
  config.interval_scale = 1e-6;
  CheckpointModel model(config);
  EXPECT_GE(model.IntervalFor(128), config.min_interval);
}

// --- RigidTimeline ---------------------------------------------------------

TEST(RigidTimelineTest, NoCheckpointingWhenIntervalZero) {
  RigidTimeline tl(100, 5000, 0, 600);
  EXPECT_EQ(tl.num_checkpoints(), 0);
  EXPECT_EQ(tl.total_wall(), 5100);
  EXPECT_EQ(tl.CheckpointedAt(3000), 0);
  EXPECT_EQ(tl.NextCheckpointCompletion(0), kNever);
}

TEST(RigidTimelineTest, CheckpointCountExcludesTrailingDump) {
  // compute = 3 intervals exactly: dumps after segments 1 and 2 only.
  RigidTimeline tl(0, 9000, 3000, 600);
  EXPECT_EQ(tl.num_checkpoints(), 2);
  EXPECT_EQ(tl.total_wall(), 9000 + 2 * 600);
}

TEST(RigidTimelineTest, CheckpointCountPartialTail) {
  RigidTimeline tl(0, 10000, 3000, 600);
  EXPECT_EQ(tl.num_checkpoints(), 3);
  EXPECT_EQ(tl.total_wall(), 10000 + 3 * 600);
}

TEST(RigidTimelineTest, ShortJobNeverCheckpoints) {
  RigidTimeline tl(100, 2999, 3000, 600);
  EXPECT_EQ(tl.num_checkpoints(), 0);
  EXPECT_EQ(tl.total_wall(), 3099);
}

TEST(RigidTimelineTest, ProgressDuringSetupIsZero) {
  RigidTimeline tl(100, 10000, 3000, 600);
  EXPECT_EQ(tl.ProgressAt(0), 0);
  EXPECT_EQ(tl.ProgressAt(99), 0);
  EXPECT_EQ(tl.ProgressAt(100), 0);
}

TEST(RigidTimelineTest, ProgressAdvancesThroughComputePhases) {
  RigidTimeline tl(100, 10000, 3000, 600);
  EXPECT_EQ(tl.ProgressAt(100 + 1500), 1500);
  EXPECT_EQ(tl.ProgressAt(100 + 3000), 3000);          // at dump start
  EXPECT_EQ(tl.ProgressAt(100 + 3000 + 300), 3000);    // frozen mid-dump
  EXPECT_EQ(tl.ProgressAt(100 + 3600 + 10), 3010);     // resumed after dump
  EXPECT_EQ(tl.ProgressAt(tl.total_wall()), 10000);
  EXPECT_EQ(tl.ProgressAt(tl.total_wall() + 5000), 10000);
}

TEST(RigidTimelineTest, CheckpointedLagsDumpCompletion) {
  RigidTimeline tl(100, 10000, 3000, 600);
  EXPECT_EQ(tl.CheckpointedAt(100 + 3000 + 599), 0);   // dump not finished
  EXPECT_EQ(tl.CheckpointedAt(100 + 3600), 3000);      // dump complete
  EXPECT_EQ(tl.CheckpointedAt(100 + 2 * 3600), 6000);
  EXPECT_EQ(tl.CheckpointedAt(tl.total_wall()), 9000);  // 3 dumps of 3000
}

TEST(RigidTimelineTest, NextCheckpointCompletionTimes) {
  RigidTimeline tl(100, 10000, 3000, 600);
  EXPECT_EQ(tl.NextCheckpointCompletion(0), 100 + 3600);
  EXPECT_EQ(tl.NextCheckpointCompletion(100 + 3600), 100 + 7200);  // strictly after
  EXPECT_EQ(tl.NextCheckpointCompletion(100 + 3 * 3600), kNever);
}

TEST(RigidTimelineTest, LostWorkBoundedByInterval) {
  // Property: progress - checkpointed never exceeds interval (plus nothing).
  RigidTimeline tl(50, 20000, 3000, 600);
  for (SimTime t = 0; t <= tl.total_wall(); t += 97) {
    const SimTime lost = tl.ProgressAt(t) - tl.CheckpointedAt(t);
    EXPECT_GE(lost, 0);
    EXPECT_LE(lost, 3000);
  }
}

TEST(RigidTimelineTest, ProgressMonotone) {
  RigidTimeline tl(50, 14000, 3000, 600);
  SimTime prev = 0;
  for (SimTime t = 0; t <= tl.total_wall() + 100; t += 53) {
    const SimTime p = tl.ProgressAt(t);
    EXPECT_GE(p, prev);
    prev = p;
  }
}

class TimelineSweep : public ::testing::TestWithParam<std::tuple<int, int, int, int>> {};

TEST_P(TimelineSweep, WallTimeConsistentWithCounts) {
  const auto [setup, compute, interval, overhead] = GetParam();
  RigidTimeline tl(setup, compute, interval, overhead);
  EXPECT_EQ(tl.total_wall(),
            setup + compute + static_cast<SimTime>(tl.num_checkpoints()) * overhead);
  EXPECT_EQ(tl.ProgressAt(tl.total_wall()), compute);
  EXPECT_LE(tl.CheckpointedAt(tl.total_wall()), compute);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, TimelineSweep,
    ::testing::Combine(::testing::Values(0, 100, 1800),
                       ::testing::Values(600, 3000, 9000, 86000),
                       ::testing::Values(0, 1000, 3000, 10000),
                       ::testing::Values(600, 1200)));

}  // namespace
}  // namespace hs
