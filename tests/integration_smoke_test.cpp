// End-to-end smoke: a small synthetic scenario runs to completion under the
// baseline and all six mechanisms, with sane aggregate metrics.
#include <gtest/gtest.h>

#include "exp/runner.h"
#include "exp/scenario.h"

namespace hs {
namespace {

ScenarioConfig SmokeScenario() {
  // A smaller machine keeps the smoke test fast while preserving contention.
  // The paper's 10% on-demand project share is kept: raising it on a small
  // machine makes bursty on-demand sessions collide with each other (the
  // Observation 9 failure mode) rather than with batch work.
  ScenarioConfig config = MakePaperScenario(/*weeks=*/4, "W5");
  config.theta.num_nodes = 1024;
  config.theta.projects.max_job_size = 1024;
  config.theta.projects.num_projects = 60;
  return config;
}

TEST(SmokeTest, BaselineCompletesEverything) {
  const Trace trace = BuildScenarioTrace(SmokeScenario(), 7);
  ASSERT_EQ(trace.Validate(), "");
  ASSERT_GT(trace.jobs.size(), 50u);
  const SimResult r = RunSimulation(trace, MakePaperConfig(BaselineMechanism()));
  EXPECT_EQ(r.jobs_completed, trace.jobs.size());
  EXPECT_EQ(r.jobs_killed, 0u);
  EXPECT_GT(r.utilization, 0.2);
  EXPECT_LE(r.allocated_utilization, 1.0 + 1e-9);
  EXPECT_EQ(r.preemptions, 0u);
}

class MechanismSmoke : public ::testing::TestWithParam<std::size_t> {};

TEST_P(MechanismSmoke, CompletesEverythingWithHighInstantStart) {
  const Trace trace = BuildScenarioTrace(SmokeScenario(), 7);
  const Mechanism mechanism = PaperMechanisms()[GetParam()];
  const SimResult r = RunSimulation(trace, MakePaperConfig(mechanism));
  EXPECT_EQ(r.jobs_completed, trace.jobs.size()) << ToString(mechanism);
  EXPECT_EQ(r.jobs_killed, 0u) << ToString(mechanism);
  EXPECT_GE(r.od_jobs, 10u);
  // On this deliberately small machine one oversized on-demand request can
  // miss; the paper-scale machine reaches ~98% (checked by the benches).
  EXPECT_GT(r.od_instant_rate, 0.8) << ToString(mechanism);
  EXPECT_GE(r.rigid_preempt_ratio, 0.0);
  EXPECT_LE(r.rigid_preempt_ratio, 1.0);
  EXPECT_LE(r.malleable_preempt_ratio, 1.0);
  EXPECT_LE(r.utilization, 1.0 + 1e-9);
  EXPECT_LT(r.decision_max_us, 10'000.0);  // Observation 10
}

INSTANTIATE_TEST_SUITE_P(AllMechanisms, MechanismSmoke,
                         ::testing::Range<std::size_t>(0, 6),
                         [](const ::testing::TestParamInfo<std::size_t>& info) {
                           std::string name = ToString(PaperMechanisms()[info.param]);
                           for (char& c : name) {
                             if (c == '&') c = '_';
                           }
                           return name;
                         });

TEST(SmokeTest, GridRunnerAggregates) {
  // The smoke scenario as a registered preset, addressable from specs.
  if (!ScenarioRegistry().Contains("smoke1024")) {
    RegisterScenarioPreset("smoke1024", [](int weeks, const std::string& mix) {
      ScenarioConfig config = MakePaperScenario(weeks, mix);
      config.theta.num_nodes = 1024;
      config.theta.projects.max_job_size = 1024;
      config.theta.projects.num_projects = 60;
      return config;
    });
  }
  ThreadPool pool(4);
  ExperimentRunner runner(pool);
  std::vector<SimSpec> specs;
  for (const char* mechanism : {"baseline", "CUA&SPAA"}) {
    const SimSpec base = SimSpec::Parse(std::string(mechanism) +
                                        "/FCFS/W5/preset=smoke1024/weeks=4");
    for (const SimSpec& seeded : SeedSweep(base, 2, 100)) specs.push_back(seeded);
  }
  const auto rows = runner.Run(specs);
  ASSERT_EQ(rows.size(), 4u);
  const auto means = GroupMeans(rows, 2);
  const SimResult& baseline = means[0];
  const SimResult& cua_spaa = means[1];
  // The headline claim of the paper: mechanisms lift the instant-start rate
  // dramatically over the baseline.
  EXPECT_GT(cua_spaa.od_instant_rate, baseline.od_instant_rate);
}

TEST(SmokeTest, DeterministicAcrossRuns) {
  const Trace trace = BuildScenarioTrace(SmokeScenario(), 11);
  const HybridConfig config = MakePaperConfig(PaperMechanisms()[2]);
  const SimResult a = RunSimulation(trace, config);
  const SimResult b = RunSimulation(trace, config);
  EXPECT_DOUBLE_EQ(a.avg_turnaround_h, b.avg_turnaround_h);
  EXPECT_DOUBLE_EQ(a.utilization, b.utilization);
  EXPECT_EQ(a.preemptions, b.preemptions);
  EXPECT_EQ(a.shrinks, b.shrinks);
}

}  // namespace
}  // namespace hs
