#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

namespace hs {
namespace {

TEST(ThreadPoolTest, RunsSubmittedTasks) {
  ThreadPool pool(4);
  auto f = pool.Submit([] { return 7; });
  EXPECT_EQ(f.get(), 7);
}

TEST(ThreadPoolTest, ParallelForCoversAllIndices) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(100);
  pool.ParallelFor(100, [&](std::size_t i) { hits[i]++; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ParallelForPropagatesExceptions) {
  ThreadPool pool(2);
  EXPECT_THROW(
      pool.ParallelFor(10,
                       [](std::size_t i) {
                         if (i == 5) throw std::runtime_error("boom");
                       }),
      std::runtime_error);
}

TEST(ThreadPoolTest, ManyTasksAggregateCorrectly) {
  ThreadPool pool;
  std::atomic<long long> sum{0};
  pool.ParallelFor(1000, [&](std::size_t i) { sum += static_cast<long long>(i); });
  EXPECT_EQ(sum.load(), 999LL * 1000 / 2);
}

TEST(ThreadPoolTest, SizeReflectsWorkerCount) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.size(), 3u);
}

TEST(ThreadPoolTest, DefaultUsesHardwareConcurrency) {
  ThreadPool pool;
  EXPECT_GE(pool.size(), 1u);
}

}  // namespace
}  // namespace hs
