#include "workload/theta_model.h"

#include <gtest/gtest.h>

#include <set>

#include "workload/characterize.h"

namespace hs {
namespace {

ThetaConfig SmallConfig() {
  ThetaConfig config;
  config.weeks = 2;
  return config;
}

TEST(ThetaModelTest, DeterministicInSeed) {
  const Trace a = GenerateThetaTrace(SmallConfig(), 1);
  const Trace b = GenerateThetaTrace(SmallConfig(), 1);
  ASSERT_EQ(a.jobs.size(), b.jobs.size());
  for (std::size_t i = 0; i < a.jobs.size(); ++i) {
    EXPECT_EQ(a.jobs[i].submit_time, b.jobs[i].submit_time);
    EXPECT_EQ(a.jobs[i].size, b.jobs[i].size);
    EXPECT_EQ(a.jobs[i].compute_time, b.jobs[i].compute_time);
  }
}

TEST(ThetaModelTest, DifferentSeedsDiffer) {
  const Trace a = GenerateThetaTrace(SmallConfig(), 1);
  const Trace b = GenerateThetaTrace(SmallConfig(), 2);
  EXPECT_NE(a.jobs.size(), b.jobs.size());
}

TEST(ThetaModelTest, TraceIsValid) {
  const Trace trace = GenerateThetaTrace(SmallConfig(), 3);
  EXPECT_EQ(trace.Validate(), "");
}

TEST(ThetaModelTest, RespectsMachineLimits) {
  const Trace trace = GenerateThetaTrace(SmallConfig(), 4);
  for (const auto& job : trace.jobs) {
    EXPECT_GE(job.size, 128);                       // Theta minimum
    EXPECT_LE(job.size, 4392);                      // machine size
    // Allocation quantum of 128, except full-machine requests (4392 is not
    // a multiple of 128 on Theta).
    EXPECT_TRUE(job.size % 128 == 0 || job.size == 4392) << job.size;
    EXPECT_LE(job.setup_time + job.compute_time, kDay);  // 1-day cap
    EXPECT_GE(job.estimate, job.setup_time + job.compute_time);
  }
}

TEST(ThetaModelTest, OfferedLoadNearTarget) {
  ThetaConfig config = SmallConfig();
  config.weeks = 4;
  config.target_load = 0.9;
  const Trace trace = GenerateThetaTrace(config, 5);
  EXPECT_NEAR(trace.OfferedLoad(), 0.9, 0.12);
}

TEST(ThetaModelTest, SetupWithinRigidBand) {
  const Trace trace = GenerateThetaTrace(SmallConfig(), 6);
  for (const auto& job : trace.jobs) {
    const double frac = static_cast<double>(job.setup_time) / job.compute_time;
    EXPECT_GE(frac, 0.04);  // 5% minus rounding slack
    EXPECT_LE(frac, 0.11);  // 10% plus rounding slack
  }
}

TEST(ThetaModelTest, ManyProjectsActive) {
  ThetaConfig config = SmallConfig();
  config.weeks = 4;
  const Trace trace = GenerateThetaTrace(config, 7);
  std::set<std::int32_t> projects;
  for (const auto& job : trace.jobs) projects.insert(job.project);
  EXPECT_GT(projects.size(), 30u);  // Zipf tail still shows up
}

TEST(ThetaModelTest, SizeMixSkewsSmall) {
  const Trace trace = GenerateThetaTrace(SmallConfig(), 8);
  const auto hist = SizeHistogram(trace);
  // Fig. 3 shape: the smallest bin dominates the job count, while large
  // jobs hold a disproportionate share of node-hours.
  EXPECT_GT(hist.CountShare(0), 0.3);
  const std::size_t last = hist.bins().size() - 1;
  EXPECT_GT(hist.WeightShare(last) + hist.WeightShare(last - 1),
            hist.CountShare(last) + hist.CountShare(last - 1));
}

TEST(ThetaModelTest, EstimatesQuantizedTo15Minutes) {
  const Trace trace = GenerateThetaTrace(SmallConfig(), 9);
  for (const auto& job : trace.jobs) {
    if (job.estimate != job.setup_time + job.compute_time) {
      EXPECT_EQ(job.estimate % (15 * kMinute), 0) << "job " << job.id;
    }
  }
}

TEST(ThetaModelTest, HorizonRespected) {
  ThetaConfig config = SmallConfig();
  const Trace trace = GenerateThetaTrace(config, 10);
  EXPECT_LT(trace.LastSubmit(), static_cast<SimTime>(config.weeks) * kWeek +
                                    kDay);  // bursts may spill slightly
}

}  // namespace
}  // namespace hs
