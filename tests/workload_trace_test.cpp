#include "workload/trace.h"

#include <gtest/gtest.h>

namespace hs {
namespace {

JobRecord MakeJob(JobId id, SimTime submit, int size, SimTime compute) {
  JobRecord j;
  j.id = id;
  j.project = 0;
  j.submit_time = submit;
  j.size = size;
  j.min_size = size;
  j.compute_time = compute;
  j.setup_time = 0;
  j.estimate = compute;
  return j;
}

TEST(TraceTest, CanonicalizeSortsAndRenumbers) {
  Trace trace;
  trace.num_nodes = 100;
  trace.jobs = {MakeJob(5, 300, 10, 60), MakeJob(9, 100, 10, 60), MakeJob(2, 200, 10, 60)};
  trace.Canonicalize();
  ASSERT_EQ(trace.jobs.size(), 3u);
  EXPECT_EQ(trace.jobs[0].submit_time, 100);
  EXPECT_EQ(trace.jobs[1].submit_time, 200);
  EXPECT_EQ(trace.jobs[2].submit_time, 300);
  EXPECT_EQ(trace.jobs[0].id, 0);
  EXPECT_EQ(trace.jobs[2].id, 2);
}

TEST(TraceTest, ValidateDetectsOversizedJob) {
  Trace trace;
  trace.num_nodes = 8;
  trace.jobs = {MakeJob(0, 0, 16, 60)};
  EXPECT_NE(trace.Validate(), "");
}

TEST(TraceTest, ValidateDetectsUnsortedJobs) {
  Trace trace;
  trace.num_nodes = 100;
  trace.jobs = {MakeJob(0, 200, 10, 60), MakeJob(1, 100, 10, 60)};
  EXPECT_NE(trace.Validate(), "");
}

TEST(TraceTest, ValidTracePasses) {
  Trace trace;
  trace.num_nodes = 100;
  trace.jobs = {MakeJob(0, 100, 10, 60), MakeJob(1, 200, 10, 60)};
  EXPECT_EQ(trace.Validate(), "");
}

TEST(TraceTest, OfferedLoadMatchesHandComputation) {
  Trace trace;
  trace.num_nodes = 10;
  // Two jobs of 5 nodes x 100 s over a 100 s span: load = 1000 / 1000 = 1.
  trace.jobs = {MakeJob(0, 0, 5, 100), MakeJob(1, 100, 5, 100)};
  EXPECT_DOUBLE_EQ(trace.OfferedLoad(), 1.0);
}

TEST(TraceTest, EmptyTraceBasics) {
  Trace trace;
  trace.num_nodes = 10;
  EXPECT_EQ(trace.FirstSubmit(), 0);
  EXPECT_EQ(trace.LastSubmit(), 0);
  EXPECT_DOUBLE_EQ(trace.OfferedLoad(), 0.0);
  EXPECT_EQ(trace.Validate(), "");
}

TEST(TraceTest, CountClass) {
  Trace trace;
  trace.num_nodes = 100;
  auto a = MakeJob(0, 0, 10, 60);
  auto b = MakeJob(1, 1, 10, 60);
  b.klass = JobClass::kMalleable;
  b.min_size = 2;
  trace.jobs = {a, b};
  EXPECT_EQ(trace.CountClass(JobClass::kRigid), 1u);
  EXPECT_EQ(trace.CountClass(JobClass::kMalleable), 1u);
  EXPECT_EQ(trace.CountClass(JobClass::kOnDemand), 0u);
}

}  // namespace
}  // namespace hs
