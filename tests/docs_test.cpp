// Documentation contract tests: the markdown link check CI's docs job
// runs, the CLI.md override-key table cross-checked row-for-row against
// OverrideTable() (so generated text cannot rot), and the SCENARIOS.md
// catalog covering every registered preset, mechanism, and policy.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/mechanism.h"
#include "exp/scenario.h"
#include "exp/sim_spec.h"
#include "sched/policy.h"

namespace hs {
namespace {

namespace fs = std::filesystem;

#ifndef HS_SOURCE_DIR
#error "docs_test needs HS_SOURCE_DIR (set in CMakeLists.txt)"
#endif

fs::path SourceDir() { return fs::path(HS_SOURCE_DIR); }

std::string ReadFile(const fs::path& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in) << "cannot open " << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

/// The documentation set the CI docs job link-checks.
std::vector<fs::path> DocFiles() {
  std::vector<fs::path> files = {SourceDir() / "README.md",
                                 SourceDir() / "ROADMAP.md"};
  for (const auto& entry : fs::directory_iterator(SourceDir() / "docs")) {
    if (entry.path().extension() == ".md") files.push_back(entry.path());
  }
  return files;
}

/// Drops fenced code blocks and inline code spans, where "](" is C++ (a
/// lambda), not markdown.
std::string StripCode(const std::string& text) {
  std::string out;
  bool fenced = false;
  std::istringstream lines(text);
  for (std::string line; std::getline(lines, line);) {
    if (line.rfind("```", 0) == 0) {
      fenced = !fenced;
      continue;
    }
    if (fenced) continue;
    bool in_span = false;
    for (const char c : line) {
      if (c == '`') {
        in_span = !in_span;
      } else if (!in_span) {
        out += c;
      }
    }
    out += '\n';
  }
  return out;
}

/// Extracts every inline markdown link target: "](target)".
std::vector<std::string> LinkTargets(const std::string& text) {
  std::vector<std::string> targets;
  const std::string prose = StripCode(text);
  std::size_t pos = 0;
  while ((pos = prose.find("](", pos)) != std::string::npos) {
    const std::size_t start = pos + 2;
    const std::size_t end = prose.find(')', start);
    if (end == std::string::npos) break;
    targets.push_back(prose.substr(start, end - start));
    pos = end + 1;
  }
  return targets;
}

// Every relative link in README/ROADMAP/docs must resolve to a file or
// directory in the repo (anchors stripped; external URLs skipped). This is
// the check the CI docs job runs — a renamed file with a stale pointer
// fails tier 1, not a reader.
TEST(DocsTest, RelativeLinksResolve) {
  std::size_t checked = 0;
  for (const fs::path& file : DocFiles()) {
    const std::string text = ReadFile(file);
    for (const std::string& raw : LinkTargets(text)) {
      if (raw.empty() || raw[0] == '#') continue;           // intra-page anchor
      if (raw.find("://") != std::string::npos) continue;   // external URL
      if (raw.rfind("mailto:", 0) == 0) continue;
      std::string target = raw.substr(0, raw.find('#'));    // strip anchor
      if (target.empty()) continue;
      const fs::path resolved = file.parent_path() / target;
      EXPECT_TRUE(fs::exists(resolved))
          << file.filename() << " links to missing path '" << raw << "'";
      ++checked;
    }
  }
  EXPECT_GT(checked, 10u) << "link extraction found suspiciously few links";
}

// docs/CLI.md's override table is generated text: one row per
// OverrideTable() entry in the exact format below. Comparing rendered
// rows (not just key names) means help text, target, and example value
// can never drift from the code.
TEST(DocsTest, CliOverrideTableMatchesOverrideTable) {
  const std::string text = ReadFile(SourceDir() / "docs" / "CLI.md");
  const std::size_t begin = text.find("<!-- override-table:begin");
  const std::size_t end = text.find("<!-- override-table:end -->");
  ASSERT_NE(begin, std::string::npos) << "docs/CLI.md lost its table markers";
  ASSERT_NE(end, std::string::npos);
  const std::string table = text.substr(begin, end - begin);

  std::size_t rows = 0;
  std::istringstream lines(table);
  for (std::string line; std::getline(lines, line);) {
    if (line.rfind("| `", 0) == 0) ++rows;
  }
  EXPECT_EQ(rows, KnownOverrides().size())
      << "docs/CLI.md override table has stale or missing rows";

  for (const OverrideKey& key : KnownOverrides()) {
    const std::string row = "| `" + key.key + "` | " +
                            (key.scenario ? "scenario" : "config") + " | " +
                            key.help + " | `" + key.example + "` |";
    EXPECT_NE(table.find(row), std::string::npos)
        << "docs/CLI.md is missing/outdated for override '" << key.key
        << "'; expected row:\n  " << row;
  }
}

// The SCENARIOS.md catalog must name every registered preset, mechanism,
// and ordering policy (only built-ins are registered in this binary).
TEST(DocsTest, ScenarioCatalogCoversEveryRegisteredName) {
  const std::string text = ReadFile(SourceDir() / "docs" / "SCENARIOS.md");
  for (const std::string& preset : ScenarioPresetNames()) {
    EXPECT_NE(text.find("`" + preset + "`"), std::string::npos)
        << "docs/SCENARIOS.md does not document preset '" << preset << "'";
  }
  for (const std::string& mechanism : MechanismNames()) {
    EXPECT_NE(text.find("`" + mechanism + "`"), std::string::npos)
        << "docs/SCENARIOS.md does not document mechanism '" << mechanism << "'";
  }
  for (const std::string& policy : PolicyNames()) {
    EXPECT_NE(text.find("`" + policy + "`"), std::string::npos)
        << "docs/SCENARIOS.md does not document policy '" << policy << "'";
  }
}

}  // namespace
}  // namespace hs
