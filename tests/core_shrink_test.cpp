#include "core/shrink_expand.h"

#include <gtest/gtest.h>

#include <numeric>

namespace hs {
namespace {

int Total(const std::vector<ShrinkShare>& plan) {
  int total = 0;
  for (const auto& s : plan) total += s.amount;
  return total;
}

TEST(EvenShrinkTest, ExactProportionalSplit) {
  const auto plan = PlanEvenShrink({{1, 30}, {2, 10}}, 20);
  ASSERT_EQ(plan.size(), 2u);
  EXPECT_EQ(plan[0].amount, 15);
  EXPECT_EQ(plan[1].amount, 5);
}

TEST(EvenShrinkTest, SumsExactlyToDemand) {
  const auto plan = PlanEvenShrink({{1, 7}, {2, 11}, {3, 3}}, 13);
  EXPECT_EQ(Total(plan), 13);
}

TEST(EvenShrinkTest, NeverExceedsCapacity) {
  const auto plan = PlanEvenShrink({{1, 2}, {2, 100}}, 100);
  for (const auto& s : plan) {
    if (s.id == 1) EXPECT_LE(s.amount, 2);
    if (s.id == 2) EXPECT_LE(s.amount, 100);
  }
  EXPECT_EQ(Total(plan), 100);
}

TEST(EvenShrinkTest, ZeroDemand) {
  const auto plan = PlanEvenShrink({{1, 5}}, 0);
  EXPECT_EQ(Total(plan), 0);
}

TEST(EvenShrinkTest, FullSupplyDemand) {
  const auto plan = PlanEvenShrink({{1, 5}, {2, 3}}, 8);
  EXPECT_EQ(Total(plan), 8);
  EXPECT_EQ(plan[0].amount, 5);
  EXPECT_EQ(plan[1].amount, 3);
}

TEST(EvenShrinkTest, DemandBeyondSupplyThrows) {
  EXPECT_THROW(PlanEvenShrink({{1, 5}}, 6), std::invalid_argument);
}

TEST(EvenShrinkTest, NegativeInputsThrow) {
  EXPECT_THROW(PlanEvenShrink({{1, -1}}, 0), std::invalid_argument);
  EXPECT_THROW(PlanEvenShrink({{1, 5}}, -2), std::invalid_argument);
}

TEST(EvenShrinkTest, Deterministic) {
  const auto a = PlanEvenShrink({{1, 7}, {2, 7}, {3, 7}}, 10);
  const auto b = PlanEvenShrink({{1, 7}, {2, 7}, {3, 7}}, 10);
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i].amount, b[i].amount);
}

class ShrinkPropertySweep
    : public ::testing::TestWithParam<std::tuple<int, int, int, int>> {};

TEST_P(ShrinkPropertySweep, InvariantsHold) {
  const auto [c1, c2, c3, demand_pct] = GetParam();
  const std::vector<std::pair<JobId, int>> caps = {{1, c1}, {2, c2}, {3, c3}};
  const int supply = c1 + c2 + c3;
  const int demand = supply * demand_pct / 100;
  const auto plan = PlanEvenShrink(caps, demand);
  EXPECT_EQ(Total(plan), demand);
  ASSERT_EQ(plan.size(), caps.size());
  for (std::size_t i = 0; i < plan.size(); ++i) {
    EXPECT_GE(plan[i].amount, 0);
    EXPECT_LE(plan[i].amount, caps[i].second);
    EXPECT_EQ(plan[i].id, caps[i].first);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ShrinkPropertySweep,
    ::testing::Combine(::testing::Values(0, 3, 17, 100),
                       ::testing::Values(1, 8, 51),
                       ::testing::Values(0, 5, 33),
                       ::testing::Values(0, 25, 50, 99, 100)));

}  // namespace
}  // namespace hs
