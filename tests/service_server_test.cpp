// End-to-end server tests: an in-process ScheduleServer on an ephemeral
// loopback port, driven through real sockets — greeting, the verb loop,
// reconnection after a client hangs up, and shutdown.
#include <gtest/gtest.h>

#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "service/protocol.h"
#include "service/server.h"
#include "service/service_session.h"
#include "util/socket.h"

namespace hs {
namespace {

class ServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SimSpec spec = SimSpec::Parse("CUP&SPAA/FCFS/W5/preset=midsize");
    spec.seed = 4;
    session_ = std::make_unique<ServiceSession>(spec);
    server_ = std::make_unique<ScheduleServer>(*session_, /*port=*/0);
    serve_thread_ = std::thread([this] { server_->Serve(); });
  }

  void TearDown() override {
    if (serve_thread_.joinable()) {
      // Guarantee the serve loop exits even when a test failed early.
      try {
        Socket finisher = Connect();
        SendLine(finisher, "shutdown");
        (void)finisher.RecvLine();
      } catch (const std::exception&) {
      }
      serve_thread_.join();
    }
  }

  /// Connects and consumes the greeting line.
  Socket Connect() {
    Socket sock = ConnectLoopback(server_->port());
    const std::optional<std::string> greeting = sock.RecvLine();
    EXPECT_EQ(greeting, std::optional<std::string>(kWireGreeting));
    return sock;
  }

  /// One request, one single-line response.
  std::string Roundtrip(Socket& sock, const std::string& request) {
    SendLine(sock, request);
    const std::optional<std::string> line = sock.RecvLine();
    EXPECT_TRUE(line.has_value()) << request;
    return line.value_or("");
  }

  std::unique_ptr<ServiceSession> session_;
  std::unique_ptr<ScheduleServer> server_;
  std::thread serve_thread_;
};

TEST_F(ServerTest, VerbLoopOverARealSocket) {
  Socket sock = Connect();
  EXPECT_EQ(Roundtrip(sock, "ping"), "ok now=0");
  EXPECT_EQ(Roundtrip(sock, "advance by=7200").rfind("ok now=7200", 0), 0u);

  const std::string submit =
      Roundtrip(sock, "submit class=rigid size=64 compute=600 submit=+300");
  EXPECT_EQ(submit.rfind("ok job=", 0), 0u) << submit;
  EXPECT_EQ(Roundtrip(sock, "query-metrics").rfind("ok now=7200 events=", 0), 0u);

  // Blank lines are ignored, not answered.
  sock.SendAll("\n");
  EXPECT_EQ(Roundtrip(sock, "ping"), "ok now=7200");

  // whatif is framed ok n=K ... end.
  SendLine(sock, "whatif mechanisms=baseline size=32 compute=60 submit=+60");
  EXPECT_EQ(sock.RecvLine(), std::optional<std::string>("ok n=1"));
  const std::optional<std::string> answer = sock.RecvLine();
  ASSERT_TRUE(answer.has_value());
  EXPECT_EQ(answer->rfind("mech=baseline ", 0), 0u);
  EXPECT_EQ(sock.RecvLine(), std::optional<std::string>("end"));
}

TEST_F(ServerTest, SurvivesClientHangupAndServesTheNextConnection) {
  {
    Socket first = Connect();
    EXPECT_EQ(Roundtrip(first, "advance by=3600").rfind("ok now=3600", 0), 0u);
  }  // hang up without shutdown

  Socket second = Connect();
  // Session state persisted across the reconnect.
  EXPECT_EQ(Roundtrip(second, "ping"), "ok now=3600");
}

TEST_F(ServerTest, ShutdownStopsTheServeLoop) {
  Socket sock = Connect();
  EXPECT_EQ(Roundtrip(sock, "shutdown"), "ok bye");
  serve_thread_.join();  // Serve() returned; TearDown sees nothing to do
  EXPECT_EQ(sock.RecvLine(), std::nullopt);  // server side closed the stream
}

TEST_F(ServerTest, ErrorsAreAnsweredInline) {
  Socket sock = Connect();
  EXPECT_EQ(Roundtrip(sock, "frobnicate all=1").rfind("err msg=", 0), 0u);
  // The connection stays usable after an error.
  EXPECT_EQ(Roundtrip(sock, "ping"), "ok now=0");
}

}  // namespace
}  // namespace hs
