// End-to-end server tests: an in-process ScheduleServer on an ephemeral
// loopback port, driven through real sockets — greeting, the verb loop,
// reconnection after a client hangs up (including mid-response and
// mid-stream), watch/restore, request validation, and shutdown.
#include <gtest/gtest.h>

#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "service/protocol.h"
#include "service/server.h"
#include "service/service_session.h"
#include "util/socket.h"

namespace hs {
namespace {

class ServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SimSpec spec = SimSpec::Parse("CUP&SPAA/FCFS/W5/preset=midsize");
    spec.seed = 4;
    session_ = std::make_unique<ServiceSession>(spec);
    server_ = std::make_unique<ScheduleServer>(*session_, /*port=*/0);
    server_->set_watch_poll_ms(1);
    serve_thread_ = std::thread([this] { server_->Serve(); });
  }

  void TearDown() override {
    if (serve_thread_.joinable()) {
      // Guarantee the serve loop exits even when a test failed early.
      try {
        Socket finisher = Connect();
        SendLine(finisher, "shutdown");
        (void)finisher.RecvLine();
      } catch (const std::exception&) {
      }
      serve_thread_.join();
    }
  }

  /// Connects and consumes the greeting line.
  Socket Connect() {
    Socket sock = ConnectLoopback(server_->port());
    const std::optional<std::string> greeting = sock.RecvLine();
    EXPECT_EQ(greeting, std::optional<std::string>(kWireGreeting));
    return sock;
  }

  /// One request, one single-line response.
  std::string Roundtrip(Socket& sock, const std::string& request) {
    SendLine(sock, request);
    const std::optional<std::string> line = sock.RecvLine();
    EXPECT_TRUE(line.has_value()) << request;
    return line.value_or("");
  }

  std::unique_ptr<ServiceSession> session_;
  std::unique_ptr<ScheduleServer> server_;
  std::thread serve_thread_;
};

TEST_F(ServerTest, VerbLoopOverARealSocket) {
  Socket sock = Connect();
  EXPECT_EQ(Roundtrip(sock, "ping"), "ok now=0");
  EXPECT_EQ(Roundtrip(sock, "advance by=7200").rfind("ok now=7200", 0), 0u);

  const std::string submit =
      Roundtrip(sock, "submit class=rigid size=64 compute=600 submit=+300");
  EXPECT_EQ(submit.rfind("ok job=", 0), 0u) << submit;
  EXPECT_EQ(Roundtrip(sock, "query-metrics").rfind("ok now=7200 events=", 0), 0u);

  // Blank lines are ignored, not answered.
  sock.SendAll("\n");
  EXPECT_EQ(Roundtrip(sock, "ping"), "ok now=7200");

  // whatif is framed ok n=K ... end.
  SendLine(sock, "whatif mechanisms=baseline size=32 compute=60 submit=+60");
  EXPECT_EQ(sock.RecvLine(), std::optional<std::string>("ok n=1"));
  const std::optional<std::string> answer = sock.RecvLine();
  ASSERT_TRUE(answer.has_value());
  EXPECT_EQ(answer->rfind("mech=baseline ", 0), 0u);
  EXPECT_EQ(sock.RecvLine(), std::optional<std::string>("end"));
}

TEST_F(ServerTest, SurvivesClientHangupAndServesTheNextConnection) {
  {
    Socket first = Connect();
    EXPECT_EQ(Roundtrip(first, "advance by=3600").rfind("ok now=3600", 0), 0u);
  }  // hang up without shutdown

  Socket second = Connect();
  // Session state persisted across the reconnect.
  EXPECT_EQ(Roundtrip(second, "ping"), "ok now=3600");
}

TEST_F(ServerTest, ShutdownStopsTheServeLoop) {
  Socket sock = Connect();
  EXPECT_EQ(Roundtrip(sock, "shutdown"), "ok bye");
  serve_thread_.join();  // Serve() returned; TearDown sees nothing to do
  EXPECT_EQ(sock.RecvLine(), std::nullopt);  // server side closed the stream
}

TEST_F(ServerTest, ErrorsAreAnsweredInline) {
  Socket sock = Connect();
  EXPECT_EQ(Roundtrip(sock, "frobnicate all=1").rfind("err msg=", 0), 0u);
  // The connection stays usable after an error.
  EXPECT_EQ(Roundtrip(sock, "ping"), "ok now=0");
}

// Regression: a client that hangs up between request and response used to
// make Socket::SendAll throw out of Serve(), killing the server for every
// other client. Now the send failure drops that connection only.
TEST_F(ServerTest, SurvivesClientVanishingMidWhatif) {
  for (int round = 0; round < 2; ++round) {
    {
      Socket doomed = Connect();
      // mechanisms=all answers with a framed multi-line response; hanging
      // up before reading any of it makes the server's sends fail.
      SendLine(doomed, "whatif size=32 compute=600 submit=+60");
    }  // close without reading a single response byte
    Socket alive = Connect();
    EXPECT_EQ(Roundtrip(alive, "ping"), "ok now=0") << "round " << round;
  }
}

// Regression (streaming flavor): a watcher that vanishes mid-stream must
// not take the server down when its next tick send fails.
TEST_F(ServerTest, SurvivesWatcherHangupWhileStreaming) {
  {
    Socket watcher = Connect();
    SendLine(watcher, "watch every=60 count=100000");
    EXPECT_EQ(watcher.RecvLine(),
              std::optional<std::string>("ok n=100000 every=60"));
    const std::optional<std::string> tick0 = watcher.RecvLine();
    ASSERT_TRUE(tick0.has_value());
    EXPECT_EQ(tick0->rfind("tick seq=0 ", 0), 0u);
  }  // vanish with the stream open
  Socket driver = Connect();
  // Keep virtual time moving so the orphaned watch thread keeps trying to
  // send ticks and hits the failure path.
  for (int i = 0; i < 50; ++i) {
    ASSERT_EQ(Roundtrip(driver, "advance by=60").rfind("ok now=", 0), 0u);
  }
  EXPECT_EQ(Roundtrip(driver, "ping"), "ok now=3000");
}

// Regression: `advance by=` with a negative delta silently requested time
// travel; now both directions are rejected with an err naming the value.
TEST_F(ServerTest, AdvanceRejectsTimeTravel) {
  Socket sock = Connect();
  EXPECT_EQ(Roundtrip(sock, "advance by=3600").rfind("ok now=3600", 0), 0u);

  const std::string by_err = Roundtrip(sock, "advance by=-100");
  EXPECT_EQ(by_err.rfind("err msg=", 0), 0u) << by_err;
  EXPECT_NE(by_err.find("-100"), std::string::npos) << by_err;

  const std::string to_err = Roundtrip(sock, "advance to=5");
  EXPECT_EQ(to_err.rfind("err msg=", 0), 0u) << to_err;
  EXPECT_NE(to_err.find("to=5"), std::string::npos) << to_err;
  EXPECT_NE(to_err.find("3600"), std::string::npos) << to_err;

  // Neither rejected request moved the clock.
  EXPECT_EQ(Roundtrip(sock, "ping"), "ok now=3600");
}

// Regression: `whatif mechanisms=` used to run duplicates twice and drop
// empty CSV segments silently; unknown names surfaced as a raw parse error
// without the registered list.
TEST_F(ServerTest, WhatifDedupesAndValidatesMechanisms) {
  Socket sock = Connect();

  SendLine(sock, "whatif mechanisms=baseline,baseline,baseline "
                 "size=8 compute=60 submit=+60");
  EXPECT_EQ(sock.RecvLine(), std::optional<std::string>("ok n=1"));
  const std::optional<std::string> only = sock.RecvLine();
  ASSERT_TRUE(only.has_value());
  EXPECT_EQ(only->rfind("mech=baseline ", 0), 0u);
  EXPECT_EQ(sock.RecvLine(), std::optional<std::string>("end"));

  const std::string unknown =
      Roundtrip(sock, "whatif mechanisms=nosuch size=8 compute=60 submit=+60");
  EXPECT_EQ(unknown.rfind("err msg=", 0), 0u) << unknown;
  EXPECT_NE(unknown.find("nosuch"), std::string::npos) << unknown;
  EXPECT_NE(unknown.find("registered:"), std::string::npos) << unknown;

  const std::string empty = Roundtrip(
      sock, "whatif mechanisms=baseline,,baseline size=8 compute=60 submit=+60");
  EXPECT_EQ(empty.rfind("err msg=", 0), 0u) << empty;
  // Wire err messages are percent-escaped.
  EXPECT_NE(empty.find("empty%20mechanism%20token"), std::string::npos) << empty;
}

TEST_F(ServerTest, WatchStreamsTicksAsTimeAdvances) {
  Socket watcher = Connect();
  SendLine(watcher, "watch every=600 count=3");
  EXPECT_EQ(watcher.RecvLine(), std::optional<std::string>("ok n=3 every=600"));
  // Tick 0 fires immediately at the current now.
  const std::optional<std::string> tick0 = watcher.RecvLine();
  ASSERT_TRUE(tick0.has_value());
  EXPECT_EQ(tick0->rfind("tick seq=0 now=0 ", 0), 0u) << *tick0;
  EXPECT_NE(tick0->find(" utilization="), std::string::npos) << *tick0;
  EXPECT_NE(tick0->find(" util_mean="), std::string::npos) << *tick0;

  // A concurrent mutator advances past the remaining tick boundaries.
  Socket driver = Connect();
  EXPECT_EQ(Roundtrip(driver, "advance by=1800").rfind("ok now=1800", 0), 0u);

  const std::optional<std::string> tick1 = watcher.RecvLine();
  ASSERT_TRUE(tick1.has_value());
  EXPECT_EQ(tick1->rfind("tick seq=1 now=1800 ", 0), 0u) << *tick1;
  const std::optional<std::string> tick2 = watcher.RecvLine();
  ASSERT_TRUE(tick2.has_value());
  EXPECT_EQ(tick2->rfind("tick seq=2 now=1800 ", 0), 0u) << *tick2;
  EXPECT_EQ(watcher.RecvLine(), std::optional<std::string>("end"));

  // The watch connection is still a normal verb connection afterwards.
  EXPECT_EQ(Roundtrip(watcher, "ping"), "ok now=1800");
}

TEST_F(ServerTest, WatchRejectsBadArguments) {
  Socket sock = Connect();
  const std::string bad_every = Roundtrip(sock, "watch every=0");
  EXPECT_EQ(bad_every.rfind("err msg=", 0), 0u) << bad_every;
  const std::string bad_count = Roundtrip(sock, "watch count=-1");
  EXPECT_EQ(bad_count.rfind("err msg=", 0), 0u) << bad_count;
  const std::string typo = Roundtrip(sock, "watch evry=60");
  EXPECT_EQ(typo.rfind("err msg=", 0), 0u) << typo;
  EXPECT_EQ(Roundtrip(sock, "ping"), "ok now=0");
}

TEST_F(ServerTest, RestoreRewindsToASnapshot) {
  const std::string path = testing::TempDir() + "hs_restore_test.snap";
  Socket sock = Connect();
  EXPECT_EQ(Roundtrip(sock, "advance by=3600").rfind("ok now=3600", 0), 0u);
  EXPECT_EQ(
      Roundtrip(sock, "submit class=rigid size=16 compute=600 submit=+300")
          .rfind("ok job=", 0),
      0u);
  const std::string snap = Roundtrip(sock, "snapshot path=" + path);
  EXPECT_EQ(snap.rfind("ok path=", 0), 0u) << snap;

  EXPECT_EQ(Roundtrip(sock, "advance by=7200").rfind("ok now=10800", 0), 0u);

  const std::string restored = Roundtrip(sock, "restore path=" + path);
  EXPECT_EQ(restored.rfind("ok path=", 0), 0u) << restored;
  EXPECT_NE(restored.find("ops=1"), std::string::npos) << restored;
  EXPECT_NE(restored.find("now=3600"), std::string::npos) << restored;
  EXPECT_EQ(Roundtrip(sock, "ping"), "ok now=3600");

  // Bad paths come back as errors, not dead servers.
  const std::string missing = Roundtrip(sock, "restore path=/nonexistent/x.snap");
  EXPECT_EQ(missing.rfind("err msg=", 0), 0u) << missing;
  EXPECT_EQ(Roundtrip(sock, "restore").rfind("err msg=", 0), 0u);
}

}  // namespace
}  // namespace hs
