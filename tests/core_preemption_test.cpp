// Preemption-cost ordering and victim selection (core/preemption_cost.h)
// plus the CUP planning helpers (core/advance_notice.h).
#include <gtest/gtest.h>

#include "core/advance_notice.h"
#include "core/arrival.h"
#include "core/preemption_cost.h"
#include "hybrid_harness.h"

namespace hs {
namespace {

using test::HybridHarness;
using test::TestConfig;
using test::TraceBuilder;

Mechanism NPaa() { return {NoticePolicy::kNone, ArrivalPolicy::kPaa}; }

TEST(SelectVictimsTest, GreedyPrefixCoversNeed) {
  const std::vector<PreemptionCandidate> candidates = {
      {1, 10, 100.0, false}, {2, 20, 200.0, false}, {3, 30, 300.0, false}};
  const auto victims = SelectVictims(candidates, 25);
  ASSERT_EQ(victims.size(), 2u);
  EXPECT_EQ(victims[0].id, 1);
  EXPECT_EQ(victims[1].id, 2);
}

TEST(SelectVictimsTest, InsufficientSupplyReturnsEmpty) {
  const std::vector<PreemptionCandidate> candidates = {{1, 10, 100.0, false}};
  EXPECT_TRUE(SelectVictims(candidates, 11).empty());
}

TEST(SelectVictimsTest, ZeroNeedReturnsEmpty) {
  const std::vector<PreemptionCandidate> candidates = {{1, 10, 100.0, false}};
  EXPECT_TRUE(SelectVictims(candidates, 0).empty());
}

TEST(SelectVictimsTest, ExactCover) {
  const std::vector<PreemptionCandidate> candidates = {{1, 10, 1.0, false},
                                                       {2, 10, 2.0, false}};
  const auto victims = SelectVictims(candidates, 20);
  EXPECT_EQ(victims.size(), 2u);
}

TEST(ListCandidatesTest, SortedByCostAndFiltersProtected) {
  TraceBuilder builder(64);
  const JobId rigid = builder.AddRigid(0, 16, 10000, 500, 20000);
  const JobId mall = builder.AddMalleable(0, 16, 4, 10000, 100, 20000);
  const JobId od = builder.AddOnDemand(0, 16, 10000, 0, 10000);
  HybridHarness h(std::move(builder).Build(), TestConfig(NPaa()));
  h.Run(5000);
  const auto candidates = ListPreemptionCandidates(h.sched_.engine(), 5000);
  // The on-demand job is excluded; the malleable job (setup-only cost)
  // precedes the rigid one (lost work).
  ASSERT_EQ(candidates.size(), 2u);
  EXPECT_EQ(candidates[0].id, mall);
  EXPECT_TRUE(candidates[0].malleable);
  EXPECT_EQ(candidates[1].id, rigid);
  EXPECT_LT(candidates[0].cost, candidates[1].cost);
  (void)od;
}

TEST(ExpectedReleasesTest, CountsOnlyJobsEndingInWindow) {
  TraceBuilder builder(64);
  builder.AddRigid(0, 16, 1000, 0, 1000);    // est end 1000
  builder.AddRigid(0, 16, 1000, 0, 50000);   // est end 50000 (pessimistic user)
  HybridHarness h(std::move(builder).Build(), TestConfig(NPaa()));
  h.Run(0);
  EXPECT_EQ(ExpectedReleaseNodes(h.sched_.engine(), 0, 2000), 16);
  EXPECT_EQ(ExpectedReleaseNodes(h.sched_.engine(), 0, 60000), 32);
  EXPECT_EQ(ExpectedReleaseNodes(h.sched_.engine(), 0, 500), 0);
}

TEST(CupPlanTest, PrefersCheapVictims) {
  TraceBuilder builder(64);
  builder.AddRigid(0, 24, 50000, 1000, 100000);       // expensive: lost work
  builder.AddMalleable(0, 24, 6, 50000, 100, 100000);  // cheap: setup only
  HybridHarness h(std::move(builder).Build(), TestConfig(NPaa()));
  h.Run(5000);
  const auto plan =
      PlanCupPreemptions(h.sched_.engine(), 5000, 7000, 20, 2 * kMinute);
  ASSERT_GE(plan.size(), 1u);
  EXPECT_EQ(plan[0].victim, 1);
  EXPECT_TRUE(plan[0].drain);
  EXPECT_EQ(plan[0].fire_time, 7000 - 2 * kMinute);
}

TEST(CupPlanTest, SkipsJobsEndingBeforeArrival) {
  TraceBuilder builder(64);
  builder.AddRigid(0, 24, 1000, 0, 1000);  // ends long before pa
  HybridHarness h(std::move(builder).Build(), TestConfig(NPaa()));
  h.Run(0);
  const auto plan = PlanCupPreemptions(h.sched_.engine(), 0, 5000, 20, 120);
  EXPECT_TRUE(plan.empty());
}

TEST(CupPlanTest, CoversDeficitWhenPossible) {
  TraceBuilder builder(64);
  builder.AddRigid(0, 16, 50000, 100, 100000);
  builder.AddRigid(0, 16, 50000, 100, 100000);
  builder.AddRigid(0, 16, 50000, 100, 100000);
  HybridHarness h(std::move(builder).Build(), TestConfig(NPaa()));
  h.Run(100);
  const auto plan = PlanCupPreemptions(h.sched_.engine(), 100, 5000, 40, 120);
  int covered = 0;
  for (const auto& step : plan) covered += step.alloc;
  EXPECT_GE(covered, 40);
  EXPECT_EQ(plan.size(), 3u);  // 16+16 < 40, needs all three
}

TEST(ShrinkSupplyTest, ListsOnlyFlexibleRunningJobs) {
  TraceBuilder builder(64);
  builder.AddRigid(0, 16, 10000, 0, 20000);
  const JobId mall = builder.AddMalleable(0, 24, 6, 10000, 0, 20000);
  HybridHarness h(std::move(builder).Build(), TestConfig(NPaa()));
  h.Run(100);
  const auto shrinkable = ListShrinkable(h.sched_.engine());
  ASSERT_EQ(shrinkable.size(), 1u);
  EXPECT_EQ(shrinkable[0].first, mall);
  EXPECT_EQ(shrinkable[0].second, 18);  // 24 - 6
  EXPECT_EQ(TotalShrinkSupply(h.sched_.engine()), 18);
}

}  // namespace
}  // namespace hs
