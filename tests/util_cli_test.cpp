#include "util/cli.h"

#include <gtest/gtest.h>

namespace hs {
namespace {

CliArgs Make(std::initializer_list<const char*> args) {
  std::vector<const char*> argv(args);
  return CliArgs(static_cast<int>(argv.size()), argv.data());
}

TEST(CliTest, ParsesKeyValueFlags) {
  const auto args = Make({"prog", "--weeks=4", "--name=test"});
  EXPECT_EQ(args.GetInt("weeks", 0), 4);
  EXPECT_EQ(args.GetString("name", ""), "test");
}

TEST(CliTest, BooleanFlagWithoutValue) {
  const auto args = Make({"prog", "--verbose"});
  EXPECT_TRUE(args.GetBool("verbose", false));
  EXPECT_TRUE(args.Has("verbose"));
}

TEST(CliTest, DefaultsWhenAbsent) {
  const auto args = Make({"prog"});
  EXPECT_EQ(args.GetInt("missing", 9), 9);
  EXPECT_EQ(args.GetString("missing", "d"), "d");
  EXPECT_DOUBLE_EQ(args.GetDouble("missing", 1.5), 1.5);
  EXPECT_FALSE(args.GetBool("missing", false));
}

TEST(CliTest, PositionalArguments) {
  const auto args = Make({"prog", "input.swf", "--flag", "output.csv"});
  ASSERT_EQ(args.positional().size(), 2u);
  EXPECT_EQ(args.positional()[0], "input.swf");
  EXPECT_EQ(args.positional()[1], "output.csv");
}

TEST(CliTest, DoubleParsing) {
  const auto args = Make({"prog", "--scale=0.5"});
  EXPECT_DOUBLE_EQ(args.GetDouble("scale", 0.0), 0.5);
}

TEST(CliTest, BoolVariants) {
  EXPECT_TRUE(Make({"p", "--x=yes"}).GetBool("x", false));
  EXPECT_TRUE(Make({"p", "--x=1"}).GetBool("x", false));
  EXPECT_FALSE(Make({"p", "--x=no"}).GetBool("x", true));
}

TEST(CliTest, ProgramName) {
  EXPECT_EQ(Make({"prog"}).program(), "prog");
}

TEST(CliTest, RejectUnknownPassesWhenAllFlagsWereRead) {
  const auto args = Make({"prog", "--weeks=4", "--verbose"});
  (void)args.GetInt("weeks", 0);
  (void)args.GetBool("verbose", false);
  EXPECT_NO_THROW(args.RejectUnknown());
  EXPECT_TRUE(args.UnknownFlags().empty());
}

TEST(CliTest, RejectUnknownThrowsOnTypoFlags) {
  const auto args = Make({"prog", "--weeks=4", "--seeed=3"});
  (void)args.GetInt("weeks", 0);
  (void)args.GetInt("seed", 1);  // the intended flag, never passed
  EXPECT_EQ(args.UnknownFlags(), std::vector<std::string>{"seeed"});
  try {
    args.RejectUnknown();
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("--seeed"), std::string::npos);
  }
}

TEST(CliTest, ProbingAbsentFlagsDoesNotMaskUnknownOnes) {
  const auto args = Make({"prog", "--mystery=1"});
  (void)args.Has("known");
  EXPECT_THROW(args.RejectUnknown(), std::invalid_argument);
}

}  // namespace
}  // namespace hs
