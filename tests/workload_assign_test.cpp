#include "workload/type_assign.h"

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "workload/theta_model.h"

namespace hs {
namespace {

Trace MakeTrace() {
  ThetaConfig config;
  config.weeks = 2;
  return GenerateThetaTrace(config, 42);
}

TEST(TypeAssignTest, ProjectsAreHomogeneousExceptLargeOnDemand) {
  Trace trace = MakeTrace();
  Rng rng(7);
  AssignJobTypes(trace, {}, rng);
  std::map<std::int32_t, std::set<JobClass>> classes_by_project;
  const int large = trace.num_nodes / 2;
  for (const auto& job : trace.jobs) {
    if (job.size > large) continue;  // reassignment may differ
    classes_by_project[job.project].insert(job.klass);
  }
  for (const auto& [project, classes] : classes_by_project) {
    // A project is allowed two classes only if its on-demand jobs were
    // reassigned; small jobs of one project must agree.
    EXPECT_LE(classes.size(), 2u) << "project " << project;
  }
}

TEST(TypeAssignTest, NoLargeOnDemandJobsSurvive) {
  Trace trace = MakeTrace();
  Rng rng(8);
  AssignJobTypes(trace, {}, rng);
  for (const auto& job : trace.jobs) {
    if (job.is_on_demand()) {
      EXPECT_LE(job.size, trace.num_nodes / 2);
    }
  }
}

TEST(TypeAssignTest, SharesRoughlyMatchConfig) {
  Trace trace = MakeTrace();
  Rng rng(9);
  AssignJobTypes(trace, {}, rng);
  std::map<std::int32_t, JobClass> project_class;
  for (const auto& job : trace.jobs) {
    if (job.size <= trace.num_nodes / 2) project_class[job.project] = job.klass;
  }
  std::size_t od = 0, rigid = 0, malleable = 0;
  for (const auto& [p, k] : project_class) {
    od += (k == JobClass::kOnDemand);
    rigid += (k == JobClass::kRigid);
    malleable += (k == JobClass::kMalleable);
  }
  const double n = static_cast<double>(project_class.size());
  EXPECT_NEAR(rigid / n, 0.60, 0.12);
  EXPECT_NEAR(od / n, 0.10, 0.08);
  EXPECT_NEAR(malleable / n, 0.30, 0.12);
}

TEST(TypeAssignTest, MalleableMinSizeIsTwentyPercent) {
  Trace trace = MakeTrace();
  Rng rng(10);
  AssignJobTypes(trace, {}, rng);
  for (const auto& job : trace.jobs) {
    if (job.is_malleable()) {
      EXPECT_EQ(job.min_size, (job.size + 4) / 5);  // ceil(0.2 * size)
      EXPECT_GE(job.min_size, 1);
    } else {
      EXPECT_EQ(job.min_size, job.size);
    }
  }
}

TEST(TypeAssignTest, MalleableSetupBelowFivePercent) {
  Trace trace = MakeTrace();
  Rng rng(11);
  AssignJobTypes(trace, {}, rng);
  for (const auto& job : trace.jobs) {
    if (job.is_malleable()) {
      EXPECT_LE(static_cast<double>(job.setup_time), 0.051 * job.compute_time);
    }
  }
}

TEST(TypeAssignTest, ResultStillValidTrace) {
  Trace trace = MakeTrace();
  Rng rng(12);
  AssignJobTypes(trace, {}, rng);
  EXPECT_EQ(trace.Validate(), "");
}

TEST(TypeAssignTest, DeterministicInRngSeed) {
  Trace a = MakeTrace(), b = MakeTrace();
  Rng ra(13), rb(13);
  AssignJobTypes(a, {}, ra);
  AssignJobTypes(b, {}, rb);
  for (std::size_t i = 0; i < a.jobs.size(); ++i) {
    EXPECT_EQ(a.jobs[i].klass, b.jobs[i].klass);
  }
}

TEST(TypeAssignTest, CustomSharesRespected) {
  Trace trace = MakeTrace();
  TypeAssignConfig config;
  config.on_demand_project_share = 0.0;
  config.rigid_project_share = 1.0;
  Rng rng(14);
  AssignJobTypes(trace, config, rng);
  EXPECT_EQ(trace.CountClass(JobClass::kOnDemand), 0u);
  EXPECT_EQ(trace.CountClass(JobClass::kMalleable), 0u);
}

}  // namespace
}  // namespace hs
