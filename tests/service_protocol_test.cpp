// Wire-protocol tests: escaping, request parsing, job-record round-trips,
// the verb dispatcher's response grammar, and snapshot/restore equivalence
// (event-sourced replay must rebuild the exact session).
#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "service/protocol.h"
#include "service/server.h"
#include "service/service_session.h"
#include "util/time.h"

namespace hs {
namespace {

TEST(ProtocolTest, EscapeRoundTrips) {
  const std::string nasty = "CUP&SPAA/FCFS/W5 preset=midsize %20\nend";
  const std::string escaped = EscapeField(nasty);
  EXPECT_EQ(escaped.find(' '), std::string::npos);
  EXPECT_EQ(escaped.find('\n'), std::string::npos);
  EXPECT_EQ(UnescapeField(escaped), nasty);
  EXPECT_EQ(EscapeField(""), "");
  EXPECT_EQ(UnescapeField("a%20b"), "a b");
  EXPECT_EQ(UnescapeField("100%25"), "100%");
}

TEST(ProtocolTest, UnescapeRejectsMalformedEscapes) {
  EXPECT_THROW(UnescapeField("%2"), std::invalid_argument);   // truncated
  EXPECT_THROW(UnescapeField("abc%"), std::invalid_argument);  // truncated
  EXPECT_THROW(UnescapeField("%zz"), std::invalid_argument);  // not hex
}

TEST(ProtocolTest, FmtExactDoubleRoundTripsBitExactly) {
  for (const double value : {0.0, 1.0 / 3.0, 0.8431372549019608, 1e-17,
                             123456789.123456789, -2.5e300}) {
    const std::string text = FmtExactDouble(value);
    const double parsed = std::strtod(text.c_str(), nullptr);
    EXPECT_EQ(std::memcmp(&parsed, &value, sizeof value), 0) << text;
  }
}

TEST(ProtocolTest, RequestParsesVerbAndArgs) {
  const Request req = Request::Parse("submit class=od size=128 label=a%20b");
  EXPECT_EQ(req.verb(), "submit");
  EXPECT_TRUE(req.Has("class"));
  EXPECT_FALSE(req.Has("missing"));
  EXPECT_EQ(req.GetString("class", ""), "od");
  EXPECT_EQ(req.GetInt("size", 0), 128);
  EXPECT_EQ(req.GetString("label", ""), "a b");  // unescaped on parse
  EXPECT_NO_THROW(req.RejectUnknown());
}

TEST(ProtocolTest, RequestRejectsMalformedLines) {
  EXPECT_THROW(Request::Parse(""), std::invalid_argument);
  EXPECT_THROW(Request::Parse("verb naked-token"), std::invalid_argument);
  EXPECT_THROW(Request::Parse("verb =value"), std::invalid_argument);
  const Request req = Request::Parse("verb size=big");
  EXPECT_THROW(req.GetInt("size", 0), std::invalid_argument);
}

TEST(ProtocolTest, RejectUnknownCatchesTypos) {
  const Request req = Request::Parse("advance too=100");
  req.GetTime("to", 0, 0);
  EXPECT_THROW(req.RejectUnknown(), std::invalid_argument);
}

TEST(ProtocolTest, GetTimeAcceptsRelativeOffsets) {
  const Request req = Request::Parse("advance to=+600 at=3600");
  EXPECT_EQ(req.GetTime("to", 1000, 0), 1600);   // '+D' is now-relative
  EXPECT_EQ(req.GetTime("at", 1000, 0), 3600);   // absolute stays absolute
  EXPECT_EQ(req.GetTime("none", 1000, 42), 42);  // default when absent
}

TEST(ProtocolTest, FormatRequestEscapesValues) {
  EXPECT_EQ(FormatRequest("snapshot", {{"path", "/tmp/a b.snap"}}),
            "snapshot path=/tmp/a%20b.snap");
}

TEST(ProtocolTest, JobFieldsRoundTrip) {
  JobRecord job;
  job.id = 77;
  job.klass = JobClass::kOnDemand;
  job.size = 256;
  job.min_size = 256;
  job.submit_time = 5000;
  job.compute_time = 3600;
  job.estimate = 4000;
  job.setup_time = 30;
  job.notice = NoticeClass::kEarly;
  job.notice_time = 4000;
  job.predicted_arrival = 5500;
  job.project = 3;

  const std::string fields = FormatJobFields(job, /*with_id=*/true);
  const Request req = Request::Parse("op " + fields);
  EXPECT_EQ(ParseJobId(req), 77);
  const JobRecord parsed = ParseJobFields(req, /*now=*/0);
  EXPECT_NO_THROW(req.RejectUnknown());

  EXPECT_EQ(parsed.klass, job.klass);
  EXPECT_EQ(parsed.size, job.size);
  EXPECT_EQ(parsed.min_size, job.min_size);
  EXPECT_EQ(parsed.submit_time, job.submit_time);
  EXPECT_EQ(parsed.compute_time, job.compute_time);
  EXPECT_EQ(parsed.estimate, job.estimate);
  EXPECT_EQ(parsed.setup_time, job.setup_time);
  EXPECT_EQ(parsed.notice, NoticeClass::kEarly);  // derived: submit < predicted
  EXPECT_EQ(parsed.notice_time, job.notice_time);
  EXPECT_EQ(parsed.predicted_arrival, job.predicted_arrival);
  EXPECT_EQ(parsed.project, job.project);
}

TEST(ProtocolTest, ParseJobFieldsDefaultsAndValidation) {
  // Defaults: submit = now + 1, min = size, estimate = setup + compute.
  const JobRecord job = ParseJobFields(
      Request::Parse("submit class=rigid size=64 compute=3600 setup=100"), 900);
  EXPECT_EQ(job.submit_time, 901);
  EXPECT_EQ(job.min_size, 64);
  EXPECT_EQ(job.estimate, 3700);
  EXPECT_EQ(job.notice, NoticeClass::kNone);
  EXPECT_EQ(job.project, -1);

  // notice= and predicted= must pair, and only od jobs carry them.
  EXPECT_THROW(ParseJobFields(Request::Parse("submit class=od size=1 notice=5"), 0),
               std::invalid_argument);
  EXPECT_THROW(
      ParseJobFields(
          Request::Parse("submit class=rigid size=1 notice=5 predicted=9"), 0),
      std::invalid_argument);
  EXPECT_THROW(ParseJobFields(Request::Parse("submit class=fluid size=1"), 0),
               std::invalid_argument);
}

// --- dispatcher grammar ------------------------------------------------------

ServiceSession TinyService() {
  SimSpec spec = SimSpec::Parse("baseline/FCFS/W5/preset=midsize");
  spec.seed = 9;
  return ServiceSession(spec);
}

TEST(DispatcherTest, PingAdvanceSubmitQueryFlow) {
  ServiceSession session = TinyService();
  EXPECT_EQ(HandleRequestLine(session, "ping").lines,
            std::vector<std::string>{"ok now=0"});

  const WireResponse advance = HandleRequestLine(session, "advance by=3600");
  ASSERT_EQ(advance.lines.size(), 1u);
  EXPECT_EQ(advance.lines[0].rfind("ok now=3600 events=", 0), 0u);

  const WireResponse submit = HandleRequestLine(
      session, "submit class=rigid size=32 compute=600 submit=+60");
  ASSERT_EQ(submit.lines.size(), 1u);
  const std::string expected_id =
      std::to_string(session.base_trace().jobs.size());
  EXPECT_EQ(submit.lines[0],
            "ok job=" + expected_id + " submit=3660");

  const WireResponse query =
      HandleRequestLine(session, "query-job job=" + expected_id);
  ASSERT_EQ(query.lines.size(), 1u);
  EXPECT_EQ(query.lines[0].rfind("ok job=" + expected_id + " state=pending", 0),
            0u)
      << query.lines[0];

  const WireResponse cancel =
      HandleRequestLine(session, "cancel job=" + expected_id);
  EXPECT_EQ(cancel.lines, std::vector<std::string>{"ok job=" + expected_id});
  const WireResponse requery =
      HandleRequestLine(session, "query-job job=" + expected_id);
  EXPECT_NE(requery.lines[0].find("state=canceled"), std::string::npos);
}

TEST(DispatcherTest, ErrorsComeBackAsErrLinesNeverThrows) {
  ServiceSession session = TinyService();
  for (const char* bad : {
           "frobnicate",                    // unknown verb
           "advance",                       // neither to= nor by=
           "advance to=5 by=5",             // both
           "advance to=-100",               // into the past (session threw)
           "query-job job=999999",          // unknown job
           "cancel job=999999",             // uncancelable
           "submit class=rigid size=32 compute=60 submit=0",  // not future
           "submit size=32 compute=60 color=red",             // unknown key
           "whatif mechanisms= size=1 compute=1",             // empty csv
       }) {
    const WireResponse resp = HandleRequestLine(session, bad);
    ASSERT_EQ(resp.lines.size(), 1u) << bad;
    EXPECT_EQ(resp.lines[0].rfind("err msg=", 0), 0u) << bad << " -> "
                                                      << resp.lines[0];
    EXPECT_FALSE(resp.shutdown);
  }
}

TEST(DispatcherTest, WhatIfFramesAnswersWithSentinel) {
  ServiceSession session = TinyService();
  HandleRequestLine(session, "advance to=7200");
  const WireResponse resp = HandleRequestLine(
      session,
      "whatif mechanisms=baseline,CUP&SPAA size=64 compute=600 submit=+60");
  ASSERT_EQ(resp.lines.size(), 4u);
  EXPECT_EQ(resp.lines[0], "ok n=2");
  EXPECT_EQ(resp.lines[1].rfind("mech=baseline started=", 0), 0u);
  EXPECT_EQ(resp.lines[2].rfind("mech=CUP&SPAA started=", 0), 0u);
  EXPECT_EQ(resp.lines[3], "end");
}

TEST(DispatcherTest, ShutdownSetsTheFlag) {
  ServiceSession session = TinyService();
  const WireResponse resp = HandleRequestLine(session, "shutdown");
  EXPECT_EQ(resp.lines, std::vector<std::string>{"ok bye"});
  EXPECT_TRUE(resp.shutdown);
}

// --- snapshot / restore ------------------------------------------------------

TEST(SnapshotTest, RestoreRebuildsTheExactSession) {
  ServiceSession session = TinyService();
  session.AdvanceTo(kDay);

  JobRecord od;
  od.klass = JobClass::kOnDemand;
  od.size = od.min_size = 128;
  od.notice = NoticeClass::kAccurate;
  od.notice_time = session.now() + 5 * kMinute;
  od.submit_time = session.now() + kHour;
  od.predicted_arrival = od.submit_time;
  od.compute_time = kHour;
  od.estimate = kHour;
  const JobId first = session.Submit(od);

  JobRecord doomed;
  doomed.klass = JobClass::kRigid;
  doomed.size = doomed.min_size = 32;
  doomed.submit_time = session.now() + 2 * kHour;
  doomed.compute_time = kHour;
  doomed.estimate = kHour;
  const JobId second = session.Submit(doomed);
  EXPECT_TRUE(session.Cancel(second));
  session.AdvanceTo(2 * kDay);

  const std::string snapshot = session.SnapshotText();
  EXPECT_EQ(snapshot.rfind(kWireGreeting, 0), 0u);

  const std::unique_ptr<ServiceSession> restored =
      ServiceSession::RestoreText(snapshot);
  EXPECT_EQ(restored->now(), session.now());
  EXPECT_EQ(restored->ops_logged(), session.ops_logged());
  EXPECT_EQ(restored->events_processed(), session.events_processed());
  // Replay is exact: re-snapshotting the restored session is byte-identical.
  EXPECT_EQ(restored->SnapshotText(), snapshot);
  // And the restored session answers queries like the live one.
  EXPECT_EQ(HandleRequestLine(*restored, "query-metrics").lines,
            HandleRequestLine(session, "query-metrics").lines);
  EXPECT_EQ(HandleRequestLine(*restored, "query-job job=" + std::to_string(first)).lines,
            HandleRequestLine(session, "query-job job=" + std::to_string(first)).lines);
}

TEST(SnapshotTest, RestoreRejectsMalformedText) {
  EXPECT_THROW(ServiceSession::RestoreText(""), std::invalid_argument);
  EXPECT_THROW(ServiceSession::RestoreText("# hs-shard v1\n"),
               std::invalid_argument);
  const std::string good = TinyService().SnapshotText();
  // Drop the trailing 'end' line: truncation must be loud.
  const std::string truncated = good.substr(0, good.rfind("end"));
  EXPECT_THROW(ServiceSession::RestoreText(truncated), std::invalid_argument);
  // Corrupt the op count.
  std::string miscounted = good;
  miscounted.replace(miscounted.rfind("end 0"), 5, "end 3");
  EXPECT_THROW(ServiceSession::RestoreText(miscounted), std::invalid_argument);
}

}  // namespace
}  // namespace hs
