// Shared test harness for HybridScheduler behaviour tests: a fluent trace
// builder for small hand-crafted scenarios plus a thin view over
// SimulationSession that exposes the simulator and scheduler internals
// mid-run.
#pragma once

#include <cassert>
#include <utility>

#include "exp/session.h"

namespace hs::test {

class TraceBuilder {
 public:
  explicit TraceBuilder(int num_nodes) { trace_.num_nodes = num_nodes; }

  /// Jobs must be added in non-decreasing submit order; ids are dense and
  /// equal to the order of addition.
  JobId AddRigid(SimTime submit, int size, SimTime compute, SimTime setup,
                 SimTime estimate) {
    JobRecord rec;
    rec.id = static_cast<JobId>(trace_.jobs.size());
    rec.klass = JobClass::kRigid;
    rec.submit_time = submit;
    rec.size = size;
    rec.min_size = size;
    rec.compute_time = compute;
    rec.setup_time = setup;
    rec.estimate = estimate;
    Push(rec);
    return rec.id;
  }

  JobId AddMalleable(SimTime submit, int max, int min, SimTime compute, SimTime setup,
                     SimTime estimate) {
    JobRecord rec;
    rec.id = static_cast<JobId>(trace_.jobs.size());
    rec.klass = JobClass::kMalleable;
    rec.submit_time = submit;
    rec.size = max;
    rec.min_size = min;
    rec.compute_time = compute;
    rec.setup_time = setup;
    rec.estimate = estimate;
    Push(rec);
    return rec.id;
  }

  /// `notice`: kNone means no advance notice; otherwise notice_time and
  /// predicted must be provided consistently with the category.
  JobId AddOnDemand(SimTime submit, int size, SimTime compute, SimTime setup,
                    SimTime estimate, NoticeClass notice = NoticeClass::kNone,
                    SimTime notice_time = kNever, SimTime predicted = kNever) {
    JobRecord rec;
    rec.id = static_cast<JobId>(trace_.jobs.size());
    rec.klass = JobClass::kOnDemand;
    rec.notice = notice;
    rec.submit_time = submit;
    rec.notice_time = notice_time;
    rec.predicted_arrival = predicted;
    rec.size = size;
    rec.min_size = size;
    rec.compute_time = compute;
    rec.setup_time = setup;
    rec.estimate = estimate;
    Push(rec);
    return rec.id;
  }

  Trace Build() && { return std::move(trace_); }

 private:
  void Push(const JobRecord& rec) {
    assert(trace_.jobs.empty() || trace_.jobs.back().submit_time <= rec.submit_time);
    trace_.jobs.push_back(rec);
  }

  Trace trace_;
};

/// A SimulationSession (which owns the full stack — trace, collector,
/// simulator, scheduler) plus direct references into its internals so
/// behaviour tests can inspect and poke the machinery mid-run.
class HybridHarness {
 public:
  HybridHarness(Trace trace, HybridConfig config)
      : session_(std::move(trace), config),
        trace_(session_.trace()),
        collector_(session_.collector()),
        sim_(session_.simulator()),
        sched_(session_.scheduler()) {}

  /// Runs to completion (or to `until`).
  void Run(SimTime until = kNever) { session_.Run(until); }

  SimResult Finalize() const { return session_.Finalize(); }

  SimulationSession session_;
  const Trace& trace_;
  Collector& collector_;
  Simulator& sim_;
  HybridScheduler& sched_;
};

/// Paper-default config for a mechanism with checkpointing effectively
/// disabled (tiny traces never reach a Daly interval anyway) so tests can
/// reason about exact timings.
inline HybridConfig TestConfig(const Mechanism& mechanism) {
  HybridConfig config = MakePaperConfig(mechanism);
  config.engine.checkpoint.node_mtbf = 1000LL * 365 * kDay;
  return config;
}

}  // namespace hs::test
