// Shared test harness for HybridScheduler behaviour tests: a fluent trace
// builder for small hand-crafted scenarios plus an owning wrapper that
// exposes the simulator and scheduler internals mid-run.
#pragma once

#include <cassert>
#include <utility>

#include "core/hybrid_scheduler.h"

namespace hs::test {

class TraceBuilder {
 public:
  explicit TraceBuilder(int num_nodes) { trace_.num_nodes = num_nodes; }

  /// Jobs must be added in non-decreasing submit order; ids are dense and
  /// equal to the order of addition.
  JobId AddRigid(SimTime submit, int size, SimTime compute, SimTime setup,
                 SimTime estimate) {
    JobRecord rec;
    rec.id = static_cast<JobId>(trace_.jobs.size());
    rec.klass = JobClass::kRigid;
    rec.submit_time = submit;
    rec.size = size;
    rec.min_size = size;
    rec.compute_time = compute;
    rec.setup_time = setup;
    rec.estimate = estimate;
    Push(rec);
    return rec.id;
  }

  JobId AddMalleable(SimTime submit, int max, int min, SimTime compute, SimTime setup,
                     SimTime estimate) {
    JobRecord rec;
    rec.id = static_cast<JobId>(trace_.jobs.size());
    rec.klass = JobClass::kMalleable;
    rec.submit_time = submit;
    rec.size = max;
    rec.min_size = min;
    rec.compute_time = compute;
    rec.setup_time = setup;
    rec.estimate = estimate;
    Push(rec);
    return rec.id;
  }

  /// `notice`: kNone means no advance notice; otherwise notice_time and
  /// predicted must be provided consistently with the category.
  JobId AddOnDemand(SimTime submit, int size, SimTime compute, SimTime setup,
                    SimTime estimate, NoticeClass notice = NoticeClass::kNone,
                    SimTime notice_time = kNever, SimTime predicted = kNever) {
    JobRecord rec;
    rec.id = static_cast<JobId>(trace_.jobs.size());
    rec.klass = JobClass::kOnDemand;
    rec.notice = notice;
    rec.submit_time = submit;
    rec.notice_time = notice_time;
    rec.predicted_arrival = predicted;
    rec.size = size;
    rec.min_size = size;
    rec.compute_time = compute;
    rec.setup_time = setup;
    rec.estimate = estimate;
    Push(rec);
    return rec.id;
  }

  Trace Build() && { return std::move(trace_); }

 private:
  void Push(const JobRecord& rec) {
    assert(trace_.jobs.empty() || trace_.jobs.back().submit_time <= rec.submit_time);
    trace_.jobs.push_back(rec);
  }

  Trace trace_;
};

/// Owns the full simulation stack and exposes it for inspection.
class HybridHarness : public EventHandler {
 public:
  HybridHarness(Trace trace, HybridConfig config)
      : trace_(std::move(trace)),
        collector_(config.instant_threshold),
        sim_(*this),
        sched_(trace_, config, collector_, sim_) {
    sched_.Prime();
  }

  void HandleEvent(const Event& e, Simulator& s) override { sched_.HandleEvent(e, s); }
  void OnQuiescent(SimTime now, Simulator& s) override { sched_.OnQuiescent(now, s); }

  /// Runs to completion (or to `until`).
  void Run(SimTime until = kNever) { sim_.Run(until); }

  SimResult Finalize() const {
    return collector_.Finalize(trace_.num_nodes,
                               sched_.engine().cluster().busy_node_seconds());
  }

  Trace trace_;
  Collector collector_;
  Simulator sim_;
  HybridScheduler sched_;
};

/// Paper-default config for a mechanism with checkpointing effectively
/// disabled (tiny traces never reach a Daly interval anyway) so tests can
/// reason about exact timings.
inline HybridConfig TestConfig(const Mechanism& mechanism) {
  HybridConfig config = MakePaperConfig(mechanism);
  config.engine.checkpoint.node_mtbf = 1000LL * 365 * kDay;
  return config;
}

}  // namespace hs::test
