#include "sched/backfill.h"

#include <gtest/gtest.h>

#include <deque>
#include <map>

namespace hs {
namespace {

/// A self-contained fixture: owns the records so WaitingJob pointers stay
/// valid, and supplies a simple wall estimator (rigid: estimate; malleable:
/// work / alloc).
class BackfillFixture {
 public:
  WaitingJob* AddRigid(JobId id, int size, SimTime estimate, SimTime submit = 0) {
    JobRecord& rec = records_[id];
    rec.id = id;
    rec.size = size;
    rec.min_size = size;
    rec.compute_time = estimate;
    rec.estimate = estimate;
    WaitingJob w;
    w.id = id;
    w.record = &rec;
    w.first_submit = submit;
    w.estimate_remaining = estimate;
    w.est_work_remaining = static_cast<std::int64_t>(estimate) * size;
    queue_storage_.push_back(w);
    return &queue_storage_.back();
  }

  WaitingJob* AddMalleable(JobId id, int max, int min, SimTime estimate) {
    WaitingJob* w = AddRigid(id, max, estimate);
    records_[id].klass = JobClass::kMalleable;
    records_[id].min_size = min;
    w->flexible = true;
    return w;
  }

  BackfillInput MakeInput(int free, SimTime now = 0) {
    BackfillInput input;
    input.free_nodes = free;
    input.now = now;
    for (const auto& w : queue_storage_) input.queue.push_back(&w);
    input.running = running;
    input.wall_estimate = [](const WaitingJob& w, int alloc) -> SimTime {
      if (w.record->is_malleable()) {
        return (w.est_work_remaining + alloc - 1) / alloc;
      }
      return w.estimate_remaining;
    };
    return input;
  }

  std::vector<RunningView> running;

 private:
  std::map<JobId, JobRecord> records_;
  std::deque<WaitingJob> queue_storage_;
};

TEST(BackfillTest, StartsJobsWhileTheyFit) {
  BackfillFixture fx;
  fx.AddRigid(1, 4, 100);
  fx.AddRigid(2, 4, 100);
  const auto result = EasyBackfill(fx.MakeInput(8));
  ASSERT_EQ(result.starts.size(), 2u);
  EXPECT_EQ(result.blocked_head, kNoJob);
}

TEST(BackfillTest, BlockedHeadGetsShadowReservation) {
  BackfillFixture fx;
  fx.AddRigid(1, 10, 100);
  fx.running = {{50, 6, 500}};  // running job ends at 500
  const auto result = EasyBackfill(fx.MakeInput(4));
  EXPECT_TRUE(result.starts.empty());
  EXPECT_EQ(result.blocked_head, 1);
  EXPECT_EQ(result.shadow_time, 500);
  EXPECT_EQ(result.extra_nodes, 0);  // 4 free + 6 released = exactly 10
}

TEST(BackfillTest, ExtraNodesComputedAtShadow) {
  BackfillFixture fx;
  fx.AddRigid(1, 8, 100);
  fx.running = {{50, 6, 500}};
  const auto result = EasyBackfill(fx.MakeInput(4));
  EXPECT_EQ(result.shadow_time, 500);
  EXPECT_EQ(result.extra_nodes, 2);  // 10 available - 8 needed
}

TEST(BackfillTest, ShortJobBackfillsBeforeShadow) {
  BackfillFixture fx;
  fx.AddRigid(1, 10, 1000);      // blocked head
  fx.AddRigid(2, 4, 400);        // ends at 400 < shadow 500: may jump ahead
  fx.running = {{50, 6, 500}};
  const auto result = EasyBackfill(fx.MakeInput(4));
  ASSERT_EQ(result.starts.size(), 1u);
  EXPECT_EQ(result.starts[0].job, 2);
  EXPECT_EQ(result.starts[0].alloc, 4);
}

TEST(BackfillTest, LongJobMustFitInExtraNodes) {
  BackfillFixture fx;
  fx.AddRigid(1, 8, 1000);   // blocked head: shadow 500, extra 2
  fx.AddRigid(2, 4, 9999);   // too long and too wide: must NOT start
  fx.AddRigid(3, 2, 9999);   // long but fits in the 2 extra nodes
  fx.running = {{50, 6, 500}};
  const auto result = EasyBackfill(fx.MakeInput(4));
  ASSERT_EQ(result.starts.size(), 1u);
  EXPECT_EQ(result.starts[0].job, 3);
  EXPECT_EQ(result.extra_nodes, 0);  // consumed
}

TEST(BackfillTest, BackfillNeverDelaysHead) {
  // Property: total nodes handed to jobs that outlive the shadow never
  // exceeds the extra count.
  BackfillFixture fx;
  fx.AddRigid(1, 9, 1000);  // head blocked: 3 free + 7 = 10 at 500, extra 1
  fx.AddRigid(2, 1, 9999);
  fx.AddRigid(3, 1, 9999);  // only one of these can run past shadow
  fx.running = {{50, 7, 500}};
  const auto result = EasyBackfill(fx.MakeInput(3));
  int past_shadow_nodes = 0;
  for (const auto& s : result.starts) past_shadow_nodes += s.alloc;
  EXPECT_LE(past_shadow_nodes, 1);
}

TEST(BackfillTest, MalleableHeadStartsAtMinWhenTight) {
  BackfillFixture fx;
  fx.AddMalleable(1, 16, 4, 100);
  const auto result = EasyBackfill(fx.MakeInput(6));
  ASSERT_EQ(result.starts.size(), 1u);
  EXPECT_EQ(result.starts[0].alloc, 6);  // min 4 <= 6 < max 16: take all free
}

TEST(BackfillTest, MalleableGetsMaxWhenRoomy) {
  BackfillFixture fx;
  fx.AddMalleable(1, 16, 4, 100);
  const auto result = EasyBackfill(fx.MakeInput(40));
  ASSERT_EQ(result.starts.size(), 1u);
  EXPECT_EQ(result.starts[0].alloc, 16);
}

TEST(BackfillTest, MalleableBelowMinBlocks) {
  BackfillFixture fx;
  fx.AddMalleable(1, 16, 8, 100);
  fx.running = {{50, 10, 700}};
  const auto result = EasyBackfill(fx.MakeInput(4));
  EXPECT_TRUE(result.starts.empty());
  EXPECT_EQ(result.blocked_head, 1);
  EXPECT_EQ(result.shadow_time, 700);
}

TEST(BackfillTest, HeldNodesReduceFreeNeed) {
  BackfillFixture fx;
  fx.AddRigid(1, 10, 100);
  auto input = fx.MakeInput(4);
  input.held_nodes = [](const WaitingJob&) { return 6; };  // 6 held elsewhere
  const auto result = EasyBackfill(input);
  ASSERT_EQ(result.starts.size(), 1u);
  EXPECT_EQ(result.starts[0].alloc, 10);  // 6 held + 4 free
}

TEST(BackfillTest, UnreachableHeadBlocksAllBackfill) {
  BackfillFixture fx;
  fx.AddRigid(1, 100, 100);  // impossible: nothing running, 4 free
  fx.AddRigid(2, 2, 10);
  const auto result = EasyBackfill(fx.MakeInput(4));
  EXPECT_TRUE(result.starts.empty());  // conservative: no backfill
  EXPECT_EQ(result.blocked_head, 1);
}

TEST(BackfillTest, QueueOrderPreservedForStarts) {
  BackfillFixture fx;
  fx.AddRigid(1, 2, 100);
  fx.AddRigid(2, 2, 100);
  fx.AddRigid(3, 2, 100);
  const auto result = EasyBackfill(fx.MakeInput(6));
  ASSERT_EQ(result.starts.size(), 3u);
  EXPECT_EQ(result.starts[0].job, 1);
  EXPECT_EQ(result.starts[1].job, 2);
  EXPECT_EQ(result.starts[2].job, 3);
}

TEST(BackfillTest, ShadowUsesEarliestSufficientRelease) {
  BackfillFixture fx;
  fx.AddRigid(1, 10, 100);
  fx.running = {{50, 4, 300}, {51, 4, 600}, {52, 4, 900}};
  const auto result = EasyBackfill(fx.MakeInput(2));
  // 2 free + 4@300 + 4@600 = 10 at t=600.
  EXPECT_EQ(result.shadow_time, 600);
  EXPECT_EQ(result.extra_nodes, 0);
}

}  // namespace
}  // namespace hs
