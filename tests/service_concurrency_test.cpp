// Concurrent multi-client stress: N client threads interleave mutating
// (submit/cancel/advance) and read (ping/query-*/whatif) verbs against one
// live ScheduleServer while a watcher streams metric ticks. The acceptance
// oracle: because every mutation is serialized through the op log, the
// final snapshot must byte-equal the snapshot of a cold session that
// replays that log serially — and the replayed session must answer
// query-metrics byte-identically to the live one.
#include <gtest/gtest.h>

#include <atomic>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "service/protocol.h"
#include "service/server.h"
#include "service/service_session.h"
#include "util/socket.h"

namespace hs {
namespace {

constexpr int kWorkers = 4;
constexpr int kIterations = 6;

class ConcurrencyTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SimSpec spec = SimSpec::Parse("CUP&SPAA/FCFS/W5/preset=midsize");
    spec.seed = 11;
    session_ = std::make_unique<ServiceSession>(spec);
    server_ = std::make_unique<ScheduleServer>(*session_, /*port=*/0);
    server_->set_watch_poll_ms(1);
    serve_thread_ = std::thread([this] { server_->Serve(); });
  }

  void TearDown() override {
    if (serve_thread_.joinable()) {
      try {
        Socket finisher = Connect();
        SendLine(finisher, "shutdown");
        (void)finisher.RecvLine();
      } catch (const std::exception&) {
      }
      serve_thread_.join();
    }
  }

  Socket Connect() {
    Socket sock = ConnectLoopback(server_->port());
    const std::optional<std::string> greeting = sock.RecvLine();
    EXPECT_EQ(greeting, std::optional<std::string>(kWireGreeting));
    return sock;
  }

  std::unique_ptr<ServiceSession> session_;
  std::unique_ptr<ScheduleServer> server_;
  std::thread serve_thread_;
};

/// One request, one single-line response; returns "" on I/O trouble.
std::string Roundtrip(Socket& sock, const std::string& request) {
  SendLine(sock, request);
  const std::optional<std::string> line = sock.RecvLine();
  return line.value_or("");
}

/// Reads a framed `ok n=K ... end` response to completion; returns the
/// number of body lines, or -1 on a non-framed (err) first line.
int DrainFramed(Socket& sock) {
  const std::optional<std::string> first = sock.RecvLine();
  if (!first.has_value() || first->rfind("ok n=", 0) != 0) return -1;
  int body = 0;
  for (;;) {
    const std::optional<std::string> line = sock.RecvLine();
    if (!line.has_value()) return -1;
    if (*line == "end") return body;
    ++body;
  }
}

TEST_F(ConcurrencyTest, InterleavedClientsKeepTheOpLogOracle) {
  std::atomic<int> failures{0};
  std::atomic<int> whatif_answers{0};

  // A watcher streams ticks for the whole stress window (unbounded count;
  // it is dropped when its socket closes at the end of the lambda). The
  // main thread waits for tick 0 before unleashing the workers so the
  // remaining ticks are guaranteed to see their advances.
  std::atomic<bool> watcher_ready{false};
  std::thread watcher([&] {
    try {
      Socket sock = ConnectLoopback(server_->port());
      (void)sock.RecvLine();  // greeting
      SendLine(sock, "watch every=300 count=0");
      const std::optional<std::string> head = sock.RecvLine();
      if (!head.has_value() || head->rfind("ok n=0 every=300", 0) != 0) {
        ++failures;
        watcher_ready = true;
        return;
      }
      const std::optional<std::string> tick0 = sock.RecvLine();
      if (!tick0.has_value() || tick0->rfind("tick seq=0 ", 0) != 0) {
        ++failures;
        watcher_ready = true;
        return;
      }
      watcher_ready = true;
      // Read a few more ticks, then hang up mid-stream (deliberately —
      // the server must shrug it off while under load).
      for (int i = 1; i < 4; ++i) {
        const std::optional<std::string> tick = sock.RecvLine();
        if (!tick.has_value() || tick->rfind("tick seq=", 0) != 0) {
          ++failures;
          return;
        }
      }
    } catch (const std::exception&) {
      ++failures;
      watcher_ready = true;
    }
  });
  while (!watcher_ready.load()) std::this_thread::yield();

  std::vector<std::thread> workers;
  for (int w = 0; w < kWorkers; ++w) {
    workers.emplace_back([&, w] {
      try {
        Socket sock = ConnectLoopback(server_->port());
        (void)sock.RecvLine();  // greeting
        for (int i = 0; i < kIterations; ++i) {
          // Mutators: advance and submit (relative times are resolved
          // under the writer lock, so they are always strictly future).
          if (Roundtrip(sock, "advance by=300").rfind("ok now=", 0) != 0) {
            ++failures;
          }
          const std::string submitted = Roundtrip(
              sock, "submit class=rigid size=8 compute=600 submit=+" +
                        std::to_string(60 + w * kIterations + i));
          if (submitted.rfind("ok job=", 0) != 0) ++failures;

          // Reads interleave freely.
          if (Roundtrip(sock, "ping").rfind("ok now=", 0) != 0) ++failures;
          if (Roundtrip(sock, "query-metrics").rfind("ok now=", 0) != 0) {
            ++failures;
          }
          if (Roundtrip(sock, "query-job job=0").rfind("ok job=0", 0) != 0) {
            ++failures;
          }

          // Cancel the job we just submitted half the time; it may
          // legitimately be refused if it already started.
          if (i % 2 == 0) {
            const JobId id = std::stoll(submitted.substr(7));
            const std::string canceled =
                Roundtrip(sock, "cancel job=" + std::to_string(id));
            if (canceled.rfind("ok", 0) != 0 &&
                canceled.rfind("err msg=", 0) != 0) {
              ++failures;
            }
          }

          // A what-if probe forks under the read lock and runs off it.
          SendLine(sock, "whatif mechanisms=baseline,CUP&SPAA size=16 "
                         "compute=120 submit=+30");
          const int answers = DrainFramed(sock);
          if (answers != 2) {
            ++failures;
          } else {
            whatif_answers += answers;
          }
        }
      } catch (const std::exception&) {
        ++failures;
      }
    });
  }

  for (std::thread& t : workers) t.join();
  watcher.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(whatif_answers.load(), kWorkers * kIterations * 2);

  // Quiesce the server before touching the session directly.
  {
    Socket finisher = Connect();
    EXPECT_EQ(Roundtrip(finisher, "shutdown"), "ok bye");
  }
  serve_thread_.join();

  // The oracle: the op log totally orders the concurrent mutations, so a
  // serial replay (RestoreText) reproduces the live state exactly.
  EXPECT_GT(session_->ops_logged(), 0u);
  EXPECT_GT(session_->now(), 0);
  const std::string snapshot = session_->SnapshotText();
  const std::unique_ptr<ServiceSession> replayed =
      ServiceSession::RestoreText(snapshot);
  EXPECT_EQ(replayed->SnapshotText(), snapshot);
  EXPECT_EQ(replayed->now(), session_->now());
  EXPECT_EQ(replayed->events_processed(), session_->events_processed());
  EXPECT_EQ(HandleRequestLine(*replayed, "query-metrics").lines,
            HandleRequestLine(*session_, "query-metrics").lines);
}

// Mutating verbs from many clients serialize through the writer path: the
// resulting op log applies cleanly in order (every submit's id matches,
// every logged cancel is accepted) — RestoreText throws otherwise.
TEST_F(ConcurrencyTest, ManyWritersProduceAReplayableLog) {
  std::vector<std::thread> workers;
  std::atomic<int> failures{0};
  for (int w = 0; w < kWorkers; ++w) {
    workers.emplace_back([&] {
      try {
        Socket sock = ConnectLoopback(server_->port());
        (void)sock.RecvLine();
        for (int i = 0; i < kIterations; ++i) {
          if (Roundtrip(sock, "submit class=od size=4 compute=300 submit=+120")
                  .rfind("ok job=", 0) != 0) {
            ++failures;
          }
          if (Roundtrip(sock, "advance by=30").rfind("ok now=", 0) != 0) {
            ++failures;
          }
        }
      } catch (const std::exception&) {
        ++failures;
      }
    });
  }
  for (std::thread& t : workers) t.join();
  EXPECT_EQ(failures.load(), 0);

  {
    Socket finisher = Connect();
    EXPECT_EQ(Roundtrip(finisher, "shutdown"), "ok bye");
  }
  serve_thread_.join();

  EXPECT_EQ(session_->ops_logged(),
            static_cast<std::size_t>(kWorkers * kIterations));
  const std::string snapshot = session_->SnapshotText();
  const std::unique_ptr<ServiceSession> replayed =
      ServiceSession::RestoreText(snapshot);
  EXPECT_EQ(replayed->SnapshotText(), snapshot);
}

}  // namespace
}  // namespace hs
