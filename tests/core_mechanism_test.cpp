#include "core/mechanism.h"

#include <gtest/gtest.h>

#include "core/config.h"

namespace hs {
namespace {

TEST(MechanismTest, SixPaperMechanisms) {
  const auto& all = PaperMechanisms();
  EXPECT_EQ(all.size(), 6u);
  EXPECT_EQ(ToString(all[0]), "N&PAA");
  EXPECT_EQ(ToString(all[1]), "N&SPAA");
  EXPECT_EQ(ToString(all[2]), "CUA&PAA");
  EXPECT_EQ(ToString(all[3]), "CUA&SPAA");
  EXPECT_EQ(ToString(all[4]), "CUP&PAA");
  EXPECT_EQ(ToString(all[5]), "CUP&SPAA");
}

TEST(MechanismTest, BaselineName) {
  EXPECT_EQ(ToString(BaselineMechanism()), "FCFS/EASY");
  EXPECT_TRUE(BaselineMechanism().is_baseline());
}

TEST(MechanismTest, ParseRoundTrip) {
  for (const auto& m : PaperMechanisms()) {
    EXPECT_EQ(ParseMechanism(ToString(m)), m);
  }
  EXPECT_EQ(ParseMechanism("FCFS/EASY"), BaselineMechanism());
  EXPECT_EQ(ParseMechanism("baseline"), BaselineMechanism());
}

TEST(MechanismTest, ParseRejectsGarbage) {
  EXPECT_THROW(ParseMechanism("XYZ"), std::invalid_argument);
  EXPECT_THROW(ParseMechanism("N&XYZ"), std::invalid_argument);
  EXPECT_THROW(ParseMechanism("FOO&PAA"), std::invalid_argument);
}

TEST(ConfigTest, PaperConfigDefaults) {
  const HybridConfig config = MakePaperConfig(PaperMechanisms()[3]);
  EXPECT_EQ(config.mechanism, PaperMechanisms()[3]);
  EXPECT_TRUE(config.engine.malleable_flexible);
  EXPECT_EQ(config.reservation_timeout, 10 * kMinute);
  EXPECT_EQ(config.engine.drain_warning, 2 * kMinute);
  EXPECT_EQ(config.Validate(), "");
}

TEST(ConfigTest, BaselineRunsMalleableRigidly) {
  const HybridConfig config = MakePaperConfig(BaselineMechanism());
  EXPECT_FALSE(config.engine.malleable_flexible);
}

TEST(ConfigTest, ValidateCatchesBadValues) {
  HybridConfig config = MakePaperConfig(PaperMechanisms()[0]);
  config.reservation_timeout = -1;
  EXPECT_NE(config.Validate(), "");
  config = MakePaperConfig(PaperMechanisms()[0]);
  config.engine.checkpoint.interval_scale = 0.0;
  EXPECT_NE(config.Validate(), "");
}

}  // namespace
}  // namespace hs
