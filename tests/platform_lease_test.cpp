#include "platform/lease_ledger.h"

#include <gtest/gtest.h>

namespace hs {
namespace {

TEST(LeaseLedgerTest, RecordAndTakePreservesOrder) {
  LeaseLedger ledger;
  ledger.Record(7, 1, 10, LeaseKind::kPreempted);
  ledger.Record(7, 2, 5, LeaseKind::kShrunk);
  ledger.Record(7, 3, 2, LeaseKind::kPlanPreempted);
  const auto leases = ledger.Take(7);
  ASSERT_EQ(leases.size(), 3u);
  EXPECT_EQ(leases[0].lender, 1);
  EXPECT_EQ(leases[0].kind, LeaseKind::kPreempted);
  EXPECT_EQ(leases[1].lender, 2);
  EXPECT_EQ(leases[2].nodes, 2);
  EXPECT_EQ(ledger.TotalOutstanding(), 0u);
}

TEST(LeaseLedgerTest, TakeOfUnknownIsEmpty) {
  LeaseLedger ledger;
  EXPECT_TRUE(ledger.Take(99).empty());
}

TEST(LeaseLedgerTest, ZeroNodeLeaseIgnored) {
  LeaseLedger ledger;
  ledger.Record(7, 1, 0, LeaseKind::kPreempted);
  EXPECT_EQ(ledger.TotalOutstanding(), 0u);
}

TEST(LeaseLedgerTest, DropDiscards) {
  LeaseLedger ledger;
  ledger.Record(7, 1, 10, LeaseKind::kPreempted);
  ledger.Drop(7);
  EXPECT_TRUE(ledger.Take(7).empty());
}

TEST(LeaseLedgerTest, PerOnDemandIsolation) {
  LeaseLedger ledger;
  ledger.Record(7, 1, 10, LeaseKind::kPreempted);
  ledger.Record(8, 2, 5, LeaseKind::kShrunk);
  EXPECT_EQ(ledger.Take(7).size(), 1u);
  const auto remaining = ledger.Take(8);
  ASSERT_EQ(remaining.size(), 1u);
  EXPECT_EQ(remaining[0].lender, 2);
}

TEST(LeaseLedgerTest, PeekDoesNotConsume) {
  LeaseLedger ledger;
  ledger.Record(7, 1, 10, LeaseKind::kPreempted);
  ASSERT_NE(ledger.Peek(7), nullptr);
  EXPECT_EQ(ledger.Peek(7)->size(), 1u);
  EXPECT_EQ(ledger.TotalOutstanding(), 1u);
  EXPECT_EQ(ledger.Peek(99), nullptr);
}

}  // namespace
}  // namespace hs
