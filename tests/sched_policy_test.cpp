#include "sched/policy.h"

#include <gtest/gtest.h>

#include "sched/queue_manager.h"

namespace hs {
namespace {

JobRecord MakeRecord(JobId id, int size, SimTime estimate) {
  JobRecord rec;
  rec.id = id;
  rec.size = size;
  rec.min_size = size;
  rec.compute_time = estimate;
  rec.estimate = estimate;
  return rec;
}

WaitingJob MakeWaiting(const JobRecord& rec, SimTime submit) {
  WaitingJob w;
  w.id = rec.id;
  w.record = &rec;
  w.first_submit = submit;
  w.enqueue_time = submit;
  w.estimate_remaining = rec.estimate;
  return w;
}

TEST(PolicyTest, FcfsOrdersBySubmitTime) {
  const auto rec1 = MakeRecord(1, 10, 100);
  const auto rec2 = MakeRecord(2, 10, 100);
  const auto w1 = MakeWaiting(rec1, 500);
  const auto w2 = MakeWaiting(rec2, 100);
  const auto policy = MakePolicy(PolicyKind::kFcfs);
  EXPECT_GT(policy->Key(w1, 1000), policy->Key(w2, 1000));
}

TEST(PolicyTest, SjfOrdersByEstimate) {
  const auto rec1 = MakeRecord(1, 10, 50);
  const auto rec2 = MakeRecord(2, 10, 500);
  const auto w1 = MakeWaiting(rec1, 0);
  const auto w2 = MakeWaiting(rec2, 0);
  const auto policy = MakePolicy(PolicyKind::kSjf);
  EXPECT_LT(policy->Key(w1, 0), policy->Key(w2, 0));
  const auto ljf = MakePolicy(PolicyKind::kLjf);
  EXPECT_GT(ljf->Key(w1, 0), ljf->Key(w2, 0));
}

TEST(PolicyTest, SizePolicies) {
  const auto rec1 = MakeRecord(1, 8, 100);
  const auto rec2 = MakeRecord(2, 64, 100);
  const auto w1 = MakeWaiting(rec1, 0);
  const auto w2 = MakeWaiting(rec2, 0);
  EXPECT_LT(MakePolicy(PolicyKind::kSmallestFirst)->Key(w1, 0),
            MakePolicy(PolicyKind::kSmallestFirst)->Key(w2, 0));
  EXPECT_GT(MakePolicy(PolicyKind::kLargestFirst)->Key(w1, 0),
            MakePolicy(PolicyKind::kLargestFirst)->Key(w2, 0));
}

TEST(PolicyTest, Wfp3FavorsLongWaiters) {
  const auto rec = MakeRecord(1, 10, 1000);
  auto w_old = MakeWaiting(rec, 0);
  auto w_new = MakeWaiting(rec, 0);
  w_old.enqueue_time = 0;
  w_new.enqueue_time = 5000;
  const auto policy = MakePolicy(PolicyKind::kWfp3);
  EXPECT_LT(policy->Key(w_old, 10000), policy->Key(w_new, 10000));
}

TEST(PolicyTest, AllPoliciesHaveNames) {
  for (const auto kind : {PolicyKind::kFcfs, PolicyKind::kSjf, PolicyKind::kLjf,
                          PolicyKind::kSmallestFirst, PolicyKind::kLargestFirst,
                          PolicyKind::kWfp3}) {
    EXPECT_STRNE(MakePolicy(kind)->name(), "");
    EXPECT_STREQ(MakePolicy(kind)->name(), ToString(kind));
  }
}

TEST(QueueManagerTest, AddRemoveContains) {
  const auto rec = MakeRecord(1, 10, 100);
  QueueManager q;
  q.Add(MakeWaiting(rec, 0));
  EXPECT_TRUE(q.Contains(1));
  EXPECT_EQ(q.size(), 1u);
  const WaitingJob w = q.Remove(1);
  EXPECT_EQ(w.id, 1);
  EXPECT_FALSE(q.Contains(1));
  EXPECT_THROW(q.Remove(1), std::runtime_error);
}

TEST(QueueManagerTest, DuplicateAddThrows) {
  const auto rec = MakeRecord(1, 10, 100);
  QueueManager q;
  q.Add(MakeWaiting(rec, 0));
  EXPECT_THROW(q.Add(MakeWaiting(rec, 0)), std::runtime_error);
}

TEST(QueueManagerTest, OrderedRespectsBoostThenPolicy) {
  const auto rec1 = MakeRecord(1, 10, 100);
  const auto rec2 = MakeRecord(2, 10, 100);
  const auto rec3 = MakeRecord(3, 10, 100);
  QueueManager q;
  q.Add(MakeWaiting(rec1, 100));
  q.Add(MakeWaiting(rec2, 50));
  auto boosted = MakeWaiting(rec3, 900);
  boosted.boosted = true;
  q.Add(boosted);
  const auto policy = MakePolicy(PolicyKind::kFcfs);
  const auto view = q.Ordered(*policy, 1000);
  ASSERT_EQ(view.size(), 3u);
  EXPECT_EQ(view[0]->id, 3);  // boosted first despite late submit
  EXPECT_EQ(view[1]->id, 2);
  EXPECT_EQ(view[2]->id, 1);
}

TEST(QueueManagerTest, FindMutable) {
  const auto rec = MakeRecord(1, 10, 100);
  QueueManager q;
  q.Add(MakeWaiting(rec, 0));
  WaitingJob* w = q.FindMutable(1);
  ASSERT_NE(w, nullptr);
  w->boosted = true;
  EXPECT_TRUE(q.Find(1)->boosted);
  EXPECT_EQ(q.FindMutable(9), nullptr);
}

}  // namespace
}  // namespace hs
