// Chaos differential tests for the fault-tolerant shard fabric: under any
// injected FaultPlan schedule that retries to completion, the merged CSV
// must be byte-identical to a clean single-process run; hung workers must
// be reaped within the configured inactivity timeout; best_effort must
// quarantine exactly the injected poison cells and never silently drop a
// healthy row; and fail-fast must name the isolated poison cell.
//
// Fault injection rides the HS_FAULT environment variable (exp/fault_plan.h),
// which hs_worker honors gated on --attempt — so every schedule here is
// deterministic and heals (or not) exactly as planned.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdlib>
#include <sstream>
#include <string>
#include <sys/stat.h>
#include <vector>

#include "exp/fault_plan.h"
#include "exp/runner.h"
#include "exp/sharded_runner.h"
#include "util/file_util.h"
#include "util/rng.h"
#include "util/subprocess.h"
#include "util/thread_pool.h"

namespace hs {
namespace {

// --- helpers ----------------------------------------------------------------

/// Sets HS_FAULT for the enclosing scope, unsetting it on exit so one
/// test's chaos can never leak into the next (or into the worker spawns of
/// an unrelated suite running from the same environment).
class FaultEnv {
 public:
  explicit FaultEnv(const std::string& plan) {
    setenv("HS_FAULT", plan.c_str(), 1);
  }
  ~FaultEnv() { unsetenv("HS_FAULT"); }
  FaultEnv(const FaultEnv&) = delete;
  FaultEnv& operator=(const FaultEnv&) = delete;
};

std::vector<SimSpec> TinyGrid() {
  std::vector<SimSpec> specs;
  for (const char* mechanism : {"baseline", "N&SPAA", "CUA&SPAA"}) {
    SimSpec base = SimSpec::Parse(std::string(mechanism) + "/FCFS/W5/preset=tiny");
    for (const SimSpec& seeded : SeedSweep(base, 2, 300)) specs.push_back(seeded);
  }
  return specs;
}

/// The byte-stable CSV of a grid: canonical spec order, wall-clock stripped.
std::string InProcessCsv(const std::vector<SimSpec>& specs) {
  std::ostringstream out;
  CsvResultSink csv(out, {.include_wallclock = false});
  MergingResultSink merged(csv, specs.size());
  ThreadPool pool(4);
  ExperimentRunner runner(pool);
  runner.Run(specs, &merged);
  merged.Finish();
  return out.str();
}

struct FabricRun {
  std::string csv;
  FabricReport report;
  std::vector<SpecResult> rows;
};

/// Runs the grid through the fabric exactly as bench_spec_grid does:
/// order-restoring merge, quarantined indices skipped so every healthy row
/// still flushes, Finish() asserting nothing was silently dropped.
FabricRun RunSharded(const std::vector<SimSpec>& specs,
                     ShardedRunnerOptions options) {
  std::ostringstream out;
  CsvResultSink csv(out, {.include_wallclock = false});
  MergingResultSink merged(csv, specs.size());
  ShardedRunner runner(std::move(options));
  FabricRun run;
  run.rows = runner.Run(specs, &merged);
  for (const FabricCellError& cell : runner.last_report().quarantined) {
    merged.Skip(cell.spec_index);
  }
  merged.Finish();
  run.csv = out.str();
  run.report = runner.last_report();
  return run;
}

ShardedRunnerOptions FabricOptions(int max_attempts) {
  ShardedRunnerOptions options;
  options.shards = 3;
  options.worker_cmd = SelfExeDir() + "/hs_worker";
  options.retry.max_attempts = max_attempts;
  options.retry.backoff_initial_s = 0.01;  // keep chaos trials fast
  options.retry.backoff_max_s = 0.05;
  return options;
}

/// `csv` minus the data row of one spec (row i is line i+1, after the header).
std::string DropCsvRow(const std::string& csv, std::size_t spec_index) {
  std::istringstream in(csv);
  std::ostringstream out;
  std::string line;
  std::size_t n = 0;
  while (std::getline(in, line)) {
    if (n++ != spec_index + 1) out << line << '\n';
  }
  return out.str();
}

// --- FaultPlan grammar ------------------------------------------------------

TEST(FaultPlanTest, ParsesFullGrammarAndRoundTrips) {
  const FaultPlan plan = ParseFaultPlan(
      "crash-before-cell=5;exit-code=3;torn-final-line;attempts=2");
  EXPECT_EQ(plan.crash_before_cell, 5);
  EXPECT_EQ(plan.exit_code, 3);
  EXPECT_TRUE(plan.torn_final_line);
  EXPECT_EQ(plan.attempts, 2);
  EXPECT_TRUE(plan.any());
  EXPECT_EQ(ParseFaultPlan(plan.ToString()).ToString(), plan.ToString());

  const FaultPlan hang = ParseFaultPlan("hang-at-cell=0");
  EXPECT_EQ(hang.hang_at_cell, 0);
  const FaultPlan drop = ParseFaultPlan("drop-every=2;signal=9");
  EXPECT_EQ(drop.drop_every, 2);
  EXPECT_EQ(drop.signal, 9);

  const FaultPlan none = ParseFaultPlan("");
  EXPECT_FALSE(none.any());
  EXPECT_EQ(none.ToString(), "");
}

TEST(FaultPlanTest, RejectsMalformedPlans) {
  EXPECT_THROW(ParseFaultPlan("explode"), std::invalid_argument);
  EXPECT_THROW(ParseFaultPlan("crash-before-cell"), std::invalid_argument);
  EXPECT_THROW(ParseFaultPlan("crash-before-cell=x"), std::invalid_argument);
  EXPECT_THROW(ParseFaultPlan("crash-before-cell=-1"), std::invalid_argument);
  EXPECT_THROW(ParseFaultPlan("drop-every=0"), std::invalid_argument);
  EXPECT_THROW(ParseFaultPlan("attempts=0"), std::invalid_argument);
  EXPECT_THROW(ParseFaultPlan("torn-final-line=1"), std::invalid_argument);
}

TEST(FaultPlanTest, NetworkTokensParseAndRoundTrip) {
  const FaultPlan plan = ParseFaultPlan(
      "drop-conn-at-cell=1;kill-agent-at-cell=2;torn-frame-at-cell=3;"
      "stall-at-cell=4;attempts=2");
  EXPECT_EQ(plan.drop_conn_at_cell, 1);
  EXPECT_EQ(plan.kill_agent_at_cell, 2);
  EXPECT_EQ(plan.torn_frame_at_cell, 3);
  EXPECT_EQ(plan.stall_at_cell, 4);
  EXPECT_TRUE(plan.any());
  EXPECT_EQ(ParseFaultPlan(plan.ToString()).ToString(), plan.ToString());

  // Each network token on its own arms the plan (any() gates injection).
  for (const char* token :
       {"drop-conn-at-cell=0", "kill-agent-at-cell=0", "torn-frame-at-cell=0",
        "stall-at-cell=0"}) {
    EXPECT_TRUE(ParseFaultPlan(token).any()) << token;
    EXPECT_TRUE(ParseFaultPlan(token).ActiveOn(1)) << token;
    EXPECT_FALSE(ParseFaultPlan(token).ActiveOn(2)) << token;
  }
  EXPECT_THROW(ParseFaultPlan("drop-conn-at-cell=-2"), std::invalid_argument);
  EXPECT_THROW(ParseFaultPlan("stall-at-cell"), std::invalid_argument);
}

TEST(FaultPlanTest, AttemptGatingHealsOnRetry) {
  const FaultPlan once = ParseFaultPlan("crash-before-cell=2");
  EXPECT_TRUE(once.ActiveOn(1));
  EXPECT_FALSE(once.ActiveOn(2));  // default attempts=1: heals on retry
  const FaultPlan poison = ParseFaultPlan("crash-before-cell=2;attempts=99");
  EXPECT_TRUE(poison.ActiveOn(1));
  EXPECT_TRUE(poison.ActiveOn(99));
  EXPECT_FALSE(poison.ActiveOn(100));
  EXPECT_FALSE(FaultPlan{}.ActiveOn(1));  // fault-free plan never fires
}

// --- targeted fabric behaviors ----------------------------------------------

TEST(ChaosTest, CrashedWorkerHealsOnRetryByteIdentical) {
  const std::vector<SimSpec> specs = TinyGrid();
  const std::string golden = InProcessCsv(specs);
  const FaultEnv fault("crash-before-cell=2;exit-code=9");
  const FabricRun run = RunSharded(specs, FabricOptions(/*max_attempts=*/3));
  EXPECT_EQ(run.csv, golden);
  EXPECT_TRUE(run.report.complete());
  EXPECT_GE(run.report.retries, 1u);
  EXPECT_GT(run.report.wasted_cells(), 0u);  // the crashed launch's lost cells
  EXPECT_EQ(run.report.rows_merged, specs.size());
}

TEST(ChaosTest, HungWorkerIsReapedWithinTimeout) {
  const std::vector<SimSpec> specs = TinyGrid();
  const std::string golden = InProcessCsv(specs);
  const FaultEnv fault("hang-at-cell=3");
  ShardedRunnerOptions options = FabricOptions(/*max_attempts=*/2);
  options.shard_timeout_s = 1.0;
  const auto started = std::chrono::steady_clock::now();
  const FabricRun run = RunSharded(specs, options);
  const double elapsed_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - started)
          .count();
  // The injected hang sleeps for hours; the only way this finishes is the
  // inactivity monitor killing the wedged worker and retrying its cells.
  EXPECT_GE(run.report.hang_kills, 1u);
  EXPECT_LT(elapsed_s, 30.0) << "hung worker was not reaped promptly";
  EXPECT_EQ(run.csv, golden);
  EXPECT_TRUE(run.report.complete());
}

TEST(ChaosTest, BestEffortQuarantinesExactlyThePoisonCell) {
  const std::vector<SimSpec> specs = TinyGrid();
  const std::string golden = InProcessCsv(specs);
  // First and last cells: quarantine gaps at both edges of the merge.
  for (const std::size_t poison : {std::size_t{0}, specs.size() - 1}) {
    const FaultEnv fault("crash-before-cell=" + std::to_string(poison) +
                         ";attempts=99");
    ShardedRunnerOptions options = FabricOptions(/*max_attempts=*/2);
    options.best_effort = true;
    const FabricRun run = RunSharded(specs, options);
    ASSERT_EQ(run.report.quarantined.size(), 1u) << "poison cell " << poison;
    const FabricCellError& cell = run.report.quarantined[0];
    EXPECT_EQ(cell.spec_index, poison);
    EXPECT_EQ(cell.spec, specs[poison].ToString());
    EXPECT_FALSE(cell.reason.empty());
    EXPECT_FALSE(run.report.complete());
    // Every healthy row still reaches the sink, in order, byte-identical.
    EXPECT_EQ(run.csv, DropCsvRow(golden, poison));
    EXPECT_EQ(run.report.rows_merged, specs.size() - 1);
  }
}

TEST(ChaosTest, FailFastNamesTheIsolatedPoisonCell) {
  const std::vector<SimSpec> specs = TinyGrid();
  const std::size_t poison = 4;
  const FaultEnv fault("crash-before-cell=" + std::to_string(poison) +
                       ";attempts=99");
  ShardedRunner runner(FabricOptions(/*max_attempts=*/2));
  try {
    runner.Run(specs);
    FAIL() << "a permanent poison cell without best_effort must throw";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("poison cell"), std::string::npos) << what;
    EXPECT_NE(what.find("spec index " + std::to_string(poison)),
              std::string::npos)
        << what;
    EXPECT_NE(what.find(specs[poison].ToString()), std::string::npos) << what;
  }
}

TEST(ChaosTest, TransientDeathWithoutFaultPlanAlsoHeals) {
  // Retry/respawn must not depend on HS_FAULT plumbing: a wrapper that
  // makes exactly one launch die (atomic mkdir as the "already failed"
  // marker) exercises the plain worker-death retry path.
  const std::vector<SimSpec> specs = TinyGrid();
  const std::string golden = InProcessCsv(specs);
  const std::string dir = MakeTempDir("hs-chaos-test-");
  const std::string wrapper =
      dir + "/flaky_worker.sh";
  WriteTextFile(wrapper,
                "#!/bin/sh\n"
                "if mkdir \"" + dir + "/died-once\" 2>/dev/null; then exit 3; fi\n"
                "exec " + SelfExeDir() + "/hs_worker \"$@\"\n");
  chmod(wrapper.c_str(), 0755);
  ShardedRunnerOptions options = FabricOptions(/*max_attempts=*/2);
  options.worker_cmd = wrapper;
  const FabricRun run = RunSharded(specs, options);
  EXPECT_EQ(run.csv, golden);
  EXPECT_EQ(run.report.retries, 1u);
  EXPECT_EQ(run.report.workers_launched, run.report.shard_count + 1);
  RemoveTreeBestEffort(dir);
}

TEST(ChaosTest, FabricReportAccountsRetriesExactly) {
  // drop-every=1 on attempt 1 makes EVERY unit compute all its cells,
  // write none of them, and exit 0; attempt 2 heals. The resulting
  // accounting is thread- and timing-independent, so it can be checked
  // exactly: one retry per shard, twice the launches and scattered cells,
  // one full grid of wasted cell executions.
  const std::vector<SimSpec> specs = TinyGrid();
  const std::string golden = InProcessCsv(specs);
  const FaultEnv fault("drop-every=1;attempts=1");
  const FabricRun run = RunSharded(specs, FabricOptions(/*max_attempts=*/2));
  EXPECT_EQ(run.csv, golden);
  EXPECT_TRUE(run.report.complete());
  EXPECT_EQ(run.report.retries, run.report.shard_count);
  EXPECT_EQ(run.report.workers_launched, 2 * run.report.shard_count);
  EXPECT_EQ(run.report.bisections, 0u);
  EXPECT_EQ(run.report.hang_kills, 0u);
  EXPECT_EQ(run.report.conn_failures, 0u);
  EXPECT_EQ(run.report.cells_scattered, 2 * specs.size());
  EXPECT_EQ(run.report.rows_merged, specs.size());
  EXPECT_EQ(run.report.wasted_cells(), specs.size());
  ASSERT_EQ(run.report.launches_per_shard.size(), run.report.shard_count);
  for (std::size_t k = 0; k < run.report.shard_count; ++k) {
    EXPECT_EQ(run.report.launches_per_shard[k], 2u) << "shard " << k;
  }
  EXPECT_NE(run.report.transport.find("local-exec"), std::string::npos)
      << run.report.transport;
}

// --- the differential: seeded random schedules ------------------------------

TEST(ChaosTest, SeededFaultScheduleDifferential) {
  const std::vector<SimSpec> specs = TinyGrid();
  const std::string golden = InProcessCsv(specs);
  const int kTrials = 20;
  for (int trial = 0; trial < kTrials; ++trial) {
    Rng rng(0xC0FFEEu + static_cast<std::uint64_t>(trial));
    const long long cell =
        rng.UniformInt(0, static_cast<std::int64_t>(specs.size()) - 1);
    std::string plan;
    ShardedRunnerOptions options = FabricOptions(/*max_attempts=*/3);
    options.retry.jitter_seed = static_cast<std::uint64_t>(trial);
    switch (trial % 4) {
      case 0:  // clean crash before a cell (exit code or signal)
        plan = "crash-before-cell=" + std::to_string(cell);
        if (rng.Chance(0.5)) plan += ";signal=9";
        else plan += ";exit-code=" + std::to_string(rng.UniformInt(1, 99));
        break;
      case 1:  // silent row drops: worker exits 0 but the gather has holes
        plan = "drop-every=" + std::to_string(rng.UniformInt(1, 3));
        break;
      case 2:  // killed mid-write: torn final JSONL line
        plan = "crash-before-cell=" + std::to_string(cell) +
               ";torn-final-line;exit-code=3";
        break;
      default:  // wedged worker, ended only by the inactivity monitor
        plan = "hang-at-cell=" + std::to_string(cell);
        options.shard_timeout_s = 1.0;
        break;
    }
    SCOPED_TRACE("trial " + std::to_string(trial) + ": HS_FAULT=" + plan);
    const FaultEnv fault(plan);
    const FabricRun run = RunSharded(specs, options);
    // Every schedule above heals on retry (attempts=1): the fabric must
    // deliver the exact single-process bytes, every trial.
    EXPECT_EQ(run.csv, golden);
    EXPECT_TRUE(run.report.complete());
    EXPECT_GE(run.report.retries, 1u);
    EXPECT_EQ(run.report.rows_merged, specs.size());
  }
}

}  // namespace
}  // namespace hs
