#include "sched/batch_scheduler.h"

#include <gtest/gtest.h>

#include "exp/fixtures.h"

namespace hs {
namespace {

/// The engine fixture lives in exp/fixtures.h: a hand-built trace, a
/// pass-through handler that applies engine operations on finish/kill
/// events, and an optional auto scheduling pass.
using EngineHarness = test::EngineSandbox;

JobRecord Rigid(JobId id, SimTime submit, int size, SimTime compute, SimTime setup,
                SimTime estimate) {
  JobRecord rec;
  rec.id = id;
  rec.klass = JobClass::kRigid;
  rec.submit_time = submit;
  rec.size = size;
  rec.min_size = size;
  rec.compute_time = compute;
  rec.setup_time = setup;
  rec.estimate = estimate;
  return rec;
}

JobRecord Malleable(JobId id, SimTime submit, int max, int min, SimTime compute,
                    SimTime setup, SimTime estimate) {
  JobRecord rec = Rigid(id, submit, max, compute, setup, estimate);
  rec.klass = JobClass::kMalleable;
  rec.min_size = min;
  return rec;
}

Trace MakeTrace(std::vector<JobRecord> jobs, int nodes = 64) {
  Trace trace;
  trace.num_nodes = nodes;
  trace.jobs = std::move(jobs);
  return trace;
}

EngineConfig NoCheckpointConfig() {
  EngineConfig config;
  config.checkpoint.node_mtbf = 1000LL * 365 * kDay;  // effectively no dumps
  return config;
}

TEST(EngineTest, RigidJobRunsToCompletion) {
  EngineHarness h(MakeTrace({Rigid(0, 0, 8, 1000, 100, 2000)}), NoCheckpointConfig());
  h.engine_.EnqueueFresh(0, 0);
  ASSERT_TRUE(h.engine_.StartWaiting(0, 8, 0));
  EXPECT_TRUE(h.engine_.IsRunning(0));
  h.sim_.Run();
  EXPECT_FALSE(h.engine_.IsRunning(0));
  EXPECT_EQ(h.engine_.jobs_finished(), 1u);
  EXPECT_EQ(h.engine_.jobs_killed(), 0u);
  EXPECT_EQ(h.sim_.now(), 1100);  // setup + compute
  EXPECT_EQ(h.engine_.cluster().free_count(), 64);
}

TEST(EngineTest, RigidWallIncludesCheckpointDumps) {
  EngineConfig config;  // default MTBF: a 2K-node job checkpoints every few hours
  Trace trace = MakeTrace({Rigid(0, 0, 2048, 20 * kHour, 0, 24 * kHour)}, 4392);
  EngineHarness h(std::move(trace), config);
  h.engine_.EnqueueFresh(0, 0);
  ASSERT_TRUE(h.engine_.StartWaiting(0, 2048, 0));
  const RunningJob* r = h.engine_.Running(0);
  ASSERT_NE(r, nullptr);
  EXPECT_GT(r->timeline.num_checkpoints(), 0);
  const int dumps = r->timeline.num_checkpoints();
  const SimTime overhead = r->timeline.overhead();
  EXPECT_EQ(overhead, 1200);  // >= 1K nodes pays the large dump cost
  h.sim_.Run();
  EXPECT_EQ(h.sim_.now(), 20 * kHour + dumps * overhead);
}

TEST(EngineTest, StartWaitingRejectsWhenNoRoom) {
  EngineHarness h(MakeTrace({Rigid(0, 0, 65, 100, 0, 100)}, 64));
  h.engine_.EnqueueFresh(0, 0);
  EXPECT_FALSE(h.engine_.StartWaiting(0, 65, 0));
  EXPECT_TRUE(h.engine_.IsWaiting(0));
}

TEST(EngineTest, PreemptRigidLosesUncheckpointedWork) {
  EngineHarness h(MakeTrace({Rigid(0, 0, 8, 10000, 100, 20000)}), NoCheckpointConfig());
  h.engine_.EnqueueFresh(0, 0);
  ASSERT_TRUE(h.engine_.StartWaiting(0, 8, 0));
  // Advance to t=5000 via a dummy event.
  h.sim_.Schedule(5000, EventKind::kSchedule);
  h.sim_.Run(5000);
  h.engine_.PreemptNow(0, 5000, PreemptKind::kArrivalKill);
  EXPECT_TRUE(h.engine_.IsWaiting(0));
  // No checkpoints: all 4900 s of compute progress lost; remaining demand is
  // the full compute.
  const WaitingJob* w = h.engine_.queue().Find(0);
  ASSERT_NE(w, nullptr);
  EXPECT_EQ(w->compute_remaining, 10000);
  EXPECT_EQ(w->restarts, 1);
  EXPECT_EQ(w->first_submit, 0);  // original submit preserved
}

TEST(EngineTest, MalleableWorkConservingResize) {
  // 16-node malleable job, work = 1000 s x 16 nodes, no setup.
  EngineHarness h(MakeTrace({Malleable(0, 0, 16, 4, 1000, 0, 1000)}));
  h.engine_.EnqueueFresh(0, 0);
  ASSERT_TRUE(h.engine_.StartWaiting(0, 16, 0));
  // At t=500 half the work is done; shrink to 8 nodes: remaining 8000
  // node-seconds take 1000 more seconds.
  h.sim_.Schedule(500, EventKind::kSchedule);
  h.sim_.Run(500);
  h.engine_.ShrinkBy(0, 8, 500);
  EXPECT_EQ(h.engine_.Running(0)->alloc, 8);
  h.sim_.Run();
  EXPECT_EQ(h.sim_.now(), 1500);
  EXPECT_EQ(h.engine_.jobs_finished(), 1u);
}

TEST(EngineTest, MalleableExpandShortensRuntime) {
  EngineHarness h(MakeTrace({Malleable(0, 0, 16, 4, 1000, 0, 1000)}));
  h.engine_.EnqueueFresh(0, 0);
  ASSERT_TRUE(h.engine_.StartWaiting(0, 8, 0));  // work=16000 ns at 8 nodes
  h.sim_.Schedule(1000, EventKind::kSchedule);
  h.sim_.Run(1000);
  h.engine_.ExpandByFromFree(0, 8, 1000);  // 8000 left at 16 nodes: 500 s
  h.sim_.Run();
  EXPECT_EQ(h.sim_.now(), 1500);
}

TEST(EngineTest, ShrinkBelowMinThrows) {
  EngineHarness h(MakeTrace({Malleable(0, 0, 16, 8, 1000, 0, 1000)}));
  h.engine_.EnqueueFresh(0, 0);
  ASSERT_TRUE(h.engine_.StartWaiting(0, 16, 0));
  EXPECT_THROW(h.engine_.ShrinkBy(0, 9, 0), std::runtime_error);
  EXPECT_EQ(h.engine_.ShrinkableNodes(0), 8);
}

TEST(EngineTest, DrainPreservesProgress) {
  EngineHarness h(MakeTrace({Malleable(0, 0, 16, 4, 1000, 0, 2000)}));
  h.engine_.EnqueueFresh(0, 0);
  ASSERT_TRUE(h.engine_.StartWaiting(0, 16, 0));
  h.sim_.Schedule(500, EventKind::kSchedule);
  h.sim_.Run(500);
  h.engine_.BeginDrain(0, /*od=*/99, 500);
  EXPECT_TRUE(h.engine_.Running(0)->draining);
  EXPECT_EQ(h.engine_.ShrinkableNodes(0), 0);  // draining jobs can't shrink
  h.sim_.Run(620);                              // warning expires at 620
  EXPECT_TRUE(h.engine_.IsWaiting(0));
  const WaitingJob* w = h.engine_.queue().Find(0);
  ASSERT_NE(w, nullptr);
  // 620 s at 16 nodes = 9920 node-seconds done out of 16000.
  EXPECT_EQ(w->work_remaining, 16000 - 620 * 16);
}

TEST(EngineTest, DrainCancelKeepsJobRunning) {
  EngineHarness h(MakeTrace({Malleable(0, 0, 16, 4, 1000, 0, 2000)}));
  h.engine_.EnqueueFresh(0, 0);
  ASSERT_TRUE(h.engine_.StartWaiting(0, 16, 0));
  h.engine_.BeginDrain(0, 99, 0);
  h.engine_.CancelDrain(0);
  h.sim_.Run();
  EXPECT_EQ(h.engine_.jobs_finished(), 1u);
  EXPECT_EQ(h.sim_.now(), 1000);  // undisturbed completion
}

TEST(EngineTest, FinishBeforeWarningCancelsDrain) {
  EngineHarness h(MakeTrace({Malleable(0, 0, 16, 4, 100, 0, 200)}));
  h.engine_.EnqueueFresh(0, 0);
  ASSERT_TRUE(h.engine_.StartWaiting(0, 16, 0));
  h.engine_.BeginDrain(0, 99, 50);  // warning would expire at 170 > finish 100
  h.sim_.Run();
  EXPECT_EQ(h.engine_.jobs_finished(), 1u);
  EXPECT_EQ(h.sim_.now(), 100);
}

TEST(EngineTest, EstimatedEndUsesEstimatesNotActuals) {
  EngineHarness h(MakeTrace({Rigid(0, 0, 8, 1000, 0, 5000)}), NoCheckpointConfig());
  h.engine_.EnqueueFresh(0, 0);
  ASSERT_TRUE(h.engine_.StartWaiting(0, 8, 0));
  EXPECT_EQ(h.engine_.EstimatedEnd(0, 0), 5000);  // estimate bound, not 1000
}

TEST(EngineTest, PreemptionCostOrdering) {
  EngineConfig config = NoCheckpointConfig();
  EngineHarness h(MakeTrace({Rigid(0, 0, 8, 10000, 100, 20000),
                             Malleable(1, 0, 8, 2, 10000, 100, 20000)}),
                  config);
  h.engine_.EnqueueFresh(0, 0);
  h.engine_.EnqueueFresh(1, 0);
  ASSERT_TRUE(h.engine_.StartWaiting(0, 8, 0));
  ASSERT_TRUE(h.engine_.StartWaiting(1, 8, 0));
  h.sim_.Schedule(5000, EventKind::kSchedule);
  h.sim_.Run(5000);
  // Malleable loses only setup; rigid loses progress + setup.
  EXPECT_LT(h.engine_.PreemptionCostNodeSec(1, 5000),
            h.engine_.PreemptionCostNodeSec(0, 5000));
}

TEST(EngineTest, SchedulingPassStartsFcfsAndBackfills) {
  Trace trace = MakeTrace({Rigid(0, 0, 40, 1000, 0, 1000),
                           Rigid(1, 0, 40, 1000, 0, 1000),
                           Rigid(2, 0, 10, 500, 0, 500)},
                          64);
  EngineHarness h(std::move(trace), NoCheckpointConfig());
  h.auto_schedule = true;
  for (const auto& job : h.trace_.jobs) {
    h.sim_.Schedule(job.submit_time, EventKind::kJobSubmit, job.id);
  }
  h.sim_.Run();
  EXPECT_EQ(h.engine_.jobs_finished(), 3u);
  // Job 0 starts at 0; job 1 can't (40+40 > 64) but job 2 backfills
  // (ends 500 <= shadow 1000); job 1 starts at 1000.
  EXPECT_EQ(h.sim_.now(), 2000);
}

TEST(EngineTest, KillAtEstimateFiresForOverrunningJob) {
  // Hand-build a record that lies: actual compute beyond the estimate is
  // impossible via validation, so drive the engine directly with a job whose
  // estimate equals compute (kill and finish coincide; finish wins).
  EngineHarness h(MakeTrace({Rigid(0, 0, 8, 1000, 0, 1000)}), NoCheckpointConfig());
  h.engine_.EnqueueFresh(0, 0);
  ASSERT_TRUE(h.engine_.StartWaiting(0, 8, 0));
  h.sim_.Run();
  EXPECT_EQ(h.engine_.jobs_finished(), 1u);
  EXPECT_EQ(h.engine_.jobs_killed(), 0u);  // finish event has priority
}

TEST(EngineTest, TenantFlagTracked) {
  EngineHarness h(MakeTrace({Rigid(0, 0, 4, 1000, 0, 1000)}, 64));
  h.engine_.cluster().ReserveFromFree(99, 8);
  h.engine_.EnqueueFresh(0, 0);
  const auto idle = h.engine_.cluster().ReservedIdleNodes(99);
  std::vector<int> four(idle.begin(), idle.begin() + 4);
  h.engine_.StartTenant(0, four, 0);
  EXPECT_TRUE(h.engine_.Running(0)->is_tenant);
  EXPECT_FALSE(h.engine_.IsPreemptable(0));  // tenants handled separately
  EXPECT_EQ(h.engine_.ShrinkableNodes(0), 0);
}

}  // namespace
}  // namespace hs
